// The schedulability service (src/model/batch.hpp) end to end:
// determinism contract (verdict stream and cache stats byte-identical for
// any worker count), memoisation transparency (cached supplies change
// nothing but speed), infeasibility classification with binding equations,
// NDJSON candidate codec round-trip, telemetry publication, the
// differential flight oracle over a generated 500-config stream, and the
// mutation self-test (a deliberately unsound analysis must be caught).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config/candidates.hpp"
#include "model/batch.hpp"
#include "system/flight_validate.hpp"
#include "telemetry/metrics.hpp"

namespace air {
namespace {

std::string verdict_stream(const std::vector<model::BatchVerdict>& verdicts) {
  std::string out;
  for (const auto& v : verdicts) {
    out += v.to_ndjson();
    out += '\n';
  }
  return out;
}

model::CandidateSpec small_spec() {
  model::CandidateSpec spec;
  spec.count = 96;
  spec.seed = 2024;
  return spec;
}

TEST(BatchAnalyzer, VerdictStreamIsByteIdenticalForAnyWorkerCount) {
  const auto candidates = model::generate_candidates(small_spec());
  std::string reference;
  model::BatchAnalyzer::Stats reference_stats;
  for (const std::size_t workers : {1u, 2u, 5u, 0u}) {
    model::BatchOptions options;
    options.workers = workers;
    model::BatchAnalyzer analyzer(options);
    const auto verdicts = analyzer.analyze(candidates);
    const std::string stream = verdict_stream(verdicts);
    if (reference.empty()) {
      reference = stream;
      reference_stats = analyzer.stats();
      continue;
    }
    EXPECT_EQ(stream, reference) << "workers = " << workers;
    // The cache stats are part of the determinism contract too: interning
    // is serial in candidate order, so hit/miss counts cannot depend on
    // the lane interleaving.
    EXPECT_EQ(analyzer.stats().cache.lookups, reference_stats.cache.lookups);
    EXPECT_EQ(analyzer.stats().cache.hits, reference_stats.cache.hits);
    EXPECT_EQ(analyzer.stats().cache.misses, reference_stats.cache.misses);
    EXPECT_EQ(analyzer.stats().cache.entries, reference_stats.cache.entries);
  }
}

TEST(BatchAnalyzer, MemoisationChangesNothingButSpeed) {
  const auto candidates = model::generate_candidates(small_spec());
  model::BatchOptions memoised;
  model::BatchOptions bare;
  bare.memoise = false;
  model::BatchAnalyzer with_cache(memoised);
  model::BatchAnalyzer without_cache(bare);
  EXPECT_EQ(verdict_stream(with_cache.analyze(candidates)),
            verdict_stream(without_cache.analyze(candidates)));

  const auto& cache = with_cache.stats().cache;
  EXPECT_EQ(cache.hits + cache.misses, cache.lookups);
  EXPECT_EQ(cache.entries, cache.misses);
  EXPECT_GT(cache.lookups, 0u);
  // The generated stream shares requirement sets (distinct_psts ~ count/8),
  // so the cache must actually pay off -- a broken canonical key degrades
  // to miss-every-time and fails here.
  EXPECT_GT(static_cast<double>(cache.hits),
            0.5 * static_cast<double>(cache.lookups));
  EXPECT_EQ(without_cache.stats().cache.lookups, 0u);
}

TEST(BatchAnalyzer, CachePersistsAcrossBatches) {
  const auto candidates = model::generate_candidates(small_spec());
  model::BatchAnalyzer analyzer;
  const auto first = analyzer.analyze(candidates);
  const auto misses_after_first = analyzer.stats().cache.misses;
  const auto second = analyzer.analyze(candidates);
  // Daemon mode: the second pass over the same stream builds no new table.
  EXPECT_EQ(analyzer.stats().cache.misses, misses_after_first);
  EXPECT_EQ(verdict_stream(first), verdict_stream(second));
  EXPECT_EQ(analyzer.stats().analyzed, 2 * candidates.size());
}

TEST(BatchAnalyzer, InfeasibleCandidatesCiteTheBindingEquation) {
  // Over-utilised requirement set: eq. (8).
  model::Candidate over;
  over.id = 1;
  over.name = "over";
  over.requirements = {{PartitionId{0}, 100, 80},
                       {PartitionId{1}, 100, 40}};

  // Overlapping explicit windows: eq. (21).
  model::Candidate overlap;
  overlap.id = 2;
  overlap.name = "overlap";
  overlap.mtf = 100;
  overlap.requirements = {{PartitionId{0}, 100, 40},
                          {PartitionId{1}, 100, 40}};
  overlap.windows = {{PartitionId{0}, 0, 40}, {PartitionId{1}, 30, 40}};

  // MTF not a multiple of the cycle lcm: eq. (22).
  model::Candidate badmtf;
  badmtf.id = 3;
  badmtf.name = "badmtf";
  badmtf.mtf = 150;
  badmtf.requirements = {{PartitionId{0}, 100, 40}};

  // And one good candidate to prove the batch keeps going.
  model::Candidate good;
  good.id = 4;
  good.name = "good";
  good.requirements = {{PartitionId{0}, 100, 40}};
  model::PartitionModel pm;
  pm.id = PartitionId{0};
  pm.processes.push_back({"q0", 100, 100, 10, 5, true});
  good.partitions.push_back(pm);

  model::BatchAnalyzer analyzer;
  const auto verdicts =
      analyzer.analyze({over, overlap, badmtf, good});
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_EQ(verdicts[0].verdict, model::Verdict::kInfeasible);
  EXPECT_NE(verdicts[0].binding.find("eq. (8)"), std::string::npos)
      << verdicts[0].binding;
  EXPECT_EQ(verdicts[1].verdict, model::Verdict::kInfeasible);
  EXPECT_NE(verdicts[1].binding.find("eq. (21)"), std::string::npos)
      << verdicts[1].binding;
  EXPECT_EQ(verdicts[2].verdict, model::Verdict::kInfeasible);
  EXPECT_NE(verdicts[2].binding.find("eq. (22)"), std::string::npos)
      << verdicts[2].binding;
  EXPECT_EQ(verdicts[3].verdict, model::Verdict::kSchedulable);
  EXPECT_NE(verdicts[3].binding.find("eq. (14)"), std::string::npos)
      << verdicts[3].binding;
  EXPECT_EQ(analyzer.stats().infeasible, 3u);
  EXPECT_EQ(analyzer.stats().schedulable, 1u);
}

TEST(BatchAnalyzer, GeneratedStreamIsNotVacuous) {
  model::CandidateSpec spec;
  spec.count = 256;
  spec.seed = 7;
  const auto candidates = model::generate_candidates(spec);
  model::BatchAnalyzer analyzer;
  const auto verdicts = analyzer.analyze(candidates);
  std::size_t definite = 0;
  for (const auto& v : verdicts) definite += v.definite ? 1 : 0;
  const auto& s = analyzer.stats();
  // Every verdict class must be populated, or the differential oracle and
  // the bench measure nothing.
  EXPECT_GE(s.schedulable, 32u);
  EXPECT_GE(s.infeasible, 8u);
  EXPECT_GE(definite, 16u) << "necessity-check population too small";
}

TEST(BatchAnalyzer, PublishExportsTheRunningTotals) {
  const auto candidates = model::generate_candidates(small_spec());
  model::BatchAnalyzer analyzer;
  (void)analyzer.analyze(candidates);
  telemetry::MetricsRegistry registry;
  analyzer.publish(registry);
  const auto snap = registry.snapshot(0);
  const auto& s = analyzer.stats();
  EXPECT_EQ(snap.counter(telemetry::Metric::kBatchConfigs), s.analyzed);
  EXPECT_EQ(snap.counter(telemetry::Metric::kBatchSchedulable),
            s.schedulable);
  EXPECT_EQ(snap.counter(telemetry::Metric::kBatchUnschedulable),
            s.unschedulable);
  EXPECT_EQ(snap.counter(telemetry::Metric::kBatchInfeasible), s.infeasible);
  EXPECT_EQ(snap.counter(telemetry::Metric::kBatchSupplyHits),
            s.cache.hits);
  EXPECT_EQ(snap.counter(telemetry::Metric::kBatchSupplyMisses),
            s.cache.misses);
}

TEST(CandidateCodec, JsonlRoundTripPreservesTheVerdictStream) {
  const auto candidates = model::generate_candidates(small_spec());
  std::string text = "// candidate stream\n\n";
  for (const auto& c : candidates) {
    text += config::candidate_to_jsonl(c);
    text += '\n';
  }
  const auto stream = config::parse_candidates(text);
  ASSERT_TRUE(stream.ok()) << stream.errors.front();
  ASSERT_EQ(stream.candidates.size(), candidates.size());

  model::BatchAnalyzer a;
  model::BatchAnalyzer b;
  EXPECT_EQ(verdict_stream(a.analyze(candidates)),
            verdict_stream(b.analyze(stream.candidates)));
}

TEST(CandidateCodec, MalformedLinesAreReportedNotFatal) {
  const auto stream = config::parse_candidates(
      "{\"id\":1,\"requirements\":[{\"partition\":0,\"period\":100,"
      "\"duration\":10}],\"partitions\":[]}\n"
      "{not json}\n"
      "{\"id\":2,\"partitions\":[]}\n");
  ASSERT_EQ(stream.candidates.size(), 1u);
  ASSERT_EQ(stream.errors.size(), 2u);
  EXPECT_NE(stream.errors[0].find("line 2"), std::string::npos);
  EXPECT_NE(stream.errors[1].find("line 3"), std::string::npos)
      << "missing requirements must be an error";
}

TEST(DifferentialValidation, OracleHoldsOver500GeneratedConfigs) {
  model::CandidateSpec spec;
  spec.count = 500;
  spec.seed = 11;
  const auto candidates = model::generate_candidates(spec);
  model::BatchAnalyzer analyzer;
  const auto verdicts = analyzer.analyze(candidates);

  system::DifferentialOptions options;
  options.max_accepted = 10;
  options.max_rejected = 5;
  const auto report =
      system::validate_differential(candidates, verdicts, options);
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_EQ(report.accepted_flown, 10u);
  EXPECT_EQ(report.rejected_flown, 5u);
  // All four drivers per flown candidate.
  EXPECT_EQ(report.flights, 4u * (report.accepted_flown +
                                  report.rejected_flown));
  EXPECT_GE(report.accepted_population, 100u);
  EXPECT_GE(report.rejected_population, 40u);
}

TEST(DifferentialValidation, MutationSelftestCatchesUnsoundAnalysis) {
  const auto report = system::schedulability_selftest(96, 7);
  EXPECT_TRUE(report.caught()) << report.to_text();
  EXPECT_GT(report.flipped, 0u);
  // Every flown unsoundly-accepted candidate was a definite overload: the
  // flight must observe the miss the sound analysis predicted.
  EXPECT_EQ(report.divergent, report.flown) << report.to_text();
}

}  // namespace
}  // namespace air
