// Online observability plane: digest arithmetic (EWMA, histogram windows,
// quantile extraction), watchdog semantics, and the determinism contract --
// digest sequences and HealthEvent streams must be byte-identical across
// the per-tick, warped, lockstep and parallel epoch drivers. Also covers
// the telemetry export edge cases that ride along in this change: empty
// registries, non-finite doubles in the JSON writer, CSV field escaping.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "config/fig8.hpp"
#include "fi/campaign.hpp"
#include "pos/workload.hpp"
#include "system/module.hpp"
#include "system/world.hpp"
#include "telemetry/digest.hpp"
#include "telemetry/export.hpp"
#include "telemetry/online.hpp"
#include "telemetry/spans.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;
using telemetry::Ewma;
using telemetry::Histogram;

// ---------------------------------------------------------------- digest --

TEST(EwmaTest, SeedsWithTheFirstSample) {
  Ewma ewma(3);
  ewma.update(40);
  EXPECT_EQ(ewma.rounded(), 40);
  EXPECT_EQ(ewma.scaled(), std::int64_t{40} << Ewma::kFracBits);
}

TEST(EwmaTest, ConvergesTowardsAConstantStream) {
  Ewma ewma(2);  // alpha = 1/4
  ewma.update(0);
  for (int i = 0; i < 64; ++i) ewma.update(100);
  EXPECT_EQ(ewma.rounded(), 100);
  // Identical update sequences produce identical integer state.
  Ewma other(2);
  other.update(0);
  for (int i = 0; i < 64; ++i) other.update(100);
  EXPECT_EQ(ewma.scaled(), other.scaled());
}

TEST(HistogramDeltaTest, BucketsCountAndSumSubtractExactly) {
  Histogram cumulative;
  cumulative.observe(1);
  cumulative.observe(5);
  const Histogram before = cumulative;
  cumulative.observe(2);
  cumulative.observe(300);
  const Histogram window = telemetry::histogram_delta(cumulative, before);
  EXPECT_EQ(window.count, 2u);
  EXPECT_EQ(window.sum, 302);
  std::uint64_t total = 0;
  for (const std::uint64_t b : window.buckets) total += b;
  EXPECT_EQ(total, 2u);
}

TEST(HistogramDeltaTest, ExtremesExactWhenTheWindowExtendsThem) {
  Histogram cumulative;
  cumulative.observe(10);
  const Histogram before = cumulative;
  cumulative.observe(3);    // new cumulative min
  cumulative.observe(900);  // new cumulative max
  const Histogram window = telemetry::histogram_delta(cumulative, before);
  EXPECT_EQ(window.min, 3);
  EXPECT_EQ(window.max, 900);
}

TEST(HistogramDeltaTest, ExtremesFallBackToBucketBoundsInside) {
  Histogram cumulative;
  cumulative.observe(0);
  cumulative.observe(1000);
  const Histogram before = cumulative;
  cumulative.observe(20);  // strictly inside the cumulative range
  const Histogram window = telemetry::histogram_delta(cumulative, before);
  EXPECT_EQ(window.count, 1u);
  EXPECT_EQ(window.sum, 20);
  // log2 resolution: 20 lives in bucket floor(log2(21)) = 4, bounds 15..30.
  EXPECT_LE(window.min, 20);
  EXPECT_GE(window.max, 20);
}

TEST(HistogramDeltaTest, EmptyWindowKeepsSentinels) {
  Histogram cumulative;
  cumulative.observe(7);
  const Histogram window = telemetry::histogram_delta(cumulative, cumulative);
  EXPECT_EQ(window.count, 0u);
  EXPECT_EQ(window.sum, 0);
}

TEST(HistogramQuantileTest, RanksAreExactWithinBucketResolution) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(1);  // bucket 1 (bounds 1..2)
  h.observe(1000);                            // bucket 9 (bounds 511..1022)
  EXPECT_EQ(telemetry::histogram_quantile(h, 500), 2);
  EXPECT_EQ(telemetry::histogram_quantile(h, 990), 2);   // rank 99
  EXPECT_EQ(telemetry::histogram_quantile(h, 1000), 1022);  // rank 100
}

TEST(HistogramQuantileTest, EmptyHistogramReturnsMinusOne) {
  EXPECT_EQ(telemetry::histogram_quantile(Histogram{}, 500), -1);
}

TEST(DigestNdjson, EmitsOneParseableLinePerRecord) {
  telemetry::WindowDigest digest;
  digest.index = 3;
  digest.start = 300;
  digest.end = 400;
  digest.partitions.resize(2);
  digest.partitions[1].deadline_misses = 2;
  const std::string line = telemetry::digest_ndjson("m0", digest);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "must be single-line";
  const util::json::ParseResult parsed =
      util::json::parse(std::string_view{line}.substr(0, line.size() - 1));
  ASSERT_TRUE(parsed.ok()) << parsed.error->to_string();
  EXPECT_EQ(parsed.value->get_string("type", ""), "digest");
  EXPECT_EQ(parsed.value->get_int("window", -1), 3);

  telemetry::HealthEvent event;
  event.tick = 399;
  event.kind = telemetry::Watchdog::kDeadlineMissRate;
  event.partition = 1;
  event.detail = "2 deadline miss(es) in window 3";
  const std::string health = telemetry::health_ndjson("m0", event);
  const util::json::ParseResult hp =
      util::json::parse(std::string_view{health}.substr(0, health.size() - 1));
  ASSERT_TRUE(hp.ok()) << hp.error->to_string();
  EXPECT_EQ(hp.value->get_string("watchdog", ""), "deadline_miss_rate");
  EXPECT_EQ(hp.value->get_int("partition", -1), 1);
}

// ----------------------------------------------------------- determinism --

std::string plane_stream(const telemetry::OnlinePlane* plane,
                         const std::string& source) {
  if (plane == nullptr) return "<no plane>";
  std::string out;
  for (const telemetry::WindowDigest& d : plane->digests()) {
    out += telemetry::digest_ndjson(source, d);
  }
  for (const telemetry::HealthEvent& e : plane->events()) {
    out += telemetry::health_ndjson(source, e);
  }
  return out;
}

std::string bus_stream(const telemetry::BusPlane* plane) {
  if (plane == nullptr) return "<no bus plane>";
  std::string out;
  for (const telemetry::WindowDigest& d : plane->digests()) {
    out += telemetry::digest_ndjson("bus", d);
  }
  for (const telemetry::HealthEvent& e : plane->events()) {
    out += telemetry::health_ndjson("bus", e);
  }
  return out;
}

struct Mission {
  net::BusConfig bus;
  std::vector<system::ModuleConfig> modules;
  telemetry::OnlineOptions online;
  Ticks length{0};
};

// Randomized multi-module mission with remote traffic and deadline-tight
// workers, every module flying with the online plane enabled.
Mission random_mission(std::uint64_t seed) {
  util::Rng rng(seed);
  Mission mission;
  mission.bus.slot_length = static_cast<Ticks>(rng.uniform(2, 10));
  mission.bus.frames_per_slot = static_cast<std::size_t>(rng.uniform(1, 4));
  mission.bus.propagation_delay = static_cast<Ticks>(rng.uniform(1, 6));
  mission.length = static_cast<Ticks>(rng.uniform(900, 2600));
  mission.online.enabled = true;
  const Ticks windows[] = {32, 64, 100, 256};
  mission.online.window = windows[rng.uniform(0, 3)];

  const int nmodules = static_cast<int>(rng.uniform(2, 3));
  for (int m = 0; m < nmodules; ++m) {
    system::ModuleConfig config;
    config.id = ModuleId{m};
    config.name = "m" + std::to_string(m);
    config.telemetry.online = mission.online;
    const Ticks slice = static_cast<Ticks>(rng.uniform(20, 60));

    system::PartitionConfig partition;
    partition.name = "p0";
    partition.sampling_ports.push_back(
        {"OUT", ipc::PortDirection::kSource, 64, kInfiniteTime});
    partition.sampling_ports.push_back(
        {"IN", ipc::PortDirection::kDestination, 64, 200});
    system::ProcessConfig chatter;
    chatter.attrs.name = "chatter";
    chatter.attrs.priority = 5;
    chatter.attrs.script = ScriptBuilder{}
                               .compute(rng.uniform(1, 5))
                               .sampling_write(0, "ring-" + std::to_string(m))
                               .sampling_read(1)
                               .timed_wait(static_cast<Ticks>(
                                   rng.uniform(15, 90)))
                               .build();
    partition.processes.push_back(std::move(chatter));
    // A deadline-tight periodic worker: some seeds miss, engaging the
    // deadline watchdog and its causal link in every driver identically.
    system::ProcessConfig worker;
    worker.attrs.name = "tight";
    worker.attrs.priority = 10;
    worker.attrs.period = slice * static_cast<Ticks>(rng.uniform(1, 4));
    worker.attrs.time_capacity =
        rng.chance(0.5) ? worker.attrs.period / 4 : worker.attrs.period;
    worker.attrs.script = ScriptBuilder{}
                              .compute(rng.uniform(1, 15))
                              .periodic_wait()
                              .build();
    partition.processes.push_back(std::move(worker));
    config.partitions.push_back(std::move(partition));

    ipc::ChannelConfig ring;
    ring.id = ChannelId{0};
    ring.kind = ipc::ChannelKind::kSampling;
    ring.source = {PartitionId{0}, "OUT"};
    ring.remote_destinations = {
        {ModuleId{(m + 1) % nmodules}, PartitionId{0}, "IN"}};
    config.channels.push_back(std::move(ring));

    model::Schedule schedule;
    schedule.id = ScheduleId{0};
    schedule.mtf = slice;
    schedule.requirements = {{PartitionId{0}, slice, slice}};
    schedule.windows = {{PartitionId{0}, 0, slice}};
    config.schedules = {schedule};
    mission.modules.push_back(std::move(config));
  }
  return mission;
}

enum class Driver { kPerTick, kWarped, kEpochInline, kEpochPooled };

std::string fly(const Mission& mission, Driver driver) {
  system::World world(mission.bus);
  for (const system::ModuleConfig& config : mission.modules) {
    system::Module& module = world.add_module(config);
    if (driver == Driver::kPerTick) module.set_time_warp(false);
  }
  world.enable_online(mission.online);
  if (driver == Driver::kEpochPooled) world.set_workers(4);
  if (driver == Driver::kPerTick || driver == Driver::kWarped) {
    world.run_lockstep(mission.length);
  } else {
    world.run(mission.length);
  }
  std::string out;
  for (std::size_t m = 0; m < world.module_count(); ++m) {
    system::Module& module = world.module(m);
    out += "=== " + module.config().name + "\n";
    out += plane_stream(module.online(), module.config().name);
  }
  out += "=== bus\n" + bus_stream(world.bus_plane());
  return out;
}

TEST(OnlinePlane, StreamsAreByteIdenticalAcrossDrivers) {
  std::size_t missions_with_breaches = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Mission mission = random_mission(seed);
    const std::string label =
        "seed " + std::to_string(seed) + " window " +
        std::to_string(mission.online.window);
    const std::string reference = fly(mission, Driver::kPerTick);
    EXPECT_EQ(reference, fly(mission, Driver::kWarped))
        << label << ": warped lockstep diverges from per-tick";
    EXPECT_EQ(reference, fly(mission, Driver::kEpochInline))
        << label << ": inline epoch driver diverges from per-tick";
    EXPECT_EQ(reference, fly(mission, Driver::kEpochPooled))
        << label << ": pooled epoch driver diverges from per-tick";
    EXPECT_NE(reference.find("\"type\":\"digest\""), std::string::npos)
        << label << ": no digest windows closed";
    if (reference.find("\"type\":\"health\"") != std::string::npos) {
      ++missions_with_breaches;
    }
  }
  // The sweep must exercise the watchdog path, not just quiet flights.
  EXPECT_GT(missions_with_breaches, 0u)
      << "no seed produced a health event; the equivalence check never "
         "covered watchdog emission";
}

TEST(OnlinePlane, Fig8MissionStreamsIdenticalUnderWarp) {
  const auto fly_fig8 = [](bool warp) {
    scenarios::Fig8Options options;  // stock: faulty process on P1
    system::ModuleConfig config = scenarios::fig8_config(options);
    config.telemetry.online.enabled = true;
    config.telemetry.online.window = 325;  // 4 windows per MTF
    system::Module module(std::move(config));
    module.set_time_warp(warp);
    module.start_process_by_name(module.partition_id("AOCS"),
                                 scenarios::kFaultyProcessName);
    module.run(4 * scenarios::kFig8Mtf);
    return plane_stream(module.online(), "fig8");
  };
  const std::string stepped = fly_fig8(false);
  const std::string warped = fly_fig8(true);
  EXPECT_EQ(stepped, warped);
  EXPECT_NE(stepped.find("\"type\":\"digest\""), std::string::npos);
}

// ------------------------------------------------------------- watchdogs --

TEST(OnlinePlane, CleanFig8FlightRaisesNoBreaches) {
  system::ModuleConfig config =
      scenarios::fig8_config({.with_faulty_process = false});
  config.telemetry.online.enabled = true;
  config.telemetry.online.window = 650;
  system::Module module(std::move(config));
  module.run(4 * scenarios::kFig8Mtf);
  ASSERT_NE(module.online(), nullptr);
  EXPECT_EQ(module.online()->windows_closed(), 8u);
  for (const telemetry::HealthEvent& event : module.online()->events()) {
    ADD_FAILURE() << "clean flight raised " << to_string(event.kind) << " @"
                  << event.tick << ": " << event.detail;
  }
}

TEST(OnlinePlane, FaultyFig8FlightLightsTheDeadlineWatchdog) {
  system::ModuleConfig config = scenarios::fig8_config();
  config.telemetry.online.enabled = true;
  config.telemetry.online.window = 650;
  system::Module module(std::move(config));
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(4 * scenarios::kFig8Mtf);
  ASSERT_NE(module.online(), nullptr);
  const std::int32_t aocs = module.partition_id("AOCS").value();
  bool fired = false;
  for (const telemetry::HealthEvent& event : module.online()->events()) {
    if (event.kind == telemetry::Watchdog::kDeadlineMissRate &&
        event.partition == aocs) {
      fired = true;
      EXPECT_NE(event.cause, 0u)
          << "breach not causally linked to a root-cause chain";
    }
  }
  EXPECT_TRUE(fired) << "the faulty process missed deadlines but no "
                        "deadline watchdog fired on AOCS";
}

TEST(OnlinePlane, HealthEventsLandInTraceAndSpans) {
  system::ModuleConfig config = scenarios::fig8_config();
  config.telemetry.online.enabled = true;
  config.telemetry.online.window = 650;
  system::Module module(std::move(config));
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(2 * scenarios::kFig8Mtf);
  ASSERT_NE(module.online(), nullptr);
  ASSERT_FALSE(module.online()->events().empty());
  bool traced = false;
  for (const util::TraceEvent& event : module.trace().events()) {
    if (event.kind == util::EventKind::kHealth) traced = true;
  }
  EXPECT_TRUE(traced) << "kHealth missing from the module trace";
  bool spanned = false;
  for (const telemetry::Span& span : module.spans().closed()) {
    if (span.kind == telemetry::SpanKind::kHealth) spanned = true;
  }
  EXPECT_TRUE(spanned) << "kHealth instant span missing";
}

TEST(OnlinePlane, DisabledByDefaultAndInvisibleToMetrics) {
  // Default config: no plane.
  system::Module plain(scenarios::fig8_config());
  EXPECT_EQ(plain.online(), nullptr);

  // The plane samples the registry through point reads, never snapshot():
  // metrics exports are byte-identical with the plane on or off.
  const auto metrics_with_plane = [](bool enabled) {
    system::ModuleConfig config = scenarios::fig8_config();
    config.telemetry.online.enabled = enabled;
    config.telemetry.online.window = 256;
    system::Module module(std::move(config));
    module.run(2 * scenarios::kFig8Mtf);
    return telemetry::to_json(module.metrics_snapshot());
  };
  EXPECT_EQ(metrics_with_plane(false), metrics_with_plane(true));
}

TEST(OnlinePlane, StatusReportCarriesTheSummaryLine) {
  system::ModuleConfig config = scenarios::fig8_config();
  config.telemetry.online.enabled = true;
  config.telemetry.online.window = 650;
  system::Module module(std::move(config));
  module.run(scenarios::kFig8Mtf);
  const std::string report = module.status_report();
  EXPECT_NE(report.find("online: windows="), std::string::npos) << report;
  EXPECT_NE(report.find("trace: recorded="), std::string::npos) << report;
}

TEST(FiWatchdogOracle, SelfTestDetectsAndLinksForcedMisses) {
  const std::vector<fi::Breach> failures = fi::watchdog_selftest();
  for (const fi::Breach& failure : failures) {
    ADD_FAILURE() << "[" << failure.oracle << "] " << failure.detail;
  }
}

// ------------------------------------------------------- export edge cases --

TEST(MetricsExportEdge, EmptyRegistryExportsHeaderOnly) {
  telemetry::MetricsRegistry registry;
  const telemetry::MetricsSnapshot snapshot = registry.snapshot(0);
  EXPECT_TRUE(snapshot.samples.empty());
  const std::string json = telemetry::to_json(snapshot);
  const util::json::ParseResult parsed = util::json::parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error->to_string();
  const util::json::Value* metrics = parsed.value->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->as_array().empty());
  EXPECT_EQ(telemetry::to_csv(snapshot),
            "metric,index,kind,value,count,sum,min,max\n");
}

TEST(JsonExportEdge, NonFiniteDoublesSerialiseAsNull) {
  using util::json::Value;
  EXPECT_EQ(Value{std::numeric_limits<double>::quiet_NaN()}.dump(), "null");
  EXPECT_EQ(Value{std::numeric_limits<double>::infinity()}.dump(), "null");
  EXPECT_EQ(Value{-std::numeric_limits<double>::infinity()}.dump(), "null");
  util::json::Array mixed;
  mixed.push_back(Value{1.5});
  mixed.push_back(Value{std::numeric_limits<double>::quiet_NaN()});
  const std::string dumped = Value{std::move(mixed)}.dump();
  EXPECT_EQ(dumped, "[1.5,null]");
  // The document must round-trip through the parser (a bare `nan` token
  // would be rejected).
  EXPECT_TRUE(util::json::parse(dumped).ok());
}

TEST(CsvEscapeEdge, QuotesFieldsWithSeparatorsAndQuotes) {
  EXPECT_EQ(telemetry::csv_escape("plain_name"), "plain_name");
  EXPECT_EQ(telemetry::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(telemetry::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(telemetry::csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(telemetry::csv_escape(""), "");
}

}  // namespace
}  // namespace air
