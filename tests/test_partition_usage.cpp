// Partition window usage accounting (busy vs slack ticks) and partition
// idle-mode semantics.
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

TEST(PartitionUsage, BusyAndSlackTicksPartitionTheWindows) {
  scenarios::Fig8Options options;
  options.with_faulty_process = false;
  system::Module module(scenarios::fig8_config(options));
  module.run(10 * scenarios::kFig8Mtf);

  // P1's window is 200/MTF; its processes use 80 ticks (60+20) and the
  // window idles for the rest (the injectable process is absent).
  const auto& p1 = module.partition_pcb(module.partition_id("AOCS"));
  EXPECT_EQ(p1.busy_ticks + p1.slack_ticks, 10u * 200u);
  EXPECT_NEAR(static_cast<double>(p1.busy_ticks), 10.0 * 82, 30.0);

  // P4 (windows 700/MTF, work ~180+wrapping): mostly slack under chi_1.
  const auto& p4 = module.partition_pcb(module.partition_id("PAYLOAD"));
  EXPECT_EQ(p4.busy_ticks + p4.slack_ticks, 10u * 700u);
  EXPECT_GT(p4.slack_ticks, p4.busy_ticks);
}

TEST(PartitionUsage, FullyLoadedPartitionHasNoSlack) {
  system::ModuleConfig config;
  system::PartitionConfig p;
  p.name = "BUSY";
  system::ProcessConfig hog;
  hog.attrs.name = "hog";
  hog.attrs.priority = 10;
  hog.attrs.script = ScriptBuilder{}.compute(1000000).build();
  p.processes.push_back(std::move(hog));
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  system::Module module(std::move(config));
  module.run(100);
  const auto& pcb = module.partition_pcb(PartitionId{0});
  EXPECT_EQ(pcb.busy_ticks, 100u);
  EXPECT_EQ(pcb.slack_ticks, 0u);
}

TEST(PartitionIdleMode, StopPartitionActionIdlesOnlyTheTarget) {
  scenarios::Fig8Options options;
  options.with_faulty_process = true;
  system::ModuleConfig config = scenarios::fig8_config(options);
  // Escalate P1's deadline misses to a partition stop.
  config.partitions[0].hm_table.set(hm::ErrorCode::kDeadlineMissed,
                                    hm::ErrorLevel::kProcess,
                                    hm::RecoveryAction::kStopPartition);
  system::Module module(std::move(config));
  const PartitionId aocs = module.partition_id("AOCS");
  module.start_process_by_name(aocs, scenarios::kFaultyProcessName);

  module.run(5 * scenarios::kFig8Mtf);
  // The first detected miss (t=1300) stopped the partition.
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 1u);
  EXPECT_EQ(module.partition_pcb(aocs).mode, pmk::OperatingMode::kIdle);

  // Other partitions keep flying.
  const auto& ttc = module.partition_pcb(module.partition_id("TTC"));
  EXPECT_GT(ttc.busy_ticks, 0u);
  ProcessId tm;
  ASSERT_EQ(module.apex(module.partition_id("TTC"))
                .get_process_id("p2_tm", tm),
            apex::ReturnCode::kNoError);
  apex::ProcessStatus status;
  ASSERT_EQ(module.apex(module.partition_id("TTC"))
                .get_process_status(tm, status),
            apex::ReturnCode::kNoError);
  EXPECT_GT(status.completions, 5u);

  // An idle partition can be restarted by the integrator.
  module.init_partition(aocs, /*cold=*/true);
  EXPECT_EQ(module.partition_pcb(aocs).mode, pmk::OperatingMode::kNormal);
  const auto busy_before = module.partition_pcb(aocs).busy_ticks;
  module.run(2 * scenarios::kFig8Mtf);
  EXPECT_GT(module.partition_pcb(aocs).busy_ticks, busy_before);
}

TEST(PartitionIdleMode, IdlePartitionWindowsRunNothing) {
  scenarios::Fig8Options options;
  options.with_faulty_process = false;
  system::Module module(scenarios::fig8_config(options));
  const PartitionId p3 = module.partition_id("FDIR");
  module.run(100);
  ASSERT_EQ(module.apex(p3).set_partition_mode(pmk::OperatingMode::kIdle),
            apex::ReturnCode::kNoError);
  const auto busy_before = module.partition_pcb(p3).busy_ticks;
  module.run(3 * scenarios::kFig8Mtf);
  EXPECT_EQ(module.partition_pcb(p3).busy_ticks, busy_before)
      << "idle mode: windows pass, nothing executes";
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u)
      << "idle partitions have no registered deadlines";
}

}  // namespace
}  // namespace air
