// Unit tests for the util substrate: intrusive list, fixed containers,
// ring buffer, deterministic RNG, trace, JSON.
#include <gtest/gtest.h>

#include <string>

#include "util/fixed_vector.hpp"
#include "util/intrusive_list.hpp"
#include "util/json.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"
#include "util/types.hpp"

namespace air {
namespace {

// ---------- Id ----------

TEST(Id, DistinctTagTypesDoNotCompare) {
  const PartitionId p{3};
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.value(), 3);
  EXPECT_FALSE(PartitionId::invalid().valid());
  EXPECT_LT(PartitionId{1}, PartitionId{2});
}

// ---------- IntrusiveList ----------

struct Node {
  int key{0};
  util::ListHook hook;
};

using NodeList = util::IntrusiveList<Node, &Node::hook>;

TEST(IntrusiveList, PushPopMaintainsOrder) {
  Node a{1}, b{2}, c{3};
  NodeList list;
  list.push_back(a);
  list.push_back(b);
  list.push_front(c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.front().key, 3);
  EXPECT_EQ(list.back().key, 2);
  list.pop_front();
  EXPECT_EQ(list.front().key, 1);
}

TEST(IntrusiveList, UnlinkRemovesFromMiddle) {
  Node a{1}, b{2}, c{3};
  NodeList list;
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  NodeList::remove(b);
  EXPECT_FALSE(b.hook.linked());
  std::vector<int> keys;
  for (Node& n : list) keys.push_back(n.key);
  EXPECT_EQ(keys, (std::vector<int>{1, 3}));
}

TEST(IntrusiveList, DestructorUnlinksAutomatically) {
  NodeList list;
  Node a{1};
  list.push_back(a);
  {
    Node b{2};
    list.push_back(b);
    EXPECT_EQ(list.size(), 2u);
  }
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.front().key, 1);
}

TEST(IntrusiveList, InsertBeforeSupportsSortedInsertion) {
  Node a{10}, b{30}, c{20};
  NodeList list;
  list.push_back(a);
  list.push_back(b);
  list.insert_before(&b, c);
  std::vector<int> keys;
  for (Node& n : list) keys.push_back(n.key);
  EXPECT_EQ(keys, (std::vector<int>{10, 20, 30}));
  Node d{40};
  list.insert_before(nullptr, d);  // nullptr = end
  EXPECT_EQ(list.back().key, 40);
}

// ---------- FixedVector ----------

TEST(FixedVector, BasicOperations) {
  util::FixedVector<std::string, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back("a");
  v.emplace_back("b");
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v.back(), "b");
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
}

TEST(FixedVector, CopyAndMove) {
  util::FixedVector<std::string, 4> v;
  v.push_back("x");
  v.push_back("y");
  util::FixedVector<std::string, 4> copy = v;
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy[1], "y");
  util::FixedVector<std::string, 4> moved = std::move(v);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_TRUE(v.empty());
}

// ---------- RingBuffer ----------

TEST(RingBuffer, FifoSemantics) {
  util::RingBuffer<int> ring(3);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.push(3));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push(4)) << "push on full ring must fail";
  int out = 0;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.push(4));
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(ring.pop(out));
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(ring.pop(out));
}

TEST(RingBuffer, WrapsManyTimes) {
  util::RingBuffer<int> ring(5);
  int expected = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.push(i));
    if (i % 2 == 1) {
      int a = -1, b = -1;
      ASSERT_TRUE(ring.pop(a));
      ASSERT_TRUE(ring.pop(b));
      ASSERT_EQ(a, expected++);
      ASSERT_EQ(b, expected++);
    }
  }
}

// ---------- Rng ----------

TEST(Rng, DeterministicAcrossInstances) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, UniformRespectsBounds) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
  EXPECT_EQ(rng.uniform(5, 5), 5);
}

// ---------- Trace ----------

TEST(Trace, RecordsAndFilters) {
  util::Trace trace;
  trace.record(1, util::EventKind::kDeadlineMiss, 0, 1, 205);
  trace.record(2, util::EventKind::kPartitionDispatch, 1, 0);
  trace.record(3, util::EventKind::kDeadlineMiss, 0, 2, 400);
  EXPECT_EQ(trace.count(util::EventKind::kDeadlineMiss), 2u);
  const auto misses = trace.filtered(
      util::EventKind::kDeadlineMiss,
      [](const util::TraceEvent& e) { return e.b == 2; });
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].c, 400);
}

TEST(Trace, DisabledTraceRecordsNothing) {
  util::Trace trace;
  trace.enable(false);
  trace.record(1, util::EventKind::kUser);
  EXPECT_TRUE(trace.events().empty());
}

// ---------- JSON ----------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(util::json::parse("null").value->is_null());
  EXPECT_EQ(util::json::parse("true").value->as_bool(), true);
  EXPECT_EQ(util::json::parse("-42").value->as_int(), -42);
  EXPECT_TRUE(util::json::parse("1300").value->is_int())
      << "integral literals must stay exact";
  EXPECT_DOUBLE_EQ(util::json::parse("2.5e1").value->as_double(), 25.0);
  EXPECT_EQ(util::json::parse("\"a\\nb\"").value->as_string(), "a\nb");
}

TEST(Json, ParsesNestedStructures) {
  const auto result = util::json::parse(R"({
    "name": "fig8",            // comments allowed in config files
    "mtf": 1300,
    "windows": [ {"offset": 0}, {"offset": 200} ]
  })");
  ASSERT_TRUE(result.ok()) << result.error->to_string();
  const auto& root = *result.value;
  EXPECT_EQ(root.get_string("name", ""), "fig8");
  EXPECT_EQ(root.get_int("mtf", 0), 1300);
  EXPECT_EQ(root.find("windows")->as_array()[1].get_int("offset", -1), 200);
}

TEST(Json, ReportsErrorsWithPosition) {
  const auto result = util::json::parse("{\n  \"a\": [1, 2,\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->line, 3);
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_FALSE(util::json::parse("{} extra").ok());
}

TEST(Json, DumpRoundTrips) {
  const std::string text = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
  const auto parsed = util::json::parse(text);
  ASSERT_TRUE(parsed.ok());
  const auto reparsed = util::json::parse(parsed.value->dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value->dump(), parsed.value->dump());
}

TEST(Json, UnicodeEscapes) {
  const auto result = util::json::parse("\"A\\u00e9\"");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value->as_string(), "A\xc3\xa9");
}

}  // namespace
}  // namespace air
