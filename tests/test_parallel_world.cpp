// Parallel-world equivalence: the epoch driver (World::run, inline or on
// the worker pool) must be byte-identical to the per-tick lockstep
// reference (World::run_lockstep) -- per-module traces, metrics exports,
// span streams, bus-transit spans, bus statistics and final APEX-visible
// state -- across randomized multi-module missions with remote IPC traffic
// (sampling rings + queuing links) and mid-mission mode switches.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "config/fig8.hpp"
#include "pos/workload.hpp"
#include "system/module.hpp"
#include "system/world.hpp"
#include "telemetry/export.hpp"
#include "telemetry/spans.hpp"
#include "util/rng.hpp"
#include "util/trace_export.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

// Serialize everything a partition application could observe through APEX.
std::string apex_visible_state(system::Module& module) {
  std::string out;
  for (std::size_t p = 0; p < module.partition_count(); ++p) {
    const PartitionId id{static_cast<std::int32_t>(p)};
    const pmk::PartitionControlBlock& pcb = module.partition_pcb(id);
    out += "partition " + std::to_string(p) +
           " mode=" + std::to_string(static_cast<int>(pcb.mode)) +
           " busy=" + std::to_string(pcb.busy_ticks) +
           " slack=" + std::to_string(pcb.slack_ticks) + "\n";
    auto& kernel = module.kernel(id);
    for (std::size_t q = 0; q < kernel.process_count(); ++q) {
      apex::ProcessStatus st;
      if (module.apex(id).get_process_status(
              ProcessId{static_cast<std::int32_t>(q)}, st) !=
          apex::ReturnCode::kNoError) {
        continue;
      }
      out += "  " + st.name + " state=" +
             std::to_string(static_cast<int>(st.state)) +
             " deadline=" + std::to_string(st.deadline_time) +
             " completions=" + std::to_string(st.completions) +
             " max_resp=" + std::to_string(st.max_response) +
             " misses=" + std::to_string(st.deadline_misses) + "\n";
    }
    for (const std::string& line : module.console(id)) {
      out += "  console: " + line + "\n";
    }
  }
  out += "now=" + std::to_string(module.now());
  out += " stopped=" + std::to_string(module.stopped() ? 1 : 0);
  return out;
}

/// Full observable fingerprint of a world: every byte the equivalence
/// contract covers.
std::string fingerprint(system::World& world) {
  std::string out;
  for (std::size_t m = 0; m < world.module_count(); ++m) {
    system::Module& module = world.module(m);
    out += "=== module " + std::to_string(m) + "\n";
    out += util::to_json(module.trace());
    const telemetry::MetricsSnapshot snap = module.metrics_snapshot();
    out += telemetry::to_json(snap) + "\n" + telemetry::to_csv(snap);
    out += telemetry::spans_to_json(module.spans());
    out += apex_visible_state(module);
  }
  out += "=== bus\n" + telemetry::spans_to_json(world.bus_spans());
  const net::BusStats& bus = world.bus().stats();
  out += "sent=" + std::to_string(bus.frames_sent) +
         " delivered=" + std::to_string(bus.frames_delivered) +
         " dropped=" + std::to_string(bus.frames_dropped) +
         " latency=" + std::to_string(bus.total_latency) +
         " now=" + std::to_string(world.now());
  return out;
}

struct Mission {
  net::BusConfig bus;
  std::vector<system::ModuleConfig> modules;
  Ticks phase1{0};
  Ticks phase2{0};
  bool mode_switch{false};
};

model::Schedule round_robin(ScheduleId id, std::size_t partitions,
                            Ticks slice) {
  model::Schedule s;
  s.id = id;
  s.mtf = static_cast<Ticks>(partitions) * slice;
  for (std::size_t i = 0; i < partitions; ++i) {
    const PartitionId p{static_cast<std::int32_t>(i)};
    s.requirements.push_back({p, s.mtf, slice});
    s.windows.push_back({p, static_cast<Ticks>(i) * slice, slice});
  }
  return s;
}

// Randomized multi-module mission: a sampling ring (module i broadcasts to
// module i+1), an optional queuing link from module 0 to module 1, worker
// processes of varying density (some with tight time capacities, so HM and
// anomaly chains engage), and optionally a mode switch between phases.
Mission random_mission(std::uint64_t seed) {
  util::Rng rng(seed);
  Mission mission;
  mission.bus.slot_length = static_cast<Ticks>(rng.uniform(2, 10));
  mission.bus.frames_per_slot = static_cast<std::size_t>(rng.uniform(1, 4));
  mission.bus.propagation_delay = static_cast<Ticks>(rng.uniform(1, 6));
  mission.phase1 = static_cast<Ticks>(rng.uniform(150, 600));
  mission.phase2 = static_cast<Ticks>(rng.uniform(800, 2500));
  mission.mode_switch = rng.chance(0.5);

  const int nmodules = static_cast<int>(rng.uniform(2, 4));
  const bool queuing_link = rng.chance(0.6);
  for (int m = 0; m < nmodules; ++m) {
    system::ModuleConfig config;
    config.id = ModuleId{m};
    config.name = "m" + std::to_string(m);
    const std::size_t nparts = static_cast<std::size_t>(rng.uniform(1, 2));
    const Ticks slice = static_cast<Ticks>(rng.uniform(20, 60));

    for (std::size_t p = 0; p < nparts; ++p) {
      system::PartitionConfig partition;
      partition.name = "p" + std::to_string(p);
      if (p == 0) {
        // Ring endpoints live on partition 0 of every module.
        partition.sampling_ports.push_back(
            {"OUT", ipc::PortDirection::kSource, 64, kInfiniteTime});
        partition.sampling_ports.push_back(
            {"IN", ipc::PortDirection::kDestination, 64, 200});
        if (queuing_link && m == 0) {
          partition.queuing_ports.push_back(
              {"QOUT", ipc::PortDirection::kSource, 64, 8,
               ipc::QueuingDiscipline::kFifo});
        }
        if (queuing_link && m == 1) {
          partition.queuing_ports.push_back(
              {"QIN", ipc::PortDirection::kDestination, 64, 8,
               ipc::QueuingDiscipline::kFifo});
        }
        system::ProcessConfig chatter;
        chatter.attrs.name = "chatter";
        chatter.attrs.priority = 5;
        ScriptBuilder script;
        script.compute(rng.uniform(1, 5))
            .sampling_write(0, "ring-" + std::to_string(m))
            .sampling_read(1);
        if (queuing_link && m == 0) {
          script.queuing_send(0, "q-" + std::to_string(seed), 0);
        }
        if (queuing_link && m == 1) script.queuing_receive(0, 0);
        script.timed_wait(static_cast<Ticks>(rng.uniform(15, 90)));
        chatter.attrs.script = script.build();
        partition.processes.push_back(std::move(chatter));
      }
      const int nprocs = static_cast<int>(rng.uniform(1, 2));
      for (int q = 0; q < nprocs; ++q) {
        system::ProcessConfig process;
        process.attrs.name = "w" + std::to_string(q);
        process.attrs.priority = 10 + q;
        ScriptBuilder script;
        if (rng.chance(0.5)) {
          const Ticks period = slice * static_cast<Ticks>(nparts) *
                               static_cast<Ticks>(rng.uniform(1, 4));
          process.attrs.period = period;
          process.attrs.time_capacity =
              rng.chance(0.25) ? period / 4 : period;
          script.compute(rng.uniform(1, 15));
          if (rng.chance(0.3)) script.log("beat");
          script.periodic_wait();
        } else {
          script.compute(rng.uniform(1, 8));
          script.timed_wait(static_cast<Ticks>(rng.uniform(30, 400)));
        }
        process.attrs.script = script.build();
        partition.processes.push_back(std::move(process));
      }
      config.partitions.push_back(std::move(partition));
    }

    ipc::ChannelConfig ring;
    ring.id = ChannelId{0};
    ring.kind = ipc::ChannelKind::kSampling;
    ring.source = {PartitionId{0}, "OUT"};
    ring.remote_destinations = {
        {ModuleId{(m + 1) % nmodules}, PartitionId{0}, "IN"}};
    config.channels.push_back(std::move(ring));
    if (queuing_link && m == 0) {
      ipc::ChannelConfig link;
      link.id = ChannelId{1};
      link.kind = ipc::ChannelKind::kQueuing;
      link.source = {PartitionId{0}, "QOUT"};
      link.remote_destinations = {{ModuleId{1}, PartitionId{0}, "QIN"}};
      config.channels.push_back(std::move(link));
    }

    config.schedules = {round_robin(ScheduleId{0}, nparts, slice)};
    if (m == 0 && mission.mode_switch) {
      // A second table (same windows, its own id): switching to it at the
      // MTF boundary exercises the full switch machinery either way.
      model::Schedule alt = round_robin(ScheduleId{1}, nparts, slice);
      alt.name = "alt";
      config.schedules.push_back(std::move(alt));
    }
    mission.modules.push_back(std::move(config));
  }
  return mission;
}

enum class Driver { kLockstep, kEpochInline, kEpochPooled };

std::string fly(const Mission& mission, Driver driver,
                std::size_t workers = 4, system::World::Stats* stats = nullptr,
                std::string* report = nullptr) {
  system::World world(mission.bus);
  for (const system::ModuleConfig& config : mission.modules) {
    world.add_module(config);
  }
  if (driver == Driver::kEpochPooled) world.set_workers(workers);
  const auto advance = [&](Ticks ticks) {
    if (driver == Driver::kLockstep) {
      world.run_lockstep(ticks);
    } else {
      world.run(ticks);
    }
  };
  advance(mission.phase1);
  if (mission.mode_switch) {
    (void)world.module(0).apex(PartitionId{0}).set_module_schedule(
        ScheduleId{1});
  }
  advance(mission.phase2);
  if (stats != nullptr) *stats = world.stats();
  if (report != nullptr) *report = world.status_report();
  return fingerprint(world);
}

TEST(ParallelWorld, RandomizedMissionsAreByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Mission mission = random_mission(seed);
    const std::string label = "seed " + std::to_string(seed);
    const std::string reference = fly(mission, Driver::kLockstep);
    system::World::Stats stats;
    const std::string inline_epochs =
        fly(mission, Driver::kEpochInline, 1, &stats);
    EXPECT_EQ(reference, inline_epochs)
        << label << ": inline epoch driver diverges from lockstep";
    const std::string pooled = fly(mission, Driver::kEpochPooled, 4);
    EXPECT_EQ(reference, pooled)
        << label << ": pooled epoch driver diverges from lockstep";
    EXPECT_GT(stats.epochs, 0u) << label;
    EXPECT_EQ(stats.epoch_ticks,
              static_cast<std::uint64_t>(mission.phase1 + mission.phase2))
        << label;
  }
}

TEST(ParallelWorld, MissionsCarryRemoteTraffic) {
  // Separate sanity pass: every seed's mission delivers real bus frames.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Mission mission = random_mission(seed);
    system::World world(mission.bus);
    for (const auto& config : mission.modules) world.add_module(config);
    world.set_workers(3);
    world.run(mission.phase1 + mission.phase2);
    EXPECT_GT(world.bus().stats().frames_delivered, 0u)
        << "seed " << seed << " exchanged no remote messages";
  }
}

TEST(ParallelWorld, Fig8WithGroundStationFaultAndModeSwitch) {
  // The air_record mission shape: the Fig. 8 prototype (faulty process on
  // AOCS, chi_1 -> chi_2 switch at t=500) feeding a ground archiver over
  // the bus -- HM recovery, schedule switch and cross-bus queuing flows,
  // byte-identical under the pooled epoch driver.
  auto mission = [](Driver driver) {
    system::ModuleConfig fig8 = scenarios::fig8_config();
    fig8.id = ModuleId{0};
    for (ipc::ChannelConfig& channel : fig8.channels) {
      if (channel.kind == ipc::ChannelKind::kQueuing) {
        channel.remote_destinations.push_back(
            {ModuleId{1}, PartitionId{0}, "SCI_IN"});
      }
    }
    system::ModuleConfig ground;
    ground.id = ModuleId{1};
    ground.name = "ground";
    system::PartitionConfig archive;
    archive.name = "GROUND";
    archive.queuing_ports.push_back(
        {"SCI_IN", ipc::PortDirection::kDestination, 64, 16,
         ipc::QueuingDiscipline::kFifo});
    system::ProcessConfig archiver;
    archiver.attrs.name = "archiver";
    archiver.attrs.priority = 10;
    archiver.attrs.script = ScriptBuilder{}
                                .queuing_receive(0, /*timeout=*/0)  // poll
                                .timed_wait(40)
                                .jump(0)
                                .build();
    archive.processes.push_back(std::move(archiver));
    ground.partitions.push_back(std::move(archive));
    model::Schedule s;
    s.id = ScheduleId{0};
    s.mtf = scenarios::kFig8Mtf;
    s.requirements = {{PartitionId{0}, scenarios::kFig8Mtf,
                       scenarios::kFig8Mtf}};
    s.windows = {{PartitionId{0}, 0, scenarios::kFig8Mtf}};
    ground.schedules = {s};

    system::World world(
        {.slot_length = 10, .frames_per_slot = 2, .propagation_delay = 2});
    system::Module& prototype = world.add_module(std::move(fig8));
    world.add_module(std::move(ground));
    if (driver == Driver::kEpochPooled) world.set_workers(4);
    prototype.start_process_by_name(prototype.partition_id("AOCS"),
                                    scenarios::kFaultyProcessName);
    const auto advance = [&](Ticks ticks) {
      driver == Driver::kLockstep ? world.run_lockstep(ticks)
                                  : world.run(ticks);
    };
    advance(500);
    (void)prototype.apex(prototype.partition_id("AOCS"))
        .set_module_schedule(ScheduleId{1});
    advance(5 * scenarios::kFig8Mtf);
    return fingerprint(world);
  };
  const std::string reference = mission(Driver::kLockstep);
  EXPECT_EQ(reference, mission(Driver::kEpochInline));
  EXPECT_EQ(reference, mission(Driver::kEpochPooled));
  EXPECT_GT(reference.size(), 10'000u) << "the mission is non-trivial";
  EXPECT_NE(reference.find("\"anomalies\""), std::string::npos);
}

TEST(ParallelWorld, WorkerCountNeverChangesBytes) {
  const Mission mission = random_mission(7);
  const std::string reference = fly(mission, Driver::kLockstep);
  for (std::size_t workers : {2u, 3u, 8u}) {
    EXPECT_EQ(reference, fly(mission, Driver::kEpochPooled, workers))
        << workers << " workers";
  }
}

TEST(ParallelWorld, StatusReportDescribesTheWorld) {
  const Mission mission = random_mission(3);
  system::World::Stats stats;
  std::string report;
  (void)fly(mission, Driver::kEpochPooled, 2, &stats, &report);
  EXPECT_NE(report.find("world t="), std::string::npos) << report;
  EXPECT_NE(report.find("epochs:"), std::string::npos) << report;
  EXPECT_NE(report.find("worker utilisation="), std::string::npos) << report;
  EXPECT_NE(report.find("bus:"), std::string::npos) << report;
  EXPECT_GT(stats.epochs, 0u);
  EXPECT_GE(stats.epoch_ticks, stats.epochs)
      << "mean epoch length must be >= 1 tick";
}

TEST(ParallelWorld, EpochsFastForwardIdleWorlds) {
  // All-quiescent worlds must still advance in large strides (the epoch
  // horizon subsumes the lockstep warp): far fewer epochs than ticks.
  Mission mission = random_mission(5);
  for (auto& module : mission.modules) {
    module.partitions[0].processes.resize(1);  // keep only the ring chatter
  }
  system::World world(mission.bus);
  for (const auto& config : mission.modules) world.add_module(config);
  world.run(50'000);
  const system::World::Stats& stats = world.stats();
  EXPECT_EQ(stats.epoch_ticks, 50'000u);
  EXPECT_LT(stats.epochs, 30'000u)
      << "horizon never exceeded one tick; idle spans are not amortized";
}

}  // namespace
}  // namespace air
