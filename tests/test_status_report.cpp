// Module::status_report() observability output.
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "system/module.hpp"

namespace air {
namespace {

TEST(StatusReport, CoversPartitionsProcessesAndHm) {
  system::Module module(scenarios::fig8_config());
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(5 * scenarios::kFig8Mtf);

  const std::string report = module.status_report();
  EXPECT_NE(report.find("module fig8-prototype"), std::string::npos);
  EXPECT_NE(report.find("core 0: schedule 0"), std::string::npos);
  for (const char* partition : {"AOCS", "TTC", "FDIR", "PAYLOAD"}) {
    EXPECT_NE(report.find(partition), std::string::npos) << partition;
  }
  EXPECT_NE(report.find("p1_faulty"), std::string::npos);
  EXPECT_NE(report.find("misses=4"), std::string::npos)
      << "faulty process misses in 5 MTFs\n"
      << report;
  EXPECT_NE(report.find("hm log entries: 4"), std::string::npos);
  EXPECT_NE(report.find("mode=normal"), std::string::npos);
  // Telemetry summary: utilization, miss counts and IPC totals.
  EXPECT_NE(report.find("telemetry:"), std::string::npos) << report;
  EXPECT_NE(report.find("util="), std::string::npos);
  EXPECT_NE(report.find("ipc:"), std::string::npos);
}

TEST(StatusReport, MarksAStoppedModule) {
  auto config = scenarios::fig8_config();
  config.partitions[0].hm_table.set(hm::ErrorCode::kDeadlineMissed,
                                    hm::ErrorLevel::kProcess,
                                    hm::RecoveryAction::kStopModule);
  system::Module module(std::move(config));
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(3 * scenarios::kFig8Mtf);
  EXPECT_TRUE(module.stopped());
  EXPECT_NE(module.status_report().find("[STOPPED]"), std::string::npos);
}

}  // namespace
}  // namespace air
