// Property tests of the supply-bound function machinery behind the
// schedulability analysis (and the batch service's memoised tables).
//
// Over randomized generator-produced PSTs (seeds logged on failure), for
// every partition of every schedule:
//   - sbf is monotone non-decreasing and 1-Lipschitz (one tick of interval
//     buys at most one tick of supply);
//   - MTF additivity, the property the tabulation relies on:
//       sbf(q*MTF + r) == q*A + sbf(r),  A = partition time per MTF;
//   - inverse_sbf is the exact lower inverse of sbf: the returned length
//     reaches the demand and no shorter length does;
//   - the phase-free sbf lower-bounds every phase-aware supply (and the
//     phase-aware inverse never waits longer than the phase-free one) --
//     the soundness relation between Phasing::kWorstCase and kMtfAligned.
#include <gtest/gtest.h>

#include "model/generator.hpp"
#include "model/schedulability.hpp"
#include "util/rng.hpp"

namespace air {
namespace {

model::Schedule random_schedule(std::uint64_t seed) {
  util::Rng rng(seed);
  static constexpr Ticks kPeriods[] = {40, 80, 160};
  const int partitions = static_cast<int>(rng.uniform(2, 4));
  std::vector<model::ScheduleRequirement> reqs;
  double budget = 0.95;
  for (int p = 0; p < partitions; ++p) {
    const Ticks period =
        kPeriods[static_cast<std::size_t>(rng.uniform(0, 2))];
    const double share = budget / static_cast<double>(partitions - p) *
                         (0.4 + rng.uniform01() * 0.6);
    const Ticks duration = std::max<Ticks>(
        3, static_cast<Ticks>(share * static_cast<double>(period)));
    budget -= static_cast<double>(duration) / static_cast<double>(period);
    reqs.push_back({PartitionId{p}, period, duration});
  }
  model::GeneratorInput input;
  input.requirements = reqs;
  const auto schedule = model::generate_schedule(input);
  EXPECT_TRUE(schedule.has_value()) << "seed " << seed;
  return *schedule;
}

class SbfProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SbfProperties, MonotoneAndLipschitz) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed " + std::to_string(seed));
  const model::Schedule schedule = random_schedule(seed);
  for (const auto& req : schedule.requirements) {
    const model::PartitionSupply supply(schedule, req.partition);
    Ticks prev = supply.sbf(0);
    EXPECT_EQ(prev, 0);
    for (Ticks len = 1; len <= 2 * schedule.mtf; ++len) {
      const Ticks cur = supply.sbf(len);
      EXPECT_GE(cur, prev) << "len " << len;
      EXPECT_LE(cur - prev, 1) << "len " << len;
      prev = cur;
    }
  }
}

TEST_P(SbfProperties, MtfAdditivity) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed " + std::to_string(seed));
  const model::Schedule schedule = random_schedule(seed);
  for (const auto& req : schedule.requirements) {
    const model::PartitionSupply supply(schedule, req.partition);
    const Ticks a = supply.per_mtf();
    for (const Ticks q : {Ticks{1}, Ticks{2}, Ticks{7}}) {
      for (Ticks r = 0; r <= schedule.mtf; r += 3) {
        EXPECT_EQ(supply.sbf(q * schedule.mtf + r), q * a + supply.sbf(r))
            << "q " << q << " r " << r;
      }
    }
  }
}

TEST_P(SbfProperties, InverseSbfIsTheExactLowerInverse) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed " + std::to_string(seed));
  const model::Schedule schedule = random_schedule(seed);
  for (const auto& req : schedule.requirements) {
    const model::PartitionSupply supply(schedule, req.partition);
    ASSERT_GT(supply.per_mtf(), 0);
    for (Ticks demand = 1; demand <= 2 * supply.per_mtf() + 3; ++demand) {
      const Ticks t = supply.inverse_sbf(demand);
      ASSERT_NE(t, kInfiniteTime) << "demand " << demand;
      EXPECT_GE(supply.sbf(t), demand) << "demand " << demand;
      ASSERT_GT(t, 0) << "demand " << demand;
      EXPECT_LT(supply.sbf(t - 1), demand)
          << "demand " << demand << ": not the smallest such length";
    }
  }
}

TEST_P(SbfProperties, PhaseAwareSupplyDominatesPhaseFreeBound) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed " + std::to_string(seed));
  const model::Schedule schedule = random_schedule(seed);
  for (const auto& req : schedule.requirements) {
    const model::PartitionSupply supply(schedule, req.partition);
    for (Ticks phase = 0; phase < schedule.mtf; phase += 7) {
      for (Ticks len = 0; len <= schedule.mtf; len += 5) {
        EXPECT_GE(supply.supply(phase, len), supply.sbf(len))
            << "phase " << phase << " len " << len;
      }
      for (Ticks demand = 1; demand <= supply.per_mtf(); demand += 4) {
        EXPECT_LE(supply.inverse_supply_from(phase, demand),
                  supply.inverse_sbf(demand))
            << "phase " << phase << " demand " << demand;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SbfProperties,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace air
