// E11: spatial partitioning (Sect. 2.1, Fig. 3).
//
// Applications in one partition cannot access addressing spaces outside
// those belonging to that partition; execution levels gate access within a
// partition; violations surface to the Health Monitor.
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "pmk/spatial.hpp"
#include "system/module.hpp"

namespace air {
namespace {

class SpatialTest : public ::testing::Test {
 protected:
  SpatialTest() : spatial_(machine_) {
    space_a_ = &spatial_.setup_partition(PartitionId{0}, {});
    space_b_ = &spatial_.setup_partition(PartitionId{1}, {});
  }

  hal::Machine machine_{4u << 20};
  pmk::SpatialManager spatial_;
  const pmk::PartitionSpace* space_a_{nullptr};
  const pmk::PartitionSpace* space_b_{nullptr};
};

TEST_F(SpatialTest, PartitionsGetDisjointPhysicalFrames) {
  EXPECT_NE(space_a_->app_data, space_b_->app_data);
  EXPECT_NE(space_a_->app_code, space_b_->app_code);
  EXPECT_NE(space_a_->context, space_b_->context);
}

TEST_F(SpatialTest, ApplicationCanUseItsOwnSections) {
  machine_.mmu().set_active_context(space_a_->context);
  using hal::AccessType;
  using hal::ExecLevel;
  EXPECT_TRUE(machine_.mmu()
                  .translate(pmk::kAppDataBase, AccessType::kWrite,
                             ExecLevel::kApplication)
                  .ok());
  EXPECT_TRUE(machine_.mmu()
                  .translate(pmk::kAppCodeBase, AccessType::kExecute,
                             ExecLevel::kApplication)
                  .ok());
  EXPECT_TRUE(machine_.mmu()
                  .translate(pmk::kAppStackBase, AccessType::kWrite,
                             ExecLevel::kApplication)
                  .ok());
}

TEST_F(SpatialTest, SameVirtualAddressMapsToOwnFramePerPartition) {
  // Write through partition A's context, then read the same virtual address
  // through B's: B must see its own (zeroed) frame, not A's data.
  machine_.mmu().set_active_context(space_a_->context);
  const std::uint32_t value = 0xabcd1234;
  ASSERT_TRUE(machine_
                  .checked_write(pmk::kAppDataBase,
                                 std::as_bytes(std::span{&value, 1}),
                                 hal::ExecLevel::kApplication)
                  .ok());
  machine_.mmu().set_active_context(space_b_->context);
  std::uint32_t read_back = 0xffffffff;
  ASSERT_TRUE(machine_
                  .checked_read(pmk::kAppDataBase,
                                std::as_writable_bytes(std::span{&read_back, 1}),
                                hal::ExecLevel::kApplication)
                  .ok());
  EXPECT_EQ(read_back, 0u);
  // And A still sees its value.
  machine_.mmu().set_active_context(space_a_->context);
  ASSERT_TRUE(machine_
                  .checked_read(pmk::kAppDataBase,
                                std::as_writable_bytes(std::span{&read_back, 1}),
                                hal::ExecLevel::kApplication)
                  .ok());
  EXPECT_EQ(read_back, value);
}

TEST_F(SpatialTest, ApplicationCannotWriteItsCode) {
  machine_.mmu().set_active_context(space_a_->context);
  const auto r = machine_.mmu().translate(
      pmk::kAppCodeBase, hal::AccessType::kWrite, hal::ExecLevel::kApplication);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault.kind, hal::MmuFault::Kind::kProtection);
}

TEST_F(SpatialTest, ExecutionLevelsGatePosAndPmkSections) {
  machine_.mmu().set_active_context(space_a_->context);
  using hal::AccessType;
  using hal::ExecLevel;
  // POS data: application blocked, POS and PMK allowed.
  EXPECT_FALSE(machine_.mmu()
                   .translate(pmk::kPosDataBase, AccessType::kRead,
                              ExecLevel::kApplication)
                   .ok());
  EXPECT_TRUE(machine_.mmu()
                  .translate(pmk::kPosDataBase, AccessType::kWrite,
                             ExecLevel::kPos)
                  .ok());
  // PMK region: only the PMK level, in any partition's context.
  EXPECT_FALSE(machine_.mmu()
                   .translate(pmk::kPmkBase, AccessType::kRead,
                              ExecLevel::kPos)
                   .ok());
  EXPECT_TRUE(machine_.mmu()
                  .translate(pmk::kPmkBase, AccessType::kWrite,
                             ExecLevel::kPmk)
                  .ok());
}

TEST_F(SpatialTest, PmkRegionIsSharedAcrossContexts) {
  machine_.mmu().set_active_context(space_a_->context);
  const auto in_a = machine_.mmu().translate(
      pmk::kPmkBase, hal::AccessType::kRead, hal::ExecLevel::kPmk);
  machine_.mmu().set_active_context(space_b_->context);
  const auto in_b = machine_.mmu().translate(
      pmk::kPmkBase, hal::AccessType::kRead, hal::ExecLevel::kPmk);
  ASSERT_TRUE(in_a.ok());
  ASSERT_TRUE(in_b.ok());
  EXPECT_EQ(*in_a.paddr, *in_b.paddr) << "one PMK, mapped everywhere";
}

// ---------- end-to-end: violation reaches the Health Monitor ----------

TEST(SpatialIntegration, OutOfPartitionAccessTriggersHm) {
  using pos::ScriptBuilder;
  system::ModuleConfig config = scenarios::fig8_config(
      {.with_faulty_process = false});
  // A snooping process on TTC that pokes an unmapped address.
  system::ProcessConfig snoop;
  snoop.attrs.name = "p2_snoop";
  snoop.attrs.period = 650;
  snoop.attrs.time_capacity = kInfiniteTime;
  snoop.attrs.priority = 40;
  snoop.attrs.script = ScriptBuilder{}
                           .memory_access(0x2000'0000, /*write=*/true)
                           .periodic_wait()
                           .build();
  config.partitions[1].processes.push_back(std::move(snoop));
  // Policy: stop the offending process.
  config.partitions[1].hm_table.set(hm::ErrorCode::kMemoryViolation,
                                    hm::ErrorLevel::kProcess,
                                    hm::RecoveryAction::kStopProcess);

  system::Module module(std::move(config));
  module.run(2 * scenarios::kFig8Mtf);

  const auto violations =
      module.trace().filtered(util::EventKind::kSpatialViolation);
  ASSERT_EQ(violations.size(), 1u) << "stopped after the first offence";
  EXPECT_EQ(violations[0].a, module.partition_id("TTC").value());
  EXPECT_EQ(violations[0].c, 0x2000'0000);

  // The process was stopped by HM and the rest of the system is unharmed.
  ProcessId snoop_id;
  ASSERT_EQ(module.apex(module.partition_id("TTC"))
                .get_process_id("p2_snoop", snoop_id),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(module.kernel(module.partition_id("TTC")).pcb(snoop_id)->state,
            pos::ProcessState::kDormant);
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u);
}

TEST(SpatialIntegration, LegalAccessesDoNotTriggerHm) {
  using pos::ScriptBuilder;
  system::ModuleConfig config = scenarios::fig8_config(
      {.with_faulty_process = false});
  system::ProcessConfig worker;
  worker.attrs.name = "p2_worker";
  worker.attrs.period = 650;
  worker.attrs.time_capacity = kInfiniteTime;
  worker.attrs.priority = 40;
  worker.attrs.script = ScriptBuilder{}
                            .memory_access(pmk::kAppDataBase, /*write=*/true)
                            .memory_access(pmk::kAppDataBase, /*write=*/false)
                            .periodic_wait()
                            .build();
  config.partitions[1].processes.push_back(std::move(worker));
  system::Module module(std::move(config));
  module.run(2 * scenarios::kFig8Mtf);
  EXPECT_EQ(module.trace().count(util::EventKind::kSpatialViolation), 0u);
}

}  // namespace
}  // namespace air
