// IPC unit tests: sampling ports (overwrite + validity), queuing ports
// (FIFO + overflow), and the PMK channel router (fan-out, atomic multicast
// pump, source-space/delivery notifications).
#include <gtest/gtest.h>

#include "ipc/intra.hpp"
#include "ipc/ports.hpp"
#include "ipc/router.hpp"

namespace air::ipc {
namespace {

TEST(SamplingPort, WriteOverwritesAndReadDoesNotConsume) {
  SamplingPort port("P", PortDirection::kSource, 32, 100);
  EXPECT_FALSE(port.has_message());
  ASSERT_TRUE(port.write({"one", 10, PartitionId{0}}));
  ASSERT_TRUE(port.write({"two", 20, PartitionId{0}}));
  const auto r1 = port.read(25);
  ASSERT_TRUE(r1.message.has_value());
  EXPECT_EQ(r1.message->payload, "two");
  EXPECT_TRUE(r1.valid);
  const auto r2 = port.read(25);
  EXPECT_TRUE(r2.message.has_value()) << "read must not consume";
}

TEST(SamplingPort, MessageBecomesStaleAfterRefreshPeriod) {
  SamplingPort port("P", PortDirection::kSource, 32, 100);
  ASSERT_TRUE(port.write({"m", 50, PartitionId{0}}));
  EXPECT_TRUE(port.read(150).valid);   // age == refresh period: still valid
  EXPECT_FALSE(port.read(151).valid);  // one tick too old
}

TEST(SamplingPort, OversizedMessageRejected) {
  SamplingPort port("P", PortDirection::kSource, 4, 100);
  EXPECT_FALSE(port.write({"too large", 0, PartitionId{0}}));
  EXPECT_FALSE(port.has_message());
}

TEST(QueuingPort, FifoWithOverflowAccounting) {
  QueuingPort port("Q", PortDirection::kSource, 32, 2);
  EXPECT_EQ(port.send({"a", 0, PartitionId{0}}), QueuingPort::SendStatus::kOk);
  EXPECT_EQ(port.send({"b", 0, PartitionId{0}}), QueuingPort::SendStatus::kOk);
  EXPECT_EQ(port.send({"c", 0, PartitionId{0}}),
            QueuingPort::SendStatus::kFull);
  EXPECT_EQ(port.overflows(), 1u);
  auto m = port.receive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, "a");
  EXPECT_EQ(port.depth(), 1u);
}

TEST(QueuingPort, OversizedMessageRejectedWithoutOverflow) {
  QueuingPort port("Q", PortDirection::kSource, 2, 2);
  EXPECT_EQ(port.send({"xxx", 0, PartitionId{0}}),
            QueuingPort::SendStatus::kTooLarge);
  EXPECT_EQ(port.overflows(), 0u);
}

// ---------- router ----------

class RouterTest : public ::testing::Test {
 protected:
  RouterTest()
      : src_("OUT", PortDirection::kSource, 32, 4),
        dst1_("IN1", PortDirection::kDestination, 32, 2),
        dst2_("IN2", PortDirection::kDestination, 32, 2),
        s_src_("SOUT", PortDirection::kSource, 32, kInfiniteTime),
        s_dst_("SIN", PortDirection::kDestination, 32, kInfiniteTime) {
    router_.add_queuing_port(PartitionId{0}, &src_);
    router_.add_queuing_port(PartitionId{1}, &dst1_);
    router_.add_queuing_port(PartitionId{2}, &dst2_);
    router_.add_sampling_port(PartitionId{0}, &s_src_);
    router_.add_sampling_port(PartitionId{1}, &s_dst_);

    ChannelConfig queuing;
    queuing.id = ChannelId{0};
    queuing.kind = ChannelKind::kQueuing;
    queuing.source = {PartitionId{0}, "OUT"};
    queuing.local_destinations = {{PartitionId{1}, "IN1"},
                                  {PartitionId{2}, "IN2"}};
    router_.add_channel(queuing);

    ChannelConfig sampling;
    sampling.id = ChannelId{1};
    sampling.kind = ChannelKind::kSampling;
    sampling.source = {PartitionId{0}, "SOUT"};
    sampling.local_destinations = {{PartitionId{1}, "SIN"}};
    router_.add_channel(sampling);

    router_.on_delivery = [this](const PortRef& ref) {
      deliveries_.push_back(ref);
    };
    router_.on_source_space = [this](const PortRef& ref) {
      space_events_.push_back(ref);
    };
  }

  Router router_;
  QueuingPort src_, dst1_, dst2_;
  SamplingPort s_src_, s_dst_;
  std::vector<PortRef> deliveries_;
  std::vector<PortRef> space_events_;
};

TEST_F(RouterTest, SamplingPropagatesToAllDestinations) {
  const Message m{"att", 5, PartitionId{0}};
  router_.propagate_sampling({PartitionId{0}, "SOUT"}, m);
  const auto r = s_dst_.read(5);
  ASSERT_TRUE(r.message.has_value());
  EXPECT_EQ(r.message->payload, "att");
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].port, "SIN");
}

TEST_F(RouterTest, PumpMovesFromSourceToEveryDestination) {
  ASSERT_EQ(src_.send({"m1", 0, PartitionId{0}}),
            QueuingPort::SendStatus::kOk);
  router_.pump({PartitionId{0}, "OUT"});
  EXPECT_EQ(src_.depth(), 0u);
  EXPECT_EQ(dst1_.depth(), 1u);
  EXPECT_EQ(dst2_.depth(), 1u);
  EXPECT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(space_events_.size(), 1u);
}

TEST_F(RouterTest, PumpIsAtomicMulticast) {
  // Fill dst1: nothing may move, even though dst2 has space.
  ASSERT_EQ(dst1_.send({"x", 0, PartitionId{9}}),
            QueuingPort::SendStatus::kOk);
  ASSERT_EQ(dst1_.send({"y", 0, PartitionId{9}}),
            QueuingPort::SendStatus::kOk);
  ASSERT_EQ(src_.send({"m", 0, PartitionId{0}}),
            QueuingPort::SendStatus::kOk);
  router_.pump({PartitionId{0}, "OUT"});
  EXPECT_EQ(src_.depth(), 1u) << "message must wait at the source";
  EXPECT_EQ(dst2_.depth(), 0u);
  // Drain dst1 and pump again.
  (void)dst1_.receive();
  (void)dst1_.receive();
  router_.pump({PartitionId{0}, "OUT"});
  EXPECT_EQ(src_.depth(), 0u);
  EXPECT_EQ(dst1_.depth(), 1u);
  EXPECT_EQ(dst2_.depth(), 1u);
}

TEST_F(RouterTest, PumpAllServicesEveryQueuingChannel) {
  ASSERT_EQ(src_.send({"m", 0, PartitionId{0}}),
            QueuingPort::SendStatus::kOk);
  router_.pump_all();
  EXPECT_EQ(dst1_.depth(), 1u);
}

TEST_F(RouterTest, RemoteDestinationsGoThroughTheHook) {
  ChannelConfig channel;
  channel.id = ChannelId{2};
  channel.kind = ChannelKind::kQueuing;
  channel.source = {PartitionId{2}, "ROUT"};
  channel.remote_destinations = {{ModuleId{1}, PartitionId{0}, "RIN"}};
  QueuingPort rout("ROUT", PortDirection::kSource, 32, 4);
  router_.add_queuing_port(PartitionId{2}, &rout);
  router_.add_channel(channel);

  std::vector<std::string> sent;
  router_.remote_send = [&](const RemotePortRef& dest, const Message& m,
                            ChannelKind kind) {
    EXPECT_EQ(kind, ChannelKind::kQueuing);
    EXPECT_EQ(dest.module, ModuleId{1});
    sent.push_back(m.payload.str());
  };
  ASSERT_EQ(rout.send({"hello", 0, PartitionId{2}}),
            QueuingPort::SendStatus::kOk);
  router_.pump({PartitionId{2}, "ROUT"});
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0], "hello");
}

TEST_F(RouterTest, DeliverRemoteLandsInTheDestinationPort) {
  router_.deliver_remote({PartitionId{1}, "IN1"},
                         {"from-afar", 9, PartitionId{0}},
                         ChannelKind::kQueuing);
  EXPECT_EQ(dst1_.depth(), 1u);
  router_.deliver_remote({PartitionId{1}, "SIN"},
                         {"s", 9, PartitionId{0}}, ChannelKind::kSampling);
  EXPECT_TRUE(s_dst_.has_message());
}

TEST_F(RouterTest, UnconnectedSourceIsAHarmlessNoOp) {
  QueuingPort lonely("LONELY", PortDirection::kSource, 32, 2);
  router_.add_queuing_port(PartitionId{3}, &lonely);
  ASSERT_EQ(lonely.send({"m", 0, PartitionId{3}}),
            QueuingPort::SendStatus::kOk);
  router_.pump({PartitionId{3}, "LONELY"});
  EXPECT_EQ(lonely.depth(), 1u) << "no channel, message stays put";
}

// ---------- intrapartition object state ----------

TEST(BufferState, FifoWithSizeLimit) {
  BufferState buffer("B", 8, 2);
  EXPECT_TRUE(buffer.push("a"));
  EXPECT_TRUE(buffer.push("b"));
  EXPECT_FALSE(buffer.push("c")) << "full";
  EXPECT_FALSE(buffer.push("waaaaay too large"));
  EXPECT_EQ(buffer.pop().value(), "a");
}

TEST(BlackboardState, DisplayReadClear) {
  BlackboardState bb("BB", 16);
  EXPECT_FALSE(bb.displayed());
  EXPECT_TRUE(bb.display("status"));
  EXPECT_EQ(bb.read().value(), "status");
  EXPECT_TRUE(bb.display("newer"));
  EXPECT_EQ(bb.read().value(), "newer");
  bb.clear();
  EXPECT_FALSE(bb.displayed());
}

TEST(SemaphoreState, CountingSemantics) {
  SemaphoreState sem("S", 1, 2);
  EXPECT_TRUE(sem.try_wait());
  EXPECT_FALSE(sem.try_wait());
  EXPECT_TRUE(sem.signal());
  EXPECT_TRUE(sem.signal());
  EXPECT_FALSE(sem.signal()) << "above maximum";
  EXPECT_EQ(sem.value(), 2);
}

TEST(EventState, UpDown) {
  EventState ev("E");
  EXPECT_FALSE(ev.up());
  ev.set();
  EXPECT_TRUE(ev.up());
  ev.reset();
  EXPECT_FALSE(ev.up());
}

}  // namespace
}  // namespace air::ipc
