// APEX GET_*_ID / GET_*_STATUS services.
#include <gtest/gtest.h>

#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

system::ModuleConfig config_with_objects() {
  system::ModuleConfig config;
  system::PartitionConfig p;
  p.name = "MAIN";
  p.buffers.push_back({"telemetry_queue", 48, 4});
  p.blackboards.push_back({"mode_board", 16});
  p.semaphores.push_back({"bus_mutex", 1, 2});
  p.events.push_back({"go_event"});
  p.sampling_ports.push_back(
      {"ATT", ipc::PortDirection::kSource, 32, 100});
  p.queuing_ports.push_back({"SCI", ipc::PortDirection::kSource, 32, 6});
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  return config;
}

TEST(ApexStatus, IdLookupByName) {
  system::Module module(config_with_objects());
  auto& apex = module.apex(PartitionId{0});
  BufferId buffer;
  EXPECT_EQ(apex.get_buffer_id("telemetry_queue", buffer),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(buffer.value(), 0);
  BlackboardId bb;
  EXPECT_EQ(apex.get_blackboard_id("mode_board", bb),
            apex::ReturnCode::kNoError);
  SemaphoreId sem;
  EXPECT_EQ(apex.get_semaphore_id("bus_mutex", sem),
            apex::ReturnCode::kNoError);
  EventId ev;
  EXPECT_EQ(apex.get_event_id("go_event", ev), apex::ReturnCode::kNoError);

  EXPECT_EQ(apex.get_buffer_id("nope", buffer),
            apex::ReturnCode::kInvalidConfig);
  EXPECT_EQ(apex.get_event_id("nope", ev), apex::ReturnCode::kInvalidConfig);
}

TEST(ApexStatus, BufferStatusTracksDepthAndWaiters) {
  auto config = config_with_objects();
  system::ProcessConfig blocked;
  blocked.attrs.name = "blocked_reader";
  blocked.attrs.priority = 10;
  blocked.attrs.script = ScriptBuilder{}.buffer_receive(0).build();
  config.partitions[0].processes.push_back(std::move(blocked));
  system::Module module(std::move(config));
  module.run(2);

  apex::BufferStatus status;
  ASSERT_EQ(module.apex(PartitionId{0}).get_buffer_status(BufferId{0}, status),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(status.nb_message, 0u);
  EXPECT_EQ(status.max_nb_message, 4u);
  EXPECT_EQ(status.max_message_size, 48u);
  EXPECT_EQ(status.waiting_processes, 1u) << "the blocked reader";

  EXPECT_EQ(module.apex(PartitionId{0})
                .get_buffer_status(BufferId{9}, status),
            apex::ReturnCode::kInvalidParam);
}

TEST(ApexStatus, SemaphoreAndEventStatus) {
  system::Module module(config_with_objects());
  auto& apex = module.apex(PartitionId{0});
  apex::SemaphoreStatus sem;
  ASSERT_EQ(apex.get_semaphore_status(SemaphoreId{0}, sem),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(sem.current_value, 1);
  EXPECT_EQ(sem.maximum_value, 2);
  EXPECT_EQ(sem.waiting_processes, 0u);

  apex::EventStatus ev;
  ASSERT_EQ(apex.get_event_status(EventId{0}, ev),
            apex::ReturnCode::kNoError);
  EXPECT_FALSE(ev.up);
  ASSERT_EQ(apex.set_event(EventId{0}), apex::ReturnCode::kNoError);
  ASSERT_EQ(apex.get_event_status(EventId{0}, ev),
            apex::ReturnCode::kNoError);
  EXPECT_TRUE(ev.up);
}

TEST(ApexStatus, BlackboardStatus) {
  system::Module module(config_with_objects());
  auto& apex = module.apex(PartitionId{0});
  apex::BlackboardStatus status;
  ASSERT_EQ(apex.get_blackboard_status(BlackboardId{0}, status),
            apex::ReturnCode::kNoError);
  EXPECT_TRUE(status.empty);
  EXPECT_EQ(status.max_message_size, 16u);
  ASSERT_EQ(apex.display_blackboard(BlackboardId{0}, "SAFE_MODE"),
            apex::ReturnCode::kNoError);
  ASSERT_EQ(apex.get_blackboard_status(BlackboardId{0}, status),
            apex::ReturnCode::kNoError);
  EXPECT_FALSE(status.empty);
}

TEST(ApexStatus, PortStatuses) {
  system::Module module(config_with_objects());
  auto& apex = module.apex(PartitionId{0});

  apex::SamplingPortStatus sp;
  ASSERT_EQ(apex.get_sampling_port_status(PortId{0}, sp),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(sp.max_message_size, 32u);
  EXPECT_EQ(sp.refresh_period, 100);
  EXPECT_FALSE(sp.has_message);
  ASSERT_EQ(apex.write_sampling_message(PortId{0}, "att"),
            apex::ReturnCode::kNoError);
  ASSERT_EQ(apex.get_sampling_port_status(PortId{0}, sp),
            apex::ReturnCode::kNoError);
  EXPECT_TRUE(sp.has_message);
  EXPECT_TRUE(sp.last_valid);

  apex::QueuingPortStatus qp;
  ASSERT_EQ(apex.get_queuing_port_status(PortId{0}, qp),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(qp.max_nb_message, 6u);
  EXPECT_EQ(qp.nb_message, 0u);
  EXPECT_EQ(qp.overflows, 0u);
}

}  // namespace
}  // namespace air
