// Zero-allocation steady state (the DESIGN.md section 12 claim).
//
// After PR 7 pooled message payloads and this PR interned every telemetry
// label, a warmed-up flight with the full observability stack enabled --
// metrics, bounded flight recorder, spans, host profiler -- must execute
// ticks without touching the heap at all. This test proves it with a
// counting global operator new (every allocation in the process increments
// an atomic), cross-checked against the two subsystem counters the claim
// rests on: StringArena::Stats::bytes_used and Payload::PoolStats::
// heap_allocs.
//
// The counting operator new/delete pair replaces the global ones for the
// whole test binary; it only counts and delegates, so the other suites are
// unaffected. Under ASan/TSan the sanitizer owns the allocator, so the
// replacement is compiled out and the test skips.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "config/fig8.hpp"
#include "ipc/payload.hpp"
#include "system/module.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AIR_ALLOC_COUNTING_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define AIR_ALLOC_COUNTING_DISABLED 1
#endif
#endif

namespace {
std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}
}  // namespace

#ifndef AIR_ALLOC_COUNTING_DISABLED

namespace {
void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // AIR_ALLOC_COUNTING_DISABLED

namespace air {
namespace {

TEST(ZeroAlloc, SteadyStateFlightNeverTouchesTheHeap) {
#ifdef AIR_ALLOC_COUNTING_DISABLED
  GTEST_SKIP() << "allocation counting is owned by the sanitizer runtime";
#else
  // Full observability stack: metrics, bounded trace rings, bounded span
  // ring, host profiler at stride 1 (which also forces per-tick stepping,
  // so every tick below really executes the whole hot path).
  auto config = scenarios::fig8_config({.with_faulty_process = false});
  config.telemetry.flight_recorder_capacity = 4096;
  config.telemetry.spans_capacity = 4096;
  config.telemetry.profiler_enabled = true;
  config.telemetry.profiler_stride = 1;
  system::Module module(std::move(config));

  // Warm-up: first occurrence of every label lands in the arena, window
  // caches and the span ring materialise, the payload pool fills.
  module.run(4 * scenarios::kFig8Mtf);

  const std::uint64_t heap_before = allocation_count();
  const std::size_t arena_before = module.arena().stats().bytes_used;
  const std::uint64_t pool_before = ipc::Payload::pool_stats().heap_allocs;

  module.run(4 * scenarios::kFig8Mtf);

  EXPECT_EQ(allocation_count(), heap_before)
      << "a steady-state tick allocated on the host heap";
  EXPECT_EQ(module.arena().stats().bytes_used, arena_before)
      << "steady-state labels must all be arena hits";
  EXPECT_EQ(ipc::Payload::pool_stats().heap_allocs, pool_before)
      << "steady-state payloads must all come from the pool";
  // And the flight did real work while not allocating. now() is the
  // timestamp of the last executed tick, so 8*MTF ticks end at 8*MTF - 1.
  EXPECT_EQ(module.now(), 8 * scenarios::kFig8Mtf - 1);
  EXPECT_GT(module.spans().recorded_spans(), 0u);
  EXPECT_GT(module.profiler().ticks(), 0u);
#endif
}

TEST(ZeroAlloc, ArenaHitsDoNotAllocate) {
#ifdef AIR_ALLOC_COUNTING_DISABLED
  GTEST_SKIP() << "allocation counting is owned by the sanitizer runtime";
#else
  util::StringArena arena;
  arena.intern("window");
  arena.intern("job");
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 10000; ++i) {
    arena.intern("window");
    arena.intern("job");
  }
  EXPECT_EQ(allocation_count(), before);
#endif
}

}  // namespace
}  // namespace air
