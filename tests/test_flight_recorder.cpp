// Flight-recorder trace mode: bounded rings, exact drop accounting,
// severity-based retention, and streaming sinks.
#include <gtest/gtest.h>

#include <vector>

#include "config/fig8.hpp"
#include "system/module.hpp"
#include "telemetry/spans.hpp"
#include "util/ring_buffer.hpp"
#include "util/trace.hpp"

namespace air {
namespace {

using util::EventKind;
using util::Severity;
using util::Trace;
using util::TraceEvent;

TEST(RingBuffer, PushOverwriteEvictsOldest) {
  util::RingBuffer<int> ring(3);
  EXPECT_FALSE(ring.push_overwrite(1));
  EXPECT_FALSE(ring.push_overwrite(2));
  EXPECT_FALSE(ring.push_overwrite(3));
  EXPECT_TRUE(ring.push_overwrite(4));  // evicts 1
  EXPECT_TRUE(ring.push_overwrite(5));  // evicts 2
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.at(0), 3);
  EXPECT_EQ(ring.at(1), 4);
  EXPECT_EQ(ring.at(2), 5);
}

TEST(FlightRecorder, WrapKeepsTheNewestAndCountsDropsExactly) {
  Trace trace;
  trace.set_flight_recorder(8);
  for (Ticks t = 0; t < 100; ++t) {
    trace.record(t, EventKind::kProcessStateChange, 0, 0, t);
  }
  EXPECT_EQ(trace.recorded_events(), 100u);
  EXPECT_EQ(trace.dropped_events(), 92u);
  EXPECT_EQ(trace.dropped_critical_events(), 0u);

  const auto& events = trace.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, static_cast<Ticks>(92 + i));
  }
}

TEST(FlightRecorder, CriticalEventsSurviveADebugFlood) {
  Trace trace;
  trace.set_flight_recorder(16, 4);
  // Two critical events early, then a flood of debug events.
  trace.record(1, EventKind::kDeadlineMiss, 0, 1, 10);
  trace.record(2, EventKind::kHmError, 0, 1, 0);
  for (Ticks t = 3; t < 1000; ++t) {
    trace.record(t, EventKind::kProcessStateChange, 0, 0, t);
  }
  // The debug ring wrapped many times; the critical ring kept both.
  const auto misses = trace.filtered(EventKind::kDeadlineMiss);
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].time, 1);
  EXPECT_EQ(trace.filtered(EventKind::kHmError).size(), 1u);
  EXPECT_EQ(trace.dropped_critical_events(), 0u);

  // The merged view is ordered by recording sequence: critical first.
  const auto& events = trace.events();
  ASSERT_EQ(events.size(), 18u);
  EXPECT_EQ(events[0].kind, EventKind::kDeadlineMiss);
  EXPECT_EQ(events[1].kind, EventKind::kHmError);
  for (std::size_t i = 2; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].time, events[i].time);
  }
}

TEST(FlightRecorder, CriticalRingAlsoWrapsWithExactCount) {
  Trace trace;
  trace.set_flight_recorder(4, 2);
  for (Ticks t = 0; t < 10; ++t) {
    trace.record(t, EventKind::kDeadlineMiss, 0, 0, t);
  }
  EXPECT_EQ(trace.dropped_events(), 8u);
  EXPECT_EQ(trace.dropped_critical_events(), 8u);
  const auto& events = trace.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, 8);
  EXPECT_EQ(events[1].time, 9);
}

TEST(FlightRecorder, ExistingEventsAreReroutedOnActivation) {
  Trace trace;
  trace.record(1, EventKind::kProcessStateChange, 0);
  trace.record(2, EventKind::kDeadlineMiss, 0, 0, 2);
  trace.set_flight_recorder(4, 4);
  trace.record(3, EventKind::kProcessStateChange, 0);

  const auto& events = trace.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 1);
  EXPECT_EQ(events[1].time, 2);
  EXPECT_EQ(events[2].time, 3);
  EXPECT_EQ(trace.count(EventKind::kDeadlineMiss), 1u);
}

TEST(FlightRecorder, ClearResetsRingsAndCounters) {
  Trace trace;
  trace.set_flight_recorder(2);
  for (Ticks t = 0; t < 10; ++t) {
    trace.record(t, EventKind::kProcessStateChange, 0);
  }
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.dropped_events(), 0u);
  EXPECT_EQ(trace.recorded_events(), 0u);
  EXPECT_TRUE(trace.flight_recorder()) << "mode survives clear";
}

TEST(FlightRecorder, SeverityClassification) {
  EXPECT_EQ(severity(EventKind::kDeadlineMiss), Severity::kCritical);
  EXPECT_EQ(severity(EventKind::kHmError), Severity::kCritical);
  EXPECT_EQ(severity(EventKind::kScheduleSwitch), Severity::kCritical);
  EXPECT_EQ(severity(EventKind::kSpatialViolation), Severity::kCritical);
  EXPECT_EQ(severity(EventKind::kPartitionDispatch), Severity::kInfo);
  EXPECT_EQ(severity(EventKind::kProcessStateChange), Severity::kDebug);
  EXPECT_EQ(severity(EventKind::kPortSend), Severity::kDebug);
  EXPECT_EQ(severity(EventKind::kSpan), Severity::kDebug)
      << "span mirror traffic must never enter the critical ring";
}

// --- span debug traffic vs the flight recorder ---

TEST(FlightRecorder, SpanMirrorFloodDropsExactlyAndSparesCriticalRing) {
  Trace trace;
  trace.set_flight_recorder(8, 4);
  // Two critical events first, then a flood of span retirements mirrored
  // into the trace as debug events.
  trace.record(1, EventKind::kDeadlineMiss, 0, 1, 10);
  trace.record(2, EventKind::kHmError, 0, 1, 0);

  telemetry::SpanRecorder spans;
  spans.set_trace(&trace);
  for (Ticks t = 3; t < 503; ++t) {
    spans.instant(telemetry::SpanKind::kMsgSend, t, 0, 0, 0, 0, 8);
  }
  EXPECT_EQ(spans.recorded_spans(), 500u);

  // Exact accounting: 2 critical + 500 debug recorded; the debug ring kept
  // the newest 8, the critical ring kept both critical events.
  EXPECT_EQ(trace.recorded_events(), 502u);
  EXPECT_EQ(trace.dropped_events(), 492u);
  EXPECT_EQ(trace.dropped_critical_events(), 0u);
  ASSERT_EQ(trace.filtered(EventKind::kDeadlineMiss).size(), 1u);
  ASSERT_EQ(trace.filtered(EventKind::kHmError).size(), 1u);
  const auto mirrored = trace.filtered(EventKind::kSpan);
  ASSERT_EQ(mirrored.size(), 8u);
  EXPECT_EQ(mirrored.back().time, 502);
}

TEST(SpanRecorder, BoundedCapacityEvictsOldestWithExactCount) {
  telemetry::SpanRecorder spans;
  spans.set_capacity(4);
  for (Ticks t = 0; t < 10; ++t) {
    spans.instant(telemetry::SpanKind::kMsgSend, t, 0, 0, 0, 0, 1);
  }
  EXPECT_EQ(spans.recorded_spans(), 10u);
  EXPECT_EQ(spans.dropped_spans(), 6u);
  ASSERT_EQ(spans.closed().size(), 4u);
  EXPECT_EQ(spans.closed().front().start, 6);
  EXPECT_EQ(spans.closed().back().start, 9);
}

// --- streaming sinks ---

struct CollectingSink final : util::TraceSink {
  std::vector<TraceEvent> seen;
  void on_event(const TraceEvent& event) override { seen.push_back(event); }
};

TEST(TraceSink, ReceivesEveryEventInOrderRegardlessOfMode) {
  for (const bool bounded : {false, true}) {
    Trace trace;
    if (bounded) trace.set_flight_recorder(2);
    CollectingSink sink;
    trace.add_sink(&sink);
    for (Ticks t = 0; t < 50; ++t) {
      trace.record(t, EventKind::kProcessStateChange, 0, 0, t);
    }
    trace.remove_sink(&sink);
    trace.record(50, EventKind::kProcessStateChange, 0);

    ASSERT_EQ(sink.seen.size(), 50u) << "bounded=" << bounded;
    for (Ticks t = 0; t < 50; ++t) {
      EXPECT_EQ(sink.seen[static_cast<std::size_t>(t)].time, t);
    }
  }
}

TEST(TraceSink, ModuleRegistrationStreamsModuleEvents) {
  system::Module module(scenarios::fig8_config());
  CollectingSink sink;
  module.add_trace_sink(&sink);
  module.run(scenarios::kFig8Mtf);
  module.remove_trace_sink(&sink);
  const std::size_t streamed = sink.seen.size();
  EXPECT_GT(streamed, 0u);
  module.run(scenarios::kFig8Mtf);
  EXPECT_EQ(sink.seen.size(), streamed) << "no events after removal";

  // Streamed events mirror the retained trace over the same interval.
  std::size_t dispatches = 0;
  for (const auto& event : sink.seen) {
    if (event.kind == EventKind::kPartitionDispatch) ++dispatches;
  }
  EXPECT_GT(dispatches, 0u);
}

TEST(FlightRecorder, ModuleRunsBoundedWithCompleteCriticalHistory) {
  auto config = scenarios::fig8_config();
  config.telemetry.flight_recorder_capacity = 64;
  config.telemetry.flight_recorder_critical_capacity = 512;
  system::Module module(std::move(config));
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(5 * scenarios::kFig8Mtf);

  EXPECT_TRUE(module.trace().flight_recorder());
  EXPECT_GT(module.trace().dropped_events(), 0u) << "flood exceeded capacity";
  EXPECT_EQ(module.trace().dropped_critical_events(), 0u);
  // All 4 misses of the faulty process survive in the critical ring.
  EXPECT_EQ(module.trace().count(EventKind::kDeadlineMiss), 4u);
  // Retained events are bounded by the two ring capacities.
  EXPECT_LE(module.trace().events().size(), 64u + 512u);
}

}  // namespace
}  // namespace air
