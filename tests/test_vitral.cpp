// VITRAL text-mode window manager tests (Fig. 9 substrate).
#include <gtest/gtest.h>

#include "vitral/vitral.hpp"

namespace air::vitral {
namespace {

TEST(Vitral, RendersBordersAndTitle) {
  Screen screen(20, 6);
  screen.add_window("P1", {0, 0, 20, 6});
  const std::string out = screen.render();
  // Corners present.
  EXPECT_EQ(out[0], '+');
  EXPECT_NE(out.find("P1"), std::string::npos);
  // Six lines of twenty columns.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(Vitral, ShowsTheTailOfTheScrollback) {
  Screen screen(20, 5);  // interior: 3 content rows
  const std::size_t w = screen.add_window("LOG", {0, 0, 20, 5});
  for (int i = 0; i < 10; ++i) {
    screen.window(w).write_line("line" + std::to_string(i));
  }
  const std::string out = screen.render();
  EXPECT_EQ(out.find("line6"), std::string::npos);
  EXPECT_NE(out.find("line7"), std::string::npos);
  EXPECT_NE(out.find("line9"), std::string::npos);
}

TEST(Vitral, ClipsLongLinesToTheWindowWidth) {
  Screen screen(12, 4);
  const std::size_t w = screen.add_window("W", {0, 0, 12, 4});
  screen.window(w).write_line("abcdefghijklmnopqrstuvwxyz");
  const std::string out = screen.render();
  EXPECT_NE(out.find("abcdefghij"), std::string::npos);
  EXPECT_EQ(out.find("klm"), std::string::npos);
}

TEST(Vitral, ScrollbackIsBounded) {
  Screen screen(20, 5);
  const std::size_t w = screen.add_window("W", {0, 0, 20, 5});
  for (std::size_t i = 0; i < Window::kMaxScrollback + 50; ++i) {
    screen.window(w).write_line("x");
  }
  EXPECT_EQ(screen.window(w).lines().size(), Window::kMaxScrollback);
}

TEST(Vitral, TileLayoutCoversRequestedCount) {
  const auto rects = tile_layout(80, 24, 6);
  ASSERT_EQ(rects.size(), 6u);
  for (const auto& r : rects) {
    EXPECT_GE(r.width, 4);
    EXPECT_GE(r.height, 3);
    EXPECT_LE(r.x + r.width, 81);
    EXPECT_LE(r.y + r.height, 25);
  }
}

TEST(Vitral, MultipleWindowsRenderSideBySide) {
  Screen screen(40, 6);
  const std::size_t a = screen.add_window("AOCS", {0, 0, 20, 6});
  const std::size_t b = screen.add_window("TTC", {20, 0, 20, 6});
  screen.window(a).write_line("left");
  screen.window(b).write_line("right");
  const std::string out = screen.render();
  EXPECT_NE(out.find("AOCS"), std::string::npos);
  EXPECT_NE(out.find("TTC"), std::string::npos);
  EXPECT_NE(out.find("left"), std::string::npos);
  EXPECT_NE(out.find("right"), std::string::npos);
}

}  // namespace
}  // namespace air::vitral
