// Sporadic process activation with enforced minimum inter-arrival time
// (eq. 11: for sporadic processes, T is "the lower bound for the time
// between consecutive activations") -- the model extension for future
// work (iii).
#include <gtest/gtest.h>

#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

/// A sporadic handler (min inter-arrival 20, capacity 15) released by a
/// trigger process at a configurable rate.
system::ModuleConfig sporadic_config(Ticks trigger_period) {
  system::ModuleConfig config;
  system::PartitionConfig p;
  p.name = "MAIN";

  system::ProcessConfig handler;
  handler.attrs.name = "handler";
  handler.attrs.sporadic = true;
  handler.attrs.period = 20;         // min inter-arrival
  handler.attrs.time_capacity = 15;  // per-activation deadline
  handler.attrs.priority = 10;
  handler.attrs.script = ScriptBuilder{}
                             .sporadic_wait()
                             .compute(5)
                             .log("activated")
                             .build();
  p.processes.push_back(std::move(handler));

  system::ProcessConfig trigger;
  trigger.attrs.name = "trigger";
  trigger.attrs.priority = 20;
  trigger.attrs.script = ScriptBuilder{}
                             .release_process("handler")
                             .timed_wait(trigger_period)
                             .build();
  p.processes.push_back(std::move(trigger));
  config.partitions.push_back(std::move(p));

  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  hm::HmTable table;
  table.set(hm::ErrorCode::kDeadlineMissed, hm::ErrorLevel::kProcess,
            hm::RecoveryAction::kIgnore);
  config.partitions[0].hm_table = table;
  config.module_hm_table = table;
  return config;
}

TEST(Sporadic, ActivationsFollowReleases) {
  // Slow trigger (every 50 ticks, above the 20-tick bound): one activation
  // per release.
  system::Module module(sporadic_config(50));
  module.run(200);
  // Releases at 0, 50, 100, 150 -> 4 activations.
  EXPECT_EQ(module.console(PartitionId{0}).size(), 4u);
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u);
}

TEST(Sporadic, MinimumInterArrivalIsEnforced) {
  // Fast trigger (every 5 ticks, four times the legal rate): activations
  // are spaced >= 20 ticks apart regardless.
  system::Module module(sporadic_config(5));
  module.run(200);

  const auto logs = module.trace().filtered(
      util::EventKind::kUser, [](const util::TraceEvent& e) {
        return e.label == "activated";
      });
  ASSERT_GE(logs.size(), 5u);
  for (std::size_t i = 1; i < logs.size(); ++i) {
    // Activation i starts >= 20 ticks after activation i-1 started; the
    // log lands 5 compute ticks after the activation instant, so the log
    // spacing also honours the bound.
    EXPECT_GE(logs[i].time - logs[i - 1].time, 20)
        << "activations " << i - 1 << " and " << i;
  }
  // ~one activation per 20 ticks over 200 ticks.
  EXPECT_LE(logs.size(), 11u);
}

TEST(Sporadic, ExcessReleasesAreBufferedOneDeepAndCounted) {
  system::Module module(sporadic_config(5));
  const PartitionId main = module.partition_id("MAIN");
  module.run(200);
  ProcessId handler;
  ASSERT_EQ(module.apex(main).get_process_id("handler", handler),
            apex::ReturnCode::kNoError);
  const auto* pcb = module.kernel(main).pcb(handler);
  // Releases every 5 ticks vs activations every 20: roughly 3 of every 4
  // releases are lost to the inter-arrival bound.
  EXPECT_GT(pcb->lost_releases, 10u);
}

TEST(Sporadic, PerActivationDeadlineIsMonitored) {
  // A sporadic handler whose work (30) exceeds its capacity (15): each
  // activation misses and the PAL reports it.
  auto config = sporadic_config(50);
  config.partitions[0].processes[0].attrs.script = ScriptBuilder{}
                                                       .sporadic_wait()
                                                       .compute(30)
                                                       .log("activated")
                                                       .build();
  system::Module module(std::move(config));
  module.run(200);
  EXPECT_GE(module.trace().count(util::EventKind::kDeadlineMiss), 3u);
}

TEST(Sporadic, UnreleasedHandlerNeverRuns) {
  auto config = sporadic_config(50);
  config.partitions[0].processes[1].attrs.script =
      ScriptBuilder{}.compute(1000).build();  // trigger never releases
  system::Module module(std::move(config));
  module.run(300);
  EXPECT_TRUE(module.console(PartitionId{0}).empty());
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u)
      << "no activation, no deadline";
}

TEST(Sporadic, ReleaseOfNonSporadicProcessIsInvalid) {
  auto config = sporadic_config(50);
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  ProcessId trigger;
  ASSERT_EQ(module.apex(main).get_process_id("trigger", trigger),
            apex::ReturnCode::kNoError);
  module.run(1);
  EXPECT_EQ(module.apex(main).release_process(trigger),
            apex::ReturnCode::kInvalidMode);
}

TEST(Sporadic, SporadicNeedsAnInterArrivalBound) {
  auto config = sporadic_config(50);
  config.partitions[0].processes[0].attrs.period = kInfiniteTime;
  // create_process rejects it during partition init; the process simply
  // does not exist afterwards.
  system::Module module(std::move(config));
  ProcessId handler;
  EXPECT_EQ(module.apex(module.partition_id("MAIN"))
                .get_process_id("handler", handler),
            apex::ReturnCode::kInvalidConfig);
}

}  // namespace
}  // namespace air
