// Executor edge cases: service budget exhaustion, script wrap-around,
// goto loops, empty scripts, idle partitions.
#include <gtest/gtest.h>

#include "system/executor.hpp"
#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

system::ModuleConfig one_partition(pos::Script script,
                                   bool second_process = false) {
  system::ModuleConfig config;
  system::PartitionConfig p;
  p.name = "MAIN";
  system::ProcessConfig main_process;
  main_process.attrs.name = "main";
  main_process.attrs.priority = 10;
  main_process.attrs.script = std::move(script);
  p.processes.push_back(std::move(main_process));
  if (second_process) {
    system::ProcessConfig other;
    other.attrs.name = "other";
    other.attrs.priority = 20;
    other.attrs.script = ScriptBuilder{}.log("other ran").compute(5).build();
    p.processes.push_back(std::move(other));
  }
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  return config;
}

TEST(Executor, PureServiceLoopDoesNotHangTheTick) {
  // A script of only zero-time ops (a goto loop of logs) must consume its
  // tick at the service budget and let time advance.
  system::Module module(
      one_partition(ScriptBuilder{}.log("spin").jump(0).build()));
  module.run(3);
  EXPECT_EQ(module.now(), 2);
  // Exactly kMaxServicesPerTick/2 log+jump pairs per tick.
  EXPECT_EQ(module.console(PartitionId{0}).size(),
            3u * system::Executor::kMaxServicesPerTick / 2);
}

TEST(Executor, ScriptWrapsAroundToTheFirstOp) {
  system::Module module(
      one_partition(ScriptBuilder{}.compute(2).log("lap").build()));
  module.run(9);
  // compute(2) spends two ticks; the log then shares a tick with the first
  // compute tick of the next lap (zero-time op + compute in one tick), so
  // laps land at t = 2, 4, 6, 8.
  EXPECT_EQ(module.console(PartitionId{0}).size(), 4u);
}

TEST(Executor, EmptyScriptIdlesWithoutCrashing) {
  system::Module module(one_partition(pos::Script{}, true));
  module.run(20);
  // The empty-script process occupies its priority slot; with priority 10 it
  // stays "running" forever and the other process starves -- still no crash
  // and time advances.
  EXPECT_EQ(module.now(), 19);
}

TEST(Executor, InfiniteWaitHandsOverImmediately) {
  auto config = one_partition(
      ScriptBuilder{}.timed_wait(1000).log("never").build(), true);
  system::Module module(std::move(config));
  module.run(1);
  // "other" ran during tick 0 even though "main" (higher priority) started
  // the tick: the block is zero-time.
  ASSERT_EQ(module.console(PartitionId{0}).size(), 1u);
  EXPECT_EQ(module.console(PartitionId{0})[0], "other ran");
}

TEST(Executor, ServiceBudgetCountsAsSyscallOverheadNotStall) {
  // Two processes: a service-spinning high-priority one and a computing
  // low-priority one. The spinner burns whole ticks at the budget, so the
  // low one never runs -- priorities are honoured even for pure-service
  // loops.
  auto config = one_partition(
      ScriptBuilder{}.log("spin").jump(0).build(), true);
  system::Module module(std::move(config));
  module.run(10);
  for (const auto& line : module.console(PartitionId{0})) {
    EXPECT_NE(line, "other ran");
  }
}

}  // namespace
}  // namespace air
