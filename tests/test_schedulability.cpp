// Schedulability analysis tests (E12): supply functions, sbf properties,
// response-time analysis under partition windows.
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "model/schedulability.hpp"
#include "util/rng.hpp"

namespace air::model {
namespace {

Schedule simple_schedule() {
  Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 100;
  s.requirements = {{PartitionId{0}, 100, 30}};
  s.windows = {{PartitionId{0}, 10, 30}};  // one window [10, 40)
  return s;
}

TEST(PartitionSupply, SupplyCountsAvailableTicks) {
  const PartitionSupply supply(simple_schedule(), PartitionId{0});
  EXPECT_EQ(supply.per_mtf(), 30);
  EXPECT_EQ(supply.supply(0, 100), 30);
  EXPECT_EQ(supply.supply(10, 30), 30);
  EXPECT_EQ(supply.supply(0, 10), 0);
  EXPECT_EQ(supply.supply(40, 60), 0);
  EXPECT_EQ(supply.supply(0, 200), 60) << "periodic extension over two MTFs";
  // [35,115): 5 ticks of this window's tail + [110,115) of the next one.
  EXPECT_EQ(supply.supply(35, 80), 5 + 5);
}

TEST(PartitionSupply, SbfIsTheWorstPhase) {
  const PartitionSupply supply(simple_schedule(), PartitionId{0});
  // An interval of one full MTF always catches the whole window.
  EXPECT_EQ(supply.sbf(100), 30);
  // Just after the window closes, a 70-tick interval sees nothing.
  EXPECT_EQ(supply.sbf(70), 0);
  EXPECT_EQ(supply.sbf(71), 1);
  // sbf is monotone and bounded by the interval length.
  Ticks prev = 0;
  for (Ticks len = 0; len <= 300; ++len) {
    const Ticks v = supply.sbf(len);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, len);
    prev = v;
  }
}

TEST(PartitionSupply, SbfIsAdditiveOverMtfs) {
  const PartitionSupply supply(simple_schedule(), PartitionId{0});
  for (Ticks rest = 0; rest <= 100; rest += 7) {
    EXPECT_EQ(supply.sbf(3 * 100 + rest), 3 * 30 + supply.sbf(rest));
  }
}

TEST(PartitionSupply, InverseSbfIsTheLeftInverse) {
  const PartitionSupply supply(simple_schedule(), PartitionId{0});
  for (Ticks demand = 1; demand <= 100; ++demand) {
    const Ticks len = supply.inverse_sbf(demand);
    ASSERT_NE(len, kInfiniteTime);
    EXPECT_GE(supply.sbf(len), demand);
    if (len > 0) EXPECT_LT(supply.sbf(len - 1), demand);
  }
  EXPECT_EQ(supply.inverse_sbf(0), 0);
}

TEST(PartitionSupply, NoWindowsMeansNoSupply) {
  Schedule s = simple_schedule();
  s.requirements.push_back({PartitionId{1}, 100, 0});
  const PartitionSupply supply(s, PartitionId{1});
  EXPECT_EQ(supply.per_mtf(), 0);
  EXPECT_EQ(supply.inverse_sbf(1), kInfiniteTime);
}

TEST(Analysis, SingleProcessFitsItsWindow) {
  PartitionModel partition;
  partition.id = PartitionId{0};
  partition.processes = {{"p", 100, 100, 10, 20, true}};
  const auto result = analyze_partition(simple_schedule(), partition);
  ASSERT_EQ(result.processes.size(), 1u);
  EXPECT_TRUE(result.schedulable);
  // Worst case: released just after the window closes (t=40); waits 70 to
  // t=110, then 20 ticks of supply end at t=130 -> response 90.
  EXPECT_EQ(result.processes[0].wcrt, 90);
}

TEST(Analysis, InterferenceFromHigherPriorityProcesses) {
  PartitionModel partition;
  partition.id = PartitionId{0};
  partition.processes = {
      {"hi", 100, 100, 5, 15, true},
      {"lo", 100, 100, 20, 10, true},
  };
  const auto result = analyze_partition(simple_schedule(), partition);
  EXPECT_TRUE(result.schedulable);
  const Ticks hi = result.processes[0].wcrt;
  const Ticks lo = result.processes[1].wcrt;
  EXPECT_LT(hi, lo) << "higher priority must not wait for lower";
  // lo needs 10 + 15 = 25 supply: worst phase waits 70, gets 25 by t=105
  // relative... i.e. wcrt = 70 + 25 + gap? Window supplies 30/MTF, so 25
  // ticks arrive by 95.
  EXPECT_EQ(lo, 95);
}

TEST(Analysis, OverloadedProcessSetIsUnschedulable) {
  PartitionModel partition;
  partition.id = PartitionId{0};
  // Demand 40/100 > supply 30/100.
  partition.processes = {{"p", 100, 100, 10, 40, true}};
  const auto result = analyze_partition(simple_schedule(), partition);
  EXPECT_FALSE(result.schedulable);
  EXPECT_FALSE(result.processes[0].schedulable);
}

TEST(Analysis, DeadlineTighterThanResponseTimeFails) {
  PartitionModel partition;
  partition.id = PartitionId{0};
  partition.processes = {{"p", 100, 50, 10, 20, true}};  // D=50 < wcrt 90
  const auto result = analyze_partition(simple_schedule(), partition);
  EXPECT_FALSE(result.schedulable);
}

TEST(Analysis, ProcessWithoutDeadlineIsAlwaysFine) {
  PartitionModel partition;
  partition.id = PartitionId{0};
  partition.processes = {{"bg", 100, kInfiniteTime, 30, 20, true}};
  const auto result = analyze_partition(simple_schedule(), partition);
  EXPECT_TRUE(result.schedulable);
}

TEST(Analysis, Fig8ProcessSetsAreSchedulable) {
  // The healthy Fig. 8 process sets fit their windows under both PSTs.
  SystemModel system;
  system.partitions = {
      {PartitionId{0},
       "AOCS",
       true,
       {{"p1_control", 1300, 200, 10, 61, true},
        {"p1_nav", 1300, 1300, 20, 21, true}}},
      {PartitionId{1}, "TTC", false, {{"p2_tm", 650, 650, 10, 52, true}}},
      {PartitionId{2},
       "FDIR",
       false,
       {{"p3_monitor", 650, 650, 10, 41, true}}},
      {PartitionId{3},
       "PAYLOAD",
       false,
       {{"p4_sci", 1300, 1300, 10, 152, true},
        {"p4_hk", 1300, kInfiniteTime, 30, 31, true}}},
  };
  system.schedules = {scenarios::fig8_chi1(), scenarios::fig8_chi2()};

  // Under MTF-aligned releases (how ARINC 653 periodic processes started at
  // NORMAL entry actually behave) every process fits.
  for (const auto id : {ScheduleId{0}, ScheduleId{1}}) {
    const SystemAnalysis analysis =
        analyze_system(system, id, Phasing::kMtfAligned);
    EXPECT_TRUE(analysis.schedulable) << analysis.to_text();
  }

  // The worst-case-phasing analysis is sound but pessimistic: p1_control's
  // 200-tick deadline cannot be guaranteed for a release just after P1's
  // window closes.
  const SystemAnalysis pessimistic =
      analyze_system(system, ScheduleId{0}, Phasing::kWorstCase);
  EXPECT_FALSE(pessimistic.schedulable);
}

TEST(Analysis, Fig8FaultyProcessFlaggedByOfflineAnalysis) {
  // The injected fault (C=120 against D=205 with only 120 ticks of window
  // left after higher-priority processes) is exactly what the offline
  // analysis should catch before deployment.
  SystemModel system;
  system.partitions = {
      {PartitionId{0},
       "AOCS",
       true,
       {{"p1_control", 1300, 200, 10, 61, true},
        {"p1_nav", 1300, 1300, 20, 21, true},
        {"p1_faulty", 1300, 205, 30, 120, true}}},
      {PartitionId{1}, "TTC", false, {}},
      {PartitionId{2}, "FDIR", false, {}},
      {PartitionId{3}, "PAYLOAD", false, {}},
  };
  system.schedules = {scenarios::fig8_chi1()};
  const SystemAnalysis analysis =
      analyze_system(system, ScheduleId{0}, Phasing::kMtfAligned);
  EXPECT_FALSE(analysis.schedulable);
  const auto& aocs = analysis.partitions[0];
  EXPECT_TRUE(aocs.processes[0].schedulable);
  EXPECT_TRUE(aocs.processes[1].schedulable);
  EXPECT_FALSE(aocs.processes[2].schedulable) << aocs.processes[2].wcrt;
}

}  // namespace
}  // namespace air::model
