// ipc::Payload: the small-buffer / pooled message payload carrying every
// port, router and bus message (hot-path flattening, DESIGN.md §11).
//
// Covers the SBO/heap boundary, value semantics across it, the oversized
// sampling-port refusal (slot must stay intact), pool recycling
// observability, and -- the determinism contract -- byte-identical fi bus
// fault replay (drop/corrupt/delay) whether payload bytes come from fresh
// allocations or recycled pool blocks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ipc/payload.hpp"
#include "ipc/ports.hpp"
#include "net/bus.hpp"

namespace air {
namespace {

std::string bytes_of(std::size_t n, char seed = 'a') {
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>(seed + static_cast<char>(i % 23));
  }
  return s;
}

TEST(Payload, InlineUpToBoundaryHeapBeyond) {
  const ipc::Payload empty{};
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.inline_storage());

  const ipc::Payload at{bytes_of(ipc::Payload::kInlineBytes)};
  EXPECT_EQ(at.size(), ipc::Payload::kInlineBytes);
  EXPECT_TRUE(at.inline_storage()) << "boundary size must not allocate";

  const ipc::Payload over{bytes_of(ipc::Payload::kInlineBytes + 1)};
  EXPECT_FALSE(over.inline_storage());
  EXPECT_EQ(over.view(), bytes_of(ipc::Payload::kInlineBytes + 1));
}

TEST(Payload, ValueSemanticsAcrossTheBoundary) {
  const std::string small = bytes_of(10);
  const std::string big = bytes_of(300);

  ipc::Payload p{big};
  ipc::Payload copy = p;
  EXPECT_EQ(copy.view(), big);
  EXPECT_EQ(p.view(), big) << "copy must not disturb the source";

  // Shrinking a heap payload drops back to inline storage.
  p.assign(small);
  EXPECT_TRUE(p.inline_storage());
  EXPECT_EQ(p.view(), small);

  // Self-aliasing assign: shrinking from a view into the payload's own
  // heap block must not read freed bytes.
  ipc::Payload alias{big};
  alias.assign(alias.view().substr(5, 20));
  EXPECT_EQ(alias.view(), big.substr(5, 20));

  // Moves steal the heap block (no copy, no pool traffic).
  ipc::Payload donor{big};
  const char* block = donor.data();
  const ipc::Payload thief = std::move(donor);
  EXPECT_EQ(thief.data(), block);
  EXPECT_EQ(thief.view(), big);
}

TEST(Payload, PoolRecyclesHeapBlocks) {
  ipc::Payload::trim_pool();
  const auto before = ipc::Payload::pool_stats();

  const std::string big = bytes_of(500);
  { const ipc::Payload p{big}; }
  auto stats = ipc::Payload::pool_stats();
  EXPECT_EQ(stats.heap_allocs, before.heap_allocs + 1);
  EXPECT_EQ(stats.pool_returns, before.pool_returns + 1);
  EXPECT_EQ(stats.free_blocks, 1u);

  // Same bucket: the next oversized payload reuses the parked block.
  { const ipc::Payload p{bytes_of(400)}; }
  stats = ipc::Payload::pool_stats();
  EXPECT_EQ(stats.heap_allocs, before.heap_allocs + 1)
      << "reuse must not hit the allocator";
  EXPECT_EQ(stats.pool_reuses, before.pool_reuses + 1);
  EXPECT_EQ(stats.free_blocks, 1u);

  ipc::Payload::trim_pool();
  EXPECT_EQ(ipc::Payload::pool_stats().free_blocks, 0u);
}

TEST(SamplingPort, RefusesOversizedWriteAndKeepsSlotIntact) {
  ipc::SamplingPort port{"S", ipc::PortDirection::kDestination, 8,
                         /*refresh_period=*/10};
  ASSERT_TRUE(port.write({"12345678", 0, PartitionId{0}}));

  EXPECT_FALSE(port.write({"123456789", 1, PartitionId{0}}))
      << "9 bytes into an 8-byte port";
  const auto result = port.read(1);
  ASSERT_TRUE(result.message.has_value());
  EXPECT_EQ(result.message->payload, "12345678")
      << "refused write must leave the previous message untouched";
  EXPECT_EQ(result.message->sent_at, 0);
}

TEST(QueuingPort, RefusesOversizedSend) {
  ipc::QueuingPort port{"Q", ipc::PortDirection::kSource, 4, 2};
  EXPECT_EQ(port.send({"12345", 0, PartitionId{0}}),
            ipc::QueuingPort::SendStatus::kTooLarge);
  EXPECT_EQ(port.depth(), 0u);
  EXPECT_EQ(port.send({"1234", 0, PartitionId{0}}),
            ipc::QueuingPort::SendStatus::kOk);
}

// One full bus flight under a deterministic fault schedule: returns every
// delivery as "tick:port:bytes". Payloads straddle the SBO boundary so the
// corrupt hook mutates both inline and pooled bytes.
std::vector<std::string> fly_faulted_bus() {
  net::Bus bus({.slot_length = 1, .frames_per_slot = 2,
                .propagation_delay = 1});
  std::vector<std::string> deliveries;
  Ticks now = 0;
  bus.attach(ModuleId{0}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.attach(ModuleId{1},
             [&](PartitionId, const std::string& port, const ipc::Message& m,
                 ipc::ChannelKind) {
               deliveries.push_back(std::to_string(now) + ":" + port + ":" +
                                    m.payload.str());
             });
  bus.set_fault_hook([](std::uint64_t seq, ModuleId,
                        const ipc::RemotePortRef&) {
    net::Bus::FaultDecision decision;
    if (seq == 1) decision.drop = true;
    if (seq == 2) decision.corrupt = true;
    if (seq == 3) decision.extra_delay = 7;
    return decision;
  });

  for (int i = 0; i < 6; ++i) {
    const std::string payload =
        "m" + std::to_string(i) + "|" +
        bytes_of(i % 2 == 0 ? 16 : ipc::Payload::kInlineBytes + 40,
                 static_cast<char>('A' + i));
    bus.send(ModuleId{0}, {ModuleId{1}, PartitionId{0}, "IN"},
             {payload, now, PartitionId{0}}, ipc::ChannelKind::kQueuing, now);
  }
  for (; now < 30; ++now) bus.tick(now);
  return deliveries;
}

TEST(Payload, BusFaultHooksReplayByteIdenticallyOnPooledBlocks) {
  // First flight starts from a cold pool; by the second flight every
  // oversized payload is served from recycled blocks. The fault outcomes
  // (dropped frame, corrupted bytes, delayed arrival order) must not care.
  ipc::Payload::trim_pool();
  const std::vector<std::string> cold = fly_faulted_bus();
  const auto warm_stats = ipc::Payload::pool_stats();
  EXPECT_GT(warm_stats.free_blocks, 0u) << "flight must park pool blocks";
  const std::vector<std::string> warm = fly_faulted_bus();
  EXPECT_GT(ipc::Payload::pool_stats().pool_reuses, warm_stats.pool_reuses)
      << "second flight must recycle";

  ASSERT_EQ(cold, warm) << "pool reuse leaked into observable behaviour";
  // The fault schedule really fired: one frame dropped, and the delayed
  // frame (seq 3) arrives after later-transmitted ones.
  EXPECT_EQ(cold.size(), 5u);
  const auto position_of = [&cold](const char* tag) {
    for (std::size_t i = 0; i < cold.size(); ++i) {
      if (cold[i].find(tag) != std::string::npos) return i;
    }
    return cold.size();
  };
  EXPECT_LT(position_of("m5|"), position_of("m3|"))
      << "extra delay must let later frames overtake the delayed one";
  EXPECT_EQ(position_of("m1|"), cold.size()) << "dropped frame delivered";
}

}  // namespace
}  // namespace air
