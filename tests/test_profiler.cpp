// Host profiler semantics (telemetry/profiler.hpp) and the interned-string
// arena it attributes allocations against (util/arena.hpp).
//
// Host wall-clock values are nondeterministic by nature, so these tests
// assert structure -- node topology, path strings, call counts, stat
// monotonicity -- never concrete durations. The one determinism claim that
// *is* tested: enabling the profiler must not perturb any deterministic
// export (metrics, spans, trace are byte-identical with it on or off).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "config/fig8.hpp"
#include "system/module.hpp"
#include "telemetry/export.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/spans.hpp"
#include "util/arena.hpp"
#include "util/json.hpp"
#include "util/trace_export.hpp"

namespace air {
namespace {

using telemetry::HostProfiler;
using telemetry::ProfilePoint;
using util::StringArena;

// --- profiler ---------------------------------------------------------

TEST(HostProfiler, DisabledScopesRecordNothing) {
  HostProfiler profiler;  // enabled_ defaults to false
  profiler.begin_tick();
  {
    HostProfiler::Scope tick(profiler, ProfilePoint::kTick);
    HostProfiler::Scope pal(profiler, ProfilePoint::kPal);
  }
  EXPECT_EQ(profiler.nodes().size(), 1u) << "only the synthetic root";
  EXPECT_EQ(profiler.ticks(), 0u);
  EXPECT_FALSE(profiler.sampling());
}

TEST(HostProfiler, OffStrideTicksRecordNothing) {
  HostProfiler profiler;
  profiler.enable(true);
  profiler.set_stride(4);
  std::uint64_t sampled = 0;
  for (int tick = 0; tick < 8; ++tick) {
    if (profiler.begin_tick()) ++sampled;
    HostProfiler::Scope scope(profiler, ProfilePoint::kTick);
  }
  EXPECT_EQ(sampled, 2u);  // ticks 0 and 4
  EXPECT_EQ(profiler.ticks(), 2u);
  ASSERT_GE(profiler.nodes().size(), 2u);
  EXPECT_EQ(profiler.nodes()[1].stats.calls, 2u)
      << "off-stride scopes must not bump call counts";
}

TEST(HostProfiler, NestedScopesAggregatePerStackPath) {
  HostProfiler profiler;
  profiler.enable(true);
  profiler.set_stride(1);
  for (int tick = 0; tick < 3; ++tick) {
    profiler.begin_tick();
    HostProfiler::Scope t(profiler, ProfilePoint::kTick);
    {
      HostProfiler::Scope pal(profiler, ProfilePoint::kPal);
      HostProfiler::Scope kd(profiler, ProfilePoint::kKernelDispatch);
    }
    {
      HostProfiler::Scope ex(profiler, ProfilePoint::kExecutor);
      HostProfiler::Scope kd(profiler, ProfilePoint::kKernelDispatch);
    }
    HostProfiler::Scope router(profiler, ProfilePoint::kRouter);
  }

  // Same point under different parents = distinct rows.
  std::vector<std::string> paths;
  for (std::uint32_t i = 1; i < profiler.nodes().size(); ++i) {
    paths.push_back(profiler.path(i));
  }
  EXPECT_NE(std::find(paths.begin(), paths.end(), "tick;pal;kernel_dispatch"),
            paths.end());
  EXPECT_NE(
      std::find(paths.begin(), paths.end(), "tick;executor;kernel_dispatch"),
      paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(), "tick;router"), paths.end());

  for (std::uint32_t i = 1; i < profiler.nodes().size(); ++i) {
    EXPECT_EQ(profiler.nodes()[i].stats.calls, 3u) << profiler.path(i);
  }
  // point_stats folds both kernel_dispatch rows together.
  EXPECT_EQ(profiler.point_stats(ProfilePoint::kKernelDispatch).calls, 6u);
}

TEST(HostProfiler, MaxTracksTheSlowestCallAndSelfExcludesChildren) {
  HostProfiler profiler;
  profiler.enable(true);
  profiler.set_stride(1);
  for (int tick = 0; tick < 4; ++tick) {
    profiler.begin_tick();
    HostProfiler::Scope t(profiler, ProfilePoint::kTick);
    HostProfiler::Scope pal(profiler, ProfilePoint::kPal);
    if (tick == 2) {  // one deliberately slow call
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const HostProfiler::PathStats pal = profiler.point_stats(ProfilePoint::kPal);
  ASSERT_EQ(pal.calls, 4u);
  EXPECT_GE(pal.max_ns, 2'000'000u) << "max must capture the slow call";
  EXPECT_LE(pal.max_ns, pal.total_ns);
  // mean <= max always; with one 2ms outlier among 4 calls, max > mean.
  EXPECT_GT(pal.max_ns, pal.total_ns / 4);

  // tick's self time excludes the pal child (clamped, never wrapping).
  const auto& nodes = profiler.nodes();
  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LE(profiler.self_ns(i), nodes[i].stats.total_ns)
        << profiler.path(i);
  }
}

TEST(HostProfiler, ReportAndFoldedAndJsonShareTheTree) {
  HostProfiler profiler;
  profiler.enable(true);
  profiler.set_stride(1);
  profiler.begin_tick();
  {
    HostProfiler::Scope t(profiler, ProfilePoint::kTick);
    HostProfiler::Scope s(profiler, ProfilePoint::kScheduler);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  const std::string report = profiler.report();
  EXPECT_NE(report.find("tick;scheduler"), std::string::npos) << report;

  const std::string folded = profiler.folded();
  EXPECT_NE(folded.find("tick;scheduler "), std::string::npos) << folded;

  const auto parsed =
      util::json::parse(telemetry::profile_to_json(profiler, "test"));
  ASSERT_TRUE(parsed.ok());
  const auto* meta = parsed.value->find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->get_string("origin", ""), "test");
  EXPECT_EQ(meta->get_int("sampled_ticks", -1), 1);
  const auto* paths = parsed.value->find("paths");
  ASSERT_NE(paths, nullptr);
  ASSERT_EQ(paths->as_array().size(), 2u);
  EXPECT_EQ(paths->as_array()[0].get_string("path", ""), "tick");
  EXPECT_EQ(paths->as_array()[1].get_string("path", ""), "tick;scheduler");
  EXPECT_GE(paths->as_array()[1].get_int("total_ns", 0), 100'000);
}

TEST(HostProfiler, ClearResetsToARoot) {
  HostProfiler profiler;
  profiler.enable(true);
  profiler.set_stride(1);
  profiler.begin_tick();
  { HostProfiler::Scope t(profiler, ProfilePoint::kTick); }
  ASSERT_GT(profiler.nodes().size(), 1u);
  profiler.clear();
  EXPECT_EQ(profiler.nodes().size(), 1u);
  EXPECT_EQ(profiler.ticks(), 0u);
}

// The core determinism contract: host time must never leak into the
// deterministic artifacts. A profiled flight and an unprofiled flight of
// the same mission export byte-identical metrics, spans and traces.
TEST(HostProfiler, ProfiledFlightExportsAreByteIdentical) {
  auto fly = [](bool profiled) {
    auto config = scenarios::fig8_config();
    config.telemetry.profiler_enabled = profiled;
    config.telemetry.profiler_stride = 1;
    system::Module module(std::move(config));
    module.start_process_by_name(module.partition_id("AOCS"),
                                 scenarios::kFaultyProcessName);
    module.run(3 * scenarios::kFig8Mtf);
    return telemetry::to_json(module.metrics_snapshot()) +
           telemetry::spans_to_json(module.spans()) +
           util::to_json(module.trace());
  };
  EXPECT_EQ(fly(false), fly(true));
}

TEST(HostProfiler, ModuleStatusReportCarriesTheProfileLine) {
  auto config = scenarios::fig8_config();
  config.telemetry.profiler_enabled = true;
  config.telemetry.profiler_stride = 1;
  system::Module module(std::move(config));
  module.run(scenarios::kFig8Mtf);
  const std::string report = module.status_report();
  EXPECT_NE(report.find("profile:"), std::string::npos) << report;
  EXPECT_NE(report.find("payload pool:"), std::string::npos) << report;
  EXPECT_NE(report.find("label arena:"), std::string::npos) << report;
}

// --- string arena -----------------------------------------------------

TEST(StringArena, InternRoundTripsAndDeduplicates) {
  StringArena arena;
  const util::Sym a = arena.intern("activated");
  const util::Sym b = arena.intern("deadline_miss");
  const util::Sym a2 = arena.intern("activated");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2) << "same bytes -> same symbol";
  EXPECT_EQ(arena.lookup(a), "activated");
  EXPECT_EQ(arena.lookup(b), "deadline_miss");

  EXPECT_EQ(arena.intern(""), 0u);
  EXPECT_EQ(arena.lookup(0), "");
  EXPECT_EQ(arena.lookup(999), "") << "unknown symbols resolve empty";

  const StringArena::Stats& stats = arena.stats();
  EXPECT_EQ(stats.symbols, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.bytes_used,
            std::string_view{"activated"}.size() +
                std::string_view{"deadline_miss"}.size());
  EXPECT_EQ(stats.blocks, 1u);
}

TEST(StringArena, SteadyStateInterningIsHitOnly) {
  StringArena arena;
  arena.intern("window");
  const std::size_t bytes = arena.stats().bytes_used;
  for (int i = 0; i < 1000; ++i) arena.intern("window");
  EXPECT_EQ(arena.stats().bytes_used, bytes) << "hits must not allocate";
  EXPECT_EQ(arena.stats().hits, 1000u);
  EXPECT_EQ(arena.stats().misses, 1u);
}

TEST(StringArena, OversizedStringsGetADedicatedBlock) {
  StringArena arena;
  const std::string big(StringArena::kBlockBytes + 17, 'x');
  const util::Sym sym = arena.intern(big);
  EXPECT_EQ(arena.lookup(sym), big);
  EXPECT_EQ(arena.stats().bytes_used, big.size());
  EXPECT_GE(arena.stats().bytes_reserved, big.size());
}

TEST(StringArena, TrimForgetsSymbolsButKeepsLifetimeCounters) {
  StringArena arena;
  arena.intern("a");
  arena.intern("b");
  arena.intern("a");
  const std::size_t high_water = arena.stats().high_water;
  arena.trim();
  const StringArena::Stats& stats = arena.stats();
  EXPECT_EQ(stats.symbols, 0u);
  EXPECT_EQ(stats.blocks, 0u);
  EXPECT_EQ(stats.bytes_used, 0u);
  EXPECT_EQ(stats.trims, 1u);
  EXPECT_EQ(stats.hits, 1u) << "lifetime counters survive trim";
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.high_water, high_water);
  // The id space restarts: the same text mints a fresh symbol.
  EXPECT_EQ(arena.intern("c"), 1u);
}

TEST(InternedString, ComparesByTextAndStreams) {
  StringArena arena;
  const util::InternedString a{&arena, arena.intern("activated")};
  const util::InternedString b{&arena, arena.intern("activated")};
  const util::InternedString c{&arena, arena.intern("other")};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "activated");
  EXPECT_EQ(a, std::string_view{"activated"});
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(util::InternedString{}.empty());
  EXPECT_EQ(a.str(), "activated");
  std::ostringstream os;
  os << a;
  EXPECT_EQ(os.str(), "activated");
}

}  // namespace
}  // namespace air
