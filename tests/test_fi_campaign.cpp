// Fault-injection campaign engine: deterministic plans, byte-identical
// replay under every execution driver, containment oracles, and the
// campaign runner's breach detection + reproducer minimization.
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "fi/campaign.hpp"
#include "system/module.hpp"
#include "system/world.hpp"

namespace air::fi {
namespace {

using scenarios::kFig8Mtf;

PlanSpec small_spec() {
  PlanSpec spec;
  spec.first_tick = 50;
  spec.horizon = 3700;
  spec.min_gap = kFig8Mtf;
  spec.partitions = 4;
  spec.max_injections = 4;
  spec.classes = {
      FaultClass::kMemoryBitFlip,  FaultClass::kRogueWrite,
      FaultClass::kProcessOverrun, FaultClass::kApplicationError,
      FaultClass::kScheduleStorm,  FaultClass::kBusFrameDrop,
  };
  return spec;
}

TEST(FaultPlan, GenerationIsDeterministic) {
  const PlanSpec spec = small_spec();
  const FaultPlan a = generate_plan(spec, 42);
  const FaultPlan b = generate_plan(spec, 42);
  EXPECT_EQ(a, b) << "same spec + seed must yield the identical plan";
  ASSERT_FALSE(a.injections.empty());
  EXPECT_GE(a.injections.front().tick, spec.first_tick);
  // Injections stay sorted and spaced by at least min_gap.
  for (std::size_t i = 1; i < a.injections.size(); ++i) {
    EXPECT_GE(a.injections[i].tick,
              a.injections[i - 1].tick + spec.min_gap);
  }
  // Different seeds diverge (checked over a few to dodge coincidences).
  bool diverged = false;
  for (std::uint64_t seed = 43; seed < 48 && !diverged; ++seed) {
    diverged = !(generate_plan(spec, seed) == a);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlan, TextFormRoundTrips) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FaultPlan plan = generate_plan(small_spec(), seed);
    FaultPlan back;
    ASSERT_TRUE(FaultPlan::from_text(plan.to_text(), back))
        << plan.to_text();
    EXPECT_EQ(plan, back);
  }
}

TEST(FaultPlan, RejectsMalformedText) {
  FaultPlan out;
  EXPECT_FALSE(FaultPlan::from_text("", out));
  EXPECT_FALSE(FaultPlan::from_text("not a plan\n", out));
  EXPECT_FALSE(FaultPlan::from_text(
      "# air fault plan v1\nseed 1\ninject 10 not_a_class 0 0 0\n", out));
}

TEST(FaultPlan, ClassNamesRoundTrip) {
  for (std::size_t i = 0; i < kFaultClassCount; ++i) {
    const auto fault = static_cast<FaultClass>(i);
    FaultClass back{};
    ASSERT_TRUE(fault_class_from_string(to_string(fault), back));
    EXPECT_EQ(back, fault);
  }
}

// A representative all-module-fault plan used by the replay tests.
FaultPlan module_fault_plan() {
  FaultPlan plan;
  plan.seed = 7;
  plan.injections = {
      {200, FaultClass::kMemoryBitFlip, 3, 129, 5},
      {1500, FaultClass::kRogueWrite, 1, 0, 0},
      {2900, FaultClass::kApplicationError, 2, 0, 0},
      {4300, FaultClass::kProcessStuck, 3, 0, 0},
  };
  return plan;
}

std::string fly_module(const FaultPlan& plan, bool warp) {
  system::Module module(campaign_fig8_config(/*weaken_hm=*/false));
  module.set_time_warp(warp);
  Injector injector(plan);
  injector.arm(module);
  module.run(4 * kFig8Mtf);
  return module.trace().to_text();
}

TEST(FiReplay, TimeWarpIsByteIdentical) {
  const FaultPlan plan = module_fault_plan();
  const std::string per_tick = fly_module(plan, /*warp=*/false);
  const std::string warped = fly_module(plan, /*warp=*/true);
  EXPECT_EQ(digest64(per_tick), digest64(warped))
      << "an armed plan must not perturb the time-warp fast path";
  EXPECT_EQ(per_tick, warped);
}

struct WorldTraces {
  std::string prototype;
  std::string ground;
};

WorldTraces fly_world(const FaultPlan& plan, bool lockstep,
                      std::size_t workers) {
  system::ModuleConfig fig8 = campaign_fig8_config(/*weaken_hm=*/false);
  fig8.id = ModuleId{0};
  for (ipc::ChannelConfig& channel : fig8.channels) {
    if (channel.kind == ipc::ChannelKind::kQueuing) {
      channel.remote_destinations.push_back(
          {ModuleId{1}, PartitionId{0}, "SCI_IN"});
    }
  }
  system::World world(
      {.slot_length = 10, .frames_per_slot = 2, .propagation_delay = 2});
  system::Module& prototype = world.add_module(std::move(fig8));
  system::Module& ground = world.add_module(campaign_ground_config());
  world.set_workers(workers);
  Injector injector(plan);
  BusInjector bus_injector(plan);
  injector.arm(prototype);
  bus_injector.arm(world.bus());
  if (lockstep) {
    world.run_lockstep(4 * kFig8Mtf);
  } else {
    world.run(4 * kFig8Mtf);
  }
  return {prototype.trace().to_text(), ground.trace().to_text()};
}

TEST(FiReplay, LockstepAndParallelWorldsAgree) {
  FaultPlan plan = module_fault_plan();
  plan.injections.push_back({0, FaultClass::kBusFrameDrop, -1, 1, 0});
  plan.injections.push_back({0, FaultClass::kBusFrameDelay, -1, 2, 7});
  plan.sort();
  const WorldTraces lockstep = fly_world(plan, /*lockstep=*/true, 1);
  const WorldTraces parallel = fly_world(plan, /*lockstep=*/false, 2);
  EXPECT_EQ(lockstep.prototype, parallel.prototype)
      << "module+bus faults must replay byte-identically in parallel";
  EXPECT_EQ(lockstep.ground, parallel.ground);
}

TEST(FiOracles, RogueWriteIsBlockedAndContained) {
  CampaignOptions options;
  FaultPlan plan;
  plan.injections = {{1500, FaultClass::kRogueWrite, 1, 0, 0}};
  std::vector<InjectionRecord> records;
  const std::vector<Breach> breaches =
      evaluate_plan(options, plan, /*world_mission=*/false, &records);
  for (const Breach& breach : breaches) {
    ADD_FAILURE() << "[" << breach.oracle << "] " << breach.detail;
  }
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].applied);
  EXPECT_EQ(records[0].note, "blocked by the MMU");
}

TEST(FiOracles, StuckProcessStarvesOnlyItsOwnPartition) {
  CampaignOptions options;
  FaultPlan plan;
  plan.injections = {{1400, FaultClass::kProcessStuck, 2, 0, 0}};
  const std::vector<Breach> breaches =
      evaluate_plan(options, plan, /*world_mission=*/false);
  for (const Breach& breach : breaches) {
    ADD_FAILURE() << "[" << breach.oracle << "] " << breach.detail;
  }
}

TEST(FiOracles, BusFrameFaultsLeaveTheAirModuleUntouched) {
  CampaignOptions options;
  FaultPlan plan;
  plan.injections = {{0, FaultClass::kBusFrameCorrupt, -1, 0, 0},
                     {0, FaultClass::kBusFrameDrop, -1, 2, 0}};
  const std::vector<Breach> breaches =
      evaluate_plan(options, plan, /*world_mission=*/true);
  for (const Breach& breach : breaches) {
    ADD_FAILURE() << "[" << breach.oracle << "] " << breach.detail;
  }
}

TEST(FiCampaign, StockSmokeRunsClean) {
  CampaignOptions options;
  options.first_seed = 1;
  options.seeds = 6;  // seeds 3 and 6 fly the two-module world mission
  const CampaignResult result = run_campaign(options);
  EXPECT_EQ(result.seeds_run, 6u);
  EXPECT_GT(result.injections_applied, 0u);
  for (const SeedResult& failure : result.failures) {
    ADD_FAILURE() << failure.report;
  }
}

TEST(FiCampaign, WeakenedHmIsFlaggedWithMinimalReproducer) {
  CampaignOptions options;
  options.weaken_hm = true;
  const SeedResult result = run_seed(options, /*seed=*/1);
  ASSERT_FALSE(result.breaches.empty())
      << "removing the error handlers must breach the HM oracle";
  // The acceptance bar: a minimized reproducer of at most 3 injections
  // that still breaches on replay.
  EXPECT_LE(result.minimized.injections.size(), 3u);
  const std::vector<Breach> replay = evaluate_plan(
      options, result.minimized, is_world_seed(options, 1));
  EXPECT_FALSE(replay.empty()) << "minimized plan must still reproduce";
  EXPECT_FALSE(result.report.empty());
  // The reproducer file round-trips through its text form.
  FaultPlan reparsed;
  ASSERT_TRUE(FaultPlan::from_text(result.minimized.to_text(), reparsed));
  EXPECT_EQ(reparsed, result.minimized);
}

}  // namespace
}  // namespace air::fi
