// Additional multi-module World coverage: three-module topologies, sampling
// fan-out over the bus, and bus fairness.
#include <gtest/gtest.h>

#include "system/world.hpp"
#include "telemetry/spans.hpp"
#include "util/trace_export.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

system::ModuleConfig simple_module(std::int32_t id, std::string partition,
                                   pos::Script script,
                                   std::vector<system::SamplingPortConfig> sp,
                                   std::vector<ipc::ChannelConfig> channels) {
  system::ModuleConfig config;
  config.id = ModuleId{id};
  config.name = "m" + std::to_string(id);
  system::PartitionConfig p;
  p.name = std::move(partition);
  p.sampling_ports = std::move(sp);
  system::ProcessConfig process;
  process.attrs.name = "main";
  process.attrs.priority = 10;
  process.attrs.script = std::move(script);
  p.processes.push_back(std::move(process));
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  config.channels = std::move(channels);
  return config;
}

TEST(WorldExtra, SamplingFanOutReachesTwoRemoteModules) {
  system::World world({.slot_length = 3, .frames_per_slot = 2,
                       .propagation_delay = 1});

  // Module 0 broadcasts attitude to modules 1 and 2.
  ipc::ChannelConfig broadcast;
  broadcast.id = ChannelId{0};
  broadcast.kind = ipc::ChannelKind::kSampling;
  broadcast.source = {PartitionId{0}, "OUT"};
  broadcast.remote_destinations = {{ModuleId{1}, PartitionId{0}, "IN"},
                                   {ModuleId{2}, PartitionId{0}, "IN"}};
  world.add_module(simple_module(
      0, "SRC",
      ScriptBuilder{}.sampling_write(0, "att").timed_wait(10).build(),
      {{"OUT", ipc::PortDirection::kSource, 32, kInfiniteTime}},
      {broadcast}));

  for (std::int32_t id : {1, 2}) {
    world.add_module(simple_module(
        id, "DST",
        ScriptBuilder{}.sampling_read(0).timed_wait(10).build(),
        {{"IN", ipc::PortDirection::kDestination, 32, 100}}, {}));
  }

  world.run(200);

  for (std::size_t m : {1u, 2u}) {
    const auto valid_reads = world.module(m).trace().filtered(
        util::EventKind::kPortReceive,
        [](const util::TraceEvent& e) { return e.c == 1; });
    EXPECT_GE(valid_reads.size(), 10u) << "module " << m;
  }
  EXPECT_EQ(world.bus().stats().frames_dropped, 0u);
}

TEST(WorldExtra, TdmaGivesEveryStationItsShare) {
  // Three chatty modules all broadcasting: the TDMA cycle bounds what each
  // can transmit; nobody is starved.
  system::World world({.slot_length = 5, .frames_per_slot = 1,
                       .propagation_delay = 1});
  for (std::int32_t id : {0, 1, 2}) {
    ipc::ChannelConfig channel;
    channel.id = ChannelId{0};
    channel.kind = ipc::ChannelKind::kSampling;
    channel.source = {PartitionId{0}, "OUT"};
    channel.remote_destinations = {
        {ModuleId{(id + 1) % 3}, PartitionId{0}, "IN"}};
    world.add_module(simple_module(
        id, "NODE",
        ScriptBuilder{}
            .sampling_write(0, "chatter-" + std::to_string(id))
            .timed_wait(5)
            .build(),
        {{"OUT", ipc::PortDirection::kSource, 32, kInfiniteTime},
         {"IN", ipc::PortDirection::kDestination, 32, 100}},
        {channel}));
  }
  world.run(600);

  // Each module's IN port eventually carries its neighbour's chatter.
  for (std::size_t m = 0; m < 3; ++m) {
    auto& module = world.module(m);
    std::string payload;
    bool valid = false;
    ASSERT_EQ(module.apex(PartitionId{0})
                  .read_sampling_message(PortId{1}, payload, valid),
              apex::ReturnCode::kNoError)
        << "module " << m;
    const std::string expected =
        "chatter-" + std::to_string((m + 2) % 3);
    EXPECT_EQ(payload, expected);
  }
  EXPECT_GT(world.bus().stats().frames_delivered, 100u);
}

TEST(WorldExtra, PooledRunMatchesLockstepOnChattyTopology) {
  // The chatty three-module ring again, driven three ways: per-tick
  // lockstep, inline epochs and a 4-lane worker pool. The pooled variant is
  // what the CI ThreadSanitizer job watches for data races in the staging
  // and barrier protocol.
  auto fly = [](int mode) {
    system::World world({.slot_length = 5, .frames_per_slot = 1,
                         .propagation_delay = 1});
    for (std::int32_t id : {0, 1, 2}) {
      ipc::ChannelConfig channel;
      channel.id = ChannelId{0};
      channel.kind = ipc::ChannelKind::kSampling;
      channel.source = {PartitionId{0}, "OUT"};
      channel.remote_destinations = {
          {ModuleId{(id + 1) % 3}, PartitionId{0}, "IN"}};
      world.add_module(simple_module(
          id, "NODE",
          ScriptBuilder{}
              .sampling_write(0, "chatter-" + std::to_string(id))
              .timed_wait(5)
              .build(),
          {{"OUT", ipc::PortDirection::kSource, 32, kInfiniteTime},
           {"IN", ipc::PortDirection::kDestination, 32, 100}},
          {channel}));
    }
    if (mode == 2) world.set_workers(4);
    mode == 0 ? world.run_lockstep(600) : world.run(600);
    std::string out;
    for (std::size_t m = 0; m < 3; ++m) {
      out += util::to_json(world.module(m).trace());
    }
    out += telemetry::spans_to_json(world.bus_spans());
    out += std::to_string(world.bus().stats().frames_delivered);
    return out;
  };
  const std::string lockstep = fly(0);
  EXPECT_EQ(lockstep, fly(1));
  EXPECT_EQ(lockstep, fly(2));
}

}  // namespace
}  // namespace air
