// Multicore extension tests (the paper's future work (iv): parallelism
// between partition time windows on a multicore platform).
//
// Model: each core runs its own set of PSTs; a partition is statically
// bound to exactly one core (affinity rule enforced at construction), so
// within a core the two-level scheduling argument of the paper is
// unchanged, while windows of *different* partitions overlap across cores.
#include <gtest/gtest.h>

#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

system::PartitionConfig worker_partition(std::string name, Ticks period,
                                         Ticks compute) {
  system::PartitionConfig p;
  p.name = std::move(name);
  system::ProcessConfig process;
  process.attrs.name = "work";
  process.attrs.period = period;
  process.attrs.time_capacity = period;
  process.attrs.priority = 10;
  process.attrs.script =
      ScriptBuilder{}.compute(compute).log("done").periodic_wait().build();
  p.processes.push_back(std::move(process));
  return p;
}

model::Schedule half_half(ScheduleId id, PartitionId a, PartitionId b) {
  model::Schedule s;
  s.id = id;
  s.mtf = 100;
  s.requirements = {{a, 100, 50}, {b, 100, 50}};
  s.windows = {{a, 0, 50}, {b, 50, 50}};
  return s;
}

/// Four partitions over two cores: core 0 runs P0/P1, core 1 runs P2/P3.
system::ModuleConfig dual_core_config() {
  system::ModuleConfig config;
  config.partitions.push_back(worker_partition("A", 100, 40));
  config.partitions.push_back(worker_partition("B", 100, 40));
  config.partitions.push_back(worker_partition("C", 100, 40));
  config.partitions.push_back(worker_partition("D", 100, 40));
  config.cores.push_back(
      {{half_half(ScheduleId{0}, PartitionId{0}, PartitionId{1})},
       ScheduleId{0}});
  config.cores.push_back(
      {{half_half(ScheduleId{1}, PartitionId{2}, PartitionId{3})},
       ScheduleId{1}});
  return config;
}

TEST(Multicore, PartitionWindowsRunInParallel) {
  system::Module module(dual_core_config());
  ASSERT_EQ(module.core_count(), 2u);
  module.tick_once();
  // At t=0 both cores dispatched their first window's partition.
  EXPECT_EQ(module.dispatcher(0).active_partition(), PartitionId{0});
  EXPECT_EQ(module.dispatcher(1).active_partition(), PartitionId{2});
  EXPECT_EQ(module.core_of(PartitionId{1}), 0u);
  EXPECT_EQ(module.core_of(PartitionId{3}), 1u);
}

TEST(Multicore, ThroughputScalesWithCores) {
  // The same four partitions on one core (each 25 ticks per 100) complete
  // half the activations the two-core configuration does.
  system::ModuleConfig single;
  single.partitions.push_back(worker_partition("A", 100, 20));
  single.partitions.push_back(worker_partition("B", 100, 20));
  single.partitions.push_back(worker_partition("C", 100, 20));
  single.partitions.push_back(worker_partition("D", 100, 20));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 100;
  for (int i = 0; i < 4; ++i) {
    s.requirements.push_back({PartitionId{i}, 100, 25});
    s.windows.push_back({PartitionId{i}, i * 25, 25});
  }
  single.schedules = {s};
  system::Module one_core(std::move(single));

  auto dual = dual_core_config();
  for (auto& partition : dual.partitions) {
    // Same 20-tick jobs as the single-core case.
    partition.processes[0].attrs.script =
        ScriptBuilder{}.compute(20).log("done").periodic_wait().build();
  }
  system::Module two_cores(std::move(dual));

  one_core.run(1000);
  two_cores.run(1000);

  std::size_t single_done = 0, dual_done = 0;
  for (int p = 0; p < 4; ++p) {
    single_done += one_core.console(PartitionId{p}).size();
    dual_done += two_cores.console(PartitionId{p}).size();
  }
  // Both complete all activations -- this workload fits either way; the
  // overload case below shows where the second core matters.
  EXPECT_EQ(single_done, 40u);
  EXPECT_EQ(dual_done, 40u);
}

TEST(Multicore, OverloadedSingleCoreHalvesUnderTwoCores) {
  // Jobs of 40 ticks per 100-tick period: infeasible on one core at 25
  // ticks/partition (completions lag), feasible on two cores at 50.
  system::ModuleConfig single;
  for (const char* name : {"A", "B", "C", "D"}) {
    auto p = worker_partition(name, 100, 40);
    p.processes[0].attrs.time_capacity = kInfiniteTime;  // observe lag only
    single.partitions.push_back(std::move(p));
  }
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 100;
  for (int i = 0; i < 4; ++i) {
    s.requirements.push_back({PartitionId{i}, 100, 25});
    s.windows.push_back({PartitionId{i}, i * 25, 25});
  }
  single.schedules = {s};
  system::Module one_core(std::move(single));

  auto dual = dual_core_config();
  for (auto& partition : dual.partitions) {
    partition.processes[0].attrs.time_capacity = kInfiniteTime;
  }
  system::Module two_cores(std::move(dual));

  one_core.run(1000);
  two_cores.run(1000);
  std::size_t single_done = 0, dual_done = 0;
  for (int p = 0; p < 4; ++p) {
    single_done += one_core.console(PartitionId{p}).size();
    dual_done += two_cores.console(PartitionId{p}).size();
  }
  EXPECT_EQ(dual_done, 40u) << "two cores keep up";
  // One core supplies 25 ticks per 100 against 40 demanded: ~25/40 of the
  // activations complete.
  EXPECT_LE(single_done, 26u);
  EXPECT_GE(single_done, 22u);
}

TEST(Multicore, AffinityViolationIsRejected) {
  auto config = dual_core_config();
  // Put partition 0 into core 1's schedule as well.
  config.cores[1].schedules[0].requirements.push_back(
      {PartitionId{0}, 100, 0});
  EXPECT_THROW(system::Module{std::move(config)}, std::invalid_argument);
}

TEST(Multicore, PerCoreScheduleSwitching) {
  auto config = dual_core_config();
  config.partitions[0].system_partition = true;
  // Core 0 gets an alternative schedule with the windows swapped.
  model::Schedule alt = half_half(ScheduleId{7}, PartitionId{1}, PartitionId{0});
  config.cores[0].schedules.push_back(alt);
  system::Module module(std::move(config));

  module.run(10);
  ASSERT_EQ(module.apex(PartitionId{0}).set_module_schedule(ScheduleId{7}),
            apex::ReturnCode::kNoError);
  module.run(100);
  // Core 0 switched at its boundary; core 1 is untouched.
  EXPECT_EQ(module.scheduler(0).status().current, ScheduleId{7});
  EXPECT_EQ(module.scheduler(1).status().current, ScheduleId{1});
  module.tick_once();
  EXPECT_EQ(module.dispatcher(0).active_partition(), PartitionId{1});
  EXPECT_EQ(module.dispatcher(1).active_partition(), PartitionId{2});
}

TEST(Multicore, SwitchRequestForAnotherCoresScheduleIsRefused) {
  auto config = dual_core_config();
  config.partitions[0].system_partition = true;
  system::Module module(std::move(config));
  // Schedule 1 belongs to core 1; partition 0 lives on core 0.
  EXPECT_EQ(module.apex(PartitionId{0}).set_module_schedule(ScheduleId{1}),
            apex::ReturnCode::kInvalidParam);
}

TEST(Multicore, CrossCoreChannelsDeliver) {
  auto config = dual_core_config();
  config.partitions[0].sampling_ports.push_back(
      {"OUT", ipc::PortDirection::kSource, 32, kInfiniteTime});
  config.partitions[2].sampling_ports.push_back(
      {"IN", ipc::PortDirection::kDestination, 32, 500});
  config.partitions[0].processes[0].attrs.script =
      ScriptBuilder{}.compute(10).sampling_write(0, "x-core").periodic_wait()
          .build();
  config.partitions[2].processes[0].attrs.script =
      ScriptBuilder{}.sampling_read(0).compute(5).periodic_wait().build();
  ipc::ChannelConfig channel;
  channel.id = ChannelId{0};
  channel.kind = ipc::ChannelKind::kSampling;
  channel.source = {PartitionId{0}, "OUT"};
  channel.local_destinations = {{PartitionId{2}, "IN"}};
  config.channels.push_back(channel);

  system::Module module(std::move(config));
  module.run(300);
  const auto receives = module.trace().filtered(
      util::EventKind::kPortReceive,
      [](const util::TraceEvent& e) { return e.a == 2 && e.c == 1; });
  EXPECT_GE(receives.size(), 2u) << "valid cross-core sampling reads";
}

TEST(Multicore, SpatialIsolationHoldsAcrossCores) {
  // Partitions on different cores write the same virtual address in the
  // same ticks; each must see only its own frame.
  auto config = dual_core_config();
  config.partitions[0].processes[0].attrs.script =
      ScriptBuilder{}
          .memory_access(pmk::kAppDataBase, /*write=*/true)
          .compute(5)
          .periodic_wait()
          .build();
  config.partitions[2].processes[0].attrs.script =
      ScriptBuilder{}
          .memory_access(pmk::kAppDataBase, /*write=*/true)
          .compute(5)
          .periodic_wait()
          .build();
  system::Module module(std::move(config));
  module.run(500);
  EXPECT_EQ(module.trace().count(util::EventKind::kSpatialViolation), 0u);
}

}  // namespace
}  // namespace air
