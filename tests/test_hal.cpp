// Unit tests for the simulated machine: physical memory, frame allocator,
// three-level MMU (contexts, per-level rights, TLB), checked accesses.
#include <gtest/gtest.h>

#include "hal/machine.hpp"

namespace air::hal {
namespace {

TEST(PhysicalMemory, ReadWriteRoundTrip) {
  PhysicalMemory mem(4096);
  mem.write_u32(100, 0xdeadbeef);
  EXPECT_EQ(mem.read_u32(100), 0xdeadbeefu);
  mem.write_u8(0, 0x7f);
  EXPECT_EQ(mem.read_u8(0), 0x7f);
}

TEST(FrameAllocator, AlignsAndAdvances) {
  FrameAllocator alloc(0, 1 << 20);
  const PhysAddr a = alloc.allocate(100, 4096);
  const PhysAddr b = alloc.allocate(100, 4096);
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_GE(b, a + 100);
}

class MmuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_a_ = mmu_.create_context();
    ctx_b_ = mmu_.create_context();
    LevelRights app_rw = LevelRights::uniform(AccessRights::rw());
    mmu_.map(ctx_a_, 0x0040'0000, 0x1000, 2 * Mmu::kPageSize, app_rw);
    // Context B maps the same virtual page onto different frames.
    mmu_.map(ctx_b_, 0x0040'0000, 0x8000, Mmu::kPageSize, app_rw);
  }

  Mmu mmu_;
  MmuContextId ctx_a_{-1};
  MmuContextId ctx_b_{-1};
};

TEST_F(MmuTest, TranslatesWithinMappedRange) {
  mmu_.set_active_context(ctx_a_);
  const auto r = mmu_.translate(0x0040'0123, AccessType::kRead,
                                ExecLevel::kApplication);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.paddr, 0x1123u);
  // Second page of the range.
  const auto r2 = mmu_.translate(0x0040'1004, AccessType::kWrite,
                                 ExecLevel::kApplication);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2.paddr, 0x2004u);
}

TEST_F(MmuTest, ContextsIsolateAddressSpaces) {
  mmu_.set_active_context(ctx_a_);
  const auto in_a = mmu_.translate(0x0040'0000, AccessType::kRead,
                                   ExecLevel::kApplication);
  mmu_.set_active_context(ctx_b_);
  const auto in_b = mmu_.translate(0x0040'0000, AccessType::kRead,
                                   ExecLevel::kApplication);
  ASSERT_TRUE(in_a.ok());
  ASSERT_TRUE(in_b.ok());
  EXPECT_NE(*in_a.paddr, *in_b.paddr)
      << "same virtual page must map to different frames per partition";
}

TEST_F(MmuTest, UnmappedAccessFaults) {
  mmu_.set_active_context(ctx_a_);
  const auto r = mmu_.translate(0x2000'0000, AccessType::kRead,
                                ExecLevel::kApplication);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault.kind, MmuFault::Kind::kUnmapped);
}

TEST_F(MmuTest, PerLevelRightsAreEnforced) {
  // A PMK-only page: invisible to application and POS levels.
  LevelRights pmk_only;
  pmk_only.at(ExecLevel::kPmk) = AccessRights::rw();
  mmu_.map(ctx_a_, 0x0180'0000, 0x6000, Mmu::kPageSize, pmk_only);
  mmu_.set_active_context(ctx_a_);

  EXPECT_FALSE(mmu_.translate(0x0180'0000, AccessType::kRead,
                              ExecLevel::kApplication)
                   .ok());
  EXPECT_FALSE(
      mmu_.translate(0x0180'0000, AccessType::kRead, ExecLevel::kPos).ok());
  EXPECT_TRUE(
      mmu_.translate(0x0180'0000, AccessType::kRead, ExecLevel::kPmk).ok());
}

TEST_F(MmuTest, WriteToReadOnlyPageFaults) {
  LevelRights ro = LevelRights::uniform(AccessRights::ro());
  mmu_.map(ctx_a_, 0x0050'0000, 0x7000, Mmu::kPageSize, ro);
  mmu_.set_active_context(ctx_a_);
  EXPECT_TRUE(mmu_.translate(0x0050'0000, AccessType::kRead,
                             ExecLevel::kApplication)
                  .ok());
  const auto w = mmu_.translate(0x0050'0000, AccessType::kWrite,
                                ExecLevel::kApplication);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.fault.kind, MmuFault::Kind::kProtection);
}

TEST_F(MmuTest, TlbCachesTranslations) {
  mmu_.set_active_context(ctx_a_);
  mmu_.reset_stats();
  (void)mmu_.translate(0x0040'0000, AccessType::kRead,
                       ExecLevel::kApplication);
  EXPECT_EQ(mmu_.stats().tlb_misses, 1u);
  for (int i = 0; i < 10; ++i) {
    (void)mmu_.translate(0x0040'0000 + i, AccessType::kRead,
                         ExecLevel::kApplication);
  }
  EXPECT_EQ(mmu_.stats().tlb_misses, 1u) << "same page must hit the TLB";
  EXPECT_EQ(mmu_.stats().tlb_hits, 10u);
}

TEST_F(MmuTest, ContextSwitchFlushesTlb) {
  mmu_.set_active_context(ctx_a_);
  mmu_.reset_stats();
  (void)mmu_.translate(0x0040'0000, AccessType::kRead,
                       ExecLevel::kApplication);
  mmu_.set_active_context(ctx_b_);
  mmu_.set_active_context(ctx_a_);
  (void)mmu_.translate(0x0040'0000, AccessType::kRead,
                       ExecLevel::kApplication);
  EXPECT_EQ(mmu_.stats().tlb_misses, 2u);
}

TEST_F(MmuTest, UnmapRevokesAccess) {
  mmu_.set_active_context(ctx_a_);
  ASSERT_TRUE(mmu_.translate(0x0040'0000, AccessType::kRead,
                             ExecLevel::kApplication)
                  .ok());
  mmu_.unmap(ctx_a_, 0x0040'0000, Mmu::kPageSize);
  EXPECT_FALSE(mmu_.translate(0x0040'0000, AccessType::kRead,
                              ExecLevel::kApplication)
                   .ok());
  // The second page of the original mapping survives.
  EXPECT_TRUE(mmu_.translate(0x0040'1000, AccessType::kRead,
                             ExecLevel::kApplication)
                  .ok());
}

TEST_F(MmuTest, RemapInvalidatesCachedTranslation) {
  mmu_.set_active_context(ctx_a_);
  const auto before = mmu_.translate(0x0040'0123, AccessType::kRead,
                                     ExecLevel::kApplication);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before.paddr, 0x1123u);
  // Remap the page onto a different frame: the TLB entry caching the old
  // frame must not survive, or the partition would keep touching freed
  // memory.
  mmu_.map(ctx_a_, 0x0040'0000, 0x9000, Mmu::kPageSize,
           LevelRights::uniform(AccessRights::rw()));
  const auto after = mmu_.translate(0x0040'0123, AccessType::kRead,
                                    ExecLevel::kApplication);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after.paddr, 0x9123u) << "stale TLB entry served after remap";
}

TEST_F(MmuTest, RightsDowngradeTakesEffectImmediately) {
  mmu_.set_active_context(ctx_a_);
  ASSERT_TRUE(mmu_.translate(0x0040'0000, AccessType::kWrite,
                             ExecLevel::kApplication)
                  .ok());
  // Downgrade the live page to read-only; the cached rw translation must
  // not keep authorising writes.
  mmu_.map(ctx_a_, 0x0040'0000, 0x1000, Mmu::kPageSize,
           LevelRights::uniform(AccessRights::ro()));
  const auto w = mmu_.translate(0x0040'0000, AccessType::kWrite,
                                ExecLevel::kApplication);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.fault.kind, MmuFault::Kind::kProtection);
  EXPECT_TRUE(mmu_.translate(0x0040'0000, AccessType::kRead,
                             ExecLevel::kApplication)
                  .ok());
}

TEST(Machine, CheckedAccessCrossesPages) {
  Machine machine(1 << 20);
  const MmuContextId ctx = machine.mmu().create_context();
  const PhysAddr frames =
      machine.allocator().allocate(2 * Mmu::kPageSize, Mmu::kPageSize);
  machine.mmu().map(ctx, 0x0040'0000, frames, 2 * Mmu::kPageSize,
                    LevelRights::uniform(AccessRights::rw()));
  machine.mmu().set_active_context(ctx);

  // A write spanning the page boundary.
  std::array<std::byte, 8> data{};
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i + 1);
  }
  const VirtAddr at = 0x0040'0000 + Mmu::kPageSize - 4;
  ASSERT_TRUE(
      machine.checked_write(at, data, ExecLevel::kApplication).ok());
  std::array<std::byte, 8> back{};
  ASSERT_TRUE(machine.checked_read(at, back, ExecLevel::kApplication).ok());
  EXPECT_EQ(back, data);
}

TEST(Machine, CheckedAccessFaultsWithoutTouchingMemory) {
  Machine machine(1 << 20);
  const MmuContextId ctx = machine.mmu().create_context();
  machine.mmu().set_active_context(ctx);
  std::array<std::byte, 4> buf{};
  const auto r = machine.checked_read(0x0040'0000, buf,
                                      ExecLevel::kApplication);
  EXPECT_FALSE(r.ok());
}

TEST(Machine, TickRaisesTimerInterrupt) {
  Machine machine(1 << 16);
  EXPECT_FALSE(machine.interrupts().take(IrqLine::kTimer));
  machine.tick();
  EXPECT_EQ(machine.clock().now(), 1);
  EXPECT_TRUE(machine.interrupts().take(IrqLine::kTimer));
  EXPECT_FALSE(machine.interrupts().take(IrqLine::kTimer))
      << "interrupt is consumed by take()";
}

TEST(InterruptController, MaskedLineLatchesUntilReenabled) {
  InterruptController irq;
  irq.enable(IrqLine::kBus, false);
  irq.raise(IrqLine::kBus);
  EXPECT_FALSE(irq.take(IrqLine::kBus)) << "masked line delivers nothing";
  irq.enable(IrqLine::kBus, true);
  EXPECT_TRUE(irq.take(IrqLine::kBus))
      << "pending state latched across the masked interval";
  EXPECT_FALSE(irq.take(IrqLine::kBus));
}

TEST(InterruptController, ReRaiseWhileMaskedCollapsesToOneDelivery) {
  InterruptController irq;
  irq.enable(IrqLine::kBus, false);
  irq.raise(IrqLine::kBus);
  irq.raise(IrqLine::kBus);
  irq.raise(IrqLine::kBus);
  irq.enable(IrqLine::kBus, true);
  EXPECT_TRUE(irq.take(IrqLine::kBus));
  EXPECT_FALSE(irq.take(IrqLine::kBus))
      << "a pending line is a level, not a counter";
}

TEST(InterruptController, MaskingOneLineDoesNotAffectOthers) {
  Machine machine(1 << 16);
  auto& irq = machine.interrupts();
  irq.enable(IrqLine::kBus, false);
  machine.tick();  // raises the timer line
  irq.raise(IrqLine::kBus);
  EXPECT_TRUE(irq.take(IrqLine::kTimer))
      << "timer delivery is independent of the bus mask";
  EXPECT_FALSE(irq.take(IrqLine::kBus));
  irq.enable(IrqLine::kBus, true);
  EXPECT_TRUE(irq.take(IrqLine::kBus));
}

}  // namespace
}  // namespace air::hal
