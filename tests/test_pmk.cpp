// PMK unit tests: schedule compilation, the Partition Scheduler
// (Algorithm 1) and the Partition Dispatcher (Algorithm 2) in isolation.
#include <gtest/gtest.h>

#include "pmk/partition_dispatcher.hpp"
#include "pmk/partition_scheduler.hpp"
#include "pmk/schedule.hpp"

namespace air::pmk {
namespace {

model::Schedule two_window_schedule(ScheduleId id = ScheduleId{0}) {
  model::Schedule s;
  s.id = id;
  s.mtf = 100;
  s.requirements = {{PartitionId{0}, 100, 40}, {PartitionId{1}, 100, 30}};
  s.windows = {{PartitionId{0}, 0, 40}, {PartitionId{1}, 50, 30}};
  return s;
}

// ---------- compile_schedule ----------

TEST(CompileSchedule, InsertsIdlePointsForGaps) {
  const RuntimeSchedule rt = compile_schedule(two_window_schedule());
  // Points: P0@0, idle@40, P1@50, idle@80.
  ASSERT_EQ(rt.table.size(), 4u);
  EXPECT_EQ(rt.table[0].tick, 0);
  EXPECT_EQ(rt.table[0].partition, PartitionId{0});
  EXPECT_EQ(rt.table[1].tick, 40);
  EXPECT_FALSE(rt.table[1].partition.valid());
  EXPECT_EQ(rt.table[2].tick, 50);
  EXPECT_EQ(rt.table[2].partition, PartitionId{1});
  EXPECT_EQ(rt.table[3].tick, 80);
  EXPECT_FALSE(rt.table[3].partition.valid());
}

TEST(CompileSchedule, LeadingGapGetsAnIdlePointAtZero) {
  model::Schedule s = two_window_schedule();
  s.windows[0].offset = 10;
  s.windows[0].duration = 30;
  const RuntimeSchedule rt = compile_schedule(s);
  EXPECT_EQ(rt.table.front().tick, 0);
  EXPECT_FALSE(rt.table.front().partition.valid());
}

TEST(CompileSchedule, BackToBackWindowsHaveNoIdlePoint) {
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 100;
  s.requirements = {{PartitionId{0}, 100, 50}, {PartitionId{1}, 100, 50}};
  s.windows = {{PartitionId{0}, 0, 50}, {PartitionId{1}, 50, 50}};
  const RuntimeSchedule rt = compile_schedule(s);
  ASSERT_EQ(rt.table.size(), 2u);
}

// ---------- Algorithm 1 ----------

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scheduler_.add_schedule(compile_schedule(two_window_schedule()));
    model::Schedule alt = two_window_schedule(ScheduleId{1});
    alt.windows = {{PartitionId{1}, 0, 30}, {PartitionId{0}, 30, 40}};
    scheduler_.add_schedule(compile_schedule(alt));
    scheduler_.set_initial_schedule(ScheduleId{0});
  }

  PartitionScheduler scheduler_;
};

TEST_F(SchedulerTest, FollowsThePreemptionPointTable) {
  std::vector<std::pair<Ticks, std::int32_t>> changes;
  PartitionId last = PartitionId{-2};
  for (Ticks t = 0; t < 200; ++t) {
    scheduler_.tick();
    if (scheduler_.heir_partition() != last) {
      last = scheduler_.heir_partition();
      changes.emplace_back(t, last.value());
    }
  }
  // P0@0, idle@40, P1@50, idle@80, then the same pattern next MTF.
  ASSERT_GE(changes.size(), 8u);
  EXPECT_EQ(changes[0], (std::pair<Ticks, std::int32_t>{0, 0}));
  EXPECT_EQ(changes[1], (std::pair<Ticks, std::int32_t>{40, -1}));
  EXPECT_EQ(changes[2], (std::pair<Ticks, std::int32_t>{50, 1}));
  EXPECT_EQ(changes[3], (std::pair<Ticks, std::int32_t>{80, -1}));
  EXPECT_EQ(changes[4], (std::pair<Ticks, std::int32_t>{100, 0}));
}

TEST_F(SchedulerTest, BestCaseTickHitsNoPreemptionPoint) {
  // Sect. 4.3: the most frequent case is a tick with no point reached.
  scheduler_.tick();  // t=0, point hit
  EXPECT_FALSE(scheduler_.tick());  // t=1
  EXPECT_FALSE(scheduler_.tick());  // t=2
  EXPECT_EQ(scheduler_.preemption_points_hit(), 1u);
  EXPECT_EQ(scheduler_.tick_count(), 3u);
}

TEST_F(SchedulerTest, SwitchRequestIsDeferredToTheMtfBoundary) {
  // Run into the MTF before requesting (a request landing exactly on a
  // boundary takes effect immediately -- the boundary *is* the switch
  // point).
  for (Ticks t = 0; t < 10; ++t) scheduler_.tick();
  ASSERT_TRUE(scheduler_.request_schedule(ScheduleId{1}));
  const auto pending = scheduler_.status();
  EXPECT_EQ(pending.current, ScheduleId{0});
  EXPECT_EQ(pending.next, ScheduleId{1});
  EXPECT_EQ(pending.last_switch_time, 0) << "no switch occurred yet";

  // The rest of the first MTF still follows schedule 0.
  for (Ticks t = 10; t < 100; ++t) {
    scheduler_.tick();
    if (t == 50) EXPECT_EQ(scheduler_.heir_partition(), PartitionId{1});
  }
  // t=100: MTF boundary, schedule 1 becomes effective; its first window
  // belongs to partition 1.
  scheduler_.tick();
  EXPECT_EQ(scheduler_.heir_partition(), PartitionId{1});
  const auto status = scheduler_.status();
  EXPECT_EQ(status.current, ScheduleId{1});
  EXPECT_EQ(status.last_switch_time, 100);
}

TEST_F(SchedulerTest, LastRequestBeforeBoundaryWins) {
  // Sect. 4.2: SET_MODULE_SCHEDULE only stores the identifier; repeated
  // calls overwrite it and the boundary honours the latest.
  ASSERT_TRUE(scheduler_.request_schedule(ScheduleId{1}));
  ASSERT_TRUE(scheduler_.request_schedule(ScheduleId{0}));
  for (Ticks t = 0; t <= 150; ++t) scheduler_.tick();
  EXPECT_EQ(scheduler_.status().current, ScheduleId{0});
  EXPECT_EQ(scheduler_.status().last_switch_time, 0) << "no actual switch";
}

TEST_F(SchedulerTest, RequestForUnknownScheduleFails) {
  EXPECT_FALSE(scheduler_.request_schedule(ScheduleId{7}));
}

TEST_F(SchedulerTest, SwitchCallbackFires) {
  std::vector<std::pair<std::int32_t, std::int32_t>> switches;
  scheduler_.on_schedule_switch = [&](ScheduleId next, ScheduleId old) {
    switches.emplace_back(next.value(), old.value());
  };
  scheduler_.request_schedule(ScheduleId{1});
  for (Ticks t = 0; t <= 100; ++t) scheduler_.tick();
  ASSERT_EQ(switches.size(), 1u);
  EXPECT_EQ(switches[0], (std::pair<std::int32_t, std::int32_t>{1, 0}));
}

TEST_F(SchedulerTest, SchedulesWithDifferentMtfs) {
  PartitionScheduler scheduler;
  model::Schedule small;
  small.id = ScheduleId{0};
  small.mtf = 50;
  small.requirements = {{PartitionId{0}, 50, 50}};
  small.windows = {{PartitionId{0}, 0, 50}};
  model::Schedule large;
  large.id = ScheduleId{1};
  large.mtf = 80;
  large.requirements = {{PartitionId{1}, 80, 80}};
  large.windows = {{PartitionId{1}, 0, 80}};
  scheduler.add_schedule(compile_schedule(small));
  scheduler.add_schedule(compile_schedule(large));
  scheduler.set_initial_schedule(ScheduleId{0});

  scheduler.tick();  // t=0: enter the first MTF before requesting
  scheduler.request_schedule(ScheduleId{1});
  for (Ticks t = 1; t < 50; ++t) scheduler.tick();
  EXPECT_EQ(scheduler.status().current, ScheduleId{0});
  scheduler.tick();  // t=50: boundary of the 50-tick MTF
  EXPECT_EQ(scheduler.status().current, ScheduleId{1});
  EXPECT_EQ(scheduler.heir_partition(), PartitionId{1});
  // The new MTF is 80 ticks long: next boundary at 130.
  scheduler.request_schedule(ScheduleId{0});
  for (Ticks t = 51; t < 130; ++t) {
    scheduler.tick();
    ASSERT_EQ(scheduler.status().current, ScheduleId{1}) << "t=" << t;
  }
  scheduler.tick();
  EXPECT_EQ(scheduler.status().current, ScheduleId{0});
  EXPECT_EQ(scheduler.status().last_switch_time, 130);
}

// ---------- Algorithm 2 ----------

class DispatcherTest : public ::testing::Test {
 protected:
  DispatcherTest() {
    for (int i = 0; i < 2; ++i) {
      PartitionControlBlock pcb;
      pcb.id = PartitionId{i};
      pcb.name = "P" + std::to_string(i);
      pcb.last_tick = -1;
      pcbs_.push_back(std::move(pcb));
    }
    dispatcher_ = std::make_unique<PartitionDispatcher>(pcbs_, nullptr);
  }

  std::vector<PartitionControlBlock> pcbs_;
  std::unique_ptr<PartitionDispatcher> dispatcher_;
};

TEST_F(DispatcherTest, SamePartitionElapsesOneTick) {
  auto first = dispatcher_->dispatch(PartitionId{0}, 0);
  EXPECT_TRUE(first.context_switched);
  EXPECT_EQ(first.elapsed_ticks, 1) << "first dispatch: ticks since -1";
  auto second = dispatcher_->dispatch(PartitionId{0}, 1);
  EXPECT_FALSE(second.context_switched);
  EXPECT_EQ(second.elapsed_ticks, 1);
}

TEST_F(DispatcherTest, RedispatchAnnouncesTheWholeGap) {
  // P0 runs ticks 0..4, P1 runs 5..9, P0 resumes at 10: P0's announce must
  // cover the 5 ticks it missed plus its own (Algorithm 2 line 6).
  for (Ticks t = 0; t < 5; ++t) dispatcher_->dispatch(PartitionId{0}, t);
  for (Ticks t = 5; t < 10; ++t) dispatcher_->dispatch(PartitionId{1}, t);
  const auto result = dispatcher_->dispatch(PartitionId{0}, 10);
  EXPECT_TRUE(result.context_switched);
  // lastTick was stamped 4 when P0 was switched out; 10 - 4 = 6.
  EXPECT_EQ(result.elapsed_ticks, 6);
}

TEST_F(DispatcherTest, IdleSlotHasNoActivePartition) {
  dispatcher_->dispatch(PartitionId{0}, 0);
  const auto idle = dispatcher_->dispatch(PartitionId::invalid(), 1);
  EXPECT_FALSE(idle.active.valid());
  EXPECT_EQ(idle.elapsed_ticks, 0);
  // Coming back from idle still accounts the gap: P0 last saw tick 0, so
  // ticks 1..5 (five of them) are announced.
  const auto back = dispatcher_->dispatch(PartitionId{0}, 5);
  EXPECT_EQ(back.elapsed_ticks, 5);
}

TEST_F(DispatcherTest, ContextSaveRestoreCountsTrackSwitches) {
  dispatcher_->dispatch(PartitionId{0}, 0);
  dispatcher_->dispatch(PartitionId{1}, 1);
  dispatcher_->dispatch(PartitionId{0}, 2);
  EXPECT_EQ(pcbs_[0].context_restores, 2u);
  EXPECT_EQ(pcbs_[0].context_saves, 1u);
  EXPECT_EQ(pcbs_[1].context_saves, 1u);
  EXPECT_EQ(dispatcher_->context_switches(), 3u);
  EXPECT_EQ(dispatcher_->dispatch_count(), 3u);
}

TEST_F(DispatcherTest, PendingChangeActionFiresOnFirstDispatchOnly) {
  std::vector<std::int32_t> fired;
  dispatcher_->on_pending_schedule_change_action = [&](PartitionId id) {
    fired.push_back(id.value());
    pcbs_[static_cast<std::size_t>(id.value())].schedule_change_pending =
        false;
  };
  pcbs_[1].schedule_change_pending = true;
  pcbs_[1].pending_action = ScheduleChangeAction::kWarmRestart;

  dispatcher_->dispatch(PartitionId{0}, 0);
  EXPECT_TRUE(fired.empty());
  dispatcher_->dispatch(PartitionId{1}, 1);  // P1's first dispatch
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1);
  dispatcher_->dispatch(PartitionId{0}, 2);
  dispatcher_->dispatch(PartitionId{1}, 3);
  EXPECT_EQ(fired.size(), 1u) << "action must fire exactly once";
}

}  // namespace
}  // namespace air::pmk
