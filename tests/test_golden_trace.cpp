// Golden-trace regression: the Sect. 6 / Fig. 8 reference mission flown for
// ten major time frames must produce a byte-identical event trace on every
// execution driver (per-tick, time-warped, lockstep World, parallel World),
// and that trace must match the digest snapshotted in tests/golden/.
//
// Regenerate the snapshot after an *intentional* behaviour change with:
//   AIR_UPDATE_GOLDEN=1 ./air_tests --gtest_filter='GoldenTrace.*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "config/fig8.hpp"
#include "fi/fault_plan.hpp"
#include "system/module.hpp"
#include "system/world.hpp"

namespace air {
namespace {

using scenarios::kFig8Mtf;

constexpr Ticks kMissionMtfs = 10;
constexpr const char* kGoldenPath =
    AIR_SOURCE_DIR "/tests/golden/fig8_mission_trace.digest";

// The reference mission (same shape as tools/air-record): faulty process on
// AOCS, 500 ticks under chi_1, switch to chi_2, fly out the rest.
template <typename Runner>
void fly(system::Module& prototype, Runner&& run) {
  prototype.start_process_by_name(prototype.partition_id("AOCS"),
                                  scenarios::kFaultyProcessName);
  run(500);
  (void)prototype.apex(prototype.partition_id("AOCS"))
      .set_module_schedule(ScheduleId{1});
  run(kMissionMtfs * kFig8Mtf - 500);
}

std::uint64_t module_mission_digest(bool warp) {
  system::Module module(scenarios::fig8_config());
  module.set_time_warp(warp);
  fly(module, [&](Ticks t) { module.run(t); });
  return fi::digest64(module.trace().to_text());
}

std::uint64_t world_mission_digest(bool lockstep, std::size_t workers) {
  system::ModuleConfig fig8 = scenarios::fig8_config();
  fig8.id = ModuleId{0};
  for (ipc::ChannelConfig& channel : fig8.channels) {
    if (channel.kind == ipc::ChannelKind::kQueuing) {
      channel.remote_destinations.push_back(
          {ModuleId{1}, PartitionId{0}, "SCI_IN"});
    }
  }
  system::World world(
      {.slot_length = 10, .frames_per_slot = 2, .propagation_delay = 2});
  system::Module& prototype = world.add_module(std::move(fig8));

  system::ModuleConfig ground_config;
  ground_config.id = ModuleId{1};
  ground_config.name = "ground";
  system::PartitionConfig ground_partition;
  ground_partition.name = "GROUND";
  ground_partition.queuing_ports.push_back(
      {"SCI_IN", ipc::PortDirection::kDestination, 64, 16});
  system::ProcessConfig archiver;
  archiver.attrs.name = "gs_archiver";
  archiver.attrs.priority = 10;
  archiver.attrs.script = pos::ScriptBuilder{}
                              .queuing_receive(0)
                              .log("science frame archived")
                              .build();
  ground_partition.processes.push_back(std::move(archiver));
  ground_config.partitions.push_back(std::move(ground_partition));
  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.mtf = kFig8Mtf;
  schedule.requirements = {{PartitionId{0}, kFig8Mtf, kFig8Mtf}};
  schedule.windows = {{PartitionId{0}, 0, kFig8Mtf}};
  ground_config.schedules = {schedule};
  system::Module& ground = world.add_module(std::move(ground_config));

  world.set_workers(workers);
  fly(prototype, [&](Ticks t) {
    if (lockstep) {
      world.run_lockstep(t);
    } else {
      world.run(t);
    }
  });
  // One digest over both modules' traces: the whole world must replay.
  return fi::digest64(ground.trace().to_text(),
                      fi::digest64(prototype.trace().to_text()));
}

bool load_golden(std::uint64_t& module_digest, std::uint64_t& world_digest) {
  std::ifstream in(kGoldenPath);
  if (!in) return false;
  std::string key;
  std::uint64_t value = 0;
  bool have_module = false;
  bool have_world = false;
  while (in >> key >> std::hex >> value) {
    if (key == "module") {
      module_digest = value;
      have_module = true;
    } else if (key == "world") {
      world_digest = value;
      have_world = true;
    }
  }
  return have_module && have_world;
}

void store_golden(std::uint64_t module_digest, std::uint64_t world_digest) {
  std::ofstream out(kGoldenPath, std::ios::binary);
  out << "module " << std::hex << module_digest << "\n"
      << "world " << std::hex << world_digest << "\n";
}

TEST(GoldenTrace, Fig8MissionReplaysIdenticallyOnEveryDriver) {
  const std::uint64_t per_tick = module_mission_digest(/*warp=*/false);
  const std::uint64_t warped = module_mission_digest(/*warp=*/true);
  EXPECT_EQ(per_tick, warped)
      << "time-warp fast-forward altered the mission trace";

  const std::uint64_t lockstep = world_mission_digest(/*lockstep=*/true, 1);
  const std::uint64_t parallel = world_mission_digest(/*lockstep=*/false, 2);
  EXPECT_EQ(lockstep, parallel)
      << "parallel World execution altered the mission trace";

  if (std::getenv("AIR_UPDATE_GOLDEN") != nullptr) {
    store_golden(per_tick, lockstep);
    GTEST_SKIP() << "golden digests regenerated at " << kGoldenPath;
  }

  std::uint64_t golden_module = 0;
  std::uint64_t golden_world = 0;
  ASSERT_TRUE(load_golden(golden_module, golden_world))
      << "missing " << kGoldenPath
      << " -- regenerate with AIR_UPDATE_GOLDEN=1";
  EXPECT_EQ(per_tick, golden_module)
      << "module mission trace diverged from the golden snapshot; if the "
         "change is intentional, regenerate with AIR_UPDATE_GOLDEN=1";
  EXPECT_EQ(lockstep, golden_world)
      << "world mission trace diverged from the golden snapshot; if the "
         "change is intentional, regenerate with AIR_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace air
