// ARINC 653 queuing discipline: FIFO vs PRIORITY ordering of processes
// blocked on buffers, semaphores and queuing ports.
#include <gtest/gtest.h>

#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

/// Two waiters block on the object (low priority first, then high), then a
/// third process makes one unit available; who is woken first depends on
/// the discipline.
system::ModuleConfig discipline_config(ipc::QueuingDiscipline discipline) {
  system::ModuleConfig config;
  system::PartitionConfig p;
  p.name = "MAIN";
  p.semaphores.push_back({"sem", 0, 4, discipline});

  system::ProcessConfig low;
  low.attrs.name = "low";
  low.attrs.priority = 50;
  low.attrs.script =
      ScriptBuilder{}.sem_wait(0).log("low woke").stop_self().build();
  p.processes.push_back(std::move(low));

  system::ProcessConfig high;
  high.attrs.name = "high";
  high.attrs.priority = 10;
  // Delay so "low" reaches the queue first.
  high.attrs.script = ScriptBuilder{}
                          .timed_wait(2)
                          .sem_wait(0)
                          .log("high woke")
                          .stop_self()
                          .build();
  p.processes.push_back(std::move(high));

  system::ProcessConfig signaller;
  signaller.attrs.name = "signaller";
  signaller.attrs.priority = 60;
  signaller.attrs.script = ScriptBuilder{}
                               .timed_wait(5)
                               .sem_signal(0)
                               .timed_wait(5)
                               .sem_signal(0)
                               .stop_self()
                               .build();
  p.processes.push_back(std::move(signaller));
  config.partitions.push_back(std::move(p));

  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  return config;
}

TEST(QueuingDiscipline, FifoWakesTheOldestWaiter) {
  system::Module module(discipline_config(ipc::QueuingDiscipline::kFifo));
  module.run(20);
  const auto& console = module.console(PartitionId{0});
  ASSERT_EQ(console.size(), 2u);
  EXPECT_EQ(console[0], "low woke") << "low has been waiting longest";
  EXPECT_EQ(console[1], "high woke");
}

TEST(QueuingDiscipline, PriorityWakesTheHighestPriorityWaiter) {
  system::Module module(
      discipline_config(ipc::QueuingDiscipline::kPriority));
  module.run(20);
  const auto& console = module.console(PartitionId{0});
  ASSERT_EQ(console.size(), 2u);
  EXPECT_EQ(console[0], "high woke")
      << "priority discipline jumps the queue";
  EXPECT_EQ(console[1], "low woke");
}

TEST(QueuingDiscipline, PriorityIsFifoAmongEquals) {
  system::ModuleConfig config;
  system::PartitionConfig p;
  p.name = "MAIN";
  p.semaphores.push_back({"sem", 0, 4, ipc::QueuingDiscipline::kPriority});
  for (int i = 0; i < 3; ++i) {
    system::ProcessConfig w;
    w.attrs.name = "w" + std::to_string(i);
    w.attrs.priority = 20;  // all equal
    w.attrs.script = ScriptBuilder{}
                         .timed_wait(i)  // queue in order w0, w1, w2
                         .sem_wait(0)
                         .log("woke " + std::to_string(i))
                         .stop_self()
                         .build();
    p.processes.push_back(std::move(w));
  }
  system::ProcessConfig signaller;
  signaller.attrs.name = "signaller";
  signaller.attrs.priority = 60;
  signaller.attrs.script = ScriptBuilder{}
                               .timed_wait(5)
                               .sem_signal(0)
                               .timed_wait(2)
                               .sem_signal(0)
                               .timed_wait(2)
                               .sem_signal(0)
                               .stop_self()
                               .build();
  p.processes.push_back(std::move(signaller));
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};

  system::Module module(std::move(config));
  module.run(30);
  const auto& console = module.console(PartitionId{0});
  ASSERT_EQ(console.size(), 3u);
  EXPECT_EQ(console[0], "woke 0");
  EXPECT_EQ(console[1], "woke 1");
  EXPECT_EQ(console[2], "woke 2");
}

TEST(QueuingDiscipline, LoaderParsesDiscipline) {
  // Covered structurally: see test_config_loader; here just the field.
  system::ModuleConfig config =
      discipline_config(ipc::QueuingDiscipline::kPriority);
  EXPECT_EQ(config.partitions[0].semaphores[0].discipline,
            ipc::QueuingDiscipline::kPriority);
}

}  // namespace
}  // namespace air
