// E13: integration of a generic non-real-time POS (Sect. 2.5).
//
// A Linux-like partition coexists with RTOS partitions. Its attempts to
// disable the system clock interrupt are paravirtualised away -- trapped,
// counted, and without any effect on the module's temporal partitioning.
#include <gtest/gtest.h>

#include "pos/generic_kernel.hpp"
#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

system::ModuleConfig mixed_pos_config() {
  system::ModuleConfig config;
  system::PartitionConfig rt;
  rt.name = "RT";
  rt.pos_kind = "rt";
  system::ProcessConfig control;
  control.attrs.name = "control";
  control.attrs.period = 50;
  control.attrs.time_capacity = 50;
  control.attrs.priority = 10;
  control.attrs.script =
      ScriptBuilder{}.compute(10).log("cycle").periodic_wait().build();
  rt.processes.push_back(std::move(control));

  system::PartitionConfig linux_like;
  linux_like.name = "LINUX";
  linux_like.pos_kind = "generic";
  for (int i = 0; i < 2; ++i) {
    system::ProcessConfig task;
    task.attrs.name = "task" + std::to_string(i);
    task.attrs.priority = 100;
    task.attrs.script = ScriptBuilder{}
                            .compute(7)
                            .try_disable_clock_irq()
                            .build();
    linux_like.processes.push_back(std::move(task));
  }

  config.partitions.push_back(std::move(rt));
  config.partitions.push_back(std::move(linux_like));

  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 50;
  s.requirements = {{PartitionId{0}, 50, 20}, {PartitionId{1}, 50, 30}};
  s.windows = {{PartitionId{0}, 0, 20}, {PartitionId{1}, 20, 30}};
  config.schedules = {s};
  return config;
}

TEST(GenericPos, ClockDisableAttemptsAreTrappedNotObeyed) {
  system::Module module(mixed_pos_config());
  const PartitionId linux_id = module.partition_id("LINUX");
  module.run(500);

  const auto traps =
      module.trace().filtered(util::EventKind::kClockParavirtTrap);
  ASSERT_FALSE(traps.empty());
  for (const auto& e : traps) EXPECT_EQ(e.a, linux_id.value());

  auto* kernel =
      dynamic_cast<pos::GenericKernel*>(&module.kernel(linux_id));
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->paravirt_traps(), traps.size());
}

TEST(GenericPos, RtPartitionTimelinessIsUnaffected) {
  system::Module module(mixed_pos_config());
  const PartitionId rt = module.partition_id("RT");
  module.run(500);
  // The RT control loop ran exactly once per 50-tick period, no misses.
  EXPECT_EQ(module.console(rt).size(), 10u);
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u);
}

TEST(GenericPos, RoundRobinSharesTheWindowAmongTasks) {
  system::Module module(mixed_pos_config());
  const PartitionId linux_id = module.partition_id("LINUX");
  module.run(200);
  // Both tasks make progress despite identical busy loops (the RT kernel
  // would starve the second one at equal priority only after blocking; the
  // generic kernel time-slices every tick).
  auto* kernel = &module.kernel(linux_id);
  ProcessId t0 = kernel->find_process("task0");
  ProcessId t1 = kernel->find_process("task1");
  ASSERT_TRUE(t0.valid());
  ASSERT_TRUE(t1.valid());
  // Each compute(7) + trap loop: both PCs must have advanced beyond start.
  const auto* pcb0 = kernel->pcb(t0);
  const auto* pcb1 = kernel->pcb(t1);
  EXPECT_GT(pcb0->op_progress + static_cast<Ticks>(pcb0->pc), 0);
  EXPECT_GT(pcb1->op_progress + static_cast<Ticks>(pcb1->pc), 0);
}

TEST(GenericPos, PartitionBoundariesHoldDespiteBusyGuest) {
  // The generic partition never yields; temporal partitioning must still
  // hand the processor to RT at every window boundary.
  system::Module module(mixed_pos_config());
  for (Ticks t = 0; t < 200; ++t) {
    module.tick_once();
    const auto active = module.dispatcher().active_partition();
    const Ticks offset = t % 50;
    if (offset < 20) {
      ASSERT_EQ(active.value(), 0) << "tick " << t;
    } else {
      ASSERT_EQ(active.value(), 1) << "tick " << t;
    }
  }
}

}  // namespace
}  // namespace air
