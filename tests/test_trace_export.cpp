// Trace exporter tests: Chrome Trace Event format and the flat JSON dump,
// both of which must be parseable and carry the expected content.
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "system/module.hpp"
#include "util/json.hpp"
#include "util/trace_export.hpp"

namespace air {
namespace {

TEST(TraceExport, ChromeTraceOfFig8ParsesAndCoversPartitions) {
  system::Module module(scenarios::fig8_config());
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(3 * scenarios::kFig8Mtf);

  const std::string text = util::to_chrome_trace(module.trace());
  const auto parsed = util::json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error->to_string();

  const auto* trace_events = parsed.value->find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  const auto& events = trace_events->as_array();
  ASSERT_FALSE(events.empty());

  bool windows[4] = {};
  bool miss_seen = false;
  for (const auto& event : events) {
    const std::string name = event.get_string("name", "");
    for (int p = 0; p < 4; ++p) {
      if (name == "P" + std::to_string(p + 1) + " window") {
        windows[p] = true;
        EXPECT_TRUE(event.find("dur")->is_number());
      }
    }
    if (name == "deadline miss") miss_seen = true;
  }
  for (int p = 0; p < 4; ++p) {
    EXPECT_TRUE(windows[p]) << "no window events for partition " << p;
  }
  EXPECT_TRUE(miss_seen);
}

TEST(TraceExport, DurationsMatchTheFig8Windows) {
  scenarios::Fig8Options options;
  options.with_faulty_process = false;
  system::Module module(scenarios::fig8_config(options));
  module.run(scenarios::kFig8Mtf);

  const auto parsed =
      util::json::parse(util::to_chrome_trace(module.trace()));
  ASSERT_TRUE(parsed.ok());
  // The first P1 window must be [0, 200).
  for (const auto& event :
       parsed.value->find("traceEvents")->as_array()) {
    if (event.get_string("name", "") == "P1 window") {
      EXPECT_EQ(event.get_int("ts", -1), 0);
      EXPECT_EQ(event.get_int("dur", -1), 200);
      return;
    }
  }
  FAIL() << "P1 window not found";
}

TEST(TraceExport, ChromeTraceCarriesCounterEvents) {
  system::Module module(scenarios::fig8_config());
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(3 * scenarios::kFig8Mtf);

  const auto parsed =
      util::json::parse(util::to_chrome_trace(module.trace()));
  ASSERT_TRUE(parsed.ok()) << parsed.error->to_string();

  bool utilization_seen = false;
  bool miss_counter_seen = false;
  for (const auto& event :
       parsed.value->find("traceEvents")->as_array()) {
    if (event.get_string("ph", "") != "C") continue;
    const std::string name = event.get_string("name", "");
    if (name == "P1 utilization") {
      utilization_seen = true;
      const auto* args = event.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("percent"), nullptr);
      EXPECT_TRUE(args->find("percent")->is_number());
      EXPECT_GT(event.get_int("ts", -1), 0);
    }
    if (name == "deadline misses") {
      miss_counter_seen = true;
      ASSERT_NE(event.find("args"), nullptr);
      EXPECT_GE(event.find("args")->get_int("count", -1), 1);
    }
  }
  EXPECT_TRUE(utilization_seen) << "no utilization counter series";
  EXPECT_TRUE(miss_counter_seen) << "no cumulative miss counter";
}

TEST(TraceExport, FlatJsonRoundTrips) {
  util::Trace trace;
  trace.record(5, util::EventKind::kDeadlineMiss, 0, 2, 205, "note");
  trace.record(6, util::EventKind::kUser, 1, -1, -1, "hello");
  const auto parsed = util::json::parse(util::to_json(trace));
  ASSERT_TRUE(parsed.ok());
  const auto& events = parsed.value->as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].get_string("kind", ""), "deadline_miss");
  EXPECT_EQ(events[0].get_int("c", 0), 205);
  EXPECT_EQ(events[1].get_string("label", ""), "hello");
}

}  // namespace
}  // namespace air
