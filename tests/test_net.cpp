// E10 remote half: the TDMA bus and multi-module remote channels.
// Applications use the same APEX port services whether the peer partition
// is local or on another module (Sect. 2.1).
#include <gtest/gtest.h>

#include "net/bus.hpp"
#include "system/world.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

TEST(Bus, DeliversAfterPropagationDelay) {
  net::Bus bus({.slot_length = 1, .frames_per_slot = 4,
                .propagation_delay = 3});
  std::vector<std::string> received;
  bus.attach(ModuleId{0}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.attach(ModuleId{1},
             [&](PartitionId, const std::string& port, const ipc::Message& m,
                 ipc::ChannelKind) {
               received.push_back(port + ":" + m.payload.str());
             });

  bus.send(ModuleId{0}, {ModuleId{1}, PartitionId{0}, "IN"},
           {"hello", 0, PartitionId{0}}, ipc::ChannelKind::kQueuing, 0);
  bus.tick(0);  // module 0 owns slot 0 (slot_length 1): transmits
  bus.tick(1);
  bus.tick(2);
  EXPECT_TRUE(received.empty()) << "still propagating";
  bus.tick(3);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "IN:hello");
  EXPECT_EQ(bus.stats().frames_delivered, 1u);
}

TEST(Bus, TdmaSlotOwnershipGatesTransmission) {
  net::Bus bus({.slot_length = 10, .frames_per_slot = 1,
                .propagation_delay = 0});
  int deliveries = 0;
  bus.attach(ModuleId{0}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.attach(ModuleId{1}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++deliveries; });

  // Module 1 wants to send during module 0's slot: it must wait.
  bus.send(ModuleId{1}, {ModuleId{1}, PartitionId{0}, "P"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kQueuing, 0);
  for (Ticks t = 0; t < 10; ++t) bus.tick(t);
  EXPECT_EQ(deliveries, 0) << "not module 1's slot yet";
  bus.tick(10);  // slot of module 1
  bus.tick(11);
  EXPECT_EQ(deliveries, 1);
}

TEST(Bus, BandwidthPerSlotIsBounded) {
  net::Bus bus({.slot_length = 1, .frames_per_slot = 2,
                .propagation_delay = 0});
  int deliveries = 0;
  bus.attach(ModuleId{0}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++deliveries; });
  for (int i = 0; i < 5; ++i) {
    bus.send(ModuleId{0}, {ModuleId{0}, PartitionId{0}, "P"},
             {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  }
  // A frame transmitted during tick N is delivered no earlier than tick
  // N+1, even with zero propagation delay (the delivery sweep runs before
  // transmission within a tick).
  bus.tick(0);
  EXPECT_EQ(deliveries, 0);
  bus.tick(1);
  EXPECT_EQ(deliveries, 2) << "two frames per visit of the slot";
  bus.tick(2);
  EXPECT_EQ(deliveries, 4);
  bus.tick(3);
  EXPECT_EQ(deliveries, 5);
}

TEST(Bus, UnattachedDestinationCountsAsDropped) {
  net::Bus bus({.slot_length = 1, .frames_per_slot = 4,
                .propagation_delay = 0});
  bus.attach(ModuleId{0}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.send(ModuleId{0}, {ModuleId{7}, PartitionId{0}, "P"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.tick(0);
  bus.tick(1);
  EXPECT_EQ(bus.stats().frames_dropped, 1u);
}

// ---------- idle_ticks / next_delivery edge cases ----------
// These two queries bound the world-level time warp and the parallel epoch
// horizon respectively; off-by-one here silently corrupts both drivers.

TEST(Bus, IdleQueriesReportInfinityOnAnIdleBus) {
  net::Bus bus({.slot_length = 5, .frames_per_slot = 2,
                .propagation_delay = 3});
  bus.attach(ModuleId{0}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.attach(ModuleId{1}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  EXPECT_EQ(bus.idle_ticks(0), kInfiniteTime);
  EXPECT_EQ(bus.next_delivery(0), kInfiniteTime);
  EXPECT_EQ(bus.pending_total(), 0u);
  // A tick leaves an idle bus idle.
  bus.tick(17);
  EXPECT_EQ(bus.idle_ticks(18), kInfiniteTime);
  EXPECT_EQ(bus.next_delivery(18), kInfiniteTime);
}

TEST(Bus, QueuedFrameForDetachedDestinationStillBlocksTheWarp) {
  // The destination is never attached: the transmission will end in a drop,
  // but until it happens the bus is NOT idle -- skipping those ticks would
  // skip the drop (and its stats/span bookkeeping).
  net::Bus bus({.slot_length = 1, .frames_per_slot = 4,
                .propagation_delay = 2});
  bus.attach(ModuleId{0}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.send(ModuleId{0}, {ModuleId{7}, PartitionId{0}, "P"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  EXPECT_EQ(bus.idle_ticks(0), 0) << "station has a frame queued";
  EXPECT_EQ(bus.pending_total(), 1u);
  EXPECT_EQ(bus.next_delivery(0), 2) << "transmit at 0, arrive at 0+delay";
  bus.tick(0);  // transmits; now in flight toward a hole
  EXPECT_EQ(bus.pending_total(), 0u);
  EXPECT_EQ(bus.idle_ticks(1), 1) << "delivery (the drop) is due at tick 2";
  bus.tick(1);
  bus.tick(2);
  EXPECT_EQ(bus.stats().frames_dropped, 1u);
  EXPECT_EQ(bus.idle_ticks(3), kInfiniteTime);
}

TEST(Bus, NextDeliveryHonoursTdmaSlotBoundaries) {
  // Two stations, slot_length 5 (cycle 10), delay 3. Station 1 owns
  // [5, 10) of every cycle.
  net::Bus bus({.slot_length = 5, .frames_per_slot = 1,
                .propagation_delay = 3});
  bus.attach(ModuleId{0}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.attach(ModuleId{1}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.send(ModuleId{1}, {ModuleId{0}, PartitionId{0}, "P"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  // Before the slot: transmission waits for the slot's first tick.
  EXPECT_EQ(bus.next_delivery(0), 5 + 3);
  EXPECT_EQ(bus.next_delivery(4), 5 + 3) << "one tick before the boundary";
  // Exactly at the boundary and inside the slot: transmit immediately.
  EXPECT_EQ(bus.next_delivery(5), 5 + 3) << "first tick of the slot";
  EXPECT_EQ(bus.next_delivery(9), 9 + 3) << "last tick of the slot";
  // Exactly at the closing boundary: wait a full cycle for the next slot.
  EXPECT_EQ(bus.next_delivery(10), 15 + 3);
  EXPECT_EQ(bus.next_delivery(14), 15 + 3);
  // The bound is conservative and monotone in now, never in the past.
  EXPECT_GE(bus.next_delivery(100), 100);
}

TEST(Bus, NextDeliveryCoversInFlightAndQueuedFrames) {
  net::Bus bus({.slot_length = 1, .frames_per_slot = 1,
                .propagation_delay = 4});
  int deliveries = 0;
  bus.attach(ModuleId{0}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++deliveries; });
  bus.send(ModuleId{0}, {ModuleId{0}, PartitionId{0}, "a"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.send(ModuleId{0}, {ModuleId{0}, PartitionId{0}, "b"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.tick(0);  // frame a transmits (1 frame/slot); b stays queued
  EXPECT_EQ(bus.pending_total(), 1u);
  // In-flight frame a arrives at 4; queued frame b transmits at 1 and
  // would arrive at 5: the earlier one is the bound.
  EXPECT_EQ(bus.next_delivery(1), 4);
  bus.tick(1);  // b transmits
  bus.tick(2);
  bus.tick(3);
  EXPECT_EQ(bus.next_delivery(4), 4) << "delivery due this very tick";
  bus.tick(4);
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(bus.next_delivery(5), 5) << "b arrives at 5";
  bus.tick(5);
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(bus.next_delivery(6), kInfiniteTime);
}

// ---------- switched topology (DESIGN.md §13) ----------

net::Bus::DeliverFn sink() {
  return [](PartitionId, const std::string&, const ipc::Message&,
            ipc::ChannelKind) {};
}

TEST(BusSwitched, SwitchLocalCyclesRunConcurrently) {
  // 4 stations on 2 switches: stations 0 and 2 both own slot 0 of their
  // switch-local cycle, so both transmit during the same tick -- the
  // aggregate bandwidth a flat cycle cannot offer.
  net::Bus bus({.slot_length = 1, .frames_per_slot = 4,
                .propagation_delay = 1, .stations_per_switch = 2,
                .switch_hop_delay = 2});
  int deliveries = 0;
  bus.attach(ModuleId{0}, sink());
  bus.attach(ModuleId{1}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++deliveries; });
  bus.attach(ModuleId{2}, sink());
  bus.attach(ModuleId{3}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++deliveries; });
  EXPECT_EQ(bus.switch_count(), 2u);
  EXPECT_EQ(bus.switch_of(0), 0u);
  EXPECT_EQ(bus.switch_of(3), 1u);

  bus.send(ModuleId{0}, {ModuleId{1}, PartitionId{0}, "P"},
           {"a", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.send(ModuleId{2}, {ModuleId{3}, PartitionId{0}, "P"},
           {"b", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.tick(0);  // both switches' slot-0 owners transmit concurrently
  EXPECT_EQ(bus.pending_total(), 0u);
  bus.tick(1);
  EXPECT_EQ(deliveries, 2) << "one TDMA tick served two transmissions";
}

TEST(BusSwitched, CrossSwitchFramesPayTheTrunkHop) {
  net::Bus bus({.slot_length = 1, .frames_per_slot = 4,
                .propagation_delay = 1, .stations_per_switch = 2,
                .switch_hop_delay = 2});
  std::vector<std::string> order;
  bus.attach(ModuleId{0}, sink());
  bus.attach(ModuleId{1},
             [&](PartitionId, const std::string&, const ipc::Message& m,
                 ipc::ChannelKind) { order.push_back(m.payload.str()); });
  bus.attach(ModuleId{2}, sink());
  bus.attach(ModuleId{3},
             [&](PartitionId, const std::string&, const ipc::Message& m,
                 ipc::ChannelKind) { order.push_back(m.payload.str()); });

  // Both frames leave station 0 during the same slot tick; the same-switch
  // one arrives after propagation_delay, the cross-switch one two ticks
  // later (the trunk hop).
  bus.send(ModuleId{0}, {ModuleId{3}, PartitionId{0}, "P"},
           {"cross", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.send(ModuleId{0}, {ModuleId{1}, PartitionId{0}, "P"},
           {"local", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.tick(0);
  bus.tick(1);
  ASSERT_EQ(order.size(), 1u) << "only the intra-switch frame is due";
  EXPECT_EQ(order[0], "local");
  bus.tick(2);
  EXPECT_EQ(order.size(), 1u);
  bus.tick(3);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], "cross") << "propagation + switch_hop_delay";
}

TEST(BusSwitched, FaultDelayedFrameIsOvertakenByALaterTransmission) {
  // A fault-delayed frame stays in flight past a later, shorter-path frame:
  // the (deliver_at, seq) heap must reorder them exactly as the old sorted
  // deque did, and the warp queries must track the *earliest* arrival.
  net::Bus bus({.slot_length = 1, .frames_per_slot = 1,
                .propagation_delay = 1});
  std::vector<std::string> order;
  bus.attach(ModuleId{0}, sink());
  bus.attach(ModuleId{1},
             [&](PartitionId, const std::string&, const ipc::Message& m,
                 ipc::ChannelKind) { order.push_back(m.payload.str()); });
  bus.set_fault_hook([](std::uint64_t seq, ModuleId, const ipc::RemotePortRef&)
                         -> net::Bus::FaultDecision {
    return {.drop = false, .corrupt = false,
            .extra_delay = seq == 0 ? 5 : 0};
  });

  bus.send(ModuleId{0}, {ModuleId{1}, PartitionId{0}, "P"},
           {"first", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.send(ModuleId{0}, {ModuleId{1}, PartitionId{0}, "P"},
           {"second", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.tick(0);  // "first" transmits, delayed: arrives at 0 + 1 + 5 = 6
  // "second" is still queued; station 0's next slot is tick 2 (cycle 2),
  // so its arrival at 3 -- not the delayed in-flight frame at 6 -- is the
  // next-delivery bound.
  EXPECT_EQ(bus.next_delivery(1), 3);
  EXPECT_EQ(bus.idle_ticks(1), 0) << "a frame is still queued";
  bus.tick(1);
  bus.tick(2);  // "second" transmits: arrives at 2 + 1 = 3
  EXPECT_EQ(bus.idle_ticks(3), 0) << "delivery due this very tick";
  bus.tick(3);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], "second") << "overtook the fault-delayed frame";
  EXPECT_EQ(bus.idle_ticks(4), 2) << "nothing to do until tick 6";
  bus.tick(4);
  bus.tick(5);
  bus.tick(6);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], "first");
  EXPECT_EQ(bus.stats().frames_fault_delayed, 1u);
}

TEST(BusSwitched, EmptyVirtualLinksAreFreeForTheWarpQueries) {
  // Reserved-but-silent VLs are pure table entries: they keep no frames
  // alive, so they must not perturb idle_ticks / next_delivery, and
  // traffic of an *unreserved* pair rides past them unbudgeted.
  net::Bus bus({.slot_length = 1, .frames_per_slot = 4,
                .propagation_delay = 1, .stations_per_switch = 2});
  int deliveries = 0;
  bus.attach(ModuleId{0}, sink());
  bus.attach(ModuleId{1}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++deliveries; });
  const std::size_t ab = bus.define_virtual_link(
      {ModuleId{0}, ModuleId{1}, /*min_gap=*/50, /*jitter_budget=*/10});
  const std::size_t ba = bus.define_virtual_link(
      {ModuleId{1}, ModuleId{0}, /*min_gap=*/50, /*jitter_budget=*/10});
  ASSERT_EQ(bus.virtual_link_count(), 2u);
  EXPECT_EQ(bus.idle_ticks(0), kInfiniteTime);
  EXPECT_EQ(bus.next_delivery(0), kInfiniteTime);

  // The (1, 1) self-pair has no VL: the frame is carried but no VL counter
  // moves, and the silent reservations stay silent.
  bus.send(ModuleId{1}, {ModuleId{1}, PartitionId{0}, "P"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.tick(1);  // station 1 owns switch 0's slot 1
  bus.tick(2);
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(bus.vl_stats(ab).frames, 0u);
  EXPECT_EQ(bus.vl_stats(ba).frames, 0u);
  EXPECT_EQ(bus.vl_stats(ab).gated, 0u);
  EXPECT_EQ(bus.idle_ticks(3), kInfiniteTime);
}

TEST(BusSwitched, VlMinGapGatesHeadOfLineTransmissions) {
  net::Bus bus({.slot_length = 1, .frames_per_slot = 4,
                .propagation_delay = 0, .stations_per_switch = 2});
  std::vector<Ticks> arrivals;
  Ticks now = 0;
  bus.attach(ModuleId{0}, sink());
  bus.attach(ModuleId{1},
             [&](PartitionId, const std::string&, const ipc::Message&,
                 ipc::ChannelKind) { arrivals.push_back(now); });
  const std::size_t vl = bus.define_virtual_link(
      {ModuleId{0}, ModuleId{1}, /*min_gap=*/6, /*jitter_budget=*/100});

  bus.send(ModuleId{0}, {ModuleId{1}, PartitionId{0}, "P"},
           {"a", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.send(ModuleId{0}, {ModuleId{1}, PartitionId{0}, "P"},
           {"b", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  for (now = 0; now <= 8; ++now) bus.tick(now);
  // Station 0 owns even ticks. "a" transmits at 0; "b" is head-of-line
  // gated at 0 (same slot), 2 and 4, then rides the first slot at or after
  // next_allowed = 6.
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 1) << "transmit at 0, deliver next tick";
  EXPECT_EQ(arrivals[1], 7) << "gap expired at 6, delivered next tick";
  EXPECT_EQ(bus.vl_stats(vl).frames, 2u);
  EXPECT_EQ(bus.vl_stats(vl).gated, 3u) << "slot ticks 0, 2 and 4";
}

TEST(BusSwitched, VlJitterBudgetCountsQueueWait) {
  // Station 1 owns [5, 10) of its switch cycle: a frame enqueued at 0
  // waits 5 ticks for its first slot, blowing a 3-tick jitter budget.
  // Delivery is never blocked -- the violation is counted, not enforced.
  net::Bus bus({.slot_length = 5, .frames_per_slot = 1,
                .propagation_delay = 1, .stations_per_switch = 2});
  int deliveries = 0;
  bus.attach(ModuleId{0}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++deliveries; });
  bus.attach(ModuleId{1}, sink());
  const std::size_t vl = bus.define_virtual_link(
      {ModuleId{1}, ModuleId{0}, /*min_gap=*/0, /*jitter_budget=*/3});

  bus.send(ModuleId{1}, {ModuleId{0}, PartitionId{0}, "P"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  for (Ticks t = 0; t <= 6; ++t) bus.tick(t);
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(bus.vl_stats(vl).jitter_violations, 1u);
  EXPECT_EQ(bus.vl_stats(vl).max_queue_wait, 5);
}

TEST(BusSwitched, NextDeliveryWaitsOutTheSwitchLocalSlot) {
  // The queued station's slot never comes inside a short warp window: the
  // bound must point at the slot in the *switch-local* cycle (10 ticks
  // here), not the flat 4-station cycle (20 ticks) -- and idle_ticks must
  // hold the warp at 0 the whole wait.
  net::Bus bus({.slot_length = 5, .frames_per_slot = 1,
                .propagation_delay = 2, .stations_per_switch = 2});
  int deliveries = 0;
  bus.attach(ModuleId{0}, sink());
  bus.attach(ModuleId{1}, sink());
  bus.attach(ModuleId{2}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++deliveries; });
  bus.attach(ModuleId{3}, sink());

  // Station 3 is switch 1's local slot 1: it owns [5, 10) of each 10-tick
  // switch cycle.
  bus.send(ModuleId{3}, {ModuleId{2}, PartitionId{0}, "P"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  EXPECT_EQ(bus.next_delivery(0), 5 + 2);
  EXPECT_EQ(bus.next_delivery(4), 5 + 2);
  EXPECT_EQ(bus.next_delivery(9), 9 + 2) << "inside the slot";
  EXPECT_EQ(bus.next_delivery(10), 15 + 2) << "next switch-local cycle";
  for (Ticks t = 0; t < 5; ++t) {
    EXPECT_EQ(bus.idle_ticks(t), 0) << "queued frame pins the warp at " << t;
    bus.tick(t);
    EXPECT_EQ(deliveries, 0) << "slot not reached at " << t;
  }
  bus.tick(5);  // transmits (same switch: no trunk hop)
  bus.tick(6);
  bus.tick(7);
  EXPECT_EQ(deliveries, 1) << "transmit at 5 + propagation 2";
}

// ---------- end-to-end: two modules in a World ----------

system::ModuleConfig sender_module() {
  system::ModuleConfig config;
  config.id = ModuleId{0};
  config.name = "sender-module";
  system::PartitionConfig p;
  p.name = "PRODUCER";
  p.queuing_ports.push_back({"OUT", ipc::PortDirection::kSource, 32, 4});
  system::ProcessConfig producer;
  producer.attrs.name = "producer";
  producer.attrs.priority = 10;
  producer.attrs.script = ScriptBuilder{}
                              .queuing_send(0, "telemetry")
                              .timed_wait(20)
                              .build();
  p.processes.push_back(std::move(producer));
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  // Remote destination: module 1, partition 0, port IN.
  ipc::ChannelConfig channel;
  channel.id = ChannelId{0};
  channel.kind = ipc::ChannelKind::kQueuing;
  channel.source = {PartitionId{0}, "OUT"};
  channel.remote_destinations = {{ModuleId{1}, PartitionId{0}, "IN"}};
  config.channels.push_back(channel);
  return config;
}

system::ModuleConfig receiver_module() {
  system::ModuleConfig config;
  config.id = ModuleId{1};
  config.name = "receiver-module";
  system::PartitionConfig p;
  p.name = "CONSUMER";
  p.queuing_ports.push_back({"IN", ipc::PortDirection::kDestination, 32, 4});
  system::ProcessConfig consumer;
  consumer.attrs.name = "consumer";
  consumer.attrs.priority = 10;
  consumer.attrs.script =
      ScriptBuilder{}.queuing_receive(0).log("received").build();
  p.processes.push_back(std::move(consumer));
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  return config;
}

TEST(World, RemoteQueuingChannelDeliversAcrossModules) {
  system::World world({.slot_length = 5, .frames_per_slot = 2,
                       .propagation_delay = 2});
  world.add_module(sender_module());
  system::Module& receiver = world.add_module(receiver_module());

  world.run(100);
  const auto& console = receiver.console(PartitionId{0});
  // One message every 20 ticks from t=0; bus adds bounded latency.
  EXPECT_GE(console.size(), 4u);
  EXPECT_LE(console.size(), 5u);
  EXPECT_GT(world.bus().stats().frames_delivered, 0u);
}

TEST(World, ModulesStayInLockstep) {
  system::World world;
  system::Module& a = world.add_module(sender_module());
  system::Module& b = world.add_module(receiver_module());
  world.run(50);
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.now(), 49) << "50 ticks: 0..49";
}

}  // namespace
}  // namespace air
