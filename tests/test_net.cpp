// E10 remote half: the TDMA bus and multi-module remote channels.
// Applications use the same APEX port services whether the peer partition
// is local or on another module (Sect. 2.1).
#include <gtest/gtest.h>

#include "net/bus.hpp"
#include "system/world.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

TEST(Bus, DeliversAfterPropagationDelay) {
  net::Bus bus({.slot_length = 1, .frames_per_slot = 4,
                .propagation_delay = 3});
  std::vector<std::string> received;
  bus.attach(ModuleId{0}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.attach(ModuleId{1},
             [&](PartitionId, const std::string& port, const ipc::Message& m,
                 ipc::ChannelKind) { received.push_back(port + ":" + m.payload); });

  bus.send(ModuleId{0}, {ModuleId{1}, PartitionId{0}, "IN"},
           {"hello", 0, PartitionId{0}}, ipc::ChannelKind::kQueuing, 0);
  bus.tick(0);  // module 0 owns slot 0 (slot_length 1): transmits
  bus.tick(1);
  bus.tick(2);
  EXPECT_TRUE(received.empty()) << "still propagating";
  bus.tick(3);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "IN:hello");
  EXPECT_EQ(bus.stats().frames_delivered, 1u);
}

TEST(Bus, TdmaSlotOwnershipGatesTransmission) {
  net::Bus bus({.slot_length = 10, .frames_per_slot = 1,
                .propagation_delay = 0});
  int deliveries = 0;
  bus.attach(ModuleId{0}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.attach(ModuleId{1}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++deliveries; });

  // Module 1 wants to send during module 0's slot: it must wait.
  bus.send(ModuleId{1}, {ModuleId{1}, PartitionId{0}, "P"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kQueuing, 0);
  for (Ticks t = 0; t < 10; ++t) bus.tick(t);
  EXPECT_EQ(deliveries, 0) << "not module 1's slot yet";
  bus.tick(10);  // slot of module 1
  bus.tick(11);
  EXPECT_EQ(deliveries, 1);
}

TEST(Bus, BandwidthPerSlotIsBounded) {
  net::Bus bus({.slot_length = 1, .frames_per_slot = 2,
                .propagation_delay = 0});
  int deliveries = 0;
  bus.attach(ModuleId{0}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++deliveries; });
  for (int i = 0; i < 5; ++i) {
    bus.send(ModuleId{0}, {ModuleId{0}, PartitionId{0}, "P"},
             {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  }
  // A frame transmitted during tick N is delivered no earlier than tick
  // N+1, even with zero propagation delay (the delivery sweep runs before
  // transmission within a tick).
  bus.tick(0);
  EXPECT_EQ(deliveries, 0);
  bus.tick(1);
  EXPECT_EQ(deliveries, 2) << "two frames per visit of the slot";
  bus.tick(2);
  EXPECT_EQ(deliveries, 4);
  bus.tick(3);
  EXPECT_EQ(deliveries, 5);
}

TEST(Bus, UnattachedDestinationCountsAsDropped) {
  net::Bus bus({.slot_length = 1, .frames_per_slot = 4,
                .propagation_delay = 0});
  bus.attach(ModuleId{0}, [](PartitionId, const std::string&,
                             const ipc::Message&, ipc::ChannelKind) {});
  bus.send(ModuleId{0}, {ModuleId{7}, PartitionId{0}, "P"},
           {"x", 0, PartitionId{0}}, ipc::ChannelKind::kSampling, 0);
  bus.tick(0);
  bus.tick(1);
  EXPECT_EQ(bus.stats().frames_dropped, 1u);
}

// ---------- end-to-end: two modules in a World ----------

system::ModuleConfig sender_module() {
  system::ModuleConfig config;
  config.id = ModuleId{0};
  config.name = "sender-module";
  system::PartitionConfig p;
  p.name = "PRODUCER";
  p.queuing_ports.push_back({"OUT", ipc::PortDirection::kSource, 32, 4});
  system::ProcessConfig producer;
  producer.attrs.name = "producer";
  producer.attrs.priority = 10;
  producer.attrs.script = ScriptBuilder{}
                              .queuing_send(0, "telemetry")
                              .timed_wait(20)
                              .build();
  p.processes.push_back(std::move(producer));
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  // Remote destination: module 1, partition 0, port IN.
  ipc::ChannelConfig channel;
  channel.id = ChannelId{0};
  channel.kind = ipc::ChannelKind::kQueuing;
  channel.source = {PartitionId{0}, "OUT"};
  channel.remote_destinations = {{ModuleId{1}, PartitionId{0}, "IN"}};
  config.channels.push_back(channel);
  return config;
}

system::ModuleConfig receiver_module() {
  system::ModuleConfig config;
  config.id = ModuleId{1};
  config.name = "receiver-module";
  system::PartitionConfig p;
  p.name = "CONSUMER";
  p.queuing_ports.push_back({"IN", ipc::PortDirection::kDestination, 32, 4});
  system::ProcessConfig consumer;
  consumer.attrs.name = "consumer";
  consumer.attrs.priority = 10;
  consumer.attrs.script =
      ScriptBuilder{}.queuing_receive(0).log("received").build();
  p.processes.push_back(std::move(consumer));
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  return config;
}

TEST(World, RemoteQueuingChannelDeliversAcrossModules) {
  system::World world({.slot_length = 5, .frames_per_slot = 2,
                       .propagation_delay = 2});
  world.add_module(sender_module());
  system::Module& receiver = world.add_module(receiver_module());

  world.run(100);
  const auto& console = receiver.console(PartitionId{0});
  // One message every 20 ticks from t=0; bus adds bounded latency.
  EXPECT_GE(console.size(), 4u);
  EXPECT_LE(console.size(), 5u);
  EXPECT_GT(world.bus().stats().frames_delivered, 0u);
}

TEST(World, ModulesStayInLockstep) {
  system::World world;
  system::Module& a = world.add_module(sender_module());
  system::Module& b = world.add_module(receiver_module());
  world.run(50);
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.now(), 49) << "50 ticks: 0..49";
}

}  // namespace
}  // namespace air
