// Randomised whole-module property tests.
//
// Each seed generates a random module -- partitions (RT and generic POS),
// processes with random workload scripts, intrapartition objects, sampling
// and queuing channels, HM policies -- over a PST produced by the EDF
// generator (valid by construction), runs it for thousands of ticks and
// checks global invariants:
//   * temporal partitioning: at every tick the dispatched partition is
//     exactly the one the PST assigns to that offset;
//   * trace time is monotone;
//   * deadline misses only happen to processes with finite time capacity;
//   * kernels stay consistent (at most one running process per partition);
//   * the module never crashes or hangs.
#include <gtest/gtest.h>

#include <map>

#include "model/generator.hpp"
#include "system/module.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

struct GeneratedSystem {
  system::ModuleConfig config;
  model::Schedule schedule;
};

pos::Script random_script(util::Rng& rng, bool periodic, int semaphores,
                          int buffers, int sampling_ports,
                          int queuing_ports) {
  ScriptBuilder script;
  const int ops = static_cast<int>(rng.uniform(1, 5));
  for (int i = 0; i < ops; ++i) {
    switch (rng.uniform(0, 9)) {
      case 0:
      case 1:
      case 2:
        script.compute(rng.uniform(1, 40));
        break;
      case 3:
        script.timed_wait(rng.uniform(1, 60));
        break;
      case 4:
        if (semaphores > 0) {
          const auto sem =
              static_cast<std::int32_t>(rng.uniform(0, semaphores - 1));
          script.sem_wait(sem, rng.uniform(0, 50));
          script.sem_signal(sem);
        } else {
          script.compute(rng.uniform(1, 10));
        }
        break;
      case 5:
        if (buffers > 0) {
          const auto buf =
              static_cast<std::int32_t>(rng.uniform(0, buffers - 1));
          if (rng.chance(0.5)) {
            script.buffer_send(buf, "m", rng.uniform(0, 40));
          } else {
            script.buffer_receive(buf, rng.uniform(0, 40));
          }
        } else {
          script.compute(1);
        }
        break;
      case 6:
        if (sampling_ports > 0) {
          const auto port =
              static_cast<std::int32_t>(rng.uniform(0, sampling_ports - 1));
          if (rng.chance(0.5)) {
            script.sampling_write(port, "sample");
          } else {
            script.sampling_read(port);
          }
        } else {
          script.compute(1);
        }
        break;
      case 7:
        if (queuing_ports > 0) {
          const auto port =
              static_cast<std::int32_t>(rng.uniform(0, queuing_ports - 1));
          if (rng.chance(0.5)) {
            script.queuing_send(port, "q", rng.uniform(0, 30));
          } else {
            script.queuing_receive(port, rng.uniform(0, 30));
          }
        } else {
          script.compute(1);
        }
        break;
      case 8:
        if (rng.chance(0.2)) {
          script.raise_error(static_cast<std::int32_t>(rng.uniform(1, 99)),
                             "fuzz");
        } else if (rng.chance(0.3)) {
          script.memory_access(
              rng.chance(0.7) ? pmk::kAppDataBase
                              : static_cast<std::uint32_t>(0x7000'0000),
              rng.chance(0.5));
        } else {
          script.log("fuzz");
        }
        break;
      default:
        script.compute(rng.uniform(1, 20));
    }
  }
  if (periodic) {
    script.periodic_wait();
  } else if (rng.chance(0.5)) {
    script.timed_wait(rng.uniform(5, 80));
  }
  return script.build();
}

GeneratedSystem generate_system(std::uint64_t seed) {
  util::Rng rng(seed);
  GeneratedSystem out;
  auto& config = out.config;
  config.name = "fuzz-" + std::to_string(seed);

  const int partitions = static_cast<int>(rng.uniform(2, 5));

  // PST from random requirements via the EDF generator: always valid.
  static constexpr Ticks kPeriods[] = {60, 120, 240};
  std::vector<model::ScheduleRequirement> reqs;
  double budget = 0.85;
  for (int p = 0; p < partitions; ++p) {
    const Ticks period =
        kPeriods[static_cast<std::size_t>(rng.uniform(0, 2))];
    const double share = budget / static_cast<double>(partitions - p) *
                         (0.6 + rng.uniform01() * 0.4);
    const Ticks duration = std::max<Ticks>(
        4, static_cast<Ticks>(share * static_cast<double>(period)));
    budget -= static_cast<double>(duration) / static_cast<double>(period);
    reqs.push_back({PartitionId{p}, period, duration});
  }
  model::GeneratorInput input;
  input.requirements = reqs;
  auto schedule = model::generate_schedule(input);
  AIR_ASSERT_MSG(schedule.has_value(), "generator rejected feasible input");
  out.schedule = *schedule;
  config.schedules = {*schedule};

  for (int p = 0; p < partitions; ++p) {
    system::PartitionConfig partition;
    partition.name = "P" + std::to_string(p);
    partition.pos_kind = rng.chance(0.25) ? "generic" : "rt";
    partition.deadline_registry = rng.chance(0.5)
                                      ? pal::RegistryKind::kLinkedList
                                      : pal::RegistryKind::kTree;
    const int semaphores = static_cast<int>(rng.uniform(0, 2));
    for (int s = 0; s < semaphores; ++s) {
      partition.semaphores.push_back(
          {"sem" + std::to_string(s),
           static_cast<std::int32_t>(rng.uniform(0, 1)), 4});
    }
    const int buffers = static_cast<int>(rng.uniform(0, 2));
    for (int b = 0; b < buffers; ++b) {
      partition.buffers.push_back({"buf" + std::to_string(b), 32, 3});
    }
    // One sampling + one queuing port per partition, randomly wired below.
    partition.sampling_ports.push_back(
        {"S", rng.chance(0.5) ? ipc::PortDirection::kSource
                              : ipc::PortDirection::kDestination,
         32, rng.uniform(50, 500)});
    partition.queuing_ports.push_back(
        {"Q", rng.chance(0.5) ? ipc::PortDirection::kSource
                              : ipc::PortDirection::kDestination,
         32, static_cast<std::size_t>(rng.uniform(2, 6))});

    const int processes = static_cast<int>(rng.uniform(1, 3));
    for (int q = 0; q < processes; ++q) {
      system::ProcessConfig process;
      process.attrs.name = "proc" + std::to_string(q);
      const bool periodic = rng.chance(0.6);
      if (periodic) {
        const Ticks part_period = reqs[static_cast<std::size_t>(p)].period;
        process.attrs.period = part_period * rng.uniform(1, 3);
        process.attrs.time_capacity =
            rng.chance(0.5) ? process.attrs.period : kInfiniteTime;
      }
      process.attrs.priority =
          static_cast<Priority>(rng.uniform(1, 60));
      process.attrs.script =
          random_script(rng, periodic, semaphores, buffers, 1, 1);
      process.auto_start = rng.chance(0.9);
      partition.processes.push_back(std::move(process));
    }
    if (rng.chance(0.3)) {
      partition.error_handler =
          ScriptBuilder{}.log("handled").stop_self().build();
    }
    // Containment-friendly random HM policy.
    partition.hm_table.set(
        hm::ErrorCode::kDeadlineMissed, hm::ErrorLevel::kProcess,
        rng.chance(0.7) ? hm::RecoveryAction::kIgnore
                        : hm::RecoveryAction::kStopProcess);
    partition.hm_table.set(
        hm::ErrorCode::kApplicationError, hm::ErrorLevel::kProcess,
        rng.chance(0.5) ? hm::RecoveryAction::kIgnore
                        : hm::RecoveryAction::kRestartProcess,
        static_cast<std::uint32_t>(rng.uniform(1, 3)));
    partition.hm_table.set(hm::ErrorCode::kMemoryViolation,
                           hm::ErrorLevel::kProcess,
                           hm::RecoveryAction::kStopProcess);
    config.partitions.push_back(std::move(partition));
  }

  // Wire channels between compatible port pairs.
  for (int src = 0; src < partitions; ++src) {
    if (config.partitions[static_cast<std::size_t>(src)]
            .sampling_ports[0]
            .direction != ipc::PortDirection::kSource) {
      continue;
    }
    ipc::ChannelConfig channel;
    channel.id = ChannelId{src};
    channel.kind = ipc::ChannelKind::kSampling;
    channel.source = {PartitionId{src}, "S"};
    for (int dst = 0; dst < partitions; ++dst) {
      if (dst != src &&
          config.partitions[static_cast<std::size_t>(dst)]
                  .sampling_ports[0]
                  .direction == ipc::PortDirection::kDestination) {
        channel.local_destinations.push_back({PartitionId{dst}, "S"});
      }
    }
    if (!channel.local_destinations.empty()) {
      config.channels.push_back(std::move(channel));
    }
  }
  for (int src = 0; src < partitions; ++src) {
    if (config.partitions[static_cast<std::size_t>(src)]
            .queuing_ports[0]
            .direction != ipc::PortDirection::kSource) {
      continue;
    }
    for (int dst = 0; dst < partitions; ++dst) {
      if (dst != src &&
          config.partitions[static_cast<std::size_t>(dst)]
                  .queuing_ports[0]
                  .direction == ipc::PortDirection::kDestination) {
        ipc::ChannelConfig channel;
        channel.id = ChannelId{100 + src};
        channel.kind = ipc::ChannelKind::kQueuing;
        channel.source = {PartitionId{src}, "Q"};
        channel.local_destinations = {{PartitionId{dst}, "Q"}};
        config.channels.push_back(std::move(channel));
        break;
      }
    }
  }
  return out;
}

class ModuleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModuleFuzz, InvariantsHoldOverThousandsOfTicks) {
  GeneratedSystem generated = generate_system(GetParam());
  const model::Schedule schedule = generated.schedule;
  system::Module module(std::move(generated.config));

  const auto owner_at = [&schedule](Ticks t) -> std::int64_t {
    const Ticks offset = t % schedule.mtf;
    for (const auto& w : schedule.windows) {
      if (offset >= w.offset && offset < w.offset + w.duration) {
        return w.partition.value();
      }
    }
    return -1;
  };

  const Ticks horizon = 4000;
  for (Ticks t = 0; t < horizon; ++t) {
    module.tick_once();
    if (module.stopped()) break;
    // Temporal partitioning: the dispatched partition is the PST owner.
    const PartitionId active = module.dispatcher().active_partition();
    ASSERT_EQ(active.valid() ? active.value() : -1, owner_at(t))
        << "seed " << GetParam() << " tick " << t;
  }

  // Trace sanity: monotone time, valid partition indices.
  Ticks previous = -1;
  for (const auto& event : module.trace().events()) {
    ASSERT_GE(event.time, previous);
    previous = event.time;
    if (event.kind == util::EventKind::kDeadlineMiss) {
      // Only deadline-bearing processes may miss.
      const auto partition = PartitionId{static_cast<std::int32_t>(event.a)};
      const auto* pcb = module.kernel(partition).pcb(
          ProcessId{static_cast<std::int32_t>(event.b)});
      ASSERT_NE(pcb, nullptr);
      ASSERT_NE(pcb->attrs.time_capacity, kInfiniteTime)
          << "seed " << GetParam();
    }
  }

  // Kernel consistency: at most one running process per partition, and the
  // running one is the kernel's current process.
  for (std::size_t p = 0; p < module.partition_count(); ++p) {
    const auto id = PartitionId{static_cast<std::int32_t>(p)};
    auto& kernel = module.kernel(id);
    int running = 0;
    for (std::size_t q = 0; q < kernel.process_count(); ++q) {
      const auto* pcb = kernel.pcb(ProcessId{static_cast<std::int32_t>(q)});
      if (pcb->state == pos::ProcessState::kRunning) {
        ++running;
        ASSERT_EQ(kernel.current(), pcb->id);
      }
    }
    ASSERT_LE(running, 1) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModuleFuzz,
                         ::testing::Range<std::uint64_t>(1, 49));

}  // namespace
}  // namespace air
