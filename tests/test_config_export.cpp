// Config exporter: ModuleConfig -> JSON -> ModuleConfig round trips yield
// equivalent modules (identical execution traces).
#include <gtest/gtest.h>

#include "config/export.hpp"
#include "config/fig8.hpp"
#include "config/loader.hpp"
#include "system/module.hpp"
#include "util/trace_export.hpp"

namespace air {
namespace {

TEST(ConfigExport, Fig8RoundTripsThroughJson) {
  const system::ModuleConfig original = scenarios::fig8_config();
  const std::string json = config::to_json(original);
  const auto reloaded = config::load_module_config(json);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error;

  // Structural spot checks.
  ASSERT_EQ(reloaded.config->partitions.size(), original.partitions.size());
  EXPECT_EQ(reloaded.config->partitions[0].name, "AOCS");
  EXPECT_TRUE(reloaded.config->partitions[0].system_partition);
  ASSERT_EQ(reloaded.config->schedules.size(), 2u);
  EXPECT_EQ(reloaded.config->schedules[1].windows.size(), 7u);
  ASSERT_EQ(reloaded.config->channels.size(), 2u);

  // Behavioural equivalence: identical traces over a faulty run.
  auto run = [](system::ModuleConfig config) {
    system::Module module(std::move(config));
    module.start_process_by_name(module.partition_id("AOCS"),
                                 scenarios::kFaultyProcessName);
    module.run(4 * scenarios::kFig8Mtf);
    return util::to_json(module.trace());
  };
  EXPECT_EQ(run(original), run(*reloaded.config));
}

TEST(ConfigExport, SecondRoundTripIsAFixpoint) {
  const system::ModuleConfig original = scenarios::fig8_config();
  const std::string once = config::to_json(original);
  const auto reloaded = config::load_module_config(once);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error;
  const std::string twice = config::to_json(*reloaded.config);
  EXPECT_EQ(once, twice);
}

TEST(ConfigExport, MulticoreCoresSurviveTheRoundTrip) {
  system::ModuleConfig config;
  for (int i = 0; i < 2; ++i) {
    system::PartitionConfig p;
    p.name = "P" + std::to_string(i);
    system::ProcessConfig process;
    process.attrs.name = "w";
    process.attrs.priority = 10;
    process.attrs.script = pos::ScriptBuilder{}.compute(5).build();
    p.processes.push_back(std::move(process));
    config.partitions.push_back(std::move(p));
  }
  for (int i = 0; i < 2; ++i) {
    model::Schedule s;
    s.id = ScheduleId{i};
    s.mtf = 50;
    s.requirements = {{PartitionId{i}, 50, 50}};
    s.windows = {{PartitionId{i}, 0, 50}};
    config.cores.push_back({{s}, ScheduleId{i}});
  }

  const auto reloaded = config::load_module_config(config::to_json(config));
  ASSERT_TRUE(reloaded.ok()) << reloaded.error;
  ASSERT_EQ(reloaded.config->cores.size(), 2u);
  EXPECT_EQ(reloaded.config->cores[1].initial_schedule, ScheduleId{1});

  system::Module module(*reloaded.config);
  EXPECT_EQ(module.core_count(), 2u);
  module.run(100);
  EXPECT_EQ(module.partition_pcb(PartitionId{0}).busy_ticks, 100u);
  EXPECT_EQ(module.partition_pcb(PartitionId{1}).busy_ticks, 100u);
}

}  // namespace
}  // namespace air
