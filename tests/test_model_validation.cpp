// E2 + unit tests for the formal model validators (eqs. 20-23, eq. 25).
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "model/validation.hpp"

namespace air::model {
namespace {

Schedule base_schedule() {
  Schedule s;
  s.id = ScheduleId{0};
  s.name = "test";
  s.mtf = 100;
  s.requirements = {{PartitionId{0}, 50, 20}, {PartitionId{1}, 100, 30}};
  s.windows = {{PartitionId{0}, 0, 20},
               {PartitionId{1}, 20, 30},
               {PartitionId{0}, 50, 20}};
  return s;
}

TEST(Validation, AcceptsAWellFormedSchedule) {
  const auto report = validate_schedule(base_schedule());
  EXPECT_TRUE(report.ok()) << report.to_text();
}

TEST(Validation, Eq20WindowMustNameARequirementPartition) {
  Schedule s = base_schedule();
  s.windows.push_back({PartitionId{9}, 90, 5});
  const auto report = validate_schedule(s);
  EXPECT_TRUE(report.has(ViolationKind::kWindowPartitionUnknown));
}

TEST(Validation, Eq21OverlappingWindowsRejected) {
  Schedule s = base_schedule();
  s.windows[1].offset = 15;  // overlaps [0,20)
  const auto report = validate_schedule(s);
  EXPECT_TRUE(report.has(ViolationKind::kWindowsOverlap));
}

TEST(Validation, Eq21WindowBeyondMtfRejected) {
  Schedule s = base_schedule();
  s.windows.push_back({PartitionId{1}, 95, 10});  // ends at 105 > 100
  const auto report = validate_schedule(s);
  EXPECT_TRUE(report.has(ViolationKind::kWindowExceedsMtf));
}

TEST(Validation, Eq22MtfMustBeMultipleOfLcm) {
  Schedule s = base_schedule();
  s.mtf = 150;  // lcm(50,100) = 100; 150 is not a multiple
  const auto report = validate_schedule(s);
  EXPECT_TRUE(report.has(ViolationKind::kMtfNotMultipleOfLcm));
}

TEST(Validation, Eq23EveryCycleMustReceiveTheDuration) {
  Schedule s = base_schedule();
  // Remove partition 0's second window: cycle k=1 ([50,100)) gets nothing.
  s.windows.pop_back();
  const auto report = validate_schedule(s);
  ASSERT_TRUE(report.has(ViolationKind::kCycleDurationUnmet));
  // The violation names the partition and the cycle.
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.kind == ViolationKind::kCycleDurationUnmet) {
      EXPECT_EQ(v.partition, PartitionId{0});
      EXPECT_NE(v.detail.find("k=1"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Validation, Eq23SplitWindowsWithinACycleAccumulate) {
  // Eq. (23) sums *all* windows whose offset falls inside the cycle, so a
  // duration split across two windows still satisfies the requirement.
  Schedule s = base_schedule();
  s.windows[0].duration = 10;                      // [0, 10)
  s.windows.push_back({PartitionId{0}, 10, 10});   // [10, 20)
  const auto report = validate_schedule(s);
  EXPECT_TRUE(report.ok()) << report.to_text();
}

TEST(Validation, DurationGreaterThanPeriodIsImpossible) {
  Schedule s = base_schedule();
  s.requirements[0].duration = 60;  // > period 50
  const auto report = validate_schedule(s);
  EXPECT_TRUE(report.has(ViolationKind::kDurationExceedsPeriod));
}

TEST(Validation, PeriodMustDivideMtf) {
  Schedule s = base_schedule();
  s.requirements.push_back({PartitionId{2}, 40, 0});  // 40 does not divide 100
  s.mtf = 200;  // lcm(50,100,40) = 200, so eq. 22 holds...
  const auto report = validate_schedule(s);
  // ...but eq. 23 cannot even partition the MTF into cycles of 40? It can:
  // 200/40 = 5. So with duration 0 this is fine.
  EXPECT_FALSE(report.has(ViolationKind::kPeriodNotDivisorOfMtf))
      << report.to_text();

  Schedule bad = base_schedule();
  bad.requirements[0].period = 40;  // 40 does not divide MTF 100
  bad.mtf = 100;
  // lcm(40,100)=200 != 100 -> eq22 fires; and eq23's cycle split fails too.
  const auto bad_report = validate_schedule(bad);
  EXPECT_TRUE(bad_report.has(ViolationKind::kMtfNotMultipleOfLcm));
  EXPECT_TRUE(bad_report.has(ViolationKind::kPeriodNotDivisorOfMtf));
}

TEST(Validation, RequirementWithoutAnyWindowIsFlagged) {
  Schedule s = base_schedule();
  s.requirements.push_back({PartitionId{2}, 100, 10});
  const auto report = validate_schedule(s);
  EXPECT_TRUE(report.has(ViolationKind::kRequirementWithoutWindow));
}

TEST(Validation, ZeroDurationPartitionsNeedNoWindows) {
  // Sect. 3.1: partitions without strict time requirements have d = 0.
  Schedule s = base_schedule();
  s.requirements.push_back({PartitionId{2}, 100, 0});
  const auto report = validate_schedule(s);
  EXPECT_TRUE(report.ok()) << report.to_text();
}

// ---------- E2: the eq. (25) derivation ----------

TEST(Validation, Eq25DerivationForFig8Chi1P1) {
  // The paper instantiates eq. (23) for chi_1, P_m = Q_{1,1}, k = 0 and
  // derives 200 >= 200: P1's single window at offset 0 supplies exactly the
  // required duration.
  const Schedule chi1 = scenarios::fig8_chi1();
  const Ticks supplied = cycle_window_time(chi1, PartitionId{0}, 0);
  const ScheduleRequirement* req = chi1.requirement_for(PartitionId{0});
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(supplied, 200);
  EXPECT_EQ(req->duration, 200);
  EXPECT_GE(supplied, req->duration);  // 200 >= 200, with equality
}

TEST(Validation, CycleWindowTimeMatchesFig8PerCycle) {
  const Schedule chi1 = scenarios::fig8_chi1();
  // P2 (eta 650): both cycles receive exactly 100.
  EXPECT_EQ(cycle_window_time(chi1, PartitionId{1}, 0), 100);
  EXPECT_EQ(cycle_window_time(chi1, PartitionId{1}, 1), 100);
  // P4 (eta 1300): one cycle receiving 700.
  EXPECT_EQ(cycle_window_time(chi1, PartitionId{3}, 0), 700);
}

TEST(Validation, SystemValidationCoversAllSchedules) {
  SystemModel system;
  system.partitions = {{PartitionId{0}, "A", false, {}},
                       {PartitionId{1}, "B", false, {}}};
  Schedule s1 = base_schedule();
  Schedule s2 = base_schedule();
  s2.id = ScheduleId{1};
  s2.windows[1].offset = 15;  // broken
  system.schedules = {s1, s2};
  const auto report = validate_system(system);
  EXPECT_FALSE(report.ok());
  for (const auto& v : report.violations) {
    EXPECT_EQ(v.schedule, ScheduleId{1}) << "only s2 is broken";
  }
}

TEST(Validation, UtilisationAndAssignedTime) {
  const Schedule s = base_schedule();
  EXPECT_EQ(s.assigned_time(PartitionId{0}), 40);
  EXPECT_EQ(s.assigned_time(PartitionId{1}), 30);
  EXPECT_DOUBLE_EQ(s.utilisation(), 0.7);
}

}  // namespace
}  // namespace air::model
