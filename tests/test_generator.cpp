// PST generator tests (E12): generated schedules always satisfy the model
// equations; infeasible inputs are rejected. Includes a parameterised
// property sweep over randomly drawn requirement sets.
#include <gtest/gtest.h>

#include "model/generator.hpp"
#include "model/validation.hpp"
#include "util/rng.hpp"

namespace air::model {
namespace {

TEST(Generator, GeneratesAValidScheduleForFig8Requirements) {
  GeneratorInput input;
  input.requirements = {
      {PartitionId{0}, 1300, 200},
      {PartitionId{1}, 650, 100},
      {PartitionId{2}, 650, 100},
      {PartitionId{3}, 1300, 100},
  };
  const auto schedule = generate_schedule(input);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_EQ(schedule->mtf, 1300);
  const auto report = validate_schedule(*schedule);
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_TRUE(report.warnings.empty())
      << "EDF construction never crosses cycle boundaries";
}

TEST(Generator, RejectsOverUtilisedSets) {
  GeneratorInput input;
  input.requirements = {{PartitionId{0}, 100, 60}, {PartitionId{1}, 100, 50}};
  EXPECT_FALSE(generate_schedule(input).has_value());
}

TEST(Generator, RejectsStructurallyImpossibleRequirements) {
  GeneratorInput bad_duration;
  bad_duration.requirements = {{PartitionId{0}, 50, 60}};  // d > eta
  EXPECT_FALSE(generate_schedule(bad_duration).has_value());

  GeneratorInput bad_period;
  bad_period.requirements = {{PartitionId{0}, 0, 10}};
  EXPECT_FALSE(generate_schedule(bad_period).has_value());

  GeneratorInput bad_mtf;
  bad_mtf.requirements = {{PartitionId{0}, 50, 10}};
  bad_mtf.mtf = 75;  // not a multiple of 50 -> would break eq. 22
  EXPECT_FALSE(generate_schedule(bad_mtf).has_value());
}

TEST(Generator, FullUtilisationIsStillFeasible) {
  GeneratorInput input;
  input.requirements = {{PartitionId{0}, 10, 5}, {PartitionId{1}, 20, 10}};
  const auto schedule = generate_schedule(input);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_DOUBLE_EQ(schedule->utilisation(), 1.0);
  EXPECT_TRUE(validate_schedule(*schedule).ok());
}

TEST(Generator, HonoursAnExplicitLargerMtf) {
  GeneratorInput input;
  input.requirements = {{PartitionId{0}, 50, 10}};
  input.mtf = 200;  // 4 cycles
  const auto schedule = generate_schedule(input);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_EQ(schedule->mtf, 200);
  const auto report = validate_schedule(*schedule);
  EXPECT_TRUE(report.ok()) << report.to_text();
  for (Ticks k = 0; k < 4; ++k) {
    EXPECT_GE(cycle_window_time(*schedule, PartitionId{0}, k), 10);
  }
}

TEST(Generator, ZeroDurationPartitionsProduceNoWindows) {
  GeneratorInput input;
  input.requirements = {{PartitionId{0}, 50, 25}, {PartitionId{1}, 50, 0}};
  const auto schedule = generate_schedule(input);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_EQ(schedule->assigned_time(PartitionId{1}), 0);
  EXPECT_TRUE(validate_schedule(*schedule).ok());
}

// ---------- property sweep: random requirement sets ----------

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, GeneratedSchedulesAlwaysValidate) {
  util::Rng rng(GetParam());
  // Harmonic-ish periods keep the lcm bounded.
  static constexpr Ticks kPeriods[] = {20, 40, 80, 160};

  const int partitions = static_cast<int>(rng.uniform(2, 6));
  std::vector<ScheduleRequirement> reqs;
  double budget = 1.0;
  for (int p = 0; p < partitions; ++p) {
    const Ticks period =
        kPeriods[static_cast<std::size_t>(rng.uniform(0, 3))];
    const double share = rng.uniform01() * budget * 0.6;
    const Ticks duration =
        std::min<Ticks>(period,
                        static_cast<Ticks>(share * static_cast<double>(period)));
    budget -= static_cast<double>(duration) / static_cast<double>(period);
    reqs.push_back({PartitionId{p}, period, duration});
  }

  GeneratorInput input;
  input.requirements = reqs;
  const auto schedule = generate_schedule(input);
  ASSERT_TRUE(schedule.has_value())
      << "utilisation " << requirement_utilisation(reqs);
  const auto report = validate_schedule(*schedule);
  EXPECT_TRUE(report.ok()) << report.to_text();

  // Every partition got exactly its demand per cycle (EDF never over- nor
  // under-allocates on an integer timeline with these inputs).
  for (const auto& req : reqs) {
    for (Ticks k = 0; k < schedule->mtf / req.period; ++k) {
      EXPECT_GE(cycle_window_time(*schedule, req.partition, k), req.duration);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace air::model
