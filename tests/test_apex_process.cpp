// APEX process/time management tests, including E8: the Fig. 6 scenario
// (START registers deadline t3 = now + capacity; REPLENISH moves it to
// t4 = now + budget; reaching t4 unfinished reports a miss to HM).
#include <gtest/gtest.h>

#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

/// One-partition module: MTF 10, the partition owns the whole frame.
system::ModuleConfig single_partition_config() {
  system::ModuleConfig config;
  config.name = "single";
  system::PartitionConfig p;
  p.name = "MAIN";
  p.system_partition = true;
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.name = "all";
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  hm::HmTable table;
  table.set(hm::ErrorCode::kDeadlineMissed, hm::ErrorLevel::kProcess,
            hm::RecoveryAction::kIgnore);
  config.module_hm_table = table;
  config.partitions[0].hm_table = table;
  return config;
}

system::ProcessConfig proc(std::string name, pos::Script script,
                           Priority priority = 10,
                           Ticks period = kInfiniteTime,
                           Ticks capacity = kInfiniteTime,
                           bool auto_start = true) {
  system::ProcessConfig pc;
  pc.attrs.name = std::move(name);
  pc.attrs.script = std::move(script);
  pc.attrs.priority = priority;
  pc.attrs.period = period;
  pc.attrs.time_capacity = capacity;
  pc.auto_start = auto_start;
  return pc;
}

TEST(ApexProcess, Fig6StartReplenishMissScenario) {
  auto config = single_partition_config();
  // START at t=0 -> deadline t3 = 0 + 50. At t=10 REPLENISH(20) -> deadline
  // t4 = 30. The process then computes past t4: miss detected at t=31.
  config.partitions[0].processes.push_back(
      proc("worker",
           ScriptBuilder{}.compute(10).replenish(20).compute(100).build(),
           10, kInfiniteTime, 50));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  ProcessId worker;
  ASSERT_EQ(module.apex(main).get_process_id("worker", worker),
            apex::ReturnCode::kNoError);

  // t3: deadline from START.
  apex::ProcessStatus status;
  ASSERT_EQ(module.apex(main).get_process_status(worker, status),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(status.deadline_time, 50);

  module.run(12);  // past the REPLENISH at t=10
  ASSERT_EQ(module.apex(main).get_process_status(worker, status),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(status.deadline_time, 30) << "t4 = 10 + 20";

  module.run(25);
  const auto misses = module.trace().filtered(util::EventKind::kDeadlineMiss);
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].time, 31) << "first announce after t4";
  EXPECT_EQ(misses[0].c, 30) << "the missed deadline is t4";
  EXPECT_EQ(misses[0].b, worker.value());
}

TEST(ApexProcess, StopUnregistersTheDeadline) {
  auto config = single_partition_config();
  config.partitions[0].processes.push_back(
      proc("limited", ScriptBuilder{}.compute(5).stop_self().build(), 10,
           kInfiniteTime, 3));
  system::Module module(std::move(config));
  // Capacity 3, computes 5: would miss at t=4... but wait, it misses before
  // stop_self. Verify the inverse: a process that stops in time leaves no
  // deadline behind.
  module.run(20);
  // The miss happened (compute 5 > capacity 3) and STOP removed the record:
  // exactly one report, none after the stop.
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 1u);
}

TEST(ApexProcess, CreateProcessOnlyDuringInitialisation) {
  system::Module module(single_partition_config());
  const PartitionId main = module.partition_id("MAIN");
  pos::ProcessAttributes attrs;
  attrs.name = "late";
  ProcessId out;
  EXPECT_EQ(module.apex(main).create_process(attrs, out),
            apex::ReturnCode::kInvalidMode)
      << "partition is in NORMAL mode after boot";
}

TEST(ApexProcess, StartOnDormantOnlyAndStatusTracksStates) {
  auto config = single_partition_config();
  config.partitions[0].processes.push_back(proc(
      "sleeper", ScriptBuilder{}.timed_wait(5).build(), 10, kInfiniteTime,
      kInfiniteTime, /*auto_start=*/false));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  auto& apex = module.apex(main);
  ProcessId sleeper;
  ASSERT_EQ(apex.get_process_id("sleeper", sleeper),
            apex::ReturnCode::kNoError);

  apex::ProcessStatus status;
  ASSERT_EQ(apex.get_process_status(sleeper, status),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(status.state, pos::ProcessState::kDormant);

  EXPECT_EQ(apex.start(sleeper), apex::ReturnCode::kNoError);
  EXPECT_EQ(apex.start(sleeper), apex::ReturnCode::kNoAction)
      << "START on a non-dormant process";

  module.run(2);
  ASSERT_EQ(apex.get_process_status(sleeper, status),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(status.state, pos::ProcessState::kWaiting) << "inside TIMED_WAIT";
  module.run(6);
  ASSERT_EQ(apex.get_process_status(sleeper, status),
            apex::ReturnCode::kNoError);
  EXPECT_NE(status.state, pos::ProcessState::kDormant);

  EXPECT_EQ(apex.stop(sleeper), apex::ReturnCode::kNoError);
  ASSERT_EQ(apex.get_process_status(sleeper, status),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(status.state, pos::ProcessState::kDormant);
  EXPECT_EQ(apex.stop(sleeper), apex::ReturnCode::kNoAction);
}

TEST(ApexProcess, DelayedStartReleasesAfterTheDelay) {
  auto config = single_partition_config();
  config.partitions[0].processes.push_back(
      proc("delayed", ScriptBuilder{}.log("alive").stop_self().build(), 10,
           kInfiniteTime, kInfiniteTime, /*auto_start=*/false));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  ProcessId delayed;
  ASSERT_EQ(module.apex(main).get_process_id("delayed", delayed),
            apex::ReturnCode::kNoError);
  module.run(1);
  ASSERT_EQ(module.apex(main).delayed_start(delayed, 5),
            apex::ReturnCode::kNoError);
  module.run(3);
  EXPECT_TRUE(module.console(main).empty());
  module.run(5);
  ASSERT_EQ(module.console(main).size(), 1u);
  EXPECT_EQ(module.console(main)[0], "alive");
}

TEST(ApexProcess, TimedWaitDurationIsHonoured) {
  auto config = single_partition_config();
  config.partitions[0].processes.push_back(
      proc("ticker",
           ScriptBuilder{}.log("tick").timed_wait(4).build()));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  // t=0: log + block to t=4; t=4: log + block to 8; ...
  module.run(10);
  EXPECT_EQ(module.console(main).size(), 3u);  // t=0, 4, 8
}

TEST(ApexProcess, PeriodicWaitReleasesOnPeriodBoundaries) {
  auto config = single_partition_config();
  config.partitions[0].processes.push_back(
      proc("periodic", ScriptBuilder{}.log("go").periodic_wait().build(), 10,
           /*period=*/5, /*capacity=*/5));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(11);
  // Releases at 0, 5, 10.
  EXPECT_EQ(module.console(main).size(), 3u);
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u);
}

TEST(ApexProcess, SuspendResumeOnAperiodicProcess) {
  auto config = single_partition_config();
  config.partitions[0].processes.push_back(
      proc("victim", ScriptBuilder{}.compute(100).build(), 20));
  config.partitions[0].processes.push_back(
      proc("boss",
           ScriptBuilder{}.timed_wait(2).stop_self().build(), 10));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  auto& apex = module.apex(main);
  ProcessId victim;
  ASSERT_EQ(apex.get_process_id("victim", victim), apex::ReturnCode::kNoError);

  module.run(3);
  EXPECT_EQ(apex.suspend(victim), apex::ReturnCode::kNoError);
  EXPECT_EQ(apex.suspend(victim), apex::ReturnCode::kNoAction);
  apex::ProcessStatus status;
  ASSERT_EQ(apex.get_process_status(victim, status),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(status.state, pos::ProcessState::kWaiting);

  module.run(3);
  EXPECT_EQ(apex.resume(victim), apex::ReturnCode::kNoError);
  EXPECT_EQ(apex.resume(victim), apex::ReturnCode::kNoAction);
  module.run(1);
  ASSERT_EQ(apex.get_process_status(victim, status),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(status.state, pos::ProcessState::kRunning);
}

TEST(ApexProcess, SuspendRejectedForPeriodicProcesses) {
  auto config = single_partition_config();
  config.partitions[0].processes.push_back(
      proc("periodic", ScriptBuilder{}.compute(1).periodic_wait().build(),
           10, /*period=*/5, /*capacity=*/5));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  ProcessId pid;
  ASSERT_EQ(module.apex(main).get_process_id("periodic", pid),
            apex::ReturnCode::kNoError);
  module.run(1);
  EXPECT_EQ(module.apex(main).suspend(pid), apex::ReturnCode::kInvalidMode);
}

TEST(ApexProcess, SetPriorityChangesScheduling) {
  auto config = single_partition_config();
  config.partitions[0].processes.push_back(
      proc("a", ScriptBuilder{}.compute(1000).build(), 10));
  config.partitions[0].processes.push_back(
      proc("b", ScriptBuilder{}.log("b ran").compute(1000).build(), 20));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  auto& apex = module.apex(main);
  module.run(5);
  EXPECT_TRUE(module.console(main).empty()) << "a (prio 10) monopolises";
  ProcessId b;
  ASSERT_EQ(apex.get_process_id("b", b), apex::ReturnCode::kNoError);
  ASSERT_EQ(apex.set_priority(b, 5), apex::ReturnCode::kNoError);
  module.run(2);
  EXPECT_EQ(module.console(main).size(), 1u);

  EXPECT_EQ(apex.set_priority(b, 9999), apex::ReturnCode::kInvalidParam);
}

TEST(ApexProcess, LockPreemptionShieldsCriticalSections) {
  auto config = single_partition_config();
  // "low" locks preemption, computes, then unlocks; "high" wakes mid-way
  // but must not run until the unlock.
  config.partitions[0].processes.push_back(
      proc("low", ScriptBuilder{}
                      .lock_preemption()
                      .compute(6)
                      .log("low done")
                      .unlock_preemption()
                      .compute(100)
                      .build(),
           20));
  config.partitions[0].processes.push_back(
      proc("high",
           ScriptBuilder{}.timed_wait(2).log("high ran").stop_self().build(),
           10));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(10);
  const auto& console = module.console(main);
  ASSERT_EQ(console.size(), 2u);
  EXPECT_EQ(console[0], "low done") << "preemption lock held";
  EXPECT_EQ(console[1], "high ran");
}

TEST(ApexProcess, GetTimeAdvancesWithTheModuleClock) {
  system::Module module(single_partition_config());
  const PartitionId main = module.partition_id("MAIN");
  module.run(7);
  EXPECT_EQ(module.apex(main).get_time(), module.now());
}

TEST(ApexProcess, PartitionStatusReflectsConfiguration) {
  system::Module module(single_partition_config());
  const auto status =
      module.apex(module.partition_id("MAIN")).get_partition_status();
  EXPECT_EQ(status.mode, pmk::OperatingMode::kNormal);
  EXPECT_TRUE(status.system_partition);
}

}  // namespace
}  // namespace air
