// Time-warp equivalence: running a mission with the next-event fast-forward
// enabled must be byte-identical -- metrics snapshot, trace contents, final
// APEX-visible process state -- to stepping every tick. The randomized suite
// generates missions with model::generate_schedule and compares both
// executions over a bag of seeds.
#include <gtest/gtest.h>

#include <string>

#include "config/fig8.hpp"
#include "model/generator.hpp"
#include "pos/workload.hpp"
#include "system/module.hpp"
#include "system/world.hpp"
#include "telemetry/export.hpp"
#include "telemetry/spans.hpp"
#include "util/rng.hpp"
#include "util/trace_export.hpp"

namespace air {
namespace {

// Serialize everything a partition application could observe through APEX.
std::string apex_visible_state(system::Module& module) {
  std::string out;
  for (std::size_t p = 0; p < module.partition_count(); ++p) {
    const PartitionId id{static_cast<std::int32_t>(p)};
    const pmk::PartitionControlBlock& pcb = module.partition_pcb(id);
    out += "partition " + std::to_string(p) +
           " mode=" + std::to_string(static_cast<int>(pcb.mode)) +
           " busy=" + std::to_string(pcb.busy_ticks) +
           " slack=" + std::to_string(pcb.slack_ticks) + "\n";
    auto& kernel = module.kernel(id);
    for (std::size_t q = 0; q < kernel.process_count(); ++q) {
      apex::ProcessStatus st;
      if (module.apex(id).get_process_status(
              ProcessId{static_cast<std::int32_t>(q)}, st) !=
          apex::ReturnCode::kNoError) {
        continue;
      }
      out += "  " + st.name + " state=" +
             std::to_string(static_cast<int>(st.state)) +
             " prio=" + std::to_string(st.current_priority) +
             " deadline=" + std::to_string(st.deadline_time) +
             " completions=" + std::to_string(st.completions) +
             " max_resp=" + std::to_string(st.max_response) +
             " mean_resp=" + std::to_string(st.mean_response) +
             " misses=" + std::to_string(st.deadline_misses) + "\n";
    }
    for (const std::string& line : module.console(id)) {
      out += "  console: " + line + "\n";
    }
  }
  out += "now=" + std::to_string(module.now());
  out += " stopped=" + std::to_string(module.stopped() ? 1 : 0);
  return out;
}

struct RunResult {
  std::string trace;
  std::string metrics;
  std::string apex;
  std::string spans;
  system::Module::WarpStats warp;
};

RunResult run_mission(system::ModuleConfig config, bool warp, Ticks span) {
  system::Module module(std::move(config));
  module.set_time_warp(warp);
  module.run(span);
  RunResult result;
  result.trace = util::to_json(module.trace());
  const telemetry::MetricsSnapshot snap = module.metrics_snapshot();
  result.metrics = telemetry::to_json(snap) + "\n" + telemetry::to_csv(snap);
  result.apex = apex_visible_state(module);
  result.spans = telemetry::spans_to_json(module.spans());
  result.warp = module.warp_stats();
  return result;
}

void expect_equivalent(const RunResult& stepped, const RunResult& warped,
                       const std::string& label) {
  EXPECT_EQ(stepped.trace, warped.trace) << label << ": traces diverge";
  EXPECT_EQ(stepped.metrics, warped.metrics)
      << label << ": metrics snapshots diverge";
  EXPECT_EQ(stepped.apex, warped.apex)
      << label << ": final APEX-visible state diverges";
  EXPECT_EQ(stepped.spans, warped.spans)
      << label << ": span streams diverge";
  EXPECT_EQ(stepped.warp.warped_ticks, 0u) << label << ": baseline warped";
  EXPECT_EQ(stepped.warp.stepped_ticks,
            warped.warp.stepped_ticks + warped.warp.warped_ticks)
      << label << ": tick accounting mismatch";
}

// One sparse partition: 5 busy ticks out of every 10'000.
system::ModuleConfig idle_heavy_config() {
  system::ModuleConfig config;
  config.name = "idle_heavy";
  constexpr Ticks kMtf = 10'000;
  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.mtf = kMtf;
  system::PartitionConfig partition;
  partition.name = "sparse";
  system::ProcessConfig process;
  process.attrs.name = "beacon";
  process.attrs.period = kMtf;
  process.attrs.time_capacity = kMtf;
  process.attrs.priority = 10;
  process.attrs.script =
      pos::ScriptBuilder{}.compute(5).periodic_wait().build();
  partition.processes.push_back(std::move(process));
  config.partitions.push_back(std::move(partition));
  schedule.requirements.push_back({PartitionId{0}, kMtf, kMtf});
  schedule.windows.push_back({PartitionId{0}, 0, kMtf});
  config.schedules = {schedule};
  return config;
}

TEST(TimeWarp, IdleHeavyMissionWarpsAndMatches) {
  const Ticks span = 50'000;
  const RunResult stepped = run_mission(idle_heavy_config(), false, span);
  const RunResult warped = run_mission(idle_heavy_config(), true, span);
  expect_equivalent(stepped, warped, "idle_heavy");
  // The engine must actually engage: the mission is >99% idle.
  EXPECT_GT(warped.warp.warped_ticks,
            static_cast<std::uint64_t>(span) * 9 / 10);
  EXPECT_GT(warped.warp.warp_spans, 0u);
}

TEST(TimeWarp, Fig8MissionWithFaultAndModeSwitchMatches) {
  auto mission = [](bool warp) {
    auto config = scenarios::fig8_config();
    system::Module module(std::move(config));
    module.set_time_warp(warp);
    module.start_process_by_name(module.partition_id("AOCS"),
                                 scenarios::kFaultyProcessName);
    module.run(500);
    (void)module.apex(module.partition_id("AOCS"))
        .set_module_schedule(ScheduleId{1});
    module.run(5 * scenarios::kFig8Mtf);
    RunResult result;
    result.trace = util::to_json(module.trace());
    const telemetry::MetricsSnapshot snap = module.metrics_snapshot();
    result.metrics = telemetry::to_json(snap) + "\n" + telemetry::to_csv(snap);
    result.apex = apex_visible_state(module);
    result.spans = telemetry::spans_to_json(module.spans());
    result.warp = module.warp_stats();
    return result;
  };
  const RunResult stepped = mission(false);
  const RunResult warped = mission(true);
  expect_equivalent(stepped, warped, "fig8");
  EXPECT_GT(stepped.trace.size(), 1000u) << "the mission is non-trivial";
  // The mission produces real span traffic (windows, jobs, messages, the
  // mode-switch span and miss anomalies), all byte-identical under warp.
  EXPECT_GT(stepped.spans.size(), 1000u);
  EXPECT_NE(stepped.spans.find("\"anomalies\""), std::string::npos);
}

TEST(TimeWarp, Fig8FlightRecorderMatches) {
  auto mission = [](bool warp) {
    auto config = scenarios::fig8_config();
    config.telemetry.flight_recorder_capacity = 128;
    system::Module module(std::move(config));
    module.set_time_warp(warp);
    module.start_process_by_name(module.partition_id("AOCS"),
                                 scenarios::kFaultyProcessName);
    module.run(5 * scenarios::kFig8Mtf);
    return util::to_json(module.trace()) + "#" +
           std::to_string(module.trace().dropped_events());
  };
  EXPECT_EQ(mission(false), mission(true));
}

// Randomized missions: partitions with generated PSTs and a mix of
// periodic, timed-wait and logging processes at varying density.
system::ModuleConfig random_mission(std::uint64_t seed) {
  util::Rng rng(seed);
  system::ModuleConfig config;
  config.name = "random_" + std::to_string(seed);
  config.trace_enabled = true;

  const int nparts = static_cast<int>(rng.uniform(1, 3));
  std::vector<model::ScheduleRequirement> requirements;
  for (int i = 0; i < nparts; ++i) {
    const Ticks period = 100 << rng.uniform(0, 2);  // 100 / 200 / 400
    const Ticks duration = rng.uniform(10, period / 5);
    requirements.push_back({PartitionId{i}, period, duration});

    system::PartitionConfig partition;
    partition.name = "part" + std::to_string(i);
    const int nprocs = static_cast<int>(rng.uniform(1, 2));
    for (int p = 0; p < nprocs; ++p) {
      system::ProcessConfig process;
      process.attrs.name = "proc" + std::to_string(p);
      process.attrs.priority = 10 + p;
      pos::ScriptBuilder script;
      if (rng.chance(0.5)) {
        // Periodic worker; occasionally too slow for its deadline.
        const Ticks pperiod = period * rng.uniform(1, 4);
        process.attrs.period = pperiod;
        process.attrs.time_capacity =
            rng.chance(0.2) ? pperiod / 4 : pperiod;
        script.compute(rng.uniform(1, 12));
        if (rng.chance(0.3)) script.log("beat");
        script.periodic_wait();
      } else {
        // Delay-loop worker (timed waits exercise next_wake()).
        script.compute(rng.uniform(1, 6));
        script.timed_wait(rng.uniform(20, 600));
        if (rng.chance(0.3)) script.log("tw");
      }
      process.attrs.script = script.build();
      partition.processes.push_back(std::move(process));
    }
    config.partitions.push_back(std::move(partition));
  }

  model::GeneratorInput input;
  input.requirements = requirements;
  input.mtf = 0;  // lcm of the periods
  input.id = ScheduleId{0};
  input.name = "generated";
  auto schedule = model::generate_schedule(input);
  EXPECT_TRUE(schedule.has_value()) << "seed " << seed << " infeasible";
  config.schedules = {*schedule};
  return config;
}

TEST(TimeWarp, RandomizedMissionsAreEquivalent) {
  std::uint64_t total_warped = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Ticks span = 6'000;
    const RunResult stepped = run_mission(random_mission(seed), false, span);
    const RunResult warped = run_mission(random_mission(seed), true, span);
    expect_equivalent(stepped, warped, "seed " + std::to_string(seed));
    total_warped += warped.warp.warped_ticks;
  }
  // Across the suite the engine must have found real headroom.
  EXPECT_GT(total_warped, 0u);
}

TEST(TimeWarp, RunZeroAndRunUntilPastAreNoOps) {
  system::Module module(idle_heavy_config());
  module.run(1'000);
  const Ticks before = module.now();
  const auto stats_before = module.warp_stats();
  const std::string trace_before = util::to_json(module.trace());

  module.run(0);
  module.run(-25);
  module.run_until(before);      // "until now" does nothing
  module.run_until(before - 1);  // past target does nothing

  EXPECT_EQ(module.now(), before);
  EXPECT_EQ(module.warp_stats().stepped_ticks, stats_before.stepped_ticks);
  EXPECT_EQ(module.warp_stats().warped_ticks, stats_before.warped_ticks);
  EXPECT_EQ(util::to_json(module.trace()), trace_before);
}

TEST(TimeWarp, RunUntilDelegatesToWarpEngine) {
  system::Module warped(idle_heavy_config());
  warped.set_time_warp(true);
  warped.run_until(30'000);
  EXPECT_EQ(warped.now(), 30'000);
  EXPECT_GT(warped.warp_stats().warped_ticks, 0u);

  system::Module stepped(idle_heavy_config());
  stepped.set_time_warp(false);
  stepped.run_until(30'000);
  EXPECT_EQ(stepped.now(), 30'000);
  EXPECT_EQ(util::to_json(stepped.trace()), util::to_json(warped.trace()));
}

TEST(TimeWarp, WorldLockstepWarpMatchesStepped) {
  auto mission = [](bool warp) {
    system::World world({.slot_length = 7, .frames_per_slot = 2,
                         .propagation_delay = 3});
    auto config_a = scenarios::fig8_config();
    config_a.id = ModuleId{0};
    auto config_b = idle_heavy_config();
    config_b.id = ModuleId{1};
    system::Module& a = world.add_module(std::move(config_a));
    system::Module& b = world.add_module(std::move(config_b));
    a.set_time_warp(warp);
    b.set_time_warp(warp);
    world.run(3 * scenarios::kFig8Mtf);
    return util::to_json(a.trace()) + util::to_json(b.trace()) +
           apex_visible_state(a) + apex_visible_state(b) +
           telemetry::spans_to_json(a.spans()) +
           telemetry::spans_to_json(b.spans()) +
           telemetry::spans_to_json(world.bus_spans()) + "@" +
           std::to_string(world.now());
  };
  EXPECT_EQ(mission(false), mission(true));
}

TEST(TimeWarp, ProfilerForcesStepping) {
  auto config = idle_heavy_config();
  config.telemetry.profiler_enabled = true;
  system::Module module(std::move(config));
  module.set_time_warp(true);
  module.run(2'000);
  EXPECT_EQ(module.warp_stats().warped_ticks, 0u)
      << "per-tick host profiling must disable the warp";
}

}  // namespace
}  // namespace air
