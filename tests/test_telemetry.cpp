// Telemetry subsystem: metrics registry semantics, exporters, the module
// wiring (every layer publishes into one registry) and the tick profiler.
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "config/loader.hpp"
#include "system/module.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "util/json.hpp"

namespace air {
namespace {

using telemetry::Metric;
using telemetry::MetricKind;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;

TEST(MetricsRegistry, CountersAccumulatePerIndex) {
  MetricsRegistry registry;
  registry.add(Metric::kIpcMessages, 0);
  registry.add(Metric::kIpcMessages, 0, 2);
  registry.add(Metric::kIpcMessages, 3, 5);
  registry.add(Metric::kIpcMessages, -1);

  const MetricsSnapshot snap = registry.snapshot(42);
  EXPECT_EQ(snap.time, 42);
  EXPECT_EQ(snap.counter(Metric::kIpcMessages, 0), 3u);
  EXPECT_EQ(snap.counter(Metric::kIpcMessages, 3), 5u);
  EXPECT_EQ(snap.counter(Metric::kIpcMessages, -1), 1u);
  EXPECT_EQ(snap.counter(Metric::kIpcMessages, 1), 0u) << "untouched index";
  EXPECT_EQ(snap.find(Metric::kIpcMessages, 1), nullptr);
}

TEST(MetricsRegistry, DisabledRecordingIsANoOp) {
  MetricsRegistry registry;
  registry.enable(false);
  registry.add(Metric::kIpcMessages, 0);
  registry.set(Metric::kReadyQueueDepth, 0, 7);
  registry.observe(Metric::kDeadlineSlack, 0, 10);
  EXPECT_TRUE(registry.snapshot(0).samples.empty());
}

TEST(MetricsRegistry, GaugeTracksLastAndMax) {
  MetricsRegistry registry;
  registry.set(Metric::kReadyQueueDepth, 2, 3);
  registry.set(Metric::kReadyQueueDepth, 2, 9);
  registry.set(Metric::kReadyQueueDepth, 2, 4);

  const MetricsSnapshot snap = registry.snapshot(0);
  const auto* sample = snap.find(Metric::kReadyQueueDepth, 2);
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kGauge);
  EXPECT_EQ(sample->gauge.last, 4);
  EXPECT_EQ(sample->gauge.max, 9);
  EXPECT_EQ(sample->gauge.samples, 3u);
}

TEST(MetricsRegistry, HistogramBucketsByLog2) {
  MetricsRegistry registry;
  registry.observe(Metric::kDeadlineSlack, 0, 0);    // bucket 0 [0,0]
  registry.observe(Metric::kDeadlineSlack, 0, 1);    // bucket 1 [1,2]
  registry.observe(Metric::kDeadlineSlack, 0, 2);    // bucket 1
  registry.observe(Metric::kDeadlineSlack, 0, 3);    // bucket 2 [3,6]
  registry.observe(Metric::kDeadlineSlack, 0, 100);  // bucket 6 [63,126]
  registry.observe(Metric::kDeadlineSlack, 0, -5);   // clamped to bucket 0

  const MetricsSnapshot snap = registry.snapshot(0);
  const auto* sample = snap.find(Metric::kDeadlineSlack, 0);
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kHistogram);
  const auto& h = sample->histogram;
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.sum, 101);
  EXPECT_EQ(h.min, -5);
  EXPECT_EQ(h.max, 100);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 2u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[6], 1u);
}

TEST(MetricsRegistry, SnapshotIsOrderedByMetricThenIndex) {
  MetricsRegistry registry;
  registry.add(Metric::kIpcBytes, 2);
  registry.add(Metric::kIpcBytes, -1);
  registry.add(Metric::kPartitionBusyTicks, 1);
  registry.add(Metric::kIpcBytes, 0);

  const MetricsSnapshot snap = registry.snapshot(0);
  ASSERT_EQ(snap.samples.size(), 4u);
  EXPECT_EQ(snap.samples[0].metric, Metric::kPartitionBusyTicks);
  EXPECT_EQ(snap.samples[1].metric, Metric::kIpcBytes);
  EXPECT_EQ(snap.samples[1].index, -1);
  EXPECT_EQ(snap.samples[2].index, 0);
  EXPECT_EQ(snap.samples[3].index, 2);
}

TEST(MetricsRegistry, ClearForgetsEverything) {
  MetricsRegistry registry;
  registry.add(Metric::kIpcMessages, 0);
  registry.clear();
  EXPECT_TRUE(registry.snapshot(0).samples.empty());
}

TEST(MetricsExport, JsonParsesAndCarriesEveryKind) {
  MetricsRegistry registry;
  registry.add(Metric::kIpcMessages, 1, 7);
  registry.set(Metric::kReadyQueueDepth, 0, 5);
  registry.observe(Metric::kDeadlineSlack, 0, 12);

  const std::string json = telemetry::to_json(registry.snapshot(99));
  const auto parsed = util::json::parse(json);
  ASSERT_TRUE(parsed.ok()) << json;
  EXPECT_EQ(parsed.value->get_int("time", -1), 99);

  const auto* metrics = parsed.value->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const auto& rows = metrics->as_array();
  ASSERT_EQ(rows.size(), 3u);
  bool counter = false, gauge = false, histogram = false;
  for (const auto& row : rows) {
    const std::string kind = row.get_string("kind", "");
    if (kind == "counter") {
      counter = true;
      EXPECT_EQ(row.get_string("name", ""), "ipc.messages");
      EXPECT_EQ(row.get_int("value", -1), 7);
      EXPECT_EQ(row.get_int("index", -2), 1);
    } else if (kind == "gauge") {
      gauge = true;
      EXPECT_EQ(row.get_int("last", -1), 5);
      EXPECT_EQ(row.get_int("max", -1), 5);
    } else if (kind == "histogram") {
      histogram = true;
      EXPECT_EQ(row.get_int("count", -1), 1);
      EXPECT_EQ(row.get_int("sum", -1), 12);
      ASSERT_NE(row.find("buckets"), nullptr);
      EXPECT_EQ(row.find("buckets")->as_array().size(),
                telemetry::Histogram::kBuckets);
    }
  }
  EXPECT_TRUE(counter && gauge && histogram);
}

TEST(MetricsExport, CsvHasHeaderAndOneRowPerSample) {
  MetricsRegistry registry;
  registry.add(Metric::kIpcMessages, 1, 7);
  registry.set(Metric::kReadyQueueDepth, 0, 5);

  const std::string csv = telemetry::to_csv(registry.snapshot(0));
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "metric,index,kind,value,count,sum,min,max");
  EXPECT_NE(csv.find("ipc.messages,1,counter,7"), std::string::npos) << csv;
  EXPECT_NE(csv.find("pos.ready_queue_depth,0,gauge,5"), std::string::npos)
      << csv;
}

// --- module wiring: every layer lands in one registry ---

TEST(ModuleTelemetry, Fig8PopulatesEveryLayer) {
  system::Module module(scenarios::fig8_config());
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(5 * scenarios::kFig8Mtf);

  const MetricsSnapshot snap = module.metrics_snapshot();
  ASSERT_FALSE(snap.samples.empty());
  EXPECT_EQ(snap.time, module.now());

  // PMK: preemption points fire at window boundaries (Alg. 1), so strictly
  // fewer than once per tick; partitions were dispatched.
  EXPECT_GT(snap.counter(Metric::kSchedulePreemptionPoints, -1), 0u);
  EXPECT_LT(snap.counter(Metric::kSchedulePreemptionPoints, -1),
            static_cast<std::uint64_t>(module.now()));
  EXPECT_GT(snap.counter(Metric::kPartitionContextSwitches, 0), 0u);
  EXPECT_GT(snap.counter(Metric::kPartitionPreemptions, 0), 0u);
  EXPECT_GT(snap.counter(Metric::kPartitionBusyTicks, 0), 0u);

  // PAL: the faulty process misses deadlines; checks ran; slack histogram
  // collected samples.
  EXPECT_GT(snap.counter(Metric::kDeadlineChecks, 0), 0u);
  EXPECT_EQ(snap.counter(Metric::kDeadlineMisses, 0),
            module.pal(PartitionId{0}).violations_detected());
  EXPECT_GT(snap.counter(Metric::kDeadlineMisses, 0), 0u);
  const auto* slack = snap.find(Metric::kDeadlineSlack, 0);
  ASSERT_NE(slack, nullptr);
  EXPECT_GT(slack->histogram.count, 0u);
  const auto* lateness = snap.find(Metric::kDeadlineLateness, 0);
  ASSERT_NE(lateness, nullptr);
  EXPECT_EQ(lateness->histogram.count,
            snap.counter(Metric::kDeadlineMisses, 0));

  // POS: kernels dispatched processes.
  EXPECT_GT(snap.counter(Metric::kProcessDispatches, 0), 0u);
  EXPECT_EQ(snap.counter(Metric::kProcessDispatches, 0),
            module.kernel(PartitionId{0}).dispatch_count());

  // IPC: Fig. 8 has sampling + queuing channels with traffic.
  std::uint64_t ipc_messages = 0;
  for (const auto& sample : snap.samples) {
    if (sample.metric == Metric::kIpcMessages) ipc_messages += sample.counter;
  }
  EXPECT_GT(ipc_messages, 0u);

  // HAL: the snapshot mirrors the MMU's own accounting exactly (the Fig. 8
  // scripts issue no explicit memory-access ops, so these may be zero).
  const hal::MmuStats& mmu = module.machine().mmu().stats();
  EXPECT_EQ(snap.counter(Metric::kTlbHits, -1), mmu.tlb_hits);
  EXPECT_EQ(snap.counter(Metric::kTlbMisses, -1), mmu.tlb_misses);
  EXPECT_EQ(snap.counter(Metric::kMmuTableWalks, -1), mmu.table_walks);
  EXPECT_EQ(snap.counter(Metric::kMmuFaults, -1), mmu.faults);

  // HM: every deadline miss became an error report.
  EXPECT_EQ(snap.counter(Metric::kHmErrors, 0),
            snap.counter(Metric::kDeadlineMisses, 0));
  EXPECT_EQ(snap.counter(
                Metric::kHmErrorsByCode,
                static_cast<std::int32_t>(hm::ErrorCode::kDeadlineMissed)),
            snap.counter(Metric::kDeadlineMisses, 0));
}

TEST(ModuleTelemetry, DisabledMetricsProduceAnEmptySnapshot) {
  auto config = scenarios::fig8_config();
  config.telemetry.metrics_enabled = false;
  system::Module module(std::move(config));
  module.run(scenarios::kFig8Mtf);
  EXPECT_TRUE(module.metrics_snapshot().samples.empty());
}

TEST(ModuleTelemetry, StatusReportSummarisesMetrics) {
  system::Module module(scenarios::fig8_config());
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(5 * scenarios::kFig8Mtf);

  const std::string report = module.status_report();
  EXPECT_NE(report.find("telemetry:"), std::string::npos) << report;
  EXPECT_NE(report.find("util="), std::string::npos);
  EXPECT_NE(report.find("deadline_misses=4"), std::string::npos) << report;
  EXPECT_NE(report.find("ipc:"), std::string::npos);
}

TEST(ModuleTelemetry, ProfilerMeasuresEveryPhase) {
  auto config = scenarios::fig8_config();
  config.telemetry.profiler_enabled = true;
  config.telemetry.profiler_stride = 1;  // measure every tick
  system::Module module(std::move(config));
  module.run(2 * scenarios::kFig8Mtf);

  const telemetry::HostProfiler& profiler = module.profiler();
  EXPECT_EQ(profiler.ticks(),
            static_cast<std::uint64_t>(2 * scenarios::kFig8Mtf));
  for (auto point : {telemetry::ProfilePoint::kScheduler,
                     telemetry::ProfilePoint::kDispatcher,
                     telemetry::ProfilePoint::kRouter,
                     telemetry::ProfilePoint::kPal,
                     telemetry::ProfilePoint::kExecutor,
                     telemetry::ProfilePoint::kKernelDispatch}) {
    EXPECT_GT(profiler.point_stats(point).calls, 0u)
        << telemetry::to_string(point);
  }
  const std::string report = profiler.report();
  EXPECT_NE(report.find("scheduler"), std::string::npos) << report;
  EXPECT_NE(report.find("tick;executor"), std::string::npos) << report;
  // The kernel fast path is attributed under both PAL announce and the
  // executor's syscall return -- distinct stack paths for the same point.
  const std::string folded = profiler.folded();
  EXPECT_NE(folded.find("tick;pal;kernel_dispatch"), std::string::npos)
      << folded;
}

TEST(ModuleTelemetry, ProfilerStrideSamplesOneTickInN) {
  auto config = scenarios::fig8_config();
  config.telemetry.profiler_enabled = true;
  config.telemetry.profiler_stride = 100;
  system::Module module(std::move(config));
  module.run(1000);
  EXPECT_EQ(module.profiler().ticks(), 10u);  // ticks 0, 100, ..., 900
}

TEST(ModuleTelemetry, ProfilerIsOffByDefault) {
  system::Module module(scenarios::fig8_config());
  module.run(scenarios::kFig8Mtf);
  EXPECT_EQ(module.profiler().ticks(), 0u);
}

TEST(ConfigLoader, ParsesTelemetryBlock) {
  const char* json = R"({
    "name": "t",
    "partitions": [{"name": "P1"}],
    "schedules": [{"id": 0, "mtf": 10,
                   "windows": [{"partition": "P1", "offset": 0,
                                "duration": 10}]}],
    "telemetry": {"metrics": false, "profiler": true,
                  "profiler_stride": 4,
                  "flight_recorder_capacity": 512,
                  "flight_recorder_critical_capacity": 64}
  })";
  const auto result = config::load_module_config(json);
  ASSERT_TRUE(result.config.has_value()) << result.error;
  const auto& telemetry = result.config->telemetry;
  EXPECT_FALSE(telemetry.metrics_enabled);
  EXPECT_TRUE(telemetry.profiler_enabled);
  EXPECT_EQ(telemetry.profiler_stride, 4u);
  EXPECT_EQ(telemetry.flight_recorder_capacity, 512u);
  EXPECT_EQ(telemetry.flight_recorder_critical_capacity, 64u);
}

TEST(ConfigLoader, TelemetryDefaultsWhenAbsent) {
  const char* json = R"({
    "name": "t",
    "partitions": [{"name": "P1"}],
    "schedules": [{"id": 0, "mtf": 10,
                   "windows": [{"partition": "P1", "offset": 0,
                                "duration": 10}]}]
  })";
  const auto result = config::load_module_config(json);
  ASSERT_TRUE(result.config.has_value()) << result.error;
  EXPECT_TRUE(result.config->telemetry.metrics_enabled);
  EXPECT_FALSE(result.config->telemetry.profiler_enabled);
  EXPECT_EQ(result.config->telemetry.profiler_stride,
            telemetry::HostProfiler::kDefaultStride);
  EXPECT_EQ(result.config->telemetry.flight_recorder_capacity, 0u);
}

}  // namespace
}  // namespace air
