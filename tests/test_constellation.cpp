// Constellation-scale equivalence (DESIGN.md §13): a 1000-module switched
// mission must stay byte-identical between the per-tick lockstep reference
// and the parallel epoch driver. Fingerprinting every module would dwarf
// the flight itself, so the contract is checked on a sampled subset (every
// 97th module -- coprime with the 8-station switch size, so the sample
// crosses switch boundaries) plus the global bus statistics; any divergence
// in the unsampled modules feeds back into the bus counters and the
// sampled ring neighbours within one beacon lap.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "system/world.hpp"
#include "telemetry/export.hpp"
#include "telemetry/spans.hpp"
#include "util/trace_export.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

constexpr std::size_t kPerSwitch = 8;
constexpr int kSampleStride = 97;

// The bench_constellation satellite: one partition, one beacon process
// (write + read the sampling ring, sleep ~400 ticks), trimmed memory so a
// 1000-module world stays in the hundreds of MB.
system::ModuleConfig satellite(int id, int nmodules) {
  system::ModuleConfig config;
  config.id = ModuleId{id};
  config.name = "sat" + std::to_string(id);
  config.memory_bytes = 256u << 10;
  config.telemetry.flight_recorder_capacity = 64;
  config.telemetry.spans_capacity = 256;
  constexpr Ticks kMtf = 500;

  system::PartitionConfig partition;
  partition.name = "flight";
  partition.sampling_ports.push_back(
      {"OUT", ipc::PortDirection::kSource, 64, kInfiniteTime});
  partition.sampling_ports.push_back(
      {"IN", ipc::PortDirection::kDestination, 64, kInfiniteTime});
  system::ProcessConfig chatter;
  chatter.attrs.name = "chatter";
  chatter.attrs.priority = 20;
  chatter.attrs.script = ScriptBuilder{}
                             .sampling_write(0, "beacon")
                             .sampling_read(1)
                             .timed_wait(400)
                             .build();
  partition.processes.push_back(std::move(chatter));
  config.partitions.push_back(std::move(partition));

  ipc::ChannelConfig ring;
  ring.id = ChannelId{0};
  ring.kind = ipc::ChannelKind::kSampling;
  ring.source = {PartitionId{0}, "OUT"};
  ring.remote_destinations = {
      {ModuleId{(id + 1) % nmodules}, PartitionId{0}, "IN"}};
  config.channels.push_back(std::move(ring));

  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.mtf = kMtf;
  schedule.requirements = {{PartitionId{0}, kMtf, kMtf}};
  schedule.windows = {{PartitionId{0}, 0, kMtf}};
  config.schedules = {schedule};
  return config;
}

std::unique_ptr<system::World> build_constellation(int nmodules,
                                                   std::size_t per_switch) {
  auto world = std::make_unique<system::World>(
      net::BusConfig{.slot_length = 1,
                     .frames_per_slot = 4,
                     .propagation_delay = 2,
                     .stations_per_switch = per_switch,
                     .switch_hop_delay = 2});
  for (int m = 0; m < nmodules; ++m) {
    world->add_module(satellite(m, nmodules));
    world->bus().define_virtual_link({ModuleId{m},
                                      ModuleId{(m + 1) % nmodules},
                                      /*min_gap=*/100,
                                      /*jitter_budget=*/kInfiniteTime});
  }
  return world;
}

// Everything the equivalence contract covers, for one module: trace,
// metrics exports, span stream, APEX-visible process state, console.
std::string module_fingerprint(system::Module& module) {
  std::string out = util::to_json(module.trace());
  const telemetry::MetricsSnapshot snap = module.metrics_snapshot();
  out += telemetry::to_json(snap) + telemetry::to_csv(snap);
  out += telemetry::spans_to_json(module.spans());
  for (std::size_t p = 0; p < module.partition_count(); ++p) {
    const PartitionId id{static_cast<std::int32_t>(p)};
    auto& kernel = module.kernel(id);
    for (std::size_t q = 0; q < kernel.process_count(); ++q) {
      apex::ProcessStatus st;
      if (module.apex(id).get_process_status(
              ProcessId{static_cast<std::int32_t>(q)}, st) !=
          apex::ReturnCode::kNoError) {
        continue;
      }
      out += st.name + " state=" + std::to_string(static_cast<int>(st.state)) +
             " deadline=" + std::to_string(st.deadline_time) +
             " completions=" + std::to_string(st.completions) + "\n";
    }
    for (const std::string& line : module.console(id)) {
      out += "console: " + line + "\n";
    }
  }
  out += "now=" + std::to_string(module.now());
  return out;
}

std::string sampled_fingerprint(system::World& world, int stride) {
  std::string out;
  for (std::size_t m = 0; m < world.module_count();
       m += static_cast<std::size_t>(stride)) {
    out += "=== module " + std::to_string(m) + "\n";
    out += module_fingerprint(world.module(m));
  }
  const net::BusStats& bus = world.bus().stats();
  out += "=== bus sent=" + std::to_string(bus.frames_sent) +
         " delivered=" + std::to_string(bus.frames_delivered) +
         " dropped=" + std::to_string(bus.frames_dropped) +
         " latency=" + std::to_string(bus.total_latency) +
         " now=" + std::to_string(world.now());
  return out;
}

TEST(Constellation, SampledThousandModuleFlightIsByteIdentical) {
  constexpr int kModules = 1000;
  constexpr Ticks kSpan = 900;  // two full beacon laps

  const auto fly = [&](bool parallel) {
    auto world = build_constellation(kModules, kPerSwitch);
    if (parallel) {
      world->set_workers(4);
      world->run(kSpan);
    } else {
      world->run_lockstep(kSpan);
    }
    EXPECT_GT(world->bus().stats().frames_delivered, 1000u)
        << "the ring must actually carry beacons";
    return sampled_fingerprint(*world, kSampleStride);
  };

  const std::string lockstep = fly(false);
  const std::string pooled = fly(true);
  EXPECT_EQ(lockstep, pooled)
      << "pooled epoch driver diverges from lockstep at 1000 modules";
}

TEST(Constellation, ParallelFlight256ModulesCarriesTraffic) {
  // The TSan target (ci.yml thread-sanitizer job): a 256-module switched
  // flight on the worker pool, long enough to cross several beacon laps.
  constexpr int kModules = 256;
  auto world = build_constellation(kModules, kPerSwitch);
  world->set_workers(4);
  world->run(1300);
  EXPECT_EQ(world->now(), 1300) << "world clock sits at the next tick";
  EXPECT_EQ(world->module(0).now(), 1299) << "modules retired ticks 0..1299";
  EXPECT_GT(world->bus().stats().frames_delivered,
            static_cast<std::uint64_t>(2 * kModules))
      << "every satellite beacons at least once per ~400-tick lap";
  EXPECT_EQ(world->bus().stats().frames_dropped, 0u);
  EXPECT_EQ(world->bus().switch_count(), 32u);
}

TEST(Constellation, SwitchedTopologyYieldsLongerEpochs) {
  // The perf mechanism behind BENCH_constellation (DESIGN.md §13): at a
  // scale where the flat 2 * N-tick cycle cannot drain a beacon burst
  // between laps, the 8-station switches drain it in ~10 ticks and the
  // epoch driver warps the quiet gaps -- strictly fewer, longer epochs.
  // Both flights are deterministic, so the comparison is exact, not noisy.
  constexpr int kModules = 256;
  constexpr Ticks kSpan = 900;
  const auto epochs = [&](std::size_t per_switch) {
    auto world = build_constellation(kModules, per_switch);
    world->run(kSpan);
    return world->stats().epochs;
  };
  const std::uint64_t switched = epochs(kPerSwitch);
  const std::uint64_t flat = epochs(0);
  EXPECT_LT(switched * 4, flat)
      << "switched epochs should be >= 4x longer than flat's";
}

}  // namespace
}  // namespace air
