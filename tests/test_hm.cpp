// Health Monitor unit tests (Sect. 2.4, Sect. 5): table lookup and defaults,
// log-N-times-before-acting thresholds, error-handler-first routing for
// process-level errors, and every recovery mechanism.
#include <gtest/gtest.h>

#include "hm/health_monitor.hpp"

namespace air::hm {
namespace {

class HmTest : public ::testing::Test {
 protected:
  HmTest() {
    monitor_.stop_process = [this](PartitionId p, ProcessId pid) {
      actions_.push_back("stop_process " + std::to_string(p.value()) + "/" +
                         std::to_string(pid.value()));
    };
    monitor_.restart_process = [this](PartitionId p, ProcessId pid) {
      actions_.push_back("restart_process " + std::to_string(p.value()) +
                         "/" + std::to_string(pid.value()));
    };
    monitor_.stop_partition = [this](PartitionId p) {
      actions_.push_back("stop_partition " + std::to_string(p.value()));
    };
    monitor_.restart_partition = [this](PartitionId p, bool cold) {
      actions_.push_back((cold ? "cold_restart " : "warm_restart ") +
                         std::to_string(p.value()));
    };
    monitor_.stop_module = [this](bool reset) {
      actions_.push_back(reset ? "reset_module" : "stop_module");
    };
  }

  HealthMonitor monitor_;
  std::vector<std::string> actions_;
};

TEST_F(HmTest, DefaultProcessLevelActionStopsTheProcess) {
  const auto action =
      monitor_.report(10, ErrorCode::kNumericError, ErrorLevel::kProcess,
                      PartitionId{1}, ProcessId{2});
  EXPECT_EQ(action, RecoveryAction::kStopProcess);
  ASSERT_EQ(actions_.size(), 1u);
  EXPECT_EQ(actions_[0], "stop_process 1/2");
}

TEST_F(HmTest, ConfiguredActionOverridesTheDefault) {
  HmTable table;
  table.set(ErrorCode::kNumericError, ErrorLevel::kProcess,
            RecoveryAction::kRestartProcess);
  monitor_.set_partition_table(PartitionId{1}, table);
  monitor_.report(10, ErrorCode::kNumericError, ErrorLevel::kProcess,
                  PartitionId{1}, ProcessId{2});
  ASSERT_EQ(actions_.size(), 1u);
  EXPECT_EQ(actions_[0], "restart_process 1/2");
}

TEST_F(HmTest, PartitionLevelDefaultIsWarmRestart) {
  monitor_.report(10, ErrorCode::kMemoryViolation, ErrorLevel::kPartition,
                  PartitionId{3}, ProcessId::invalid());
  ASSERT_EQ(actions_.size(), 1u);
  EXPECT_EQ(actions_[0], "warm_restart 3");
}

TEST_F(HmTest, ModuleLevelErrorsUseTheModuleTable) {
  HmTable table;
  table.set(ErrorCode::kPowerFail, ErrorLevel::kModule,
            RecoveryAction::kResetModule);
  monitor_.set_module_table(table);
  monitor_.report(10, ErrorCode::kPowerFail, ErrorLevel::kModule,
                  PartitionId::invalid(), ProcessId::invalid());
  ASSERT_EQ(actions_.size(), 1u);
  EXPECT_EQ(actions_[0], "reset_module");
}

TEST_F(HmTest, LogThresholdDefersTheAction) {
  // "Logging the error a certain number of times before acting upon it."
  HmTable table;
  table.set(ErrorCode::kDeadlineMissed, ErrorLevel::kProcess,
            RecoveryAction::kStopProcess, /*log_threshold=*/3);
  monitor_.set_partition_table(PartitionId{0}, table);

  for (int i = 0; i < 2; ++i) {
    const auto action =
        monitor_.report(i, ErrorCode::kDeadlineMissed, ErrorLevel::kProcess,
                        PartitionId{0}, ProcessId{1});
    EXPECT_EQ(action, RecoveryAction::kIgnore);
  }
  EXPECT_TRUE(actions_.empty());
  const auto third =
      monitor_.report(2, ErrorCode::kDeadlineMissed, ErrorLevel::kProcess,
                      PartitionId{0}, ProcessId{1});
  EXPECT_EQ(third, RecoveryAction::kStopProcess);
  ASSERT_EQ(actions_.size(), 1u);
  // All three occurrences were logged.
  EXPECT_EQ(monitor_.log().size(), 3u);
  EXPECT_TRUE(monitor_.log()[0].deferred_by_threshold);
  EXPECT_FALSE(monitor_.log()[2].deferred_by_threshold);
}

TEST_F(HmTest, OccurrencesAreCountedPerPartitionAndCode) {
  monitor_.report(1, ErrorCode::kDeadlineMissed, ErrorLevel::kProcess,
                  PartitionId{0}, ProcessId{1});
  monitor_.report(2, ErrorCode::kDeadlineMissed, ErrorLevel::kProcess,
                  PartitionId{1}, ProcessId{1});
  monitor_.report(3, ErrorCode::kApplicationError, ErrorLevel::kProcess,
                  PartitionId{0}, ProcessId{1});
  EXPECT_EQ(monitor_.error_count(PartitionId{0}, ErrorCode::kDeadlineMissed),
            1u);
  EXPECT_EQ(monitor_.error_count(PartitionId{1}, ErrorCode::kDeadlineMissed),
            1u);
  EXPECT_EQ(monitor_.error_count(PartitionId{0}, ErrorCode::kApplicationError),
            1u);
  EXPECT_EQ(monitor_.error_count(PartitionId{2}, ErrorCode::kDeadlineMissed),
            0u);
}

TEST_F(HmTest, ProcessLevelErrorsGoToTheErrorHandlerFirst) {
  bool handler_called = false;
  monitor_.invoke_error_handler = [&](PartitionId, const ErrorReport& r) {
    handler_called = true;
    EXPECT_EQ(r.code, ErrorCode::kApplicationError);
    return true;  // partition has a handler
  };
  const auto action =
      monitor_.report(5, ErrorCode::kApplicationError, ErrorLevel::kProcess,
                      PartitionId{0}, ProcessId{1});
  EXPECT_TRUE(handler_called);
  EXPECT_EQ(action, RecoveryAction::kIgnore) << "handler owns recovery";
  EXPECT_TRUE(actions_.empty());
  ASSERT_EQ(monitor_.log().size(), 1u);
  EXPECT_TRUE(monitor_.log()[0].handled_by_error_handler);
}

TEST_F(HmTest, TableActsWhenNoHandlerExists) {
  monitor_.invoke_error_handler = [](PartitionId, const ErrorReport&) {
    return false;  // no handler created
  };
  monitor_.report(5, ErrorCode::kApplicationError, ErrorLevel::kProcess,
                  PartitionId{0}, ProcessId{1});
  ASSERT_EQ(actions_.size(), 1u);
  EXPECT_EQ(actions_[0], "stop_process 0/1");
}

TEST_F(HmTest, PartitionLevelErrorsBypassTheHandler) {
  bool handler_called = false;
  monitor_.invoke_error_handler = [&](PartitionId, const ErrorReport&) {
    handler_called = true;
    return true;
  };
  monitor_.report(5, ErrorCode::kMemoryViolation, ErrorLevel::kPartition,
                  PartitionId{0}, ProcessId::invalid());
  EXPECT_FALSE(handler_called);
  ASSERT_EQ(actions_.size(), 1u);
}

TEST_F(HmTest, ReportHookSeesTheFinalReport) {
  std::vector<RecoveryAction> seen;
  monitor_.on_report = [&](const ErrorReport& r) {
    seen.push_back(r.action_taken);
  };
  monitor_.report(5, ErrorCode::kNumericError, ErrorLevel::kProcess,
                  PartitionId{0}, ProcessId{1});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], RecoveryAction::kStopProcess);
}

}  // namespace
}  // namespace air::hm
