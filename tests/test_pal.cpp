// PAL tests: the deadline registries (paper's linked list and the tree
// ablation variant, run through the same parameterised suite) and the
// surrogate tick announcement with deadline verification (Algorithm 3).
#include <gtest/gtest.h>

#include <memory>

#include "pal/pal.hpp"
#include "pos/rt_kernel.hpp"
#include "util/rng.hpp"

namespace air::pal {
namespace {

// ---------- registries (parameterised over both implementations) ----------

class RegistryTest : public ::testing::TestWithParam<RegistryKind> {
 protected:
  void SetUp() override {
    switch (GetParam()) {
      case RegistryKind::kLinkedList:
        registry_ = std::make_unique<ListDeadlineRegistry>();
        break;
      case RegistryKind::kTree:
        registry_ = std::make_unique<TreeDeadlineRegistry>();
        break;
      case RegistryKind::kHeap:
        registry_ = std::make_unique<HeapDeadlineRegistry>();
        break;
    }
  }

  std::unique_ptr<IDeadlineRegistry> registry_;
};

TEST_P(RegistryTest, EarliestIsTheMinimum) {
  registry_->register_deadline(ProcessId{0}, 300);
  registry_->register_deadline(ProcessId{1}, 100);
  registry_->register_deadline(ProcessId{2}, 200);
  ASSERT_NE(registry_->earliest(), nullptr);
  EXPECT_EQ(registry_->earliest()->deadline, 100);
  EXPECT_EQ(registry_->earliest()->pid, ProcessId{1});
  EXPECT_EQ(registry_->size(), 3u);
}

TEST_P(RegistryTest, RemoveEarliestAdvances) {
  registry_->register_deadline(ProcessId{0}, 300);
  registry_->register_deadline(ProcessId{1}, 100);
  registry_->register_deadline(ProcessId{2}, 200);
  registry_->remove_earliest();
  EXPECT_EQ(registry_->earliest()->deadline, 200);
  registry_->remove_earliest();
  EXPECT_EQ(registry_->earliest()->deadline, 300);
  registry_->remove_earliest();
  EXPECT_EQ(registry_->earliest(), nullptr);
}

TEST_P(RegistryTest, ReRegisteringUpdatesAndResorts) {
  registry_->register_deadline(ProcessId{0}, 100);
  registry_->register_deadline(ProcessId{1}, 200);
  // REPLENISH moves process 0's deadline past process 1's (Fig. 6, t4).
  registry_->register_deadline(ProcessId{0}, 300);
  EXPECT_EQ(registry_->size(), 2u);
  EXPECT_EQ(registry_->earliest()->pid, ProcessId{1});
}

TEST_P(RegistryTest, UnregisterRemovesOnlyTheTarget) {
  registry_->register_deadline(ProcessId{0}, 100);
  registry_->register_deadline(ProcessId{1}, 200);
  registry_->unregister(ProcessId{0});
  EXPECT_EQ(registry_->size(), 1u);
  EXPECT_EQ(registry_->earliest()->pid, ProcessId{1});
  registry_->unregister(ProcessId{5});  // unknown pid: no-op
  EXPECT_EQ(registry_->size(), 1u);
}

TEST_P(RegistryTest, EqualDeadlinesAreAllRetrievable) {
  registry_->register_deadline(ProcessId{0}, 100);
  registry_->register_deadline(ProcessId{1}, 100);
  registry_->register_deadline(ProcessId{2}, 100);
  EXPECT_EQ(registry_->size(), 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(registry_->earliest(), nullptr);
    EXPECT_EQ(registry_->earliest()->deadline, 100);
    registry_->remove_earliest();
  }
  EXPECT_EQ(registry_->earliest(), nullptr);
}

TEST_P(RegistryTest, RandomisedAgainstReferenceModel) {
  util::Rng rng(99);
  std::map<std::int32_t, Ticks> reference;
  for (int step = 0; step < 2000; ++step) {
    const auto pid = static_cast<std::int32_t>(rng.uniform(0, 31));
    switch (rng.uniform(0, 2)) {
      case 0: {
        const Ticks deadline = rng.uniform(0, 10000);
        registry_->register_deadline(ProcessId{pid}, deadline);
        reference[pid] = deadline;
        break;
      }
      case 1:
        registry_->unregister(ProcessId{pid});
        reference.erase(pid);
        break;
      default:
        if (!reference.empty()) {
          Ticks least = kInfiniteTime;
          for (const auto& [p, d] : reference) least = std::min(least, d);
          ASSERT_NE(registry_->earliest(), nullptr);
          ASSERT_EQ(registry_->earliest()->deadline, least);
          reference.erase(registry_->earliest()->pid.value());
          registry_->remove_earliest();
        } else {
          ASSERT_EQ(registry_->earliest(), nullptr);
        }
    }
    ASSERT_EQ(registry_->size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, RegistryTest,
                         ::testing::Values(RegistryKind::kLinkedList,
                                           RegistryKind::kTree,
                                           RegistryKind::kHeap),
                         [](const auto& info) {
                           switch (info.param) {
                             case RegistryKind::kLinkedList:
                               return "LinkedList";
                             case RegistryKind::kTree:
                               return "Tree";
                             default:
                               return "Heap";
                           }
                         });

// ---------- Algorithm 3 ----------

class PalTest : public ::testing::Test {
 protected:
  PalTest() : pal_(std::make_unique<pos::RtKernel>()) {
    pal_.on_deadline_violation = [this](ProcessId pid, Ticks deadline,
                                        Ticks detected) {
      violations_.push_back({pid, deadline, detected});
    };
  }

  struct Violation {
    ProcessId pid;
    Ticks deadline;
    Ticks detected;
  };

  Pal pal_;
  std::vector<Violation> violations_;
};

TEST_F(PalTest, NoViolationWhileDeadlinesAreInTheFuture) {
  pal_.register_deadline(ProcessId{0}, 100);
  pal_.announce_ticks(50, 50);
  EXPECT_TRUE(violations_.empty());
  // Exactly at the deadline instant there is no violation yet (eq. 24 is
  // strict: D'(t) < t).
  pal_.announce_ticks(100, 50);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(PalTest, ViolationDetectedOnFirstAnnounceAfterDeadline) {
  pal_.register_deadline(ProcessId{0}, 100);
  pal_.announce_ticks(101, 101);
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].pid, ProcessId{0});
  EXPECT_EQ(violations_[0].deadline, 100);
  EXPECT_EQ(violations_[0].detected, 101);
  // The record was removed (Algorithm 3 line 7): no duplicate reports.
  pal_.announce_ticks(102, 1);
  EXPECT_EQ(violations_.size(), 1u);
}

TEST_F(PalTest, CascadedViolationsAreAllReportedInOrder) {
  // Several deadlines expired while the partition was inactive: the check
  // walks ascending deadlines until one still holds.
  pal_.register_deadline(ProcessId{0}, 10);
  pal_.register_deadline(ProcessId{1}, 20);
  pal_.register_deadline(ProcessId{2}, 30);
  pal_.register_deadline(ProcessId{3}, 500);
  pal_.announce_ticks(100, 100);
  ASSERT_EQ(violations_.size(), 3u);
  EXPECT_EQ(violations_[0].pid, ProcessId{0});
  EXPECT_EQ(violations_[1].pid, ProcessId{1});
  EXPECT_EQ(violations_[2].pid, ProcessId{2});
  EXPECT_EQ(pal_.registry().size(), 1u);
}

TEST_F(PalTest, InfiniteDeadlineIsNeverRegistered) {
  // eq. (24): D = infinity means the violation notion does not apply.
  pal_.register_deadline(ProcessId{0}, kInfiniteTime);
  EXPECT_EQ(pal_.registry().size(), 0u);
  pal_.announce_ticks(1'000'000, 1'000'000);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(PalTest, AnnounceForwardsTimeToTheKernel) {
  pal_.announce_ticks(42, 42);
  EXPECT_EQ(pal_.kernel().now(), 42);
  EXPECT_EQ(pal_.current_time(), 42);
}

TEST_F(PalTest, ChecksAreCountedForInstrumentation) {
  pal_.register_deadline(ProcessId{0}, 100);
  const auto before = pal_.deadline_checks();
  pal_.announce_ticks(10, 10);
  // One earliest-retrieval per announce in the no-violation case.
  EXPECT_EQ(pal_.deadline_checks(), before + 1);
  EXPECT_EQ(pal_.violations_detected(), 0u);
}

TEST_F(PalTest, ResetClearsDeadlinesAndProcesses) {
  pal_.register_deadline(ProcessId{0}, 100);
  pal_.reset();
  EXPECT_EQ(pal_.registry().size(), 0u);
  pal_.announce_ticks(200, 200);
  EXPECT_TRUE(violations_.empty());
}

}  // namespace
}  // namespace air::pal
