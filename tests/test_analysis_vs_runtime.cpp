// Cross-validation property: the offline schedulability analysis (E12)
// against the actual kernel.
//
// For randomly generated systems of periodic compute-only processes over
// generator-produced PSTs: whenever the MTF-aligned response-time analysis
// declares the system schedulable (with WCET = compute + 1 tick for the
// completing service call), the runtime must produce zero deadline misses
// over several hyperperiods -- i.e. the analysis is sound for the workloads
// it models.
#include <gtest/gtest.h>

#include "model/generator.hpp"
#include "model/schedulability.hpp"
#include "system/flight_validate.hpp"
#include "system/module.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

struct Generated {
  system::ModuleConfig config;
  model::SystemModel model;
  ScheduleId schedule_id{0};
};

Generated generate(std::uint64_t seed) {
  util::Rng rng(seed);
  Generated out;

  const int partitions = static_cast<int>(rng.uniform(2, 4));
  static constexpr Ticks kPeriods[] = {80, 160, 320};

  std::vector<model::ScheduleRequirement> reqs;
  double budget = 0.9;
  for (int p = 0; p < partitions; ++p) {
    const Ticks period =
        kPeriods[static_cast<std::size_t>(rng.uniform(0, 2))];
    const double share = budget / static_cast<double>(partitions - p) *
                         (0.5 + rng.uniform01() * 0.5);
    const Ticks duration = std::max<Ticks>(
        6, static_cast<Ticks>(share * static_cast<double>(period)));
    budget -= static_cast<double>(duration) / static_cast<double>(period);
    reqs.push_back({PartitionId{p}, period, duration});
  }
  model::GeneratorInput input;
  input.requirements = reqs;
  auto schedule = model::generate_schedule(input);
  AIR_ASSERT(schedule.has_value());
  out.config.schedules = {*schedule};
  out.model.schedules = {*schedule};

  for (int p = 0; p < partitions; ++p) {
    system::PartitionConfig partition;
    partition.name = "P" + std::to_string(p);
    model::PartitionModel pm;
    pm.id = PartitionId{p};
    pm.name = partition.name;

    const int processes = static_cast<int>(rng.uniform(1, 3));
    for (int q = 0; q < processes; ++q) {
      // Keep total demand loosely within the partition's supply so that a
      // fair share of seeds comes out schedulable.
      const Ticks period = reqs[static_cast<std::size_t>(p)].period *
                           rng.uniform(1, 2);
      const Ticks compute = std::max<Ticks>(
          1, reqs[static_cast<std::size_t>(p)].duration /
                 (2 * processes) +
                 rng.uniform(-2, 2));
      const Ticks capacity = period;  // implicit deadlines

      system::ProcessConfig process;
      process.attrs.name = "q" + std::to_string(q);
      process.attrs.period = period;
      process.attrs.time_capacity = capacity;
      process.attrs.priority = static_cast<Priority>(10 + q);
      process.attrs.script =
          ScriptBuilder{}.compute(compute).periodic_wait().build();
      partition.processes.push_back(std::move(process));

      // Model WCET: compute + 1 tick for the completing PERIODIC_WAIT.
      pm.processes.push_back({process.attrs.name, period, capacity,
                              static_cast<Priority>(10 + q), compute + 1,
                              true});
    }
    out.config.partitions.push_back(std::move(partition));
    out.model.partitions.push_back(std::move(pm));
  }
  hm::HmTable table;
  table.set(hm::ErrorCode::kDeadlineMissed, hm::ErrorLevel::kProcess,
            hm::RecoveryAction::kIgnore);
  out.config.module_hm_table = table;
  for (auto& p : out.config.partitions) p.hm_table = table;
  out.config.trace_enabled = true;
  return out;
}

class AnalysisVsRuntime : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisVsRuntime, SchedulableVerdictImpliesNoRuntimeMisses) {
  Generated generated = generate(GetParam());
  const auto analysis = model::analyze_system(
      generated.model, generated.schedule_id, model::Phasing::kMtfAligned);

  system::Module module(generated.config);
  module.run(20 * generated.config.schedules[0].mtf);
  const std::size_t misses =
      module.trace().count(util::EventKind::kDeadlineMiss);

  if (analysis.schedulable) {
    EXPECT_EQ(misses, 0u)
        << "seed " << GetParam()
        << ": analysis said schedulable but the runtime missed\n"
        << analysis.to_text();
  }
  // (The converse is not asserted: the analysis is allowed to be
  // conservative.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisVsRuntime,
                         ::testing::Range<std::uint64_t>(100, 140));

// The soundness property must also survive a shared world: the candidate
// module flies alongside switched-TDMA-bus chatter peers. Temporal
// isolation says network load elsewhere on the world cannot consume the
// candidate's processor windows, so the verdict stands unchanged.
TEST(AnalysisVsRuntime, SchedulableVerdictSurvivesSwitchedBusWorlds) {
  int flown = 0;
  for (std::uint64_t seed = 100; seed < 140 && flown < 4; ++seed) {
    Generated generated = generate(seed);
    const auto analysis = model::analyze_system(
        generated.model, generated.schedule_id, model::Phasing::kMtfAligned);
    if (!analysis.schedulable) continue;
    ++flown;

    model::Candidate candidate;
    candidate.id = seed;
    candidate.name = "seed-" + std::to_string(seed);
    const model::Schedule& schedule = generated.model.schedules[0];
    candidate.mtf = schedule.mtf;
    candidate.requirements = schedule.requirements;
    candidate.windows = schedule.windows;
    candidate.partitions = generated.model.partitions;

    system::FlightOptions options;
    options.mtfs = 10;
    options.switched_bus = true;
    // kPerTick maps to the lockstep world reference, kParallel to the
    // epoch driver with a worker pool -- both world drivers covered.
    for (const auto driver :
         {system::FlightDriver::kPerTick, system::FlightDriver::kParallel}) {
      EXPECT_EQ(system::fly_candidate(candidate, schedule, driver, options),
                0u)
          << "seed " << seed << " driver " << system::to_string(driver);
    }
  }
  EXPECT_GE(flown, 4) << "not enough schedulable seeds to exercise the world";
}

// Mode-based schedules (Sect. 4): if every schedule of a mode-based system
// is schedulable under Phasing::kWorstCase, then no sequence of
// SET_MODULE_SCHEDULE switches can cause a miss. Soundness argument:
// switches take effect at MTF boundaries, every process period equals its
// partition's requirement period (which divides both MTFs), and deadlines
// are implicit -- so each job's whole execution window lies inside a single
// schedule regime, where the worst-case-phase analysis already bounds it.
TEST(AnalysisVsRuntime, WorstCaseVerdictsOnAllSchedulesCoverModeSwitches) {
  system::ModuleConfig config;
  system::PartitionConfig ctrl;
  ctrl.name = "CTRL";
  ctrl.system_partition = true;
  system::PartitionConfig work1;
  work1.name = "WORK1";
  system::PartitionConfig work2;
  work2.name = "WORK2";

  model::Schedule s0;
  s0.id = ScheduleId{0};
  s0.name = "nominal";
  s0.mtf = 100;
  s0.requirements = {{PartitionId{0}, 100, 20},
                     {PartitionId{1}, 100, 40},
                     {PartitionId{2}, 100, 40}};
  s0.windows = {{PartitionId{0}, 0, 20},
                {PartitionId{1}, 20, 40},
                {PartitionId{2}, 60, 40}};

  model::Schedule s1;
  s1.id = ScheduleId{1};
  s1.name = "degraded";
  s1.mtf = 100;
  s1.requirements = {{PartitionId{0}, 100, 20},
                     {PartitionId{1}, 100, 30},
                     {PartitionId{2}, 100, 50}};
  s1.windows = {{PartitionId{0}, 0, 20},
                {PartitionId{1}, 20, 30},
                {PartitionId{2}, 50, 50}};
  config.schedules = {s0, s1};

  // The commander toggles between the schedules; it runs without a
  // deadline, so only the WORK processes can miss.
  system::ProcessConfig commander;
  commander.attrs.name = "cmd";
  commander.attrs.priority = 5;
  {
    ScriptBuilder script;
    for (int i = 0; i < 4; ++i) {
      script.set_module_schedule(1 - (i % 2)).timed_wait(400);
    }
    commander.attrs.script = script.stop_self().build();
  }
  ctrl.processes.push_back(std::move(commander));

  model::SystemModel system_model;
  system_model.schedules = config.schedules;
  system_model.partitions = {{PartitionId{0}, "CTRL", true, {}},
                             {PartitionId{1}, "WORK1", false, {}},
                             {PartitionId{2}, "WORK2", false, {}}};

  const auto add_worker = [&](system::PartitionConfig& partition,
                              model::PartitionModel& pm, const char* name,
                              Ticks wcet, Priority priority) {
    system::ProcessConfig process;
    process.attrs.name = name;
    process.attrs.period = 100;         // == requirement period, both PSTs
    process.attrs.time_capacity = 100;  // implicit deadline
    process.attrs.priority = priority;
    process.attrs.script =
        ScriptBuilder{}.compute(wcet - 1).periodic_wait().build();
    partition.processes.push_back(std::move(process));
    pm.processes.push_back({name, 100, 100, priority, wcet, true});
  };
  add_worker(work1, system_model.partitions[1], "w1a", 10, 10);
  add_worker(work1, system_model.partitions[1], "w1b", 12, 11);
  add_worker(work2, system_model.partitions[2], "w2a", 20, 10);
  add_worker(work2, system_model.partitions[2], "w2b", 10, 11);

  // Premise: schedulable on BOTH schedules under worst-case phasing.
  for (const auto id : {ScheduleId{0}, ScheduleId{1}}) {
    const auto analysis = model::analyze_system(system_model, id,
                                                model::Phasing::kWorstCase);
    ASSERT_TRUE(analysis.schedulable)
        << "schedule " << id.value() << "\n" << analysis.to_text();
  }

  config.partitions.push_back(std::move(ctrl));
  config.partitions.push_back(std::move(work1));
  config.partitions.push_back(std::move(work2));
  hm::HmTable table;
  table.set(hm::ErrorCode::kDeadlineMissed, hm::ErrorLevel::kProcess,
            hm::RecoveryAction::kIgnore);
  config.module_hm_table = table;
  for (auto& p : config.partitions) p.hm_table = table;
  config.trace_enabled = true;

  system::Module module(std::move(config));
  module.run(3000);
  EXPECT_GE(module.trace().count(util::EventKind::kScheduleSwitch), 3u)
      << "the commander's switches must actually land";
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u);
}

TEST(AnalysisVsRuntimeMeta, ThePropertyIsNotVacuous) {
  // A meaningful share of the generated seeds must actually come out
  // schedulable, otherwise the soundness property above tests nothing.
  int schedulable = 0;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    Generated generated = generate(seed);
    if (model::analyze_system(generated.model, generated.schedule_id,
                              model::Phasing::kMtfAligned)
            .schedulable) {
      ++schedulable;
    }
  }
  EXPECT_GE(schedulable, 10) << "generator tuning drifted";
}

}  // namespace
}  // namespace air
