// Cross-validation property: the offline schedulability analysis (E12)
// against the actual kernel.
//
// For randomly generated systems of periodic compute-only processes over
// generator-produced PSTs: whenever the MTF-aligned response-time analysis
// declares the system schedulable (with WCET = compute + 1 tick for the
// completing service call), the runtime must produce zero deadline misses
// over several hyperperiods -- i.e. the analysis is sound for the workloads
// it models.
#include <gtest/gtest.h>

#include "model/generator.hpp"
#include "model/schedulability.hpp"
#include "system/module.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

struct Generated {
  system::ModuleConfig config;
  model::SystemModel model;
  ScheduleId schedule_id{0};
};

Generated generate(std::uint64_t seed) {
  util::Rng rng(seed);
  Generated out;

  const int partitions = static_cast<int>(rng.uniform(2, 4));
  static constexpr Ticks kPeriods[] = {80, 160, 320};

  std::vector<model::ScheduleRequirement> reqs;
  double budget = 0.9;
  for (int p = 0; p < partitions; ++p) {
    const Ticks period =
        kPeriods[static_cast<std::size_t>(rng.uniform(0, 2))];
    const double share = budget / static_cast<double>(partitions - p) *
                         (0.5 + rng.uniform01() * 0.5);
    const Ticks duration = std::max<Ticks>(
        6, static_cast<Ticks>(share * static_cast<double>(period)));
    budget -= static_cast<double>(duration) / static_cast<double>(period);
    reqs.push_back({PartitionId{p}, period, duration});
  }
  model::GeneratorInput input;
  input.requirements = reqs;
  auto schedule = model::generate_schedule(input);
  AIR_ASSERT(schedule.has_value());
  out.config.schedules = {*schedule};
  out.model.schedules = {*schedule};

  for (int p = 0; p < partitions; ++p) {
    system::PartitionConfig partition;
    partition.name = "P" + std::to_string(p);
    model::PartitionModel pm;
    pm.id = PartitionId{p};
    pm.name = partition.name;

    const int processes = static_cast<int>(rng.uniform(1, 3));
    for (int q = 0; q < processes; ++q) {
      // Keep total demand loosely within the partition's supply so that a
      // fair share of seeds comes out schedulable.
      const Ticks period = reqs[static_cast<std::size_t>(p)].period *
                           rng.uniform(1, 2);
      const Ticks compute = std::max<Ticks>(
          1, reqs[static_cast<std::size_t>(p)].duration /
                 (2 * processes) +
                 rng.uniform(-2, 2));
      const Ticks capacity = period;  // implicit deadlines

      system::ProcessConfig process;
      process.attrs.name = "q" + std::to_string(q);
      process.attrs.period = period;
      process.attrs.time_capacity = capacity;
      process.attrs.priority = static_cast<Priority>(10 + q);
      process.attrs.script =
          ScriptBuilder{}.compute(compute).periodic_wait().build();
      partition.processes.push_back(std::move(process));

      // Model WCET: compute + 1 tick for the completing PERIODIC_WAIT.
      pm.processes.push_back({process.attrs.name, period, capacity,
                              static_cast<Priority>(10 + q), compute + 1,
                              true});
    }
    out.config.partitions.push_back(std::move(partition));
    out.model.partitions.push_back(std::move(pm));
  }
  hm::HmTable table;
  table.set(hm::ErrorCode::kDeadlineMissed, hm::ErrorLevel::kProcess,
            hm::RecoveryAction::kIgnore);
  out.config.module_hm_table = table;
  for (auto& p : out.config.partitions) p.hm_table = table;
  out.config.trace_enabled = true;
  return out;
}

class AnalysisVsRuntime : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisVsRuntime, SchedulableVerdictImpliesNoRuntimeMisses) {
  Generated generated = generate(GetParam());
  const auto analysis = model::analyze_system(
      generated.model, generated.schedule_id, model::Phasing::kMtfAligned);

  system::Module module(generated.config);
  module.run(20 * generated.config.schedules[0].mtf);
  const std::size_t misses =
      module.trace().count(util::EventKind::kDeadlineMiss);

  if (analysis.schedulable) {
    EXPECT_EQ(misses, 0u)
        << "seed " << GetParam()
        << ": analysis said schedulable but the runtime missed\n"
        << analysis.to_text();
  }
  // (The converse is not asserted: the analysis is allowed to be
  // conservative.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisVsRuntime,
                         ::testing::Range<std::uint64_t>(100, 140));

TEST(AnalysisVsRuntimeMeta, ThePropertyIsNotVacuous) {
  // A meaningful share of the generated seeds must actually come out
  // schedulable, otherwise the soundness property above tests nothing.
  int schedulable = 0;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    Generated generated = generate(seed);
    if (model::analyze_system(generated.model, generated.schedule_id,
                              model::Phasing::kMtfAligned)
            .schedulable) {
      ++schedulable;
    }
  }
  EXPECT_GE(schedulable, 10) << "generator tuning drifted";
}

}  // namespace
}  // namespace air
