// Causal span layer: taxonomy, cross-layer parenting, trace-context
// propagation across the router and the bus, root-cause chains on deadline
// misses, determinism, and the post-mortem analyzer built on top.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "config/fig8.hpp"
#include "system/module.hpp"
#include "system/world.hpp"
#include "telemetry/analysis.hpp"
#include "telemetry/export.hpp"
#include "telemetry/spans.hpp"
#include "util/trace_export.hpp"

namespace air {
namespace {

using telemetry::Span;
using telemetry::SpanKind;
using telemetry::SpanStatus;

std::vector<Span> all_spans(const telemetry::SpanRecorder& spans) {
  std::vector<Span> all(spans.closed().begin(), spans.closed().end());
  const std::vector<Span> open = spans.open_spans();
  all.insert(all.end(), open.begin(), open.end());
  return all;
}

std::vector<Span> of_kind(const telemetry::SpanRecorder& spans,
                          SpanKind kind) {
  std::vector<Span> out;
  for (const Span& span : all_spans(spans)) {
    if (span.kind == kind) out.push_back(span);
  }
  return out;
}

const Span* by_id(const std::vector<Span>& spans, telemetry::SpanId id) {
  for (const Span& span : spans) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

// The Sect. 6 mission: faulty process on P1, mode switch at t=500.
system::Module& fig8_mission(system::Module& module) {
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(500);
  (void)module.apex(module.partition_id("AOCS"))
      .set_module_schedule(ScheduleId{1});
  module.run(5 * scenarios::kFig8Mtf);
  return module;
}

TEST(Spans, WindowsJobsAndMessagesFormACausalTree) {
  system::Module module(scenarios::fig8_config());
  fig8_mission(module);
  const auto& spans = module.spans();
  const std::vector<Span> all = all_spans(spans);

  // Every taxonomy member the single-module mission can produce shows up.
  EXPECT_FALSE(of_kind(spans, SpanKind::kPartitionWindow).empty());
  EXPECT_FALSE(of_kind(spans, SpanKind::kJob).empty());
  EXPECT_FALSE(of_kind(spans, SpanKind::kMsgSend).empty());
  EXPECT_FALSE(of_kind(spans, SpanKind::kMsgRouterHop).empty());
  EXPECT_FALSE(of_kind(spans, SpanKind::kMsgReceive).empty());
  EXPECT_FALSE(of_kind(spans, SpanKind::kHmHandler).empty());
  EXPECT_FALSE(of_kind(spans, SpanKind::kScheduleSwitch).empty());

  // Jobs parent to the partition window they were released in.
  std::size_t parented_jobs = 0;
  for (const Span& job : of_kind(spans, SpanKind::kJob)) {
    if (job.parent == 0) continue;
    const Span* window = by_id(all, job.parent);
    ASSERT_NE(window, nullptr) << "job parent evicted or bogus";
    EXPECT_EQ(window->kind, SpanKind::kPartitionWindow);
    EXPECT_EQ(window->a, job.a) << "parent window belongs to the partition";
    ++parented_jobs;
  }
  EXPECT_GT(parented_jobs, 0u);

  // Message legs form flows: every receive shares its trace id with a send,
  // and the send is the flow root (trace_id == its own id).
  std::set<std::uint64_t> send_flows;
  for (const Span& send : of_kind(spans, SpanKind::kMsgSend)) {
    EXPECT_EQ(send.trace_id, send.id);
    send_flows.insert(send.trace_id);
  }
  const std::vector<Span> receives = of_kind(spans, SpanKind::kMsgReceive);
  EXPECT_FALSE(receives.empty());
  for (const Span& receive : receives) {
    EXPECT_TRUE(send_flows.count(receive.trace_id))
        << "receive leg without a send root";
  }

  // The schedule switch span runs from the APEX request to the MTF boundary
  // where the scheduler honoured it.
  const std::vector<Span> switches =
      of_kind(spans, SpanKind::kScheduleSwitch);
  ASSERT_EQ(switches.size(), 1u);
  EXPECT_EQ(switches[0].a, 1) << "switched to chi_2";
  EXPECT_EQ(switches[0].b, 0);
  EXPECT_EQ(switches[0].start, 499) << "requested at now() after run(500)";
  EXPECT_EQ(switches[0].end, scenarios::kFig8Mtf) << "took effect at the MTF";
  EXPECT_EQ(switches[0].status, SpanStatus::kOk);
}

TEST(Spans, DeadlineMissRetiresJobAndParentsHmHandler) {
  system::Module module(scenarios::fig8_config());
  fig8_mission(module);
  const auto& spans = module.spans();
  const std::vector<Span> all = all_spans(spans);

  std::size_t missed_jobs = 0;
  for (const Span& job : of_kind(spans, SpanKind::kJob)) {
    if (job.status != SpanStatus::kDeadlineMiss) continue;
    ++missed_jobs;
    // Algorithm 3 detects at a clock announce after the deadline passed.
    EXPECT_GE(job.end, job.c) << "retired at detection, not before";
    // The HM handler invocation for this miss is parented on the job.
    bool handled = false;
    for (const Span& handler : of_kind(spans, SpanKind::kHmHandler)) {
      if (handler.parent == job.id) handled = true;
    }
    EXPECT_TRUE(handled) << "miss at " << job.end << " has no HM span";
  }
  EXPECT_GT(missed_jobs, 0u);
  EXPECT_EQ(spans.anomalies().size(), missed_jobs)
      << "every miss carries an anomaly record";
  (void)all;
}

TEST(Spans, EveryMissCarriesARootCauseChain) {
  system::Module module(scenarios::fig8_config());
  fig8_mission(module);
  const auto& anomalies = module.spans().anomalies();
  ASSERT_FALSE(anomalies.empty());
  for (const telemetry::Anomaly& anomaly : anomalies) {
    ASSERT_GE(anomaly.chain.size(), 3u);
    EXPECT_EQ(anomaly.chain[0].what, "deadline_miss");
    EXPECT_EQ(anomaly.chain[1].what, "job_released");
    // The faulty process misses across a window boundary, so the chain
    // names the preemption; misses inside a window blame the overrun.
    const std::string cause = anomaly.chain[2].what.str();
    EXPECT_TRUE(cause == "window_end_preemption" ||
                cause == "capacity_overrun")
        << cause;
  }
  // The first miss happens while chi_1 -> chi_2 takes effect: its chain
  // walks all the way back to the SET_MODULE_SCHEDULE request.
  bool blames_switch = false;
  for (const telemetry::CauseLink& link : anomalies.front().chain) {
    if (link.what == "requested_by") blames_switch = true;
  }
  EXPECT_TRUE(blames_switch);
}

TEST(Spans, ExportIsDeterministicAcrossRuns) {
  auto fly = [] {
    system::Module module(scenarios::fig8_config());
    fig8_mission(module);
    return telemetry::spans_to_json(module.spans());
  };
  const std::string first = fly();
  EXPECT_EQ(first, fly());
  EXPECT_NE(first.find("\"anomalies\""), std::string::npos);
}

TEST(Spans, DisabledRecorderCostsNothingAndRecordsNothing) {
  auto config = scenarios::fig8_config();
  config.telemetry.spans_enabled = false;
  system::Module module(std::move(config));
  fig8_mission(module);
  EXPECT_EQ(module.spans().recorded_spans(), 0u);
  EXPECT_EQ(module.spans().open_count(), 0u);
  EXPECT_TRUE(module.spans().anomalies().empty());
  // The mission itself is unaffected: the faulty process still misses.
  EXPECT_GT(module.trace().count(util::EventKind::kDeadlineMiss), 0u);
}

TEST(Spans, TraceContextCrossesTheBusAsOneFlow) {
  // Module 0's queuing channel fans out to module 1 over the TDMA bus.
  system::ModuleConfig sender = scenarios::fig8_config();
  sender.id = ModuleId{0};
  for (ipc::ChannelConfig& channel : sender.channels) {
    if (channel.kind == ipc::ChannelKind::kQueuing) {
      channel.remote_destinations.push_back(
          {ModuleId{1}, PartitionId{0}, "SCI_IN"});
    }
  }
  system::ModuleConfig receiver;
  receiver.id = ModuleId{1};
  receiver.name = "ground";
  system::PartitionConfig ground;
  ground.name = "GROUND";
  ground.queuing_ports.push_back(
      {"SCI_IN", ipc::PortDirection::kDestination, 64, 16});
  system::ProcessConfig archiver;
  archiver.attrs.name = "archiver";
  archiver.attrs.priority = 10;
  archiver.attrs.script =
      pos::ScriptBuilder{}.queuing_receive(0).log("archived").build();
  ground.processes.push_back(std::move(archiver));
  receiver.partitions.push_back(std::move(ground));
  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.mtf = scenarios::kFig8Mtf;
  schedule.requirements = {
      {PartitionId{0}, scenarios::kFig8Mtf, scenarios::kFig8Mtf}};
  schedule.windows = {{PartitionId{0}, 0, scenarios::kFig8Mtf}};
  receiver.schedules = {schedule};

  system::World world(
      {.slot_length = 10, .frames_per_slot = 2, .propagation_delay = 2});
  system::Module& m0 = world.add_module(std::move(sender));
  system::Module& m1 = world.add_module(std::move(receiver));
  world.run(3 * scenarios::kFig8Mtf);

  // Pick a science frame the ground module actually received and follow its
  // flow backwards: receive (module 1) -> remote-arrival router hop
  // (module 1) -> bus transit (bus recorder) -> send (module 0), all under
  // one trace id.
  const std::vector<Span> receives = of_kind(m1.spans(), SpanKind::kMsgReceive);
  ASSERT_FALSE(receives.empty()) << "no frame crossed the bus";
  const Span& receive = receives.front();
  ASSERT_NE(receive.trace_id, 0u);

  const std::vector<Span> hops = of_kind(m1.spans(), SpanKind::kMsgRouterHop);
  const Span* arrival = by_id(hops, receive.parent);
  ASSERT_NE(arrival, nullptr) << "receive does not parent on an arrival hop";
  EXPECT_EQ(arrival->a, -1) << "remote arrivals have no local channel";
  EXPECT_EQ(arrival->trace_id, receive.trace_id);

  const std::vector<Span> transits =
      of_kind(world.bus_spans(), SpanKind::kMsgBusTransit);
  const Span* transit = by_id(transits, arrival->parent);
  ASSERT_NE(transit, nullptr) << "arrival does not parent on a bus transit";
  EXPECT_EQ(transit->trace_id, receive.trace_id);
  EXPECT_EQ(transit->a, 0) << "sent by module 0";
  EXPECT_EQ(transit->b, 1) << "addressed to module 1";
  EXPECT_EQ(transit->status, SpanStatus::kOk);
  EXPECT_GT(transit->end, transit->start) << "bus latency is visible";

  const std::vector<Span> sends = of_kind(m0.spans(), SpanKind::kMsgSend);
  const Span* send = by_id(sends, receive.trace_id);
  ASSERT_NE(send, nullptr) << "flow root is the APEX send";
  EXPECT_EQ(send->trace_id, receive.trace_id);

  // Ids are namespaced by origin: three recorders, no collisions.
  EXPECT_EQ(send->id >> 32, 1u);
  EXPECT_EQ(receive.id >> 32, 2u);
  EXPECT_EQ(transit->id >> 32,
            static_cast<std::uint64_t>(
                telemetry::SpanRecorder::kBusOrigin) + 1);

  // The analyzer stitches the same story offline.
  telemetry::AnalysisInput input;
  std::string error;
  ASSERT_TRUE(input.add_module("m0", util::to_json(m0.trace()),
                               telemetry::to_json(m0.metrics_snapshot()),
                               telemetry::spans_to_json(m0.spans()), &error))
      << error;
  ASSERT_TRUE(input.add_module("m1", util::to_json(m1.trace()),
                               telemetry::to_json(m1.metrics_snapshot()),
                               telemetry::spans_to_json(m1.spans()), &error))
      << error;
  ASSERT_TRUE(
      input.set_bus_spans(telemetry::spans_to_json(world.bus_spans()), &error))
      << error;
  const telemetry::AnalysisResult result = telemetry::analyze(input);
  EXPECT_GT(result.cross_module_flows, 0);
  EXPECT_EQ(result.broken_flows, 0);
  EXPECT_NE(result.chrome_trace.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(result.chrome_trace.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(result.report.find("cross-module"), std::string::npos);
}

TEST(Spans, AnalyzerGatesOnMissesAndRendersChains) {
  system::Module module(scenarios::fig8_config());
  fig8_mission(module);
  telemetry::AnalysisInput input;
  std::string error;
  ASSERT_TRUE(input.add_module(
      "fig8", util::to_json(module.trace()),
      telemetry::to_json(module.metrics_snapshot()),
      telemetry::spans_to_json(module.spans()), &error))
      << error;
  const telemetry::AnalysisResult result = telemetry::analyze(input);
  EXPECT_GT(result.total_misses, 0);
  EXPECT_EQ(result.unchained_misses, 0)
      << "every miss beyond the first must carry a chain";
  for (const telemetry::MissSummary& miss : result.misses) {
    EXPECT_TRUE(miss.chained);
  }
  EXPECT_NE(result.report.find("deadline_miss"), std::string::npos);
  EXPECT_NE(result.report.find("window_end_preemption"), std::string::npos);
  EXPECT_NE(result.chrome_trace.find("\"ph\": \"X\""), std::string::npos);

  // Malformed input is reported, not crashed on.
  telemetry::AnalysisInput bad;
  EXPECT_FALSE(bad.add_module("x", "{not json", "", "", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace air
