// APEX communication services: intrapartition buffers, blackboards,
// semaphores and events (blocking with timeouts), and interpartition
// sampling/queuing ports end to end through workload scripts.
#include <gtest/gtest.h>

#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

system::ModuleConfig one_partition() {
  system::ModuleConfig config;
  system::PartitionConfig p;
  p.name = "MAIN";
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  return config;
}

system::ProcessConfig proc(std::string name, pos::Script script,
                           Priority priority = 10) {
  system::ProcessConfig pc;
  pc.attrs.name = std::move(name);
  pc.attrs.script = std::move(script);
  pc.attrs.priority = priority;
  return pc;
}

// ---------- buffers ----------

TEST(ApexBuffers, ProducerConsumerThroughABuffer) {
  auto config = one_partition();
  config.partitions[0].buffers.push_back({"queue", 32, 2});
  config.partitions[0].processes.push_back(proc(
      "consumer",
      ScriptBuilder{}.buffer_receive(0).log("got one").build(), 10));
  config.partitions[0].processes.push_back(proc(
      "producer",
      ScriptBuilder{}.buffer_send(0, "item").timed_wait(3).build(), 20));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(10);
  // Producer sends at t=0,3,6,9 (the send is instantaneous, the wait is 3
  // ticks); the consumer drains each one.
  EXPECT_EQ(module.console(main).size(), 4u);
}

TEST(ApexBuffers, ReceiveTimesOutOnEmptyBuffer) {
  auto config = one_partition();
  config.partitions[0].buffers.push_back({"queue", 32, 2});
  config.partitions[0].processes.push_back(proc(
      "consumer", ScriptBuilder{}
                      .buffer_receive(0, /*timeout=*/4)
                      .log("woken")
                      .stop_self()
                      .build()));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(3);
  EXPECT_TRUE(module.console(main).empty()) << "still waiting";
  module.run(4);
  // Woken exactly when the 4-tick timeout expired -- the TIMED_OUT path let
  // the script continue.
  ASSERT_EQ(module.console(main).size(), 1u);
}

TEST(ApexBuffers, SendBlocksOnFullBufferUntilDrained) {
  auto config = one_partition();
  config.partitions[0].buffers.push_back({"queue", 32, 1});
  // The producer fills the 1-slot buffer and blocks on the second send; the
  // slow consumer frees the slot at t=5.
  config.partitions[0].processes.push_back(proc(
      "producer", ScriptBuilder{}
                      .buffer_send(0, "m1")
                      .buffer_send(0, "m2")
                      .log("both sent")
                      .stop_self()
                      .build(),
      10));
  config.partitions[0].processes.push_back(proc(
      "consumer", ScriptBuilder{}
                      .timed_wait(5)
                      .buffer_receive(0)
                      .stop_self()
                      .build(),
      20));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(4);
  EXPECT_TRUE(module.console(main).empty()) << "still blocked";
  module.run(4);
  EXPECT_EQ(module.console(main).size(), 1u);
}

// ---------- blackboards ----------

TEST(ApexBlackboards, ReadersBlockUntilDisplay) {
  auto config = one_partition();
  config.partitions[0].blackboards.push_back({"status", 32});
  config.partitions[0].processes.push_back(proc(
      "reader1",
      ScriptBuilder{}.blackboard_read(0).log("r1").stop_self().build(), 10));
  config.partitions[0].processes.push_back(proc(
      "reader2",
      ScriptBuilder{}.blackboard_read(0).log("r2").stop_self().build(), 11));
  config.partitions[0].processes.push_back(proc(
      "writer", ScriptBuilder{}
                    .timed_wait(3)
                    .blackboard_display(0, "ready")
                    .stop_self()
                    .build(),
      20));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(2);
  EXPECT_TRUE(module.console(main).empty());
  module.run(4);
  // DISPLAY wakes *all* readers.
  EXPECT_EQ(module.console(main).size(), 2u);
}

// ---------- semaphores ----------

TEST(ApexSemaphores, MutualExclusionSerialisesCriticalSections) {
  auto config = one_partition();
  config.partitions[0].semaphores.push_back({"mutex", 1, 1});
  for (int i = 0; i < 2; ++i) {
    config.partitions[0].processes.push_back(proc(
        "worker" + std::to_string(i),
        ScriptBuilder{}
            .sem_wait(0)
            .log("enter " + std::to_string(i))
            .compute(3)
            .log("exit " + std::to_string(i))
            .sem_signal(0)
            .stop_self()
            .build(),
        10 + i));
  }
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(10);
  const auto& console = module.console(main);
  ASSERT_EQ(console.size(), 4u);
  // Never interleaved: enter i is immediately followed by exit i.
  EXPECT_EQ(console[0].substr(0, 5), "enter");
  EXPECT_EQ(console[1].substr(0, 4), "exit");
  EXPECT_EQ(console[0].back(), console[1].back());
  EXPECT_EQ(console[2].back(), console[3].back());
}

TEST(ApexSemaphores, WaitTimesOutWhenNeverSignalled) {
  auto config = one_partition();
  config.partitions[0].semaphores.push_back({"empty", 0, 1});
  config.partitions[0].processes.push_back(proc(
      "waiter",
      ScriptBuilder{}.sem_wait(0, 5).log("timed out").stop_self().build()));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(8);
  ASSERT_EQ(module.console(main).size(), 1u);
}

// ---------- events ----------

TEST(ApexEvents, SetWakesAllWaiters) {
  auto config = one_partition();
  config.partitions[0].events.push_back({"go"});
  for (int i = 0; i < 3; ++i) {
    config.partitions[0].processes.push_back(proc(
        "w" + std::to_string(i),
        ScriptBuilder{}.event_wait(0).log("woke").stop_self().build(),
        10 + i));
  }
  config.partitions[0].processes.push_back(proc(
      "setter",
      ScriptBuilder{}.timed_wait(2).event_set(0).stop_self().build(), 30));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(6);
  EXPECT_EQ(module.console(main).size(), 3u);
}

TEST(ApexEvents, WaitOnAnUpEventReturnsImmediately) {
  auto config = one_partition();
  config.partitions[0].events.push_back({"go"});
  config.partitions[0].processes.push_back(proc(
      "p", ScriptBuilder{}
               .event_set(0)
               .event_wait(0)
               .log("instant")
               .stop_self()
               .build()));
  system::Module module(std::move(config));
  module.run(2);
  EXPECT_EQ(module.console(module.partition_id("MAIN")).size(), 1u);
}

// ---------- interpartition queuing, blocking both ways ----------

system::ModuleConfig two_partitions_with_channel(std::size_t dest_capacity) {
  system::ModuleConfig config;
  system::PartitionConfig a;
  a.name = "A";
  a.queuing_ports.push_back(
      {"OUT", ipc::PortDirection::kSource, 32, 2});
  system::PartitionConfig b;
  b.name = "B";
  b.queuing_ports.push_back(
      {"IN", ipc::PortDirection::kDestination, 32, dest_capacity});
  config.partitions.push_back(std::move(a));
  config.partitions.push_back(std::move(b));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 20;
  s.requirements = {{PartitionId{0}, 20, 10}, {PartitionId{1}, 20, 10}};
  s.windows = {{PartitionId{0}, 0, 10}, {PartitionId{1}, 10, 10}};
  config.schedules = {s};
  ipc::ChannelConfig channel;
  channel.id = ChannelId{0};
  channel.kind = ipc::ChannelKind::kQueuing;
  channel.source = {PartitionId{0}, "OUT"};
  channel.local_destinations = {{PartitionId{1}, "IN"}};
  config.channels.push_back(channel);
  return config;
}

TEST(ApexQueuing, ReceiverBlocksUntilMessageCrossesPartitions) {
  auto config = two_partitions_with_channel(4);
  config.partitions[0].processes.push_back(proc(
      "sender", ScriptBuilder{}
                    .timed_wait(22)
                    .queuing_send(0, "ping")
                    .stop_self()
                    .build()));
  config.partitions[1].processes.push_back(proc(
      "receiver",
      ScriptBuilder{}.queuing_receive(0).log("pong").stop_self().build()));
  system::Module module(std::move(config));
  const PartitionId b = module.partition_id("B");
  module.run(20);
  EXPECT_TRUE(module.console(b).empty());
  module.run(30);
  ASSERT_EQ(module.console(b).size(), 1u);
}

TEST(ApexQueuing, SenderBlocksWhenDestinationIsSaturated) {
  // Destination holds 1 message; the receiver never drains. The sender's
  // source queue holds 2; sends 1..3 succeed (1 delivered, 2 queued at the
  // source), the 4th blocks forever.
  auto config = two_partitions_with_channel(1);
  config.partitions[0].processes.push_back(proc(
      "sender", ScriptBuilder{}
                    .queuing_send(0, "m1")
                    .queuing_send(0, "m2")
                    .queuing_send(0, "m3")
                    .log("three sent")
                    .queuing_send(0, "m4")
                    .log("four sent")
                    .stop_self()
                    .build()));
  config.partitions[1].processes.push_back(
      proc("idle", ScriptBuilder{}.compute(1000).build()));
  system::Module module(std::move(config));
  const PartitionId a = module.partition_id("A");
  module.run(100);
  const auto& console = module.console(a);
  ASSERT_EQ(console.size(), 1u);
  EXPECT_EQ(console[0], "three sent");
  ProcessId sender;
  ASSERT_EQ(module.apex(a).get_process_id("sender", sender),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(module.kernel(a).pcb(sender)->state,
            pos::ProcessState::kWaiting);
}

TEST(ApexQueuing, SendWithZeroTimeoutReturnsNotAvailable) {
  auto config = two_partitions_with_channel(1);
  config.partitions[0].processes.push_back(proc(
      "sender", ScriptBuilder{}
                    .queuing_send(0, "m1", 0)
                    .queuing_send(0, "m2", 0)
                    .queuing_send(0, "m3", 0)
                    .queuing_send(0, "m4", 0)
                    .log("done")
                    .stop_self()
                    .build()));
  system::Module module(std::move(config));
  const PartitionId a = module.partition_id("A");
  module.run(30);
  ASSERT_EQ(module.console(a).size(), 1u);
  ProcessId sender;
  ASSERT_EQ(module.apex(a).get_process_id("sender", sender),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(module.kernel(a).pcb(sender)->last_status,
            static_cast<std::int32_t>(apex::ReturnCode::kNoError))
      << "stop_self was the last service";
}

// ---------- sampling freshness ----------

TEST(ApexSampling, StaleDataIsFlaggedInvalid) {
  system::ModuleConfig config;
  system::PartitionConfig a;
  a.name = "A";
  a.sampling_ports.push_back(
      {"OUT", ipc::PortDirection::kSource, 32, kInfiniteTime});
  system::PartitionConfig b;
  b.name = "B";
  b.sampling_ports.push_back(
      {"IN", ipc::PortDirection::kDestination, 32, /*refresh=*/15});
  config.partitions.push_back(std::move(a));
  config.partitions.push_back(std::move(b));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 20;
  s.requirements = {{PartitionId{0}, 20, 10}, {PartitionId{1}, 20, 10}};
  s.windows = {{PartitionId{0}, 0, 10}, {PartitionId{1}, 10, 10}};
  config.schedules = {s};
  ipc::ChannelConfig channel;
  channel.id = ChannelId{0};
  channel.kind = ipc::ChannelKind::kSampling;
  channel.source = {PartitionId{0}, "OUT"};
  channel.local_destinations = {{PartitionId{1}, "IN"}};
  config.channels.push_back(channel);

  // A writes once at t=0 and then stops; B reads every cycle.
  config.partitions[0].processes.push_back(proc(
      "writer",
      ScriptBuilder{}.sampling_write(0, "fresh").stop_self().build()));
  config.partitions[1].processes.push_back(proc(
      "reader", ScriptBuilder{}.sampling_read(0).timed_wait(19).build()));
  system::Module module(std::move(config));
  module.run(60);

  // Port-receive trace carries validity in `c`: first read (t=10, age 10)
  // valid; later reads (age >= 30) stale.
  const auto reads = module.trace().filtered(util::EventKind::kPortReceive);
  ASSERT_GE(reads.size(), 2u);
  EXPECT_EQ(reads[0].c, 1);
  EXPECT_EQ(reads[1].c, 0);
}

}  // namespace
}  // namespace air
