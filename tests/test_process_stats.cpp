// Per-activation response-time statistics exposed via GET_PROCESS_STATUS --
// the paper's diagnostics motivation made quantitative ("almost immediate
// insight on possible underdimensioning of the execution time").
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "system/module.hpp"

namespace air {
namespace {

TEST(ProcessStats, HealthyPeriodicProcessAccumulatesStats) {
  scenarios::Fig8Options options;
  options.with_faulty_process = false;
  system::Module module(scenarios::fig8_config(options));
  const PartitionId p1 = module.partition_id("AOCS");
  const Ticks mtfs = 10;
  module.run(mtfs * scenarios::kFig8Mtf);

  ProcessId control;
  ASSERT_EQ(module.apex(p1).get_process_id("p1_control", control),
            apex::ReturnCode::kNoError);
  apex::ProcessStatus status;
  ASSERT_EQ(module.apex(p1).get_process_status(control, status),
            apex::ReturnCode::kNoError);

  // One activation per MTF; the last one completed inside the final MTF.
  EXPECT_GE(status.completions, static_cast<std::uint64_t>(mtfs - 1));
  // p1_control computes 60 ticks from its release at the window start and
  // completes (PERIODIC_WAIT) at release + 60.
  EXPECT_EQ(status.max_response, 60);
  EXPECT_NEAR(status.mean_response, 60.0, 1.0);
  EXPECT_EQ(status.deadline_misses, 0u);
}

TEST(ProcessStats, FaultyProcessShowsMissesAndInflatedResponse) {
  system::Module module(scenarios::fig8_config());
  const PartitionId p1 = module.partition_id("AOCS");
  module.start_process_by_name(p1, scenarios::kFaultyProcessName);
  module.run(10 * scenarios::kFig8Mtf);

  ProcessId faulty;
  ASSERT_EQ(module.apex(p1).get_process_id(scenarios::kFaultyProcessName,
                                           faulty),
            apex::ReturnCode::kNoError);
  apex::ProcessStatus status;
  ASSERT_EQ(module.apex(p1).get_process_status(faulty, status),
            apex::ReturnCode::kNoError);

  EXPECT_EQ(status.deadline_misses, 9u) << "one per MTF from the second on";
  // Each activation only completes in the *next* MTF's window: response far
  // beyond the 205-tick capacity -- exactly the underdimensioning signal.
  EXPECT_GT(status.max_response, 1000);
  EXPECT_GT(status.mean_response, 1000.0);
}

TEST(ProcessStats, IdleProcessHasNoStats) {
  scenarios::Fig8Options options;
  options.with_faulty_process = true;
  system::Module module(scenarios::fig8_config(options));
  const PartitionId p1 = module.partition_id("AOCS");
  module.run(scenarios::kFig8Mtf);
  ProcessId faulty;  // never started
  ASSERT_EQ(module.apex(p1).get_process_id(scenarios::kFaultyProcessName,
                                           faulty),
            apex::ReturnCode::kNoError);
  apex::ProcessStatus status;
  ASSERT_EQ(module.apex(p1).get_process_status(faulty, status),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(status.completions, 0u);
  EXPECT_EQ(status.deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(status.mean_response, 0.0);
}

}  // namespace
}  // namespace air
