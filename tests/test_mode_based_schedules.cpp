// E4 extensions: mode-based schedules (Sect. 4) -- ScheduleChangeActions
// applied on first dispatch after the switch, script-driven switching via
// the APEX service, and schedule status reporting.
#include <gtest/gtest.h>

#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

/// Two partitions, two schedules with different window orders; P0 is a
/// system partition.
system::ModuleConfig two_schedule_config() {
  system::ModuleConfig config;
  system::PartitionConfig a;
  a.name = "CTRL";
  a.system_partition = true;
  system::PartitionConfig b;
  b.name = "WORK";
  config.partitions.push_back(std::move(a));
  config.partitions.push_back(std::move(b));

  model::Schedule s0;
  s0.id = ScheduleId{0};
  s0.name = "nominal";
  s0.mtf = 100;
  s0.requirements = {{PartitionId{0}, 100, 40}, {PartitionId{1}, 100, 60}};
  s0.windows = {{PartitionId{0}, 0, 40}, {PartitionId{1}, 40, 60}};

  model::Schedule s1;
  s1.id = ScheduleId{1};
  s1.name = "degraded";
  s1.mtf = 100;
  s1.requirements = {{PartitionId{0}, 100, 70}, {PartitionId{1}, 100, 30}};
  s1.windows = {{PartitionId{0}, 0, 70}, {PartitionId{1}, 70, 30}};

  config.schedules = {s0, s1};
  return config;
}

TEST(ModeBasedSchedules, ChangeActionRestartsThePartitionOnFirstDispatch) {
  auto config = two_schedule_config();
  config.change_actions[{ScheduleId{1}, PartitionId{1}}] =
      pmk::ScheduleChangeAction::kColdRestart;
  // WORK logs once at start and then just computes; a restart logs again.
  system::ProcessConfig worker;
  worker.attrs.name = "w";
  worker.attrs.priority = 10;
  worker.attrs.script = ScriptBuilder{}.log("boot").compute(100000).build();
  config.partitions[1].processes.push_back(std::move(worker));

  system::Module module(std::move(config));
  const PartitionId ctrl = module.partition_id("CTRL");
  const PartitionId work = module.partition_id("WORK");

  module.run(50);
  ASSERT_EQ(module.console(work).size(), 1u);

  ASSERT_EQ(module.apex(ctrl).set_module_schedule(ScheduleId{1}),
            apex::ReturnCode::kNoError);
  // Switch lands at t=100; WORK's first window under the new PST opens at
  // t=170 -- that dispatch applies the pending action (Algorithm 2 line 9).
  module.run(130);
  const auto actions =
      module.trace().filtered(util::EventKind::kScheduleChangeAction);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].a, work.value());
  EXPECT_EQ(actions[0].time, 170) << "first dispatch under the new PST";
  // ...and the partition re-booted.
  EXPECT_EQ(module.console(work).size(), 2u);

  // CTRL had no change action: untouched.
  for (const auto& e : actions) EXPECT_NE(e.a, ctrl.value());
}

TEST(ModeBasedSchedules, NoActionMeansNoRestart) {
  auto config = two_schedule_config();
  system::ProcessConfig worker;
  worker.attrs.name = "w";
  worker.attrs.priority = 10;
  worker.attrs.script = ScriptBuilder{}.log("boot").compute(100000).build();
  config.partitions[1].processes.push_back(std::move(worker));
  system::Module module(std::move(config));
  const PartitionId ctrl = module.partition_id("CTRL");
  module.run(10);
  ASSERT_EQ(module.apex(ctrl).set_module_schedule(ScheduleId{1}),
            apex::ReturnCode::kNoError);
  module.run(300);
  EXPECT_EQ(module.trace().count(util::EventKind::kScheduleChangeAction), 0u);
  EXPECT_EQ(module.console(module.partition_id("WORK")).size(), 1u);
}

TEST(ModeBasedSchedules, ScriptDrivenSwitchThroughApex) {
  auto config = two_schedule_config();
  // CTRL's process requests the degraded schedule at runtime.
  system::ProcessConfig commander;
  commander.attrs.name = "cmd";
  commander.attrs.priority = 10;
  commander.attrs.script = ScriptBuilder{}
                               .timed_wait(120)
                               .set_module_schedule(1)
                               .stop_self()
                               .build();
  config.partitions[0].processes.push_back(std::move(commander));
  system::Module module(std::move(config));

  module.run(250);
  const auto switches =
      module.trace().filtered(util::EventKind::kScheduleSwitch);
  ASSERT_EQ(switches.size(), 1u);
  EXPECT_EQ(switches[0].time, 200) << "end of the MTF containing the request";
  EXPECT_EQ(switches[0].a, 1);
  EXPECT_EQ(switches[0].b, 0);
}

TEST(ModeBasedSchedules, UnauthorisedScriptSwitchIsRefused) {
  auto config = two_schedule_config();
  system::ProcessConfig rogue;
  rogue.attrs.name = "rogue";
  rogue.attrs.priority = 10;
  rogue.attrs.script =
      ScriptBuilder{}.set_module_schedule(1).stop_self().build();
  config.partitions[1].processes.push_back(std::move(rogue));  // WORK: not system
  system::Module module(std::move(config));
  module.run(250);
  EXPECT_EQ(module.trace().count(util::EventKind::kScheduleSwitch), 0u);
  ProcessId pid;
  const PartitionId work = module.partition_id("WORK");
  ASSERT_EQ(module.apex(work).get_process_id("rogue", pid),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(module.kernel(work).pcb(pid)->last_status,
            static_cast<std::int32_t>(apex::ReturnCode::kNoError))
      << "stop_self came after";
  const auto requests =
      module.trace().filtered(util::EventKind::kScheduleSwitchReq);
  ASSERT_EQ(requests.size(), 1u) << "the request was made and refused";
}

TEST(ModeBasedSchedules, StatusReportsPendingAndEffectiveSwitches) {
  auto config = two_schedule_config();
  system::Module module(std::move(config));
  const PartitionId ctrl = module.partition_id("CTRL");
  auto& apex = module.apex(ctrl);

  auto status = apex.get_module_schedule_status();
  EXPECT_EQ(status.current_schedule, ScheduleId{0});
  EXPECT_EQ(status.next_schedule, ScheduleId{0});
  EXPECT_EQ(status.last_switch_time, 0);

  module.run(30);
  ASSERT_EQ(apex.set_module_schedule(ScheduleId{1}),
            apex::ReturnCode::kNoError);
  status = apex.get_module_schedule_status();
  EXPECT_EQ(status.current_schedule, ScheduleId{0});
  EXPECT_EQ(status.next_schedule, ScheduleId{1}) << "pending";

  module.run(100);
  status = apex.get_module_schedule_status();
  EXPECT_EQ(status.current_schedule, ScheduleId{1});
  EXPECT_EQ(status.next_schedule, ScheduleId{1});
  EXPECT_EQ(status.last_switch_time, 100);
}

TEST(ModeBasedSchedules, SwitchToUnknownScheduleIsInvalidParam) {
  system::Module module(two_schedule_config());
  EXPECT_EQ(module.apex(module.partition_id("CTRL"))
                .set_module_schedule(ScheduleId{9}),
            apex::ReturnCode::kInvalidParam);
}

}  // namespace
}  // namespace air
