// E3: process deadline violation monitoring (Sect. 5 / Sect. 6).
//
// With the faulty process injected on P1, its deadline violation "is
// detected and reported every time (except the first) that P1 is scheduled
// and dispatched to execute": one violation per MTF, detected inside P1's
// execution window, starting from P1's second window -- and no other process
// ever misses a deadline.
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "system/module.hpp"

namespace air {
namespace {

using scenarios::fig8_config;
using scenarios::kFaultyProcessName;
using scenarios::kFig8Mtf;

TEST(FaultInjection, FaultyProcessMissesOncePerMtfInsideP1Window) {
  system::Module module(fig8_config());
  const PartitionId p1 = module.partition_id("AOCS");

  ASSERT_TRUE(module.start_process_by_name(p1, kFaultyProcessName));
  const Ticks mtfs = 10;
  module.run(mtfs * kFig8Mtf);

  const auto misses = module.trace().filtered(util::EventKind::kDeadlineMiss);
  ProcessId faulty;
  ASSERT_EQ(module.apex(p1).get_process_id(kFaultyProcessName, faulty),
            apex::ReturnCode::kNoError);

  // Every miss belongs to the faulty process on P1.
  for (const auto& e : misses) {
    EXPECT_EQ(e.a, p1.value());
    EXPECT_EQ(e.b, faulty.value());
  }

  // Exactly one miss per MTF from the second MTF on (none in the first:
  // the deadline expires while P1 is inactive and detection happens on
  // P1's next dispatch).
  ASSERT_EQ(misses.size(), static_cast<std::size_t>(mtfs - 1));
  for (std::size_t k = 0; k < misses.size(); ++k) {
    const Ticks t = misses[k].time;
    const Ticks mtf_index = t / kFig8Mtf;
    EXPECT_EQ(mtf_index, static_cast<Ticks>(k + 1))
        << "miss " << k << " at tick " << t;
    // Detected inside P1's window [mtf_index*MTF, mtf_index*MTF + 200).
    EXPECT_LT(t % kFig8Mtf, 200) << "miss " << k << " at tick " << t;
  }
}

TEST(FaultInjection, FirstDetectionHappensOnP1SecondDispatch) {
  system::Module module(fig8_config());
  const PartitionId p1 = module.partition_id("AOCS");
  ASSERT_TRUE(module.start_process_by_name(p1, kFaultyProcessName));

  module.run(kFig8Mtf);  // first whole MTF: deadline (205) already expired...
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u)
      << "violation must not be detected while P1 is inactive";

  module.run(1);  // ...but detection waits for P1's next dispatch
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 1u);
}

TEST(FaultInjection, DetectionLatencyIsTimeToNextWindow) {
  // The deadline expires at t=205 (P1 inactive); the PAL can only verify
  // deadlines when its partition is announced the clock, i.e. at the start
  // of P1's next window (t=1300). Detection latency is therefore 1095
  // ticks -- optimal under TSP, since P1 had no earlier processor access.
  system::Module module(fig8_config());
  const PartitionId p1 = module.partition_id("AOCS");
  ASSERT_TRUE(module.start_process_by_name(p1, kFaultyProcessName));
  module.run(2 * kFig8Mtf);

  const auto misses = module.trace().filtered(util::EventKind::kDeadlineMiss);
  ASSERT_FALSE(misses.empty());
  EXPECT_EQ(misses[0].time, kFig8Mtf);  // first tick of P1's second window
  EXPECT_EQ(misses[0].c, 205);          // the missed deadline itself
}

TEST(FaultInjection, HmLogsTheViolationsWithIgnoreAction) {
  system::Module module(fig8_config());
  const PartitionId p1 = module.partition_id("AOCS");
  ASSERT_TRUE(module.start_process_by_name(p1, kFaultyProcessName));
  module.run(5 * kFig8Mtf);

  const auto& log = module.health().log();
  ASSERT_FALSE(log.empty());
  for (const auto& report : log) {
    EXPECT_EQ(report.code, hm::ErrorCode::kDeadlineMissed);
    EXPECT_EQ(report.level, hm::ErrorLevel::kProcess);
    EXPECT_EQ(report.partition, p1);
    EXPECT_EQ(report.action_taken, hm::RecoveryAction::kIgnore);
  }
}

TEST(FaultInjection, ScheduleSwitchesIntroduceNoExtraViolations) {
  // Sect. 6: "Successive requests to change schedule are correctly handled
  // at the end of the current MTF and do not introduce deadline violations
  // other than the one injected".
  system::Module module(fig8_config());
  const PartitionId p1 = module.partition_id("AOCS");
  ASSERT_TRUE(module.start_process_by_name(p1, kFaultyProcessName));

  ProcessId faulty;
  ASSERT_EQ(module.apex(p1).get_process_id(kFaultyProcessName, faulty),
            apex::ReturnCode::kNoError);

  const Ticks mtfs = 12;
  for (Ticks k = 0; k < mtfs; ++k) {
    // Alternate schedules every MTF, requesting mid-frame.
    module.run(kFig8Mtf / 2);
    ASSERT_EQ(module.apex(p1).set_module_schedule(ScheduleId{k % 2 == 0 ? 1
                                                                        : 0}),
              apex::ReturnCode::kNoError);
    module.run(kFig8Mtf - kFig8Mtf / 2);
  }

  // The k-th request lands at the end of MTF k; the last one would only
  // take effect one tick after the run, hence mtfs - 1 switches.
  EXPECT_EQ(module.trace().count(util::EventKind::kScheduleSwitch),
            static_cast<std::size_t>(mtfs - 1));
  const auto misses = module.trace().filtered(util::EventKind::kDeadlineMiss);
  for (const auto& e : misses) {
    EXPECT_EQ(e.b, faulty.value()) << "only the injected fault may miss";
  }
  EXPECT_EQ(misses.size(), static_cast<std::size_t>(mtfs - 1));
}

}  // namespace
}  // namespace air
