// Determinism: the whole stack is wall-clock-free, so identical
// configurations must replay bit-for-bit -- the property every experiment
// in EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "system/module.hpp"
#include "system/world.hpp"
#include "telemetry/export.hpp"
#include "util/trace_export.hpp"

namespace air {
namespace {

TEST(Determinism, Fig8RunsReplayIdentically) {
  auto run_once = [] {
    system::Module module(scenarios::fig8_config());
    module.start_process_by_name(module.partition_id("AOCS"),
                                 scenarios::kFaultyProcessName);
    module.run(500);
    (void)module.apex(module.partition_id("AOCS"))
        .set_module_schedule(ScheduleId{1});
    module.run(5 * scenarios::kFig8Mtf);
    return util::to_json(module.trace());
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.size(), 1000u) << "the trace is non-trivial";
}

TEST(Determinism, MetricsSnapshotsReplayByteIdentically) {
  auto run_once = [] {
    system::Module module(scenarios::fig8_config());
    module.start_process_by_name(module.partition_id("AOCS"),
                                 scenarios::kFaultyProcessName);
    module.run(500);
    (void)module.apex(module.partition_id("AOCS"))
        .set_module_schedule(ScheduleId{1});
    module.run(5 * scenarios::kFig8Mtf);
    const telemetry::MetricsSnapshot snapshot = module.metrics_snapshot();
    return telemetry::to_json(snapshot) + "\n" + telemetry::to_csv(snapshot);
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.size(), 1000u) << "the snapshot is non-trivial";
}

TEST(Determinism, FlightRecorderModeReplaysIdentically) {
  auto run_once = [] {
    auto config = scenarios::fig8_config();
    config.telemetry.flight_recorder_capacity = 128;
    system::Module module(std::move(config));
    module.start_process_by_name(module.partition_id("AOCS"),
                                 scenarios::kFaultyProcessName);
    module.run(5 * scenarios::kFig8Mtf);
    return util::to_json(module.trace()) + "#" +
           std::to_string(module.trace().dropped_events());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, MultiModuleWorldReplaysIdentically) {
  auto run_once = [] {
    system::World world({.slot_length = 7, .frames_per_slot = 2,
                         .propagation_delay = 3});
    // Two Fig. 8 modules talking over nothing (no remote channels) still
    // exercises lockstep; determinism must hold regardless.
    auto config_a = scenarios::fig8_config();
    config_a.id = ModuleId{0};
    auto config_b = scenarios::fig8_config();
    config_b.id = ModuleId{1};
    system::Module& a = world.add_module(std::move(config_a));
    system::Module& b = world.add_module(std::move(config_b));
    b.start_process_by_name(b.partition_id("AOCS"),
                            scenarios::kFaultyProcessName);
    world.run(3000);
    return util::to_json(a.trace()) + util::to_json(b.trace());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace air
