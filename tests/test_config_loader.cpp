// JSON integration-file loader tests: full round trip into a running
// module, name resolution, op table coverage, and error reporting.
#include <gtest/gtest.h>

#include "config/loader.hpp"
#include "system/module.hpp"

namespace air {
namespace {

constexpr const char* kMinimal = R"({
  "name": "minimal",
  "partitions": [
    { "name": "MAIN",
      "processes": [
        { "name": "p", "priority": 10,
          "script": [ { "op": "compute", "ticks": 3 },
                      { "op": "log", "text": "hello" },
                      { "op": "stop_self" } ] } ] }
  ],
  "schedules": [
    { "id": 0, "mtf": 10,
      "requirements": [ { "partition": "MAIN", "period": 10, "duration": 10 } ],
      "windows": [ { "partition": "MAIN", "offset": 0, "duration": 10 } ] }
  ]
})";

TEST(ConfigLoader, MinimalConfigBootsAndRuns) {
  const auto result = config::load_module_config(kMinimal);
  ASSERT_TRUE(result.ok()) << result.error;
  system::Module module(*result.config);
  module.run(10);
  const auto& console = module.console(module.partition_id("MAIN"));
  ASSERT_EQ(console.size(), 1u);
  EXPECT_EQ(console[0], "hello");
}

TEST(ConfigLoader, FullFeaturedConfigParses) {
  const auto result = config::load_module_config(R"({
    "name": "full",
    "memory_bytes": 8388608,
    "initial_schedule": 0,
    "partitions": [
      { "name": "SYS", "system": true, "pos": "rt", "registry": "tree",
        "sampling_ports": [
          { "name": "OUT", "direction": "source", "max_bytes": 32 } ],
        "queuing_ports": [
          { "name": "QOUT", "direction": "source", "capacity": 4 } ],
        "buffers": [ { "name": "buf", "capacity": 2 } ],
        "blackboards": [ { "name": "bb" } ],
        "semaphores": [ { "name": "sem", "initial": 0, "maximum": 3 } ],
        "events": [ { "name": "ev" } ],
        "error_handler": [ { "op": "log", "text": "err" },
                           { "op": "stop_self" } ],
        "hm_table": [ { "error": "deadline_missed", "level": "process",
                        "action": "ignore" } ],
        "processes": [
          { "name": "main", "period": 100, "time_capacity": 50,
            "priority": 5, "auto_start": true,
            "script": [ { "op": "periodic_wait" } ] } ] },
      { "name": "GEN", "pos": "generic",
        "sampling_ports": [
          { "name": "IN", "direction": "destination", "refresh": 200 } ],
        "queuing_ports": [
          { "name": "QIN", "direction": "destination" } ],
        "processes": [
          { "name": "bg", "priority": 50,
            "script": [ { "op": "compute", "ticks": 5 },
                        { "op": "try_disable_clock_irq" } ] } ] }
    ],
    "schedules": [
      { "id": 0, "name": "nominal", "mtf": 100,
        "requirements": [
          { "partition": "SYS", "period": 100, "duration": 50 },
          { "partition": "GEN", "period": 100, "duration": 50 } ],
        "windows": [
          { "partition": "SYS", "offset": 0, "duration": 50 },
          { "partition": "GEN", "offset": 50, "duration": 50 } ],
        "change_actions": [
          { "partition": "GEN", "action": "cold_restart" } ] }
    ],
    "channels": [
      { "kind": "sampling",
        "source": { "partition": "SYS", "port": "OUT" },
        "destinations": [ { "partition": "GEN", "port": "IN" } ] },
      { "kind": "queuing",
        "source": { "partition": "SYS", "port": "QOUT" },
        "destinations": [ { "partition": "GEN", "port": "QIN" },
                          { "module": 1, "partition_id": 0, "port": "R" } ] }
    ],
    "module_hm_table": [
      { "error": "power_fail", "level": "module", "action": "stop_module" } ]
  })");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& config = *result.config;
  EXPECT_EQ(config.partitions.size(), 2u);
  EXPECT_TRUE(config.partitions[0].system_partition);
  EXPECT_EQ(config.partitions[0].deadline_registry, pal::RegistryKind::kTree);
  EXPECT_EQ(config.partitions[1].pos_kind, "generic");
  EXPECT_EQ(config.partitions[0].error_handler.size(), 2u);
  ASSERT_EQ(config.channels.size(), 2u);
  EXPECT_EQ(config.channels[1].remote_destinations.size(), 1u);
  ASSERT_EQ(config.change_actions.size(), 1u);
  EXPECT_EQ(
      (config.change_actions.at({ScheduleId{0}, PartitionId{1}})),
      pmk::ScheduleChangeAction::kColdRestart);

  // And the whole thing boots.
  system::Module module(config);
  module.run(200);
  EXPECT_GT(module.trace().count(util::EventKind::kClockParavirtTrap), 0u);
}

TEST(ConfigLoader, UnknownPartitionNameIsAnError) {
  const auto result = config::load_module_config(R"({
    "partitions": [ { "name": "A" } ],
    "schedules": [
      { "id": 0, "mtf": 10,
        "requirements": [ { "partition": "NOPE", "period": 10, "duration": 5 } ],
        "windows": [] } ]
  })");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("NOPE"), std::string::npos);
}

TEST(ConfigLoader, UnknownOpIsAnError) {
  const auto result = config::load_module_config(R"({
    "partitions": [ { "name": "A", "processes": [
      { "name": "p", "script": [ { "op": "warp_drive" } ] } ] } ],
    "schedules": [ { "id": 0, "mtf": 10,
      "requirements": [ { "partition": "A", "period": 10, "duration": 10 } ],
      "windows": [ { "partition": "A", "offset": 0, "duration": 10 } ] } ]
  })");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("warp_drive"), std::string::npos);
}

TEST(ConfigLoader, SyntaxErrorsCarryPosition) {
  const auto result = config::load_module_config("{ \"partitions\": [ }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("parse error"), std::string::npos);
}

TEST(ConfigLoader, NegativeTimesMeanInfinite) {
  const auto result = config::load_module_config(R"({
    "partitions": [ { "name": "A", "processes": [
      { "name": "p", "period": -1, "time_capacity": -1,
        "script": [ { "op": "suspend_self", "timeout": -1 } ] } ] } ],
    "schedules": [ { "id": 0, "mtf": 10,
      "requirements": [ { "partition": "A", "period": 10, "duration": 10 } ],
      "windows": [ { "partition": "A", "offset": 0, "duration": 10 } ] } ]
  })");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& attrs = result.config->partitions[0].processes[0].attrs;
  EXPECT_EQ(attrs.period, kInfiniteTime);
  EXPECT_EQ(attrs.time_capacity, kInfiniteTime);
}

TEST(ConfigLoader, NetworkConfigParsesTopologyAndVirtualLinks) {
  const auto result = config::load_network_config(R"({
    "network": {
      "slot_length": 2, "frames_per_slot": 4, "propagation_delay": 6,
      "stations_per_switch": 32, "switch_hop_delay": 3,
      "virtual_links": [
        { "source": 0, "dest": 1, "min_gap": 100, "jitter_budget": 50 },
        { "source": 1, "dest": 0 }
      ] }
  })");
  ASSERT_TRUE(result.ok()) << result.error;
  const config::NetworkConfig& net = *result.config;
  EXPECT_EQ(net.bus.slot_length, 2);
  EXPECT_EQ(net.bus.frames_per_slot, 4u);
  EXPECT_EQ(net.bus.propagation_delay, 6);
  EXPECT_EQ(net.bus.stations_per_switch, 32u);
  EXPECT_EQ(net.bus.switch_hop_delay, 3);
  ASSERT_EQ(net.virtual_links.size(), 2u);
  EXPECT_EQ(net.virtual_links[0].source, ModuleId{0});
  EXPECT_EQ(net.virtual_links[0].dest, ModuleId{1});
  EXPECT_EQ(net.virtual_links[0].min_gap, 100);
  EXPECT_EQ(net.virtual_links[0].jitter_budget, 50);
  EXPECT_EQ(net.virtual_links[1].min_gap, 0) << "defaults apply";
  EXPECT_EQ(net.virtual_links[1].jitter_budget, kInfiniteTime);
}

TEST(ConfigLoader, NetworkConfigDefaultsToFlatBroadcast) {
  // Top-level form (no "network" wrapper), everything defaulted.
  const auto result = config::load_network_config("{}");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.config->bus.stations_per_switch, 0u);
  EXPECT_TRUE(result.config->virtual_links.empty());
}

TEST(ConfigLoader, NetworkConfigRejectsBadGeometry) {
  const auto zero_slot =
      config::load_network_config(R"({ "slot_length": 0 })");
  ASSERT_FALSE(zero_slot.ok());
  EXPECT_NE(zero_slot.error.find("slot_length"), std::string::npos);

  const auto bad_vl = config::load_network_config(
      R"({ "virtual_links": [ { "source": 0 } ] })");
  ASSERT_FALSE(bad_vl.ok());
  EXPECT_NE(bad_vl.error.find("dest"), std::string::npos);
}

TEST(ConfigLoader, InvalidScheduleIsCaughtAtModuleConstruction) {
  const auto result = config::load_module_config(R"({
    "partitions": [ { "name": "A" } ],
    "schedules": [ { "id": 0, "mtf": 10,
      "requirements": [ { "partition": "A", "period": 10, "duration": 8 } ],
      "windows": [ { "partition": "A", "offset": 0, "duration": 4 } ] } ]
  })");
  ASSERT_TRUE(result.ok()) << result.error;  // syntactically fine
  EXPECT_THROW(system::Module{*result.config}, std::invalid_argument)
      << "eq. (23) violation: cycle gets 4 < 8";
}

}  // namespace
}  // namespace air
