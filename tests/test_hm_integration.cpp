// Health Monitoring end to end: application error handler processes,
// HM-driven process/partition recovery, log thresholds, and module stop --
// fault containment per Sect. 2.4/5.
#include <gtest/gtest.h>

#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

system::ModuleConfig base_config() {
  system::ModuleConfig config;
  system::PartitionConfig p;
  p.name = "MAIN";
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  return config;
}

system::ProcessConfig proc(std::string name, pos::Script script,
                           Priority priority = 10) {
  system::ProcessConfig pc;
  pc.attrs.name = std::move(name);
  pc.attrs.script = std::move(script);
  pc.attrs.priority = priority;
  return pc;
}

TEST(HmIntegration, ErrorHandlerProcessHandlesApplicationErrors) {
  auto config = base_config();
  // The faulty process raises an application error every cycle; the error
  // handler stops it (a Sect. 5 recovery action executed by application
  // code).
  config.partitions[0].processes.push_back(proc(
      "flaky", ScriptBuilder{}
                   .compute(2)
                   .raise_error(42, "sensor glitch")
                   .timed_wait(5)
                   .build()));
  config.partitions[0].error_handler = ScriptBuilder{}
                                           .log("handler: stopping flaky")
                                           .stop_process("flaky")
                                           .stop_self()
                                           .build();
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(20);

  ASSERT_EQ(module.console(main).size(), 1u);
  ProcessId flaky;
  ASSERT_EQ(module.apex(main).get_process_id("flaky", flaky),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(module.kernel(main).pcb(flaky)->state,
            pos::ProcessState::kDormant);
  // The HM log shows the error as handled by the application handler.
  ASSERT_FALSE(module.health().log().empty());
  EXPECT_TRUE(module.health().log()[0].handled_by_error_handler);
}

TEST(HmIntegration, ErrorHandlerRunsAtHighestPriority) {
  auto config = base_config();
  config.partitions[0].processes.push_back(
      proc("hog", ScriptBuilder{}
                      .raise_error(1, "x")
                      .compute(1000)
                      .build(),
           /*priority=*/1));  // tries to outrank everyone
  config.partitions[0].error_handler =
      ScriptBuilder{}.log("handler ran").stop_self().build();
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(3);
  EXPECT_EQ(module.console(main).size(), 1u)
      << "handler (priority 0) preempts the hog (priority 1)";
}

TEST(HmIntegration, WithoutHandlerTheTableStopsTheProcess) {
  auto config = base_config();
  config.partitions[0].processes.push_back(proc(
      "flaky",
      ScriptBuilder{}.raise_error(7, "boom").compute(100).build()));
  // Default process-level action: stop the faulty process.
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(5);
  ProcessId flaky;
  ASSERT_EQ(module.apex(main).get_process_id("flaky", flaky),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(module.kernel(main).pcb(flaky)->state,
            pos::ProcessState::kDormant);
}

TEST(HmIntegration, RestartProcessActionRestartsIt) {
  auto config = base_config();
  config.partitions[0].hm_table.set(hm::ErrorCode::kApplicationError,
                                    hm::ErrorLevel::kProcess,
                                    hm::RecoveryAction::kRestartProcess);
  config.partitions[0].processes.push_back(proc(
      "phoenix", ScriptBuilder{}
                     .log("alive")
                     .raise_error(1, "dies")
                     .compute(100)
                     .build()));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(6);
  // Restarted from the entry address on every error: multiple "alive" logs.
  EXPECT_GE(module.console(main).size(), 2u);
}

TEST(HmIntegration, PartitionRestartActionReinitialisesThePartition) {
  auto config = base_config();
  config.partitions[0].hm_table.set(hm::ErrorCode::kApplicationError,
                                    hm::ErrorLevel::kProcess,
                                    hm::RecoveryAction::kWarmRestartPartition);
  config.partitions[0].processes.push_back(proc(
      "boot_logger", ScriptBuilder{}
                         .log("partition up")
                         .timed_wait(100)
                         .build(),
      5));
  config.partitions[0].processes.push_back(proc(
      "suicidal", ScriptBuilder{}
                      .timed_wait(3)
                      .raise_error(9, "fatal")
                      .compute(100)
                      .build(),
      10));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  // The error fires at t=3 and restarts the partition; stop before the
  // restarted suicidal process errs again at t=6.
  module.run(5);
  // Boot log from the initial start and again after the HM-driven restart.
  EXPECT_EQ(module.console(main).size(), 2u);
  const auto modes =
      module.trace().filtered(util::EventKind::kPartitionModeChange);
  bool warm_restart_seen = false;
  for (const auto& e : modes) {
    if (e.b == static_cast<std::int64_t>(pmk::OperatingMode::kWarmStart)) {
      warm_restart_seen = true;
    }
  }
  EXPECT_TRUE(warm_restart_seen);
}

TEST(HmIntegration, StopModuleActionHaltsEverything) {
  auto config = base_config();
  config.partitions[0].hm_table.set(hm::ErrorCode::kApplicationError,
                                    hm::ErrorLevel::kProcess,
                                    hm::RecoveryAction::kStopModule);
  config.partitions[0].processes.push_back(proc(
      "killer",
      ScriptBuilder{}.timed_wait(4).raise_error(1, "halt").build()));
  system::Module module(std::move(config));
  module.run(20);
  EXPECT_TRUE(module.stopped());
  EXPECT_EQ(module.now(), 4) << "halted at the error instant";
  const Ticks frozen = module.now();
  module.run(10);
  EXPECT_EQ(module.now(), frozen) << "a stopped module does not advance";
}

TEST(HmIntegration, LogThresholdDefersPartitionRestart) {
  auto config = base_config();
  config.partitions[0].hm_table.set(hm::ErrorCode::kApplicationError,
                                    hm::ErrorLevel::kProcess,
                                    hm::RecoveryAction::kWarmRestartPartition,
                                    /*log_threshold=*/3);
  config.partitions[0].processes.push_back(proc(
      "flaky", ScriptBuilder{}
                   .log("boot")
                   .raise_error(5, "err")
                   .timed_wait(2)
                   .jump(1)  // keep erroring without re-logging boot
                   .build()));
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(6);
  // Errors at t=0 and t=2 are logged only; the third (t=4) crosses the
  // threshold and warm-restarts the partition. The restarted process boots
  // (second console line) and its first error of the new life is deferred
  // again, because the restart cleared the occurrence history.
  EXPECT_EQ(module.console(main).size(), 2u);
  const auto& log = module.health().log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_TRUE(log[0].deferred_by_threshold);
  EXPECT_TRUE(log[1].deferred_by_threshold);
  EXPECT_FALSE(log[2].deferred_by_threshold);
  EXPECT_EQ(log[2].action_taken, hm::RecoveryAction::kWarmRestartPartition);
  EXPECT_TRUE(log[3].deferred_by_threshold) << "fresh life, fresh counting";
}

TEST(HmIntegration, UnconfiguredPartitionErrorEscalatesToModuleLevel) {
  auto config = base_config();
  config.partitions[0].processes.push_back(
      proc("idle", ScriptBuilder{}.timed_wait(100).build()));
  // Module-level routing exists for the code, partition-level does not:
  // per the ARINC 653 HM dispatch the error exceeds the partition policy
  // and must be decided by the module table.
  config.module_hm_table.set(hm::ErrorCode::kConfigError,
                             hm::ErrorLevel::kModule,
                             hm::RecoveryAction::kStopModule);
  system::Module module(std::move(config));
  module.run(3);
  module.health().report(module.now(), hm::ErrorCode::kConfigError,
                         hm::ErrorLevel::kPartition, PartitionId{0},
                         ProcessId::invalid(), "unroutable partition error");
  const auto& log = module.health().log();
  ASSERT_FALSE(log.empty());
  const hm::ErrorReport& report = log.back();
  EXPECT_TRUE(report.escalated);
  EXPECT_EQ(report.level, hm::ErrorLevel::kModule)
      << "the report carries the level the error was handled at";
  EXPECT_EQ(report.action_taken, hm::RecoveryAction::kStopModule);
  EXPECT_TRUE(module.stopped());
}

TEST(HmIntegration, ConfiguredPartitionErrorStaysAtPartitionLevel) {
  auto config = base_config();
  config.partitions[0].processes.push_back(
      proc("boot_logger",
           ScriptBuilder{}.log("partition up").timed_wait(100).build()));
  // An explicit partition-level response suppresses the escalation.
  config.partitions[0].hm_table.set(hm::ErrorCode::kConfigError,
                                    hm::ErrorLevel::kPartition,
                                    hm::RecoveryAction::kWarmRestartPartition);
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(3);
  module.health().report(module.now(), hm::ErrorCode::kConfigError,
                         hm::ErrorLevel::kPartition, main,
                         ProcessId::invalid(), "contained partition error");
  const auto& log = module.health().log();
  ASSERT_FALSE(log.empty());
  EXPECT_FALSE(log.back().escalated);
  EXPECT_EQ(log.back().level, hm::ErrorLevel::kPartition);
  EXPECT_EQ(log.back().action_taken,
            hm::RecoveryAction::kWarmRestartPartition);
  EXPECT_FALSE(module.stopped());
  module.run(3);
  EXPECT_EQ(module.console(main).size(), 2u)
      << "partition restarted (boot log of the new life), module survived";
}

}  // namespace
}  // namespace air
