// E1: the Fig. 8 prototype system.
//
// Both PSTs validate against eqs. (20)-(23); the runtime execution trace
// matches the Gantt of Fig. 8 exactly (who holds the processor when); the
// healthy system runs with zero deadline violations.
#include <gtest/gtest.h>

#include "config/fig8.hpp"
#include "model/validation.hpp"
#include "system/module.hpp"

namespace air {
namespace {

using scenarios::fig8_chi1;
using scenarios::fig8_chi2;
using scenarios::fig8_config;
using scenarios::kFig8Mtf;

TEST(Fig8, BothSchedulesSatisfyTheModelEquations) {
  const auto r1 = model::validate_schedule(fig8_chi1());
  EXPECT_TRUE(r1.ok()) << r1.to_text();
  const auto r2 = model::validate_schedule(fig8_chi2());
  EXPECT_TRUE(r2.ok()) << r2.to_text();

  // chi_2's P2 window [400,1000) crosses the 650 cycle boundary -- legal,
  // flagged as a warning (see DESIGN.md).
  EXPECT_TRUE(r2.has_warning(model::ViolationKind::kWindowCrossesCycle));
}

/// The expected processor ownership at a given offset within the MTF, per
/// the Fig. 8 Gantt chart (partition value, or -1 for the idle gap -- there
/// is none in Fig. 8: the tables cover the whole MTF).
int chi1_owner(Ticks offset) {
  if (offset < 200) return 0;
  if (offset < 300) return 1;
  if (offset < 400) return 2;
  if (offset < 1000) return 3;
  if (offset < 1100) return 1;
  if (offset < 1200) return 2;
  return 3;
}

int chi2_owner(Ticks offset) {
  if (offset < 200) return 0;
  if (offset < 300) return 3;
  if (offset < 400) return 2;
  if (offset < 1000) return 1;
  if (offset < 1100) return 3;
  if (offset < 1200) return 2;
  return 1;
}

TEST(Fig8, ExecutionTraceMatchesTheGanttOfChi1) {
  system::Module module(fig8_config({.with_faulty_process = false}));

  // Walk three MTFs tick by tick and check the dispatcher's active
  // partition against the published table.
  for (Ticks t = 0; t < 3 * kFig8Mtf; ++t) {
    module.tick_once();
    const PartitionId active = module.dispatcher().active_partition();
    ASSERT_EQ(active.value(), chi1_owner(t % kFig8Mtf))
        << "wrong partition at tick " << t;
  }
}

TEST(Fig8, HealthySystemHasNoDeadlineViolations) {
  system::Module module(fig8_config({.with_faulty_process = false}));
  module.run(10 * kFig8Mtf);
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u);
  EXPECT_EQ(module.trace().count(util::EventKind::kHmError), 0u);
}

TEST(Fig8, SwitchToChi2TakesEffectAtTheMtfBoundary) {
  system::Module module(fig8_config({.with_faulty_process = false}));
  const PartitionId p1 = module.partition_id("AOCS");

  // Run into the middle of the first MTF, then request the switch.
  module.run(500);
  ASSERT_EQ(module.apex(p1).set_module_schedule(ScheduleId{1}),
            apex::ReturnCode::kNoError);

  // Until the MTF boundary the module still follows chi_1.
  for (Ticks t = 500; t < kFig8Mtf; ++t) {
    module.tick_once();
    ASSERT_EQ(module.dispatcher().active_partition().value(),
              chi1_owner(t % kFig8Mtf))
        << "tick " << t;
  }
  // From the boundary on, chi_2 rules.
  for (Ticks t = kFig8Mtf; t < 3 * kFig8Mtf; ++t) {
    module.tick_once();
    ASSERT_EQ(module.dispatcher().active_partition().value(),
              chi2_owner(t % kFig8Mtf))
        << "tick " << t;
  }

  const auto status = module.apex(p1).get_module_schedule_status();
  EXPECT_EQ(status.current_schedule, ScheduleId{1});
  EXPECT_EQ(status.next_schedule, ScheduleId{1});
  EXPECT_EQ(status.last_switch_time, kFig8Mtf);
}

TEST(Fig8, OnlyAuthorisedPartitionsMaySwitchSchedules) {
  system::Module module(fig8_config({.with_faulty_process = false}));
  const PartitionId p2 = module.partition_id("TTC");
  EXPECT_EQ(module.apex(p2).set_module_schedule(ScheduleId{1}),
            apex::ReturnCode::kInvalidConfig);
}

TEST(Fig8, InterpartitionDataFlows) {
  system::Module module(fig8_config({.with_faulty_process = false}));
  module.run(3 * kFig8Mtf);

  // AOCS attitude reaches TTC and PAYLOAD (sampling), science frames reach
  // TTC (queuing).
  const auto& trace = module.trace();
  EXPECT_GT(trace.count(util::EventKind::kPortSend), 0u);
  const auto receives = trace.filtered(util::EventKind::kPortReceive);
  bool ttc_got_data = false;
  for (const auto& e : receives) {
    if (e.a == module.partition_id("TTC").value() && e.c > 0) {
      ttc_got_data = true;
    }
  }
  EXPECT_TRUE(ttc_got_data);
}

}  // namespace
}  // namespace air
