// POS kernel tests: the heir rule of eq. (14) for the RT kernel
// (priority-preemptive, FIFO within priority), process state machinery,
// timed wake-ups, preemption locking, and the generic kernel's round-robin
// and paravirtualisation behaviour.
#include <gtest/gtest.h>

#include "pos/generic_kernel.hpp"
#include "pos/rt_kernel.hpp"

namespace air::pos {
namespace {

ProcessAttributes attrs(std::string name, Priority priority,
                        Ticks period = kInfiniteTime) {
  ProcessAttributes a;
  a.name = std::move(name);
  a.priority = priority;
  a.period = period;
  return a;
}

class RtKernelTest : public ::testing::Test {
 protected:
  ProcessId spawn(std::string name, Priority priority) {
    const ProcessId pid = kernel_.create_process(attrs(std::move(name), priority));
    kernel_.pcb(pid)->current_priority = priority;
    return pid;
  }

  RtKernel kernel_;
};

TEST_F(RtKernelTest, HighestPriorityReadyProcessWins) {
  const ProcessId low = spawn("low", 50);
  const ProcessId high = spawn("high", 10);
  kernel_.make_ready(low);
  kernel_.make_ready(high);
  EXPECT_EQ(kernel_.schedule(), high);
  EXPECT_EQ(kernel_.pcb(high)->state, ProcessState::kRunning);
  EXPECT_EQ(kernel_.pcb(low)->state, ProcessState::kReady);
}

TEST_F(RtKernelTest, FifoWithinPriorityPicksTheOldest) {
  // eq. (14) tie-break: equal priority -> oldest in the ready state.
  const ProcessId first = spawn("first", 20);
  const ProcessId second = spawn("second", 20);
  kernel_.make_ready(first);
  kernel_.make_ready(second);
  EXPECT_EQ(kernel_.schedule(), first);
  // Blocking the first hands over to the second.
  kernel_.block(first, WaitReason::kDelay, 100);
  EXPECT_EQ(kernel_.schedule(), second);
  // When the first wakes it goes to the back of the queue.
  kernel_.wake(first, WakeResult::kOk);
  EXPECT_EQ(kernel_.schedule(), second);
}

TEST_F(RtKernelTest, RunningProcessIsNotPreemptedByEqualPriority) {
  const ProcessId a = spawn("a", 20);
  kernel_.make_ready(a);
  EXPECT_EQ(kernel_.schedule(), a);
  const ProcessId b = spawn("b", 20);
  kernel_.make_ready(b);
  EXPECT_EQ(kernel_.schedule(), a) << "same priority must not preempt";
}

TEST_F(RtKernelTest, HigherPriorityArrivalPreempts) {
  const ProcessId low = spawn("low", 50);
  kernel_.make_ready(low);
  EXPECT_EQ(kernel_.schedule(), low);
  const ProcessId high = spawn("high", 5);
  kernel_.make_ready(high);
  EXPECT_EQ(kernel_.schedule(), high);
  EXPECT_EQ(kernel_.pcb(low)->state, ProcessState::kReady)
      << "preempted process returns to ready";
}

TEST_F(RtKernelTest, SetPriorityRequeuesAsNewest) {
  const ProcessId a = spawn("a", 20);
  const ProcessId b = spawn("b", 20);
  const ProcessId c = spawn("c", 30);
  kernel_.make_ready(a);
  kernel_.make_ready(b);
  kernel_.make_ready(c);
  // Raising c to 20 places it behind a and b.
  kernel_.set_priority(c, 20);
  EXPECT_EQ(kernel_.schedule(), a);
  kernel_.make_dormant(a);
  EXPECT_EQ(kernel_.schedule(), b);
  kernel_.make_dormant(b);
  EXPECT_EQ(kernel_.schedule(), c);
}

TEST_F(RtKernelTest, LoweringTheRunningProcessPriorityPreempts) {
  const ProcessId a = spawn("a", 10);
  const ProcessId b = spawn("b", 20);
  kernel_.make_ready(a);
  kernel_.make_ready(b);
  EXPECT_EQ(kernel_.schedule(), a);
  kernel_.set_priority(a, 30);
  EXPECT_EQ(kernel_.schedule(), b);
}

TEST_F(RtKernelTest, PreemptionLockKeepsTheCurrentProcess) {
  const ProcessId low = spawn("low", 50);
  kernel_.make_ready(low);
  EXPECT_EQ(kernel_.schedule(), low);
  kernel_.lock_preemption();
  const ProcessId high = spawn("high", 5);
  kernel_.make_ready(high);
  EXPECT_EQ(kernel_.schedule(), low) << "preemption locked";
  kernel_.unlock_preemption();
  EXPECT_EQ(kernel_.schedule(), high);
}

TEST_F(RtKernelTest, TickAnnounceWakesExpiredWaits) {
  const ProcessId a = spawn("a", 10);
  const ProcessId b = spawn("b", 20);
  kernel_.make_ready(a);
  kernel_.make_ready(b);
  kernel_.block(a, WaitReason::kDelay, 10);
  kernel_.block(b, WaitReason::kDelay, 5);
  kernel_.tick_announce(4, 4);
  EXPECT_EQ(kernel_.pcb(a)->state, ProcessState::kWaiting);
  EXPECT_EQ(kernel_.pcb(b)->state, ProcessState::kWaiting);
  kernel_.tick_announce(10, 6);
  EXPECT_EQ(kernel_.pcb(a)->state, ProcessState::kReady);
  EXPECT_EQ(kernel_.pcb(b)->state, ProcessState::kReady);
  EXPECT_EQ(kernel_.pcb(a)->wake_result, WakeResult::kOk);
}

TEST_F(RtKernelTest, BatchedAnnounceWakesEverythingInBetween) {
  // The surrogate announce after partition inactivity passes elapsed > 1;
  // every wait expiring in the gap must wake.
  const ProcessId a = spawn("a", 10);
  kernel_.make_ready(a);
  kernel_.block(a, WaitReason::kDelay, 3);
  kernel_.tick_announce(100, 100);
  EXPECT_EQ(kernel_.pcb(a)->state, ProcessState::kReady);
}

TEST_F(RtKernelTest, SemaphoreStyleTimeoutYieldsTimeoutResult) {
  const ProcessId a = spawn("a", 10);
  kernel_.make_ready(a);
  kernel_.block(a, WaitReason::kSemaphore, 7);
  kernel_.tick_announce(7, 7);
  EXPECT_EQ(kernel_.pcb(a)->state, ProcessState::kReady);
  EXPECT_EQ(kernel_.pcb(a)->wake_result, WakeResult::kTimeout);
}

TEST_F(RtKernelTest, SuspendDefersWakeUntilResume) {
  const ProcessId a = spawn("a", 10);
  kernel_.make_ready(a);
  kernel_.block(a, WaitReason::kSemaphore, kInfiniteTime);
  kernel_.suspend(a, kInfiniteTime);
  // The semaphore becomes available while suspended.
  kernel_.wake(a, WakeResult::kOk);
  EXPECT_EQ(kernel_.pcb(a)->state, ProcessState::kWaiting)
      << "suspended process stays ineligible";
  kernel_.resume(a);
  EXPECT_EQ(kernel_.pcb(a)->state, ProcessState::kReady);
  EXPECT_EQ(kernel_.pcb(a)->wake_result, WakeResult::kOk);
}

TEST_F(RtKernelTest, MakeDormantClearsFromQueues) {
  const ProcessId a = spawn("a", 10);
  kernel_.make_ready(a);
  EXPECT_EQ(kernel_.schedule(), a);
  kernel_.make_dormant(a);
  EXPECT_EQ(kernel_.schedule(), ProcessId::invalid());
  EXPECT_EQ(kernel_.pcb(a)->state, ProcessState::kDormant);
}

TEST_F(RtKernelTest, ResetAllRewindsEveryProcess) {
  const ProcessId a = spawn("a", 10);
  kernel_.make_ready(a);
  kernel_.pcb(a)->pc = 3;
  kernel_.pcb(a)->absolute_deadline = 99;
  kernel_.reset_all();
  EXPECT_EQ(kernel_.pcb(a)->state, ProcessState::kDormant);
  EXPECT_EQ(kernel_.pcb(a)->pc, 0u);
  EXPECT_EQ(kernel_.pcb(a)->absolute_deadline, kInfiniteTime);
  EXPECT_EQ(kernel_.schedule(), ProcessId::invalid());
}

TEST_F(RtKernelTest, StateChangeHookObservesTransitions) {
  std::vector<std::pair<ProcessId, ProcessState>> events;
  kernel_.on_state_change = [&](ProcessId pid, ProcessState state) {
    events.emplace_back(pid, state);
  };
  const ProcessId a = spawn("a", 10);
  kernel_.make_ready(a);
  (void)kernel_.schedule();
  kernel_.block(a, WaitReason::kDelay, 5);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].second, ProcessState::kReady);
  EXPECT_EQ(events[1].second, ProcessState::kRunning);
  EXPECT_EQ(events[2].second, ProcessState::kWaiting);
}

TEST_F(RtKernelTest, FindProcessByName) {
  const ProcessId a = spawn("alpha", 10);
  EXPECT_EQ(kernel_.find_process("alpha"), a);
  EXPECT_FALSE(kernel_.find_process("beta").valid());
}

// ---------- GenericKernel ----------

TEST(GenericKernel, RoundRobinRotatesThroughReadyProcesses) {
  GenericKernel kernel;
  const ProcessId a = kernel.create_process(attrs("a", 10));
  const ProcessId b = kernel.create_process(attrs("b", 200));
  const ProcessId c = kernel.create_process(attrs("c", 50));
  kernel.make_ready(a);
  kernel.make_ready(b);
  kernel.make_ready(c);
  // Priorities are ignored; each schedule() call advances the rotation.
  EXPECT_EQ(kernel.schedule(), a);
  EXPECT_EQ(kernel.schedule(), b);
  EXPECT_EQ(kernel.schedule(), c);
  EXPECT_EQ(kernel.schedule(), a);
}

TEST(GenericKernel, ParavirtTrapRefusesClockManipulation) {
  GenericKernel kernel;
  int traps = 0;
  kernel.on_paravirt_trap = [&] { ++traps; };
  EXPECT_FALSE(kernel.try_disable_clock_interrupt());
  EXPECT_FALSE(kernel.try_disable_clock_interrupt());
  EXPECT_EQ(kernel.paravirt_traps(), 2u);
  EXPECT_EQ(traps, 2);
}

TEST(GenericKernel, SetPriorityIsRecordedButNotHonoured) {
  GenericKernel kernel;
  const ProcessId a = kernel.create_process(attrs("a", 10));
  const ProcessId b = kernel.create_process(attrs("b", 20));
  kernel.make_ready(a);
  kernel.make_ready(b);
  kernel.set_priority(b, 1);  // "highest"
  EXPECT_EQ(kernel.pcb(b)->current_priority, 1);
  EXPECT_EQ(kernel.schedule(), a) << "round robin ignores priorities";
}

}  // namespace
}  // namespace air::pos
