// KernelDispatch fast-path equivalence (pos/dispatch.hpp).
//
// The sealed enum-switch dispatch is an optimization, never a semantic
// fork: binding a KernelDispatch to a concrete kernel (fast path) and to
// the same kernel hidden behind an opaque IKernel wrapper (virtual
// fallback) must produce byte-identical behaviour. These tests drive both
// paths through long randomized operation sequences -- timed waits,
// suspend/resume edges, priority changes, preemption locking, dormant
// restarts (the kernel-level shape of a mode switch) -- and assert the
// schedules, wakes, state-change streams and clock probes never diverge,
// for both stock kernel kinds. A Pal-level run does the same for deadline
// verdicts (Algorithm 3 announces through the dispatch).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "pal/pal.hpp"
#include "pos/dispatch.hpp"
#include "pos/generic_kernel.hpp"
#include "pos/rt_kernel.hpp"

namespace air::pos {
namespace {

// Implements IKernel directly (KernelBase is sealed) by forwarding every
// call to an inner concrete kernel. KernelDispatch cannot classify it, so
// it takes the kVirtual fallback -- the pre-devirtualization code path.
class ForwardingKernel : public IKernel {
 public:
  explicit ForwardingKernel(std::unique_ptr<IKernel> inner)
      : inner_(std::move(inner)) {
    inner_->on_state_change = [this](ProcessId pid, ProcessState state) {
      if (on_state_change) on_state_change(pid, state);
    };
  }

  [[nodiscard]] std::string_view kind() const override {
    return inner_->kind();
  }
  ProcessId create_process(ProcessAttributes attrs) override {
    return inner_->create_process(std::move(attrs));
  }
  [[nodiscard]] ProcessControlBlock* pcb(ProcessId id) override {
    return inner_->pcb(id);
  }
  [[nodiscard]] const ProcessControlBlock* pcb(ProcessId id) const override {
    return static_cast<const IKernel&>(*inner_).pcb(id);
  }
  [[nodiscard]] std::size_t process_count() const override {
    return inner_->process_count();
  }
  [[nodiscard]] ProcessId find_process(std::string_view name) const override {
    return inner_->find_process(name);
  }
  void make_ready(ProcessId id) override { inner_->make_ready(id); }
  void make_dormant(ProcessId id) override { inner_->make_dormant(id); }
  void block(ProcessId id, WaitReason reason, Ticks wake_time) override {
    inner_->block(id, reason, wake_time);
  }
  void wake(ProcessId id, WakeResult result) override {
    inner_->wake(id, result);
  }
  void retarget_wait(ProcessId id, WaitReason reason,
                     Ticks wake_time) override {
    inner_->retarget_wait(id, reason, wake_time);
  }
  void set_priority(ProcessId id, Priority priority) override {
    inner_->set_priority(id, priority);
  }
  void suspend(ProcessId id, Ticks wake_time) override {
    inner_->suspend(id, wake_time);
  }
  void resume(ProcessId id) override { inner_->resume(id); }
  void tick_announce(Ticks now, Ticks elapsed) override {
    inner_->tick_announce(now, elapsed);
  }
  [[nodiscard]] Ticks now() const override { return inner_->now(); }
  [[nodiscard]] Ticks next_wake() const override {
    return inner_->next_wake();
  }
  ProcessId schedule() override { return inner_->schedule(); }
  [[nodiscard]] ProcessId current() const override {
    return inner_->current();
  }
  void lock_preemption() override { inner_->lock_preemption(); }
  void unlock_preemption() override { inner_->unlock_preemption(); }
  [[nodiscard]] bool preemption_locked() const override {
    return inner_->preemption_locked();
  }
  [[nodiscard]] std::uint64_t dispatch_count() const override {
    return inner_->dispatch_count();
  }
  [[nodiscard]] std::uint64_t process_switches() const override {
    return inner_->process_switches();
  }
  [[nodiscard]] std::size_t ready_depth() const override {
    return inner_->ready_depth();
  }
  void reset_all() override { inner_->reset_all(); }

 private:
  std::unique_ptr<IKernel> inner_;
};

enum class Flavour { kRt, kGeneric };

std::unique_ptr<IKernel> make_kernel(Flavour flavour) {
  if (flavour == Flavour::kRt) return std::make_unique<RtKernel>();
  return std::make_unique<GenericKernel>();
}

// One side of the comparison: a kernel driven through a KernelDispatch,
// logging everything observable into a text journal.
struct Side {
  explicit Side(std::unique_ptr<IKernel> k) : kernel(std::move(k)) {
    dispatch.bind(kernel.get());
    kernel->on_state_change = [this](ProcessId pid, ProcessState state) {
      journal << "state p" << pid.value() << "=" << to_string(state) << "\n";
    };
  }

  std::unique_ptr<IKernel> kernel;
  KernelDispatch dispatch;
  std::ostringstream journal;
};

// Drives both sides through the same seeded operation sequence and returns
// (fast journal, virtual journal). Any divergence shows up as a text diff.
std::pair<std::string, std::string> run_campaign(Flavour flavour,
                                                 std::uint32_t seed) {
  Side fast{make_kernel(flavour)};
  Side slow{std::make_unique<ForwardingKernel>(make_kernel(flavour))};
  EXPECT_EQ(fast.dispatch.kind(),
            flavour == Flavour::kRt ? KernelKind::kRt : KernelKind::kGeneric);
  EXPECT_EQ(slow.dispatch.kind(), KernelKind::kVirtual);

  constexpr int kProcesses = 6;
  std::mt19937 rng(seed);
  for (int i = 0; i < kProcesses; ++i) {
    ProcessAttributes attrs;
    attrs.name = "p" + std::to_string(i);
    attrs.priority = static_cast<Priority>(rng() % 32);
    for (Side* side : {&fast, &slow}) {
      const ProcessId pid = side->kernel->create_process(attrs);
      side->kernel->pcb(pid)->current_priority = attrs.priority;
    }
  }

  Ticks now = 0;
  const auto pick = [&rng] {
    return ProcessId{static_cast<int>(rng() % kProcesses)};
  };
  for (int step = 0; step < 4000; ++step) {
    // Every random draw happens before the per-side loop: both sides must
    // receive literally the same call sequence.
    const std::uint32_t op = rng() % 12;
    const ProcessId pid = pick();
    const Ticks horizon = now + 1 + static_cast<Ticks>(rng() % 17);
    const bool timed_suspend = (rng() % 2) != 0;
    const auto new_priority = static_cast<Priority>(rng() % 32);
    const Ticks elapsed = 1 + static_cast<Ticks>(rng() % 5);
    // block() requires a schedulable process; both sides hold identical
    // states, so deciding off the fast side keeps the sequences in lockstep.
    const bool can_block = fast.kernel->pcb(pid)->schedulable();
    for (Side* side : {&fast, &slow}) {
      IKernel& k = *side->kernel;
      KernelDispatch& d = side->dispatch;
      switch (op) {
        case 0:
        case 1:
          k.make_ready(pid);
          break;
        case 2:
          // Timed-wait edge: expiry lands exactly on a future announce.
          if (can_block) k.block(pid, WaitReason::kDelay, horizon);
          break;
        case 3:
          if (can_block) k.block(pid, WaitReason::kSemaphore, kInfiniteTime);
          break;
        case 4:
          k.wake(pid, WakeResult::kOk);
          break;
        case 5:
          // Suspend edge: with and without a resume timeout.
          k.suspend(pid, timed_suspend ? horizon : kInfiniteTime);
          break;
        case 6:
          k.resume(pid);
          break;
        case 7:
          k.set_priority(pid, new_priority);
          break;
        case 8:
          if (k.preemption_locked()) {
            k.unlock_preemption();
          } else {
            k.lock_preemption();
          }
          break;
        case 9:
          // Kernel-level shape of a mode switch: stop a process cold; it
          // is later restarted by a make_ready.
          k.make_dormant(pid);
          break;
        default:
          // Advance time through the dispatch (the Algorithm 3 path).
          d.tick_announce(now + elapsed, elapsed);
          break;
      }
      const ProcessId heir = d.schedule();
      side->journal << "t" << d.now() << " heir=" << heir.value()
                    << " cur=" << d.current().value()
                    << " wake=" << d.next_wake()
                    << " depth=" << k.ready_depth() << "\n";
      if (ProcessControlBlock* pcb = d.pcb(pid)) {
        side->journal << "  p" << pid.value() << " st="
                      << to_string(pcb->state) << " pri="
                      << pcb->current_priority << " wk=" << pcb->wake_time
                      << "\n";
      }
    }
    if (op >= 10) {
      // Keep the driver's clock in sync with what both sides announced.
      now = fast.dispatch.now();
    }
  }
  fast.journal << "dispatches=" << fast.kernel->dispatch_count()
               << " switches=" << fast.kernel->process_switches() << "\n";
  slow.journal << "dispatches=" << slow.kernel->dispatch_count()
               << " switches=" << slow.kernel->process_switches() << "\n";
  return {fast.journal.str(), slow.journal.str()};
}

TEST(KernelDispatch, ClassifiesSealedKernelsAndFallsBackForForeignOnes) {
  RtKernel rt;
  GenericKernel generic;
  ForwardingKernel foreign{std::make_unique<RtKernel>()};
  EXPECT_EQ(KernelDispatch{&rt}.kind(), KernelKind::kRt);
  EXPECT_EQ(KernelDispatch{&generic}.kind(), KernelKind::kGeneric);
  EXPECT_EQ(KernelDispatch{&foreign}.kind(), KernelKind::kVirtual);
  EXPECT_EQ(KernelDispatch{&rt}.get(), &rt);
}

TEST(KernelDispatch, RandomizedFastVsVirtualEquivalenceRt) {
  for (std::uint32_t seed : {1u, 7u, 42u, 1234u}) {
    auto [fast, slow] = run_campaign(Flavour::kRt, seed);
    ASSERT_EQ(fast, slow) << "rt kernel diverged at seed " << seed;
  }
}

TEST(KernelDispatch, RandomizedFastVsVirtualEquivalenceGeneric) {
  for (std::uint32_t seed : {1u, 7u, 42u, 1234u}) {
    auto [fast, slow] = run_campaign(Flavour::kGeneric, seed);
    ASSERT_EQ(fast, slow) << "generic kernel diverged at seed " << seed;
  }
}

// Algorithm 3 through the dispatch: identical deadline verdicts whether
// the Pal wraps a sealed kernel or an opaque IKernel implementation.
TEST(KernelDispatch, PalDeadlineVerdictsMatchAcrossDispatchPaths) {
  for (std::uint32_t seed : {3u, 99u}) {
    std::ostringstream fast_log;
    std::ostringstream slow_log;
    pal::Pal fast_pal{std::make_unique<RtKernel>()};
    pal::Pal slow_pal{
        std::make_unique<ForwardingKernel>(std::make_unique<RtKernel>())};
    EXPECT_EQ(fast_pal.dispatch().kind(), KernelKind::kRt);
    EXPECT_EQ(slow_pal.dispatch().kind(), KernelKind::kVirtual);

    struct Bound {
      pal::Pal* pal;
      std::ostringstream* log;
      ProcessId pid;
    };
    std::vector<Bound> sides;
    for (auto [pal, log] : {std::pair{&fast_pal, &fast_log},
                            std::pair{&slow_pal, &slow_log}}) {
      ProcessAttributes attrs;
      attrs.name = "job";
      const ProcessId pid = pal->kernel().create_process(attrs);
      pal->kernel().make_ready(pid);
      pal->on_deadline_violation = [log](ProcessId p, Ticks deadline,
                                         Ticks at) {
        *log << "violation p" << p.value() << " d=" << deadline << " at=" << at
             << "\n";
      };
      sides.push_back({pal, log, pid});
    }

    std::mt19937 rng(seed);
    Ticks now = 0;
    for (int step = 0; step < 500; ++step) {
      const std::uint32_t op = rng() % 4;
      const Ticks deadline = now + 1 + static_cast<Ticks>(rng() % 9);
      for (Bound& side : sides) {
        switch (op) {
          case 0:
            side.pal->register_deadline(side.pid, deadline);
            break;
          case 1:
            side.pal->unregister_deadline(side.pid);
            break;
          default:
            side.pal->announce_ticks(now + 1, 1);
            break;
        }
        *side.log << "t" << side.pal->current_time()
                  << " next=" << side.pal->next_attention_tick()
                  << " checks=" << side.pal->deadline_checks()
                  << " misses=" << side.pal->violations_detected() << "\n";
      }
      if (op >= 2) ++now;
    }
    ASSERT_EQ(fast_log.str(), slow_log.str())
        << "deadline verdicts diverged at seed " << seed;
  }
}

}  // namespace
}  // namespace air::pos
