// Edge-case coverage across POS kernels and APEX process services that the
// mainline suites don't reach: suspend timeouts, many processes, priority
// extremes, generic-kernel periodic behaviour, script-driven start/stop.
#include <gtest/gtest.h>

#include "pos/generic_kernel.hpp"
#include "pos/rt_kernel.hpp"
#include "system/module.hpp"

namespace air {
namespace {

using pos::ScriptBuilder;

// ---------- kernel-level edges ----------

TEST(PosEdge, SuspendWithTimeoutExpiresIntoTimeoutResult) {
  pos::RtKernel kernel;
  pos::ProcessAttributes attrs;
  attrs.name = "a";
  attrs.priority = 10;
  const ProcessId a = kernel.create_process(std::move(attrs));
  kernel.make_ready(a);
  kernel.suspend(a, 10);
  EXPECT_EQ(kernel.pcb(a)->state, pos::ProcessState::kWaiting);
  kernel.tick_announce(10, 10);
  EXPECT_EQ(kernel.pcb(a)->state, pos::ProcessState::kReady);
  EXPECT_EQ(kernel.pcb(a)->wake_result, pos::WakeResult::kTimeout);
  EXPECT_FALSE(kernel.pcb(a)->suspended);
}

TEST(PosEdge, ManyProcessesSchedulingStaysCorrect) {
  pos::RtKernel kernel;
  std::vector<ProcessId> pids;
  for (int i = 0; i < 200; ++i) {
    pos::ProcessAttributes attrs;
    attrs.name = "p" + std::to_string(i);
    attrs.priority = static_cast<Priority>(200 - i);  // later = higher prio
    const ProcessId pid = kernel.create_process(std::move(attrs));
    kernel.pcb(pid)->current_priority = attrs.priority;
    kernel.make_ready(pid);
    pids.push_back(pid);
  }
  // The last-created process has the highest priority (1).
  EXPECT_EQ(kernel.schedule(), pids.back());
  // Draining from the top yields strictly non-decreasing priority values.
  Priority last = -1;
  for (int i = 0; i < 200; ++i) {
    const ProcessId pid = kernel.schedule();
    ASSERT_TRUE(pid.valid());
    EXPECT_GE(kernel.pcb(pid)->current_priority, last);
    last = kernel.pcb(pid)->current_priority;
    kernel.make_dormant(pid);
  }
  EXPECT_FALSE(kernel.schedule().valid());
}

TEST(PosEdge, PriorityBoundaryValues) {
  pos::RtKernel kernel;
  pos::ProcessAttributes hi;
  hi.name = "hi";
  hi.priority = 0;
  pos::ProcessAttributes lo;
  lo.name = "lo";
  lo.priority = 255;
  const ProcessId h = kernel.create_process(std::move(hi));
  const ProcessId l = kernel.create_process(std::move(lo));
  kernel.pcb(h)->current_priority = 0;
  kernel.pcb(l)->current_priority = 255;
  kernel.make_ready(l);
  kernel.make_ready(h);
  EXPECT_EQ(kernel.schedule(), h);
}

TEST(PosEdge, GenericKernelHonoursTimedWaits) {
  // Round-robin ignores priorities but timed waits still work through the
  // shared base machinery.
  pos::GenericKernel kernel;
  pos::ProcessAttributes attrs;
  attrs.name = "sleeper";
  const ProcessId a = kernel.create_process(std::move(attrs));
  kernel.make_ready(a);
  (void)kernel.schedule();
  kernel.block(a, pos::WaitReason::kDelay, 5);
  EXPECT_FALSE(kernel.schedule().valid());
  kernel.tick_announce(5, 5);
  EXPECT_EQ(kernel.schedule(), a);
}

// ---------- APEX edges through the full module ----------

system::ModuleConfig single(std::vector<system::ProcessConfig> processes) {
  system::ModuleConfig config;
  system::PartitionConfig p;
  p.name = "MAIN";
  p.processes = std::move(processes);
  config.partitions.push_back(std::move(p));
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 10;
  s.requirements = {{PartitionId{0}, 10, 10}};
  s.windows = {{PartitionId{0}, 0, 10}};
  config.schedules = {s};
  return config;
}

system::ProcessConfig proc(std::string name, pos::Script script,
                           Priority priority = 10, bool auto_start = true) {
  system::ProcessConfig pc;
  pc.attrs.name = std::move(name);
  pc.attrs.script = std::move(script);
  pc.attrs.priority = priority;
  pc.auto_start = auto_start;
  return pc;
}

TEST(PosEdge, ScriptDrivenStartProcess) {
  // A supervisor process starts a dormant worker at runtime via the
  // OpStartProcess workload op (APEX START from application code).
  auto config = single(
      {proc("supervisor", ScriptBuilder{}
                              .timed_wait(5)
                              .start_process("worker")
                              .stop_self()
                              .build()),
       proc("worker", ScriptBuilder{}.log("worker alive").stop_self().build(),
            20, /*auto_start=*/false)});
  system::Module module(std::move(config));
  module.run(4);
  EXPECT_TRUE(module.console(PartitionId{0}).empty());
  module.run(4);
  ASSERT_EQ(module.console(PartitionId{0}).size(), 1u);
}

TEST(PosEdge, SuspendSelfTimeoutResumesTheScript) {
  auto config = single({proc(
      "napper", ScriptBuilder{}
                    .suspend_self(6)
                    .log("woke by timeout")
                    .stop_self()
                    .build())});
  system::Module module(std::move(config));
  module.run(5);
  EXPECT_TRUE(module.console(PartitionId{0}).empty());
  module.run(3);
  ASSERT_EQ(module.console(PartitionId{0}).size(), 1u);
}

TEST(PosEdge, SuspendSelfResumedByPeer) {
  auto config = single(
      {proc("napper", ScriptBuilder{}
                          .suspend_self()
                          .log("resumed")
                          .stop_self()
                          .build(),
            10),
       proc("waker", ScriptBuilder{}
                         .timed_wait(3)
                         .compute(1)
                         .stop_self()
                         .build(),
            20)});
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(2);
  ProcessId napper;
  ASSERT_EQ(module.apex(main).get_process_id("napper", napper),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(module.apex(main).resume(napper), apex::ReturnCode::kNoError);
  module.run(2);
  ASSERT_EQ(module.console(main).size(), 1u);
  EXPECT_EQ(module.console(main)[0], "resumed");
}

TEST(PosEdge, ReplenishWithoutDeadlineIsNoAction) {
  auto config = single({proc(
      "free", ScriptBuilder{}.replenish(50).compute(5).stop_self().build())});
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(2);
  ProcessId pid;
  ASSERT_EQ(module.apex(main).get_process_id("free", pid),
            apex::ReturnCode::kNoError);
  EXPECT_EQ(module.kernel(main).pcb(pid)->last_status,
            static_cast<std::int32_t>(apex::ReturnCode::kNoAction));
}

TEST(PosEdge, StopOnWaitingProcessRemovesItFromEverything) {
  auto config = single(
      {proc("sleeper", ScriptBuilder{}.timed_wait(1000).build(), 10)});
  config.partitions[0].semaphores.push_back({"sem", 0, 1});
  system::Module module(std::move(config));
  const PartitionId main = module.partition_id("MAIN");
  module.run(2);
  ProcessId sleeper;
  ASSERT_EQ(module.apex(main).get_process_id("sleeper", sleeper),
            apex::ReturnCode::kNoError);
  ASSERT_EQ(module.kernel(main).pcb(sleeper)->state,
            pos::ProcessState::kWaiting);
  EXPECT_EQ(module.apex(main).stop(sleeper), apex::ReturnCode::kNoError);
  module.run(2000);  // the old wake time passes without effect
  EXPECT_EQ(module.kernel(main).pcb(sleeper)->state,
            pos::ProcessState::kDormant);
}

}  // namespace
}  // namespace air
