// End-to-end test of the shipped example integration file
// (examples/mission.json): it must load, validate, boot and fly.
#include <gtest/gtest.h>

#include "config/loader.hpp"
#include "system/module.hpp"

#ifndef AIR_SOURCE_DIR
#define AIR_SOURCE_DIR "."
#endif

namespace air {
namespace {

TEST(MissionJson, LoadsBootsAndRuns) {
  const auto result = config::load_module_config_file(
      std::string{AIR_SOURCE_DIR} + "/examples/mission.json");
  ASSERT_TRUE(result.ok()) << result.error;

  system::Module module(*result.config);
  module.run(10 * 400);

  // The camera produced frames and the downlink partition consumed them.
  const PartitionId downlink = module.partition_id("DOWNLINK");
  ASSERT_TRUE(downlink.valid());
  EXPECT_GE(module.console(downlink).size(), 8u);
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u);
}

TEST(MissionJson, ScheduleSwitchWithChangeActionFlies) {
  const auto result = config::load_module_config_file(
      std::string{AIR_SOURCE_DIR} + "/examples/mission.json");
  ASSERT_TRUE(result.ok()) << result.error;
  system::Module module(*result.config);
  const PartitionId aocs = module.partition_id("AOCS");

  module.run(500);
  ASSERT_EQ(module.apex(aocs).set_module_schedule(ScheduleId{1}),
            apex::ReturnCode::kNoError);
  module.run(1200);
  EXPECT_EQ(module.trace().count(util::EventKind::kScheduleSwitch), 1u);
  // CAMERA's warm-restart change action fired on its first dispatch under
  // the downlink-heavy schedule.
  EXPECT_EQ(module.trace().count(util::EventKind::kScheduleChangeAction), 1u);
  EXPECT_EQ(module.trace().count(util::EventKind::kDeadlineMiss), 0u);
}

}  // namespace
}  // namespace air
