// Offline verification & integration aid (Sect. 1, Sect. 3): validates the
// partition scheduling tables of a module configuration against the model
// equations (20)-(23), runs the process-level schedulability analysis, and
// demonstrates automatic PST generation from the timing requirements.
//
// Usage:
//   schedulability_tool               # analyses the built-in Fig. 8 system
//   schedulability_tool config.json   # analyses a JSON integration file
#include <cstdio>

#include "config/fig8.hpp"
#include "config/loader.hpp"
#include "model/generator.hpp"
#include "model/schedulability.hpp"
#include "model/validation.hpp"

using namespace air;

int main(int argc, char** argv) {
  system::ModuleConfig config;
  if (argc > 1) {
    auto loaded = config::load_module_config_file(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.error.c_str());
      return 1;
    }
    config = std::move(*loaded.config);
  } else {
    config = scenarios::fig8_config();
  }

  // Build the formal model from the configuration.
  model::SystemModel system;
  for (const auto& partition : config.partitions) {
    model::PartitionModel pm;
    pm.id = PartitionId{
        static_cast<std::int32_t>(system.partitions.size())};
    pm.name = partition.name;
    pm.system_partition = partition.system_partition;
    for (const auto& process : partition.processes) {
      // WCET estimate: total compute ticks in one pass of the script, plus
      // one tick for the completion service call (PERIODIC_WAIT must run
      // inside a window tick -- an activation that computes through the
      // last tick of its window only completes at the next dispatch).
      Ticks wcet = 1;
      for (const auto& op : process.attrs.script) {
        if (const auto* compute = std::get_if<pos::OpCompute>(&op)) {
          wcet += compute->ticks;
        }
      }
      pm.processes.push_back({process.attrs.name, process.attrs.period,
                              process.attrs.time_capacity,
                              process.attrs.priority, wcet,
                              process.attrs.period != kInfiniteTime});
    }
    system.partitions.push_back(std::move(pm));
  }
  system.schedules = config.schedules;

  // 1. Validate every PST (eqs. 20-23).
  std::printf("== PST validation ==\n");
  const auto report = model::validate_system(system);
  if (report.ok()) {
    std::printf("all %zu schedules satisfy eqs. (20)-(23)\n",
                system.schedules.size());
  } else {
    std::printf("%s", report.to_text().c_str());
  }
  for (const auto& warning : report.warnings) {
    std::printf("warning: %s (schedule %d, partition %d)\n",
                warning.detail.c_str(), warning.schedule.value(),
                warning.partition.value());
  }

  // 2. Process-level response-time analysis per schedule.
  std::printf("\n== schedulability analysis (MTF-aligned releases) ==\n");
  for (const auto& schedule : system.schedules) {
    const auto analysis = model::analyze_system(
        system, schedule.id, model::Phasing::kMtfAligned);
    std::printf("%s", analysis.to_text().c_str());
  }

  // 3. Automatic PST generation from the first schedule's requirements.
  if (!system.schedules.empty()) {
    std::printf("\n== generated PST (EDF construction) ==\n");
    model::GeneratorInput input;
    input.requirements = system.schedules[0].requirements;
    input.name = "generated";
    if (auto generated = model::generate_schedule(input)) {
      std::printf("MTF=%lld, utilisation %.3f\n",
                  static_cast<long long>(generated->mtf),
                  generated->utilisation());
      for (const auto& window : generated->windows) {
        std::printf("  P%d  [%5lld, %5lld)\n", window.partition.value(),
                    static_cast<long long>(window.offset),
                    static_cast<long long>(window.offset + window.duration));
      }
      const auto generated_report = model::validate_schedule(*generated);
      std::printf("generated schedule valid: %s\n",
                  generated_report.ok() ? "yes" : "NO");
    } else {
      std::printf("requirements are infeasible (over-utilised)\n");
    }
  }
  return 0;
}
