// Quickstart: the smallest useful AIR system.
//
// Two partitions -- a control partition and a telemetry partition -- share
// one processor under a 100-tick major time frame. The control loop samples
// a sensor (modelled as computation), publishes its state through a sampling
// port, and the telemetry partition consumes it. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "system/module.hpp"

using namespace air;

int main() {
  using pos::ScriptBuilder;

  system::ModuleConfig config;
  config.name = "quickstart";

  // --- Partition 0: CONTROL (RTOS) ---
  system::PartitionConfig control;
  control.name = "CONTROL";
  control.sampling_ports.push_back(
      {"STATE_OUT", ipc::PortDirection::kSource, 64, kInfiniteTime});
  {
    system::ProcessConfig loop;
    loop.attrs.name = "control_loop";
    loop.attrs.period = 100;        // released once per MTF
    loop.attrs.time_capacity = 40;  // must finish within its window
    loop.attrs.priority = 10;
    loop.attrs.script = ScriptBuilder{}
                            .compute(25)
                            .sampling_write(0, "attitude nominal")
                            .periodic_wait()
                            .build();
    control.processes.push_back(std::move(loop));
  }
  config.partitions.push_back(std::move(control));

  // --- Partition 1: TELEMETRY ---
  system::PartitionConfig telemetry;
  telemetry.name = "TELEMETRY";
  telemetry.sampling_ports.push_back(
      {"STATE_IN", ipc::PortDirection::kDestination, 64, /*refresh=*/150});
  {
    system::ProcessConfig downlink;
    downlink.attrs.name = "downlink";
    downlink.attrs.period = 100;
    downlink.attrs.time_capacity = 100;
    downlink.attrs.priority = 10;
    downlink.attrs.script = ScriptBuilder{}
                                .sampling_read(0)
                                .compute(20)
                                .log("frame downlinked")
                                .periodic_wait()
                                .build();
    telemetry.processes.push_back(std::move(downlink));
  }
  config.partitions.push_back(std::move(telemetry));

  // --- One partition scheduling table: CONTROL [0,40), TELEMETRY [40,90) ---
  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.name = "nominal";
  schedule.mtf = 100;
  schedule.requirements = {{PartitionId{0}, 100, 40},
                           {PartitionId{1}, 100, 50}};
  schedule.windows = {{PartitionId{0}, 0, 40}, {PartitionId{1}, 40, 50}};
  config.schedules = {schedule};

  // --- Run ten major time frames ---
  system::Module module(std::move(config));
  module.run(10 * 100);

  std::printf("ran %lld ticks\n", static_cast<long long>(module.now()) + 1);
  std::printf("telemetry frames: %zu\n",
              module.console(module.partition_id("TELEMETRY")).size());
  std::printf("deadline misses:  %zu\n",
              module.trace().count(util::EventKind::kDeadlineMiss));
  std::printf("context switches: %llu\n",
              static_cast<unsigned long long>(
                  module.dispatcher().context_switches()));

  // A few raw trace lines, to show what the module observed.
  std::printf("\nfirst trace events:\n");
  int shown = 0;
  for (const auto& event : module.trace().events()) {
    if (event.kind != util::EventKind::kPartitionDispatch) continue;
    std::printf("  t=%-5lld dispatch partition %lld (from %lld)\n",
                static_cast<long long>(event.time),
                static_cast<long long>(event.a),
                static_cast<long long>(event.b));
    if (++shown == 6) break;
  }
  return 0;
}
