// VITRAL demonstration (Fig. 9): one text-mode window per partition showing
// its console output, plus two windows observing AIR components (the
// Partition Scheduler/Dispatcher and the Health Monitor), re-rendered as
// the Fig. 8 prototype runs through fault injection and a schedule switch.
#include <cstdio>

#include "config/fig8.hpp"
#include "system/module.hpp"
#include "vitral/trace_window.hpp"
#include "vitral/vitral.hpp"

using namespace air;

namespace {

// The AIR component windows are fed live by a TraceWindowSink; only the
// partition consoles are re-read here (they are per-partition line logs,
// not trace events).
void refresh(vitral::Screen& screen, system::Module& module,
             const std::vector<std::size_t>& partition_windows) {
  for (std::size_t p = 0; p < partition_windows.size(); ++p) {
    auto& window = screen.window(partition_windows[p]);
    window.clear();
    const auto& lines =
        module.console(PartitionId{static_cast<std::int32_t>(p)});
    for (const auto& line : lines) window.write_line(line);
  }
}

}  // namespace

int main() {
  scenarios::Fig8Options options;
  system::ModuleConfig config = scenarios::fig8_config(options);
  // Give the mockup applications some console chatter, VITRAL-style.
  for (auto& partition : config.partitions) {
    for (auto& process : partition.processes) {
      if (process.attrs.name == "p1_control") {
        process.attrs.script = pos::ScriptBuilder{}
                                   .compute(60)
                                   .sampling_write(0, "q=[0.99 .01 .04 .02]")
                                   .log("AOCS cycle complete")
                                   .periodic_wait()
                                   .build();
      }
      if (process.attrs.name == "p2_tm") {
        process.attrs.script = pos::ScriptBuilder{}
                                   .sampling_read(0)
                                   .compute(50)
                                   .queuing_receive(0, 0)
                                   .log("TM frame sent")
                                   .periodic_wait()
                                   .build();
      }
      if (process.attrs.name == "p3_monitor") {
        process.attrs.script = pos::ScriptBuilder{}
                                   .compute(40)
                                   .sem_signal(0)
                                   .log("FDIR scan ok")
                                   .periodic_wait()
                                   .build();
      }
      if (process.attrs.name == "p4_sci") {
        process.attrs.script = pos::ScriptBuilder{}
                                   .compute(150)
                                   .queuing_send(0, "science-frame", 0)
                                   .sampling_read(0)
                                   .log("payload frame queued")
                                   .periodic_wait()
                                   .build();
      }
    }
  }

  system::Module module(std::move(config));

  vitral::Screen screen(100, 30);
  std::vector<std::size_t> partition_windows;
  const char* titles[] = {"P1 AOCS", "P2 TTC", "P3 FDIR", "P4 PAYLOAD"};
  for (int i = 0; i < 4; ++i) {
    partition_windows.push_back(
        screen.add_window(titles[i], {(i % 2) * 50, (i / 2) * 10, 50, 10}));
  }
  const std::size_t air_window =
      screen.add_window("AIR Partition Scheduler", {0, 20, 50, 10});
  const std::size_t hm_window =
      screen.add_window("AIR Health Monitor", {50, 20, 50, 10});

  // Stream scheduler and HM events into their windows as they happen.
  vitral::TraceWindowSink sink(screen, air_window, hm_window);
  module.add_trace_sink(&sink);

  const Ticks mtf = scenarios::kFig8Mtf;

  // Frame 1: nominal operation.
  module.run(2 * mtf);
  refresh(screen, module, partition_windows);
  std::printf("===== frame 1: nominal operation (chi_1) =====\n%s\n",
              screen.render().c_str());

  // Frame 2: operator injects the faulty process (keyboard in the paper).
  module.start_process_by_name(module.partition_id("AOCS"),
                               scenarios::kFaultyProcessName);
  module.run(2 * mtf);
  refresh(screen, module, partition_windows);
  std::printf("===== frame 2: faulty process active on P1 =====\n%s\n",
              screen.render().c_str());

  // Frame 3: operator switches to chi_2.
  (void)module.apex(module.partition_id("AOCS"))
      .set_module_schedule(ScheduleId{1});
  module.run(2 * mtf);
  refresh(screen, module, partition_windows);
  std::printf("===== frame 3: after switching to chi_2 =====\n%s\n",
              screen.render().c_str());

  module.remove_trace_sink(&sink);
  std::printf("%s\n", module.status_report().c_str());
  return 0;
}
