// Distributed configuration: two AIR modules on a shared time-triggered bus.
//
// Module 0 (platform computer) hosts AOCS; module 1 (payload computer) hosts
// the instrument. The instrument consumes attitude data and ships science
// frames back -- both through ordinary APEX queuing/sampling services; the
// applications cannot tell their peers live on another computer (Sect. 2.1).
#include <cstdio>

#include "system/world.hpp"

using namespace air;
using pos::ScriptBuilder;

namespace {

system::ModuleConfig platform_module() {
  system::ModuleConfig config;
  config.id = ModuleId{0};
  config.name = "platform";

  system::PartitionConfig aocs;
  aocs.name = "AOCS";
  aocs.sampling_ports.push_back(
      {"ATT_OUT", ipc::PortDirection::kSource, 64, kInfiniteTime});
  aocs.queuing_ports.push_back(
      {"SCI_IN", ipc::PortDirection::kDestination, 64, 16});
  {
    system::ProcessConfig control;
    control.attrs.name = "control";
    control.attrs.period = 100;
    control.attrs.time_capacity = 100;
    control.attrs.priority = 10;
    control.attrs.script = ScriptBuilder{}
                               .compute(30)
                               .sampling_write(0, "attitude")
                               .periodic_wait()
                               .build();
    aocs.processes.push_back(std::move(control));

    system::ProcessConfig archiver;
    archiver.attrs.name = "archiver";
    archiver.attrs.priority = 20;
    archiver.attrs.script = ScriptBuilder{}
                                .queuing_receive(0)
                                .log("science frame archived")
                                .build();
    aocs.processes.push_back(std::move(archiver));
  }
  config.partitions.push_back(std::move(aocs));

  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 100;
  s.requirements = {{PartitionId{0}, 100, 100}};
  s.windows = {{PartitionId{0}, 0, 100}};
  config.schedules = {s};

  // Attitude fans out to the remote instrument partition.
  ipc::ChannelConfig att;
  att.id = ChannelId{0};
  att.kind = ipc::ChannelKind::kSampling;
  att.source = {PartitionId{0}, "ATT_OUT"};
  att.remote_destinations = {{ModuleId{1}, PartitionId{0}, "ATT_IN"}};
  config.channels.push_back(att);
  return config;
}

system::ModuleConfig payload_module() {
  system::ModuleConfig config;
  config.id = ModuleId{1};
  config.name = "payload";

  system::PartitionConfig instrument;
  instrument.name = "INSTRUMENT";
  instrument.sampling_ports.push_back(
      {"ATT_IN", ipc::PortDirection::kDestination, 64, /*refresh=*/300});
  instrument.queuing_ports.push_back(
      {"SCI_OUT", ipc::PortDirection::kSource, 64, 16});
  {
    system::ProcessConfig camera;
    camera.attrs.name = "camera";
    camera.attrs.period = 100;
    camera.attrs.time_capacity = 100;
    camera.attrs.priority = 10;
    camera.attrs.script = ScriptBuilder{}
                              .sampling_read(0)
                              .compute(40)
                              .queuing_send(0, "frame", 0)
                              .periodic_wait()
                              .build();
    instrument.processes.push_back(std::move(camera));
  }
  config.partitions.push_back(std::move(instrument));

  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 100;
  s.requirements = {{PartitionId{0}, 100, 100}};
  s.windows = {{PartitionId{0}, 0, 100}};
  config.schedules = {s};

  ipc::ChannelConfig sci;
  sci.id = ChannelId{0};
  sci.kind = ipc::ChannelKind::kQueuing;
  sci.source = {PartitionId{0}, "SCI_OUT"};
  sci.remote_destinations = {{ModuleId{0}, PartitionId{0}, "SCI_IN"}};
  config.channels.push_back(sci);
  return config;
}

}  // namespace

int main() {
  system::World world({.slot_length = 10, .frames_per_slot = 2,
                       .propagation_delay = 2});
  system::Module& platform = world.add_module(platform_module());
  system::Module& payload = world.add_module(payload_module());

  world.run(2000);

  std::printf("platform archived %zu science frames over the bus\n",
              platform.console(PartitionId{0}).size());
  const auto& stats = world.bus().stats();
  std::printf("bus: sent=%llu delivered=%llu dropped=%llu avg latency=%.1f\n",
              static_cast<unsigned long long>(stats.frames_sent),
              static_cast<unsigned long long>(stats.frames_delivered),
              static_cast<unsigned long long>(stats.frames_dropped),
              stats.frames_delivered > 0
                  ? static_cast<double>(stats.total_latency) /
                        static_cast<double>(stats.frames_delivered)
                  : 0.0);
  std::printf("instrument reads were %s\n",
              payload.trace().count(util::EventKind::kPortReceive) > 0
                  ? "flowing"
                  : "missing");
  std::printf("deadline misses across both modules: %zu\n",
              platform.trace().count(util::EventKind::kDeadlineMiss) +
                  payload.trace().count(util::EventKind::kDeadlineMiss));
  return 0;
}
