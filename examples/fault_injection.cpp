// Fault containment walkthrough: three fault classes, three containment
// outcomes (Sect. 2.4 / Sect. 5).
//
//   1. A deadline overrun -- detected by the PAL on the partition's next
//      dispatch (process deadline violation monitoring, Sect. 5), recovered
//      by the partition's own application error handler.
//   2. A spatial violation -- an out-of-partition memory access caught by
//      the simulated MMU; the HM stops the offending process.
//   3. A partition-level error escalation -- repeated application errors
//      cross a log threshold and warm-restart the partition.
//
// Throughout, the *other* partition keeps its timeline untouched: faults
// stay confined to their domain of occurrence.
#include <cstdio>

#include "system/module.hpp"

using namespace air;
using pos::ScriptBuilder;

int main() {
  system::ModuleConfig config;
  config.name = "fault-injection";

  // GOOD: a healthy control loop we expect to stay pristine.
  system::PartitionConfig good;
  good.name = "GOOD";
  {
    system::ProcessConfig loop;
    loop.attrs.name = "good_loop";
    loop.attrs.period = 100;
    loop.attrs.time_capacity = 100;
    loop.attrs.priority = 10;
    loop.attrs.script =
        ScriptBuilder{}.compute(20).periodic_wait().build();
    good.processes.push_back(std::move(loop));
  }
  config.partitions.push_back(std::move(good));

  // FAULTY: hosts all three demonstrations.
  system::PartitionConfig faulty;
  faulty.name = "FAULTY";
  {
    // (1) Overrunner: capacity 30, computes 45 per 100-tick period.
    system::ProcessConfig overrun;
    overrun.attrs.name = "overrunner";
    overrun.attrs.period = 100;
    overrun.attrs.time_capacity = 30;
    overrun.attrs.priority = 10;
    overrun.attrs.script =
        ScriptBuilder{}.compute(45).periodic_wait().build();
    overrun.auto_start = false;
    faulty.processes.push_back(std::move(overrun));

    // (2) Snooper: reads an address far outside the partition.
    system::ProcessConfig snoop;
    snoop.attrs.name = "snooper";
    snoop.attrs.priority = 20;
    snoop.attrs.script = ScriptBuilder{}
                             .compute(2)
                             .memory_access(0x7000'0000, /*write=*/true)
                             .timed_wait(50)
                             .build();
    snoop.auto_start = false;
    faulty.processes.push_back(std::move(snoop));

    // (3) Repeater: raises an application error every 10 ticks.
    system::ProcessConfig repeater;
    repeater.attrs.name = "repeater";
    repeater.attrs.priority = 30;
    repeater.attrs.script = ScriptBuilder{}
                                .raise_error(99, "repeated anomaly")
                                .timed_wait(10)
                                .build();
    repeater.auto_start = false;
    faulty.processes.push_back(std::move(repeater));

    // HM policy (no application error handler here, so the table acts
    // directly -- the handler path is exercised in tests/test_hm_integration):
    // deadline misses are logged only, spatial violations stop the process,
    // repeated application errors warm-restart the partition after three
    // occurrences.
    faulty.hm_table.set(hm::ErrorCode::kDeadlineMissed,
                        hm::ErrorLevel::kProcess,
                        hm::RecoveryAction::kIgnore);
    faulty.hm_table.set(hm::ErrorCode::kMemoryViolation,
                        hm::ErrorLevel::kProcess,
                        hm::RecoveryAction::kStopProcess);
    faulty.hm_table.set(hm::ErrorCode::kApplicationError,
                        hm::ErrorLevel::kProcess,
                        hm::RecoveryAction::kWarmRestartPartition,
                        /*log_threshold=*/3);
  }
  config.partitions.push_back(std::move(faulty));

  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.name = "half-and-half";
  schedule.mtf = 100;
  schedule.requirements = {{PartitionId{0}, 100, 40},
                           {PartitionId{1}, 100, 60}};
  schedule.windows = {{PartitionId{0}, 0, 40}, {PartitionId{1}, 40, 60}};
  config.schedules = {schedule};

  system::Module module(std::move(config));
  const PartitionId faulty_id = module.partition_id("FAULTY");
  const PartitionId good_id = module.partition_id("GOOD");

  std::printf("=== (1) deadline overrun ===\n");
  module.start_process_by_name(faulty_id, "overrunner");
  module.run(400);
  std::printf("deadline misses detected by the PAL: %zu (logged, ignored)\n",
              module.trace().count(util::EventKind::kDeadlineMiss));

  std::printf("\n=== (2) spatial violation ===\n");
  module.start_process_by_name(faulty_id, "snooper");
  module.run(300);
  const auto spatial =
      module.trace().filtered(util::EventKind::kSpatialViolation);
  std::printf("spatial violations: %zu (snooper stopped after the first)\n",
              spatial.size());

  std::printf("\n=== (3) escalation to partition restart ===\n");
  module.start_process_by_name(faulty_id, "repeater");
  const auto restarts_before =
      module.trace()
          .filtered(util::EventKind::kPartitionModeChange,
                    [&](const util::TraceEvent& e) {
                      return e.a == faulty_id.value() &&
                             e.b == static_cast<std::int64_t>(
                                        pmk::OperatingMode::kWarmStart);
                    })
          .size();
  module.run(300);
  const auto restarts_after =
      module.trace()
          .filtered(util::EventKind::kPartitionModeChange,
                    [&](const util::TraceEvent& e) {
                      return e.a == faulty_id.value() &&
                             e.b == static_cast<std::int64_t>(
                                        pmk::OperatingMode::kWarmStart);
                    })
          .size();
  std::printf("warm restarts of FAULTY: %zu (every third application error)\n",
              restarts_after - restarts_before);

  std::printf("\n=== containment check ===\n");
  std::size_t good_events = 0;
  for (const auto& entry : module.health().log()) {
    if (entry.partition == good_id) ++good_events;
  }
  std::printf("HM log entries total: %zu, involving GOOD: %zu (expected 0)\n",
              module.health().log().size(), good_events);
  std::printf("GOOD partition deadline misses: %zu (expected 0)\n",
              module.trace()
                  .filtered(util::EventKind::kDeadlineMiss,
                            [&](const util::TraceEvent& e) {
                              return e.a == good_id.value();
                            })
                  .size());
  return 0;
}
