// Satellite mission scenario: the paper's Fig. 8 prototype flown through a
// mission profile with mode-based schedules (Sect. 4).
//
// Phases:
//   1. Nominal operations under chi_1 (payload-heavy window allocation).
//   2. A faulty process is injected on the AOCS partition (Sect. 6); the
//      PAL detects its deadline violations on every AOCS dispatch and the
//      Health Monitor logs them.
//   3. Mission control reacts: switches to chi_2 (TTC-heavy downlink
//      configuration) at the next MTF boundary -- the switch itself
//      introduces no additional violations.
//   4. The faulty process is stopped; the system returns to chi_1.
#include <cstdio>

#include "config/fig8.hpp"
#include "system/module.hpp"
#include "telemetry/export.hpp"

using namespace air;

namespace {

void report(const system::Module& module, const char* phase) {
  std::printf("-- %-38s t=%-6lld misses=%-3zu switches=%zu\n", phase,
              static_cast<long long>(module.now()),
              module.trace().count(util::EventKind::kDeadlineMiss),
              module.trace().count(util::EventKind::kScheduleSwitch));
}

}  // namespace

int main() {
  system::Module module(scenarios::fig8_config());
  const PartitionId aocs = module.partition_id("AOCS");
  const Ticks mtf = scenarios::kFig8Mtf;

  std::printf("AIR satellite mission demo (Fig. 8 system, MTF=%lld)\n\n",
              static_cast<long long>(mtf));

  // Phase 1: nominal operations.
  module.run(3 * mtf);
  report(module, "phase 1: nominal (chi_1)");

  // Phase 2: inject the faulty process (as the prototype's keyboard does).
  module.start_process_by_name(aocs, scenarios::kFaultyProcessName);
  module.run(3 * mtf);
  report(module, "phase 2: fault injected on AOCS");

  // Phase 3: switch to chi_2 at the next MTF boundary.
  if (module.apex(aocs).set_module_schedule(ScheduleId{1}) !=
      apex::ReturnCode::kNoError) {
    std::printf("schedule switch refused?!\n");
    return 1;
  }
  module.run(3 * mtf);
  report(module, "phase 3: downlink config (chi_2)");
  const auto status = module.apex(aocs).get_module_schedule_status();
  std::printf("   schedule status: current=%d next=%d last_switch=%lld\n",
              status.current_schedule.value(), status.next_schedule.value(),
              static_cast<long long>(status.last_switch_time));

  // Phase 4: stop the faulty process and return to chi_1.
  ProcessId faulty;
  module.apex(aocs).get_process_id(scenarios::kFaultyProcessName, faulty);
  module.apex(aocs).stop(faulty);
  module.apex(aocs).set_module_schedule(ScheduleId{0});
  const auto misses_before = module.trace().count(
      util::EventKind::kDeadlineMiss);
  module.run(3 * mtf);
  report(module, "phase 4: fault cleared, back to chi_1");

  const auto misses_after =
      module.trace().count(util::EventKind::kDeadlineMiss);
  std::printf("\nmisses during recovery phase: %zu (expected 0)\n",
              misses_after - misses_before);

  // Per-process diagnostics: the response-time statistics that give the
  // "almost immediate insight on possible underdimensioning" of Sect. 5.
  std::printf("\nprocess statistics:\n");
  std::printf("  %-22s %-10s %12s %12s %8s\n", "process", "state",
              "completions", "max resp", "misses");
  for (std::size_t p = 0; p < module.partition_count(); ++p) {
    const auto id = PartitionId{static_cast<std::int32_t>(p)};
    auto& kernel = module.kernel(id);
    for (std::size_t q = 0; q < kernel.process_count(); ++q) {
      apex::ProcessStatus st;
      if (module.apex(id).get_process_status(
              ProcessId{static_cast<std::int32_t>(q)}, st) !=
          apex::ReturnCode::kNoError) {
        continue;
      }
      std::printf("  %-22s %-10s %12llu %12lld %8llu\n",
                  (module.partition_pcb(id).name + "/" + st.name).c_str(),
                  to_string(st.state),
                  static_cast<unsigned long long>(st.completions),
                  static_cast<long long>(st.max_response),
                  static_cast<unsigned long long>(st.deadline_misses));
    }
  }

  // Health Monitor view of the mission.
  std::printf("\nHealth Monitor log (%zu entries):\n",
              module.health().log().size());
  int shown = 0;
  for (const auto& entry : module.health().log()) {
    std::printf("  t=%-6lld %-16s partition=%d process=%d action=%s\n",
                static_cast<long long>(entry.time), to_string(entry.code),
                entry.partition.value(), entry.process.value(),
                to_string(entry.action_taken));
    if (++shown == 8) {
      std::printf("  ... (%zu more)\n", module.health().log().size() - 8);
      break;
    }
  }

  // Quantitative mission summary from the telemetry registry: the same
  // numbers a ground-segment tool would pull, exported as CSV.
  const telemetry::MetricsSnapshot snapshot = module.metrics_snapshot();
  std::printf("\ntelemetry snapshot (t=%lld, %zu series):\n",
              static_cast<long long>(snapshot.time),
              snapshot.samples.size());
  for (std::size_t p = 0; p < module.partition_count(); ++p) {
    const auto index = static_cast<std::int32_t>(p);
    const std::uint64_t busy = snapshot.counter(
        telemetry::Metric::kPartitionBusyTicks, index);
    const std::uint64_t slack = snapshot.counter(
        telemetry::Metric::kPartitionSlackTicks, index);
    std::printf("  %-10s busy=%-7llu slack=%-6llu misses=%llu\n",
                module.partition_pcb(PartitionId{index}).name.c_str(),
                static_cast<unsigned long long>(busy),
                static_cast<unsigned long long>(slack),
                static_cast<unsigned long long>(snapshot.counter(
                    telemetry::Metric::kDeadlineMisses, index)));
  }
  const std::string csv = telemetry::to_csv(snapshot);
  std::printf("\nmetrics CSV (first rows):\n");
  std::size_t printed = 0, pos = 0;
  while (printed < 6 && pos < csv.size()) {
    const std::size_t end = csv.find('\n', pos);
    std::printf("  %s\n", csv.substr(pos, end - pos).c_str());
    pos = end + 1;
    ++printed;
  }
  return 0;
}
