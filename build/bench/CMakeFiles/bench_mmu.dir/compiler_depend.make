# Empty compiler generated dependencies file for bench_mmu.
# This may be replaced when dependencies are built.
