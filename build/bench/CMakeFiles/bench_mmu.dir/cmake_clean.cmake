file(REMOVE_RECURSE
  "CMakeFiles/bench_mmu.dir/bench_mmu.cpp.o"
  "CMakeFiles/bench_mmu.dir/bench_mmu.cpp.o.d"
  "bench_mmu"
  "bench_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
