file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_scheduler.dir/bench_partition_scheduler.cpp.o"
  "CMakeFiles/bench_partition_scheduler.dir/bench_partition_scheduler.cpp.o.d"
  "bench_partition_scheduler"
  "bench_partition_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
