# Empty compiler generated dependencies file for bench_partition_scheduler.
# This may be replaced when dependencies are built.
