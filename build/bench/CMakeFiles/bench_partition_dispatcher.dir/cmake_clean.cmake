file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_dispatcher.dir/bench_partition_dispatcher.cpp.o"
  "CMakeFiles/bench_partition_dispatcher.dir/bench_partition_dispatcher.cpp.o.d"
  "bench_partition_dispatcher"
  "bench_partition_dispatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
