# Empty dependencies file for bench_partition_dispatcher.
# This may be replaced when dependencies are built.
