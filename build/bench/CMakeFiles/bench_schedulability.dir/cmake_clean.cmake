file(REMOVE_RECURSE
  "CMakeFiles/bench_schedulability.dir/bench_schedulability.cpp.o"
  "CMakeFiles/bench_schedulability.dir/bench_schedulability.cpp.o.d"
  "bench_schedulability"
  "bench_schedulability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schedulability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
