# Empty compiler generated dependencies file for bench_event_overload.
# This may be replaced when dependencies are built.
