file(REMOVE_RECURSE
  "CMakeFiles/bench_event_overload.dir/bench_event_overload.cpp.o"
  "CMakeFiles/bench_event_overload.dir/bench_event_overload.cpp.o.d"
  "bench_event_overload"
  "bench_event_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
