file(REMOVE_RECURSE
  "CMakeFiles/bench_mode_switch.dir/bench_mode_switch.cpp.o"
  "CMakeFiles/bench_mode_switch.dir/bench_mode_switch.cpp.o.d"
  "bench_mode_switch"
  "bench_mode_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mode_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
