# Empty dependencies file for bench_mode_switch.
# This may be replaced when dependencies are built.
