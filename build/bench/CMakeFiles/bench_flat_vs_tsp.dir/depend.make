# Empty dependencies file for bench_flat_vs_tsp.
# This may be replaced when dependencies are built.
