file(REMOVE_RECURSE
  "CMakeFiles/bench_flat_vs_tsp.dir/bench_flat_vs_tsp.cpp.o"
  "CMakeFiles/bench_flat_vs_tsp.dir/bench_flat_vs_tsp.cpp.o.d"
  "bench_flat_vs_tsp"
  "bench_flat_vs_tsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flat_vs_tsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
