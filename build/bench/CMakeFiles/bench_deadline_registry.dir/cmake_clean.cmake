file(REMOVE_RECURSE
  "CMakeFiles/bench_deadline_registry.dir/bench_deadline_registry.cpp.o"
  "CMakeFiles/bench_deadline_registry.dir/bench_deadline_registry.cpp.o.d"
  "bench_deadline_registry"
  "bench_deadline_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadline_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
