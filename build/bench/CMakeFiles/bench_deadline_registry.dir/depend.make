# Empty dependencies file for bench_deadline_registry.
# This may be replaced when dependencies are built.
