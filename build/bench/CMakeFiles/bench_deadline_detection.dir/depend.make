# Empty dependencies file for bench_deadline_detection.
# This may be replaced when dependencies are built.
