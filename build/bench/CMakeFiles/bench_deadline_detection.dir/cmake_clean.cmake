file(REMOVE_RECURSE
  "CMakeFiles/bench_deadline_detection.dir/bench_deadline_detection.cpp.o"
  "CMakeFiles/bench_deadline_detection.dir/bench_deadline_detection.cpp.o.d"
  "bench_deadline_detection"
  "bench_deadline_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadline_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
