file(REMOVE_RECURSE
  "CMakeFiles/bench_module_tick.dir/bench_module_tick.cpp.o"
  "CMakeFiles/bench_module_tick.dir/bench_module_tick.cpp.o.d"
  "bench_module_tick"
  "bench_module_tick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_module_tick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
