# Empty dependencies file for bench_module_tick.
# This may be replaced when dependencies are built.
