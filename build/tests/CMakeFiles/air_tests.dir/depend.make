# Empty dependencies file for air_tests.
# This may be replaced when dependencies are built.
