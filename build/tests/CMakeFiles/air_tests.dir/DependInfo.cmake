
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis_vs_runtime.cpp" "tests/CMakeFiles/air_tests.dir/test_analysis_vs_runtime.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_analysis_vs_runtime.cpp.o.d"
  "/root/repo/tests/test_apex_ipc.cpp" "tests/CMakeFiles/air_tests.dir/test_apex_ipc.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_apex_ipc.cpp.o.d"
  "/root/repo/tests/test_apex_process.cpp" "tests/CMakeFiles/air_tests.dir/test_apex_process.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_apex_process.cpp.o.d"
  "/root/repo/tests/test_apex_status.cpp" "tests/CMakeFiles/air_tests.dir/test_apex_status.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_apex_status.cpp.o.d"
  "/root/repo/tests/test_config_export.cpp" "tests/CMakeFiles/air_tests.dir/test_config_export.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_config_export.cpp.o.d"
  "/root/repo/tests/test_config_loader.cpp" "tests/CMakeFiles/air_tests.dir/test_config_loader.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_config_loader.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/air_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/air_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_fault_injection.cpp" "tests/CMakeFiles/air_tests.dir/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_fault_injection.cpp.o.d"
  "/root/repo/tests/test_fig8.cpp" "tests/CMakeFiles/air_tests.dir/test_fig8.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_fig8.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/air_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/air_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_generic_pos.cpp" "tests/CMakeFiles/air_tests.dir/test_generic_pos.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_generic_pos.cpp.o.d"
  "/root/repo/tests/test_hal.cpp" "tests/CMakeFiles/air_tests.dir/test_hal.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_hal.cpp.o.d"
  "/root/repo/tests/test_hm.cpp" "tests/CMakeFiles/air_tests.dir/test_hm.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_hm.cpp.o.d"
  "/root/repo/tests/test_hm_integration.cpp" "tests/CMakeFiles/air_tests.dir/test_hm_integration.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_hm_integration.cpp.o.d"
  "/root/repo/tests/test_ipc.cpp" "tests/CMakeFiles/air_tests.dir/test_ipc.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_ipc.cpp.o.d"
  "/root/repo/tests/test_mission_json.cpp" "tests/CMakeFiles/air_tests.dir/test_mission_json.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_mission_json.cpp.o.d"
  "/root/repo/tests/test_mode_based_schedules.cpp" "tests/CMakeFiles/air_tests.dir/test_mode_based_schedules.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_mode_based_schedules.cpp.o.d"
  "/root/repo/tests/test_model_validation.cpp" "tests/CMakeFiles/air_tests.dir/test_model_validation.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_model_validation.cpp.o.d"
  "/root/repo/tests/test_multicore.cpp" "tests/CMakeFiles/air_tests.dir/test_multicore.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_multicore.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/air_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_pal.cpp" "tests/CMakeFiles/air_tests.dir/test_pal.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_pal.cpp.o.d"
  "/root/repo/tests/test_partition_usage.cpp" "tests/CMakeFiles/air_tests.dir/test_partition_usage.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_partition_usage.cpp.o.d"
  "/root/repo/tests/test_pmk.cpp" "tests/CMakeFiles/air_tests.dir/test_pmk.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_pmk.cpp.o.d"
  "/root/repo/tests/test_pos_edge.cpp" "tests/CMakeFiles/air_tests.dir/test_pos_edge.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_pos_edge.cpp.o.d"
  "/root/repo/tests/test_pos_kernel.cpp" "tests/CMakeFiles/air_tests.dir/test_pos_kernel.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_pos_kernel.cpp.o.d"
  "/root/repo/tests/test_process_stats.cpp" "tests/CMakeFiles/air_tests.dir/test_process_stats.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_process_stats.cpp.o.d"
  "/root/repo/tests/test_queuing_discipline.cpp" "tests/CMakeFiles/air_tests.dir/test_queuing_discipline.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_queuing_discipline.cpp.o.d"
  "/root/repo/tests/test_schedulability.cpp" "tests/CMakeFiles/air_tests.dir/test_schedulability.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_schedulability.cpp.o.d"
  "/root/repo/tests/test_spatial.cpp" "tests/CMakeFiles/air_tests.dir/test_spatial.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_spatial.cpp.o.d"
  "/root/repo/tests/test_sporadic.cpp" "tests/CMakeFiles/air_tests.dir/test_sporadic.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_sporadic.cpp.o.d"
  "/root/repo/tests/test_status_report.cpp" "tests/CMakeFiles/air_tests.dir/test_status_report.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_status_report.cpp.o.d"
  "/root/repo/tests/test_trace_export.cpp" "tests/CMakeFiles/air_tests.dir/test_trace_export.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_trace_export.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/air_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_vitral.cpp" "tests/CMakeFiles/air_tests.dir/test_vitral.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_vitral.cpp.o.d"
  "/root/repo/tests/test_world_extra.cpp" "tests/CMakeFiles/air_tests.dir/test_world_extra.cpp.o" "gcc" "tests/CMakeFiles/air_tests.dir/test_world_extra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/air_config.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/air_system.dir/DependInfo.cmake"
  "/root/repo/build/src/vitral/CMakeFiles/air_vitral.dir/DependInfo.cmake"
  "/root/repo/build/src/apex/CMakeFiles/air_apex.dir/DependInfo.cmake"
  "/root/repo/build/src/pmk/CMakeFiles/air_pmk.dir/DependInfo.cmake"
  "/root/repo/build/src/pal/CMakeFiles/air_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/air_pos.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/air_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/hm/CMakeFiles/air_hm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/air_net.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/air_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/air_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/air_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
