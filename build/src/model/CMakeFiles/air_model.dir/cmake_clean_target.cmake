file(REMOVE_RECURSE
  "libair_model.a"
)
