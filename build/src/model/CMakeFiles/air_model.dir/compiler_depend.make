# Empty compiler generated dependencies file for air_model.
# This may be replaced when dependencies are built.
