
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/generator.cpp" "src/model/CMakeFiles/air_model.dir/generator.cpp.o" "gcc" "src/model/CMakeFiles/air_model.dir/generator.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/air_model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/air_model.dir/model.cpp.o.d"
  "/root/repo/src/model/schedulability.cpp" "src/model/CMakeFiles/air_model.dir/schedulability.cpp.o" "gcc" "src/model/CMakeFiles/air_model.dir/schedulability.cpp.o.d"
  "/root/repo/src/model/validation.cpp" "src/model/CMakeFiles/air_model.dir/validation.cpp.o" "gcc" "src/model/CMakeFiles/air_model.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/air_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
