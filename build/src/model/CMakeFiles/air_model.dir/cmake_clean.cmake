file(REMOVE_RECURSE
  "CMakeFiles/air_model.dir/generator.cpp.o"
  "CMakeFiles/air_model.dir/generator.cpp.o.d"
  "CMakeFiles/air_model.dir/model.cpp.o"
  "CMakeFiles/air_model.dir/model.cpp.o.d"
  "CMakeFiles/air_model.dir/schedulability.cpp.o"
  "CMakeFiles/air_model.dir/schedulability.cpp.o.d"
  "CMakeFiles/air_model.dir/validation.cpp.o"
  "CMakeFiles/air_model.dir/validation.cpp.o.d"
  "libair_model.a"
  "libair_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
