file(REMOVE_RECURSE
  "libair_system.a"
)
