file(REMOVE_RECURSE
  "CMakeFiles/air_system.dir/executor.cpp.o"
  "CMakeFiles/air_system.dir/executor.cpp.o.d"
  "CMakeFiles/air_system.dir/module.cpp.o"
  "CMakeFiles/air_system.dir/module.cpp.o.d"
  "CMakeFiles/air_system.dir/world.cpp.o"
  "CMakeFiles/air_system.dir/world.cpp.o.d"
  "libair_system.a"
  "libair_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
