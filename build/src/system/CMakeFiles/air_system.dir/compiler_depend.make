# Empty compiler generated dependencies file for air_system.
# This may be replaced when dependencies are built.
