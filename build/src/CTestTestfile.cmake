# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("hal")
subdirs("model")
subdirs("pos")
subdirs("pal")
subdirs("ipc")
subdirs("hm")
subdirs("pmk")
subdirs("apex")
subdirs("net")
subdirs("config")
subdirs("vitral")
subdirs("system")
