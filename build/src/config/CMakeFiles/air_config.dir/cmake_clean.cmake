file(REMOVE_RECURSE
  "CMakeFiles/air_config.dir/export.cpp.o"
  "CMakeFiles/air_config.dir/export.cpp.o.d"
  "CMakeFiles/air_config.dir/fig8.cpp.o"
  "CMakeFiles/air_config.dir/fig8.cpp.o.d"
  "CMakeFiles/air_config.dir/loader.cpp.o"
  "CMakeFiles/air_config.dir/loader.cpp.o.d"
  "libair_config.a"
  "libair_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
