# Empty compiler generated dependencies file for air_config.
# This may be replaced when dependencies are built.
