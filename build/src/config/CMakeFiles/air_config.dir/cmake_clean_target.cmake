file(REMOVE_RECURSE
  "libair_config.a"
)
