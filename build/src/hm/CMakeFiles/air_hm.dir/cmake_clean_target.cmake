file(REMOVE_RECURSE
  "libair_hm.a"
)
