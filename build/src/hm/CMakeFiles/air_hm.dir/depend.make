# Empty dependencies file for air_hm.
# This may be replaced when dependencies are built.
