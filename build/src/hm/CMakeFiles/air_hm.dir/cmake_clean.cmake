file(REMOVE_RECURSE
  "CMakeFiles/air_hm.dir/health_monitor.cpp.o"
  "CMakeFiles/air_hm.dir/health_monitor.cpp.o.d"
  "libair_hm.a"
  "libair_hm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_hm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
