file(REMOVE_RECURSE
  "libair_vitral.a"
)
