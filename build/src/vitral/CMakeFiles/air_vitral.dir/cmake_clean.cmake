file(REMOVE_RECURSE
  "CMakeFiles/air_vitral.dir/vitral.cpp.o"
  "CMakeFiles/air_vitral.dir/vitral.cpp.o.d"
  "libair_vitral.a"
  "libair_vitral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_vitral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
