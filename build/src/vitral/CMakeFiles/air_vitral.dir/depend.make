# Empty dependencies file for air_vitral.
# This may be replaced when dependencies are built.
