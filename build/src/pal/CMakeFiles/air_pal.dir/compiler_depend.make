# Empty compiler generated dependencies file for air_pal.
# This may be replaced when dependencies are built.
