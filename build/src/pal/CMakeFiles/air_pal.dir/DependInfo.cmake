
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pal/deadline_registry.cpp" "src/pal/CMakeFiles/air_pal.dir/deadline_registry.cpp.o" "gcc" "src/pal/CMakeFiles/air_pal.dir/deadline_registry.cpp.o.d"
  "/root/repo/src/pal/pal.cpp" "src/pal/CMakeFiles/air_pal.dir/pal.cpp.o" "gcc" "src/pal/CMakeFiles/air_pal.dir/pal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pos/CMakeFiles/air_pos.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/air_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
