file(REMOVE_RECURSE
  "libair_pal.a"
)
