file(REMOVE_RECURSE
  "CMakeFiles/air_pal.dir/deadline_registry.cpp.o"
  "CMakeFiles/air_pal.dir/deadline_registry.cpp.o.d"
  "CMakeFiles/air_pal.dir/pal.cpp.o"
  "CMakeFiles/air_pal.dir/pal.cpp.o.d"
  "libair_pal.a"
  "libair_pal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_pal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
