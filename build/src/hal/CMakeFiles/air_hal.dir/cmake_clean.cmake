file(REMOVE_RECURSE
  "CMakeFiles/air_hal.dir/machine.cpp.o"
  "CMakeFiles/air_hal.dir/machine.cpp.o.d"
  "CMakeFiles/air_hal.dir/memory.cpp.o"
  "CMakeFiles/air_hal.dir/memory.cpp.o.d"
  "CMakeFiles/air_hal.dir/mmu.cpp.o"
  "CMakeFiles/air_hal.dir/mmu.cpp.o.d"
  "libair_hal.a"
  "libair_hal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_hal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
