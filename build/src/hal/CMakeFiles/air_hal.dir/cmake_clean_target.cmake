file(REMOVE_RECURSE
  "libair_hal.a"
)
