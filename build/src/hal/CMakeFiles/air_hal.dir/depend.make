# Empty dependencies file for air_hal.
# This may be replaced when dependencies are built.
