file(REMOVE_RECURSE
  "CMakeFiles/air_net.dir/bus.cpp.o"
  "CMakeFiles/air_net.dir/bus.cpp.o.d"
  "libair_net.a"
  "libair_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
