# Empty compiler generated dependencies file for air_net.
# This may be replaced when dependencies are built.
