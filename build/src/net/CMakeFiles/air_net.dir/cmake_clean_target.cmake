file(REMOVE_RECURSE
  "libair_net.a"
)
