file(REMOVE_RECURSE
  "libair_apex.a"
)
