file(REMOVE_RECURSE
  "CMakeFiles/air_apex.dir/apex_core.cpp.o"
  "CMakeFiles/air_apex.dir/apex_core.cpp.o.d"
  "CMakeFiles/air_apex.dir/apex_inter.cpp.o"
  "CMakeFiles/air_apex.dir/apex_inter.cpp.o.d"
  "CMakeFiles/air_apex.dir/apex_intra.cpp.o"
  "CMakeFiles/air_apex.dir/apex_intra.cpp.o.d"
  "CMakeFiles/air_apex.dir/apex_status.cpp.o"
  "CMakeFiles/air_apex.dir/apex_status.cpp.o.d"
  "libair_apex.a"
  "libair_apex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_apex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
