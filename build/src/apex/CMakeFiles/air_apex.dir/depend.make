# Empty dependencies file for air_apex.
# This may be replaced when dependencies are built.
