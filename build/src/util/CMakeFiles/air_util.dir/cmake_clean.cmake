file(REMOVE_RECURSE
  "CMakeFiles/air_util.dir/json.cpp.o"
  "CMakeFiles/air_util.dir/json.cpp.o.d"
  "CMakeFiles/air_util.dir/trace.cpp.o"
  "CMakeFiles/air_util.dir/trace.cpp.o.d"
  "CMakeFiles/air_util.dir/trace_export.cpp.o"
  "CMakeFiles/air_util.dir/trace_export.cpp.o.d"
  "libair_util.a"
  "libair_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
