# Empty compiler generated dependencies file for air_util.
# This may be replaced when dependencies are built.
