file(REMOVE_RECURSE
  "libair_util.a"
)
