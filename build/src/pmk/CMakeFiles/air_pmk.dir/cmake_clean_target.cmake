file(REMOVE_RECURSE
  "libair_pmk.a"
)
