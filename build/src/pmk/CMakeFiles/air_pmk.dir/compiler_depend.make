# Empty compiler generated dependencies file for air_pmk.
# This may be replaced when dependencies are built.
