file(REMOVE_RECURSE
  "CMakeFiles/air_pmk.dir/partition_dispatcher.cpp.o"
  "CMakeFiles/air_pmk.dir/partition_dispatcher.cpp.o.d"
  "CMakeFiles/air_pmk.dir/partition_scheduler.cpp.o"
  "CMakeFiles/air_pmk.dir/partition_scheduler.cpp.o.d"
  "CMakeFiles/air_pmk.dir/schedule.cpp.o"
  "CMakeFiles/air_pmk.dir/schedule.cpp.o.d"
  "CMakeFiles/air_pmk.dir/spatial.cpp.o"
  "CMakeFiles/air_pmk.dir/spatial.cpp.o.d"
  "libair_pmk.a"
  "libair_pmk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_pmk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
