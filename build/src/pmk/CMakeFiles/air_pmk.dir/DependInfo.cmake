
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmk/partition_dispatcher.cpp" "src/pmk/CMakeFiles/air_pmk.dir/partition_dispatcher.cpp.o" "gcc" "src/pmk/CMakeFiles/air_pmk.dir/partition_dispatcher.cpp.o.d"
  "/root/repo/src/pmk/partition_scheduler.cpp" "src/pmk/CMakeFiles/air_pmk.dir/partition_scheduler.cpp.o" "gcc" "src/pmk/CMakeFiles/air_pmk.dir/partition_scheduler.cpp.o.d"
  "/root/repo/src/pmk/schedule.cpp" "src/pmk/CMakeFiles/air_pmk.dir/schedule.cpp.o" "gcc" "src/pmk/CMakeFiles/air_pmk.dir/schedule.cpp.o.d"
  "/root/repo/src/pmk/spatial.cpp" "src/pmk/CMakeFiles/air_pmk.dir/spatial.cpp.o" "gcc" "src/pmk/CMakeFiles/air_pmk.dir/spatial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/air_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/air_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/air_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
