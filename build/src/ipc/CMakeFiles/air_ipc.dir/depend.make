# Empty dependencies file for air_ipc.
# This may be replaced when dependencies are built.
