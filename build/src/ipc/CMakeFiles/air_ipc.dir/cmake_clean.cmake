file(REMOVE_RECURSE
  "CMakeFiles/air_ipc.dir/ports.cpp.o"
  "CMakeFiles/air_ipc.dir/ports.cpp.o.d"
  "CMakeFiles/air_ipc.dir/router.cpp.o"
  "CMakeFiles/air_ipc.dir/router.cpp.o.d"
  "libair_ipc.a"
  "libair_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
