file(REMOVE_RECURSE
  "libair_ipc.a"
)
