file(REMOVE_RECURSE
  "CMakeFiles/air_pos.dir/generic_kernel.cpp.o"
  "CMakeFiles/air_pos.dir/generic_kernel.cpp.o.d"
  "CMakeFiles/air_pos.dir/kernel_base.cpp.o"
  "CMakeFiles/air_pos.dir/kernel_base.cpp.o.d"
  "CMakeFiles/air_pos.dir/rt_kernel.cpp.o"
  "CMakeFiles/air_pos.dir/rt_kernel.cpp.o.d"
  "libair_pos.a"
  "libair_pos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_pos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
