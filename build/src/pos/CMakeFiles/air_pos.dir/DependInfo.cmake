
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pos/generic_kernel.cpp" "src/pos/CMakeFiles/air_pos.dir/generic_kernel.cpp.o" "gcc" "src/pos/CMakeFiles/air_pos.dir/generic_kernel.cpp.o.d"
  "/root/repo/src/pos/kernel_base.cpp" "src/pos/CMakeFiles/air_pos.dir/kernel_base.cpp.o" "gcc" "src/pos/CMakeFiles/air_pos.dir/kernel_base.cpp.o.d"
  "/root/repo/src/pos/rt_kernel.cpp" "src/pos/CMakeFiles/air_pos.dir/rt_kernel.cpp.o" "gcc" "src/pos/CMakeFiles/air_pos.dir/rt_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/air_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
