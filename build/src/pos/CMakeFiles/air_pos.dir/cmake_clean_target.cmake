file(REMOVE_RECURSE
  "libair_pos.a"
)
