# Empty compiler generated dependencies file for air_pos.
# This may be replaced when dependencies are built.
