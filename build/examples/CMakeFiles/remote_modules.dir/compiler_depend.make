# Empty compiler generated dependencies file for remote_modules.
# This may be replaced when dependencies are built.
