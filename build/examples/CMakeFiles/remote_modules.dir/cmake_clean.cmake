file(REMOVE_RECURSE
  "CMakeFiles/remote_modules.dir/remote_modules.cpp.o"
  "CMakeFiles/remote_modules.dir/remote_modules.cpp.o.d"
  "remote_modules"
  "remote_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
