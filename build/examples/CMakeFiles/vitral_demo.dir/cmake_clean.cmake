file(REMOVE_RECURSE
  "CMakeFiles/vitral_demo.dir/vitral_demo.cpp.o"
  "CMakeFiles/vitral_demo.dir/vitral_demo.cpp.o.d"
  "vitral_demo"
  "vitral_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vitral_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
