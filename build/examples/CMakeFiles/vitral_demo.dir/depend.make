# Empty dependencies file for vitral_demo.
# This may be replaced when dependencies are built.
