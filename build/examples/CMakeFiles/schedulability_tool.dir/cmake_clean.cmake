file(REMOVE_RECURSE
  "CMakeFiles/schedulability_tool.dir/schedulability_tool.cpp.o"
  "CMakeFiles/schedulability_tool.dir/schedulability_tool.cpp.o.d"
  "schedulability_tool"
  "schedulability_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedulability_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
