# Empty dependencies file for schedulability_tool.
# This may be replaced when dependencies are built.
