
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/air_config.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/air_system.dir/DependInfo.cmake"
  "/root/repo/build/src/vitral/CMakeFiles/air_vitral.dir/DependInfo.cmake"
  "/root/repo/build/src/apex/CMakeFiles/air_apex.dir/DependInfo.cmake"
  "/root/repo/build/src/pmk/CMakeFiles/air_pmk.dir/DependInfo.cmake"
  "/root/repo/build/src/pal/CMakeFiles/air_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/air_pos.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/air_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/hm/CMakeFiles/air_hm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/air_net.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/air_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/air_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/air_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
