#include "pal/pal.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace air::pal {

Pal::Pal(std::unique_ptr<pos::IKernel> kernel, RegistryKind registry_kind)
    : kernel_(std::move(kernel)) {
  AIR_ASSERT(kernel_ != nullptr);
  fast_.bind(kernel_.get());
  switch (registry_kind) {
    case RegistryKind::kLinkedList:
      registry_ = std::make_unique<ListDeadlineRegistry>();
      break;
    case RegistryKind::kTree:
      registry_ = std::make_unique<TreeDeadlineRegistry>();
      break;
    case RegistryKind::kHeap:
      registry_ = std::make_unique<HeapDeadlineRegistry>();
      break;
  }
}

void Pal::announce_ticks(Ticks now, Ticks elapsed) {
  // Algorithm 3, line 1: *POS_CLOCKTICKANNOUNCE(elapsedTicks). Attributed
  // to the sealed kernel fast path (pos/dispatch.hpp) so the host profile
  // separates "pal;kernel_dispatch" from the PAL's own deadline walk.
  if (profiler_ != nullptr) {
    telemetry::HostProfiler::Scope scope(
        *profiler_, telemetry::ProfilePoint::kKernelDispatch);
    fast_.tick_announce(now, elapsed);
  } else {
    fast_.tick_announce(now, elapsed);
  }

  // Algorithm 3, lines 2-8: check deadlines in ascending order, stopping at
  // the first that has not been violated. Retrieval of the earliest is O(1).
  while (true) {
    const DeadlineRecord* rec = registry_->earliest();
    ++deadline_checks_;
    if (rec == nullptr || rec->deadline >= now) {  // line 3-4
      // Telemetry: the partition's deadline headroom -- the distribution the
      // paper's Fig. 8 discussion reasons about. Sampled once per deadline
      // episode (when a record first reaches the head of the registry), so
      // the steady-state announce path pays two integer compares, not a
      // histogram insertion per tick.
      if (metrics_ != nullptr && rec != nullptr &&
          rec->deadline != kInfiniteTime &&
          (rec->pid != last_slack_pid_ ||
           rec->deadline != last_slack_deadline_)) {
        last_slack_pid_ = rec->pid;
        last_slack_deadline_ = rec->deadline;
        metrics_->observe(telemetry::Metric::kDeadlineSlack, partition_index_,
                          rec->deadline - now);
      }
      break;
    }
    const ProcessId pid = rec->pid;
    const Ticks missed = rec->deadline;
    ++violations_;
    if (metrics_ != nullptr) {
      metrics_->observe(telemetry::Metric::kDeadlineLateness,
                        partition_index_, now - missed);
    }
    // Line 7 before line 6: the record is removed (O(1), pointer already
    // held) before HM_DEADLINEVIOLATED runs, because the Health Monitor's
    // recovery action may re-enter the registry (stopping the process
    // unregisters its deadline; a partition restart clears everything).
    registry_->remove_earliest();
    note_registry_depth();
    if (spans_ != nullptr) {
      // Retire the job span as a miss *before* HM_DEADLINEVIOLATED runs --
      // the recovery action may stop the process, whose unregister must not
      // re-close it -- and latch it as the cause of the imminent HM report.
      const auto it = job_spans_.find(pid);
      if (it != job_spans_.end() && it->second != 0) {
        spans_->set_pending_cause(it->second);
        spans_->end(it->second, now, telemetry::SpanStatus::kDeadlineMiss);
        it->second = 0;  // keep the node: erase+reinsert would allocate
      }
    }
    if (on_deadline_violation) {
      on_deadline_violation(pid, missed, now);  // line 6: HM_DEADLINEVIOLATED
    }
  }
}

Ticks Pal::next_attention_tick() const {
  Ticks next = fast_.next_wake();
  const DeadlineRecord* rec = registry_->earliest();
  if (rec != nullptr && rec->deadline != kInfiniteTime) {
    // First announce(now) with now > deadline treats it as violated.
    next = std::min(next, rec->deadline + 1);
  }
  return next;
}

bool Pal::slack_sample_pending() const {
  if (metrics_ == nullptr) return false;
  const DeadlineRecord* rec = registry_->earliest();
  return rec != nullptr && rec->deadline != kInfiniteTime &&
         (rec->pid != last_slack_pid_ || rec->deadline != last_slack_deadline_);
}

void Pal::advance_idle(Ticks now, Ticks elapsed) {
  AIR_ASSERT_MSG(next_attention_tick() > now,
                 "time-warp span crosses a PAL event");
  AIR_ASSERT_MSG(!slack_sample_pending(),
                 "time-warp span would skip a slack sample");
  // One announce to the end of the span is state-identical to `elapsed`
  // single-tick announces when no timed wait expires inside it.
  fast_.tick_announce(now, elapsed);
  // Algorithm 3's steady-state path retrieves the earliest deadline exactly
  // once per announce.
  deadline_checks_ += static_cast<std::uint64_t>(elapsed);
}

void Pal::register_deadline(ProcessId pid, Ticks absolute_deadline) {
  if (spans_ != nullptr) {
    // A new deadline episode: the previous one (if still open) completed.
    close_job_span(pid, current_time(), telemetry::SpanStatus::kOk);
    if (absolute_deadline != kInfiniteTime) {
      job_spans_[pid] = spans_->begin(
          telemetry::SpanKind::kJob, current_time(),
          spans_->current_window(partition_index_span_), 0,
          partition_index_span_, pid.value(), absolute_deadline);
    }
  }
  if (absolute_deadline == kInfiniteTime) {
    // D = infinity: the notion of deadline violation does not apply (eq. 24).
    registry_->unregister(pid);
  } else {
    registry_->register_deadline(pid, absolute_deadline);
  }
  note_registry_depth();
}

void Pal::unregister_deadline(ProcessId pid) {
  close_job_span(pid, current_time(), telemetry::SpanStatus::kOk);
  registry_->unregister(pid);
  note_registry_depth();
}

void Pal::reset() {
  if (spans_ != nullptr) {
    for (auto& [pid, span] : job_spans_) {
      if (span != 0) {
        spans_->end(span, current_time(), telemetry::SpanStatus::kAborted);
      }
      span = 0;
    }
  }
  registry_->clear();
  kernel_->reset_all();
  last_slack_pid_ = ProcessId::invalid();
  last_slack_deadline_ = kInfiniteTime;
  note_registry_depth();
}

void Pal::close_job_span(ProcessId pid, Ticks at,
                         telemetry::SpanStatus status) {
  if (spans_ == nullptr) return;
  const auto it = job_spans_.find(pid);
  if (it == job_spans_.end() || it->second == 0) return;
  spans_->end(it->second, at, status);
  it->second = 0;  // SpanId 0 = no open episode; the node itself is reused
}

void Pal::note_registry_depth() {
  if (metrics_ != nullptr) {
    metrics_->set(telemetry::Metric::kDeadlineRegistryDepth, partition_index_,
                  static_cast<std::int64_t>(registry_->size()));
  }
}

}  // namespace air::pal
