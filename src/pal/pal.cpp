#include "pal/pal.hpp"

#include "util/assert.hpp"

namespace air::pal {

Pal::Pal(std::unique_ptr<pos::IKernel> kernel, RegistryKind registry_kind)
    : kernel_(std::move(kernel)) {
  AIR_ASSERT(kernel_ != nullptr);
  switch (registry_kind) {
    case RegistryKind::kLinkedList:
      registry_ = std::make_unique<ListDeadlineRegistry>();
      break;
    case RegistryKind::kTree:
      registry_ = std::make_unique<TreeDeadlineRegistry>();
      break;
    case RegistryKind::kHeap:
      registry_ = std::make_unique<HeapDeadlineRegistry>();
      break;
  }
}

void Pal::announce_ticks(Ticks now, Ticks elapsed) {
  // Algorithm 3, line 1: *POS_CLOCKTICKANNOUNCE(elapsedTicks).
  kernel_->tick_announce(now, elapsed);

  // Algorithm 3, lines 2-8: check deadlines in ascending order, stopping at
  // the first that has not been violated. Retrieval of the earliest is O(1).
  while (true) {
    const DeadlineRecord* rec = registry_->earliest();
    ++deadline_checks_;
    if (rec == nullptr || rec->deadline >= now) break;  // line 3-4
    const ProcessId pid = rec->pid;
    const Ticks missed = rec->deadline;
    ++violations_;
    // Line 7 before line 6: the record is removed (O(1), pointer already
    // held) before HM_DEADLINEVIOLATED runs, because the Health Monitor's
    // recovery action may re-enter the registry (stopping the process
    // unregisters its deadline; a partition restart clears everything).
    registry_->remove_earliest();
    if (on_deadline_violation) {
      on_deadline_violation(pid, missed, now);  // line 6: HM_DEADLINEVIOLATED
    }
  }
}

void Pal::register_deadline(ProcessId pid, Ticks absolute_deadline) {
  if (absolute_deadline == kInfiniteTime) {
    // D = infinity: the notion of deadline violation does not apply (eq. 24).
    registry_->unregister(pid);
    return;
  }
  registry_->register_deadline(pid, absolute_deadline);
}

void Pal::unregister_deadline(ProcessId pid) { registry_->unregister(pid); }

void Pal::reset() {
  registry_->clear();
  kernel_->reset_all();
}

}  // namespace air::pal
