// AIR POS Adaptation Layer (PAL) -- Sect. 2.2 and Sect. 5.
//
// The PAL wraps a partition's operating system, hiding its particularities
// from the rest of the AIR architecture. It owns:
//  * the POS kernel instance (RtKernel, GenericKernel, ...);
//  * the per-partition process deadline registry, plus the private
//    register/unregister interfaces the APEX uses (Fig. 6);
//  * the surrogate clock-tick announcement routine (Fig. 7 / Algorithm 3):
//    forward the elapsed ticks to the native POS announce, then verify the
//    earliest deadline(s) and report violations to Health Monitoring.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "pal/deadline_registry.hpp"
#include "pos/dispatch.hpp"
#include "pos/kernel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/spans.hpp"
#include "util/types.hpp"

namespace air::pal {

enum class RegistryKind { kLinkedList, kTree, kHeap };

class Pal {
 public:
  /// Wrap `kernel`; `registry_kind` selects the deadline structure
  /// (kLinkedList is the paper's implementation).
  explicit Pal(std::unique_ptr<pos::IKernel> kernel,
               RegistryKind registry_kind = RegistryKind::kLinkedList);

  [[nodiscard]] pos::IKernel& kernel() { return *kernel_; }
  [[nodiscard]] const pos::IKernel& kernel() const { return *kernel_; }

  /// Sealed fast path over the wrapped kernel (pos/dispatch.hpp); the
  /// per-tick execution layers route their kernel calls through this.
  [[nodiscard]] pos::KernelDispatch& dispatch() { return fast_; }
  [[nodiscard]] const pos::KernelDispatch& dispatch() const { return fast_; }

  /// Surrogate clock tick announcement (Algorithm 3). Invoked by the
  /// partition dispatch path with the module time `now` and the number of
  /// ticks elapsed since this partition last saw the clock. Announces the
  /// ticks to the POS, then checks deadlines: only the earliest is examined
  /// unless it is violated, in which case successive deadlines are checked
  /// (each retrieval O(1)) until one still holds.
  void announce_ticks(Ticks now, Ticks elapsed);

  // --- time-warp support (next-event / bulk-advance interfaces) ---

  /// Earliest future tick at which announce_ticks would do anything beyond
  /// its steady-state "check and break": the earliest POS timer wake, or
  /// the first tick the earliest registered deadline counts as violated
  /// (deadline + 1 -- Algorithm 3 breaks while deadline >= now).
  /// kInfiniteTime when neither is armed.
  [[nodiscard]] Ticks next_attention_tick() const;

  /// True when the next announce would sample the deadline-slack histogram
  /// (a record heads the registry whose episode has not been observed yet).
  /// Such a tick must be stepped, not warped, to keep metrics byte-identical.
  [[nodiscard]] bool slack_sample_pending() const;

  /// Bulk equivalent of `elapsed` quiescent announce_ticks calls ending at
  /// `now`. Preconditions (checked): no timer wake and no deadline violation
  /// occurs in the span, and no slack sample is pending. Replicates the
  /// per-tick counter effects exactly: one POS announce to `now`, plus
  /// `elapsed` steady-state deadline checks.
  void advance_idle(Ticks now, Ticks elapsed);

  /// PAL private interface used by APEX services to register/update a
  /// process's absolute deadline time (Fig. 6).
  void register_deadline(ProcessId pid, Ticks absolute_deadline);

  /// PAL private interface used by APEX services that stop a process or
  /// cancel its deadline.
  void unregister_deadline(ProcessId pid);

  [[nodiscard]] Ticks current_time() const { return fast_.now(); }

  [[nodiscard]] IDeadlineRegistry& registry() { return *registry_; }

  /// Partition restart support: clear deadlines, reset every process.
  void reset();

  /// Number of deadline checks performed inside announce_ticks (earliest
  /// retrievals), and of violations found -- E3/E7 instrumentation.
  [[nodiscard]] std::uint64_t deadline_checks() const {
    return deadline_checks_;
  }
  [[nodiscard]] std::uint64_t violations_detected() const {
    return violations_;
  }

  /// HM_DEADLINEVIOLATED hook: wired to the AIR Health Monitor by the
  /// system layer. Arguments: process id, the deadline that was missed,
  /// and the detection time.
  std::function<void(ProcessId, Ticks deadline, Ticks detected_at)>
      on_deadline_violation;

  /// Publish deadline telemetry (slack/lateness histograms, registry depth
  /// gauge) under partition index `partition` (nullptr = off).
  void set_metrics(telemetry::MetricsRegistry* metrics,
                   std::int32_t partition) {
    metrics_ = metrics;
    partition_index_ = partition;
  }

  /// Record a job span per deadline episode (register_deadline opens,
  /// unregister/violation retires) under partition `partition`; on a
  /// violation the miss cause is latched for the Health Monitor.
  /// nullptr = off.
  void set_spans(telemetry::SpanRecorder* spans, std::int32_t partition) {
    spans_ = spans;
    partition_index_span_ = partition;
  }

  /// Attribute the sealed kernel fast path (tick announce) to the host
  /// profiler's kKernelDispatch point (nullptr = off). Borrowed; host-time
  /// only, never touches deterministic state.
  void set_profiler(telemetry::HostProfiler* profiler) {
    profiler_ = profiler;
  }

  /// Open job span of `pid` (0 = none) -- the causal parent for work the
  /// process initiates (message sends, mode-change requests).
  [[nodiscard]] telemetry::SpanId job_span(ProcessId pid) const {
    if (spans_ == nullptr) return 0;
    const auto it = job_spans_.find(pid);
    return it != job_spans_.end() ? it->second : 0;
  }

 private:
  void note_registry_depth();
  void close_job_span(ProcessId pid, Ticks at, telemetry::SpanStatus status);

  std::unique_ptr<pos::IKernel> kernel_;
  pos::KernelDispatch fast_;  // bound to *kernel_ at construction
  std::unique_ptr<IDeadlineRegistry> registry_;
  std::uint64_t deadline_checks_{0};
  std::uint64_t violations_{0};
  telemetry::MetricsRegistry* metrics_{nullptr};
  std::int32_t partition_index_{-1};
  telemetry::HostProfiler* profiler_{nullptr};
  telemetry::SpanRecorder* spans_{nullptr};
  std::int32_t partition_index_span_{-1};
  std::map<ProcessId, telemetry::SpanId> job_spans_;  // open deadline episodes
  // Last {pid, deadline} sampled into the slack histogram: one observation
  // per deadline episode instead of one per announce.
  ProcessId last_slack_pid_{ProcessId::invalid()};
  Ticks last_slack_deadline_{kInfiniteTime};
};

}  // namespace air::pal
