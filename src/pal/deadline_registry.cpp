#include "pal/deadline_registry.hpp"

#include "util/assert.hpp"

namespace air::pal {

// --- ListDeadlineRegistry ---

DeadlineRecord& ListDeadlineRegistry::slot(ProcessId pid) {
  AIR_ASSERT(pid.valid());
  const auto index = static_cast<std::size_t>(pid.value());
  while (pool_.size() <= index) {
    pool_.emplace_back();
    pool_.back().pid = ProcessId{static_cast<std::int32_t>(pool_.size() - 1)};
  }
  return pool_[index];
}

void ListDeadlineRegistry::register_deadline(ProcessId pid, Ticks deadline) {
  DeadlineRecord& rec = slot(pid);
  if (rec.hook.linked()) {
    rec.hook.unlink();
    --live_;
  }
  rec.deadline = deadline;

  // Walk to the first record with a later deadline and insert before it,
  // keeping ascending order (paper Fig. 6: "if necessary, this information
  // will be moved to keep the deadlines sorted").
  DeadlineRecord* insert_before = nullptr;
  for (DeadlineRecord& other : sorted_) {
    if (other.deadline > deadline) {
      insert_before = &other;
      break;
    }
  }
  sorted_.insert_before(insert_before, rec);
  ++live_;
}

void ListDeadlineRegistry::unregister(ProcessId pid) {
  if (!pid.valid() ||
      static_cast<std::size_t>(pid.value()) >= pool_.size()) {
    return;
  }
  DeadlineRecord& rec = pool_[static_cast<std::size_t>(pid.value())];
  if (rec.hook.linked()) {
    rec.hook.unlink();
    --live_;
  }
}

const DeadlineRecord* ListDeadlineRegistry::earliest() const {
  // O(1): the head of the sorted list.
  auto& self = const_cast<ListDeadlineRegistry&>(*this);
  if (self.sorted_.empty()) return nullptr;
  return &self.sorted_.front();
}

void ListDeadlineRegistry::remove_earliest() {
  AIR_ASSERT(!sorted_.empty());
  // O(1): we already hold the node pointer (paper Sect. 5.3).
  sorted_.pop_front();
  --live_;
}

void ListDeadlineRegistry::clear() {
  sorted_.clear();
  live_ = 0;
}

// --- HeapDeadlineRegistry ---

void HeapDeadlineRegistry::register_deadline(ProcessId pid, Ticks deadline) {
  auto [it, inserted] = generation_.emplace(pid.value(), 0);
  if (!inserted) {
    // An update: the previous heap entry (if any) becomes stale.
    if (it->second % 2 == 1) --live_;  // odd generation = currently live
  }
  // Bump to the next odd generation: live entry.
  it->second += it->second % 2 == 1 ? 2 : 1;
  heap_.push({deadline, pid, it->second});
  ++live_;
}

void HeapDeadlineRegistry::unregister(ProcessId pid) {
  auto it = generation_.find(pid.value());
  if (it == generation_.end() || it->second % 2 == 0) return;
  ++it->second;  // even generation = no live entry
  --live_;
}

void HeapDeadlineRegistry::drop_stale() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    auto it = generation_.find(top.pid.value());
    if (it != generation_.end() && it->second == top.generation) return;
    heap_.pop();  // stale: superseded or unregistered
  }
}

const DeadlineRecord* HeapDeadlineRegistry::earliest() const {
  drop_stale();
  if (heap_.empty()) return nullptr;
  earliest_view_.pid = heap_.top().pid;
  earliest_view_.deadline = heap_.top().deadline;
  return &earliest_view_;
}

void HeapDeadlineRegistry::remove_earliest() {
  drop_stale();
  AIR_ASSERT(!heap_.empty());
  auto it = generation_.find(heap_.top().pid.value());
  AIR_ASSERT(it != generation_.end());
  ++it->second;
  --live_;
  heap_.pop();
}

void HeapDeadlineRegistry::clear() {
  heap_ = {};
  generation_.clear();
  live_ = 0;
}

// --- TreeDeadlineRegistry ---

void TreeDeadlineRegistry::register_deadline(ProcessId pid, Ticks deadline) {
  auto it = by_pid_.find(pid.value());
  if (it != by_pid_.end()) {
    by_deadline_.erase(it->second);
    by_pid_.erase(it);
  }
  auto inserted = by_deadline_.emplace(deadline, pid);
  by_pid_.emplace(pid.value(), inserted);
}

void TreeDeadlineRegistry::unregister(ProcessId pid) {
  auto it = by_pid_.find(pid.value());
  if (it == by_pid_.end()) return;
  by_deadline_.erase(it->second);
  by_pid_.erase(it);
}

const DeadlineRecord* TreeDeadlineRegistry::earliest() const {
  if (by_deadline_.empty()) return nullptr;
  const auto& [deadline, pid] = *by_deadline_.begin();
  earliest_view_.pid = pid;
  earliest_view_.deadline = deadline;
  return &earliest_view_;
}

void TreeDeadlineRegistry::remove_earliest() {
  AIR_ASSERT(!by_deadline_.empty());
  auto it = by_deadline_.begin();
  by_pid_.erase(it->second.value());
  by_deadline_.erase(it);
}

void TreeDeadlineRegistry::clear() {
  by_deadline_.clear();
  by_pid_.clear();
}

}  // namespace air::pal
