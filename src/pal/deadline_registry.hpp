// Process deadline registries (Sect. 5 / 5.3).
//
// The AIR PAL keeps per-partition process deadline information ordered by
// ascending deadline time, so that the earliest deadline is retrievable in
// O(1) inside the clock-tick ISR, and removal-after-violation is O(1) given
// the node pointer.
//
// Two interchangeable implementations:
//  * ListDeadlineRegistry -- the paper's choice: a sorted linked list.
//    register/update is O(n), but runs in the partition's own window, not in
//    the ISR; earliest() and remove_earliest() are O(1).
//  * TreeDeadlineRegistry -- the self-balancing-search-tree alternative the
//    paper discusses and rejects (O(log n) insert, but worse constants and
//    no profit at typical process counts). Kept for the E7 ablation bench.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/intrusive_list.hpp"
#include "util/types.hpp"

namespace air::pal {

struct DeadlineRecord {
  ProcessId pid;
  Ticks deadline{kInfiniteTime};
  util::ListHook hook;
};

class IDeadlineRegistry {
 public:
  virtual ~IDeadlineRegistry() = default;

  /// Insert or update the deadline of `pid` (APEX register interface of
  /// Fig. 6; an update re-sorts the entry).
  virtual void register_deadline(ProcessId pid, Ticks deadline) = 0;

  /// Remove `pid`'s record if present (process stopped / deadline served).
  virtual void unregister(ProcessId pid) = 0;

  /// Earliest registered deadline; nullptr when empty. Must be O(1).
  [[nodiscard]] virtual const DeadlineRecord* earliest() const = 0;

  /// Remove the earliest record (after a violation was reported). O(1).
  virtual void remove_earliest() = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  virtual void clear() = 0;
};

/// Sorted intrusive linked list (the paper's implementation).
class ListDeadlineRegistry final : public IDeadlineRegistry {
 public:
  void register_deadline(ProcessId pid, Ticks deadline) override;
  void unregister(ProcessId pid) override;
  [[nodiscard]] const DeadlineRecord* earliest() const override;
  void remove_earliest() override;
  [[nodiscard]] std::size_t size() const override { return live_; }
  void clear() override;

 private:
  DeadlineRecord& slot(ProcessId pid);

  using List = util::IntrusiveList<DeadlineRecord, &DeadlineRecord::hook>;
  List sorted_;
  // One record slot per pid; deque gives address stability (hooks must not
  // relocate while linked).
  std::deque<DeadlineRecord> pool_;
  std::size_t live_{0};
};

/// Binary-heap variant with lazy deletion: O(log n) register, amortised
/// O(1)+skip earliest. The third point in the Sect. 5.3 design space --
/// cheaper inserts than the list, cheaper constants than the tree, but
/// updates leave stale entries that the ISR-side check must skip, which is
/// exactly the kind of jitter the paper's ISR argument warns about.
class HeapDeadlineRegistry final : public IDeadlineRegistry {
 public:
  void register_deadline(ProcessId pid, Ticks deadline) override;
  void unregister(ProcessId pid) override;
  [[nodiscard]] const DeadlineRecord* earliest() const override;
  void remove_earliest() override;
  [[nodiscard]] std::size_t size() const override { return live_; }
  void clear() override;

 private:
  struct Entry {
    Ticks deadline;
    ProcessId pid;
    std::uint64_t generation;  // stale when != current generation of pid
    friend bool operator>(const Entry& a, const Entry& b) {
      return a.deadline != b.deadline ? a.deadline > b.deadline
                                      : a.pid > b.pid;
    }
  };

  void drop_stale() const;

  // Min-heap via std::priority_queue<greater>.
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
      heap_;
  std::unordered_map<std::int32_t, std::uint64_t> generation_;
  std::size_t live_{0};
  mutable DeadlineRecord earliest_view_;
};

/// Balanced-tree variant (std::multimap is a red-black tree).
class TreeDeadlineRegistry final : public IDeadlineRegistry {
 public:
  void register_deadline(ProcessId pid, Ticks deadline) override;
  void unregister(ProcessId pid) override;
  [[nodiscard]] const DeadlineRecord* earliest() const override;
  void remove_earliest() override;
  [[nodiscard]] std::size_t size() const override { return by_deadline_.size(); }
  void clear() override;

 private:
  std::multimap<Ticks, ProcessId> by_deadline_;
  std::unordered_map<std::int32_t, std::multimap<Ticks, ProcessId>::iterator>
      by_pid_;
  mutable DeadlineRecord earliest_view_;  // materialised for the interface
};

}  // namespace air::pal
