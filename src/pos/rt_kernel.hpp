// Real-time POS kernel: preemptive, priority-driven scheduling with
// FIFO-within-priority, i.e. exactly the heir rule of eq. (14):
//
//   heir(t) = the ready/running process with the greatest priority (lowest
//   numeric value); ties resolved to the oldest in the ready state.
//
// This stands in for RTEMS in the paper's prototype (Sect. 6).
#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "pos/kernel_base.hpp"

namespace air::pos {

// `final` seals the class for the KernelDispatch fast path (pos/dispatch.hpp)
// and lets LTO devirtualize through RtKernel* references.
class RtKernel final : public KernelBase {
 public:
  /// Valid priority range [0, kPriorityLevels).
  static constexpr Priority kPriorityLevels = 256;

  [[nodiscard]] std::string_view kind() const override { return "rt"; }

  ProcessId schedule() override;
  void set_priority(ProcessId id, Priority priority) override;

 protected:
  void enqueue_ready(ProcessControlBlock& pcb) override;
  void dequeue_ready(ProcessControlBlock& pcb) override;
  [[nodiscard]] ProcessId pick_heir() override;

 private:
  // One FIFO per priority level. The running process stays at the front of
  // its queue: it entered the ready state before every process behind it,
  // so eq. (14)'s age tie-break is the queue order itself.
  std::array<std::deque<ProcessId>, kPriorityLevels> ready_;
  // Occupancy bitmap over ready_: bit p set iff ready_[p] is non-empty.
  // pick_heir() runs per simulated tick; find-first-set over four words
  // replaces a scan of 256 deque headers (DESIGN.md §11).
  static constexpr std::size_t kWords = kPriorityLevels / 64;
  std::array<std::uint64_t, kWords> occupancy_{};
};

}  // namespace air::pos
