#include "pos/generic_kernel.hpp"

#include <algorithm>

namespace air::pos {

void GenericKernel::enqueue_ready(ProcessControlBlock& pcb) {
  run_queue_.push_back(pcb.id);
}

void GenericKernel::dequeue_ready(ProcessControlBlock& pcb) {
  auto it = std::find(run_queue_.begin(), run_queue_.end(), pcb.id);
  if (it != run_queue_.end()) run_queue_.erase(it);
}

ProcessId GenericKernel::pick_heir() {
  return run_queue_.empty() ? ProcessId::invalid() : run_queue_.front();
}

ProcessId GenericKernel::schedule() {
  if (run_queue_.empty()) {
    current_ = ProcessId::invalid();
    return current_;
  }
  count_dispatch(run_queue_.front() != current_ ||
                 (current_.valid() && run_queue_.size() > 1));
  // Round-robin: the previous head moves to the tail on every scheduling
  // decision, giving a one-tick time slice.
  if (current_.valid() && run_queue_.size() > 1 &&
      run_queue_.front() == current_) {
    run_queue_.pop_front();
    run_queue_.push_back(current_);
    ProcessControlBlock* prev = pcb(current_);
    if (prev != nullptr && prev->state == ProcessState::kRunning) {
      set_state(*prev, ProcessState::kReady);
    }
  }
  current_ = run_queue_.front();
  set_state(pcb_ref(current_), ProcessState::kRunning);
  return current_;
}

void GenericKernel::set_priority(ProcessId id, Priority priority) {
  pcb_ref(id).current_priority = priority;  // recorded, not honoured
}

bool GenericKernel::try_disable_clock_interrupt() {
  ++traps_;
  if (on_paravirt_trap) on_paravirt_trap();
  return false;
}

}  // namespace air::pos
