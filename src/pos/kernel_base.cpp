#include "pos/kernel_base.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace air::pos {

ProcessId KernelBase::create_process(ProcessAttributes attrs) {
  ProcessControlBlock pcb;
  pcb.id = ProcessId{static_cast<std::int32_t>(table_.size())};
  pcb.current_priority = attrs.priority;
  pcb.attrs = std::move(attrs);
  table_.push_back(std::move(pcb));
  wake_col_.push_back(kInfiniteTime);  // dormant: no timer armed
  susp_col_.push_back(0);
  return table_.back().id;
}

ProcessControlBlock* KernelBase::pcb(ProcessId id) {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= table_.size()) {
    return nullptr;
  }
  return &table_[static_cast<std::size_t>(id.value())];
}

const ProcessControlBlock* KernelBase::pcb(ProcessId id) const {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= table_.size()) {
    return nullptr;
  }
  return &table_[static_cast<std::size_t>(id.value())];
}

ProcessId KernelBase::find_process(std::string_view name) const {
  for (const auto& pcb : table_) {
    if (pcb.attrs.name == name) return pcb.id;
  }
  return ProcessId::invalid();
}

ProcessControlBlock& KernelBase::pcb_ref(ProcessId id) {
  ProcessControlBlock* p = pcb(id);
  AIR_ASSERT_MSG(p != nullptr, "invalid process id");
  return *p;
}

void KernelBase::set_state(ProcessControlBlock& pcb, ProcessState state) {
  if (pcb.state == state) return;
  const bool was_schedulable = pcb.schedulable();
  pcb.state = state;
  if (pcb.schedulable() != was_schedulable) {
    schedulable_count_ += pcb.schedulable() ? 1 : std::size_t(-1);
  }
  sync_wait_cols(pcb);
  if (on_state_change) on_state_change(pcb.id, state);
}

void KernelBase::make_ready(ProcessId id) {
  ProcessControlBlock& p = pcb_ref(id);
  if (p.schedulable()) return;
  p.wait_reason = WaitReason::kNone;
  p.wake_time = kInfiniteTime;
  p.ready_seq = ++ready_counter_;
  set_state(p, ProcessState::kReady);
  enqueue_ready(p);
}

void KernelBase::make_dormant(ProcessId id) {
  ProcessControlBlock& p = pcb_ref(id);
  if (p.schedulable()) dequeue_ready(p);
  if (current_ == id) current_ = ProcessId::invalid();
  p.wait_reason = WaitReason::kNone;
  p.wake_time = kInfiniteTime;
  p.suspended = false;
  p.wake_result = WakeResult::kStopped;
  set_state(p, ProcessState::kDormant);
}

void KernelBase::block(ProcessId id, WaitReason reason, Ticks wake_time) {
  ProcessControlBlock& p = pcb_ref(id);
  AIR_ASSERT_MSG(p.schedulable(), "only a schedulable process can block");
  dequeue_ready(p);
  if (current_ == id) current_ = ProcessId::invalid();
  p.wait_reason = reason;
  p.wake_time = wake_time;
  p.wake_result = WakeResult::kNone;
  set_state(p, ProcessState::kWaiting);
}

void KernelBase::wake(ProcessId id, WakeResult result) {
  ProcessControlBlock& p = pcb_ref(id);
  if (p.state != ProcessState::kWaiting) return;
  p.wake_result = result;
  if (p.suspended) {
    // ARINC 653: a suspended process stays ineligible until RESUME; remember
    // that its underlying wait has concluded.
    p.wait_reason = WaitReason::kSuspended;
    p.wake_time = kInfiniteTime;
    sync_wait_cols(p);  // disarms the timer column while still kWaiting
    return;
  }
  p.wait_reason = WaitReason::kNone;
  p.wake_time = kInfiniteTime;
  p.ready_seq = ++ready_counter_;
  set_state(p, ProcessState::kReady);
  enqueue_ready(p);
}

void KernelBase::retarget_wait(ProcessId id, WaitReason reason,
                               Ticks wake_time) {
  ProcessControlBlock& p = pcb_ref(id);
  AIR_ASSERT_MSG(p.state == ProcessState::kWaiting,
                 "retarget_wait: process is not waiting");
  p.wait_reason = reason;
  p.wake_time = wake_time;
  sync_wait_cols(p);
}

void KernelBase::suspend(ProcessId id, Ticks wake_time) {
  ProcessControlBlock& p = pcb_ref(id);
  if (p.state == ProcessState::kDormant) return;
  p.suspended = true;
  if (p.schedulable()) {
    block(id, WaitReason::kSuspended, wake_time);
  } else {
    // A waiting process keeps its wait; the suspended flag defers
    // eligibility (and moves the armed timer to the suspended sweep).
    sync_wait_cols(p);
  }
}

void KernelBase::resume(ProcessId id) {
  ProcessControlBlock& p = pcb_ref(id);
  if (!p.suspended) return;
  p.suspended = false;
  sync_wait_cols(p);
  if (p.state == ProcessState::kWaiting &&
      p.wait_reason == WaitReason::kSuspended) {
    // Either the suspension itself, or an underlying wait that has already
    // concluded (wake_result set by wake() while suspended).
    wake(id, p.wake_result == WakeResult::kNone ? WakeResult::kOk
                                                : p.wake_result);
  }
}

void KernelBase::tick_announce(Ticks now, Ticks elapsed) {
  AIR_ASSERT(elapsed >= 0);
  now_ = now;

  // Wake expired timed waits in deterministic (wake_time, id) order.
  // due_scratch_ keeps its capacity across announces: the steady state
  // sweeps without touching the heap. The sweep reads only the hot
  // columns (wake_col_ is kInfiniteTime unless the process is waiting, so
  // one compare covers the state + armed-timer + expiry predicate).
  due_scratch_.clear();
  for (std::size_t i = 0; i < wake_col_.size(); ++i) {
    if (wake_col_[i] <= now_ && susp_col_[i] == 0) {
      due_scratch_.emplace_back(wake_col_[i],
                                ProcessId{static_cast<std::int32_t>(i)});
    }
  }
  std::sort(due_scratch_.begin(), due_scratch_.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  for (const auto& d : due_scratch_) {
    ProcessControlBlock& p = pcb_ref(d.second);
    const bool timeoutish = p.wait_reason == WaitReason::kDelay ||
                            p.wait_reason == WaitReason::kNextRelease ||
                            p.wait_reason == WaitReason::kDelayedStart;
    wake(d.second, timeoutish ? WakeResult::kOk : WakeResult::kTimeout);
  }

  // Suspended-with-timeout processes whose timeout expired.
  for (std::size_t i = 0; i < wake_col_.size(); ++i) {
    if (wake_col_[i] <= now_ && susp_col_[i] != 0) {
      ProcessControlBlock& p = table_[i];
      p.suspended = false;
      p.wake_time = kInfiniteTime;
      sync_wait_cols(p);
      wake(p.id, WakeResult::kTimeout);
    }
  }
}

void KernelBase::reset_all() {
  for (auto& p : table_) {
    if (p.schedulable()) dequeue_ready(p);
    p.state = ProcessState::kDormant;
    p.wait_reason = WaitReason::kNone;
    p.wake_time = kInfiniteTime;
    p.wake_result = WakeResult::kNone;
    p.suspended = false;
    p.release_pending = false;
    p.sporadic_active = false;
    p.pc = 0;
    p.op_progress = 0;
    p.inbox.clear();
    p.current_priority = p.attrs.priority;
    p.absolute_deadline = kInfiniteTime;
    p.next_release = 0;
    if (on_state_change) on_state_change(p.id, ProcessState::kDormant);
  }
  // The loop edits PCBs in place (deliberately not via set_state: restart
  // traces one dormant event per process); reset the columns wholesale.
  std::fill(wake_col_.begin(), wake_col_.end(), kInfiniteTime);
  std::fill(susp_col_.begin(), susp_col_.end(), std::uint8_t{0});
  schedulable_count_ = 0;
  current_ = ProcessId::invalid();
  preemption_lock_ = 0;
}

Ticks KernelBase::next_wake() const {
  // Both tick_announce loops key on the same predicate (waiting with a
  // finite wake_time; the suspended flag only changes *how* the expiry is
  // handled), so one min-fold over the timer column covers every armed
  // timer -- non-waiting entries sit at kInfiniteTime and fold away.
  Ticks earliest = kInfiniteTime;
  for (const Ticks w : wake_col_) earliest = std::min(earliest, w);
  return earliest;
}

std::size_t KernelBase::ready_depth() const { return schedulable_count_; }

}  // namespace air::pos
