// Sealed fast-path dispatch over the concrete POS kernels.
//
// pos::IKernel stays the extension seam -- any operating system can be
// wrapped behind it -- but the per-tick hot path (Algorithm 3's announce,
// the warp engine's next_wake probe, the executor's schedule/pcb pair) paid
// a virtual dispatch per simulated tick for what is, in every stock
// configuration, one of exactly two final classes. KernelDispatch binds
// once at Pal construction: it classifies the kernel (RtKernel /
// GenericKernel / anything else) and routes the hot calls through
// *qualified* member calls on the sealed types, which the compiler can
// resolve -- and, under LTO, inline -- statically. Unknown IKernel
// implementations fall back to plain virtual dispatch, so the fast path is
// an optimization, never a semantic fork (tests/test_kernel_dispatch.cpp
// drives both paths through randomized schedules and asserts identical
// behaviour).
//
// RtKernel and GenericKernel are `final` and KernelBase's table/time
// machinery overrides are `final`: the qualified calls below are provably
// the calls virtual dispatch would have made.
#pragma once

#include "pos/generic_kernel.hpp"
#include "pos/kernel.hpp"
#include "pos/rt_kernel.hpp"

namespace air::pos {

enum class KernelKind : std::uint8_t { kRt, kGeneric, kVirtual };

class KernelDispatch {
 public:
  KernelDispatch() = default;
  explicit KernelDispatch(IKernel* kernel) { bind(kernel); }

  /// Classify `kernel` once; hot calls thereafter branch on the sealed
  /// kind instead of loading a vtable entry per tick.
  void bind(IKernel* kernel) {
    iface_ = kernel;
    if (dynamic_cast<RtKernel*>(kernel) != nullptr) {
      kind_ = KernelKind::kRt;
    } else if (dynamic_cast<GenericKernel*>(kernel) != nullptr) {
      kind_ = KernelKind::kGeneric;
    } else {
      kind_ = KernelKind::kVirtual;
    }
  }

  [[nodiscard]] IKernel* get() const { return iface_; }
  [[nodiscard]] KernelKind kind() const { return kind_; }

  // --- per-tick hot calls ---

  void tick_announce(Ticks now, Ticks elapsed) {
    // Both sealed kernels inherit KernelBase's (final) announce; one
    // qualified call covers them.
    if (kind_ != KernelKind::kVirtual) {
      static_cast<KernelBase*>(iface_)->KernelBase::tick_announce(now,
                                                                  elapsed);
    } else {
      iface_->tick_announce(now, elapsed);
    }
  }

  [[nodiscard]] Ticks next_wake() const {
    if (kind_ != KernelKind::kVirtual) {
      return static_cast<const KernelBase*>(iface_)->KernelBase::next_wake();
    }
    return iface_->next_wake();
  }

  [[nodiscard]] Ticks now() const {
    if (kind_ != KernelKind::kVirtual) {
      return static_cast<const KernelBase*>(iface_)->KernelBase::now();
    }
    return iface_->now();
  }

  [[nodiscard]] ProcessId current() const {
    if (kind_ != KernelKind::kVirtual) {
      return static_cast<const KernelBase*>(iface_)->KernelBase::current();
    }
    return iface_->current();
  }

  ProcessId schedule() {
    switch (kind_) {
      case KernelKind::kRt:
        return static_cast<RtKernel*>(iface_)->RtKernel::schedule();
      case KernelKind::kGeneric:
        return static_cast<GenericKernel*>(iface_)->GenericKernel::schedule();
      case KernelKind::kVirtual:
        break;
    }
    return iface_->schedule();
  }

  [[nodiscard]] ProcessControlBlock* pcb(ProcessId id) {
    if (kind_ != KernelKind::kVirtual) {
      return static_cast<KernelBase*>(iface_)->KernelBase::pcb(id);
    }
    return iface_->pcb(id);
  }

 private:
  IKernel* iface_{nullptr};
  KernelKind kind_{KernelKind::kVirtual};
};

}  // namespace air::pos
