// Partition Operating System (POS) kernel interface.
//
// AIR foresees a different operating system per partition (Sect. 2 / 2.2);
// the PAL wraps each of them behind one interface. IKernel is that
// interface: mechanical process-table, blocking and scheduling primitives.
// ARINC 653 *semantics* (what START/SUSPEND/... mean) live in src/apex,
// layered on these primitives, which is what keeps the kernels swappable.
#pragma once

#include <functional>
#include <string_view>

#include "pos/process.hpp"
#include "util/types.hpp"

namespace air::pos {

class IKernel {
 public:
  virtual ~IKernel() = default;

  /// Kernel flavour: "rt" (priority preemptive RTOS) or "generic"
  /// (round-robin, non-real-time -- Sect. 2.5).
  [[nodiscard]] virtual std::string_view kind() const = 0;

  // --- process table ---
  virtual ProcessId create_process(ProcessAttributes attrs) = 0;
  [[nodiscard]] virtual ProcessControlBlock* pcb(ProcessId id) = 0;
  [[nodiscard]] virtual const ProcessControlBlock* pcb(
      ProcessId id) const = 0;
  [[nodiscard]] virtual std::size_t process_count() const = 0;
  [[nodiscard]] virtual ProcessId find_process(
      std::string_view name) const = 0;

  // --- state transitions (mechanical; APEX validates modes/rights) ---
  virtual void make_ready(ProcessId id) = 0;
  virtual void make_dormant(ProcessId id) = 0;
  virtual void block(ProcessId id, WaitReason reason, Ticks wake_time) = 0;
  virtual void wake(ProcessId id, WakeResult result) = 0;
  /// Re-aim an already-waiting process's wait (reason + wake time) without
  /// a state transition -- e.g. APEX parking a sporadic process for its
  /// next release point. The one sanctioned way to touch a waiting PCB's
  /// timer fields: the kernel keeps its timer index in sync with them.
  virtual void retarget_wait(ProcessId id, WaitReason reason,
                             Ticks wake_time) = 0;
  virtual void set_priority(ProcessId id, Priority priority) = 0;
  virtual void suspend(ProcessId id, Ticks wake_time) = 0;
  virtual void resume(ProcessId id) = 0;

  // --- time (driven by the PAL surrogate clock announce, Fig. 7) ---
  /// Announce that the partition-local view of time is `now`; `elapsed`
  /// ticks passed since the previous announce (> 1 right after the
  /// partition regains the processor). Wakes every expired timed wait.
  virtual void tick_announce(Ticks now, Ticks elapsed) = 0;
  [[nodiscard]] virtual Ticks now() const = 0;
  /// Earliest tick at which a timed wait (delay, timed block, suspended
  /// with timeout) expires; kInfiniteTime when no timer is armed. The
  /// time-warp engine uses this to bound how far a quiescent partition can
  /// be fast-forwarded without missing a wake-up.
  [[nodiscard]] virtual Ticks next_wake() const = 0;

  // --- scheduling ---
  /// Select the heir process (eq. 14 for the RT kernel), mark it running,
  /// and return it; ProcessId::invalid() when no process is schedulable.
  virtual ProcessId schedule() = 0;
  [[nodiscard]] virtual ProcessId current() const = 0;

  virtual void lock_preemption() = 0;
  virtual void unlock_preemption() = 0;
  [[nodiscard]] virtual bool preemption_locked() const = 0;

  // --- scheduling statistics (observability; scraped into telemetry) ---
  /// schedule() calls that selected an heir.
  [[nodiscard]] virtual std::uint64_t dispatch_count() const = 0;
  /// Dispatches where the heir differed from the running process.
  [[nodiscard]] virtual std::uint64_t process_switches() const = 0;
  /// Processes currently ready or running (process scheduler queue depth).
  [[nodiscard]] virtual std::size_t ready_depth() const = 0;

  /// Partition restart: every process back to dormant, script pointers
  /// rewound, queues cleared. Process table itself is preserved (ARINC 653
  /// processes are re-started, not re-created, on partition restart).
  virtual void reset_all() = 0;

  // --- observation hooks (wired by the system layer) ---
  /// Invoked on every process state change (for the trace).
  std::function<void(ProcessId, ProcessState)> on_state_change;
};

}  // namespace air::pos
