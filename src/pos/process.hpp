// Process control block and attributes, shared by every partition operating
// system (POS) kernel.
//
// Maps the paper's process model: attributes are tau_{m,q} = <T, D, p, C>
// (eq. 11); the dynamic part mirrors the status S(t) = <D', p', St> of
// eq. (12) with states per eq. (13).
#pragma once

#include <cstdint>
#include <string>

#include "pos/workload.hpp"
#include "util/types.hpp"

namespace air::pos {

/// eq. (13): St in {dormant, ready, running, waiting}.
enum class ProcessState : std::uint8_t {
  kDormant = 0,
  kReady = 1,
  kRunning = 2,
  kWaiting = 3,
};

[[nodiscard]] constexpr const char* to_string(ProcessState s) {
  switch (s) {
    case ProcessState::kDormant: return "dormant";
    case ProcessState::kReady: return "ready";
    case ProcessState::kRunning: return "running";
    case ProcessState::kWaiting: return "waiting";
  }
  return "?";
}

/// Why a waiting process waits (delay, semaphore, period, ... -- Sect. 3.3).
enum class WaitReason : std::uint8_t {
  kNone = 0,
  kDelay,        // TIMED_WAIT
  kNextRelease,  // PERIODIC_WAIT
  kSporadic,     // sporadic activation wait (release + min inter-arrival)
  kSuspended,    // SUSPEND / SUSPEND_SELF
  kDelayedStart, // DELAYED_START
  kSemaphore,
  kEvent,
  kQueuingPort,
  kBuffer,
  kBlackboard,
};

/// Static attributes fixed at CREATE_PROCESS time (ARINC 653 forbids
/// changing them afterwards).
struct ProcessAttributes {
  std::string name;
  Script script;               // the process body (interpreted workload)
  Ticks period{kInfiniteTime}; // T; kInfiniteTime marks an aperiodic process
  Ticks time_capacity{kInfiniteTime};  // D (relative deadline / budget)
  Priority priority{0};        // p (lower value = greater priority)
  std::size_t stack_bytes{4096};
  /// Sporadic process: `period` is the enforced *minimum inter-arrival*
  /// between activations (eq. 11's reading of T for sporadic processes),
  /// not a release period; activations are triggered by release_process.
  bool sporadic{false};

  [[nodiscard]] bool periodic() const {
    return period != kInfiniteTime && !sporadic;
  }
};

/// How a blocking wait concluded; the executor turns this into the APEX
/// return code of the service that blocked.
enum class WakeResult : std::uint8_t {
  kNone = 0,
  kOk,        // event arrived / resource granted
  kTimeout,   // wait timed out
  kStopped,   // process was stopped while waiting
};

struct ProcessControlBlock {
  ProcessId id;
  ProcessAttributes attrs;

  // --- dynamic status S(t), eq. (12) ---
  ProcessState state{ProcessState::kDormant};
  Priority current_priority{0};          // p'(t)
  Ticks absolute_deadline{kInfiniteTime};  // D'(t)

  WaitReason wait_reason{WaitReason::kNone};
  Ticks wake_time{kInfiniteTime};  // for timed waits; kInfiniteTime = forever
  WakeResult wake_result{WakeResult::kNone};

  /// Absolute expiry of the timeout of the blocking APEX call in progress.
  /// Preserved across spurious wake/retry cycles so a retried call re-blocks
  /// with the original deadline, not a fresh one.
  Ticks wait_deadline{kInfiniteTime};

  /// Next release point of a periodic process, or the release instant of
  /// the current/most recent activation of a sporadic process.
  Ticks next_release{0};

  /// Sporadic activation control: a release arrived while the process was
  /// still busy with the previous activation (at most one is buffered;
  /// further releases are counted as lost -- event overload, eq. 11's
  /// inter-arrival bound at work).
  bool release_pending{false};
  std::uint64_t lost_releases{0};
  /// A sporadic activation is in progress (set on release, cleared when the
  /// process calls sporadic_wait again) -- gates response-time accounting.
  bool sporadic_active{false};

  /// FIFO-within-priority ordering key: strictly increasing sequence number
  /// stamped each time the process enters the ready state (eq. 14's "oldest
  /// ready first" tie-break).
  std::uint64_t ready_seq{0};

  // --- workload interpreter state ---
  std::size_t pc{0};             // index into attrs.script
  Ticks op_progress{0};          // ticks spent in the current OpCompute
  bool op_blocked{false};        // the op at pc blocked; re-issue on resume
  /// Incremented on every (re)start. The executor compares it around a
  /// service call: a change means the process was restarted from its entry
  /// address by the call itself (or by HM recovery it triggered), so the
  /// program counter must not be advanced past the fresh entry.
  std::uint64_t start_epoch{0};
  std::string inbox;             // last message received by a port/buffer op
  std::int32_t last_status{0};   // last APEX return code observed (debug)

  /// Set while the process is suspended *in addition* to another wait
  /// (ARINC 653: SUSPEND on a waiting process defers its eligibility).
  bool suspended{false};

  // --- per-activation statistics (periodic processes; Sect. 5 diagnostics
  // support: "almost immediate insight on possible underdimensioning") ---
  std::uint64_t completions{0};      // activations that reached PERIODIC_WAIT
  Ticks total_response{0};           // sum of (completion - release)
  Ticks max_response{0};             // worst observed response time
  std::uint64_t deadline_misses{0};  // violations reported by the PAL

  [[nodiscard]] bool schedulable() const {
    return state == ProcessState::kReady || state == ProcessState::kRunning;
  }
};

}  // namespace air::pos
