// Deterministic process workloads.
//
// The paper's prototype runs "RTEMS-based mockup applications representative
// of typical functions present in a satellite system" (Sect. 6). We model a
// process body as a small interpreted program (a Script of Ops) so that
// every experiment replays bit-for-bit. Ops are plain data: the executor in
// src/system interprets them against the APEX interface, exactly as mockup
// application code would call APEX services.
//
// A script wraps to its first op after the last one, which models the usual
// infinite loop of a (periodic) avionics process body.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/types.hpp"

namespace air::pos {

/// Burn CPU for `ticks` ticks (the only time-consuming op).
struct OpCompute {
  Ticks ticks{1};
};

/// APEX PERIODIC_WAIT: block until the next release point.
struct OpPeriodicWait {};

/// Sporadic activation wait: block until another process releases this one
/// *and* the minimum inter-arrival time (the process period, per the system
/// model: "T represents the lower bound for the time between consecutive
/// activations") has elapsed since the previous activation.
struct OpSporadicWait {};

/// Release a named sporadic process of the same partition (the activation
/// still honours the target's minimum inter-arrival).
struct OpReleaseProcess {
  std::string process;
};

/// APEX TIMED_WAIT: block for `delay` ticks.
struct OpTimedWait {
  Ticks delay{1};
};

/// APEX SUSPEND_SELF with timeout (kInfiniteTime = until resumed).
struct OpSuspendSelf {
  Ticks timeout{kInfiniteTime};
};

/// APEX STOP_SELF: back to dormant.
struct OpStopSelf {};

/// APEX REPLENISH: push the absolute deadline to now + budget.
struct OpReplenish {
  Ticks budget{0};
};

struct OpLockPreemption {};
struct OpUnlockPreemption {};

/// Intrapartition semaphore ops (index into the partition's semaphore table).
struct OpSemWait {
  std::int32_t semaphore{0};
  Ticks timeout{kInfiniteTime};
};
struct OpSemSignal {
  std::int32_t semaphore{0};
};

/// Intrapartition event ops.
struct OpEventSet {
  std::int32_t event{0};
};
struct OpEventReset {
  std::int32_t event{0};
};
struct OpEventWait {
  std::int32_t event{0};
  Ticks timeout{kInfiniteTime};
};

/// Intrapartition buffer (message queue) ops.
struct OpBufferSend {
  std::int32_t buffer{0};
  std::string message;
  Ticks timeout{kInfiniteTime};
};
struct OpBufferReceive {
  std::int32_t buffer{0};
  Ticks timeout{kInfiniteTime};
};

/// Intrapartition blackboard ops.
struct OpBlackboardDisplay {
  std::int32_t blackboard{0};
  std::string message;
};
struct OpBlackboardRead {
  std::int32_t blackboard{0};
  Ticks timeout{kInfiniteTime};
};

/// Interpartition port ops (index into the partition's port table).
struct OpSamplingWrite {
  std::int32_t port{0};
  std::string message;
};
struct OpSamplingRead {
  std::int32_t port{0};
};
struct OpQueuingSend {
  std::int32_t port{0};
  std::string message;
  Ticks timeout{kInfiniteTime};
};
struct OpQueuingReceive {
  std::int32_t port{0};
  Ticks timeout{kInfiniteTime};
};

/// APEX SET_MODULE_SCHEDULE (mode-based schedules, Sect. 4.2); only system
/// partitions are authorised.
struct OpSetModuleSchedule {
  std::int32_t schedule{0};
};

/// APEX RAISE_APPLICATION_ERROR.
struct OpRaiseError {
  std::int32_t code{0};
  std::string message;
};

/// Attempt to disable the timer interrupt -- what a non-paravirtualised
/// guest kernel might do; the PMK gate refuses and traps (Sect. 2.5).
struct OpTryDisableClockIrq {};

/// Touch simulated memory at a virtual address (spatial partitioning demo;
/// an out-of-partition address faults into the Health Monitor).
struct OpMemoryAccess {
  std::uint32_t vaddr{0};
  bool write{false};
};

/// APEX STOP on a named process of the same partition (used, e.g., by error
/// handler processes to stop a faulty process -- a Sect. 5 recovery action).
struct OpStopProcess {
  std::string process;
};

/// APEX START on a named process of the same partition.
struct OpStartProcess {
  std::string process;
};

/// Emit a line on the partition's console (VITRAL window).
struct OpLog {
  std::string text;
};

/// Jump to script index `target` (loops; default wrap already loops to 0).
struct OpGoto {
  std::size_t target{0};
};

using Op = std::variant<
    OpCompute, OpPeriodicWait, OpSporadicWait, OpReleaseProcess, OpTimedWait,
    OpSuspendSelf, OpStopSelf, OpReplenish, OpLockPreemption,
    OpUnlockPreemption, OpSemWait, OpSemSignal, OpEventSet, OpEventReset,
    OpEventWait, OpBufferSend, OpBufferReceive, OpBlackboardDisplay,
    OpBlackboardRead, OpSamplingWrite, OpSamplingRead, OpQueuingSend,
    OpQueuingReceive, OpSetModuleSchedule, OpRaiseError,
    OpTryDisableClockIrq, OpMemoryAccess, OpStopProcess, OpStartProcess,
    OpLog, OpGoto>;

using Script = std::vector<Op>;

/// Fluent helper for building scripts in examples/tests:
///   auto s = ScriptBuilder{}.compute(30).log("done").periodic_wait().build();
class ScriptBuilder {
 public:
  ScriptBuilder& compute(Ticks ticks) { return add(OpCompute{ticks}); }
  ScriptBuilder& periodic_wait() { return add(OpPeriodicWait{}); }
  ScriptBuilder& sporadic_wait() { return add(OpSporadicWait{}); }
  ScriptBuilder& release_process(std::string name) {
    return add(OpReleaseProcess{std::move(name)});
  }
  ScriptBuilder& timed_wait(Ticks d) { return add(OpTimedWait{d}); }
  ScriptBuilder& suspend_self(Ticks timeout = kInfiniteTime) {
    return add(OpSuspendSelf{timeout});
  }
  ScriptBuilder& stop_self() { return add(OpStopSelf{}); }
  ScriptBuilder& replenish(Ticks budget) { return add(OpReplenish{budget}); }
  ScriptBuilder& sem_wait(std::int32_t sem, Ticks timeout = kInfiniteTime) {
    return add(OpSemWait{sem, timeout});
  }
  ScriptBuilder& sem_signal(std::int32_t sem) { return add(OpSemSignal{sem}); }
  ScriptBuilder& event_set(std::int32_t ev) { return add(OpEventSet{ev}); }
  ScriptBuilder& event_reset(std::int32_t ev) { return add(OpEventReset{ev}); }
  ScriptBuilder& event_wait(std::int32_t ev, Ticks timeout = kInfiniteTime) {
    return add(OpEventWait{ev, timeout});
  }
  ScriptBuilder& buffer_send(std::int32_t buf, std::string msg,
                             Ticks timeout = kInfiniteTime) {
    return add(OpBufferSend{buf, std::move(msg), timeout});
  }
  ScriptBuilder& buffer_receive(std::int32_t buf,
                                Ticks timeout = kInfiniteTime) {
    return add(OpBufferReceive{buf, timeout});
  }
  ScriptBuilder& blackboard_display(std::int32_t bb, std::string msg) {
    return add(OpBlackboardDisplay{bb, std::move(msg)});
  }
  ScriptBuilder& blackboard_read(std::int32_t bb,
                                 Ticks timeout = kInfiniteTime) {
    return add(OpBlackboardRead{bb, timeout});
  }
  ScriptBuilder& sampling_write(std::int32_t port, std::string msg) {
    return add(OpSamplingWrite{port, std::move(msg)});
  }
  ScriptBuilder& sampling_read(std::int32_t port) {
    return add(OpSamplingRead{port});
  }
  ScriptBuilder& queuing_send(std::int32_t port, std::string msg,
                              Ticks timeout = kInfiniteTime) {
    return add(OpQueuingSend{port, std::move(msg), timeout});
  }
  ScriptBuilder& queuing_receive(std::int32_t port,
                                 Ticks timeout = kInfiniteTime) {
    return add(OpQueuingReceive{port, timeout});
  }
  ScriptBuilder& set_module_schedule(std::int32_t schedule) {
    return add(OpSetModuleSchedule{schedule});
  }
  ScriptBuilder& raise_error(std::int32_t code, std::string msg = {}) {
    return add(OpRaiseError{code, std::move(msg)});
  }
  ScriptBuilder& try_disable_clock_irq() {
    return add(OpTryDisableClockIrq{});
  }
  ScriptBuilder& memory_access(std::uint32_t vaddr, bool write = false) {
    return add(OpMemoryAccess{vaddr, write});
  }
  ScriptBuilder& stop_process(std::string name) {
    return add(OpStopProcess{std::move(name)});
  }
  ScriptBuilder& start_process(std::string name) {
    return add(OpStartProcess{std::move(name)});
  }
  ScriptBuilder& log(std::string text) { return add(OpLog{std::move(text)}); }
  ScriptBuilder& jump(std::size_t target) { return add(OpGoto{target}); }
  ScriptBuilder& lock_preemption() { return add(OpLockPreemption{}); }
  ScriptBuilder& unlock_preemption() { return add(OpUnlockPreemption{}); }

  [[nodiscard]] Script build() { return std::move(ops_); }

 private:
  ScriptBuilder& add(Op op) {
    ops_.push_back(std::move(op));
    return *this;
  }

  Script ops_;
};

}  // namespace air::pos
