// Generic non-real-time POS kernel (Sect. 2.5).
//
// Stands in for the embedded Linux variant the paper integrates alongside
// RTOS partitions: a fair round-robin scheduler that ignores priorities.
// Its one safety-relevant property is *paravirtualisation*: the instructions
// that could disable or divert the system clock interrupt are wrapped -- the
// kernel cannot undermine the module-wide time guarantees, it can only trap
// (counted, traced, and reported by the system layer).
#pragma once

#include <deque>
#include <functional>

#include "pos/kernel_base.hpp"

namespace air::pos {

// `final` seals the class for the KernelDispatch fast path (pos/dispatch.hpp)
// and lets LTO devirtualize through GenericKernel* references.
class GenericKernel final : public KernelBase {
 public:
  [[nodiscard]] std::string_view kind() const override { return "generic"; }

  ProcessId schedule() override;

  /// Priorities are accepted (APEX requires the service) but do not affect
  /// scheduling order.
  void set_priority(ProcessId id, Priority priority) override;

  /// The paravirtualised "disable clock interrupt" gate: refuses, counts,
  /// and notifies the trap hook. Returns false always (the guest cannot
  /// mask the module timer).
  bool try_disable_clock_interrupt();

  [[nodiscard]] std::uint64_t paravirt_traps() const { return traps_; }

  /// Invoked on every refused clock-interrupt manipulation.
  std::function<void()> on_paravirt_trap;

 protected:
  void enqueue_ready(ProcessControlBlock& pcb) override;
  void dequeue_ready(ProcessControlBlock& pcb) override;
  [[nodiscard]] ProcessId pick_heir() override;

 private:
  std::deque<ProcessId> run_queue_;
  std::uint64_t traps_{0};
};

}  // namespace air::pos
