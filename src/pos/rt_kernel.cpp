#include "pos/rt_kernel.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace air::pos {

void RtKernel::enqueue_ready(ProcessControlBlock& pcb) {
  AIR_ASSERT(pcb.current_priority >= 0 &&
             pcb.current_priority < kPriorityLevels);
  const auto priority = static_cast<std::size_t>(pcb.current_priority);
  ready_[priority].push_back(pcb.id);
  occupancy_[priority >> 6] |= std::uint64_t{1} << (priority & 63);
}

void RtKernel::dequeue_ready(ProcessControlBlock& pcb) {
  const auto priority = static_cast<std::size_t>(pcb.current_priority);
  auto& queue = ready_[priority];
  auto it = std::find(queue.begin(), queue.end(), pcb.id);
  if (it != queue.end()) queue.erase(it);
  if (queue.empty()) {
    occupancy_[priority >> 6] &= ~(std::uint64_t{1} << (priority & 63));
  }
}

ProcessId RtKernel::pick_heir() {
  for (std::size_t word = 0; word < kWords; ++word) {
    if (occupancy_[word] != 0) {
      const auto bit =
          static_cast<std::size_t>(std::countr_zero(occupancy_[word]));
      return ready_[(word << 6) | bit].front();
    }
  }
  return ProcessId::invalid();
}

ProcessId RtKernel::schedule() {
  // With preemption locked, the current process runs on while schedulable.
  if (preemption_locked() && current_.valid()) {
    const ProcessControlBlock* cur = pcb(current_);
    if (cur != nullptr && cur->schedulable()) {
      count_dispatch(false);
      return current_;
    }
  }

  const ProcessId heir = pick_heir();
  if (!heir.valid()) {
    current_ = ProcessId::invalid();
    return heir;
  }
  count_dispatch(heir != current_);
  if (heir != current_) {
    if (current_.valid()) {
      ProcessControlBlock* prev = pcb(current_);
      if (prev != nullptr && prev->state == ProcessState::kRunning) {
        set_state(*prev, ProcessState::kReady);
      }
    }
    current_ = heir;
  }
  set_state(pcb_ref(heir), ProcessState::kRunning);
  return heir;
}

void RtKernel::set_priority(ProcessId id, Priority priority) {
  AIR_ASSERT(priority >= 0 && priority < kPriorityLevels);
  ProcessControlBlock& p = pcb_ref(id);
  if (p.current_priority == priority) return;
  const bool queued = p.schedulable();
  if (queued) dequeue_ready(p);
  p.current_priority = priority;
  if (queued) {
    // ARINC 653: the process becomes the *newest* at its new priority.
    p.ready_seq = ++ready_counter_;
    enqueue_ready(p);
  }
}

}  // namespace air::pos
