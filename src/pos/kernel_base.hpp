// Shared POS kernel machinery: process table, wait/wake bookkeeping, timed
// wake-ups. Scheduling policy is delegated to subclasses through the
// ready-queue hooks.
#pragma once

#include <cstdint>
#include <vector>

#include "pos/kernel.hpp"

namespace air::pos {

class KernelBase : public IKernel {
 public:
  ProcessId create_process(ProcessAttributes attrs) override;
  [[nodiscard]] ProcessControlBlock* pcb(ProcessId id) override;
  [[nodiscard]] const ProcessControlBlock* pcb(ProcessId id) const override;
  [[nodiscard]] std::size_t process_count() const override {
    return table_.size();
  }
  [[nodiscard]] ProcessId find_process(std::string_view name) const override;

  void make_ready(ProcessId id) override;
  void make_dormant(ProcessId id) override;
  void block(ProcessId id, WaitReason reason, Ticks wake_time) override;
  void wake(ProcessId id, WakeResult result) override;
  void suspend(ProcessId id, Ticks wake_time) override;
  void resume(ProcessId id) override;

  void tick_announce(Ticks now, Ticks elapsed) override;
  [[nodiscard]] Ticks now() const override { return now_; }
  [[nodiscard]] Ticks next_wake() const override;

  [[nodiscard]] ProcessId current() const override { return current_; }

  void lock_preemption() override { ++preemption_lock_; }
  void unlock_preemption() override {
    if (preemption_lock_ > 0) --preemption_lock_;
  }
  [[nodiscard]] bool preemption_locked() const override {
    return preemption_lock_ > 0;
  }

  void reset_all() override;

  [[nodiscard]] std::uint64_t dispatch_count() const override {
    return dispatches_;
  }
  [[nodiscard]] std::uint64_t process_switches() const override {
    return process_switches_;
  }
  [[nodiscard]] std::size_t ready_depth() const override;

 protected:
  /// Subclass schedule() bookkeeping: an heir was selected; `switched`
  /// when it differs from the previously running process.
  void count_dispatch(bool switched) {
    ++dispatches_;
    if (switched) ++process_switches_;
  }

  // --- scheduling-policy hooks ---
  virtual void enqueue_ready(ProcessControlBlock& pcb) = 0;
  virtual void dequeue_ready(ProcessControlBlock& pcb) = 0;
  /// Next process to run given the policy; invalid() when none ready.
  [[nodiscard]] virtual ProcessId pick_heir() = 0;

  void set_state(ProcessControlBlock& pcb, ProcessState state);

  [[nodiscard]] ProcessControlBlock& pcb_ref(ProcessId id);

  std::vector<ProcessControlBlock> table_;
  ProcessId current_{ProcessId::invalid()};
  Ticks now_{0};
  std::uint64_t ready_counter_{0};
  int preemption_lock_{0};
  std::uint64_t dispatches_{0};
  std::uint64_t process_switches_{0};
};

}  // namespace air::pos
