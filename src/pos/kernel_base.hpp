// Shared POS kernel machinery: process table, wait/wake bookkeeping, timed
// wake-ups. Scheduling policy is delegated to subclasses through the
// ready-queue hooks.
#pragma once

#include <cstdint>
#include <vector>

#include "pos/kernel.hpp"

namespace air::pos {

// The overrides below are `final`: subclasses customise *policy* through
// the protected ready-queue hooks (plus kind/schedule/set_priority), never
// the table/time machinery itself. Sealing it lets calls through a
// KernelBase* -- notably the KernelDispatch fast path -- devirtualize.
class KernelBase : public IKernel {
 public:
  ProcessId create_process(ProcessAttributes attrs) final;
  [[nodiscard]] ProcessControlBlock* pcb(ProcessId id) final;
  [[nodiscard]] const ProcessControlBlock* pcb(ProcessId id) const final;
  [[nodiscard]] std::size_t process_count() const final {
    return table_.size();
  }
  [[nodiscard]] ProcessId find_process(std::string_view name) const final;

  void make_ready(ProcessId id) final;
  void make_dormant(ProcessId id) final;
  void block(ProcessId id, WaitReason reason, Ticks wake_time) final;
  void wake(ProcessId id, WakeResult result) final;
  void retarget_wait(ProcessId id, WaitReason reason, Ticks wake_time) final;
  void suspend(ProcessId id, Ticks wake_time) final;
  void resume(ProcessId id) final;

  void tick_announce(Ticks now, Ticks elapsed) final;
  [[nodiscard]] Ticks now() const final { return now_; }
  [[nodiscard]] Ticks next_wake() const final;

  [[nodiscard]] ProcessId current() const final { return current_; }

  void lock_preemption() final { ++preemption_lock_; }
  void unlock_preemption() final {
    if (preemption_lock_ > 0) --preemption_lock_;
  }
  [[nodiscard]] bool preemption_locked() const final {
    return preemption_lock_ > 0;
  }

  void reset_all() final;

  [[nodiscard]] std::uint64_t dispatch_count() const final {
    return dispatches_;
  }
  [[nodiscard]] std::uint64_t process_switches() const final {
    return process_switches_;
  }
  [[nodiscard]] std::size_t ready_depth() const final;

 protected:
  /// Subclass schedule() bookkeeping: an heir was selected; `switched`
  /// when it differs from the previously running process.
  void count_dispatch(bool switched) {
    ++dispatches_;
    if (switched) ++process_switches_;
  }

  // --- scheduling-policy hooks ---
  virtual void enqueue_ready(ProcessControlBlock& pcb) = 0;
  virtual void dequeue_ready(ProcessControlBlock& pcb) = 0;
  /// Next process to run given the policy; invalid() when none ready.
  [[nodiscard]] virtual ProcessId pick_heir() = 0;

  void set_state(ProcessControlBlock& pcb, ProcessState state);

  [[nodiscard]] ProcessControlBlock& pcb_ref(ProcessId id);

  /// Mirror a PCB's timer/eligibility fields into the hot columns. Must be
  /// called after any in-place edit of state/wake_time/suspended that
  /// bypasses set_state (wake-while-suspended, suspend of a waiter,
  /// retarget_wait). Index = id: create_process assigns ids densely.
  void sync_wait_cols(const ProcessControlBlock& pcb) {
    const auto i = static_cast<std::size_t>(pcb.id.value());
    wake_col_[i] =
        pcb.state == ProcessState::kWaiting ? pcb.wake_time : kInfiniteTime;
    susp_col_[i] = pcb.suspended ? 1 : 0;
  }

  std::vector<ProcessControlBlock> table_;
  // --- constellation hot columns (DESIGN.md §13) ---
  // Timer and eligibility state split from the cold PCB rows (~1 KiB each
  // with attributes, script and inbox): the per-tick sweeps -- the
  // tick_announce due scan, next_wake() (the time-warp horizon query, run
  // for every partition of every module per epoch), ready_depth() -- read
  // only these contiguous columns and never page in a PCB row.
  std::vector<Ticks> wake_col_;  // kWaiting ? wake_time : kInfiniteTime
  std::vector<std::uint8_t> susp_col_;  // suspended flag, 0/1
  std::size_t schedulable_count_{0};    // |{ready, running}| (ready_depth)
  // Scratch for tick_announce's due-timer sweep; a member so the steady
  // state reuses its capacity instead of allocating per expiry.
  std::vector<std::pair<Ticks, ProcessId>> due_scratch_;
  ProcessId current_{ProcessId::invalid()};
  Ticks now_{0};
  std::uint64_t ready_counter_{0};
  int preemption_lock_{0};
  std::uint64_t dispatches_{0};
  std::uint64_t process_switches_{0};
};

}  // namespace air::pos
