#include "pmk/schedule.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace air::pmk {

RuntimeSchedule compile_schedule(
    const model::Schedule& schedule,
    std::map<PartitionId, ScheduleChangeAction> change_actions) {
  AIR_ASSERT_MSG(schedule.mtf > 0, "schedule MTF must be positive");

  std::vector<model::Window> windows = schedule.windows;
  std::sort(windows.begin(), windows.end(),
            [](const model::Window& a, const model::Window& b) {
              return a.offset < b.offset;
            });

  RuntimeSchedule runtime;
  runtime.id = schedule.id;
  runtime.mtf = schedule.mtf;
  runtime.change_actions = std::move(change_actions);
  runtime.source = schedule;

  Ticks cursor = 0;
  for (const model::Window& w : windows) {
    AIR_ASSERT_MSG(w.offset >= cursor, "windows overlap");
    if (w.offset > cursor) {
      // Idle gap before this window.
      runtime.table.push_back({cursor, PartitionId::invalid()});
    }
    runtime.table.push_back({w.offset, w.partition});
    cursor = w.offset + w.duration;
  }
  AIR_ASSERT_MSG(cursor <= schedule.mtf, "window exceeds MTF");
  if (cursor < schedule.mtf) {
    runtime.table.push_back({cursor, PartitionId::invalid()});
  }

  // Invariant: a point at tick 0 so that MTF boundaries are always points.
  if (runtime.table.empty() || runtime.table.front().tick != 0) {
    runtime.table.insert(runtime.table.begin(), {0, PartitionId::invalid()});
  }
  return runtime;
}

}  // namespace air::pmk
