// PMK-level partition control block.
#pragma once

#include <cstdint>
#include <string>

#include "hal/mmu.hpp"
#include "util/types.hpp"

namespace air::pmk {

/// Partition operating mode M_m(t), eq. (3).
enum class OperatingMode : std::uint8_t {
  kNormal = 0,     // operational, process scheduler active
  kIdle = 1,       // shut down, no process execution
  kColdStart = 2,  // initialising, process scheduling disabled
  kWarmStart = 3,  // initialising with preserved context
};

[[nodiscard]] constexpr const char* to_string(OperatingMode mode) {
  switch (mode) {
    case OperatingMode::kNormal: return "normal";
    case OperatingMode::kIdle: return "idle";
    case OperatingMode::kColdStart: return "coldStart";
    case OperatingMode::kWarmStart: return "warmStart";
  }
  return "?";
}

/// Restart behaviour applied to a partition when the module switches to a
/// schedule (per-partition, per-schedule; Sect. 4, ScheduleChangeAction).
enum class ScheduleChangeAction : std::uint8_t {
  kNone = 0,         // no restart
  kWarmRestart = 1,
  kColdRestart = 2,
};

/// The PMK's view of one partition: identity, mode, dispatch bookkeeping
/// (Algorithm 2's lastTick and saved context) and the MMU context that
/// realises its spatial separation.
struct PartitionControlBlock {
  PartitionId id;
  std::string name;
  bool system_partition{false};  // authorised to call SET_MODULE_SCHEDULE

  OperatingMode mode{OperatingMode::kColdStart};

  /// Algorithm 2: last tick this partition saw the clock; elapsedTicks on
  /// re-dispatch is ticks - lastTick.
  Ticks last_tick{0};

  /// Simulated execution context. A real PMK saves/restores CPU registers;
  /// here the context is the MMU address space plus an opaque save counter
  /// the dispatcher bumps so context churn is observable in benches.
  hal::MmuContextId mmu_context{-1};
  std::uint64_t context_saves{0};
  std::uint64_t context_restores{0};

  /// A schedule switch happened and this partition has not been dispatched
  /// yet: the dispatcher must apply `pending_action` on first dispatch
  /// (Algorithm 2 line 9).
  bool schedule_change_pending{false};
  ScheduleChangeAction pending_action{ScheduleChangeAction::kNone};

  /// Window-usage accounting (integrator diagnostics): ticks this partition
  /// held the processor, split into ticks where some process executed and
  /// ticks where no process was schedulable (window slack).
  std::uint64_t busy_ticks{0};
  std::uint64_t slack_ticks{0};
};

}  // namespace air::pmk
