// Spatial partitioning mechanisms (Sect. 2.1, Fig. 3).
//
// Integration-time memory requirements are expressed as high-level,
// processor-independent descriptors -- per partition, per execution level
// (application / POS / PMK) and per memory section (code / data / stack) --
// and mapped at runtime onto the simulated three-level page-based MMU
// (LEON3-style, src/hal/mmu).
//
// Every partition gets its own MMU context with an identical *virtual*
// layout; physical frames never overlap between partitions. The PMK region
// is mapped into every context but only accessible at the PMK execution
// level, which is how the kernel can run during any partition's window
// without the partition being able to touch it.
#pragma once

#include <map>

#include "hal/machine.hpp"
#include "util/types.hpp"

namespace air::pmk {

/// Fixed virtual layout (identical in every partition's context).
inline constexpr hal::VirtAddr kAppCodeBase = 0x0040'0000;
inline constexpr hal::VirtAddr kAppDataBase = 0x0080'0000;
inline constexpr hal::VirtAddr kAppStackBase = 0x00C0'0000;
inline constexpr hal::VirtAddr kPosCodeBase = 0x0100'0000;
inline constexpr hal::VirtAddr kPosDataBase = 0x0140'0000;
inline constexpr hal::VirtAddr kPmkBase = 0x0180'0000;

/// Integration-time sizes of a partition's memory sections.
struct PartitionMemoryConfig {
  std::size_t app_code_bytes{16 << 10};
  std::size_t app_data_bytes{16 << 10};
  std::size_t app_stack_bytes{8 << 10};
  std::size_t pos_code_bytes{16 << 10};
  std::size_t pos_data_bytes{16 << 10};
};

/// Runtime descriptor of a partition's address space.
struct PartitionSpace {
  hal::MmuContextId context{-1};
  hal::PhysAddr app_code{0};
  hal::PhysAddr app_data{0};
  hal::PhysAddr app_stack{0};
  hal::PhysAddr pos_code{0};
  hal::PhysAddr pos_data{0};
  PartitionMemoryConfig config;
};

class SpatialManager {
 public:
  explicit SpatialManager(hal::Machine& machine);

  /// Allocate physical memory for `partition`, create its MMU context and
  /// program the page tables per the descriptor set of Fig. 3.
  const PartitionSpace& setup_partition(PartitionId partition,
                                        const PartitionMemoryConfig& config);

  [[nodiscard]] const PartitionSpace* space(PartitionId partition) const;

  /// The PMK's own (shared) region physical base.
  [[nodiscard]] hal::PhysAddr pmk_region() const { return pmk_phys_; }

 private:
  hal::Machine& machine_;
  hal::PhysAddr pmk_phys_{0};
  std::size_t pmk_bytes_{64 << 10};
  std::map<PartitionId, PartitionSpace> spaces_;
};

}  // namespace air::pmk
