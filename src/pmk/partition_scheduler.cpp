#include "pmk/partition_scheduler.hpp"

#include "util/assert.hpp"

namespace air::pmk {

void PartitionScheduler::add_schedule(RuntimeSchedule schedule) {
  AIR_ASSERT_MSG(!schedule.table.empty(), "schedule has no preemption points");
  AIR_ASSERT_MSG(schedule.table.front().tick == 0,
                 "schedule table must start at tick 0");
  const ScheduleId id = schedule.id;
  AIR_ASSERT_MSG(schedules_.find(id) == schedules_.end(),
                 "duplicate schedule id");
  schedules_.emplace(id, std::move(schedule));
}

void PartitionScheduler::set_initial_schedule(ScheduleId id) {
  AIR_ASSERT_MSG(schedules_.find(id) != schedules_.end(),
                 "unknown initial schedule");
  AIR_ASSERT_MSG(!started_, "initial schedule already set");
  current_ = id;
  next_ = id;
  current_sched_ = &schedules_.at(id);
  started_ = true;
}

const RuntimeSchedule& PartitionScheduler::current_schedule() const {
  AIR_ASSERT(started_);
  return *current_sched_;
}

const RuntimeSchedule* PartitionScheduler::schedule(ScheduleId id) const {
  auto it = schedules_.find(id);
  return it != schedules_.end() ? &it->second : nullptr;
}

bool PartitionScheduler::request_schedule(ScheduleId id) {
  if (schedules_.find(id) == schedules_.end()) return false;
  next_ = id;  // stored only; effective at the top of the next MTF
  return true;
}

bool PartitionScheduler::tick() {
  AIR_ASSERT_MSG(started_, "set_initial_schedule() not called");
  ++ticks_;  // line 1
  ++tick_calls_;

  const RuntimeSchedule* sched = current_sched_;
  const Ticks phase = (ticks_ - last_schedule_switch_) % sched->mtf;

  // Line 2: has a partition preemption point been reached? In the best and
  // most frequent case this comparison is false and we are done.
  if (sched->table[table_iterator_].tick != phase) return false;
  ++points_hit_;

  // Lines 3-7: make a pending schedule switch effective at the MTF boundary.
  if (current_ != next_ && phase == 0) {
    const ScheduleId old = current_;
    current_ = next_;                 // line 4
    last_schedule_switch_ = ticks_;   // line 5
    last_schedule_switch_was_set_ = true;
    table_iterator_ = 0;              // line 6
    current_sched_ = &schedules_.at(current_);
    sched = current_sched_;
    ++switches_;
    if (on_schedule_switch) on_schedule_switch(current_, old);
  }

  // Line 8: select the heir partition.
  heir_ = sched->table[table_iterator_].partition;
  // Line 9: advance the iterator, wrapping at the number of points.
  table_iterator_ = (table_iterator_ + 1) % sched->table.size();
  return true;
}

Ticks PartitionScheduler::next_preemption_point() const {
  AIR_ASSERT_MSG(started_, "set_initial_schedule() not called");
  // Before the first tick() the boot point at time 0 is still ahead.
  if (ticks_ < 0) return 0;
  const RuntimeSchedule& sched = *current_sched_;
  const Ticks phase = (ticks_ - last_schedule_switch_) % sched.mtf;
  // The table iterator always designates the next upcoming point; a
  // non-positive phase delta means it sits in the next MTF.
  Ticks delta = sched.table[table_iterator_].tick - phase;
  if (delta <= 0) delta += sched.mtf;
  return ticks_ + delta;
}

void PartitionScheduler::advance(Ticks n) {
  AIR_ASSERT_MSG(started_, "set_initial_schedule() not called");
  AIR_ASSERT(n >= 0);
  AIR_ASSERT_MSG(ticks_ + n < next_preemption_point(),
                 "time-warp span crosses a preemption point");
  ticks_ += n;
  tick_calls_ += static_cast<std::uint64_t>(n);
}

}  // namespace air::pmk
