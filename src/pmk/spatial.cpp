#include "pmk/spatial.hpp"

#include "util/assert.hpp"

namespace air::pmk {

namespace {

using hal::AccessRights;
using hal::ExecLevel;
using hal::LevelRights;

LevelRights app_code_rights() {
  LevelRights r;
  r.at(ExecLevel::kApplication) = AccessRights::rx();
  r.at(ExecLevel::kPos) = AccessRights::rx();
  r.at(ExecLevel::kPmk) = AccessRights{true, true, true};
  return r;
}

LevelRights app_data_rights() {
  LevelRights r;
  r.at(ExecLevel::kApplication) = AccessRights::rw();
  r.at(ExecLevel::kPos) = AccessRights::rw();
  r.at(ExecLevel::kPmk) = AccessRights{true, true, false};
  return r;
}

LevelRights pos_code_rights() {
  LevelRights r;
  // Application-level code cannot execute or read POS internals.
  r.at(ExecLevel::kPos) = AccessRights::rx();
  r.at(ExecLevel::kPmk) = AccessRights{true, true, true};
  return r;
}

LevelRights pos_data_rights() {
  LevelRights r;
  r.at(ExecLevel::kPos) = AccessRights::rw();
  r.at(ExecLevel::kPmk) = AccessRights{true, true, false};
  return r;
}

LevelRights pmk_rights() {
  LevelRights r;
  // Only the PMK level may touch the PMK region, in any context.
  r.at(ExecLevel::kPmk) = AccessRights{true, true, true};
  return r;
}

}  // namespace

SpatialManager::SpatialManager(hal::Machine& machine) : machine_(machine) {
  pmk_phys_ = machine_.allocator().allocate(pmk_bytes_, hal::Mmu::kPageSize);
}

const PartitionSpace& SpatialManager::setup_partition(
    PartitionId partition, const PartitionMemoryConfig& config) {
  AIR_ASSERT_MSG(spaces_.find(partition) == spaces_.end(),
                 "partition space already configured");

  PartitionSpace space;
  space.config = config;
  space.context = machine_.mmu().create_context();

  auto& alloc = machine_.allocator();
  const std::size_t page = hal::Mmu::kPageSize;
  space.app_code = alloc.allocate(config.app_code_bytes, page);
  space.app_data = alloc.allocate(config.app_data_bytes, page);
  space.app_stack = alloc.allocate(config.app_stack_bytes, page);
  space.pos_code = alloc.allocate(config.pos_code_bytes, page);
  space.pos_data = alloc.allocate(config.pos_data_bytes, page);

  auto& mmu = machine_.mmu();
  mmu.map(space.context, kAppCodeBase, space.app_code, config.app_code_bytes,
          app_code_rights());
  mmu.map(space.context, kAppDataBase, space.app_data, config.app_data_bytes,
          app_data_rights());
  mmu.map(space.context, kAppStackBase, space.app_stack,
          config.app_stack_bytes, app_data_rights());
  mmu.map(space.context, kPosCodeBase, space.pos_code, config.pos_code_bytes,
          pos_code_rights());
  mmu.map(space.context, kPosDataBase, space.pos_data, config.pos_data_bytes,
          pos_data_rights());
  // The PMK region: same physical frames in every context, PMK-only rights.
  mmu.map(space.context, kPmkBase, pmk_phys_, pmk_bytes_, pmk_rights());

  auto [it, inserted] = spaces_.emplace(partition, space);
  AIR_ASSERT(inserted);
  return it->second;
}

const PartitionSpace* SpatialManager::space(PartitionId partition) const {
  auto it = spaces_.find(partition);
  return it != spaces_.end() ? &it->second : nullptr;
}

}  // namespace air::pmk
