// Runtime partition scheduling tables.
//
// The offline model (model::Schedule, eq. 18) is compiled into the exact
// form Algorithm 1 consults at every clock tick: an ordered list of
// partition preemption points (tick offset within the MTF -> heir
// partition). Idle gaps compile to points whose heir is no partition.
#pragma once

#include <map>
#include <vector>

#include "model/model.hpp"
#include "pmk/partition.hpp"
#include "util/types.hpp"

namespace air::pmk {

struct PreemptionPoint {
  Ticks tick{0};          // offset within the MTF
  PartitionId partition;  // invalid() = idle slot
};

struct RuntimeSchedule {
  ScheduleId id;
  Ticks mtf{0};
  std::vector<PreemptionPoint> table;
  /// Restart action for each partition when the module switches *to* this
  /// schedule (absent partitions: kNone).
  std::map<PartitionId, ScheduleChangeAction> change_actions;
  /// The source model, kept for status services and verification.
  model::Schedule source;
};

/// Compile a validated model schedule into its runtime form. The resulting
/// table always contains a preemption point at tick 0 (idle when no window
/// starts there), so MTF boundaries always coincide with a point -- the
/// invariant Algorithm 1's schedule-switch check relies on.
[[nodiscard]] RuntimeSchedule compile_schedule(
    const model::Schedule& schedule,
    std::map<PartitionId, ScheduleChangeAction> change_actions = {});

}  // namespace air::pmk
