// AIR Partition Dispatcher featuring mode-based schedules -- Algorithm 2:
//
//   1: if heirPartition = activePartition then
//   2:   elapsedTicks <- 1
//   3: else
//   4:   SAVECONTEXT(activePartition.context)
//   5:   activePartition.lastTick <- ticks - 1
//   6:   elapsedTicks <- ticks - heirPartition.lastTick
//   7:   activePartition <- heirPartition
//   8:   RESTORECONTEXT(heirPartition.context)
//   9:   PENDINGSCHEDULECHANGEACTION(heirPartition)
//
// The dispatcher is executed after the Partition Scheduler on every tick.
// elapsedTicks feeds the PAL surrogate clock-tick announcement (Fig. 7): a
// partition that regains the processor is announced every tick it missed,
// in one batch.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hal/mmu.hpp"
#include "pmk/partition.hpp"
#include "telemetry/spans.hpp"
#include "util/types.hpp"

namespace air::pmk {

class PartitionDispatcher {
 public:
  /// `partitions` is the PMK partition table (indexed by PartitionId value);
  /// `mmu` may be null in unit tests -- context switches then skip the
  /// address-space switch.
  PartitionDispatcher(std::vector<PartitionControlBlock>& partitions,
                      hal::Mmu* mmu)
      : partitions_(partitions), mmu_(mmu) {}

  struct DispatchResult {
    PartitionId active;        // invalid() = idle slot, nothing to run
    Ticks elapsed_ticks{0};    // ticks to announce to the active partition
    bool context_switched{false};
  };

  /// Algorithm 2. `ticks` is the scheduler's global tick counter value.
  DispatchResult dispatch(PartitionId heir, Ticks ticks);

  /// Bulk equivalent of `n` dispatch() calls on the same-partition fast
  /// path (lines 1-2): each would only bump the dispatch counter. Used by
  /// the time-warp engine, which guarantees heir == active for the span.
  void advance_same_partition(Ticks n) {
    dispatches_ += static_cast<std::uint64_t>(n);
  }

  [[nodiscard]] PartitionId active_partition() const { return active_; }

  // --- instrumentation (E6) ---
  // Per-partition switch/preemption counts live in the PCBs
  // (context_restores / context_saves); the module scrapes those into the
  // telemetry registry at snapshot time instead of the dispatcher paying a
  // registry write per context switch (batched telemetry, DESIGN.md §11).
  [[nodiscard]] std::uint64_t dispatch_count() const { return dispatches_; }
  [[nodiscard]] std::uint64_t context_switches() const { return switches_; }

  /// Record a partition-window span per context switch: the previous
  /// window closes and the heir's opens. nullptr = off.
  void set_spans(telemetry::SpanRecorder* spans) { spans_ = spans; }

  /// Algorithm 2 line 9: wired by the module to apply the heir partition's
  /// pending ScheduleChangeAction on its first dispatch after a switch.
  std::function<void(PartitionId)> on_pending_schedule_change_action;
  /// Observation hook on every context switch: (heir, previous).
  std::function<void(PartitionId, PartitionId)> on_context_switch;

 private:
  [[nodiscard]] PartitionControlBlock* pcb(PartitionId id);

  std::vector<PartitionControlBlock>& partitions_;
  hal::Mmu* mmu_;
  PartitionId active_{PartitionId::invalid()};
  std::uint64_t dispatches_{0};
  std::uint64_t switches_{0};
  telemetry::SpanRecorder* spans_{nullptr};
  telemetry::SpanId window_span_{0};  // open span of the active window
};

}  // namespace air::pmk
