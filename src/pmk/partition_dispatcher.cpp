#include "pmk/partition_dispatcher.hpp"

namespace air::pmk {

PartitionControlBlock* PartitionDispatcher::pcb(PartitionId id) {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= partitions_.size()) {
    return nullptr;
  }
  return &partitions_[static_cast<std::size_t>(id.value())];
}

PartitionDispatcher::DispatchResult PartitionDispatcher::dispatch(
    PartitionId heir, Ticks ticks) {
  ++dispatches_;

  // Line 1-2: same partition keeps the processor; one tick elapsed.
  if (heir == active_) {
    return {active_, active_.valid() ? Ticks{1} : Ticks{0}, false};
  }

  // Lines 4-5: save the outgoing partition's context and stamp the last
  // tick it observed (the current tick already belongs to the heir).
  if (PartitionControlBlock* prev = pcb(active_)) {
    ++prev->context_saves;
    prev->last_tick = ticks - 1;
  }

  // Line 6: every tick since the heir last saw the clock is announced.
  Ticks elapsed = 0;
  PartitionControlBlock* next = pcb(heir);
  if (next != nullptr) {
    elapsed = ticks - next->last_tick;
  }

  // Line 7.
  const PartitionId previous = active_;
  active_ = heir;
  ++switches_;

  // Window spans bracket the context switch: the outgoing partition's
  // window ends at this tick and the heir's begins (idle slots, invalid
  // heir, open no span).
  if (spans_ != nullptr) {
    if (window_span_ != 0) {
      spans_->end(window_span_, ticks);
      window_span_ = 0;
    }
    if (heir.valid()) {
      window_span_ = spans_->begin(telemetry::SpanKind::kPartitionWindow,
                                   ticks, 0, 0, heir.value());
    }
  }

  // Line 8: restore the heir's execution context -- in this simulation the
  // address space (MMU context); spatial separation switches with it.
  if (next != nullptr) {
    ++next->context_restores;
    if (mmu_ != nullptr && next->mmu_context >= 0) {
      mmu_->set_active_context(next->mmu_context);
    }
  }
  if (on_context_switch) on_context_switch(heir, previous);

  // Line 9: apply a pending schedule change action on first dispatch after
  // the switch (Sect. 4.3: acting here confines the restart's cost to the
  // partition's own execution time window).
  if (next != nullptr && next->schedule_change_pending &&
      on_pending_schedule_change_action) {
    on_pending_schedule_change_action(heir);
  }

  return {active_, elapsed, true};
}

}  // namespace air::pmk
