// AIR Partition Scheduler featuring mode-based schedules -- Algorithm 1,
// implemented with the same structure and variable roles as the paper:
//
//   1: ticks <- ticks + 1
//   2: if schedules[currentSchedule].table[tableIterator].tick =
//          (ticks - lastScheduleSwitch) mod schedules[currentSchedule].mtf
//   3:   if currentSchedule != nextSchedule and
//            (ticks - lastScheduleSwitch) mod mtf = 0
//   4:     currentSchedule <- nextSchedule
//   5:     lastScheduleSwitch <- ticks
//   6:     tableIterator <- 0
//   8:   heirPartition <- schedules[currentSchedule].table[tableIterator]
//   9:   tableIterator <- (tableIterator + 1) mod #points
//
// This code runs (conceptually) inside the clock-tick ISR, so the best and
// most frequent case performs exactly two computations: the tick increment
// and the (false) preemption-point comparison (Sect. 4.3) -- the property
// bench E5 measures.
#pragma once

#include <functional>
#include <map>

#include "pmk/schedule.hpp"
#include "util/types.hpp"

namespace air::pmk {

struct ScheduleStatus {
  Ticks last_switch_time{0};  // 0 when no switch ever occurred (Sect. 4.2)
  ScheduleId current;
  ScheduleId next;  // == current when no change is pending
};

class PartitionScheduler {
 public:
  /// Register a compiled schedule (integration time).
  void add_schedule(RuntimeSchedule schedule);

  /// Select the initial schedule; must be called once before ticking.
  void set_initial_schedule(ScheduleId id);

  /// Algorithm 1; invoked at every system clock tick. Returns true when a
  /// partition preemption point was reached (heir may have changed).
  bool tick();

  /// Absolute tick of the next partition preemption point (the next tick()
  /// that would return true). Pending schedule switches cannot make it
  /// earlier: they take effect at an MTF boundary, which is itself a table
  /// point (table[0].tick == 0), so the returned tick is always <= the next
  /// boundary and warping up to (not onto) it preserves Algorithm 1.
  [[nodiscard]] Ticks next_preemption_point() const;

  /// Bulk equivalent of `n` tick() calls that all return false: the skipped
  /// best-case iterations touch nothing but the two counters. Checked
  /// against next_preemption_point() so a point can never be jumped over.
  void advance(Ticks n);

  /// The partition that should hold the processor now; invalid() = idle.
  [[nodiscard]] PartitionId heir_partition() const { return heir_; }

  /// SET_MODULE_SCHEDULE backing: stores the identifier only; the switch
  /// becomes effective at the top of the next MTF (Sect. 4.2). Returns
  /// false for an unknown schedule id.
  [[nodiscard]] bool request_schedule(ScheduleId id);

  [[nodiscard]] ScheduleStatus status() const {
    return {last_schedule_switch_was_set_ ? last_schedule_switch_ : 0,
            current_, next_};
  }

  [[nodiscard]] Ticks ticks() const { return ticks_; }
  [[nodiscard]] const RuntimeSchedule& current_schedule() const;
  [[nodiscard]] const RuntimeSchedule* schedule(ScheduleId id) const;

  // --- instrumentation (E5) ---
  // Plain local counters; the module scrapes them into the telemetry
  // registry at snapshot time (batched-telemetry contract, DESIGN.md §11),
  // so Algorithm 1's ISR path never touches the registry.
  [[nodiscard]] std::uint64_t tick_count() const { return tick_calls_; }
  [[nodiscard]] std::uint64_t preemption_points_hit() const {
    return points_hit_;
  }
  [[nodiscard]] std::uint64_t schedule_switches() const { return switches_; }

  /// Invoked right after a schedule switch becomes effective (line 4-6),
  /// with (new, old); the module uses it to arm per-partition
  /// ScheduleChangeActions and to trace the switch.
  std::function<void(ScheduleId new_schedule, ScheduleId old_schedule)>
      on_schedule_switch;

 private:
  std::map<ScheduleId, RuntimeSchedule> schedules_;
  ScheduleId current_;
  ScheduleId next_;
  // Hot-path cache of schedules_[current_]; std::map nodes are address-
  // stable, so the pointer is refreshed only on set_initial_schedule() and
  // on an effective schedule switch, keeping tick() free of map lookups.
  const RuntimeSchedule* current_sched_{nullptr};
  Ticks ticks_{-1};  // so the first tick() lands on time 0 == table point 0
  Ticks last_schedule_switch_{0};
  bool last_schedule_switch_was_set_{false};
  std::size_t table_iterator_{0};
  PartitionId heir_{PartitionId::invalid()};
  bool started_{false};

  std::uint64_t tick_calls_{0};
  std::uint64_t points_hit_{0};
  std::uint64_t switches_{0};
};

}  // namespace air::pmk
