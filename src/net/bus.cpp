#include "net/bus.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace air::net {

void Bus::attach(ModuleId module, DeliverFn deliver) {
  AIR_ASSERT(station(module) == nullptr);
  const std::size_t index = stations_.size();
  Station station;
  station.module = module;
  station.deliver = std::move(deliver);
  station.switch_index = config_.stations_per_switch == 0
                             ? 0
                             : index / config_.stations_per_switch;
  stations_.push_back(std::move(station));
  station_index_.emplace(module.value(), index);
}

std::size_t Bus::define_virtual_link(const VirtualLinkConfig& config) {
  const std::uint64_t key = vl_key(config.source, config.dest);
  AIR_ASSERT_MSG(vl_index_.find(key) == vl_index_.end(),
                 "duplicate virtual link for (source, dest)");
  const auto index = static_cast<std::uint32_t>(vls_.size());
  vls_.push_back({config, {}, 0});
  vl_index_.emplace(key, index);
  return index;
}

Bus::Station* Bus::station(ModuleId module) {
  const auto it = station_index_.find(module.value());
  return it == station_index_.end() ? nullptr : &stations_[it->second];
}

const Bus::Station* Bus::station(ModuleId module) const {
  const auto it = station_index_.find(module.value());
  return it == station_index_.end() ? nullptr : &stations_[it->second];
}

std::size_t Bus::pending(ModuleId module) const {
  const Station* s = station(module);
  return s == nullptr ? 0 : s->tx_queue.size();
}

std::size_t Bus::switch_of(std::size_t station_index) const {
  return stations_[station_index].switch_index;
}

void Bus::mark_active(std::size_t station_index) {
  Station& s = stations_[station_index];
  if (s.active_pos != kNotActive) return;
  s.active_pos = active_stations_.size();
  active_stations_.push_back(station_index);
}

void Bus::mark_idle(std::size_t station_index) {
  Station& s = stations_[station_index];
  if (s.active_pos == kNotActive) return;
  const std::size_t pos = s.active_pos;
  const std::size_t moved = active_stations_.back();
  active_stations_[pos] = moved;
  stations_[moved].active_pos = pos;
  active_stations_.pop_back();
  s.active_pos = kNotActive;
}

void Bus::push_in_flight(InFlight flight) {
  in_flight_.push_back(std::move(flight));
  std::push_heap(in_flight_.begin(), in_flight_.end(),
                 [](const InFlight& a, const InFlight& b) {
                   return a.deliver_at != b.deliver_at
                              ? a.deliver_at > b.deliver_at
                              : a.seq > b.seq;
                 });
}

Bus::InFlight Bus::pop_in_flight() {
  std::pop_heap(in_flight_.begin(), in_flight_.end(),
                [](const InFlight& a, const InFlight& b) {
                  return a.deliver_at != b.deliver_at
                             ? a.deliver_at > b.deliver_at
                             : a.seq > b.seq;
                });
  InFlight flight = std::move(in_flight_.back());
  in_flight_.pop_back();
  return flight;
}

void Bus::send(ModuleId from, const ipc::RemotePortRef& dest,
               const ipc::Message& message, ipc::ChannelKind kind, Ticks now) {
  const auto it = station_index_.find(from.value());
  AIR_ASSERT_MSG(it != station_index_.end(),
                 "sending module not attached to the bus");
  Station& s = stations_[it->second];
  Frame frame{dest, message, kind, now, 0, kNoVl};
  const auto vl = vl_index_.find(vl_key(from, dest.module));
  if (vl != vl_index_.end()) frame.vl = vl->second;
  if (spans_ != nullptr && message.ctx.trace_id != 0) {
    frame.span = spans_->begin(
        telemetry::SpanKind::kMsgBusTransit, now, message.ctx.parent_span,
        message.ctx.trace_id, from.value(), dest.module.value(),
        static_cast<std::int64_t>(message.payload.size()));
    frame.message.ctx.parent_span = frame.span;
  }
  s.tx_queue.push_back(std::move(frame));
  ++pending_total_;
  mark_active(it->second);
  ++s.sent;
  ++stats_.frames_sent;
}

void Bus::station_stats(std::vector<StationStats>& out) const {
  out.clear();
  out.reserve(stations_.size());
  for (const auto& s : stations_) {
    out.push_back({s.module, s.sent, s.delivered, s.tx_queue.size()});
  }
}

void Bus::transmit_from(std::size_t owner_index, Ticks now) {
  Station& owner = stations_[owner_index];
  for (std::size_t i = 0;
       i < config_.frames_per_slot && !owner.tx_queue.empty(); ++i) {
    // Per-VL bandwidth budget: a head frame whose VL is still inside its
    // minimum gap blocks the station for the rest of the slot tick
    // (head-of-line, deterministic -- the frames behind it must not
    // overtake within the same reservation).
    if (owner.tx_queue.front().vl != kNoVl) {
      VirtualLink& vl = vls_[owner.tx_queue.front().vl];
      if (now < vl.next_allowed) {
        ++vl.stats.gated;
        break;
      }
    }
    Frame frame = std::move(owner.tx_queue.front());
    owner.tx_queue.pop_front();
    --pending_total_;
    Ticks deliver_at = now + config_.propagation_delay;
    if (frame.vl != kNoVl) {
      VirtualLink& vl = vls_[frame.vl];
      ++vl.stats.frames;
      vl.next_allowed = now + vl.config.min_gap;
      const Ticks waited = now - frame.enqueued_at;
      vl.stats.max_queue_wait = std::max(vl.stats.max_queue_wait, waited);
      if (waited > vl.config.jitter_budget) ++vl.stats.jitter_violations;
    }
    // Inter-switch frames pay the trunk hop. On the flat topology every
    // station sits on switch 0, so the term vanishes without a branch on
    // the mode. An unattached destination takes the local path (it will
    // be dropped at delivery, as before).
    const auto dest_it = station_index_.find(frame.dest.module.value());
    if (dest_it != station_index_.end() &&
        stations_[dest_it->second].switch_index != owner.switch_index) {
      deliver_at += config_.switch_hop_delay;
    }
    if (fault_hook_) {
      const FaultDecision fault =
          fault_hook_(transmit_seq_++, owner.module, frame.dest);
      if (fault.drop) {
        ++stats_.frames_fault_dropped;
        if (spans_ != nullptr && frame.span != 0) {
          spans_->end(frame.span, now, telemetry::SpanStatus::kAborted);
        }
        continue;
      }
      if (fault.corrupt && !frame.message.payload.empty()) {
        // Flip every bit of the first payload byte. The routing metadata
        // and the trace context are physically separate (frame header) and
        // stay intact -- the fault is a payload upset, not a misroute.
        frame.message.payload[0] =
            static_cast<char>(~frame.message.payload[0]);
        ++stats_.frames_fault_corrupted;
      }
      if (fault.extra_delay > 0) {
        deliver_at += fault.extra_delay;
        ++stats_.frames_fault_delayed;
      }
    } else {
      ++transmit_seq_;
    }
    push_in_flight({std::move(frame), deliver_at, flight_seq_++});
  }
  if (owner.tx_queue.empty()) mark_idle(owner_index);
}

void Bus::tick(Ticks now) {
  // Deliver frames whose propagation completed, in (deliver_at, transmit
  // order) -- the heap pops them exactly as the stable-sorted deque did.
  while (!in_flight_.empty() && in_flight_.front().deliver_at <= now) {
    InFlight flight = pop_in_flight();
    Station* dest = station(flight.frame.dest.module);
    if (dest == nullptr) {
      ++stats_.frames_dropped;
      if (spans_ != nullptr && flight.frame.span != 0) {
        spans_->end(flight.frame.span, now, telemetry::SpanStatus::kAborted);
      }
      continue;
    }
    stats_.total_latency += now - flight.frame.enqueued_at;
    ++stats_.frames_delivered;
    ++dest->delivered;
    if (spans_ != nullptr && flight.frame.span != 0) {
      spans_->end(flight.frame.span, now);
    }
    dest->deliver(flight.frame.dest.partition, flight.frame.dest.port,
                  flight.frame.message, flight.frame.kind);
  }

  if (stations_.empty() || pending_total_ == 0) return;

  // TDMA: every switch's slot owner transmits up to frames_per_slot frames
  // this tick, switches in index order (the deterministic transmit order
  // transmit_seq_ is keyed on). The flat topology is the one-switch case.
  const std::size_t sps = config_.stations_per_switch;
  if (sps == 0) {
    const auto owner = static_cast<std::size_t>(
        (now / config_.slot_length) % static_cast<Ticks>(stations_.size()));
    transmit_from(owner, now);
    return;
  }
  const std::size_t nswitches = switch_count();
  for (std::size_t s = 0; s < nswitches; ++s) {
    const std::size_t first = s * sps;
    const std::size_t count = std::min(sps, stations_.size() - first);
    const auto owner =
        first + static_cast<std::size_t>((now / config_.slot_length) %
                                         static_cast<Ticks>(count));
    if (!stations_[owner].tx_queue.empty()) transmit_from(owner, now);
  }
}

Ticks Bus::next_delivery(Ticks now) const {
  Ticks earliest = kInfiniteTime;
  if (!in_flight_.empty()) {
    // The heap front is the earliest arrival. A frame already due
    // (deliver_at <= now) is delivered by the next tick.
    earliest = std::max(in_flight_.front().deliver_at, now);
  }
  const std::size_t sps = config_.stations_per_switch;
  for (const std::size_t i : active_stations_) {
    // First tick >= now inside station i's slot of its switch-local cycle;
    // transmission there puts the head frame on the wire, so delivery can
    // follow one propagation delay later. Frames deeper in the queue only
    // transmit later, and VL gating or a switch hop only push delivery
    // later still, so the head's minimum path alone yields the bound.
    std::size_t first = 0;
    std::size_t count = stations_.size();
    if (sps != 0) {
      first = stations_[i].switch_index * sps;
      count = std::min(sps, stations_.size() - first);
    }
    const Ticks cycle = config_.slot_length * static_cast<Ticks>(count);
    const Ticks slot_begin = (now / cycle) * cycle +
                             static_cast<Ticks>(i - first) *
                                 config_.slot_length;
    Ticks transmit;
    if (now < slot_begin) {
      transmit = slot_begin;  // slot still ahead in the current cycle
    } else if (now < slot_begin + config_.slot_length) {
      transmit = now;  // inside the slot right now
    } else {
      transmit = slot_begin + cycle;  // next cycle
    }
    earliest = std::min(earliest, transmit + config_.propagation_delay);
  }
  return earliest;
}

Ticks Bus::idle_ticks(Ticks now) const {
  if (pending_total_ != 0) return 0;
  if (in_flight_.empty()) return kInfiniteTime;
  const Ticks first = in_flight_.front().deliver_at;
  return first > now ? first - now : 0;
}

}  // namespace air::net
