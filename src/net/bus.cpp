#include "net/bus.hpp"

#include "util/assert.hpp"

namespace air::net {

void Bus::attach(ModuleId module, DeliverFn deliver) {
  AIR_ASSERT(station(module) == nullptr);
  stations_.push_back({module, std::move(deliver), {}});
}

Bus::Station* Bus::station(ModuleId module) {
  for (auto& s : stations_) {
    if (s.module == module) return &s;
  }
  return nullptr;
}

std::size_t Bus::pending(ModuleId module) const {
  for (const auto& s : stations_) {
    if (s.module == module) return s.tx_queue.size();
  }
  return 0;
}

void Bus::send(ModuleId from, const ipc::RemotePortRef& dest,
               const ipc::Message& message, ipc::ChannelKind kind, Ticks now) {
  Station* s = station(from);
  AIR_ASSERT_MSG(s != nullptr, "sending module not attached to the bus");
  Frame frame{dest, message, kind, now, 0};
  if (spans_ != nullptr && message.ctx.trace_id != 0) {
    frame.span = spans_->begin(
        telemetry::SpanKind::kMsgBusTransit, now, message.ctx.parent_span,
        message.ctx.trace_id, from.value(), dest.module.value(),
        static_cast<std::int64_t>(message.payload.size()));
    frame.message.ctx.parent_span = frame.span;
  }
  s->tx_queue.push_back(std::move(frame));
  ++s->sent;
  ++stats_.frames_sent;
}

std::vector<StationStats> Bus::station_stats() const {
  std::vector<StationStats> out;
  out.reserve(stations_.size());
  for (const auto& s : stations_) {
    out.push_back({s.module, s.sent, s.delivered, s.tx_queue.size()});
  }
  return out;
}

void Bus::tick(Ticks now) {
  // Deliver frames whose propagation completed.
  while (!in_flight_.empty() && in_flight_.front().deliver_at <= now) {
    InFlight flight = std::move(in_flight_.front());
    in_flight_.pop_front();
    Station* dest = station(flight.frame.dest.module);
    if (dest == nullptr) {
      ++stats_.frames_dropped;
      if (spans_ != nullptr && flight.frame.span != 0) {
        spans_->end(flight.frame.span, now, telemetry::SpanStatus::kAborted);
      }
      continue;
    }
    stats_.total_latency += now - flight.frame.enqueued_at;
    ++stats_.frames_delivered;
    ++dest->delivered;
    if (spans_ != nullptr && flight.frame.span != 0) {
      spans_->end(flight.frame.span, now);
    }
    dest->deliver(flight.frame.dest.partition, flight.frame.dest.port,
                  flight.frame.message, flight.frame.kind);
  }

  if (stations_.empty()) return;

  // TDMA: the slot owner transmits up to frames_per_slot frames this tick's
  // slot; other stations wait for their slot.
  const auto owner_index = static_cast<std::size_t>(
      (now / config_.slot_length) % static_cast<Ticks>(stations_.size()));
  Station& owner = stations_[owner_index];
  for (std::size_t i = 0;
       i < config_.frames_per_slot && !owner.tx_queue.empty(); ++i) {
    Frame frame = std::move(owner.tx_queue.front());
    owner.tx_queue.pop_front();
    Ticks deliver_at = now + config_.propagation_delay;
    if (fault_hook_) {
      const FaultDecision fault =
          fault_hook_(transmit_seq_++, owner.module, frame.dest);
      if (fault.drop) {
        ++stats_.frames_fault_dropped;
        if (spans_ != nullptr && frame.span != 0) {
          spans_->end(frame.span, now, telemetry::SpanStatus::kAborted);
        }
        continue;
      }
      if (fault.corrupt && !frame.message.payload.empty()) {
        // Flip every bit of the first payload byte. The routing metadata
        // and the trace context are physically separate (frame header) and
        // stay intact -- the fault is a payload upset, not a misroute.
        frame.message.payload[0] =
            static_cast<char>(~frame.message.payload[0]);
        ++stats_.frames_fault_corrupted;
      }
      if (fault.extra_delay > 0) {
        deliver_at += fault.extra_delay;
        ++stats_.frames_fault_delayed;
      }
    } else {
      ++transmit_seq_;
    }
    // Keep in_flight_ sorted by deliver_at (stable): the delivery loop and
    // next_delivery() rely on the front being the earliest. Without fault
    // delays every insert lands at the back (monotonic deliver_at).
    auto at = in_flight_.end();
    while (at != in_flight_.begin() && (at - 1)->deliver_at > deliver_at) {
      --at;
    }
    in_flight_.insert(at, {std::move(frame), deliver_at});
  }
}

std::size_t Bus::pending_total() const {
  std::size_t total = 0;
  for (const auto& s : stations_) total += s.tx_queue.size();
  return total;
}

Ticks Bus::next_delivery(Ticks now) const {
  Ticks earliest = kInfiniteTime;
  if (!in_flight_.empty()) {
    // FIFO with a fixed propagation delay: the front is the earliest. A
    // frame already due (deliver_at <= now) is delivered by the next tick.
    earliest = std::max(in_flight_.front().deliver_at, now);
  }
  if (stations_.empty()) return earliest;
  const auto nstations = static_cast<Ticks>(stations_.size());
  const Ticks cycle = config_.slot_length * nstations;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (stations_[i].tx_queue.empty()) continue;
    // First tick >= now inside station i's slot; transmission there puts
    // the head frame on the wire, so delivery can follow one propagation
    // delay later. Frames deeper in the queue only deliver later, so the
    // head alone yields the lower bound.
    const Ticks slot_begin =
        (now / cycle) * cycle + static_cast<Ticks>(i) * config_.slot_length;
    Ticks transmit;
    if (now < slot_begin) {
      transmit = slot_begin;  // slot still ahead in the current cycle
    } else if (now < slot_begin + config_.slot_length) {
      transmit = now;  // inside the slot right now
    } else {
      transmit = slot_begin + cycle;  // next cycle
    }
    earliest = std::min(earliest, transmit + config_.propagation_delay);
  }
  return earliest;
}

Ticks Bus::idle_ticks(Ticks now) const {
  for (const auto& s : stations_) {
    if (!s.tx_queue.empty()) return 0;
  }
  if (in_flight_.empty()) return kInfiniteTime;
  // Frames are enqueued with monotonically non-decreasing deliver_at (fixed
  // propagation delay), so the front is the earliest delivery.
  const Ticks first = in_flight_.front().deliver_at;
  return first > now ? first - now : 0;
}

}  // namespace air::net
