// Simulated inter-module communication infrastructure.
//
// Physically separated partitions exchange messages "through a communication
// infrastructure" (Sect. 2.1). We model a time-triggered (TDMA) network in
// the spirit of the TTP protocol the paper cites. Two topologies share one
// implementation:
//
//  - Flat broadcast (stations_per_switch == 0, the legacy default): every
//    attached module owns a transmission slot in one fixed round-robin
//    cycle and may transmit a bounded number of frames per slot; frames
//    arrive after a fixed propagation delay.
//
//  - Hierarchical switched (stations_per_switch > 0): stations hang off
//    switches in attach order, every switch arbitrates its *own* TDMA cycle
//    concurrently (switch-local cycles are stations_per_switch slots long
//    instead of N slots, so aggregate bandwidth grows with the switch
//    count), and frames crossing a switch boundary pay switch_hop_delay
//    extra propagation. Channels additionally map to *virtual links* --
//    unidirectional (source module, destination module) reservations with a
//    per-VL bandwidth budget (minimum gap between transmissions) and jitter
//    budget (accepted queueing delay), as in AFDX/ARINC 664 VLs.
//
// The APEX port API on top is identical for local and remote destinations.
//
// Hot-query contract (constellation scale, DESIGN.md §13): station lookup
// and pending() are O(1) via a ModuleId index; pending_total() is a
// maintained counter; idle_ticks() is O(1) off the in-flight heap;
// next_delivery() is O(active stations), never O(attached stations);
// in_flight_ is a (deliver_at, transmit order) min-heap, not a scanned
// deque. station_stats() fills a caller-provided buffer so digest-window
// sampling allocates nothing in the steady state.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ipc/router.hpp"
#include "util/types.hpp"

namespace air::net {

struct BusConfig {
  Ticks slot_length{10};        // ticks each module may transmit per cycle
  std::size_t frames_per_slot{4};
  Ticks propagation_delay{1};   // ticks from transmission to delivery
  /// Hierarchical switched topology: stations are grouped onto switches of
  /// this size in attach order, each switch running its own TDMA cycle.
  /// 0 = flat broadcast (one arbitration domain over every station).
  std::size_t stations_per_switch{0};
  /// Extra propagation for frames crossing a switch boundary (the
  /// inter-switch trunk hop). Ignored on the flat topology.
  Ticks switch_hop_delay{2};
};

/// A virtual link: a unidirectional (source module -> destination module)
/// bandwidth reservation. Frames between the pair are accounted against it
/// at their transmit instant; min_gap enforces the bandwidth budget via
/// head-of-line gating at the source station.
struct VirtualLinkConfig {
  ModuleId source;
  ModuleId dest;
  /// Minimum ticks between consecutive transmissions on this VL (the
  /// AFDX bandwidth-allocation gap). 0 = no budget.
  Ticks min_gap{0};
  /// Accepted queueing delay (send -> transmit). A frame exceeding it is
  /// counted as a jitter violation; delivery is never blocked.
  Ticks jitter_budget{kInfiniteTime};
};

struct VirtualLinkStats {
  std::uint64_t frames{0};             // frames transmitted on this VL
  std::uint64_t gated{0};              // transmit slots deferred by min_gap
  std::uint64_t jitter_violations{0};  // queue wait exceeded the budget
  Ticks max_queue_wait{0};             // worst send -> transmit wait
};

/// Per-station counters, in attach order. Sampled by the World's online
/// bus plane at digest-window boundaries.
struct StationStats {
  ModuleId module;
  std::uint64_t frames_sent{0};       // enqueued by this station
  std::uint64_t frames_delivered{0};  // delivered *into* this station
  std::size_t backlog{0};             // tx queue depth at sampling time
};

struct BusStats {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_delivered{0};
  std::uint64_t frames_dropped{0};  // destination module not attached
  Ticks total_latency{0};           // sum over delivered frames (queue+prop)
  // Fault-injection outcomes (src/fi): applied at the transmit point.
  std::uint64_t frames_fault_dropped{0};
  std::uint64_t frames_fault_corrupted{0};
  std::uint64_t frames_fault_delayed{0};
};

class Bus {
 public:
  explicit Bus(BusConfig config = {}) : config_(config) {}

  /// Deliver callback: invoked on the destination module's side with the
  /// destination partition/port and the message.
  using DeliverFn = std::function<void(PartitionId, const std::string& port,
                                       const ipc::Message&, ipc::ChannelKind)>;

  /// Attach a module; slot order (within its switch) is attach order.
  void attach(ModuleId module, DeliverFn deliver);

  /// Reserve a virtual link; returns its index. At most one VL per
  /// (source, dest) pair; frames of unreserved pairs ride unbudgeted.
  std::size_t define_virtual_link(const VirtualLinkConfig& config);

  /// Enqueue a frame for transmission during `from`'s next slot(s).
  void send(ModuleId from, const ipc::RemotePortRef& dest,
            const ipc::Message& message, ipc::ChannelKind kind, Ticks now);

  /// Advance the bus by one tick: every switch's slot owner transmits,
  /// frames whose propagation delay expired are delivered.
  void tick(Ticks now);

  /// How many consecutive calls tick(now), tick(now+1), ... would be
  /// no-ops: 0 while any station has frames queued (its slot will come),
  /// bounded by the earliest in-flight delivery otherwise, kInfiniteTime
  /// when the bus is completely idle. Lets the world-level time warp skip
  /// bus ticks without missing a transmission or delivery. O(1).
  [[nodiscard]] Ticks idle_ticks(Ticks now) const;

  /// Lower bound on the first tick >= `now` at which tick() could deliver a
  /// frame into a module: the earliest in-flight arrival, or -- for frames
  /// still queued at a station -- the first tick of the station's next TDMA
  /// slot plus the propagation delay (the minimum path: VL gating and
  /// switch hops can only push the real delivery later). kInfiniteTime when
  /// nothing is queued or in flight. This is the epoch-horizon query of the
  /// parallel World driver: modules may advance independently past ticks
  /// the bus provably cannot touch. O(stations with queued frames).
  [[nodiscard]] Ticks next_delivery(Ticks now) const;

  /// Total frames queued for transmission across all stations (in-flight
  /// frames excluded). Zero means replaying an epoch's bus ticks can skip
  /// straight to the delivery edge. O(1) (maintained counter).
  [[nodiscard]] std::size_t pending_total() const { return pending_total_; }

  [[nodiscard]] const BusConfig& config() const { return config_; }
  [[nodiscard]] const BusStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending(ModuleId module) const;

  /// Fill `out` with cumulative per-station counters in attach order.
  /// Caller-provided storage: the online bus plane samples this every
  /// digest window, and a steady-state sample must not touch the heap
  /// (tests/test_zero_alloc.cpp's claim at constellation scale).
  void station_stats(std::vector<StationStats>& out) const;

  [[nodiscard]] std::size_t station_count() const { return stations_.size(); }
  /// Switch hosting the station attached `station_index`-th (0 on flat).
  [[nodiscard]] std::size_t switch_of(std::size_t station_index) const;
  [[nodiscard]] std::size_t switch_count() const {
    return config_.stations_per_switch == 0
               ? (stations_.empty() ? 0 : 1)
               : (stations_.size() + config_.stations_per_switch - 1) /
                     config_.stations_per_switch;
  }

  [[nodiscard]] std::size_t virtual_link_count() const { return vls_.size(); }
  [[nodiscard]] const VirtualLinkConfig& vl_config(std::size_t vl) const {
    return vls_[vl].config;
  }
  [[nodiscard]] const VirtualLinkStats& vl_stats(std::size_t vl) const {
    return vls_[vl].stats;
  }

  /// Record a transit span per traced frame (open at send, closed at
  /// delivery/drop) in the World's bus recorder. nullptr = off.
  void set_spans(telemetry::SpanRecorder* spans) { spans_ = spans; }

  // --- fault injection (src/fi) ---

  /// What a fault hook may do to one frame at its transmit instant. The
  /// payload is corrupted (never the routing or the trace context), and
  /// extra delay postpones arrival -- later frames with shorter paths then
  /// overtake it, which is how frame *reordering* is modelled.
  struct FaultDecision {
    bool drop{false};
    bool corrupt{false};
    Ticks extra_delay{0};
  };

  /// Consulted when a slot owner moves a frame onto the wire.
  /// `transmit_seq` is the 0-based count of transmissions so far -- a
  /// deterministic key that is identical under lockstep and the parallel
  /// epoch driver (frames reach the transmit point in merged (tick,
  /// attach-order), and switches transmit in index order within a tick).
  using FaultHook = std::function<FaultDecision(
      std::uint64_t transmit_seq, ModuleId from, const ipc::RemotePortRef&)>;

  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  [[nodiscard]] std::uint64_t transmit_seq() const { return transmit_seq_; }

 private:
  static constexpr std::uint32_t kNoVl = 0xFFFFFFFFu;
  static constexpr std::size_t kNotActive = static_cast<std::size_t>(-1);

  struct Frame {
    ipc::RemotePortRef dest;
    ipc::Message message;
    ipc::ChannelKind kind{ipc::ChannelKind::kSampling};
    Ticks enqueued_at{0};
    telemetry::SpanId span{0};  // open transit span (0 = untraced)
    std::uint32_t vl{kNoVl};    // virtual link carrying this frame
  };
  struct InFlight {
    Frame frame;
    Ticks deliver_at{0};
    std::uint64_t seq{0};  // transmit order; FIFO tie-break in the heap
  };
  struct Station {
    ModuleId module;
    DeliverFn deliver;
    std::deque<Frame> tx_queue;
    std::uint64_t sent{0};       // frames enqueued here
    std::uint64_t delivered{0};  // frames delivered into this station
    std::size_t switch_index{0};
    std::size_t active_pos{kNotActive};  // index into active_stations_
  };
  struct VirtualLink {
    VirtualLinkConfig config;
    VirtualLinkStats stats;
    Ticks next_allowed{0};  // earliest transmit honouring min_gap
  };

  [[nodiscard]] Station* station(ModuleId module);
  [[nodiscard]] const Station* station(ModuleId module) const;
  void mark_active(std::size_t station_index);
  void mark_idle(std::size_t station_index);
  /// Transmit up to frames_per_slot frames from `owner`'s tx queue.
  void transmit_from(std::size_t owner_index, Ticks now);
  /// Min-heap push/pop over in_flight_ ordered by (deliver_at, seq).
  void push_in_flight(InFlight flight);
  [[nodiscard]] InFlight pop_in_flight();
  [[nodiscard]] static std::uint64_t vl_key(ModuleId from, ModuleId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                from.value()))
            << 32) |
           static_cast<std::uint32_t>(to.value());
  }

  BusConfig config_;
  std::vector<Station> stations_;
  /// ModuleId -> index into stations_ (satellite of DESIGN.md §13: station
  /// lookup and pending() are O(1) even on the flat topology).
  std::unordered_map<std::int32_t, std::size_t> station_index_;
  /// Indices of stations with a non-empty tx queue, unordered (queries over
  /// it are min-folds). Swap-erased via Station::active_pos.
  std::vector<std::size_t> active_stations_;
  /// Binary min-heap keyed (deliver_at, seq): pop order is exactly the
  /// delivery order the old stable-sorted deque produced.
  std::vector<InFlight> in_flight_;
  std::vector<VirtualLink> vls_;
  std::unordered_map<std::uint64_t, std::uint32_t> vl_index_;  // (src,dst)
  std::size_t pending_total_{0};
  BusStats stats_;
  telemetry::SpanRecorder* spans_{nullptr};
  FaultHook fault_hook_;
  std::uint64_t transmit_seq_{0};
  std::uint64_t flight_seq_{0};  // monotone in-flight insertion counter
};

}  // namespace air::net
