// Simulated inter-module communication infrastructure.
//
// Physically separated partitions exchange messages "through a communication
// infrastructure" (Sect. 2.1). We model a time-triggered (TDMA) bus in the
// spirit of the TTP protocol the paper cites: attached modules own
// transmission slots in a fixed round-robin cycle and may transmit a bounded
// number of frames per slot; frames arrive after a fixed propagation delay.
// The APEX port API on top is identical for local and remote destinations.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "ipc/router.hpp"
#include "util/types.hpp"

namespace air::net {

struct BusConfig {
  Ticks slot_length{10};        // ticks each module may transmit per cycle
  std::size_t frames_per_slot{4};
  Ticks propagation_delay{1};   // ticks from transmission to delivery
};

/// Per-station ("virtual link") counters, in attach order. Sampled by the
/// World's online bus plane at digest-window boundaries.
struct StationStats {
  ModuleId module;
  std::uint64_t frames_sent{0};       // enqueued by this station
  std::uint64_t frames_delivered{0};  // delivered *into* this station
  std::size_t backlog{0};             // tx queue depth at sampling time
};

struct BusStats {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_delivered{0};
  std::uint64_t frames_dropped{0};  // destination module not attached
  Ticks total_latency{0};           // sum over delivered frames (queue+prop)
  // Fault-injection outcomes (src/fi): applied at the transmit point.
  std::uint64_t frames_fault_dropped{0};
  std::uint64_t frames_fault_corrupted{0};
  std::uint64_t frames_fault_delayed{0};
};

class Bus {
 public:
  explicit Bus(BusConfig config = {}) : config_(config) {}

  /// Deliver callback: invoked on the destination module's side with the
  /// destination partition/port and the message.
  using DeliverFn = std::function<void(PartitionId, const std::string& port,
                                       const ipc::Message&, ipc::ChannelKind)>;

  /// Attach a module; slot order is attach order.
  void attach(ModuleId module, DeliverFn deliver);

  /// Enqueue a frame for transmission during `from`'s next slot(s).
  void send(ModuleId from, const ipc::RemotePortRef& dest,
            const ipc::Message& message, ipc::ChannelKind kind, Ticks now);

  /// Advance the bus by one tick: transmit from the slot owner, deliver
  /// frames whose propagation delay expired.
  void tick(Ticks now);

  /// How many consecutive calls tick(now), tick(now+1), ... would be
  /// no-ops: 0 while any station has frames queued (its slot will come),
  /// bounded by the earliest in-flight delivery otherwise, kInfiniteTime
  /// when the bus is completely idle. Lets the world-level time warp skip
  /// bus ticks without missing a transmission or delivery.
  [[nodiscard]] Ticks idle_ticks(Ticks now) const;

  /// Lower bound on the first tick >= `now` at which tick() could deliver a
  /// frame into a module: the earliest in-flight arrival, or -- for frames
  /// still queued at a station -- the first tick of the station's next TDMA
  /// slot plus the propagation delay. kInfiniteTime when nothing is queued
  /// or in flight. This is the epoch-horizon query of the parallel World
  /// driver: modules may advance independently past ticks the bus provably
  /// cannot touch.
  [[nodiscard]] Ticks next_delivery(Ticks now) const;

  /// Total frames queued for transmission across all stations (in-flight
  /// frames excluded). Zero means replaying an epoch's bus ticks can skip
  /// straight to the delivery edge.
  [[nodiscard]] std::size_t pending_total() const;

  [[nodiscard]] const BusConfig& config() const { return config_; }
  [[nodiscard]] const BusStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending(ModuleId module) const;
  /// Cumulative per-station counters, in attach order.
  [[nodiscard]] std::vector<StationStats> station_stats() const;

  /// Record a transit span per traced frame (open at send, closed at
  /// delivery/drop) in the World's bus recorder. nullptr = off.
  void set_spans(telemetry::SpanRecorder* spans) { spans_ = spans; }

  // --- fault injection (src/fi) ---

  /// What a fault hook may do to one frame at its transmit instant. The
  /// payload is corrupted (never the routing or the trace context), and
  /// extra delay postpones arrival -- later frames with shorter paths then
  /// overtake it, which is how frame *reordering* is modelled.
  struct FaultDecision {
    bool drop{false};
    bool corrupt{false};
    Ticks extra_delay{0};
  };

  /// Consulted when the TDMA slot owner moves a frame onto the wire.
  /// `transmit_seq` is the 0-based count of transmissions so far -- a
  /// deterministic key that is identical under lockstep and the parallel
  /// epoch driver (frames reach the transmit point in merged (tick,
  /// attach-order)).
  using FaultHook = std::function<FaultDecision(
      std::uint64_t transmit_seq, ModuleId from, const ipc::RemotePortRef&)>;

  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  [[nodiscard]] std::uint64_t transmit_seq() const { return transmit_seq_; }

 private:
  struct Frame {
    ipc::RemotePortRef dest;
    ipc::Message message;
    ipc::ChannelKind kind{ipc::ChannelKind::kSampling};
    Ticks enqueued_at{0};
    telemetry::SpanId span{0};  // open transit span (0 = untraced)
  };
  struct InFlight {
    Frame frame;
    Ticks deliver_at{0};
  };
  struct Station {
    ModuleId module;
    DeliverFn deliver;
    std::deque<Frame> tx_queue;
    std::uint64_t sent{0};       // frames enqueued here
    std::uint64_t delivered{0};  // frames delivered into this station
  };

  [[nodiscard]] Station* station(ModuleId module);

  BusConfig config_;
  std::vector<Station> stations_;
  std::deque<InFlight> in_flight_;  // sorted by deliver_at (stable)
  BusStats stats_;
  telemetry::SpanRecorder* spans_{nullptr};
  FaultHook fault_hook_;
  std::uint64_t transmit_seq_{0};
};

}  // namespace air::net
