// Simulated flat physical memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace air::hal {

using PhysAddr = std::uint32_t;
using VirtAddr = std::uint32_t;

/// Byte-addressable physical memory of fixed size. All accesses are bounds
/// checked; out-of-range access is a bug in the caller (the MMU must have
/// produced a valid frame), hence asserts rather than recoverable errors.
class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::size_t bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

  void write(PhysAddr addr, std::span<const std::byte> data);
  void read(PhysAddr addr, std::span<std::byte> out) const;

  [[nodiscard]] std::uint8_t read_u8(PhysAddr addr) const;
  void write_u8(PhysAddr addr, std::uint8_t value);

  [[nodiscard]] std::uint32_t read_u32(PhysAddr addr) const;
  void write_u32(PhysAddr addr, std::uint32_t value);

 private:
  std::vector<std::byte> bytes_;
};

/// Simple bump allocator over physical memory, used at integration time to
/// carve per-partition regions (code/data/stack per execution level). There
/// is deliberately no free(): ARINC 653 memory layout is static.
class FrameAllocator {
 public:
  FrameAllocator(PhysAddr base, std::size_t size) : next_(base), end_(base + size) {}

  /// Allocate `size` bytes aligned to `align`; returns the base address.
  [[nodiscard]] PhysAddr allocate(std::size_t size, std::size_t align = 16);

  [[nodiscard]] std::size_t remaining() const { return end_ - next_; }

 private:
  PhysAddr next_;
  PhysAddr end_;
};

}  // namespace air::hal
