#include "hal/memory.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace air::hal {

void PhysicalMemory::write(PhysAddr addr, std::span<const std::byte> data) {
  AIR_ASSERT_MSG(addr + data.size() <= bytes_.size(),
                 "physical write out of range");
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

void PhysicalMemory::read(PhysAddr addr, std::span<std::byte> out) const {
  AIR_ASSERT_MSG(addr + out.size() <= bytes_.size(),
                 "physical read out of range");
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

std::uint8_t PhysicalMemory::read_u8(PhysAddr addr) const {
  AIR_ASSERT(addr < bytes_.size());
  return static_cast<std::uint8_t>(bytes_[addr]);
}

void PhysicalMemory::write_u8(PhysAddr addr, std::uint8_t value) {
  AIR_ASSERT(addr < bytes_.size());
  bytes_[addr] = static_cast<std::byte>(value);
}

std::uint32_t PhysicalMemory::read_u32(PhysAddr addr) const {
  std::uint32_t v = 0;
  read(addr, std::as_writable_bytes(std::span{&v, 1}));
  return v;
}

void PhysicalMemory::write_u32(PhysAddr addr, std::uint32_t value) {
  write(addr, std::as_bytes(std::span{&value, 1}));
}

PhysAddr FrameAllocator::allocate(std::size_t size, std::size_t align) {
  AIR_ASSERT(align > 0 && (align & (align - 1)) == 0);
  PhysAddr base = (next_ + static_cast<PhysAddr>(align) - 1) &
                  ~static_cast<PhysAddr>(align - 1);
  AIR_ASSERT_MSG(base + size <= end_, "physical memory exhausted");
  next_ = base + static_cast<PhysAddr>(size);
  return base;
}

}  // namespace air::hal
