#include "hal/machine.hpp"

namespace air::hal {

namespace {

// Split an access into per-page chunks so a span crossing a page boundary is
// checked (and faulted) page by page, as hardware would.
template <class Fn>
TranslateResult for_each_page(VirtAddr vaddr, std::size_t size, Fn&& fn) {
  std::size_t done = 0;
  while (done < size) {
    const VirtAddr v = vaddr + static_cast<VirtAddr>(done);
    const std::size_t in_page =
        Mmu::kPageSize - (v & (Mmu::kPageSize - 1));
    const std::size_t chunk = std::min(in_page, size - done);
    TranslateResult r = fn(v, done, chunk);
    if (!r.ok()) return r;
    done += chunk;
  }
  return {PhysAddr{0}, {}};
}

}  // namespace

TranslateResult Machine::checked_write(VirtAddr vaddr,
                                       std::span<const std::byte> data,
                                       ExecLevel level) {
  return for_each_page(
      vaddr, data.size(),
      [&](VirtAddr v, std::size_t offset, std::size_t chunk) {
        TranslateResult r = mmu_.translate(v, AccessType::kWrite, level);
        if (r.ok()) memory_.write(*r.paddr, data.subspan(offset, chunk));
        return r;
      });
}

TranslateResult Machine::checked_read(VirtAddr vaddr, std::span<std::byte> out,
                                      ExecLevel level) {
  return for_each_page(
      vaddr, out.size(),
      [&](VirtAddr v, std::size_t offset, std::size_t chunk) {
        TranslateResult r = mmu_.translate(v, AccessType::kRead, level);
        if (r.ok()) memory_.read(*r.paddr, out.subspan(offset, chunk));
        return r;
      });
}

}  // namespace air::hal
