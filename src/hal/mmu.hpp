// Simulated three-level page-based MMU.
//
// Models the structure of the Gaisler SPARC V8 LEON3 reference MMU the paper
// names as the spatial-partitioning substrate (Fig. 3): a context table
// selects a per-partition level-1 table; the 32-bit virtual address is split
// 8/6/6 bits of table index plus a 12-bit page offset (4 KiB pages). Each
// page-table entry carries access rights *per execution level* (application,
// POS, PMK), which is how AIR maps its high-level spatial-partitioning
// descriptors onto hardware protection.
//
// A small fully-associative TLB caches translations; the walk depth and
// hit/miss counters feed the E11 spatial-partitioning bench.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hal/memory.hpp"
#include "util/types.hpp"

namespace air::hal {

/// Execution levels of Fig. 3, most to least privileged when descending.
enum class ExecLevel : std::uint8_t {
  kApplication = 0,
  kPos = 1,
  kPmk = 2,
};

enum class AccessType : std::uint8_t { kRead, kWrite, kExecute };

struct AccessRights {
  bool read{false};
  bool write{false};
  bool execute{false};

  [[nodiscard]] bool permits(AccessType type) const {
    switch (type) {
      case AccessType::kRead: return read;
      case AccessType::kWrite: return write;
      case AccessType::kExecute: return execute;
    }
    return false;
  }

  static constexpr AccessRights rw() { return {true, true, false}; }
  static constexpr AccessRights rx() { return {true, false, true}; }
  static constexpr AccessRights ro() { return {true, false, false}; }
  static constexpr AccessRights none() { return {}; }
};

/// Rights for each execution level; a page readable by the POS need not be
/// readable by application code (e.g. kernel data inside a partition).
struct LevelRights {
  std::array<AccessRights, 3> by_level{};

  [[nodiscard]] const AccessRights& at(ExecLevel level) const {
    return by_level[static_cast<std::size_t>(level)];
  }
  AccessRights& at(ExecLevel level) {
    return by_level[static_cast<std::size_t>(level)];
  }

  /// Same rights at every level.
  static LevelRights uniform(AccessRights rights) {
    return {{rights, rights, rights}};
  }
};

struct MmuFault {
  enum class Kind : std::uint8_t { kUnmapped, kProtection, kNoContext };
  Kind kind{Kind::kUnmapped};
  VirtAddr vaddr{0};
  AccessType access{AccessType::kRead};
  ExecLevel level{ExecLevel::kApplication};
};

struct TranslateResult {
  std::optional<PhysAddr> paddr;  // engaged on success
  MmuFault fault;                 // meaningful when !paddr

  [[nodiscard]] bool ok() const { return paddr.has_value(); }
};

struct MmuStats {
  std::uint64_t tlb_hits{0};
  std::uint64_t tlb_misses{0};
  std::uint64_t table_walks{0};
  std::uint64_t faults{0};
};

using MmuContextId = std::int32_t;

class Mmu {
 public:
  static constexpr std::uint32_t kPageBits = 12;
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;
  static constexpr std::size_t kTlbEntries = 32;

  /// Create a fresh address-space context (one per partition, plus one for
  /// the PMK itself). Returns the new context id.
  [[nodiscard]] MmuContextId create_context();

  /// Map the virtual range [vaddr, vaddr+size) onto the physical range
  /// starting at `paddr` in context `ctx`, with the given per-level rights.
  /// Both addresses must be page aligned; size is rounded up to whole pages.
  void map(MmuContextId ctx, VirtAddr vaddr, PhysAddr paddr, std::size_t size,
           const LevelRights& rights);

  /// Remove any mapping for the range (used on partition restart).
  void unmap(MmuContextId ctx, VirtAddr vaddr, std::size_t size);

  /// Select the active context (the PMK dispatcher does this on every
  /// partition context switch) and invalidate the TLB, as a hardware context
  /// switch would.
  void set_active_context(MmuContextId ctx);
  [[nodiscard]] MmuContextId active_context() const { return active_; }

  /// Translate a virtual access in the *active* context.
  [[nodiscard]] TranslateResult translate(VirtAddr vaddr, AccessType type,
                                          ExecLevel level);

  /// Translation without TLB/stat side effects (debug / model checking).
  [[nodiscard]] TranslateResult probe(MmuContextId ctx, VirtAddr vaddr,
                                      AccessType type, ExecLevel level) const;

  void flush_tlb();

  [[nodiscard]] const MmuStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  // 8/6/6 split over the upper 20 bits of the virtual address.
  static constexpr std::uint32_t kL1Bits = 8;
  static constexpr std::uint32_t kL2Bits = 6;
  static constexpr std::uint32_t kL3Bits = 6;

  struct Pte {
    bool valid{false};
    PhysAddr frame{0};  // page-aligned physical base
    LevelRights rights;
  };

  struct L3Table {
    std::array<Pte, 1u << kL3Bits> entries{};
  };
  struct L2Table {
    std::array<std::unique_ptr<L3Table>, 1u << kL2Bits> entries{};
  };
  struct L1Table {
    std::array<std::unique_ptr<L2Table>, 1u << kL1Bits> entries{};
  };

  struct TlbEntry {
    bool valid{false};
    MmuContextId ctx{-1};
    VirtAddr vpage{0};
    const Pte* pte{nullptr};
  };

  [[nodiscard]] const Pte* walk(MmuContextId ctx, VirtAddr vaddr) const;
  Pte& walk_or_create(MmuContextId ctx, VirtAddr vaddr);

  std::vector<std::unique_ptr<L1Table>> contexts_;
  std::array<TlbEntry, kTlbEntries> tlb_{};
  std::size_t tlb_cursor_{0};
  MmuContextId active_{-1};
  MmuStats stats_;
};

}  // namespace air::hal
