// Simulated interrupt controller.
//
// Only the lines the AIR stack needs are modelled. Crucially, masking the
// timer line is a *privileged* operation: partition code (including a whole
// guest POS) cannot reach it directly -- attempts are routed through the PMK
// paravirtualisation gate (Sect. 2.5 of the paper), which refuses and traps.
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.hpp"

namespace air::hal {

enum class IrqLine : std::uint8_t {
  kTimer = 0,
  kBus = 1,
  kCount,
};

class InterruptController {
 public:
  void enable(IrqLine line, bool on) { enabled_[index(line)] = on; }
  [[nodiscard]] bool enabled(IrqLine line) const {
    return enabled_[index(line)];
  }

  void raise(IrqLine line) { pending_[index(line)] = true; }

  /// Consume a pending+enabled interrupt, if any; returns true when taken.
  [[nodiscard]] bool take(IrqLine line) {
    const std::size_t i = index(line);
    if (!enabled_[i] || !pending_[i]) return false;
    pending_[i] = false;
    return true;
  }

 private:
  static std::size_t index(IrqLine line) {
    const auto i = static_cast<std::size_t>(line);
    AIR_ASSERT(i < static_cast<std::size_t>(IrqLine::kCount));
    return i;
  }

  std::array<bool, static_cast<std::size_t>(IrqLine::kCount)> enabled_{true,
                                                                       true};
  std::array<bool, static_cast<std::size_t>(IrqLine::kCount)> pending_{};
};

}  // namespace air::hal
