// The simulated computing platform: clock + interrupt controller + physical
// memory + MMU, aggregated the way a LEON3-class onboard computer would be.
#pragma once

#include <cstddef>

#include "hal/clock.hpp"
#include "hal/interrupts.hpp"
#include "hal/memory.hpp"
#include "hal/mmu.hpp"

namespace air::hal {

class Machine {
 public:
  explicit Machine(std::size_t memory_bytes = 16u << 20)
      : memory_(memory_bytes), allocator_(0, memory_bytes) {}

  /// Advance the platform by one timer period: bump the clock and latch a
  /// timer interrupt for the kernel to take.
  void tick() {
    clock_.advance();
    interrupts_.raise(IrqLine::kTimer);
  }

  /// Batch-advance the platform by `ticks` timer periods in O(1). Each
  /// skipped period would have raised the timer line and had it taken (or
  /// left pending while masked); raising it once leaves the controller in
  /// the same state the per-tick sequence would.
  void advance(Ticks ticks) {
    clock_.advance(ticks);
    interrupts_.raise(IrqLine::kTimer);
  }

  [[nodiscard]] Clock& clock() { return clock_; }
  [[nodiscard]] const Clock& clock() const { return clock_; }
  [[nodiscard]] InterruptController& interrupts() { return interrupts_; }
  [[nodiscard]] PhysicalMemory& memory() { return memory_; }
  [[nodiscard]] FrameAllocator& allocator() { return allocator_; }
  [[nodiscard]] Mmu& mmu() { return mmu_; }
  [[nodiscard]] const Mmu& mmu() const { return mmu_; }

  /// Checked memory access through the MMU in the active context.
  /// Returns the fault on violation instead of touching memory.
  [[nodiscard]] TranslateResult checked_write(VirtAddr vaddr,
                                              std::span<const std::byte> data,
                                              ExecLevel level);
  [[nodiscard]] TranslateResult checked_read(VirtAddr vaddr,
                                             std::span<std::byte> out,
                                             ExecLevel level);

 private:
  Clock clock_;
  InterruptController interrupts_;
  PhysicalMemory memory_;
  FrameAllocator allocator_;
  Mmu mmu_;
};

}  // namespace air::hal
