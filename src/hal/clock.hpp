// Simulated system clock.
//
// The real AIR prototype drives partition scheduling from the hardware timer
// tick ISR. Here a deterministic tick counter substitutes for the hardware
// timer; Module::run() advances it and invokes the same chain of handlers an
// ISR would (PMK partition scheduler -> dispatcher -> PAL announce).
#pragma once

#include "util/types.hpp"

namespace air::hal {

class Clock {
 public:
  /// Current time, in ticks since power-on.
  [[nodiscard]] Ticks now() const { return now_; }

  /// Advance time by exactly one tick (one timer interrupt period).
  void advance() { ++now_; }

  /// Batch-advance by `ticks` timer periods in O(1) -- the time-warp engine
  /// collapses a quiescent span into one call; state is identical to that
  /// many advance() calls.
  void advance(Ticks ticks) { now_ += ticks; }

 private:
  Ticks now_{0};
};

}  // namespace air::hal
