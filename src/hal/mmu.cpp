#include "hal/mmu.hpp"

#include "util/assert.hpp"

namespace air::hal {

namespace {

constexpr std::uint32_t l1_index(VirtAddr v) { return (v >> 24) & 0xFF; }
constexpr std::uint32_t l2_index(VirtAddr v) { return (v >> 18) & 0x3F; }
constexpr std::uint32_t l3_index(VirtAddr v) { return (v >> 12) & 0x3F; }
constexpr std::uint32_t page_offset(VirtAddr v) { return v & (Mmu::kPageSize - 1); }
constexpr VirtAddr page_of(VirtAddr v) { return v & ~(Mmu::kPageSize - 1); }

}  // namespace

MmuContextId Mmu::create_context() {
  contexts_.push_back(std::make_unique<L1Table>());
  return static_cast<MmuContextId>(contexts_.size() - 1);
}

Mmu::Pte& Mmu::walk_or_create(MmuContextId ctx, VirtAddr vaddr) {
  AIR_ASSERT(ctx >= 0 && static_cast<std::size_t>(ctx) < contexts_.size());
  L1Table& l1 = *contexts_[static_cast<std::size_t>(ctx)];
  auto& l2 = l1.entries[l1_index(vaddr)];
  if (!l2) l2 = std::make_unique<L2Table>();
  auto& l3 = l2->entries[l2_index(vaddr)];
  if (!l3) l3 = std::make_unique<L3Table>();
  return l3->entries[l3_index(vaddr)];
}

const Mmu::Pte* Mmu::walk(MmuContextId ctx, VirtAddr vaddr) const {
  if (ctx < 0 || static_cast<std::size_t>(ctx) >= contexts_.size()) {
    return nullptr;
  }
  const L1Table& l1 = *contexts_[static_cast<std::size_t>(ctx)];
  const auto& l2 = l1.entries[l1_index(vaddr)];
  if (!l2) return nullptr;
  const auto& l3 = l2->entries[l2_index(vaddr)];
  if (!l3) return nullptr;
  const Pte& pte = l3->entries[l3_index(vaddr)];
  return pte.valid ? &pte : nullptr;
}

void Mmu::map(MmuContextId ctx, VirtAddr vaddr, PhysAddr paddr,
              std::size_t size, const LevelRights& rights) {
  AIR_ASSERT_MSG(page_offset(vaddr) == 0, "vaddr must be page aligned");
  AIR_ASSERT_MSG(page_offset(paddr) == 0, "paddr must be page aligned");
  const std::size_t pages = (size + kPageSize - 1) / kPageSize;
  for (std::size_t i = 0; i < pages; ++i) {
    Pte& pte = walk_or_create(
        ctx, vaddr + static_cast<VirtAddr>(i * kPageSize));
    pte.valid = true;
    pte.frame = paddr + static_cast<PhysAddr>(i * kPageSize);
    pte.rights = rights;
  }
  flush_tlb();
}

void Mmu::unmap(MmuContextId ctx, VirtAddr vaddr, std::size_t size) {
  const std::size_t pages = (size + kPageSize - 1) / kPageSize;
  for (std::size_t i = 0; i < pages; ++i) {
    const VirtAddr v = vaddr + static_cast<VirtAddr>(i * kPageSize);
    // Walk without creating intermediate tables.
    if (const Pte* pte = walk(ctx, v)) {
      const_cast<Pte*>(pte)->valid = false;
    }
  }
  flush_tlb();
}

void Mmu::set_active_context(MmuContextId ctx) {
  AIR_ASSERT(ctx >= 0 && static_cast<std::size_t>(ctx) < contexts_.size());
  if (active_ == ctx) return;
  active_ = ctx;
  // A real context switch invalidates non-tagged TLB entries.
  flush_tlb();
}

void Mmu::flush_tlb() {
  for (auto& entry : tlb_) entry.valid = false;
}

TranslateResult Mmu::translate(VirtAddr vaddr, AccessType type,
                               ExecLevel level) {
  if (active_ < 0) {
    ++stats_.faults;
    return {std::nullopt,
            {MmuFault::Kind::kNoContext, vaddr, type, level}};
  }

  const VirtAddr vpage = page_of(vaddr);
  const Pte* pte = nullptr;

  for (const TlbEntry& entry : tlb_) {
    if (entry.valid && entry.ctx == active_ && entry.vpage == vpage) {
      pte = entry.pte;
      ++stats_.tlb_hits;
      break;
    }
  }

  if (pte == nullptr) {
    ++stats_.tlb_misses;
    ++stats_.table_walks;
    pte = walk(active_, vaddr);
    if (pte != nullptr) {
      TlbEntry& slot = tlb_[tlb_cursor_];
      tlb_cursor_ = (tlb_cursor_ + 1) % kTlbEntries;
      slot = {true, active_, vpage, pte};
    }
  }

  if (pte == nullptr) {
    ++stats_.faults;
    return {std::nullopt, {MmuFault::Kind::kUnmapped, vaddr, type, level}};
  }
  if (!pte->rights.at(level).permits(type)) {
    ++stats_.faults;
    return {std::nullopt, {MmuFault::Kind::kProtection, vaddr, type, level}};
  }
  return {pte->frame + page_offset(vaddr), {}};
}

TranslateResult Mmu::probe(MmuContextId ctx, VirtAddr vaddr, AccessType type,
                           ExecLevel level) const {
  const Pte* pte = walk(ctx, vaddr);
  if (pte == nullptr) {
    return {std::nullopt, {MmuFault::Kind::kUnmapped, vaddr, type, level}};
  }
  if (!pte->rights.at(level).permits(type)) {
    return {std::nullopt, {MmuFault::Kind::kProtection, vaddr, type, level}};
  }
  return {pte->frame + page_offset(vaddr), {}};
}

}  // namespace air::hal
