// Trace exporters.
//
// to_chrome_trace() converts a module trace into the Chrome Trace Event
// JSON format (load in chrome://tracing or Perfetto): partition occupancy
// becomes duration events on a per-partition track, while deadline misses,
// schedule switches and HM reports become instant events. Counter events
// ("ph":"C") add per-partition CPU-utilization curves and a cumulative
// deadline-miss series under the Gantt tracks. Useful for eyeballing
// exactly the charts the paper draws (Fig. 8).
#pragma once

#include <string>

#include "util/trace.hpp"

namespace air::util {

/// Chrome Trace Event JSON. `tick_us` scales ticks to microseconds on the
/// timeline (default: 1 tick = 1 us).
[[nodiscard]] std::string to_chrome_trace(const Trace& trace,
                                          double tick_us = 1.0);

/// Flat JSON array of every event (machine-readable dump of the trace).
[[nodiscard]] std::string to_json(const Trace& trace);

}  // namespace air::util
