// Minimal JSON parser and writer.
//
// ARINC 653 systems are configured by integration-time files (the standard
// uses XML; we use JSON for the same role -- see src/config). Implemented
// from scratch: recursive-descent parser with line/column error reporting.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace air::util::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// A JSON document node. Numbers keep an exact int64 representation when the
/// literal was integral, because tick counts must not round-trip through
/// doubles.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(std::int64_t n) : data_(n) {}
  Value(int n) : data_(static_cast<std::int64_t>(n)) {}
  Value(double d) : data_(d) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(const char* s) : data_(std::string{s}) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(data_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(data_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(data_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(data_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(data_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(data_); }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Typed member accessors with defaults (convenience for config loading).
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Serialise; `indent` < 0 produces compact output.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

struct ParseError {
  std::string message;
  int line{0};
  int column{0};

  [[nodiscard]] std::string to_string() const;
};

struct ParseResult {
  std::optional<Value> value;
  std::optional<ParseError> error;

  [[nodiscard]] bool ok() const { return value.has_value(); }
};

/// Parse a complete JSON document. Trailing garbage is an error.
[[nodiscard]] ParseResult parse(std::string_view text);

}  // namespace air::util::json
