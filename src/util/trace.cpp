#include "util/trace.hpp"

#include <sstream>

namespace air::util {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kPartitionDispatch: return "partition_dispatch";
    case EventKind::kPartitionPreempt: return "partition_preempt";
    case EventKind::kScheduleSwitchReq: return "schedule_switch_req";
    case EventKind::kScheduleSwitch: return "schedule_switch";
    case EventKind::kScheduleChangeAction: return "schedule_change_action";
    case EventKind::kProcessDispatch: return "process_dispatch";
    case EventKind::kProcessStateChange: return "process_state_change";
    case EventKind::kDeadlineRegistered: return "deadline_registered";
    case EventKind::kDeadlineRemoved: return "deadline_removed";
    case EventKind::kDeadlineMiss: return "deadline_miss";
    case EventKind::kHmError: return "hm_error";
    case EventKind::kHmAction: return "hm_action";
    case EventKind::kPortSend: return "port_send";
    case EventKind::kPortReceive: return "port_receive";
    case EventKind::kSpatialViolation: return "spatial_violation";
    case EventKind::kClockParavirtTrap: return "clock_paravirt_trap";
    case EventKind::kPartitionModeChange: return "partition_mode_change";
    case EventKind::kUser: return "user";
  }
  return "unknown";
}

std::vector<TraceEvent> Trace::filtered(EventKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> Trace::filtered(
    EventKind kind, const std::function<bool(const TraceEvent&)>& pred) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind && pred(e)) out.push_back(e);
  }
  return out;
}

std::size_t Trace::count(EventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string Trace::to_text() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << e.time << ' ' << to_string(e.kind) << " a=" << e.a << " b=" << e.b
       << " c=" << e.c;
    if (!e.label.empty()) os << ' ' << e.label;
    os << '\n';
  }
  return os.str();
}

}  // namespace air::util
