#include "util/trace.hpp"

#include <algorithm>
#include <sstream>

namespace air::util {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kPartitionDispatch: return "partition_dispatch";
    case EventKind::kPartitionPreempt: return "partition_preempt";
    case EventKind::kScheduleSwitchReq: return "schedule_switch_req";
    case EventKind::kScheduleSwitch: return "schedule_switch";
    case EventKind::kScheduleChangeAction: return "schedule_change_action";
    case EventKind::kProcessDispatch: return "process_dispatch";
    case EventKind::kProcessStateChange: return "process_state_change";
    case EventKind::kDeadlineRegistered: return "deadline_registered";
    case EventKind::kDeadlineRemoved: return "deadline_removed";
    case EventKind::kDeadlineMiss: return "deadline_miss";
    case EventKind::kHmError: return "hm_error";
    case EventKind::kHmAction: return "hm_action";
    case EventKind::kPortSend: return "port_send";
    case EventKind::kPortReceive: return "port_receive";
    case EventKind::kSpatialViolation: return "spatial_violation";
    case EventKind::kClockParavirtTrap: return "clock_paravirt_trap";
    case EventKind::kPartitionModeChange: return "partition_mode_change";
    case EventKind::kUser: return "user";
    case EventKind::kSpan: return "span";
    case EventKind::kHealth: return "health";
  }
  return "unknown";
}

Severity severity(EventKind kind) {
  switch (kind) {
    // The evidence: what went wrong and how the module reacted. Retained
    // in the flight recorder's dedicated ring.
    case EventKind::kDeadlineMiss:
    case EventKind::kHmError:
    case EventKind::kHmAction:
    case EventKind::kSpatialViolation:
    case EventKind::kClockParavirtTrap:
    case EventKind::kScheduleSwitchReq:
    case EventKind::kScheduleSwitch:
    case EventKind::kScheduleChangeAction:
    case EventKind::kPartitionModeChange:
    case EventKind::kHealth:  // an SLO breach is evidence by definition
      return Severity::kCritical;
    // Normal operation landmarks.
    case EventKind::kPartitionDispatch:
    case EventKind::kPartitionPreempt:
    case EventKind::kProcessDispatch:
    case EventKind::kDeadlineRegistered:
    case EventKind::kDeadlineRemoved:
    case EventKind::kUser:
      return Severity::kInfo;
    // High-frequency detail.
    case EventKind::kProcessStateChange:
    case EventKind::kPortSend:
    case EventKind::kPortReceive:
    case EventKind::kSpan:
      return Severity::kDebug;
  }
  return Severity::kInfo;
}

void Trace::set_flight_recorder(std::size_t capacity,
                                std::size_t critical_capacity) {
  auto recorder = std::make_unique<Recorder>(capacity, critical_capacity);
  if (recorder_ != nullptr) {
    // Re-route the previously retained events (preserves dropped counts).
    recorder->dropped = recorder_->dropped;
    recorder->dropped_critical = recorder_->dropped_critical;
    rebuild_view();
  }
  recorder_ = std::move(recorder);
  for (const TraceEvent& event : events_) {
    const bool critical = severity(event.kind) == Severity::kCritical;
    RingBuffer<Stored>& ring =
        critical ? recorder_->critical : recorder_->ring;
    if (ring.push_overwrite({event, recorder_->seq++})) {
      ++recorder_->dropped;
      if (critical) ++recorder_->dropped_critical;
    }
  }
  events_.clear();
  view_dirty_ = true;
}

std::uint64_t Trace::dropped_events() const {
  return recorder_ != nullptr ? recorder_->dropped : 0;
}

std::uint64_t Trace::dropped_critical_events() const {
  return recorder_ != nullptr ? recorder_->dropped_critical : 0;
}

void Trace::add_sink(TraceSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void Trace::remove_sink(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void Trace::record_slow(const TraceEvent& event) {
  for (TraceSink* sink : sinks_) sink->on_event(event);
  if (recorder_ == nullptr) {
    events_.push_back(event);
    return;
  }
  const bool critical = severity(event.kind) == Severity::kCritical;
  RingBuffer<Stored>& ring = critical ? recorder_->critical : recorder_->ring;
  if (ring.push_overwrite({event, recorder_->seq++})) {
    ++recorder_->dropped;
    if (critical) ++recorder_->dropped_critical;
  }
  view_dirty_ = true;
}

void Trace::rebuild_view() const {
  events_.clear();
  const RingBuffer<Stored>& ring = recorder_->ring;
  const RingBuffer<Stored>& critical = recorder_->critical;
  events_.reserve(ring.size() + critical.size());
  // Both rings are individually in recording (seq) order; merge on seq.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ring.size() || j < critical.size()) {
    const bool take_ring =
        j >= critical.size() ||
        (i < ring.size() && ring.at(i).seq < critical.at(j).seq);
    events_.push_back(take_ring ? ring.at(i++).event
                                : critical.at(j++).event);
  }
  view_dirty_ = false;
}

const std::vector<TraceEvent>& Trace::events() const {
  if (recorder_ != nullptr && view_dirty_) rebuild_view();
  return events_;
}

std::vector<TraceEvent> Trace::filtered(EventKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events()) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> Trace::filtered(
    EventKind kind, const std::function<bool(const TraceEvent&)>& pred) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events()) {
    if (e.kind == kind && pred(e)) out.push_back(e);
  }
  return out;
}

std::size_t Trace::count(EventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events()) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void Trace::clear() {
  events_.clear();
  recorded_ = 0;
  if (recorder_ != nullptr) {
    recorder_->ring.clear();
    recorder_->critical.clear();
    recorder_->dropped = 0;
    recorder_->dropped_critical = 0;
    recorder_->seq = 0;
    view_dirty_ = false;
  }
}

std::string Trace::to_text() const {
  std::ostringstream os;
  for (const auto& e : events()) {
    os << e.time << ' ' << to_string(e.kind) << " a=" << e.a << " b=" << e.b
       << " c=" << e.c;
    if (!e.label.empty()) os << ' ' << e.label;
    os << '\n';
  }
  return os.str();
}

}  // namespace air::util
