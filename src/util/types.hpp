// Fundamental value types shared across the AIR TSP stack.
//
// All time in the system is expressed in clock ticks of the (simulated)
// system clock; there is deliberately no wall-clock anywhere in the core so
// that every run is deterministic and replayable.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace air {

/// Discrete system time, in clock ticks since module start.
using Ticks = std::int64_t;

/// Sentinel meaning "no deadline" / "infinite time" (the paper's D = inf).
inline constexpr Ticks kInfiniteTime = std::numeric_limits<Ticks>::max();

/// Strongly-typed integral identifier. `Tag` distinguishes id spaces at
/// compile time so a ProcessId cannot be passed where a PartitionId is due.
template <class Tag, class Rep = std::int32_t>
class Id {
 public:
  using rep_type = Rep;

  constexpr Id() = default;
  constexpr explicit Id(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr auto operator<=>(Id, Id) = default;

  /// Invalid/unset id (negative sentinel).
  static constexpr Id invalid() { return Id{Rep{-1}}; }

 private:
  Rep value_{-1};
};

struct PartitionTag {};
struct ProcessTag {};
struct ScheduleTag {};
struct WindowTag {};
struct PortTag {};
struct ChannelTag {};
struct SemaphoreTag {};
struct EventTag {};
struct BufferTag {};
struct BlackboardTag {};
struct ModuleTag {};

using PartitionId = Id<PartitionTag>;
using ProcessId = Id<ProcessTag>;
using ScheduleId = Id<ScheduleTag>;
using WindowId = Id<WindowTag>;
using PortId = Id<PortTag>;
using ChannelId = Id<ChannelTag>;
using SemaphoreId = Id<SemaphoreTag>;
using EventId = Id<EventTag>;
using BufferId = Id<BufferTag>;
using BlackboardId = Id<BlackboardTag>;
using ModuleId = Id<ModuleTag>;

/// Process priority. Following the paper's convention (Sect. 3.3), *lower*
/// numeric values denote *greater* priority.
using Priority = std::int32_t;

/// Causal trace context carried inside interpartition messages and bus
/// frames (telemetry span layer). `trace_id` names the message flow;
/// `parent_span` is the id of the last span the message passed through, so
/// each hop can parent itself correctly. Zero-initialised = not traced.
/// Lives here (not in telemetry) so ipc/net need no telemetry dependency.
struct TraceContext {
  std::uint64_t trace_id{0};
  std::uint64_t parent_span{0};
};

}  // namespace air

template <class Tag, class Rep>
struct std::hash<air::Id<Tag, Rep>> {
  std::size_t operator()(const air::Id<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
