// Fixed-size worker pool (shared fan-out machinery).
//
// Born as the World's epoch executor (DESIGN.md §8) and hoisted into util
// for PR 10 so the schedulability batch service (src/model/batch.*) can fan
// independent per-config analyses over the same pool without dragging the
// whole system layer into the model library. One pool per owner, sized
// once; each batch is a parallel-for over N items. Work items are claimed
// with an atomic cursor so the assignment of items to threads is
// load-balanced, while everything a task touches is owned by exactly one
// item index -- determinism never depends on the thread interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace air::util {

class WorkerPool {
 public:
  /// Spawn `threads` persistent worker threads (0 = none; run() then
  /// executes inline on the caller).
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }

  /// Execute task(0) .. task(count - 1), each exactly once, across the pool
  /// plus the calling thread; returns only after every invocation finished.
  /// Not reentrant: one batch at a time (every owner drives one batch at a
  /// time, so this is structural, and asserted via the batch counter).
  void run(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* task_{nullptr};
  std::size_t count_{0};
  std::atomic<std::size_t> cursor_{0};
  std::size_t unfinished_{0};  // workers still inside the current batch
  std::uint64_t batch_{0};
  bool shutdown_{false};
  std::vector<std::thread> threads_;
};

}  // namespace air::util
