#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace air::util::json {

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(data_);
  return static_cast<std::int64_t>(std::get<double>(data_));
}

double Value::as_double() const {
  if (is_double()) return std::get<double>(data_);
  return static_cast<double>(std::get<std::int64_t>(data_));
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  auto it = obj.find(std::string{key});
  return it != obj.end() ? &it->second : nullptr;
}

std::int64_t Value::get_int(std::string_view key, std::int64_t fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

std::string Value::get_string(std::string_view key,
                              std::string_view fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::string{fallback};
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string ParseError::to_string() const {
  return "json parse error at " + std::to_string(line) + ":" +
         std::to_string(column) + ": " + message;
}

namespace {

void escape_string(const std::string& in, std::string& out) {
  out += '"';
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return {std::nullopt, error_};
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return {std::nullopt, error_};
    }
    return {std::move(v), std::nullopt};
  }

 private:
  bool parse_value(Value& out) {
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't': return parse_literal("true", Value{true}, out);
      case 'f': return parse_literal("false", Value{false}, out);
      case 'n': return parse_literal("null", Value{nullptr}, out);
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    advance();  // '{'
    Object obj;
    skip_ws();
    if (!at_end() && peek() == '}') {
      advance();
      out = Value{std::move(obj)};
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string_raw(key)) return false;
      skip_ws();
      if (at_end() || peek() != ':') return fail("expected ':'");
      advance();
      skip_ws();
      Value member;
      if (!parse_value(member)) return false;
      obj.emplace(std::move(key), std::move(member));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      if (peek() == '}') {
        advance();
        out = Value{std::move(obj)};
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out) {
    advance();  // '['
    Array arr;
    skip_ws();
    if (!at_end() && peek() == ']') {
      advance();
      out = Value{std::move(arr)};
      return true;
    }
    while (true) {
      skip_ws();
      Value element;
      if (!parse_value(element)) return false;
      arr.push_back(std::move(element));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      if (peek() == ']') {
        advance();
        out = Value{std::move(arr)};
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string_value(Value& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = Value{std::move(s)};
    return true;
  }

  bool parse_string_raw(std::string& out) {
    advance();  // opening quote
    while (true) {
      if (at_end()) return fail("unterminated string");
      char c = peek();
      advance();
      if (c == '"') return true;
      if (c == '\\') {
        if (at_end()) return fail("unterminated escape");
        char esc = peek();
        advance();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              if (at_end() || std::isxdigit(static_cast<unsigned char>(peek())) == 0) {
                return fail("bad \\u escape");
              }
              char h = peek();
              advance();
              code = code * 16 +
                     static_cast<unsigned>(h <= '9' ? h - '0'
                                                    : (std::tolower(h) - 'a' + 10));
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported;
            // config files are plain ASCII in practice).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape character");
        }
        continue;
      }
      out += c;
    }
  }

  bool parse_literal(std::string_view word, Value value, Value& out) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    for (std::size_t i = 0; i < word.size(); ++i) advance();
    out = std::move(value);
    return true;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    bool is_floating = false;
    if (!at_end() && peek() == '-') advance();
    while (!at_end() &&
           (std::isdigit(static_cast<unsigned char>(peek())) != 0)) {
      advance();
    }
    if (!at_end() && peek() == '.') {
      is_floating = true;
      advance();
      while (!at_end() &&
             (std::isdigit(static_cast<unsigned char>(peek())) != 0)) {
        advance();
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      is_floating = true;
      advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) advance();
      while (!at_end() &&
             (std::isdigit(static_cast<unsigned char>(peek())) != 0)) {
        advance();
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("invalid number");
    if (is_floating) {
      double d = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
      if (ec != std::errc{} || p != token.data() + token.size()) {
        return fail("invalid number");
      }
      out = Value{d};
    } else {
      std::int64_t n = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), n);
      if (ec != std::errc{} || p != token.data() + token.size()) {
        return fail("integer out of range");
      }
      out = Value{n};
    }
    return true;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_ws() {
    while (!at_end()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        // Allow // line comments in configuration files.
        while (!at_end() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  bool fail(std::string message) {
    if (!error_) error_ = ParseError{std::move(message), line_, column_};
    return false;
  }

  std::string_view text_;
  std::size_t pos_{0};
  int line_{1};
  int column_{1};
  std::optional<ParseError> error_;
};

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<std::int64_t>(data_));
  } else if (is_double()) {
    const double d = std::get<double>(data_);
    if (!std::isfinite(d)) {
      // JSON has no NaN/Infinity literals; "%g" would emit them and produce
      // an unparseable document. null is the conventional lossy stand-in.
      out += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  } else if (is_string()) {
    escape_string(as_string(), out);
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& v : arr) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, v] : obj) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      escape_string(key, out);
      out += indent < 0 ? ":" : ": ";
      v.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

ParseResult parse(std::string_view text) { return Parser{text}.run(); }

}  // namespace air::util::json
