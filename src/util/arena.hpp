// Interned-string arena (zero-allocation telemetry storage).
//
// ROADMAP item 3: after PR 7 flattened dispatch and pooled message
// payloads, the honest Release profile showed the last steady-state heap
// traffic coming from the observability plane itself -- span labels, trace
// event labels and root-cause detail strings, all std::string-backed. The
// arena removes that class of allocation wholesale: strings are interned
// once into bump-allocated blocks and every record thereafter carries a
// 4-byte symbol id. Flight labels repeat heavily (process names, HM
// messages, OpLog text), so a steady-state mission stops allocating after
// the first occurrence of each distinct label -- which the zero-allocation
// flight test (tests/test_zero_alloc.cpp) proves with the arena's own
// counters plus the payload-pool counters.
//
// Ownership rules (DESIGN.md §12): the arena outlives every InternedString
// minted from it. A system::Module owns one arena shared by its trace and
// span recorder; standalone recorders lazily own a private one. trim() is
// a quiescent-state operation (tests, post-clear()): it invalidates every
// outstanding symbol, exactly like ipc::Payload::trim_pool invalidates
// parked blocks.
//
// Determinism: symbol ids are assigned in first-intern order, which is a
// pure function of the simulated event sequence -- so exports that resolve
// symbols back to text are byte-identical across runs and across the four
// execution drivers.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace air::util {

/// Stable interned-string id. 0 is reserved for the empty string and is
/// never handed out for real text.
using Sym = std::uint32_t;

class StringArena {
 public:
  /// Bump-block granularity. Oversized strings get a dedicated block.
  static constexpr std::size_t kBlockBytes = 64 * 1024;

  StringArena() = default;
  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;

  /// Intern `text`: returns the existing symbol when the exact bytes were
  /// seen before (a hit -- no allocation), otherwise copies the bytes into
  /// the current bump block and mints the next id. Empty text is Sym 0.
  Sym intern(std::string_view text);

  /// Resolve a symbol. Sym 0 and unknown ids resolve to "".
  [[nodiscard]] std::string_view lookup(Sym sym) const {
    if (sym == 0 || sym > symbols_.size()) return {};
    return symbols_[sym - 1];
  }

  // --- observability (status_report, profiler alloc attribution) ---
  struct Stats {
    std::size_t symbols{0};         // distinct strings interned
    std::size_t blocks{0};          // bump blocks currently allocated
    std::size_t bytes_used{0};      // payload bytes bump-allocated
    std::size_t bytes_reserved{0};  // sum of block capacities
    std::size_t high_water{0};      // max bytes_used ever observed
    std::uint64_t hits{0};          // intern() calls resolved to an id
    std::uint64_t misses{0};        // intern() calls that copied new bytes
    std::uint64_t trims{0};         // trim() invocations
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Release every block and forget every symbol (counts hits/misses and
  /// high_water survive; trims increments). Outstanding symbols become
  /// dangling -- only call with no live InternedString referencing this
  /// arena (tests; quiescent teardown).
  void trim();

 private:
  struct Block {
    std::unique_ptr<char[]> bytes;
    std::size_t used{0};
    std::size_t capacity{0};
  };

  std::vector<Block> blocks_;
  std::vector<std::string_view> symbols_;  // sym - 1 -> text (arena-backed)
  // Keys are views into the arena blocks, which never move once written.
  std::unordered_map<std::string_view, Sym> index_;
  Stats stats_;
};

/// A symbol plus the arena that can resolve it: the value type that
/// replaces std::string in telemetry records. Copying is two words; the
/// text is resolved only at export/inspection time.
class InternedString {
 public:
  InternedString() = default;
  InternedString(const StringArena* arena, Sym sym)
      : arena_(arena), sym_(sym) {}

  [[nodiscard]] bool empty() const { return sym_ == 0; }
  [[nodiscard]] Sym sym() const { return sym_; }
  [[nodiscard]] std::string_view view() const {
    return arena_ != nullptr ? arena_->lookup(sym_) : std::string_view{};
  }
  operator std::string_view() const { return view(); }
  [[nodiscard]] std::string str() const { return std::string{view()}; }

  friend bool operator==(const InternedString& a, const InternedString& b) {
    return a.view() == b.view();
  }
  friend bool operator==(const InternedString& a, std::string_view b) {
    return a.view() == b;
  }
  // Exact-match overload for string literals (mirrors ipc::Payload).
  friend bool operator==(const InternedString& a, const char* b) {
    return a.view() == std::string_view{b};
  }
  friend std::ostream& operator<<(std::ostream& os, const InternedString& s) {
    return os << s.view();
  }

 private:
  const StringArena* arena_{nullptr};
  Sym sym_{0};
};

}  // namespace air::util
