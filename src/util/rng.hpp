// Deterministic pseudo-random number generator for workload generation.
//
// xoshiro256** -- fast, reproducible across platforms, and independent of
// the (banned) std::random_device / wall clock. Used by benches and property
// tests to generate schedules and process sets.
#pragma once

#include <cstdint>

namespace air::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    if (lo >= hi) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p` of true.
  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace air::util
