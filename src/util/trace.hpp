// Structured event trace.
//
// Every observable action in the simulated module (partition dispatches,
// schedule switches, deadline misses, HM reports, port traffic, spatial
// violations) is recorded here. Tests and benches assert on the trace, which
// is how we reproduce the paper's behavioural claims ("the deadline
// violation is detected every time, except the first, that P1 is scheduled
// and dispatched").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace air::util {

enum class EventKind : std::uint8_t {
  kPartitionDispatch,   // a = heir partition, b = previous partition
  kPartitionPreempt,    // a = preempted partition
  kScheduleSwitchReq,   // a = requested schedule
  kScheduleSwitch,      // a = new schedule, b = old schedule
  kScheduleChangeAction,// a = partition, b = action
  kProcessDispatch,     // a = partition, b = process
  kProcessStateChange,  // a = partition, b = process, c = new state
  kDeadlineRegistered,  // a = partition, b = process, c = absolute deadline
  kDeadlineRemoved,     // a = partition, b = process
  kDeadlineMiss,        // a = partition, b = process, c = missed deadline time
  kHmError,             // a = partition, b = process, c = error code
  kHmAction,            // a = partition, b = action taken
  kPortSend,            // a = partition, b = port, c = bytes
  kPortReceive,         // a = partition, b = port, c = bytes
  kSpatialViolation,    // a = partition, b = exec level, c = address
  kClockParavirtTrap,   // a = partition (generic POS tried to disable clock)
  kPartitionModeChange, // a = partition, b = new mode
  kUser,                // free-form, used by example applications
};

[[nodiscard]] std::string_view to_string(EventKind kind);

struct TraceEvent {
  Ticks time{0};
  EventKind kind{};
  std::int64_t a{-1};
  std::int64_t b{-1};
  std::int64_t c{-1};
  std::string label;
};

/// Append-only event recorder. Recording can be disabled for benches that
/// measure hot-path cost without trace overhead.
class Trace {
 public:
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Ticks time, EventKind kind, std::int64_t a = -1,
              std::int64_t b = -1, std::int64_t c = -1,
              std::string label = {}) {
    if (!enabled_) return;
    events_.push_back({time, kind, a, b, c, std::move(label)});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  [[nodiscard]] std::vector<TraceEvent> filtered(EventKind kind) const;

  /// Events of `kind` satisfying `pred`.
  [[nodiscard]] std::vector<TraceEvent> filtered(
      EventKind kind,
      const std::function<bool(const TraceEvent&)>& pred) const;

  [[nodiscard]] std::size_t count(EventKind kind) const;

  void clear() { events_.clear(); }

  /// Human-readable dump (one event per line), for debugging and examples.
  [[nodiscard]] std::string to_text() const;

 private:
  bool enabled_{true};
  std::vector<TraceEvent> events_;
};

}  // namespace air::util
