// Structured event trace.
//
// Every observable action in the simulated module (partition dispatches,
// schedule switches, deadline misses, HM reports, port traffic, spatial
// violations) is recorded here. Tests and benches assert on the trace, which
// is how we reproduce the paper's behavioural claims ("the deadline
// violation is detected every time, except the first, that P1 is scheduled
// and dispatched").
//
// Two recording modes:
//  * unbounded (default): append-only vector, complete history -- what the
//    reproduction tests assert on;
//  * flight recorder: two fixed-capacity rings (util::RingBuffer) with an
//    exact dropped-event count. Events are routed by severity: critical
//    events (deadline misses, HM reports, mode/schedule changes, spatial
//    violations) retire into their own ring so a flood of debug-level
//    traffic cannot evict the evidence -- multi-million-tick missions run
//    in O(1) memory and still land with the story of what went wrong.
//
// Independent of the mode, TraceSink observers receive every event as it is
// recorded (streaming consumption: consoles, online monitors, tests),
// instead of scanning the vector post-hoc.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/arena.hpp"
#include "util/ring_buffer.hpp"
#include "util/types.hpp"

namespace air::util {

enum class EventKind : std::uint8_t {
  kPartitionDispatch,   // a = heir partition, b = previous partition
  kPartitionPreempt,    // a = preempted partition, b = heir partition
  kScheduleSwitchReq,   // a = requested schedule
  kScheduleSwitch,      // a = new schedule, b = old schedule
  kScheduleChangeAction,// a = partition, b = action
  kProcessDispatch,     // a = partition, b = process
  kProcessStateChange,  // a = partition, b = process, c = new state
  kDeadlineRegistered,  // a = partition, b = process, c = absolute deadline
  kDeadlineRemoved,     // a = partition, b = process
  kDeadlineMiss,        // a = partition, b = process, c = missed deadline time
  kHmError,             // a = partition, b = process, c = error code
  kHmAction,            // a = partition, b = action taken
  kPortSend,            // a = partition, b = port, c = bytes
  kPortReceive,         // a = partition, b = port, c = bytes
  kSpatialViolation,    // a = partition, b = exec level, c = address
  kClockParavirtTrap,   // a = partition (generic POS tried to disable clock)
  kPartitionModeChange, // a = partition, b = new mode
  kUser,                // free-form, used by example applications
  kSpan,                // a = span kind, b = span payload a, c = span id
  kHealth,              // a = partition (-1 wide), b = watchdog, c = value
};

[[nodiscard]] std::string_view to_string(EventKind kind);

/// Flight-recorder retention class of an event kind.
enum class Severity : std::uint8_t { kDebug = 0, kInfo = 1, kCritical = 2 };

[[nodiscard]] Severity severity(EventKind kind);

struct TraceEvent {
  Ticks time{0};
  EventKind kind{};
  std::int64_t a{-1};
  std::int64_t b{-1};
  std::int64_t c{-1};
  // Interned: flight labels repeat, so steady-state recording allocates
  // nothing after each distinct label's first occurrence (DESIGN.md §12).
  InternedString label;
};

/// Streaming observer: receives every recorded event, in recording order,
/// at the moment it is recorded. Implementations must not re-enter the
/// trace. Registration is borrowed (the caller keeps ownership).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Event recorder. Recording can be disabled for benches that measure
/// hot-path cost without trace overhead.
class Trace {
 public:
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Ticks time, EventKind kind, std::int64_t a = -1,
              std::int64_t b = -1, std::int64_t c = -1,
              std::string_view label = {}) {
    if (!enabled_) return;
    ++recorded_;
    const TraceEvent event{time, kind, a, b, c, intern(label)};
    if (recorder_ == nullptr && sinks_.empty()) {  // common fast path
      events_.push_back(event);
      return;
    }
    record_slow(event);
  }

  // --- label arena ---
  /// Use `arena` (borrowed, must outlive this trace and every retained
  /// event) for label storage instead of the lazily created private one.
  /// Call before the first labelled event is recorded: symbols minted in
  /// the old arena are not migrated.
  void set_arena(StringArena* arena) { arena_ = arena; }
  /// Arena backing the labels: the installed one, the lazily created
  /// private one, or nullptr when no label has been interned yet.
  [[nodiscard]] const StringArena* arena() const { return arena_; }
  /// Intern free text into the label arena (for callers that assemble a
  /// label once and reuse the symbol across events).
  InternedString intern(std::string_view text) {
    if (text.empty()) return {};
    if (arena_ == nullptr) {
      owned_arena_ = std::make_unique<StringArena>();
      arena_ = owned_arena_.get();
    }
    return {arena_, arena_->intern(text)};
  }

  // --- flight recorder ---
  /// Switch to bounded flight-recorder mode: at most `capacity` debug/info
  /// events plus `critical_capacity` critical events are retained (newest
  /// win); older ones are evicted and counted in dropped_events(). Existing
  /// events are re-routed into the rings. Call with the module idle.
  void set_flight_recorder(std::size_t capacity,
                           std::size_t critical_capacity = 256);
  [[nodiscard]] bool flight_recorder() const { return recorder_ != nullptr; }

  /// Exact count of events evicted from the rings (0 in unbounded mode).
  [[nodiscard]] std::uint64_t dropped_events() const;
  /// Subset of dropped_events() that was critical-severity.
  [[nodiscard]] std::uint64_t dropped_critical_events() const;
  /// Events ever recorded (retained + dropped), monotonic.
  [[nodiscard]] std::uint64_t recorded_events() const { return recorded_; }

  // --- streaming sinks ---
  void add_sink(TraceSink* sink);
  void remove_sink(TraceSink* sink);

  /// Retained events in recording order. In flight-recorder mode this is a
  /// materialised merge of the two rings (rebuilt lazily after recording);
  /// in unbounded mode it is the backing vector itself.
  [[nodiscard]] const std::vector<TraceEvent>& events() const;

  [[nodiscard]] std::vector<TraceEvent> filtered(EventKind kind) const;

  /// Events of `kind` satisfying `pred`.
  [[nodiscard]] std::vector<TraceEvent> filtered(
      EventKind kind,
      const std::function<bool(const TraceEvent&)>& pred) const;

  [[nodiscard]] std::size_t count(EventKind kind) const;

  void clear();

  /// Human-readable dump (one event per line), for debugging and examples.
  [[nodiscard]] std::string to_text() const;

 private:
  struct Stored {
    TraceEvent event;
    std::uint64_t seq{0};  // recording order, for the merged view
  };
  struct Recorder {
    Recorder(std::size_t capacity, std::size_t critical_capacity)
        : ring(capacity), critical(critical_capacity) {}
    RingBuffer<Stored> ring;      // severity < kCritical
    RingBuffer<Stored> critical;  // severity == kCritical
    std::uint64_t dropped{0};
    std::uint64_t dropped_critical{0};
    std::uint64_t seq{0};
  };

  void record_slow(const TraceEvent& event);
  void rebuild_view() const;

  bool enabled_{true};
  std::uint64_t recorded_{0};
  StringArena* arena_{nullptr};
  std::unique_ptr<StringArena> owned_arena_;
  // Unbounded-mode storage; in flight-recorder mode, the lazily rebuilt
  // merged view (mutable so the const events() accessor can refresh it).
  mutable std::vector<TraceEvent> events_;
  mutable bool view_dirty_{false};  // flight-recorder mode: events_ stale
  std::unique_ptr<Recorder> recorder_;
  std::vector<TraceSink*> sinks_;
};

}  // namespace air::util
