// Bounded FIFO ring buffer (queuing ports, buffers, bus slots).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace air::util {

/// FIFO of `T` with capacity fixed at construction. Overwrites are explicit:
/// push on a full ring fails instead of silently dropping, because ARINC 653
/// queuing-port semantics require the sender to observe overflow.
template <class T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    AIR_ASSERT(capacity > 0);
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ == slots_.size(); }

  /// Append `value`; returns false (and leaves the ring untouched) when full.
  [[nodiscard]] bool push(T value) {
    if (full()) return false;
    slots_[(head_ + count_) % slots_.size()] = std::move(value);
    ++count_;
    return true;
  }

  /// Append `value`, evicting the oldest element when full (flight-recorder
  /// semantics -- keep the newest history). Returns true when an element was
  /// evicted, so callers can keep an exact dropped count.
  bool push_overwrite(T value) {
    if (!full()) {
      (void)push(std::move(value));
      return false;
    }
    slots_[head_] = std::move(value);
    head_ = (head_ + 1) % slots_.size();
    return true;
  }

  /// Element `i` in FIFO order (0 = oldest). Valid for i < size().
  [[nodiscard]] const T& at(std::size_t i) const {
    AIR_ASSERT(i < count_);
    return slots_[(head_ + i) % slots_.size()];
  }

  /// Pop the oldest element into `out`; returns false when empty.
  [[nodiscard]] bool pop(T& out) {
    if (empty()) return false;
    out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    return true;
  }

  [[nodiscard]] const T& peek() const {
    AIR_ASSERT(!empty());
    return slots_[head_];
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_{0};
  std::size_t count_{0};
};

}  // namespace air::util
