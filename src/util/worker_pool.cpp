#include "util/worker_pool.hpp"

namespace air::util {

WorkerPool::WorkerPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    count_ = count;
    cursor_.store(0, std::memory_order_relaxed);
    unfinished_ = threads_.size();
    ++batch_;
  }
  wake_.notify_all();
  // The caller is a worker too: it claims items alongside the pool, so a
  // count <= threads batch never leaves the caller idle-waiting on one
  // straggler it could have run itself.
  for (std::size_t i = cursor_.fetch_add(1); i < count;
       i = cursor_.fetch_add(1)) {
    task(i);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return unfinished_ == 0; });
  task_ = nullptr;
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return shutdown_ || batch_ != seen; });
      if (shutdown_) return;
      seen = batch_;
      task = task_;
      count = count_;
    }
    for (std::size_t i = cursor_.fetch_add(1); i < count;
         i = cursor_.fetch_add(1)) {
      (*task)(i);
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = --unfinished_ == 0;
    }
    if (last) done_.notify_one();
  }
}

}  // namespace air::util
