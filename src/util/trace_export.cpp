#include "util/trace_export.hpp"

#include <map>

#include "util/json.hpp"

// GCC 12's -Wmaybe-uninitialized fires false positives inside the inlined
// std::variant move machinery of json::Value when Objects are moved into
// vector::push_back at -O2 (GCC PR 105562 family). The code is well-formed;
// silence the noise for this translation unit only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace air::util {

namespace {

json::Value instant(const char* name, double ts, std::int64_t track,
                    std::string args_label) {
  json::Object event;
  event["name"] = json::Value{std::string{name}};
  event["ph"] = json::Value{"i"};
  event["ts"] = json::Value{ts};
  event["pid"] = json::Value{std::int64_t{0}};
  event["tid"] = json::Value{track};
  event["s"] = json::Value{"t"};
  if (!args_label.empty()) {
    json::Object args;
    args["detail"] = json::Value{std::move(args_label)};
    event["args"] = json::Value{std::move(args)};
  }
  return json::Value{std::move(event)};
}

/// Counter event ("ph":"C"): Perfetto renders one stacked-area track per
/// `name`, sampling `args` at each ts.
json::Value counter(std::string name, double ts, const char* series,
                    double value) {
  json::Object event;
  event["name"] = json::Value{std::move(name)};
  event["ph"] = json::Value{"C"};
  event["ts"] = json::Value{ts};
  event["pid"] = json::Value{std::int64_t{0}};
  json::Object args;
  args[series] = json::Value{value};
  event["args"] = json::Value{std::move(args)};
  return json::Value{std::move(event)};
}

}  // namespace

std::string to_chrome_trace(const Trace& trace, double tick_us) {
  json::Array events;

  // Partition occupancy: open a duration on dispatch, close it when another
  // partition (or idle) takes over. Cumulative busy time per partition
  // feeds the utilization counter tracks.
  std::int64_t active = -1;
  double active_since = 0;
  std::map<std::int64_t, double> busy_us;
  auto close_active = [&](double ts) {
    if (active < 0) return;
    json::Object begin;
    begin["name"] =
        json::Value{"P" + std::to_string(active + 1) + " window"};
    begin["ph"] = json::Value{"X"};
    begin["ts"] = json::Value{active_since};
    begin["dur"] = json::Value{ts - active_since};
    begin["pid"] = json::Value{std::int64_t{0}};
    begin["tid"] = json::Value{active};
    events.push_back(json::Value{std::move(begin)});
    busy_us[active] += ts - active_since;
    if (ts > 0) {
      events.push_back(
          counter("P" + std::to_string(active + 1) + " utilization", ts,
                  "percent", 100.0 * busy_us[active] / ts));
    }
  };

  double last_ts = 0;
  std::int64_t miss_count = 0;
  for (const TraceEvent& e : trace.events()) {
    const double ts = static_cast<double>(e.time) * tick_us;
    last_ts = ts;
    switch (e.kind) {
      case EventKind::kPartitionDispatch:
        close_active(ts);
        active = e.a;
        active_since = ts;
        break;
      case EventKind::kDeadlineMiss:
        events.push_back(instant("deadline miss", ts, e.a,
                                 "process " + std::to_string(e.b) +
                                     " missed t=" + std::to_string(e.c)));
        events.push_back(counter("deadline misses", ts, "count",
                                 static_cast<double>(++miss_count)));
        break;
      case EventKind::kScheduleSwitch:
        events.push_back(instant(
            "schedule switch", ts, -1,
            "chi_" + std::to_string(e.b + 1) + " -> chi_" +
                std::to_string(e.a + 1)));
        break;
      case EventKind::kHmError:
        events.push_back(instant("HM report", ts, e.a, e.label.str()));
        break;
      case EventKind::kSpatialViolation:
        events.push_back(instant("spatial violation", ts, e.a,
                                 "vaddr " + std::to_string(e.c)));
        break;
      default:
        break;
    }
  }
  close_active(last_ts + tick_us);

  json::Object root;
  root["traceEvents"] = json::Value{std::move(events)};
  root["displayTimeUnit"] = json::Value{"ms"};
  return json::Value{std::move(root)}.dump(2);
}

std::string to_json(const Trace& trace) {
  json::Array events;
  for (const TraceEvent& e : trace.events()) {
    json::Object event;
    event["t"] = json::Value{e.time};
    event["kind"] = json::Value{std::string{to_string(e.kind)}};
    event["a"] = json::Value{e.a};
    event["b"] = json::Value{e.b};
    event["c"] = json::Value{e.c};
    if (!e.label.empty()) event["label"] = json::Value{e.label.str()};
    events.push_back(json::Value{std::move(event)});
  }
  return json::Value{events}.dump(2);
}

}  // namespace air::util
