// Fixed-capacity vector: contiguous storage, no heap after construction.
//
// Hot kernel paths (scheduling tables, ready queues, port tables) are sized
// at integration time, as in real ARINC 653 systems where dynamic memory
// allocation is forbidden after initialisation.
#pragma once

#include <array>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace air::util {

template <class T, std::size_t Capacity>
class FixedVector {
 public:
  FixedVector() = default;

  FixedVector(const FixedVector& other) { *this = other; }
  FixedVector& operator=(const FixedVector& other) {
    if (this == &other) return *this;
    clear();
    for (const T& v : other) push_back(v);
    return *this;
  }

  FixedVector(FixedVector&& other) noexcept { *this = std::move(other); }
  FixedVector& operator=(FixedVector&& other) noexcept {
    if (this == &other) return *this;
    clear();
    for (T& v : other) push_back(std::move(v));
    other.clear();
    return *this;
  }

  ~FixedVector() { clear(); }

  [[nodiscard]] static constexpr std::size_t capacity() { return Capacity; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == Capacity; }

  T& push_back(const T& value) { return emplace_back(value); }
  T& push_back(T&& value) { return emplace_back(std::move(value)); }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    AIR_ASSERT_MSG(!full(), "FixedVector capacity exceeded");
    T* slot = new (address(size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    AIR_ASSERT(!empty());
    --size_;
    address(size_)->~T();
  }

  void clear() {
    while (!empty()) pop_back();
  }

  T& operator[](std::size_t i) {
    AIR_ASSERT(i < size_);
    return *address(i);
  }
  const T& operator[](std::size_t i) const {
    AIR_ASSERT(i < size_);
    return *address(i);
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }

  T* begin() { return address(0); }
  T* end() { return address(size_); }
  const T* begin() const { return address(0); }
  const T* end() const { return address(size_); }

 private:
  T* address(std::size_t i) {
    return std::launder(reinterpret_cast<T*>(storage_.data() + i * sizeof(T)));
  }
  const T* address(std::size_t i) const {
    return std::launder(
        reinterpret_cast<const T*>(storage_.data() + i * sizeof(T)));
  }

  alignas(T) std::array<std::byte, Capacity * sizeof(T)> storage_;
  std::size_t size_{0};
};

}  // namespace air::util
