// Always-on assertion macro for internal invariants.
//
// Avionics-grade code does not continue past a broken invariant; AIR_ASSERT
// aborts with a located message in every build type (unlike <cassert>).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace air::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "AIR_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " -- " : "", msg);
  std::abort();
}

}  // namespace air::detail

#define AIR_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::air::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define AIR_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::air::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (false)
