// Intrusive doubly-linked list.
//
// Used by the PAL deadline registry (Sect. 5.3 of the paper keeps process
// deadlines in a linked list so that earliest-deadline retrieval and
// pointer-based removal are O(1)) and by POS ready queues. Being intrusive,
// insertion/removal never allocates -- a hard requirement for code that runs
// inside the (simulated) clock-tick ISR.
#pragma once

#include <cstddef>
#include <iterator>

#include "util/assert.hpp"

namespace air::util {

/// Hook to embed in every listed object. An object may live in at most one
/// list per hook. Hooks unlink themselves on destruction.
class ListHook {
 public:
  ListHook() = default;
  ~ListHook() { unlink(); }

  ListHook(const ListHook&) = delete;
  ListHook& operator=(const ListHook&) = delete;

  [[nodiscard]] bool linked() const { return next_ != nullptr; }

  /// Remove this hook from whatever list holds it. No-op when unlinked.
  void unlink() {
    if (!linked()) return;
    prev_->next_ = next_;
    next_->prev_ = prev_;
    next_ = nullptr;
    prev_ = nullptr;
  }

 private:
  template <class T, ListHook T::*>
  friend class IntrusiveList;

  ListHook* next_{nullptr};
  ListHook* prev_{nullptr};
};

/// Doubly-linked list of T, threaded through `Hook` (a ListHook member).
///
///   struct Node { int key; util::ListHook hook; };
///   util::IntrusiveList<Node, &Node::hook> list;
template <class T, ListHook T::*Hook>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.next_ = &sentinel_;
    sentinel_.prev_ = &sentinel_;
  }

  ~IntrusiveList() { clear(); }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  [[nodiscard]] bool empty() const { return sentinel_.next_ == &sentinel_; }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const ListHook* h = sentinel_.next_; h != &sentinel_; h = h->next_) ++n;
    return n;
  }

  void push_front(T& item) { insert_hook_before(sentinel_.next_, hook_of(item)); }
  void push_back(T& item) { insert_hook_before(&sentinel_, hook_of(item)); }

  [[nodiscard]] T& front() {
    AIR_ASSERT(!empty());
    return *object_of(sentinel_.next_);
  }
  [[nodiscard]] const T& front() const {
    AIR_ASSERT(!empty());
    return *object_of(sentinel_.next_);
  }
  [[nodiscard]] T& back() {
    AIR_ASSERT(!empty());
    return *object_of(sentinel_.prev_);
  }

  void pop_front() {
    AIR_ASSERT(!empty());
    sentinel_.next_->unlink();
  }

  /// Insert `item` immediately before `pos` (end() inserts at the back).
  void insert_before(T* pos, T& item) {
    ListHook* at = pos != nullptr ? &(pos->*Hook) : &sentinel_;
    insert_hook_before(at, hook_of(item));
  }

  static void remove(T& item) { (item.*Hook).unlink(); }

  void clear() {
    while (!empty()) pop_front();
  }

  class iterator {
   public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;

    iterator() = default;
    explicit iterator(ListHook* hook) : hook_(hook) {}

    reference operator*() const { return *object_of(hook_); }
    pointer operator->() const { return object_of(hook_); }

    iterator& operator++() {
      hook_ = hook_->next_;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++*this;
      return old;
    }
    iterator& operator--() {
      hook_ = hook_->prev_;
      return *this;
    }

    friend bool operator==(iterator, iterator) = default;

   private:
    ListHook* hook_{nullptr};
  };

  iterator begin() { return iterator{sentinel_.next_}; }
  iterator end() { return iterator{&sentinel_}; }

 private:
  static ListHook& hook_of(T& item) { return item.*Hook; }

  static T* object_of(ListHook* hook) {
    // Recover the owning object from its embedded hook.
    auto offset = reinterpret_cast<std::ptrdiff_t>(
        &(static_cast<T*>(nullptr)->*Hook));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(hook) - offset);
  }
  static const T* object_of(const ListHook* hook) {
    auto offset = reinterpret_cast<std::ptrdiff_t>(
        &(static_cast<T*>(nullptr)->*Hook));
    return reinterpret_cast<const T*>(reinterpret_cast<const char*>(hook) -
                                      offset);
  }

  static void insert_hook_before(ListHook* pos, ListHook& hook) {
    AIR_ASSERT_MSG(!hook.linked(), "hook already in a list");
    hook.prev_ = pos->prev_;
    hook.next_ = pos;
    pos->prev_->next_ = &hook;
    pos->prev_ = &hook;
  }

  ListHook sentinel_;
};

}  // namespace air::util
