#include "util/arena.hpp"

#include <algorithm>
#include <cstring>

namespace air::util {

Sym StringArena::intern(std::string_view text) {
  if (text.empty()) return 0;
  if (auto it = index_.find(text); it != index_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;

  // Find room in the newest block, else open one sized for the string.
  if (blocks_.empty() ||
      blocks_.back().capacity - blocks_.back().used < text.size()) {
    Block block;
    block.capacity = std::max(kBlockBytes, text.size());
    block.bytes = std::make_unique<char[]>(block.capacity);
    blocks_.push_back(std::move(block));
    stats_.blocks = blocks_.size();
    stats_.bytes_reserved += blocks_.back().capacity;
  }
  Block& block = blocks_.back();
  char* dest = block.bytes.get() + block.used;
  std::memcpy(dest, text.data(), text.size());
  block.used += text.size();
  stats_.bytes_used += text.size();
  stats_.high_water = std::max(stats_.high_water, stats_.bytes_used);

  const std::string_view stored{dest, text.size()};
  symbols_.push_back(stored);
  const Sym sym = static_cast<Sym>(symbols_.size());
  index_.emplace(stored, sym);
  stats_.symbols = symbols_.size();
  return sym;
}

void StringArena::trim() {
  blocks_.clear();
  symbols_.clear();
  index_.clear();
  stats_.symbols = 0;
  stats_.blocks = 0;
  stats_.bytes_used = 0;
  stats_.bytes_reserved = 0;
  ++stats_.trims;
}

}  // namespace air::util
