// Integration-file writer: system::ModuleConfig -> JSON.
//
// Inverse of the loader. Round-tripping a configuration through
// to_json/load_module_config yields an equivalent module, which is what
// lets tools generate or transform integration files (e.g. emitting a
// config whose schedules came from the PST generator).
#pragma once

#include <string>

#include "system/module_config.hpp"

namespace air::config {

/// Serialise `config` to the loader's JSON schema (pretty-printed).
/// Workload scripts, HM tables, channels, schedules, change actions and
/// the multicore core list are all preserved.
[[nodiscard]] std::string to_json(const system::ModuleConfig& config);

}  // namespace air::config
