// Candidate-stream codec: JSON lines <-> model::Candidate.
//
// The batch schedulability service (src/model/batch.hpp) ingests candidate
// configurations from integrator tooling as NDJSON -- one candidate per
// line, so streams of thousands of configurations can be piped, split and
// diffed with line tools, mirroring the verdict stream coming back out.
//
// Schema (all times in ticks; -1 encodes "infinite"):
//   { "id": 7, "name": "cand-7", "mtf": 0,
//     "requirements": [ { "partition": 0, "period": 80, "duration": 20 } ],
//     "windows":      [ { "partition": 0, "offset": 0, "duration": 20 } ],
//     "partitions":   [ { "id": 0, "name": "P0", "processes": [
//         { "name": "q0", "period": 80, "deadline": 80, "priority": 10,
//           "wcet": 5, "periodic": true } ] } ] }
// "windows" is optional (absent/empty = generate the PST from the
// requirements, eq. (23) by construction); "mtf" 0 selects the lcm of the
// requirement periods. Blank lines and // comment lines are skipped.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/batch.hpp"

namespace air::config {

struct CandidateParse {
  std::optional<model::Candidate> candidate;
  std::string error;

  [[nodiscard]] bool ok() const { return candidate.has_value(); }
};

/// Parse one NDJSON line into a candidate.
[[nodiscard]] CandidateParse parse_candidate(std::string_view line);

/// Parse a whole candidate stream. Malformed lines become errors ("line N:
/// ..."); well-formed lines still load, so one bad candidate does not sink
/// a batch.
struct CandidateStream {
  std::vector<model::Candidate> candidates;
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

[[nodiscard]] CandidateStream parse_candidates(std::string_view text);

/// Serialise a candidate back to one deterministic NDJSON line (the
/// divergence-reproducer format of air-schedule --differential).
[[nodiscard]] std::string candidate_to_jsonl(const model::Candidate& candidate);

}  // namespace air::config
