// The paper's prototype system (Sect. 6, Fig. 8).
//
// Four partitions running mockup satellite functions, two partition
// scheduling tables chi_1 and chi_2 over an MTF of 1300 time units, exactly
// as printed in Fig. 8:
//
//   Q1 = Q2 = { <P1,1300,200>, <P2,650,100>, <P3,650,100>, <P4,1300,100> }
//   chi_1: (P1,0,200) (P2,200,100) (P3,300,100) (P4,400,600)
//          (P2,1000,100) (P3,1100,100) (P4,1200,100)
//   chi_2: (P1,0,200) (P4,200,100) (P3,300,100) (P2,400,600)
//          (P4,1000,100) (P3,1100,100) (P2,1200,100)
//
// Partition contents (mockups of typical satellite functions):
//   P1 AOCS    (system partition; may request schedule switches; the
//               injectable faulty process of Sect. 6 lives here, dormant
//               until started)
//   P2 TTC     (telemetry: consumes AOCS attitude + payload science data)
//   P3 FDIR    (monitor + logger pair synchronised by a semaphore)
//   P4 PAYLOAD (science: produces queuing data, reads attitude)
//
// Channels: sampling P1.ATT_OUT -> {P2.ATT_IN, P4.ATT_IN};
//           queuing  P4.SCI_OUT -> P2.SCI_IN.
#pragma once

#include "model/model.hpp"
#include "system/module_config.hpp"

namespace air::scenarios {

struct Fig8Options {
  /// Create the faulty process on P1 (dormant; inject by starting it, as
  /// the paper's prototype does through VITRAL keyboard interaction).
  bool with_faulty_process{true};
  /// Record trace events (turn off in hot benches).
  bool trace_enabled{true};
  /// Deadline registry implementation for every partition.
  pal::RegistryKind deadline_registry{pal::RegistryKind::kLinkedList};
};

/// Major time frame shared by both PSTs.
inline constexpr Ticks kFig8Mtf = 1300;

/// chi_1 and chi_2 exactly as in Fig. 8.
[[nodiscard]] model::Schedule fig8_chi1();
[[nodiscard]] model::Schedule fig8_chi2();

/// The complete module configuration of the prototype.
[[nodiscard]] system::ModuleConfig fig8_config(const Fig8Options& options = {});

/// Name of the injectable faulty process on P1.
inline constexpr const char* kFaultyProcessName = "p1_faulty";

}  // namespace air::scenarios
