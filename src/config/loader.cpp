#include "config/loader.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace air::config {

namespace {

using util::json::Value;

/// Thrown internally; converted to LoadResult::error at the boundary.
struct LoadError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void fail(const std::string& message) { throw LoadError(message); }

Ticks time_field(const Value& obj, std::string_view key, Ticks fallback) {
  const Ticks v = obj.get_int(key, fallback);
  return v < 0 ? kInfiniteTime : v;
}

PartitionId resolve_partition(const system::ModuleConfig& config,
                              const std::string& name) {
  for (std::size_t i = 0; i < config.partitions.size(); ++i) {
    if (config.partitions[i].name == name) {
      return PartitionId{static_cast<std::int32_t>(i)};
    }
  }
  fail("unknown partition name: " + name);
}

std::string required_string(const Value& obj, std::string_view key,
                            const std::string& context) {
  const Value* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    fail("missing string field \"" + std::string{key} + "\" in " + context);
  }
  return v->as_string();
}

// ---------- workload scripts ----------

pos::Op parse_op(const Value& op) {
  const std::string kind = required_string(op, "op", "script op");
  const auto timeout = [&] { return time_field(op, "timeout", -1); };
  const auto message = [&] { return op.get_string("message", ""); };
  const auto i32 = [&](std::string_view key) {
    return static_cast<std::int32_t>(op.get_int(key, 0));
  };

  if (kind == "compute") return pos::OpCompute{op.get_int("ticks", 1)};
  if (kind == "periodic_wait") return pos::OpPeriodicWait{};
  if (kind == "sporadic_wait") return pos::OpSporadicWait{};
  if (kind == "release_process") {
    return pos::OpReleaseProcess{
        required_string(op, "process", "release_process")};
  }
  if (kind == "timed_wait") return pos::OpTimedWait{op.get_int("delay", 1)};
  if (kind == "suspend_self") return pos::OpSuspendSelf{timeout()};
  if (kind == "stop_self") return pos::OpStopSelf{};
  if (kind == "replenish") return pos::OpReplenish{op.get_int("budget", 0)};
  if (kind == "lock_preemption") return pos::OpLockPreemption{};
  if (kind == "unlock_preemption") return pos::OpUnlockPreemption{};
  if (kind == "sem_wait") return pos::OpSemWait{i32("semaphore"), timeout()};
  if (kind == "sem_signal") return pos::OpSemSignal{i32("semaphore")};
  if (kind == "event_set") return pos::OpEventSet{i32("event")};
  if (kind == "event_reset") return pos::OpEventReset{i32("event")};
  if (kind == "event_wait") return pos::OpEventWait{i32("event"), timeout()};
  if (kind == "buffer_send") {
    return pos::OpBufferSend{i32("buffer"), message(), timeout()};
  }
  if (kind == "buffer_receive") {
    return pos::OpBufferReceive{i32("buffer"), timeout()};
  }
  if (kind == "blackboard_display") {
    return pos::OpBlackboardDisplay{i32("blackboard"), message()};
  }
  if (kind == "blackboard_read") {
    return pos::OpBlackboardRead{i32("blackboard"), timeout()};
  }
  if (kind == "sampling_write") {
    return pos::OpSamplingWrite{i32("port"), message()};
  }
  if (kind == "sampling_read") return pos::OpSamplingRead{i32("port")};
  if (kind == "queuing_send") {
    return pos::OpQueuingSend{i32("port"), message(), timeout()};
  }
  if (kind == "queuing_receive") {
    return pos::OpQueuingReceive{i32("port"), timeout()};
  }
  if (kind == "set_module_schedule") {
    return pos::OpSetModuleSchedule{i32("schedule")};
  }
  if (kind == "raise_error") {
    return pos::OpRaiseError{i32("code"), message()};
  }
  if (kind == "try_disable_clock_irq") return pos::OpTryDisableClockIrq{};
  if (kind == "memory_access") {
    return pos::OpMemoryAccess{
        static_cast<std::uint32_t>(op.get_int("vaddr", 0)),
        op.get_bool("write", false)};
  }
  if (kind == "stop_process") {
    return pos::OpStopProcess{required_string(op, "process", "stop_process")};
  }
  if (kind == "start_process") {
    return pos::OpStartProcess{
        required_string(op, "process", "start_process")};
  }
  if (kind == "log") return pos::OpLog{op.get_string("text", "")};
  if (kind == "goto") {
    return pos::OpGoto{static_cast<std::size_t>(op.get_int("target", 0))};
  }
  fail("unknown script op: " + kind);
}

pos::Script parse_script(const Value* value) {
  pos::Script script;
  if (value == nullptr) return script;
  if (!value->is_array()) fail("script must be an array of ops");
  for (const Value& op : value->as_array()) script.push_back(parse_op(op));
  return script;
}

// ---------- HM tables ----------

hm::ErrorCode parse_error_code(const std::string& s) {
  if (s == "deadline_missed") return hm::ErrorCode::kDeadlineMissed;
  if (s == "application_error") return hm::ErrorCode::kApplicationError;
  if (s == "numeric_error") return hm::ErrorCode::kNumericError;
  if (s == "illegal_request") return hm::ErrorCode::kIllegalRequest;
  if (s == "stack_overflow") return hm::ErrorCode::kStackOverflow;
  if (s == "memory_violation") return hm::ErrorCode::kMemoryViolation;
  if (s == "hardware_fault") return hm::ErrorCode::kHardwareFault;
  if (s == "power_fail") return hm::ErrorCode::kPowerFail;
  if (s == "config_error") return hm::ErrorCode::kConfigError;
  fail("unknown error code: " + s);
}

hm::ErrorLevel parse_error_level(const std::string& s) {
  if (s == "process") return hm::ErrorLevel::kProcess;
  if (s == "partition") return hm::ErrorLevel::kPartition;
  if (s == "module") return hm::ErrorLevel::kModule;
  fail("unknown error level: " + s);
}

hm::RecoveryAction parse_action(const std::string& s) {
  if (s == "ignore") return hm::RecoveryAction::kIgnore;
  if (s == "stop_process") return hm::RecoveryAction::kStopProcess;
  if (s == "restart_process") return hm::RecoveryAction::kRestartProcess;
  if (s == "stop_partition") return hm::RecoveryAction::kStopPartition;
  if (s == "warm_restart_partition") {
    return hm::RecoveryAction::kWarmRestartPartition;
  }
  if (s == "cold_restart_partition") {
    return hm::RecoveryAction::kColdRestartPartition;
  }
  if (s == "stop_module") return hm::RecoveryAction::kStopModule;
  if (s == "reset_module") return hm::RecoveryAction::kResetModule;
  fail("unknown recovery action: " + s);
}

hm::HmTable parse_hm_table(const Value* value) {
  hm::HmTable table;
  if (value == nullptr) return table;
  if (!value->is_array()) fail("hm table must be an array");
  for (const Value& entry : value->as_array()) {
    table.set(parse_error_code(required_string(entry, "error", "hm entry")),
              parse_error_level(required_string(entry, "level", "hm entry")),
              parse_action(required_string(entry, "action", "hm entry")),
              static_cast<std::uint32_t>(entry.get_int("threshold", 1)));
  }
  return table;
}

// ---------- partitions ----------

ipc::PortDirection parse_direction(const std::string& s) {
  if (s == "source") return ipc::PortDirection::kSource;
  if (s == "destination") return ipc::PortDirection::kDestination;
  fail("unknown port direction: " + s);
}

ipc::QueuingDiscipline parse_discipline(const Value& obj) {
  const std::string s = obj.get_string("discipline", "fifo");
  if (s == "fifo") return ipc::QueuingDiscipline::kFifo;
  if (s == "priority") return ipc::QueuingDiscipline::kPriority;
  fail("unknown queuing discipline: " + s);
}

system::PartitionConfig parse_partition(const Value& p) {
  system::PartitionConfig out;
  out.name = required_string(p, "name", "partition");
  out.system_partition = p.get_bool("system", false);
  out.pos_kind = p.get_string("pos", "rt");
  const std::string registry = p.get_string("registry", "list");
  if (registry == "tree") {
    out.deadline_registry = pal::RegistryKind::kTree;
  } else if (registry != "list") {
    fail("unknown deadline registry: " + registry);
  }

  if (const Value* processes = p.find("processes")) {
    for (const Value& proc : processes->as_array()) {
      system::ProcessConfig pc;
      pc.attrs.name = required_string(proc, "name", "process");
      pc.attrs.period = time_field(proc, "period", -1);
      pc.attrs.time_capacity = time_field(proc, "time_capacity", -1);
      pc.attrs.priority =
          static_cast<Priority>(proc.get_int("priority", 100));
      pc.attrs.stack_bytes =
          static_cast<std::size_t>(proc.get_int("stack_bytes", 4096));
      pc.attrs.sporadic = proc.get_bool("sporadic", false);
      pc.attrs.script = parse_script(proc.find("script"));
      pc.auto_start = proc.get_bool("auto_start", true);
      out.processes.push_back(std::move(pc));
    }
  }
  if (const Value* ports = p.find("sampling_ports")) {
    for (const Value& port : ports->as_array()) {
      out.sampling_ports.push_back(
          {required_string(port, "name", "sampling port"),
           parse_direction(required_string(port, "direction", "sampling port")),
           static_cast<std::size_t>(port.get_int("max_bytes", 64)),
           time_field(port, "refresh", -1)});
    }
  }
  if (const Value* ports = p.find("queuing_ports")) {
    for (const Value& port : ports->as_array()) {
      out.queuing_ports.push_back(
          {required_string(port, "name", "queuing port"),
           parse_direction(required_string(port, "direction", "queuing port")),
           static_cast<std::size_t>(port.get_int("max_bytes", 64)),
           static_cast<std::size_t>(port.get_int("capacity", 8)),
           parse_discipline(port)});
    }
  }
  if (const Value* buffers = p.find("buffers")) {
    for (const Value& b : buffers->as_array()) {
      out.buffers.push_back(
          {required_string(b, "name", "buffer"),
           static_cast<std::size_t>(b.get_int("max_bytes", 64)),
           static_cast<std::size_t>(b.get_int("capacity", 8)),
           parse_discipline(b)});
    }
  }
  if (const Value* blackboards = p.find("blackboards")) {
    for (const Value& b : blackboards->as_array()) {
      out.blackboards.push_back(
          {required_string(b, "name", "blackboard"),
           static_cast<std::size_t>(b.get_int("max_bytes", 64))});
    }
  }
  if (const Value* semaphores = p.find("semaphores")) {
    for (const Value& s : semaphores->as_array()) {
      out.semaphores.push_back(
          {required_string(s, "name", "semaphore"),
           static_cast<std::int32_t>(s.get_int("initial", 1)),
           static_cast<std::int32_t>(s.get_int("maximum", 1)),
           parse_discipline(s)});
    }
  }
  if (const Value* events = p.find("events")) {
    for (const Value& e : events->as_array()) {
      out.events.push_back({required_string(e, "name", "event")});
    }
  }
  out.error_handler = parse_script(p.find("error_handler"));
  out.hm_table = parse_hm_table(p.find("hm_table"));
  return out;
}

pmk::ScheduleChangeAction parse_change_action(const std::string& s) {
  if (s == "none") return pmk::ScheduleChangeAction::kNone;
  if (s == "warm_restart") return pmk::ScheduleChangeAction::kWarmRestart;
  if (s == "cold_restart") return pmk::ScheduleChangeAction::kColdRestart;
  fail("unknown schedule change action: " + s);
}

}  // namespace

LoadResult load_module_config(std::string_view json_text) {
  const util::json::ParseResult parsed = util::json::parse(json_text);
  if (!parsed.ok()) return {std::nullopt, parsed.error->to_string()};

  try {
    const Value& root = *parsed.value;
    if (!root.is_object()) fail("top-level value must be an object");

    system::ModuleConfig config;
    config.name = root.get_string("name", "module");
    config.id = ModuleId{static_cast<std::int32_t>(root.get_int("id", 0))};
    config.memory_bytes =
        static_cast<std::size_t>(root.get_int("memory_bytes", 16 << 20));
    config.validate = root.get_bool("validate", true);
    config.trace_enabled = root.get_bool("trace_enabled", true);

    if (const Value* telemetry = root.find("telemetry")) {
      if (!telemetry->is_object()) fail("\"telemetry\" must be an object");
      config.telemetry.metrics_enabled =
          telemetry->get_bool("metrics", true);
      config.telemetry.profiler_enabled =
          telemetry->get_bool("profiler", false);
      config.telemetry.profiler_stride =
          static_cast<std::uint32_t>(telemetry->get_int(
              "profiler_stride",
              telemetry::HostProfiler::kDefaultStride));
      config.telemetry.flight_recorder_capacity = static_cast<std::size_t>(
          telemetry->get_int("flight_recorder_capacity", 0));
      config.telemetry.flight_recorder_critical_capacity =
          static_cast<std::size_t>(
              telemetry->get_int("flight_recorder_critical_capacity", 256));
    }

    const Value* partitions = root.find("partitions");
    if (partitions == nullptr || !partitions->is_array()) {
      fail("\"partitions\" array is required");
    }
    for (const Value& p : partitions->as_array()) {
      config.partitions.push_back(parse_partition(p));
    }

    const Value* schedules = root.find("schedules");
    if (schedules == nullptr || !schedules->is_array()) {
      fail("\"schedules\" array is required");
    }
    for (const Value& s : schedules->as_array()) {
      model::Schedule schedule;
      schedule.id =
          ScheduleId{static_cast<std::int32_t>(s.get_int("id", 0))};
      schedule.name = s.get_string("name", "schedule");
      schedule.mtf = s.get_int("mtf", 0);
      if (const Value* reqs = s.find("requirements")) {
        for (const Value& r : reqs->as_array()) {
          schedule.requirements.push_back(
              {resolve_partition(config,
                                 required_string(r, "partition", "requirement")),
               r.get_int("period", 0), r.get_int("duration", 0)});
        }
      }
      if (const Value* windows = s.find("windows")) {
        for (const Value& w : windows->as_array()) {
          schedule.windows.push_back(
              {resolve_partition(config,
                                 required_string(w, "partition", "window")),
               w.get_int("offset", 0), w.get_int("duration", 0)});
        }
      }
      if (const Value* actions = s.find("change_actions")) {
        for (const Value& a : actions->as_array()) {
          config.change_actions[{schedule.id,
                                 resolve_partition(
                                     config, required_string(a, "partition",
                                                             "change action"))}] =
              parse_change_action(required_string(a, "action", "change action"));
        }
      }
      config.schedules.push_back(std::move(schedule));
    }
    config.initial_schedule = ScheduleId{
        static_cast<std::int32_t>(root.get_int("initial_schedule", 0))};

    // Multicore: "cores": [ { "schedules": [ids...], "initial_schedule": id } ]
    // referencing entries of the global "schedules" array by id.
    if (const Value* cores = root.find("cores")) {
      for (const Value& c : cores->as_array()) {
        system::CoreConfig core;
        const Value* ids = c.find("schedules");
        if (ids == nullptr || !ids->is_array()) {
          fail("core entry missing \"schedules\" id array");
        }
        for (const Value& id_value : ids->as_array()) {
          const ScheduleId id{
              static_cast<std::int32_t>(id_value.as_int())};
          bool found = false;
          for (const auto& schedule : config.schedules) {
            if (schedule.id == id) {
              core.schedules.push_back(schedule);
              found = true;
              break;
            }
          }
          if (!found) {
            fail("core references unknown schedule id " +
                 std::to_string(id.value()));
          }
        }
        core.initial_schedule = ScheduleId{static_cast<std::int32_t>(
            c.get_int("initial_schedule",
                      core.schedules.empty()
                          ? 0
                          : core.schedules.front().id.value()))};
        config.cores.push_back(std::move(core));
      }
    }

    if (const Value* channels = root.find("channels")) {
      std::int32_t next_id = 0;
      for (const Value& c : channels->as_array()) {
        ipc::ChannelConfig channel;
        channel.id = ChannelId{next_id++};
        const std::string kind = required_string(c, "kind", "channel");
        if (kind == "sampling") {
          channel.kind = ipc::ChannelKind::kSampling;
        } else if (kind == "queuing") {
          channel.kind = ipc::ChannelKind::kQueuing;
        } else {
          fail("unknown channel kind: " + kind);
        }
        const Value* source = c.find("source");
        if (source == nullptr) fail("channel missing source");
        channel.source = {
            resolve_partition(config,
                              required_string(*source, "partition", "source")),
            required_string(*source, "port", "source")};
        if (const Value* dests = c.find("destinations")) {
          for (const Value& d : dests->as_array()) {
            if (d.find("module") != nullptr) {
              channel.remote_destinations.push_back(
                  {ModuleId{static_cast<std::int32_t>(d.get_int("module", 0))},
                   PartitionId{static_cast<std::int32_t>(
                       d.get_int("partition_id", 0))},
                   required_string(d, "port", "remote destination")});
            } else {
              channel.local_destinations.push_back(
                  {resolve_partition(
                       config, required_string(d, "partition", "destination")),
                   required_string(d, "port", "destination")});
            }
          }
        }
        config.channels.push_back(std::move(channel));
      }
    }

    config.module_hm_table = parse_hm_table(root.find("module_hm_table"));
    return {std::move(config), {}};
  } catch (const LoadError& e) {
    return {std::nullopt, e.what()};
  }
}

LoadResult load_module_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {std::nullopt, "cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_module_config(buffer.str());
}

NetworkLoadResult load_network_config(std::string_view json_text) {
  const util::json::ParseResult parsed = util::json::parse(json_text);
  if (!parsed.ok()) return {std::nullopt, parsed.error->to_string()};

  try {
    const Value* root = &*parsed.value;
    if (!root->is_object()) fail("top-level value must be an object");
    if (const Value* wrapped = root->find("network")) {
      if (!wrapped->is_object()) fail("\"network\" must be an object");
      root = wrapped;
    }

    NetworkConfig config;
    config.bus.slot_length = root->get_int("slot_length", 10);
    if (config.bus.slot_length <= 0) fail("\"slot_length\" must be > 0");
    config.bus.frames_per_slot =
        static_cast<std::size_t>(root->get_int("frames_per_slot", 4));
    if (config.bus.frames_per_slot == 0) {
      fail("\"frames_per_slot\" must be > 0");
    }
    config.bus.propagation_delay = root->get_int("propagation_delay", 1);
    if (config.bus.propagation_delay < 0) {
      fail("\"propagation_delay\" must be >= 0");
    }
    config.bus.stations_per_switch =
        static_cast<std::size_t>(root->get_int("stations_per_switch", 0));
    config.bus.switch_hop_delay = root->get_int("switch_hop_delay", 2);
    if (config.bus.switch_hop_delay < 0) {
      fail("\"switch_hop_delay\" must be >= 0");
    }

    if (const Value* vls = root->find("virtual_links")) {
      if (!vls->is_array()) fail("\"virtual_links\" must be an array");
      for (const Value& vl : vls->as_array()) {
        if (!vl.is_object()) fail("virtual link entries must be objects");
        net::VirtualLinkConfig link;
        const Value* source = vl.find("source");
        const Value* dest = vl.find("dest");
        if (source == nullptr || !source->is_number() || dest == nullptr ||
            !dest->is_number()) {
          fail("virtual link needs numeric \"source\" and \"dest\" ids");
        }
        link.source = ModuleId{static_cast<std::int32_t>(source->as_int())};
        link.dest = ModuleId{static_cast<std::int32_t>(dest->as_int())};
        link.min_gap = vl.get_int("min_gap", 0);
        if (link.min_gap < 0) fail("\"min_gap\" must be >= 0");
        link.jitter_budget = time_field(vl, "jitter_budget", -1);
        config.virtual_links.push_back(link);
      }
    }
    return {std::move(config), {}};
  } catch (const LoadError& e) {
    return {std::nullopt, e.what()};
  }
}

NetworkLoadResult load_network_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {std::nullopt, "cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_network_config(buffer.str());
}

}  // namespace air::config
