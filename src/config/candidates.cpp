#include "config/candidates.hpp"

#include <sstream>

#include "util/json.hpp"

namespace air::config {

namespace {

using util::json::Value;

[[nodiscard]] Ticks ticks_of(const Value& v, std::string_view key,
                             Ticks fallback) {
  const std::int64_t raw = v.get_int(key, fallback);
  return raw < 0 ? kInfiniteTime : raw;
}

[[nodiscard]] std::string require_array(const Value& v, std::string_view key,
                                        const Value*& out) {
  out = v.find(key);
  if (out == nullptr) return std::string{key} + " missing";
  if (!out->is_array()) return std::string{key} + " must be an array";
  return {};
}

}  // namespace

CandidateParse parse_candidate(std::string_view line) {
  CandidateParse result;
  const auto parsed = util::json::parse(line);
  if (!parsed.ok()) {
    result.error = parsed.error->to_string();
    return result;
  }
  const Value& root = *parsed.value;
  if (!root.is_object()) {
    result.error = "candidate must be a JSON object";
    return result;
  }

  model::Candidate candidate;
  candidate.id = static_cast<std::uint64_t>(root.get_int("id", 0));
  candidate.name = root.get_string("name", "");
  candidate.mtf = root.get_int("mtf", 0);

  const Value* reqs = nullptr;
  if (std::string err = require_array(root, "requirements", reqs);
      !err.empty()) {
    result.error = std::move(err);
    return result;
  }
  for (const Value& r : reqs->as_array()) {
    model::ScheduleRequirement req;
    req.partition =
        PartitionId{static_cast<std::int32_t>(r.get_int("partition", 0))};
    req.period = r.get_int("period", 0);
    req.duration = r.get_int("duration", 0);
    candidate.requirements.push_back(req);
  }

  if (const Value* windows = root.find("windows"); windows != nullptr) {
    if (!windows->is_array()) {
      result.error = "windows must be an array";
      return result;
    }
    for (const Value& w : windows->as_array()) {
      model::Window window;
      window.partition =
          PartitionId{static_cast<std::int32_t>(w.get_int("partition", 0))};
      window.offset = w.get_int("offset", 0);
      window.duration = w.get_int("duration", 0);
      candidate.windows.push_back(window);
    }
  }

  const Value* partitions = nullptr;
  if (std::string err = require_array(root, "partitions", partitions);
      !err.empty()) {
    result.error = std::move(err);
    return result;
  }
  for (const Value& p : partitions->as_array()) {
    model::PartitionModel pm;
    pm.id = PartitionId{static_cast<std::int32_t>(p.get_int("id", 0))};
    pm.name = p.get_string("name", "P" + std::to_string(pm.id.value()));
    if (const Value* procs = p.find("processes"); procs != nullptr) {
      if (!procs->is_array()) {
        result.error = "processes must be an array";
        return result;
      }
      for (const Value& q : procs->as_array()) {
        model::ProcessModel proc;
        proc.name = q.get_string("name", "");
        proc.period = ticks_of(q, "period", 0);
        proc.deadline = ticks_of(q, "deadline", -1);
        proc.priority =
            static_cast<Priority>(q.get_int("priority", 0));
        proc.wcet = q.get_int("wcet", 0);
        proc.periodic = q.get_bool("periodic", true);
        pm.processes.push_back(std::move(proc));
      }
    }
    candidate.partitions.push_back(std::move(pm));
  }

  result.candidate = std::move(candidate);
  return result;
}

CandidateStream parse_candidates(std::string_view text) {
  CandidateStream stream;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    // Trim and skip blanks / // comment lines.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.substr(0, 2) == "//") continue;
    CandidateParse parsed = parse_candidate(line);
    if (parsed.ok()) {
      stream.candidates.push_back(std::move(*parsed.candidate));
    } else {
      stream.errors.push_back("line " + std::to_string(line_no) + ": " +
                              parsed.error);
    }
  }
  return stream;
}

std::string candidate_to_jsonl(const model::Candidate& candidate) {
  // Hand-rolled, key order fixed by this function (std::map-based
  // Value::dump would alphabetise) -- reproducer files must be diffable.
  std::ostringstream os;
  const auto ticks = [](Ticks t) {
    return t == kInfiniteTime ? std::int64_t{-1}
                              : static_cast<std::int64_t>(t);
  };
  os << "{\"id\":" << candidate.id
     << ",\"name\":" << Value(candidate.name).dump()
     << ",\"mtf\":" << candidate.mtf << ",\"requirements\":[";
  for (std::size_t i = 0; i < candidate.requirements.size(); ++i) {
    const model::ScheduleRequirement& r = candidate.requirements[i];
    os << (i ? "," : "") << "{\"partition\":" << r.partition.value()
       << ",\"period\":" << r.period << ",\"duration\":" << r.duration
       << '}';
  }
  os << ']';
  if (!candidate.windows.empty()) {
    os << ",\"windows\":[";
    for (std::size_t i = 0; i < candidate.windows.size(); ++i) {
      const model::Window& w = candidate.windows[i];
      os << (i ? "," : "") << "{\"partition\":" << w.partition.value()
         << ",\"offset\":" << w.offset << ",\"duration\":" << w.duration
         << '}';
    }
    os << ']';
  }
  os << ",\"partitions\":[";
  for (std::size_t i = 0; i < candidate.partitions.size(); ++i) {
    const model::PartitionModel& pm = candidate.partitions[i];
    os << (i ? "," : "") << "{\"id\":" << pm.id.value()
       << ",\"name\":" << Value(pm.name).dump() << ",\"processes\":[";
    for (std::size_t q = 0; q < pm.processes.size(); ++q) {
      const model::ProcessModel& proc = pm.processes[q];
      os << (q ? "," : "") << "{\"name\":" << Value(proc.name).dump()
         << ",\"period\":" << ticks(proc.period)
         << ",\"deadline\":" << ticks(proc.deadline)
         << ",\"priority\":" << static_cast<std::int64_t>(proc.priority)
         << ",\"wcet\":" << proc.wcet
         << ",\"periodic\":" << (proc.periodic ? "true" : "false") << '}';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace air::config
