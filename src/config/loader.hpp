// Integration-file loader: JSON -> system::ModuleConfig.
//
// ARINC 653 systems are configured by integrator-written files (the
// standard uses XML; we use JSON with // comments). The loader performs the
// same role as AIR's configuration tool chain: it resolves partition names
// to ids, builds the schedules, channels, HM tables and process workload
// scripts, and leaves model validation to Module construction.
//
// Schema sketch (all times in ticks; -1 encodes "infinite"):
//   {
//     "name": "...", "memory_bytes": 16777216, "initial_schedule": 0,
//     "partitions": [ { "name", "system", "pos" ("rt"|"generic"),
//        "registry" ("list"|"tree"), "processes": [ { "name", "period",
//        "time_capacity", "priority", "auto_start", "script": [ <op>... ] }],
//        "sampling_ports": [...], "queuing_ports": [...], "buffers": [...],
//        "blackboards": [...], "semaphores": [...], "events": [...],
//        "error_handler": [ <op>... ], "hm_table": [ <hm entry>... ] } ],
//     "schedules": [ { "id", "name", "mtf", "requirements": [ { "partition",
//        "period", "duration" } ], "windows": [ { "partition", "offset",
//        "duration" } ], "change_actions": [ { "partition", "action" } ] } ],
//     "channels": [ { "kind" ("sampling"|"queuing"), "source": { "partition",
//        "port" }, "destinations": [ { "partition", "port" } ] } ],
//     "module_hm_table": [ <hm entry>... ]
//   }
// An <op> is { "op": "compute", "ticks": 30 } etc. -- see loader.cpp for
// the full op table.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/bus.hpp"
#include "system/module_config.hpp"

namespace air::config {

struct LoadResult {
  std::optional<system::ModuleConfig> config;
  std::string error;

  [[nodiscard]] bool ok() const { return config.has_value(); }
};

[[nodiscard]] LoadResult load_module_config(std::string_view json_text);
[[nodiscard]] LoadResult load_module_config_file(const std::string& path);

/// World-level network topology (the integrator's counterpart of the ARINC
/// 664 network configuration tables). Schema (all times in ticks; -1 means
/// "infinite"; either the top-level object or its "network" member):
///   { "network": {
///       "slot_length": 10, "frames_per_slot": 4, "propagation_delay": 1,
///       "stations_per_switch": 32, "switch_hop_delay": 2,
///       "virtual_links": [ { "source": 0, "dest": 1,
///                            "min_gap": 20, "jitter_budget": 100 } ] } }
/// stations_per_switch 0 (the default) keeps the flat broadcast topology.
struct NetworkConfig {
  net::BusConfig bus;
  std::vector<net::VirtualLinkConfig> virtual_links;
};

struct NetworkLoadResult {
  std::optional<NetworkConfig> config;
  std::string error;

  [[nodiscard]] bool ok() const { return config.has_value(); }
};

[[nodiscard]] NetworkLoadResult load_network_config(std::string_view json_text);
[[nodiscard]] NetworkLoadResult load_network_config_file(
    const std::string& path);

}  // namespace air::config
