#include "config/fig8.hpp"

namespace air::scenarios {

namespace {

constexpr PartitionId kP1{0};
constexpr PartitionId kP2{1};
constexpr PartitionId kP3{2};
constexpr PartitionId kP4{3};

std::vector<model::ScheduleRequirement> fig8_requirements() {
  return {
      {kP1, 1300, 200},
      {kP2, 650, 100},
      {kP3, 650, 100},
      {kP4, 1300, 100},
  };
}

}  // namespace

model::Schedule fig8_chi1() {
  model::Schedule chi1;
  chi1.id = ScheduleId{0};
  chi1.name = "chi1";
  chi1.mtf = kFig8Mtf;
  chi1.requirements = fig8_requirements();
  chi1.windows = {
      {kP1, 0, 200},   {kP2, 200, 100},  {kP3, 300, 100}, {kP4, 400, 600},
      {kP2, 1000, 100}, {kP3, 1100, 100}, {kP4, 1200, 100},
  };
  return chi1;
}

model::Schedule fig8_chi2() {
  model::Schedule chi2;
  chi2.id = ScheduleId{1};
  chi2.name = "chi2";
  chi2.mtf = kFig8Mtf;
  chi2.requirements = fig8_requirements();
  chi2.windows = {
      {kP1, 0, 200},   {kP4, 200, 100},  {kP3, 300, 100}, {kP2, 400, 600},
      {kP4, 1000, 100}, {kP3, 1100, 100}, {kP2, 1200, 100},
  };
  return chi2;
}

system::ModuleConfig fig8_config(const Fig8Options& options) {
  using pos::ScriptBuilder;
  system::ModuleConfig config;
  config.name = "fig8-prototype";
  config.trace_enabled = options.trace_enabled;

  // ---- P1: AOCS (system partition) ----
  system::PartitionConfig p1;
  p1.name = "AOCS";
  p1.system_partition = true;
  p1.deadline_registry = options.deadline_registry;
  p1.sampling_ports.push_back(
      {"ATT_OUT", ipc::PortDirection::kSource, 64, kInfiniteTime});
  {
    system::ProcessConfig control;
    control.attrs.name = "p1_control";
    control.attrs.period = 1300;
    control.attrs.time_capacity = 200;
    control.attrs.priority = 10;
    control.attrs.script = ScriptBuilder{}
                               .compute(60)
                               .sampling_write(0, "attitude-quaternion")
                               .periodic_wait()
                               .build();
    p1.processes.push_back(std::move(control));

    system::ProcessConfig nav;
    nav.attrs.name = "p1_nav";
    nav.attrs.period = 1300;  // multiple of P1's cycle duration (Sect. 6)
    nav.attrs.time_capacity = 1300;
    nav.attrs.priority = 20;
    nav.attrs.script = ScriptBuilder{}.compute(20).periodic_wait().build();
    p1.processes.push_back(std::move(nav));

    if (options.with_faulty_process) {
      // The injectable faulty process: its time capacity (205) was
      // "underestimated" at integration time. Each activation computes for
      // 120 ticks -- exactly the window time left after p1_control (60) and
      // p1_nav (20) -- so it completes on the *last* tick of P1's window,
      // long after its 205-tick deadline expired while P1 was inactive.
      // Every activation therefore misses, and the PAL detects the miss on
      // the first tick of P1's next window: one report per MTF, "every time
      // (except the first) that P1 is scheduled and dispatched" (Sect. 6).
      system::ProcessConfig faulty;
      faulty.attrs.name = kFaultyProcessName;
      faulty.attrs.period = 1300;
      faulty.attrs.time_capacity = 205;
      faulty.attrs.priority = 30;  // below the healthy processes
      faulty.attrs.script =
          ScriptBuilder{}.compute(120).periodic_wait().build();
      faulty.auto_start = false;  // injected at runtime
      p1.processes.push_back(std::move(faulty));
    }
  }
  config.partitions.push_back(std::move(p1));

  // ---- P2: TTC ----
  system::PartitionConfig p2;
  p2.name = "TTC";
  p2.deadline_registry = options.deadline_registry;
  p2.sampling_ports.push_back(
      {"ATT_IN", ipc::PortDirection::kDestination, 64, 2 * kFig8Mtf});
  p2.queuing_ports.push_back(
      {"SCI_IN", ipc::PortDirection::kDestination, 64, 8});
  {
    system::ProcessConfig tm;
    tm.attrs.name = "p2_tm";
    tm.attrs.period = 650;
    tm.attrs.time_capacity = 650;
    tm.attrs.priority = 10;
    tm.attrs.script = ScriptBuilder{}
                          .sampling_read(0)
                          .compute(50)
                          .queuing_receive(0, /*timeout=*/0)  // poll
                          .periodic_wait()
                          .build();
    p2.processes.push_back(std::move(tm));
  }
  config.partitions.push_back(std::move(p2));

  // ---- P3: FDIR ----
  system::PartitionConfig p3;
  p3.name = "FDIR";
  p3.deadline_registry = options.deadline_registry;
  p3.semaphores.push_back({"fdir_work", 0, 8});
  {
    system::ProcessConfig monitor;
    monitor.attrs.name = "p3_monitor";
    monitor.attrs.period = 650;
    monitor.attrs.time_capacity = 650;
    monitor.attrs.priority = 10;
    monitor.attrs.script = ScriptBuilder{}
                               .compute(40)
                               .sem_signal(0)
                               .periodic_wait()
                               .build();
    p3.processes.push_back(std::move(monitor));

    system::ProcessConfig logger;
    logger.attrs.name = "p3_logger";
    logger.attrs.period = kInfiniteTime;  // aperiodic
    logger.attrs.time_capacity = kInfiniteTime;
    logger.attrs.priority = 20;
    logger.attrs.script =
        ScriptBuilder{}.sem_wait(0).compute(20).build();  // loops
    p3.processes.push_back(std::move(logger));
  }
  config.partitions.push_back(std::move(p3));

  // ---- P4: PAYLOAD ----
  system::PartitionConfig p4;
  p4.name = "PAYLOAD";
  p4.deadline_registry = options.deadline_registry;
  p4.sampling_ports.push_back(
      {"ATT_IN", ipc::PortDirection::kDestination, 64, 2 * kFig8Mtf});
  p4.queuing_ports.push_back({"SCI_OUT", ipc::PortDirection::kSource, 64, 8});
  {
    system::ProcessConfig sci;
    sci.attrs.name = "p4_sci";
    sci.attrs.period = 1300;
    sci.attrs.time_capacity = 1300;
    sci.attrs.priority = 10;
    sci.attrs.script = ScriptBuilder{}
                           .compute(150)
                           .queuing_send(0, "science-frame", /*timeout=*/0)
                           .sampling_read(0)
                           .periodic_wait()
                           .build();
    p4.processes.push_back(std::move(sci));

    system::ProcessConfig hk;
    hk.attrs.name = "p4_hk";
    hk.attrs.period = 1300;
    hk.attrs.time_capacity = kInfiniteTime;  // housekeeping has no deadline
    hk.attrs.priority = 30;
    hk.attrs.script = ScriptBuilder{}.compute(30).periodic_wait().build();
    p4.processes.push_back(std::move(hk));
  }
  config.partitions.push_back(std::move(p4));

  // ---- schedules ----
  config.schedules = {fig8_chi1(), fig8_chi2()};
  config.initial_schedule = ScheduleId{0};

  // ---- channels ----
  {
    ipc::ChannelConfig attitude;
    attitude.id = ChannelId{0};
    attitude.kind = ipc::ChannelKind::kSampling;
    attitude.source = {kP1, "ATT_OUT"};
    attitude.local_destinations = {{kP2, "ATT_IN"}, {kP4, "ATT_IN"}};
    config.channels.push_back(std::move(attitude));

    ipc::ChannelConfig science;
    science.id = ChannelId{1};
    science.kind = ipc::ChannelKind::kQueuing;
    science.source = {kP4, "SCI_OUT"};
    science.local_destinations = {{kP2, "SCI_IN"}};
    config.channels.push_back(std::move(science));
  }

  // ---- health monitoring ----
  // Deadline misses are logged but the process keeps running (the paper's
  // prototype reports the violation on every P1 dispatch; stopping the
  // process would end the demonstration).
  hm::HmTable table;
  table.set(hm::ErrorCode::kDeadlineMissed, hm::ErrorLevel::kProcess,
            hm::RecoveryAction::kIgnore);
  config.module_hm_table = table;
  for (auto& partition : config.partitions) {
    partition.hm_table = table;
  }

  return config;
}

}  // namespace air::scenarios
