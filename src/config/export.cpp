#include "config/export.hpp"

#include <variant>

#include "util/json.hpp"

namespace air::config {

namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

std::int64_t time_out(Ticks t) { return t == kInfiniteTime ? -1 : t; }

Value op_to_json(const pos::Op& op) {
  Object o;
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, pos::OpCompute>) {
          o["op"] = Value{"compute"};
          o["ticks"] = Value{v.ticks};
        } else if constexpr (std::is_same_v<T, pos::OpPeriodicWait>) {
          o["op"] = Value{"periodic_wait"};
        } else if constexpr (std::is_same_v<T, pos::OpSporadicWait>) {
          o["op"] = Value{"sporadic_wait"};
        } else if constexpr (std::is_same_v<T, pos::OpReleaseProcess>) {
          o["op"] = Value{"release_process"};
          o["process"] = Value{v.process};
        } else if constexpr (std::is_same_v<T, pos::OpTimedWait>) {
          o["op"] = Value{"timed_wait"};
          o["delay"] = Value{v.delay};
        } else if constexpr (std::is_same_v<T, pos::OpSuspendSelf>) {
          o["op"] = Value{"suspend_self"};
          o["timeout"] = Value{time_out(v.timeout)};
        } else if constexpr (std::is_same_v<T, pos::OpStopSelf>) {
          o["op"] = Value{"stop_self"};
        } else if constexpr (std::is_same_v<T, pos::OpReplenish>) {
          o["op"] = Value{"replenish"};
          o["budget"] = Value{v.budget};
        } else if constexpr (std::is_same_v<T, pos::OpLockPreemption>) {
          o["op"] = Value{"lock_preemption"};
        } else if constexpr (std::is_same_v<T, pos::OpUnlockPreemption>) {
          o["op"] = Value{"unlock_preemption"};
        } else if constexpr (std::is_same_v<T, pos::OpSemWait>) {
          o["op"] = Value{"sem_wait"};
          o["semaphore"] = Value{v.semaphore};
          o["timeout"] = Value{time_out(v.timeout)};
        } else if constexpr (std::is_same_v<T, pos::OpSemSignal>) {
          o["op"] = Value{"sem_signal"};
          o["semaphore"] = Value{v.semaphore};
        } else if constexpr (std::is_same_v<T, pos::OpEventSet>) {
          o["op"] = Value{"event_set"};
          o["event"] = Value{v.event};
        } else if constexpr (std::is_same_v<T, pos::OpEventReset>) {
          o["op"] = Value{"event_reset"};
          o["event"] = Value{v.event};
        } else if constexpr (std::is_same_v<T, pos::OpEventWait>) {
          o["op"] = Value{"event_wait"};
          o["event"] = Value{v.event};
          o["timeout"] = Value{time_out(v.timeout)};
        } else if constexpr (std::is_same_v<T, pos::OpBufferSend>) {
          o["op"] = Value{"buffer_send"};
          o["buffer"] = Value{v.buffer};
          o["message"] = Value{v.message};
          o["timeout"] = Value{time_out(v.timeout)};
        } else if constexpr (std::is_same_v<T, pos::OpBufferReceive>) {
          o["op"] = Value{"buffer_receive"};
          o["buffer"] = Value{v.buffer};
          o["timeout"] = Value{time_out(v.timeout)};
        } else if constexpr (std::is_same_v<T, pos::OpBlackboardDisplay>) {
          o["op"] = Value{"blackboard_display"};
          o["blackboard"] = Value{v.blackboard};
          o["message"] = Value{v.message};
        } else if constexpr (std::is_same_v<T, pos::OpBlackboardRead>) {
          o["op"] = Value{"blackboard_read"};
          o["blackboard"] = Value{v.blackboard};
          o["timeout"] = Value{time_out(v.timeout)};
        } else if constexpr (std::is_same_v<T, pos::OpSamplingWrite>) {
          o["op"] = Value{"sampling_write"};
          o["port"] = Value{v.port};
          o["message"] = Value{v.message};
        } else if constexpr (std::is_same_v<T, pos::OpSamplingRead>) {
          o["op"] = Value{"sampling_read"};
          o["port"] = Value{v.port};
        } else if constexpr (std::is_same_v<T, pos::OpQueuingSend>) {
          o["op"] = Value{"queuing_send"};
          o["port"] = Value{v.port};
          o["message"] = Value{v.message};
          o["timeout"] = Value{time_out(v.timeout)};
        } else if constexpr (std::is_same_v<T, pos::OpQueuingReceive>) {
          o["op"] = Value{"queuing_receive"};
          o["port"] = Value{v.port};
          o["timeout"] = Value{time_out(v.timeout)};
        } else if constexpr (std::is_same_v<T, pos::OpSetModuleSchedule>) {
          o["op"] = Value{"set_module_schedule"};
          o["schedule"] = Value{v.schedule};
        } else if constexpr (std::is_same_v<T, pos::OpRaiseError>) {
          o["op"] = Value{"raise_error"};
          o["code"] = Value{v.code};
          o["message"] = Value{v.message};
        } else if constexpr (std::is_same_v<T, pos::OpTryDisableClockIrq>) {
          o["op"] = Value{"try_disable_clock_irq"};
        } else if constexpr (std::is_same_v<T, pos::OpMemoryAccess>) {
          o["op"] = Value{"memory_access"};
          o["vaddr"] = Value{static_cast<std::int64_t>(v.vaddr)};
          o["write"] = Value{v.write};
        } else if constexpr (std::is_same_v<T, pos::OpStopProcess>) {
          o["op"] = Value{"stop_process"};
          o["process"] = Value{v.process};
        } else if constexpr (std::is_same_v<T, pos::OpStartProcess>) {
          o["op"] = Value{"start_process"};
          o["process"] = Value{v.process};
        } else if constexpr (std::is_same_v<T, pos::OpLog>) {
          o["op"] = Value{"log"};
          o["text"] = Value{v.text};
        } else if constexpr (std::is_same_v<T, pos::OpGoto>) {
          o["op"] = Value{"goto"};
          o["target"] = Value{static_cast<std::int64_t>(v.target)};
        }
      },
      op);
  return Value{std::move(o)};
}

Value script_to_json(const pos::Script& script) {
  Array ops;
  for (const auto& op : script) ops.push_back(op_to_json(op));
  return Value{std::move(ops)};
}

const char* error_code_name(hm::ErrorCode code) { return to_string(code); }

const char* level_name(hm::ErrorLevel level) { return to_string(level); }

const char* action_name(hm::RecoveryAction action) {
  return to_string(action);
}

Value hm_table_to_json(const hm::HmTable& table) {
  Array entries;
  for (const auto& [key, entry] : table.entries()) {
    Object e;
    e["error"] = Value{error_code_name(key.first)};
    e["level"] = Value{level_name(key.second)};
    e["action"] = Value{action_name(entry.action)};
    e["threshold"] =
        Value{static_cast<std::int64_t>(entry.log_threshold)};
    entries.push_back(Value{std::move(e)});
  }
  return Value{std::move(entries)};
}

const char* direction_name(ipc::PortDirection d) {
  return d == ipc::PortDirection::kSource ? "source" : "destination";
}

const char* discipline_name(ipc::QueuingDiscipline d) {
  return d == ipc::QueuingDiscipline::kFifo ? "fifo" : "priority";
}

Value partition_to_json(const system::PartitionConfig& p) {
  Object o;
  o["name"] = Value{p.name};
  o["system"] = Value{p.system_partition};
  o["pos"] = Value{p.pos_kind};
  o["registry"] = Value{
      p.deadline_registry == pal::RegistryKind::kTree ? "tree" : "list"};

  Array processes;
  for (const auto& process : p.processes) {
    Object pr;
    pr["name"] = Value{process.attrs.name};
    pr["period"] = Value{time_out(process.attrs.period)};
    pr["time_capacity"] = Value{time_out(process.attrs.time_capacity)};
    pr["priority"] = Value{process.attrs.priority};
    pr["stack_bytes"] =
        Value{static_cast<std::int64_t>(process.attrs.stack_bytes)};
    pr["sporadic"] = Value{process.attrs.sporadic};
    pr["auto_start"] = Value{process.auto_start};
    pr["script"] = script_to_json(process.attrs.script);
    processes.push_back(Value{std::move(pr)});
  }
  o["processes"] = Value{std::move(processes)};

  Array sampling;
  for (const auto& port : p.sampling_ports) {
    Object s;
    s["name"] = Value{port.name};
    s["direction"] = Value{direction_name(port.direction)};
    s["max_bytes"] =
        Value{static_cast<std::int64_t>(port.max_message_bytes)};
    s["refresh"] = Value{time_out(port.refresh_period)};
    sampling.push_back(Value{std::move(s)});
  }
  o["sampling_ports"] = Value{std::move(sampling)};

  Array queuing;
  for (const auto& port : p.queuing_ports) {
    Object q;
    q["name"] = Value{port.name};
    q["direction"] = Value{direction_name(port.direction)};
    q["max_bytes"] =
        Value{static_cast<std::int64_t>(port.max_message_bytes)};
    q["capacity"] = Value{static_cast<std::int64_t>(port.capacity)};
    q["discipline"] = Value{discipline_name(port.discipline)};
    queuing.push_back(Value{std::move(q)});
  }
  o["queuing_ports"] = Value{std::move(queuing)};

  Array buffers;
  for (const auto& buffer : p.buffers) {
    Object b;
    b["name"] = Value{buffer.name};
    b["max_bytes"] =
        Value{static_cast<std::int64_t>(buffer.max_message_bytes)};
    b["capacity"] = Value{static_cast<std::int64_t>(buffer.capacity)};
    b["discipline"] = Value{discipline_name(buffer.discipline)};
    buffers.push_back(Value{std::move(b)});
  }
  o["buffers"] = Value{std::move(buffers)};

  Array blackboards;
  for (const auto& bb : p.blackboards) {
    Object b;
    b["name"] = Value{bb.name};
    b["max_bytes"] =
        Value{static_cast<std::int64_t>(bb.max_message_bytes)};
    blackboards.push_back(Value{std::move(b)});
  }
  o["blackboards"] = Value{std::move(blackboards)};

  Array semaphores;
  for (const auto& sem : p.semaphores) {
    Object s;
    s["name"] = Value{sem.name};
    s["initial"] = Value{sem.initial};
    s["maximum"] = Value{sem.maximum};
    s["discipline"] = Value{discipline_name(sem.discipline)};
    semaphores.push_back(Value{std::move(s)});
  }
  o["semaphores"] = Value{std::move(semaphores)};

  Array events;
  for (const auto& event : p.events) {
    Object e;
    e["name"] = Value{event.name};
    events.push_back(Value{std::move(e)});
  }
  o["events"] = Value{std::move(events)};

  if (!p.error_handler.empty()) {
    o["error_handler"] = script_to_json(p.error_handler);
  }
  o["hm_table"] = hm_table_to_json(p.hm_table);
  return Value{std::move(o)};
}

Value schedule_to_json(const model::Schedule& s,
                       const system::ModuleConfig& config) {
  Object o;
  o["id"] = Value{s.id.value()};
  o["name"] = Value{s.name};
  o["mtf"] = Value{s.mtf};
  Array reqs;
  for (const auto& req : s.requirements) {
    Object r;
    r["partition"] = Value{
        config.partitions[static_cast<std::size_t>(req.partition.value())]
            .name};
    r["period"] = Value{req.period};
    r["duration"] = Value{req.duration};
    reqs.push_back(Value{std::move(r)});
  }
  o["requirements"] = Value{std::move(reqs)};
  Array windows;
  for (const auto& w : s.windows) {
    Object win;
    win["partition"] = Value{
        config.partitions[static_cast<std::size_t>(w.partition.value())]
            .name};
    win["offset"] = Value{w.offset};
    win["duration"] = Value{w.duration};
    windows.push_back(Value{std::move(win)});
  }
  o["windows"] = Value{std::move(windows)};

  Array actions;
  for (const auto& [key, action] : config.change_actions) {
    if (key.first != s.id) continue;
    Object a;
    a["partition"] = Value{
        config.partitions[static_cast<std::size_t>(key.second.value())]
            .name};
    a["action"] =
        Value{action == pmk::ScheduleChangeAction::kWarmRestart
                  ? "warm_restart"
                  : action == pmk::ScheduleChangeAction::kColdRestart
                        ? "cold_restart"
                        : "none"};
    actions.push_back(Value{std::move(a)});
  }
  if (!actions.empty()) o["change_actions"] = Value{std::move(actions)};
  return Value{std::move(o)};
}

}  // namespace

std::string to_json(const system::ModuleConfig& config) {
  Object root;
  root["name"] = Value{config.name};
  root["id"] = Value{config.id.value()};
  root["memory_bytes"] =
      Value{static_cast<std::int64_t>(config.memory_bytes)};
  root["validate"] = Value{config.validate};
  root["initial_schedule"] = Value{config.initial_schedule.value()};

  Array partitions;
  for (const auto& p : config.partitions) {
    partitions.push_back(partition_to_json(p));
  }
  root["partitions"] = Value{std::move(partitions)};

  // Schedules: the flat list plus, for multicore configs, the per-core id
  // references. When `cores` is set, the flat list is the union.
  Array schedules;
  if (config.cores.empty()) {
    for (const auto& s : config.schedules) {
      schedules.push_back(schedule_to_json(s, config));
    }
  } else {
    Array cores;
    for (const auto& core : config.cores) {
      Object c;
      Array ids;
      for (const auto& s : core.schedules) {
        schedules.push_back(schedule_to_json(s, config));
        ids.push_back(Value{s.id.value()});
      }
      c["schedules"] = Value{std::move(ids)};
      c["initial_schedule"] = Value{core.initial_schedule.value()};
      cores.push_back(Value{std::move(c)});
    }
    root["cores"] = Value{std::move(cores)};
  }
  root["schedules"] = Value{std::move(schedules)};

  Array channels;
  for (const auto& channel : config.channels) {
    Object c;
    c["kind"] = Value{
        channel.kind == ipc::ChannelKind::kSampling ? "sampling" : "queuing"};
    Object source;
    source["partition"] = Value{
        config.partitions[static_cast<std::size_t>(
                              channel.source.partition.value())]
            .name};
    source["port"] = Value{channel.source.port};
    c["source"] = Value{std::move(source)};
    Array destinations;
    for (const auto& dest : channel.local_destinations) {
      Object d;
      d["partition"] = Value{
          config.partitions[static_cast<std::size_t>(dest.partition.value())]
              .name};
      d["port"] = Value{dest.port};
      destinations.push_back(Value{std::move(d)});
    }
    for (const auto& dest : channel.remote_destinations) {
      Object d;
      d["module"] = Value{dest.module.value()};
      d["partition_id"] = Value{dest.partition.value()};
      d["port"] = Value{dest.port};
      destinations.push_back(Value{std::move(d)});
    }
    c["destinations"] = Value{std::move(destinations)};
    channels.push_back(Value{std::move(c)});
  }
  root["channels"] = Value{std::move(channels)};
  root["module_hm_table"] = hm_table_to_json(config.module_hm_table);

  return Value{std::move(root)}.dump(2);
}

}  // namespace air::config
