#include "telemetry/profiler.hpp"

#include <cstdio>

namespace air::telemetry {

std::string_view to_string(TickPhase phase) {
  switch (phase) {
    case TickPhase::kScheduler: return "scheduler";
    case TickPhase::kDispatcher: return "dispatcher";
    case TickPhase::kRouter: return "router";
    case TickPhase::kPal: return "pal";
    case TickPhase::kExecutor: return "executor";
    case TickPhase::kCount: break;
  }
  return "?";
}

void TickProfiler::record(TickPhase phase,
                          std::chrono::steady_clock::duration elapsed) {
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  PhaseStats& s = stats_[static_cast<std::size_t>(phase)];
  ++s.calls;
  s.total_ns += ns;
  if (ns > s.max_ns) s.max_ns = ns;
}

std::string TickProfiler::report() const {
  std::string out = "tick profile (host time):\n";
  char line[128];
  for (std::size_t p = 0; p < stats_.size(); ++p) {
    const PhaseStats& s = stats_[p];
    const double mean =
        s.calls > 0 ? static_cast<double>(s.total_ns) /
                          static_cast<double>(s.calls)
                    : 0.0;
    std::snprintf(line, sizeof line,
                  "  %-10s calls=%-10llu total=%-12llu ns  mean=%-8.1f ns  "
                  "max=%llu ns\n",
                  std::string{to_string(static_cast<TickPhase>(p))}.c_str(),
                  static_cast<unsigned long long>(s.calls),
                  static_cast<unsigned long long>(s.total_ns), mean,
                  static_cast<unsigned long long>(s.max_ns));
    out += line;
  }
  return out;
}

}  // namespace air::telemetry
