#include "telemetry/profiler.hpp"

#include <algorithm>
#include <cstdio>

#include "util/json.hpp"

namespace air::telemetry {

std::string_view to_string(ProfilePoint point) {
  switch (point) {
    case ProfilePoint::kTick: return "tick";
    case ProfilePoint::kScheduler: return "scheduler";
    case ProfilePoint::kDispatcher: return "dispatcher";
    case ProfilePoint::kRouter: return "router";
    case ProfilePoint::kPal: return "pal";
    case ProfilePoint::kExecutor: return "executor";
    case ProfilePoint::kKernelDispatch: return "kernel_dispatch";
    case ProfilePoint::kWarpScan: return "warp_scan";
    case ProfilePoint::kOnlineClose: return "online_close";
    case ProfilePoint::kTelemetryScrape: return "telemetry_scrape";
    case ProfilePoint::kEpoch: return "epoch";
    case ProfilePoint::kEpochBarrier: return "epoch_barrier";
    case ProfilePoint::kBusPump: return "bus_pump";
    case ProfilePoint::kCount: break;
  }
  return "?";
}

void HostProfiler::clear() {
  nodes_.clear();
  nodes_.push_back(Node{});  // synthetic root
  current_ = 0;
  tick_counter_ = 0;
  sampled_ticks_ = 0;
  sampling_ = false;
  countdown_ = 0;
}

std::uint32_t HostProfiler::enter(ProfilePoint point) {
  // Find `point` among the current node's children; first visit of a path
  // appends a node (steady state: pure pointer chasing, no allocation).
  for (std::uint32_t child = nodes_[current_].first_child; child != 0;
       child = nodes_[child].next_sibling) {
    if (nodes_[child].point == point) {
      current_ = child;
      return child;
    }
  }
  Node node;
  node.point = point;
  node.parent = current_;
  node.depth = nodes_[current_].depth + 1;
  node.next_sibling = nodes_[current_].first_child;
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(node);
  nodes_[current_].first_child = index;
  current_ = index;
  return index;
}

void HostProfiler::leave(std::uint32_t index, std::uint64_t ns,
                         std::uint64_t arena_bytes,
                         std::uint64_t heap_allocs) {
  PathStats& stats = nodes_[index].stats;
  ++stats.calls;
  stats.total_ns += ns;
  if (ns > stats.max_ns) stats.max_ns = ns;
  stats.arena_bytes += arena_bytes;
  stats.heap_allocs += heap_allocs;
  current_ = nodes_[index].parent;
}

HostProfiler::PathStats HostProfiler::point_stats(ProfilePoint point) const {
  PathStats out;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.point != point) continue;
    out.calls += node.stats.calls;
    out.total_ns += node.stats.total_ns;
    out.max_ns = std::max(out.max_ns, node.stats.max_ns);
    out.arena_bytes += node.stats.arena_bytes;
    out.heap_allocs += node.stats.heap_allocs;
  }
  return out;
}

std::uint64_t HostProfiler::self_ns(std::uint32_t index) const {
  std::uint64_t children = 0;
  for (std::uint32_t child = nodes_[index].first_child; child != 0;
       child = nodes_[child].next_sibling) {
    children += nodes_[child].stats.total_ns;
  }
  const std::uint64_t total = nodes_[index].stats.total_ns;
  // A child scope can time slightly longer than its parent (clock
  // granularity); clamp instead of wrapping.
  return total > children ? total - children : 0;
}

std::string HostProfiler::path(std::uint32_t index) const {
  if (index == 0 || index >= nodes_.size()) return {};
  std::vector<std::string_view> parts;
  for (std::uint32_t i = index; i != 0; i = nodes_[i].parent) {
    parts.push_back(to_string(nodes_[i].point));
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += ';';
    out += *it;
  }
  return out;
}

namespace {

/// Report/export order: depth-first from the root, siblings by node index
/// (creation order) -- deterministic given the same execution, and it keeps
/// parents above children in the table.
void preorder(const std::vector<HostProfiler::Node>& nodes,
              std::uint32_t index, std::vector<std::uint32_t>& out) {
  if (index != 0) out.push_back(index);
  std::vector<std::uint32_t> children;
  for (std::uint32_t child = nodes[index].first_child; child != 0;
       child = nodes[child].next_sibling) {
    children.push_back(child);
  }
  std::sort(children.begin(), children.end());
  for (const std::uint32_t child : children) preorder(nodes, child, out);
}

}  // namespace

std::string HostProfiler::report() const {
  std::vector<std::uint32_t> order;
  preorder(nodes_, 0, order);
  // Attribution table: siblings sorted hottest-first within the preorder
  // walk would reorder parents; instead sort the flat rows by total ns and
  // keep the path string as the hierarchy cue.
  std::sort(order.begin(), order.end(), [this](std::uint32_t x,
                                               std::uint32_t y) {
    if (nodes_[x].stats.total_ns != nodes_[y].stats.total_ns) {
      return nodes_[x].stats.total_ns > nodes_[y].stats.total_ns;
    }
    return x < y;
  });

  std::string out = "host profile (wall clock, ";
  char line[256];
  std::snprintf(line, sizeof line,
                "%llu sampled ticks, stride %u):\n",
                static_cast<unsigned long long>(sampled_ticks_), stride_);
  out += line;
  std::snprintf(line, sizeof line, "  %-44s %10s %12s %9s %9s %8s %6s\n",
                "path", "calls", "total_ns", "mean_ns", "self_ns", "arena_B",
                "heap");
  out += line;
  for (const std::uint32_t index : order) {
    const Node& node = nodes_[index];
    if (node.stats.calls == 0) continue;
    const double mean = static_cast<double>(node.stats.total_ns) /
                        static_cast<double>(node.stats.calls);
    std::snprintf(line, sizeof line,
                  "  %-44s %10llu %12llu %9.1f %9llu %8llu %6llu\n",
                  path(index).c_str(),
                  static_cast<unsigned long long>(node.stats.calls),
                  static_cast<unsigned long long>(node.stats.total_ns), mean,
                  static_cast<unsigned long long>(self_ns(index)),
                  static_cast<unsigned long long>(node.stats.arena_bytes),
                  static_cast<unsigned long long>(node.stats.heap_allocs));
    out += line;
  }
  return out;
}

std::string HostProfiler::folded() const {
  std::vector<std::uint32_t> order;
  preorder(nodes_, 0, order);
  std::string out;
  for (const std::uint32_t index : order) {
    if (nodes_[index].stats.calls == 0) continue;
    const std::uint64_t self = self_ns(index);
    if (self == 0) continue;
    out += path(index);
    out += ' ';
    out += std::to_string(self);
    out += '\n';
  }
  return out;
}

std::string profile_to_json(const HostProfiler& profiler,
                            std::string_view origin, int indent) {
  using util::json::Array;
  using util::json::Object;
  using util::json::Value;

  std::vector<std::uint32_t> order;
  preorder(profiler.nodes(), 0, order);

  Object meta;
  meta["origin"] = Value{std::string{origin}};
  meta["stride"] = Value{static_cast<std::int64_t>(profiler.stride())};
  meta["sampled_ticks"] =
      Value{static_cast<std::int64_t>(profiler.ticks())};

  Array paths;
  for (const std::uint32_t index : order) {
    const HostProfiler::Node& node = profiler.nodes()[index];
    if (node.stats.calls == 0) continue;
    Object row;
    row["path"] = Value{profiler.path(index)};
    row["point"] = Value{std::string{to_string(node.point)}};
    row["depth"] = Value{static_cast<std::int64_t>(node.depth)};
    row["calls"] = Value{static_cast<std::int64_t>(node.stats.calls)};
    row["total_ns"] = Value{static_cast<std::int64_t>(node.stats.total_ns)};
    row["self_ns"] = Value{static_cast<std::int64_t>(profiler.self_ns(index))};
    row["max_ns"] = Value{static_cast<std::int64_t>(node.stats.max_ns)};
    row["arena_bytes"] =
        Value{static_cast<std::int64_t>(node.stats.arena_bytes)};
    row["heap_allocs"] =
        Value{static_cast<std::int64_t>(node.stats.heap_allocs)};
    paths.push_back(Value{std::move(row)});
  }

  Object root;
  root["meta"] = Value{std::move(meta)};
  root["paths"] = Value{std::move(paths)};
  return Value{std::move(root)}.dump(indent);
}

}  // namespace air::telemetry
