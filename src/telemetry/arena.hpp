// telemetry::StringArena -- the issue-facing name for the interned-string
// arena. The implementation lives in util/ because util::Trace (a lower
// layer than air_telemetry) stores interned labels too; re-exporting here
// keeps the telemetry plane's public vocabulary in one namespace.
#pragma once

#include "util/arena.hpp"

namespace air::telemetry {

using StringArena = util::StringArena;
using InternedString = util::InternedString;
using Sym = util::Sym;

}  // namespace air::telemetry
