// Deterministic metrics registry (observability layer).
//
// Quantitative counterpart of the event trace: every layer of the stack
// (PMK, PAL, POS, IPC router, HAL, HM) publishes counters, gauges and
// fixed-bucket histograms here, keyed by {metric, index} where the index is
// a partition, channel or error-code value depending on the metric (see the
// catalogue in DESIGN.md "Observability"). There is deliberately no wall
// clock anywhere: values are tick-stamped by the caller, so two runs of the
// same configuration produce byte-identical snapshots -- the property
// test_determinism asserts and every EXPERIMENTS.md number relies on.
//
// Hot-path discipline: recording is a handful of integer operations behind
// one `enabled` branch; layers hold a nullable MetricsRegistry* and skip
// the call entirely when telemetry is off.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace air::telemetry {

/// Fixed metric catalogue. Adding a metric = one enum entry + one row in
/// the tables of metrics.cpp (name, kind) + a line in DESIGN.md.
enum class Metric : std::uint8_t {
  // --- PMK (index = partition; -1 = module-wide) ---
  kPartitionContextSwitches = 0,  // counter: dispatches that switched to it
  kPartitionPreemptions,          // counter: times switched away from it
  kPartitionBusyTicks,            // counter: window ticks a process ran
  kPartitionSlackTicks,           // counter: window ticks nothing ran
  kSchedulePreemptionPoints,      // counter (module): Alg. 1 points hit
  kScheduleSwitches,              // counter (module): effective switches
  // --- PAL (index = partition) ---
  kDeadlineChecks,                // counter: earliest-deadline retrievals
  kDeadlineMisses,                // counter: violations detected
  kDeadlineSlack,                 // histogram: deadline - now when a record
                                  //   first heads the registry (headroom)
  kDeadlineLateness,              // histogram: now - deadline, per miss
  kDeadlineRegistryDepth,         // gauge: registered deadlines
  // --- POS (index = partition) ---
  kProcessDispatches,             // counter: schedule() calls with an heir
  kProcessSwitches,               // counter: heir differed from current
  kReadyQueueDepth,               // gauge: ready+running processes
  // --- IPC (index = channel id) ---
  kIpcMessages,                   // counter: messages moved by the router
  kIpcBytes,                      // counter: payload bytes moved
  kIpcDrops,                      // counter: deliveries lost on full ports
  kIpcQueueDepth,                 // gauge: source-port depth after pump
  // --- HAL (index = -1, module-wide) ---
  kTlbHits,                       // counter
  kTlbMisses,                     // counter
  kMmuTableWalks,                 // counter
  kMmuFaults,                     // counter
  // --- spatial / HM ---
  kSpatialViolations,             // counter (index = partition)
  kHmErrors,                      // counter (index = partition)
  kHmErrorsByCode,                // counter (index = hm::ErrorCode)
  kHmActionsByKind,               // counter (index = hm::RecoveryAction)
  // --- telemetry self-observation (index = -1, module-wide) ---
  kSpansRecorded,                 // counter: spans closed by the recorder
  kSpansDropped,                  // counter: closed spans evicted (bounded)
  kSpansOpen,                     // gauge: spans open at snapshot time
  // --- schedulability service (index = -1; host-side batch analysis
  //     plane, published by model::BatchAnalyzer::publish) ---
  kBatchConfigs,                  // counter: candidate configs analysed
  kBatchSchedulable,              // counter: verdicts = schedulable
  kBatchUnschedulable,            // counter: verdicts = unschedulable
  kBatchInfeasible,               // counter: verdicts = infeasible
  kBatchSupplyHits,               // counter: memoised sbf tables reused
  kBatchSupplyMisses,             // counter: sbf tables constructed
  kCount
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(Metric metric);
[[nodiscard]] MetricKind kind_of(Metric metric);

/// Last-value gauge that also tracks the maximum ever set.
struct Gauge {
  std::int64_t last{0};
  std::int64_t max{std::numeric_limits<std::int64_t>::min()};
  std::uint64_t samples{0};
};

/// Fixed-bucket histogram over non-negative values: bucket b counts samples
/// with floor(log2(value+1)) == b, i.e. bounds 0, 1, 2-3, 4-7, ... Negative
/// samples are clamped into bucket 0 (they can only arise from clamped
/// slack) and min/sum/max keep the exact moments.
struct Histogram {
  static constexpr std::size_t kBuckets = 16;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count{0};
  std::int64_t sum{0};
  std::int64_t min{std::numeric_limits<std::int64_t>::max()};
  std::int64_t max{std::numeric_limits<std::int64_t>::min()};

  void observe(std::int64_t value);
  /// Inclusive upper bound of bucket `b` (2^(b+1) - 2; last bucket is open).
  [[nodiscard]] static std::int64_t upper_bound(std::size_t b);
};

/// One snapshot row; exactly one of the value members is meaningful per
/// `kind`. `index` is the catalogue key (-1 = module-wide).
struct MetricSample {
  Metric metric{};
  std::int32_t index{-1};
  MetricKind kind{MetricKind::kCounter};
  std::uint64_t counter{0};
  Gauge gauge{};
  Histogram histogram{};
};

struct MetricsSnapshot {
  Ticks time{0};  // module time the snapshot was taken at
  std::vector<MetricSample> samples;  // ordered by (metric, index)

  /// First sample of `metric` with `index`; nullptr when absent.
  [[nodiscard]] const MetricSample* find(Metric metric,
                                         std::int32_t index = -1) const;
  /// Counter value, 0 when absent (convenience for report code).
  [[nodiscard]] std::uint64_t counter(Metric metric,
                                      std::int32_t index = -1) const;
};

class MetricsRegistry {
 public:
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Counter increment (no-op when disabled).
  void add(Metric metric, std::int32_t index, std::uint64_t delta = 1) {
    if (!enabled_) return;
    counter_slot(metric, index) += delta;
  }

  /// Counter overwrite -- used when scraping a layer-local total into the
  /// registry (scheduler tick counters, MMU stats, ...).
  void set_counter(Metric metric, std::int32_t index, std::uint64_t total) {
    if (!enabled_) return;
    counter_slot(metric, index) = total;
  }

  /// Gauge sample.
  void set(Metric metric, std::int32_t index, std::int64_t value);

  /// Histogram sample.
  void observe(Metric metric, std::int32_t index, std::int64_t value);

  /// Deterministic snapshot: samples ordered by (metric, index), empty
  /// slots (never touched) omitted.
  [[nodiscard]] MetricsSnapshot snapshot(Ticks now) const;

  // --- point reads (online plane sampling; cheaper than a full snapshot) ---

  /// Current counter value; 0 when the slot was never touched.
  [[nodiscard]] std::uint64_t counter_value(Metric metric,
                                            std::int32_t index = -1) const;
  /// Sum of a counter across all touched indices.
  [[nodiscard]] std::uint64_t counter_total(Metric metric) const;
  /// Histogram slot; nullptr when never touched.
  [[nodiscard]] const Histogram* histogram(Metric metric,
                                           std::int32_t index = -1) const;

  void clear();

 private:
  // Per metric, a dense slot vector indexed by key+1 (key -1 = slot 0),
  // grown on demand. Separate stores per kind keep slots small.
  struct Slot {
    std::vector<std::uint64_t> counters;
    std::vector<Gauge> gauges;
    std::vector<Histogram> histograms;
    std::vector<bool> touched;

    void ensure(std::size_t n, MetricKind kind);
  };

  [[nodiscard]] std::uint64_t& counter_slot(Metric metric, std::int32_t index);

  bool enabled_{true};
  std::array<Slot, static_cast<std::size_t>(Metric::kCount)> slots_;
};

}  // namespace air::telemetry
