#include "telemetry/metrics.hpp"

#include "util/assert.hpp"

namespace air::telemetry {

namespace {

struct MetricInfo {
  std::string_view name;
  MetricKind kind;
};

constexpr std::array<MetricInfo, static_cast<std::size_t>(Metric::kCount)>
    kCatalogue{{
        {"pmk.partition_context_switches", MetricKind::kCounter},
        {"pmk.partition_preemptions", MetricKind::kCounter},
        {"pmk.partition_busy_ticks", MetricKind::kCounter},
        {"pmk.partition_slack_ticks", MetricKind::kCounter},
        {"pmk.schedule_preemption_points", MetricKind::kCounter},
        {"pmk.schedule_switches", MetricKind::kCounter},
        {"pal.deadline_checks", MetricKind::kCounter},
        {"pal.deadline_misses", MetricKind::kCounter},
        {"pal.deadline_slack", MetricKind::kHistogram},
        {"pal.deadline_lateness", MetricKind::kHistogram},
        {"pal.deadline_registry_depth", MetricKind::kGauge},
        {"pos.process_dispatches", MetricKind::kCounter},
        {"pos.process_switches", MetricKind::kCounter},
        {"pos.ready_queue_depth", MetricKind::kGauge},
        {"ipc.messages", MetricKind::kCounter},
        {"ipc.bytes", MetricKind::kCounter},
        {"ipc.drops", MetricKind::kCounter},
        {"ipc.queue_depth", MetricKind::kGauge},
        {"hal.tlb_hits", MetricKind::kCounter},
        {"hal.tlb_misses", MetricKind::kCounter},
        {"hal.mmu_table_walks", MetricKind::kCounter},
        {"hal.mmu_faults", MetricKind::kCounter},
        {"pmk.spatial_violations", MetricKind::kCounter},
        {"hm.errors", MetricKind::kCounter},
        {"hm.errors_by_code", MetricKind::kCounter},
        {"hm.actions_by_kind", MetricKind::kCounter},
        {"telemetry.spans_recorded", MetricKind::kCounter},
        {"telemetry.spans_dropped", MetricKind::kCounter},
        {"telemetry.spans_open", MetricKind::kGauge},
        {"batch.configs", MetricKind::kCounter},
        {"batch.schedulable", MetricKind::kCounter},
        {"batch.unschedulable", MetricKind::kCounter},
        {"batch.infeasible", MetricKind::kCounter},
        {"batch.supply_cache_hits", MetricKind::kCounter},
        {"batch.supply_cache_misses", MetricKind::kCounter},
    }};

[[nodiscard]] const MetricInfo& info(Metric metric) {
  const auto i = static_cast<std::size_t>(metric);
  AIR_ASSERT(i < kCatalogue.size());
  return kCatalogue[i];
}

[[nodiscard]] std::size_t slot_index(std::int32_t index) {
  AIR_ASSERT_MSG(index >= -1, "metric index must be a partition/channel/code "
                              "value or -1 (module-wide)");
  return static_cast<std::size_t>(index + 1);
}

}  // namespace

std::string_view to_string(Metric metric) { return info(metric).name; }

MetricKind kind_of(Metric metric) { return info(metric).kind; }

void Histogram::observe(std::int64_t value) {
  ++count;
  sum += value;
  if (value < min) min = value;
  if (value > max) max = value;
  // bucket = floor(log2(value + 1)), clamped to [0, kBuckets).
  std::uint64_t v = value > 0 ? static_cast<std::uint64_t>(value) + 1 : 1;
  std::size_t bucket = 0;
  while (v > 1 && bucket + 1 < kBuckets) {
    v >>= 1;
    ++bucket;
  }
  ++buckets[bucket];
}

std::int64_t Histogram::upper_bound(std::size_t b) {
  if (b + 1 >= kBuckets) return std::numeric_limits<std::int64_t>::max();
  return static_cast<std::int64_t>((std::uint64_t{1} << (b + 1)) - 2);
}

const MetricSample* MetricsSnapshot::find(Metric metric,
                                          std::int32_t index) const {
  for (const MetricSample& s : samples) {
    if (s.metric == metric && s.index == index) return &s;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(Metric metric,
                                       std::int32_t index) const {
  const MetricSample* s = find(metric, index);
  return s != nullptr ? s->counter : 0;
}

void MetricsRegistry::Slot::ensure(std::size_t n, MetricKind kind) {
  if (touched.size() < n) touched.resize(n, false);
  switch (kind) {
    case MetricKind::kCounter:
      if (counters.size() < n) counters.resize(n, 0);
      break;
    case MetricKind::kGauge:
      if (gauges.size() < n) gauges.resize(n);
      break;
    case MetricKind::kHistogram:
      if (histograms.size() < n) histograms.resize(n);
      break;
  }
}

std::uint64_t& MetricsRegistry::counter_slot(Metric metric,
                                             std::int32_t index) {
  AIR_ASSERT(kind_of(metric) == MetricKind::kCounter);
  Slot& slot = slots_[static_cast<std::size_t>(metric)];
  const std::size_t i = slot_index(index);
  slot.ensure(i + 1, MetricKind::kCounter);
  slot.touched[i] = true;
  return slot.counters[i];
}

void MetricsRegistry::set(Metric metric, std::int32_t index,
                          std::int64_t value) {
  if (!enabled_) return;
  AIR_ASSERT(kind_of(metric) == MetricKind::kGauge);
  Slot& slot = slots_[static_cast<std::size_t>(metric)];
  const std::size_t i = slot_index(index);
  slot.ensure(i + 1, MetricKind::kGauge);
  slot.touched[i] = true;
  Gauge& gauge = slot.gauges[i];
  gauge.last = value;
  if (value > gauge.max) gauge.max = value;
  ++gauge.samples;
}

void MetricsRegistry::observe(Metric metric, std::int32_t index,
                              std::int64_t value) {
  if (!enabled_) return;
  AIR_ASSERT(kind_of(metric) == MetricKind::kHistogram);
  Slot& slot = slots_[static_cast<std::size_t>(metric)];
  const std::size_t i = slot_index(index);
  slot.ensure(i + 1, MetricKind::kHistogram);
  slot.touched[i] = true;
  slot.histograms[i].observe(value);
}

std::uint64_t MetricsRegistry::counter_value(Metric metric,
                                             std::int32_t index) const {
  AIR_ASSERT(kind_of(metric) == MetricKind::kCounter);
  const Slot& slot = slots_[static_cast<std::size_t>(metric)];
  const std::size_t i = slot_index(index);
  if (i >= slot.counters.size() || !slot.touched[i]) return 0;
  return slot.counters[i];
}

std::uint64_t MetricsRegistry::counter_total(Metric metric) const {
  AIR_ASSERT(kind_of(metric) == MetricKind::kCounter);
  const Slot& slot = slots_[static_cast<std::size_t>(metric)];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < slot.counters.size(); ++i) {
    if (slot.touched[i]) total += slot.counters[i];
  }
  return total;
}

const Histogram* MetricsRegistry::histogram(Metric metric,
                                            std::int32_t index) const {
  AIR_ASSERT(kind_of(metric) == MetricKind::kHistogram);
  const Slot& slot = slots_[static_cast<std::size_t>(metric)];
  const std::size_t i = slot_index(index);
  if (i >= slot.histograms.size() || !slot.touched[i]) return nullptr;
  return &slot.histograms[i];
}

MetricsSnapshot MetricsRegistry::snapshot(Ticks now) const {
  MetricsSnapshot snap;
  snap.time = now;
  for (std::size_t m = 0; m < slots_.size(); ++m) {
    const Metric metric = static_cast<Metric>(m);
    const MetricKind kind = kind_of(metric);
    const Slot& slot = slots_[m];
    for (std::size_t i = 0; i < slot.touched.size(); ++i) {
      if (!slot.touched[i]) continue;
      MetricSample sample;
      sample.metric = metric;
      sample.index = static_cast<std::int32_t>(i) - 1;
      sample.kind = kind;
      switch (kind) {
        case MetricKind::kCounter: sample.counter = slot.counters[i]; break;
        case MetricKind::kGauge: sample.gauge = slot.gauges[i]; break;
        case MetricKind::kHistogram:
          sample.histogram = slot.histograms[i];
          break;
      }
      snap.samples.push_back(std::move(sample));
    }
  }
  return snap;
}

void MetricsRegistry::clear() {
  for (Slot& slot : slots_) slot = {};
}

}  // namespace air::telemetry
