// Causal span layer (observability).
//
// Where the metrics registry answers "how much" and the event trace answers
// "what happened", spans answer *why*: every partition window, deadline
// episode (job), interpartition message leg and HM handler invocation is a
// tick-stamped span with a parent link, and message spans additionally carry
// a trace id that follows the payload across the router and the simulated
// bus into other modules of a World (the TraceContext rides inside
// ipc::Message and bus frames). On a PAL deadline violation the system layer
// walks the causal links backwards and attaches a structured root-cause
// chain to the miss ("job preempted by partition window end -> window
// shrunk by mode switch -> switch requested by ..."), which is what the
// post-mortem analyzer (tools/air-analyze) renders.
//
// Discipline is identical to the metrics registry: layers hold a nullable
// SpanRecorder* and pay one branch when spans are off; there is no wall
// clock anywhere, so span streams are byte-identical across runs and with
// the time warp on or off (every span-generating action happens on a
// stepped tick -- the warp's quiescence conditions guarantee it).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/arena.hpp"
#include "util/ring_buffer.hpp"
#include "util/trace.hpp"
#include "util/types.hpp"

namespace air::telemetry {

/// Span identifier: 0 = none. Ids are namespaced by the recorder's origin
/// ((origin + 1) << 32 | sequence) so spans from different modules of a
/// World -- and from the World's own bus recorder -- never collide and can
/// be joined offline by the analyzer.
using SpanId = std::uint64_t;

enum class SpanKind : std::uint8_t {
  kPartitionWindow = 0,  // a = partition
  kJob,                  // a = partition, b = process, c = absolute deadline
  kMsgSend,              // a = partition, b = port, c = payload bytes
  kMsgRouterHop,         // a = channel (-1 remote arrival), b = destination
                         //   count, c = payload bytes
  kMsgBusTransit,        // a = sending module, b = destination module,
                         //   c = payload bytes
  kMsgReceive,           // a = partition, b = port, c = payload bytes
  kHmHandler,            // a = partition, b = process, c = error code
  kScheduleSwitch,       // a = new schedule, b = old schedule
  kHealth,               // a = partition (-1 wide), b = Watchdog, c = value
  kCount
};

[[nodiscard]] std::string_view to_string(SpanKind kind);

enum class SpanStatus : std::uint8_t {
  kOpen = 0,      // still running
  kOk,            // completed normally
  kDeadlineMiss,  // job span retired by Algorithm 3
  kAborted,       // superseded / torn down (partition reset, lost frame)
};

[[nodiscard]] std::string_view to_string(SpanStatus status);

struct Span {
  SpanId id{0};
  SpanId parent{0};          // causal parent (0 = root)
  std::uint64_t trace_id{0};  // message flow id (0 = not part of a flow)
  SpanKind kind{SpanKind::kPartitionWindow};
  SpanStatus status{SpanStatus::kOpen};
  Ticks start{0};
  Ticks end{-1};  // -1 while open
  std::int64_t a{-1};
  std::int64_t b{-1};
  std::int64_t c{-1};
  // Interned (DESIGN.md §12): spans are trivially copyable records and a
  // steady-state flight retires them without touching the heap.
  InternedString label;
};

/// One step of a root-cause chain. `what` is a token of the chain grammar
/// (DESIGN.md "Observability"): deadline_miss, job_released,
/// window_end_preemption, partition_inactive, schedule_switch, requested_by.
/// Both strings live in the recorder's arena (SpanRecorder::intern).
struct CauseLink {
  InternedString what;
  SpanId span{0};  // causal span the link points at (0 = none recorded)
  Ticks at{-1};
  InternedString detail;
};

/// A deadline miss with its root-cause chain, built at detection time by
/// walking the recorder's causal caches backwards.
struct Anomaly {
  Ticks detected_at{0};
  std::int32_t partition{-1};
  std::int32_t process{-1};
  Ticks deadline{-1};
  std::vector<CauseLink> chain;  // first link is always the miss itself
};

class SpanRecorder {
 public:
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Id namespace of this recorder (module id; the World bus recorder uses
  /// kBusOrigin). Set once, before recording.
  void set_origin(std::uint32_t origin) { origin_ = origin; }
  [[nodiscard]] std::uint32_t origin() const { return origin_; }

  /// Reserved origin for the World's bus-transit recorder.
  static constexpr std::uint32_t kBusOrigin = 0xFFFF;

  /// Bounded mode: retain at most `capacity` closed spans (newest win);
  /// evictions are counted exactly in dropped_spans(). 0 = unbounded.
  void set_capacity(std::size_t capacity);

  /// Mirror every span retirement into `trace` as a debug-severity kSpan
  /// event -- the flight recorder then shows span activity in context (and
  /// its severity routing keeps such floods out of the critical ring).
  void set_trace(util::Trace* trace) { trace_ = trace; }

  /// Use `arena` (borrowed, must outlive this recorder and every retained
  /// span/anomaly) for label storage instead of the lazily created private
  /// one. Call before the first labelled span is recorded.
  void set_arena(StringArena* arena) { arena_ = arena; }
  /// Arena backing labels and cause links (nullptr until first intern).
  [[nodiscard]] const StringArena* arena() const { return arena_; }
  /// Intern free text (labels, CauseLink what/detail) into the arena.
  InternedString intern(std::string_view text);

  /// Open a span. Returns 0 when disabled. Message-kind spans passed
  /// trace_id 0 become their own flow root (trace_id = id).
  SpanId begin(SpanKind kind, Ticks start, SpanId parent = 0,
               std::uint64_t trace_id = 0, std::int64_t a = -1,
               std::int64_t b = -1, std::int64_t c = -1,
               std::string_view label = {});

  /// Update the payload of an open span (no-op for unknown/closed ids).
  void annotate(SpanId id, std::int64_t a, std::int64_t b, std::int64_t c);

  /// Close an open span (no-op for unknown ids -- a span may have been
  /// retired through another path already).
  void end(SpanId id, Ticks end, SpanStatus status = SpanStatus::kOk);

  /// Zero-duration span (events that are points on the tick axis).
  SpanId instant(SpanKind kind, Ticks at, SpanId parent = 0,
                 std::uint64_t trace_id = 0, std::int64_t a = -1,
                 std::int64_t b = -1, std::int64_t c = -1,
                 std::string_view label = {});

  // --- causal brokerage between layers -------------------------------
  // Scalar caches maintained by begin()/end() so chain building never has
  // to look up a span that a bounded recorder may already have evicted.

  /// Open window span of `partition` (0 = partition not in a window).
  [[nodiscard]] SpanId current_window(std::int32_t partition) const;
  /// Copy of the last *closed* window span of `partition` (id 0 = none).
  [[nodiscard]] Span last_window(std::int32_t partition) const;
  /// Copy of the last span of `kind` that was closed (id 0 = none).
  [[nodiscard]] Span last_ended(SpanKind kind) const;

  /// One-shot latch: the span that caused the HM report about to be filed
  /// (set by the PAL immediately before invoking HM_DEADLINEVIOLATED,
  /// consumed by the Health Monitor when it records its handler span).
  void set_pending_cause(SpanId id) { pending_cause_ = id; }
  [[nodiscard]] SpanId take_pending_cause() {
    const SpanId id = pending_cause_;
    pending_cause_ = 0;
    return id;
  }

  /// The schedule-switch span opened by SET_MODULE_SCHEDULE and closed by
  /// the scheduler when the switch takes effect at the MTF boundary.
  void set_pending_schedule_switch(SpanId id) { pending_switch_ = id; }
  [[nodiscard]] SpanId take_pending_schedule_switch() {
    const SpanId id = pending_switch_;
    pending_switch_ = 0;
    return id;
  }

  void add_anomaly(Anomaly anomaly);
  [[nodiscard]] const std::vector<Anomaly>& anomalies() const {
    return anomalies_;
  }

  // --- inspection ----------------------------------------------------
  [[nodiscard]] const Span* find_open(SpanId id) const;
  /// Retained closed spans, in retirement order. In bounded mode this is a
  /// lazily materialised view of the ring (rebuilt after retirements); in
  /// unbounded mode it is the backing vector itself.
  [[nodiscard]] const std::vector<Span>& closed() const;
  /// Copies of the still-open spans, in opening order.
  [[nodiscard]] std::vector<Span> open_spans() const;

  /// Spans ever closed (retained + dropped), monotonic.
  [[nodiscard]] std::uint64_t recorded_spans() const { return closed_total_; }
  /// Exact count of closed spans evicted in bounded mode.
  [[nodiscard]] std::uint64_t dropped_spans() const { return dropped_; }
  [[nodiscard]] std::size_t open_count() const { return open_.size(); }

  void clear();

 private:
  void retire(Span span);

  bool enabled_{true};
  std::uint32_t origin_{0};
  std::uint64_t seq_{0};
  std::size_t capacity_{0};
  util::Trace* trace_{nullptr};
  StringArena* arena_{nullptr};
  std::unique_ptr<StringArena> owned_arena_;
  std::vector<Span> open_;
  // Unbounded-mode storage; in bounded mode, the lazily rebuilt view of
  // ring_ (mutable so the const closed() accessor can refresh it). Bounded
  // retirement is a preallocated ring write -- no heap traffic per span.
  mutable std::vector<Span> closed_;
  mutable bool view_dirty_{false};
  std::unique_ptr<util::RingBuffer<Span>> ring_;
  std::uint64_t closed_total_{0};
  std::uint64_t dropped_{0};
  std::array<Span, static_cast<std::size_t>(SpanKind::kCount)> last_ended_;
  // Flat keyed-by-partition caches (a handful of partitions; linear scan
  // beats std::map node churn and keeps the steady state allocation-free).
  std::vector<std::pair<std::int32_t, SpanId>> current_window_;
  std::vector<std::pair<std::int32_t, Span>> last_window_;
  SpanId pending_cause_{0};
  SpanId pending_switch_{0};
  std::vector<Anomaly> anomalies_;
};

/// Deterministic JSON export: {"meta": ..., "spans": [...] (closed + open,
/// ordered by (start, id)), "anomalies": [...]}. This is the span artifact
/// tools/air-analyze ingests.
[[nodiscard]] std::string spans_to_json(const SpanRecorder& spans,
                                        int indent = 2);

}  // namespace air::telemetry
