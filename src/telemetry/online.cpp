#include "telemetry/online.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace air::telemetry {

namespace {

/// Deltas of two cumulative counters (the second sample of a pair never
/// regresses: every source is monotonic).
std::int64_t delta(std::uint64_t current, std::uint64_t previous) {
  return static_cast<std::int64_t>(current - previous);
}

}  // namespace

OnlinePlane::OnlinePlane(OnlineOptions options, std::string source,
                         std::size_t partition_count)
    : options_(options), source_(std::move(source)) {
  AIR_ASSERT_MSG(options_.window > 0, "online window must be positive");
  previous_.partitions.resize(partition_count);
  miss_rate_.assign(partition_count, Ewma{options_.ewma_shift});
}

void OnlinePlane::close_window(Ticks now, const OnlineSample& sample) {
  AIR_ASSERT_MSG(now == next_close_tick(),
                 "online window closed off its boundary tick");
  AIR_ASSERT(sample.partitions.size() == previous_.partitions.size());

  WindowDigest digest;
  digest.index = windows_closed_;
  digest.start = static_cast<Ticks>(windows_closed_) * options_.window;
  digest.end = now + 1;
  digest.partitions.resize(sample.partitions.size());
  for (std::size_t p = 0; p < sample.partitions.size(); ++p) {
    const OnlinePartitionSample& cur = sample.partitions[p];
    const OnlinePartitionSample& prev = previous_.partitions[p];
    PartitionWindow& pw = digest.partitions[p];
    pw.deadline_misses = delta(cur.deadline_misses, prev.deadline_misses);
    pw.deadline_checks = delta(cur.deadline_checks, prev.deadline_checks);
    pw.busy_ticks = delta(cur.busy_ticks, prev.busy_ticks);
    pw.slack_ticks = delta(cur.slack_ticks, prev.slack_ticks);
    pw.dispatches = delta(cur.dispatches, prev.dispatches);
    pw.hm_errors = delta(cur.hm_errors, prev.hm_errors);
    pw.deadline_slack = histogram_delta(cur.deadline_slack,
                                        prev.deadline_slack);
    miss_rate_[p].update(pw.deadline_misses);
    pw.miss_rate_scaled = miss_rate_[p].scaled();
  }
  digest.ipc_messages = delta(sample.ipc_messages, previous_.ipc_messages);
  digest.ipc_bytes = delta(sample.ipc_bytes, previous_.ipc_bytes);
  digest.ipc_drops = delta(sample.ipc_drops, previous_.ipc_drops);
  digest.spans_dropped = delta(sample.spans_dropped, previous_.spans_dropped);
  digest.trace_dropped = delta(sample.trace_dropped, previous_.trace_dropped);
  digest.trace_dropped_critical =
      delta(sample.trace_dropped_critical, previous_.trace_dropped_critical);

  if (sink_) sink_(digest_ndjson(source_, digest));

  // --- watchdogs, in fixed catalogue order (deterministic emission) ---
  const OnlineThresholds& t = options_.thresholds;
  for (std::size_t p = 0; p < digest.partitions.size(); ++p) {
    const PartitionWindow& pw = digest.partitions[p];
    if (pw.deadline_misses <= t.max_misses_per_window) continue;
    // Causally link the breach to the root-cause chain PR 3 attached to a
    // miss of this window (the latest one, matching the detection tick).
    std::uint64_t cause = 0;
    std::string via;
    if (spans_ != nullptr) {
      for (auto it = spans_->anomalies().rbegin();
           it != spans_->anomalies().rend(); ++it) {
        if (it->partition != static_cast<std::int32_t>(p)) continue;
        if (it->detected_at < digest.start || it->detected_at >= digest.end) {
          continue;
        }
        for (const CauseLink& link : it->chain) {
          if (link.span != 0) {
            cause = link.span;
            break;
          }
        }
        if (it->chain.size() > 1) via = " via " + it->chain.back().what.str();
        break;
      }
    }
    HealthEvent event;
    event.tick = now;
    event.kind = Watchdog::kDeadlineMissRate;
    event.partition = static_cast<std::int32_t>(p);
    event.value = pw.deadline_misses;
    event.threshold = t.max_misses_per_window;
    event.window_index = digest.index;
    event.cause = cause;
    event.detail = std::to_string(pw.deadline_misses) +
                   " deadline miss(es) in window " +
                   std::to_string(digest.index) + via;
    events_.push_back(event);
    if (trace_ != nullptr) {
      trace_->record(now, util::EventKind::kHealth, event.partition,
                     static_cast<std::int64_t>(event.kind), event.value,
                     event.detail);
    }
    if (spans_ != nullptr) {
      spans_->instant(SpanKind::kHealth, now, cause, 0, event.partition,
                      static_cast<std::int64_t>(event.kind), event.value,
                      std::string{to_string(event.kind)});
    }
    if (sink_) sink_(health_ndjson(source_, event));
  }
  for (std::size_t p = 0; p < digest.partitions.size(); ++p) {
    const Histogram& slack = digest.partitions[p].deadline_slack;
    if (slack.count == 0 || slack.min >= t.jitter_min_slack) continue;
    raise(now, Watchdog::kJitterBudget, static_cast<std::int32_t>(p),
          slack.min, t.jitter_min_slack,
          "window min deadline slack " + std::to_string(slack.min) +
              " below jitter budget " + std::to_string(t.jitter_min_slack));
  }
  std::int64_t hm_total = 0;
  for (const PartitionWindow& pw : digest.partitions) {
    hm_total += pw.hm_errors;
  }
  if (hm_total >= t.hm_storm_errors) {
    raise(now, Watchdog::kHmErrorStorm, -1, hm_total, t.hm_storm_errors,
          std::to_string(hm_total) + " HM report(s) in one window");
  }
  if (digest.spans_dropped >= t.span_drop_limit) {
    raise(now, Watchdog::kSpanDropPressure, -1, digest.spans_dropped,
          t.span_drop_limit,
          std::to_string(digest.spans_dropped) +
              " span eviction(s) in one window");
  } else if (digest.trace_dropped_critical > 0) {
    raise(now, Watchdog::kSpanDropPressure, -1,
          digest.trace_dropped_critical, 1,
          std::to_string(digest.trace_dropped_critical) +
              " critical trace eviction(s) in one window");
  }

  digests_.push_back(std::move(digest));
  previous_ = sample;
  ++windows_closed_;
}

void OnlinePlane::raise(Ticks now, Watchdog kind, std::int32_t partition,
                        std::int64_t value, std::int64_t threshold,
                        std::string detail) {
  HealthEvent event;
  event.tick = now;
  event.kind = kind;
  event.partition = partition;
  event.value = value;
  event.threshold = threshold;
  event.window_index = windows_closed_;
  event.detail = std::move(detail);
  events_.push_back(event);
  if (trace_ != nullptr) {
    trace_->record(now, util::EventKind::kHealth, partition,
                   static_cast<std::int64_t>(kind), value,
                   events_.back().detail);
  }
  if (spans_ != nullptr) {
    spans_->instant(SpanKind::kHealth, now, 0, 0, partition,
                    static_cast<std::int64_t>(kind), value,
                    std::string{to_string(kind)});
  }
  if (sink_) sink_(health_ndjson(source_, events_.back()));
}

std::string OnlinePlane::summary_line() const {
  char line[192];
  if (events_.empty()) {
    std::snprintf(line, sizeof line,
                  "  online: windows=%llu (length %lld) breaches=0\n",
                  static_cast<unsigned long long>(windows_closed_),
                  static_cast<long long>(options_.window));
  } else {
    const HealthEvent& last = events_.back();
    std::snprintf(
        line, sizeof line,
        "  online: windows=%llu (length %lld) breaches=%zu "
        "last=%s@%lld (partition %d)\n",
        static_cast<unsigned long long>(windows_closed_),
        static_cast<long long>(options_.window), events_.size(),
        std::string{to_string(last.kind)}.c_str(),
        static_cast<long long>(last.tick), last.partition);
  }
  return line;
}

BusPlane::BusPlane(OnlineOptions options, std::string source)
    : options_(options), source_(std::move(source)) {
  AIR_ASSERT_MSG(options_.window > 0, "online window must be positive");
}

void BusPlane::close_through(Ticks completed, const BusSample& sample) {
  while (next_close_tick() <= completed) {
    close_one(next_close_tick(), sample);
  }
}

void BusPlane::close_one(Ticks now, const BusSample& sample) {
  WindowDigest digest;
  digest.index = windows_closed_;
  digest.start = static_cast<Ticks>(windows_closed_) * options_.window;
  digest.end = now + 1;
  digest.bus_frames_sent = delta(sample.frames_sent, previous_.frames_sent);
  digest.bus_frames_delivered =
      delta(sample.frames_delivered, previous_.frames_delivered);
  digest.bus_backlog = static_cast<std::int64_t>(sample.backlog);
  digest.spans_dropped = delta(sample.spans_dropped, previous_.spans_dropped);
  digest.stations.resize(sample.stations.size());
  for (std::size_t s = 0; s < sample.stations.size(); ++s) {
    const StationWindow& cur = sample.stations[s];
    StationWindow& out = digest.stations[s];
    out.module = cur.module;
    out.backlog = cur.backlog;
    if (s < previous_.stations.size()) {
      const StationWindow& prev = previous_.stations[s];
      out.frames_sent = cur.frames_sent - prev.frames_sent;
      out.frames_delivered = cur.frames_delivered - prev.frames_delivered;
    } else {
      out.frames_sent = cur.frames_sent;
      out.frames_delivered = cur.frames_delivered;
    }
  }

  if (sink_) sink_(digest_ndjson(source_, digest));

  const OnlineThresholds& t = options_.thresholds;
  if (digest.bus_backlog >= t.bus_backlog_limit) {
    raise(now, Watchdog::kBusSaturation, digest.bus_backlog,
          t.bus_backlog_limit,
          "tx backlog " + std::to_string(digest.bus_backlog) +
              " at window boundary");
  }
  if (digest.bus_backlog > 0 && digest.bus_backlog > last_backlog_) {
    ++growth_streak_;
  } else {
    growth_streak_ = 0;
  }
  last_backlog_ = digest.bus_backlog;
  if (growth_streak_ >= t.bus_growth_windows) {
    raise(now, Watchdog::kBusBacklogGrowth, digest.bus_backlog,
          t.bus_growth_windows,
          "backlog grew across " + std::to_string(growth_streak_) +
              " consecutive windows");
    growth_streak_ = 0;  // re-arm: the next breach needs a fresh streak
  }
  if (digest.spans_dropped >= t.span_drop_limit) {
    raise(now, Watchdog::kSpanDropPressure, digest.spans_dropped,
          t.span_drop_limit,
          std::to_string(digest.spans_dropped) +
              " bus span eviction(s) in one window");
  }

  digests_.push_back(std::move(digest));
  previous_ = sample;
  ++windows_closed_;
}

void BusPlane::raise(Ticks now, Watchdog kind, std::int64_t value,
                     std::int64_t threshold, std::string detail) {
  HealthEvent event;
  event.tick = now;
  event.kind = kind;
  event.partition = -1;
  event.value = value;
  event.threshold = threshold;
  event.window_index = windows_closed_;
  event.detail = std::move(detail);
  events_.push_back(event);
  if (spans_ != nullptr) {
    spans_->instant(SpanKind::kHealth, now, 0, 0, -1,
                    static_cast<std::int64_t>(kind), value,
                    std::string{to_string(kind)});
  }
  if (sink_) sink_(health_ndjson(source_, events_.back()));
}

std::string BusPlane::summary_line() const {
  char line[160];
  std::snprintf(line, sizeof line,
                "  bus online: windows=%llu (length %lld) breaches=%zu\n",
                static_cast<unsigned long long>(windows_closed_),
                static_cast<long long>(options_.window), events_.size());
  return line;
}

}  // namespace air::telemetry
