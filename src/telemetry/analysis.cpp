#include "telemetry/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

// Same GCC 12 -Wmaybe-uninitialized false positive as trace_export.cpp
// (variant move machinery inside json::Value at -O2, GCC PR 105562 family).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace air::telemetry {

namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

bool parse_into(const std::string& text, Value& out, std::string* error) {
  if (text.empty()) {
    out = Value{};
    return true;
  }
  util::json::ParseResult result = util::json::parse(text);
  if (!result.ok()) {
    if (error != nullptr) *error = result.error->to_string();
    return false;
  }
  out = std::move(*result.value);
  return true;
}

/// One span row as exported by spans_to_json, plus where it came from.
struct Row {
  std::uint64_t id{0};
  std::uint64_t parent{0};
  std::uint64_t trace_id{0};
  std::string kind;
  std::string status;
  std::int64_t start{0};
  std::int64_t end{-1};
  std::int64_t a{-1};
  std::int64_t b{-1};
  std::int64_t c{-1};
  std::string label;
  std::size_t module{0};  // index into input.modules; modules.size() = bus
};

std::vector<Row> rows_of(const Value& spans_doc, std::size_t module) {
  std::vector<Row> rows;
  const Value* spans = spans_doc.find("spans");
  if (spans == nullptr || !spans->is_array()) return rows;
  for (const Value& v : spans->as_array()) {
    if (!v.is_object()) continue;
    Row row;
    row.id = static_cast<std::uint64_t>(v.get_int("id", 0));
    row.parent = static_cast<std::uint64_t>(v.get_int("parent", 0));
    row.trace_id = static_cast<std::uint64_t>(v.get_int("trace_id", 0));
    row.kind = v.get_string("kind", "");
    row.status = v.get_string("status", "");
    row.start = v.get_int("start", 0);
    row.end = v.get_int("end", -1);
    row.a = v.get_int("a", -1);
    row.b = v.get_int("b", -1);
    row.c = v.get_int("c", -1);
    row.label = v.get_string("label", "");
    row.module = module;
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Counter lookup in a metrics snapshot document (-1 when absent).
std::int64_t counter_of(const Value& metrics_doc, std::string_view name,
                        std::int64_t index) {
  const Value* metrics = metrics_doc.find("metrics");
  if (metrics == nullptr || !metrics->is_array()) return -1;
  for (const Value& v : metrics->as_array()) {
    if (v.get_string("name", "") == name && v.get_int("index", -2) == index) {
      return v.get_int("value", -1);
    }
  }
  return -1;
}

// ---------- Chrome Trace Event emission ----------

Value metadata(const char* what, std::int64_t pid, std::int64_t tid,
               std::string name) {
  Object event;
  event["name"] = Value{std::string{what}};
  event["ph"] = Value{"M"};
  event["pid"] = Value{pid};
  if (tid >= 0) event["tid"] = Value{tid};
  Object args;
  args["name"] = Value{std::move(name)};
  event["args"] = Value{std::move(args)};
  return Value{std::move(event)};
}

Object event_at(std::string name, const char* ph, double ts, std::int64_t pid,
                std::int64_t tid) {
  Object event;
  event["name"] = Value{std::move(name)};
  event["ph"] = Value{ph};
  event["ts"] = Value{ts};
  event["pid"] = Value{pid};
  event["tid"] = Value{tid};
  return event;
}

std::string hex_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Control-plane track (schedule switches, module-level HM reports).
constexpr std::int64_t kControlTid = 900;

void emit_span_events(const Row& row, double tick_us, Array& events) {
  const auto pid = static_cast<std::int64_t>(row.module);
  const double ts = static_cast<double>(row.start) * tick_us;
  const double dur =
      row.end >= row.start ? static_cast<double>(row.end - row.start) * tick_us
                           : 0.0;
  if (row.kind == "partition_window") {
    if (row.end < 0) return;  // still open at export time
    Object slice =
        event_at("P" + std::to_string(row.a + 1) + " window", "X", ts, pid,
                 row.a);
    slice["dur"] = Value{dur};
    events.push_back(Value{std::move(slice)});
    return;
  }
  if (row.kind == "job") {
    if (row.end < 0) return;
    const std::string name =
        "P" + std::to_string(row.a + 1) + " job proc" + std::to_string(row.b);
    Object begin = event_at(name, "b", ts, pid, row.a);
    begin["cat"] = Value{"job"};
    begin["id"] = Value{hex_id(row.id)};
    Object args;
    args["deadline"] = Value{row.c};
    args["status"] = Value{row.status};
    begin["args"] = Value{std::move(args)};
    events.push_back(Value{std::move(begin)});
    Object finish = event_at(name, "e",
                             static_cast<double>(row.end) * tick_us, pid,
                             row.a);
    finish["cat"] = Value{"job"};
    finish["id"] = Value{hex_id(row.id)};
    events.push_back(Value{std::move(finish)});
    return;
  }
  if (row.kind == "msg_send" || row.kind == "msg_router_hop" ||
      row.kind == "msg_bus_transit" || row.kind == "msg_receive") {
    const std::int64_t tid =
        row.kind == "msg_bus_transit" ? 0 : std::max<std::int64_t>(row.a, 0);
    std::string name = row.kind;
    if (row.kind == "msg_bus_transit") {
      name += " M" + std::to_string(row.a) + "->M" + std::to_string(row.b);
    }
    Object slice = event_at(name, "X", ts, pid, tid);
    slice["dur"] = Value{dur};
    events.push_back(Value{std::move(slice)});
    // Flow arrow: start at the send leg, step through hops and transit,
    // terminate at the receive leg. Perfetto binds each to the slice above.
    const char* ph = row.kind == "msg_send"      ? "s"
                     : row.kind == "msg_receive" ? "f"
                                                 : "t";
    Object flow = event_at("msg flow", ph, ts, pid, tid);
    flow["cat"] = Value{"msg"};
    flow["id"] = Value{hex_id(row.trace_id)};
    if (row.kind == "msg_receive") flow["bp"] = Value{"e"};
    events.push_back(Value{std::move(flow)});
    return;
  }
  if (row.kind == "hm_handler") {
    Object event = event_at(row.label.empty() ? "HM handler"
                                              : "HM " + row.label,
                            "i", ts, pid, row.a >= 0 ? row.a : kControlTid);
    event["s"] = Value{"t"};
    events.push_back(Value{std::move(event)});
    return;
  }
  if (row.kind == "schedule_switch") {
    if (row.end < 0) return;  // switch requested but not yet in effect
    Object slice =
        event_at("schedule " + std::to_string(row.b) + " -> " +
                     std::to_string(row.a),
                 "X", ts, pid, kControlTid);
    slice["dur"] = Value{dur};
    events.push_back(Value{std::move(slice)});
  }
}

std::string fmt_ll(std::int64_t v) { return std::to_string(v); }

}  // namespace

bool AnalysisInput::add_module(std::string name, const std::string& trace_json,
                               const std::string& metrics_json,
                               const std::string& spans_json,
                               std::string* error) {
  ModuleArtifacts artifacts;
  artifacts.name = std::move(name);
  if (!parse_into(trace_json, artifacts.trace, error) ||
      !parse_into(metrics_json, artifacts.metrics, error) ||
      !parse_into(spans_json, artifacts.spans, error)) {
    return false;
  }
  modules.push_back(std::move(artifacts));
  return true;
}

bool AnalysisInput::set_bus_spans(const std::string& spans_json,
                                  std::string* error) {
  return parse_into(spans_json, bus_spans, error);
}

bool AnalysisInput::set_baseline(const std::string& metrics_json,
                                 std::string* error) {
  return parse_into(metrics_json, baseline, error);
}

AnalysisResult analyze(const AnalysisInput& input) {
  AnalysisResult result;
  const std::size_t bus_index = input.modules.size();

  // Gather every span row, tagged with its source.
  std::vector<Row> rows;
  for (std::size_t i = 0; i < input.modules.size(); ++i) {
    const std::vector<Row> module_rows = rows_of(input.modules[i].spans, i);
    rows.insert(rows.end(), module_rows.begin(), module_rows.end());
  }
  const std::vector<Row> bus_rows = rows_of(input.bus_spans, bus_index);
  rows.insert(rows.end(), bus_rows.begin(), bus_rows.end());
  std::stable_sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    if (x.start != y.start) return x.start < y.start;
    return x.id < y.id;
  });

  // ---------- Chrome trace ----------
  Array events;
  for (std::size_t i = 0; i < input.modules.size(); ++i) {
    events.push_back(metadata("process_name", static_cast<std::int64_t>(i),
                              -1, input.modules[i].name));
  }
  if (!bus_rows.empty()) {
    events.push_back(metadata(
        "process_name", static_cast<std::int64_t>(bus_index), -1, "bus"));
  }
  std::set<std::pair<std::int64_t, std::int64_t>> named_tracks;
  for (const Row& row : rows) {
    const auto pid = static_cast<std::int64_t>(row.module);
    const std::int64_t tid = row.kind == "schedule_switch" ? kControlTid
                             : row.kind == "msg_bus_transit"
                                 ? 0
                                 : std::max<std::int64_t>(row.a, 0);
    if (named_tracks.insert({pid, tid}).second) {
      events.push_back(metadata(
          "thread_name", pid, tid,
          row.module == bus_index ? "transit"
          : tid == kControlTid    ? "control"
                                  : "partition " + std::to_string(tid)));
    }
  }
  for (const Row& row : rows) emit_span_events(row, input.tick_us, events);

  // ---------- flow connectivity ----------
  struct Flow {
    std::set<std::uint32_t> origins;
    bool has_send{false};
    bool has_receive{false};
  };
  std::map<std::uint64_t, Flow> flows;
  for (const Row& row : rows) {
    if (row.trace_id == 0) continue;
    Flow& flow = flows[row.trace_id];
    flow.origins.insert(static_cast<std::uint32_t>((row.id >> 32) - 1));
    if (row.kind == "msg_send") flow.has_send = true;
    if (row.kind == "msg_receive") flow.has_receive = true;
  }
  for (const auto& [id, flow] : flows) {
    if (flow.origins.size() > 1) ++result.cross_module_flows;
    if (flow.has_receive && !flow.has_send) ++result.broken_flows;
  }

  // ---------- report ----------
  std::string& report = result.report;
  report += "AIR flight-data analysis\n";
  report += "========================\n";
  report += "modules: " + std::to_string(input.modules.size()) + "\n\n";

  report += "-- partition utilisation / jitter / slack --\n";
  report +=
      "module       part  util%   busy      slack     windows jitter  jobs  "
      "slack_min slack_avg\n";
  for (std::size_t i = 0; i < input.modules.size(); ++i) {
    const ModuleArtifacts& m = input.modules[i];
    // Partitions present in this module, from window/job spans and metrics.
    std::set<std::int64_t> partitions;
    for (const Row& row : rows) {
      if (row.module == i &&
          (row.kind == "partition_window" || row.kind == "job") &&
          row.a >= 0) {
        partitions.insert(row.a);
      }
    }
    for (std::int64_t index = 0;
         counter_of(m.metrics, "pmk.partition_busy_ticks", index) >= 0;
         ++index) {
      partitions.insert(index);
    }
    for (const std::int64_t partition : partitions) {
      const std::int64_t busy =
          counter_of(m.metrics, "pmk.partition_busy_ticks", partition);
      const std::int64_t slack =
          counter_of(m.metrics, "pmk.partition_slack_ticks", partition);
      // Window jitter: spread of start-to-start gaps between consecutive
      // windows (0 for a strictly periodic partition).
      std::vector<std::int64_t> starts;
      std::int64_t jobs = 0, job_slack_sum = 0, job_slack_min = -1,
                   job_count_ok = 0;
      for (const Row& row : rows) {
        if (row.module != i || row.a != partition) continue;
        if (row.kind == "partition_window") starts.push_back(row.start);
        if (row.kind == "job") {
          ++jobs;
          if (row.status == "ok" && row.c >= 0 && row.end >= 0) {
            const std::int64_t job_slack = row.c - row.end;
            job_slack_sum += job_slack;
            job_slack_min = job_count_ok == 0
                                ? job_slack
                                : std::min(job_slack_min, job_slack);
            ++job_count_ok;
          }
        }
      }
      std::int64_t jitter = 0;
      if (starts.size() >= 3) {
        std::int64_t min_gap = 0, max_gap = 0;
        for (std::size_t g = 1; g < starts.size(); ++g) {
          const std::int64_t gap = starts[g] - starts[g - 1];
          if (g == 1) {
            min_gap = max_gap = gap;
          } else {
            min_gap = std::min(min_gap, gap);
            max_gap = std::max(max_gap, gap);
          }
        }
        jitter = max_gap - min_gap;
      }
      const double util =
          busy >= 0 && slack >= 0 && busy + slack > 0
              ? 100.0 * static_cast<double>(busy) /
                    static_cast<double>(busy + slack)
              : 0.0;
      char line[200];
      std::snprintf(
          line, sizeof line,
          "%-12s %-5lld %6.1f  %-9lld %-9lld %-7zu %-7lld %-5lld %-9lld "
          "%-9lld\n",
          m.name.c_str(), static_cast<long long>(partition), util,
          static_cast<long long>(std::max<std::int64_t>(busy, 0)),
          static_cast<long long>(std::max<std::int64_t>(slack, 0)),
          starts.size(), static_cast<long long>(jitter),
          static_cast<long long>(jobs),
          static_cast<long long>(job_count_ok > 0 ? job_slack_min : 0),
          static_cast<long long>(
              job_count_ok > 0 ? job_slack_sum / job_count_ok : 0));
      report += line;
    }
  }

  report += "\n-- message flows --\n";
  report += "flows: " + std::to_string(flows.size()) + " total, " +
            std::to_string(result.cross_module_flows) + " cross-module, " +
            std::to_string(result.broken_flows) + " broken\n";

  report += "\n-- anomalies (deadline misses with root-cause chains) --\n";
  for (std::size_t i = 0; i < input.modules.size(); ++i) {
    const Value* anomalies = input.modules[i].spans.find("anomalies");
    if (anomalies == nullptr || !anomalies->is_array()) continue;
    std::size_t index = 0;
    for (const Value& v : anomalies->as_array()) {
      MissSummary miss;
      miss.module = input.modules[i].name;
      miss.partition = v.get_int("partition", -1);
      miss.process = v.get_int("process", -1);
      miss.detected_at = v.get_int("detected_at", -1);
      const Value* chain = v.find("chain");
      const std::size_t links =
          chain != nullptr && chain->is_array() ? chain->as_array().size() : 0;
      miss.chained = links >= 2;
      report += miss.module + ": miss #" + std::to_string(index + 1) +
                " t=" + fmt_ll(miss.detected_at) + " partition " +
                fmt_ll(miss.partition) + " process " + fmt_ll(miss.process) +
                " deadline " + fmt_ll(v.get_int("deadline", -1)) + "\n";
      if (links > 0) {
        for (const Value& link : chain->as_array()) {
          report += "    " + link.get_string("what", "?") + " @" +
                    fmt_ll(link.get_int("at", -1));
          const std::string detail = link.get_string("detail", "");
          if (!detail.empty()) report += "  (" + detail + ")";
          report += "\n";
        }
      } else {
        report += "    (no chain recorded)\n";
      }
      ++result.total_misses;
      // The first miss of a module may predate any causal history; every
      // later one must carry a chain -- that is the paper's Fig. 8 claim
      // and the CI gate.
      if (index > 0 && !miss.chained) ++result.unchained_misses;
      result.misses.push_back(std::move(miss));
      ++index;
    }
  }
  if (result.total_misses == 0) report += "none\n";
  report += "\nunchained misses (beyond first): " +
            std::to_string(result.unchained_misses) + "\n";

  report += "\n-- telemetry health --\n";
  for (std::size_t i = 0; i < input.modules.size(); ++i) {
    const ModuleArtifacts& m = input.modules[i];
    const Value* meta = m.spans.find("meta");
    const std::int64_t recorded =
        meta != nullptr ? meta->get_int("recorded", 0) : 0;
    const std::int64_t dropped =
        meta != nullptr ? meta->get_int("dropped", 0) : 0;
    const std::int64_t open = meta != nullptr ? meta->get_int("open", 0) : 0;
    report += m.name + ": spans recorded=" + fmt_ll(recorded) +
              " dropped=" + fmt_ll(dropped) + " open=" + fmt_ll(open) + "\n";
  }
  if (!input.bus_spans.is_null()) {
    const Value* meta = input.bus_spans.find("meta");
    if (meta != nullptr) {
      report += "bus: spans recorded=" +
                fmt_ll(meta->get_int("recorded", 0)) +
                " dropped=" + fmt_ll(meta->get_int("dropped", 0)) + "\n";
    }
  }

  if (!input.baseline.is_null()) {
    report += "\n-- slack vs baseline --\n";
    for (std::size_t i = 0; i < input.modules.size(); ++i) {
      const ModuleArtifacts& m = input.modules[i];
      for (std::int64_t partition = 0;; ++partition) {
        const std::int64_t current =
            counter_of(m.metrics, "pmk.partition_slack_ticks", partition);
        const std::int64_t base = counter_of(
            input.baseline, "pmk.partition_slack_ticks", partition);
        if (current < 0 && base < 0) break;
        char line[160];
        const bool regression = base > 0 && current >= 0 &&
                                current < base - base / 10;  // >10% worse
        std::snprintf(line, sizeof line,
                      "%s partition %lld: slack %lld (baseline %lld)%s\n",
                      m.name.c_str(), static_cast<long long>(partition),
                      static_cast<long long>(current),
                      static_cast<long long>(base),
                      regression ? "  REGRESSION" : "");
        report += line;
      }
    }
  }

  Object root;
  root["traceEvents"] = Value{std::move(events)};
  root["displayTimeUnit"] = Value{"ms"};
  result.chrome_trace = Value{std::move(root)}.dump(2);
  return result;
}

}  // namespace air::telemetry
