#include "telemetry/spans.hpp"

#include <algorithm>

#include "util/json.hpp"

// Same GCC 12 -Wmaybe-uninitialized false positive as trace_export.cpp
// (variant move machinery inside json::Value at -O2, GCC PR 105562 family).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace air::telemetry {

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kPartitionWindow: return "partition_window";
    case SpanKind::kJob: return "job";
    case SpanKind::kMsgSend: return "msg_send";
    case SpanKind::kMsgRouterHop: return "msg_router_hop";
    case SpanKind::kMsgBusTransit: return "msg_bus_transit";
    case SpanKind::kMsgReceive: return "msg_receive";
    case SpanKind::kHmHandler: return "hm_handler";
    case SpanKind::kScheduleSwitch: return "schedule_switch";
    case SpanKind::kHealth: return "health";
    case SpanKind::kCount: break;
  }
  return "unknown";
}

std::string_view to_string(SpanStatus status) {
  switch (status) {
    case SpanStatus::kOpen: return "open";
    case SpanStatus::kOk: return "ok";
    case SpanStatus::kDeadlineMiss: return "deadline_miss";
    case SpanStatus::kAborted: return "aborted";
  }
  return "unknown";
}

namespace {

bool is_message_kind(SpanKind kind) {
  return kind == SpanKind::kMsgSend || kind == SpanKind::kMsgRouterHop ||
         kind == SpanKind::kMsgBusTransit || kind == SpanKind::kMsgReceive;
}

}  // namespace

void SpanRecorder::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  if (capacity_ == 0) {
    // Back to unbounded: materialise the ring into the vector and drop it.
    if (ring_ != nullptr) {
      closed();  // refresh the view
      ring_.reset();
      view_dirty_ = false;
    }
    return;
  }
  auto ring = std::make_unique<util::RingBuffer<Span>>(capacity_);
  for (const Span& span : closed()) {
    if (ring->push_overwrite(span)) ++dropped_;
  }
  ring_ = std::move(ring);
  closed_.clear();
  view_dirty_ = true;
}

InternedString SpanRecorder::intern(std::string_view text) {
  if (text.empty()) return {};
  if (arena_ == nullptr) {
    owned_arena_ = std::make_unique<StringArena>();
    arena_ = owned_arena_.get();
  }
  return {arena_, arena_->intern(text)};
}

SpanId SpanRecorder::begin(SpanKind kind, Ticks start, SpanId parent,
                           std::uint64_t trace_id, std::int64_t a,
                           std::int64_t b, std::int64_t c,
                           std::string_view label) {
  if (!enabled_) return 0;
  Span span;
  span.id = ((static_cast<std::uint64_t>(origin_) + 1) << 32) | ++seq_;
  span.parent = parent;
  // A message span without a flow becomes its own flow root, so every leg
  // it hands the context to shares one trace id end to end.
  span.trace_id =
      (trace_id == 0 && is_message_kind(kind)) ? span.id : trace_id;
  span.kind = kind;
  span.start = start;
  span.a = a;
  span.b = b;
  span.c = c;
  span.label = intern(label);
  if (kind == SpanKind::kPartitionWindow) {
    const auto partition = static_cast<std::int32_t>(a);
    const SpanId id = span.id;
    auto it = std::find_if(
        current_window_.begin(), current_window_.end(),
        [partition](const auto& e) { return e.first == partition; });
    if (it != current_window_.end()) {
      it->second = id;
    } else {
      current_window_.emplace_back(partition, id);
    }
  }
  const SpanId id = span.id;
  open_.push_back(span);
  return id;
}

void SpanRecorder::annotate(SpanId id, std::int64_t a, std::int64_t b,
                            std::int64_t c) {
  if (!enabled_ || id == 0) return;
  for (Span& span : open_) {
    if (span.id == id) {
      span.a = a;
      span.b = b;
      span.c = c;
      return;
    }
  }
}

void SpanRecorder::end(SpanId id, Ticks end, SpanStatus status) {
  if (!enabled_ || id == 0) return;
  const auto it = std::find_if(open_.begin(), open_.end(),
                               [id](const Span& s) { return s.id == id; });
  if (it == open_.end()) return;
  Span span = std::move(*it);
  open_.erase(it);
  span.end = end;
  span.status = status;
  retire(std::move(span));
}

SpanId SpanRecorder::instant(SpanKind kind, Ticks at, SpanId parent,
                             std::uint64_t trace_id, std::int64_t a,
                             std::int64_t b, std::int64_t c,
                             std::string_view label) {
  const SpanId id = begin(kind, at, parent, trace_id, a, b, c, label);
  end(id, at, SpanStatus::kOk);
  return id;
}

SpanId SpanRecorder::current_window(std::int32_t partition) const {
  for (const auto& [key, id] : current_window_) {
    if (key == partition) return id;
  }
  return 0;
}

Span SpanRecorder::last_window(std::int32_t partition) const {
  for (const auto& [key, span] : last_window_) {
    if (key == partition) return span;
  }
  return Span{};
}

Span SpanRecorder::last_ended(SpanKind kind) const {
  return last_ended_[static_cast<std::size_t>(kind)];
}

void SpanRecorder::add_anomaly(Anomaly anomaly) {
  if (!enabled_) return;
  anomalies_.push_back(std::move(anomaly));
}

const Span* SpanRecorder::find_open(SpanId id) const {
  for (const Span& span : open_) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

std::vector<Span> SpanRecorder::open_spans() const { return open_; }

void SpanRecorder::clear() {
  seq_ = 0;
  open_.clear();
  closed_.clear();
  if (ring_ != nullptr) {
    ring_->clear();
    view_dirty_ = false;
  }
  closed_total_ = 0;
  dropped_ = 0;
  last_ended_.fill(Span{});
  current_window_.clear();
  last_window_.clear();
  pending_cause_ = 0;
  pending_switch_ = 0;
  anomalies_.clear();
}

const std::vector<Span>& SpanRecorder::closed() const {
  if (ring_ != nullptr && view_dirty_) {
    closed_.clear();
    closed_.reserve(ring_->size());
    for (std::size_t i = 0; i < ring_->size(); ++i) {
      closed_.push_back(ring_->at(i));
    }
    view_dirty_ = false;
  }
  return closed_;
}

void SpanRecorder::retire(Span span) {
  if (span.kind == SpanKind::kPartitionWindow) {
    const auto partition = static_cast<std::int32_t>(span.a);
    for (auto& [key, id] : current_window_) {
      if (key == partition) {
        // Entries are reset, never erased: the partition set is fixed at
        // configuration time, so the cache stops allocating after warm-up.
        if (id == span.id) id = 0;
        break;
      }
    }
    bool found = false;
    for (auto& [key, cached] : last_window_) {
      if (key == partition) {
        cached = span;
        found = true;
        break;
      }
    }
    if (!found) last_window_.emplace_back(partition, span);
  }
  last_ended_[static_cast<std::size_t>(span.kind)] = span;
  if (trace_ != nullptr) {
    trace_->record(span.end, util::EventKind::kSpan,
                   static_cast<std::int64_t>(span.kind), span.a,
                   static_cast<std::int64_t>(span.id));
  }
  ++closed_total_;
  if (ring_ != nullptr) {
    if (ring_->push_overwrite(span)) ++dropped_;
    view_dirty_ = true;
    return;
  }
  closed_.push_back(span);
}

namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

Value span_to_value(const Span& span) {
  Object row;
  row["id"] = Value{static_cast<std::int64_t>(span.id)};
  row["parent"] = Value{static_cast<std::int64_t>(span.parent)};
  row["trace_id"] = Value{static_cast<std::int64_t>(span.trace_id)};
  row["kind"] = Value{std::string{to_string(span.kind)}};
  row["status"] = Value{std::string{to_string(span.status)}};
  row["start"] = Value{span.start};
  row["end"] = Value{span.end};
  row["a"] = Value{span.a};
  row["b"] = Value{span.b};
  row["c"] = Value{span.c};
  if (!span.label.empty()) row["label"] = Value{span.label.str()};
  return Value{std::move(row)};
}

Value anomaly_to_value(const Anomaly& anomaly) {
  Object row;
  row["detected_at"] = Value{anomaly.detected_at};
  row["partition"] = Value{static_cast<std::int64_t>(anomaly.partition)};
  row["process"] = Value{static_cast<std::int64_t>(anomaly.process)};
  row["deadline"] = Value{anomaly.deadline};
  Array chain;
  for (const CauseLink& link : anomaly.chain) {
    Object step;
    step["what"] = Value{link.what.str()};
    step["span"] = Value{static_cast<std::int64_t>(link.span)};
    step["at"] = Value{link.at};
    if (!link.detail.empty()) step["detail"] = Value{link.detail.str()};
    chain.push_back(Value{std::move(step)});
  }
  row["chain"] = Value{std::move(chain)};
  return Value{std::move(row)};
}

}  // namespace

std::string spans_to_json(const SpanRecorder& spans, int indent) {
  std::vector<Span> all(spans.closed().begin(), spans.closed().end());
  const std::vector<Span> open = spans.open_spans();
  all.insert(all.end(), open.begin(), open.end());
  // Retirement order depends on when spans close; (start, id) is the stable
  // causal order the analyzer and the equivalence suites want.
  std::stable_sort(all.begin(), all.end(), [](const Span& x, const Span& y) {
    if (x.start != y.start) return x.start < y.start;
    return x.id < y.id;
  });

  Object meta;
  meta["origin"] = Value{static_cast<std::int64_t>(spans.origin())};
  meta["recorded"] = Value{static_cast<std::int64_t>(spans.recorded_spans())};
  meta["dropped"] = Value{static_cast<std::int64_t>(spans.dropped_spans())};
  meta["open"] = Value{static_cast<std::int64_t>(spans.open_count())};

  Array rows;
  for (const Span& span : all) rows.push_back(span_to_value(span));
  Array anomalies;
  for (const Anomaly& anomaly : spans.anomalies()) {
    anomalies.push_back(anomaly_to_value(anomaly));
  }

  Object root;
  root["meta"] = Value{std::move(meta)};
  root["spans"] = Value{std::move(rows)};
  root["anomalies"] = Value{std::move(anomalies)};
  return Value{std::move(root)}.dump(indent);
}

}  // namespace air::telemetry
