// Post-mortem flight-data analysis (the engine behind tools/air-analyze).
//
// Ingests the JSON artifacts a recorded mission leaves behind -- per-module
// event trace (util::to_json), metrics snapshot (telemetry::to_json) and
// span export (telemetry::spans_to_json), plus the World bus recorder's
// spans -- and produces:
//
//   * a Chrome Trace Event document: partition windows as duration slices,
//     jobs as async spans, message legs joined into flow arrows ("s"/"t"/
//     "f" events keyed by trace id, connected across modules through the
//     bus), HM handler invocations and schedule switches as instants;
//   * a plain-text report: per-partition utilisation / window-jitter / job-
//     slack tables, message-flow connectivity, and an anomaly section that
//     renders each deadline miss with its root-cause chain;
//   * gate counters for CI: deadline misses whose root-cause chain is empty
//     (beyond the first miss of a module, which may lack history).
//
// Everything is pure string/JSON transformation -- no filesystem access --
// so the analyzer is unit-testable; tools/air_analyze.cpp does the file IO.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace air::telemetry {

/// Parsed artifacts of one recorded module.
struct ModuleArtifacts {
  std::string name;
  util::json::Value trace;    // flat event array (util::to_json)
  util::json::Value metrics;  // metrics snapshot (telemetry::to_json)
  util::json::Value spans;    // span export (telemetry::spans_to_json)
};

/// Everything analyze() looks at. Use the add_* helpers to parse raw JSON
/// text with error reporting; the members stay public for tests that build
/// documents programmatically.
struct AnalysisInput {
  std::vector<ModuleArtifacts> modules;
  util::json::Value bus_spans;  // span export of the World bus (optional)
  util::json::Value baseline;   // baseline metrics snapshot (optional)
  double tick_us{1.0};          // timeline scale: ticks -> microseconds

  /// Parse and append one module's artifacts. Returns false (and sets
  /// `error` when non-null) on malformed JSON; empty strings are allowed
  /// and leave the corresponding document null.
  bool add_module(std::string name, const std::string& trace_json,
                  const std::string& metrics_json,
                  const std::string& spans_json, std::string* error = nullptr);
  bool set_bus_spans(const std::string& spans_json,
                     std::string* error = nullptr);
  bool set_baseline(const std::string& metrics_json,
                    std::string* error = nullptr);
};

/// One rendered deadline miss (anomaly section of the report).
struct MissSummary {
  std::string module;
  std::int64_t partition{-1};
  std::int64_t process{-1};
  std::int64_t detected_at{-1};
  bool chained{false};  // chain goes beyond the miss link itself
};

struct AnalysisResult {
  std::string chrome_trace;  // Chrome Trace Event JSON (timeline + flows)
  std::string report;        // human-readable analysis report
  std::vector<MissSummary> misses;
  int total_misses{0};
  /// Misses beyond a module's first whose root-cause chain is empty --
  /// the CI gate fails when this is non-zero.
  int unchained_misses{0};
  /// Message flows whose legs span more than one recorder origin (i.e.
  /// messages that crossed the bus and were stitched back together).
  int cross_module_flows{0};
  /// Flows with a receive leg but no send leg (broken context propagation).
  int broken_flows{0};
};

[[nodiscard]] AnalysisResult analyze(const AnalysisInput& input);

}  // namespace air::telemetry
