#include "telemetry/digest.hpp"

#include <limits>

#include "util/json.hpp"

// Same GCC 12 -Wmaybe-uninitialized false positive as export.cpp (variant
// move machinery inside json::Value at -O2).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace air::telemetry {

namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

/// Inclusive lower bound of bucket `b` (bucket 0 also absorbs clamped
/// negative samples, so its lower bound is reported as 0).
std::int64_t bucket_lower_bound(std::size_t b) {
  return b == 0 ? 0 : Histogram::upper_bound(b - 1) + 1;
}

Value histogram_json(const Histogram& h) {
  Object out;
  out["count"] = Value{static_cast<std::int64_t>(h.count)};
  out["sum"] = Value{h.sum};
  if (h.count > 0) {
    out["min"] = Value{h.min};
    out["max"] = Value{h.max};
    out["p50"] = Value{histogram_quantile(h, 500)};
    out["p95"] = Value{histogram_quantile(h, 950)};
    out["p99"] = Value{histogram_quantile(h, 990)};
  }
  Array buckets;
  for (const std::uint64_t b : h.buckets) {
    buckets.push_back(Value{static_cast<std::int64_t>(b)});
  }
  out["buckets"] = Value{std::move(buckets)};
  return Value{std::move(out)};
}

}  // namespace

Histogram histogram_delta(const Histogram& current, const Histogram& previous) {
  Histogram delta;
  delta.count = current.count - previous.count;
  delta.sum = current.sum - previous.sum;
  std::size_t lowest = Histogram::kBuckets;
  std::size_t highest = Histogram::kBuckets;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    delta.buckets[b] = current.buckets[b] - previous.buckets[b];
    if (delta.buckets[b] > 0) {
      if (lowest == Histogram::kBuckets) lowest = b;
      highest = b;
    }
  }
  if (delta.count == 0) return delta;  // min/max stay at their sentinels
  // Exact extremes when this window extended the cumulative ones (always
  // the case for the first window); bucket bounds otherwise.
  delta.min = (previous.count == 0 || current.min < previous.min)
                  ? current.min
                  : bucket_lower_bound(lowest);
  delta.max = (previous.count == 0 || current.max > previous.max)
                  ? current.max
                  : Histogram::upper_bound(highest);
  return delta;
}

std::int64_t histogram_quantile(const Histogram& histogram,
                                unsigned permille) {
  if (histogram.count == 0) return -1;
  if (permille > 1000) permille = 1000;
  // Rank of the requested sample, 1-based: ceil(permille/1000 * count),
  // clamped to [1, count] so p0 is the first sample and p100 the last.
  std::uint64_t rank =
      (histogram.count * static_cast<std::uint64_t>(permille) + 999) / 1000;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    seen += histogram.buckets[b];
    if (seen >= rank) return Histogram::upper_bound(b);
  }
  return Histogram::upper_bound(Histogram::kBuckets - 1);
}

std::string_view to_string(Watchdog watchdog) {
  switch (watchdog) {
    case Watchdog::kDeadlineMissRate: return "deadline_miss_rate";
    case Watchdog::kJitterBudget: return "jitter_budget";
    case Watchdog::kHmErrorStorm: return "hm_error_storm";
    case Watchdog::kBusSaturation: return "bus_saturation";
    case Watchdog::kBusBacklogGrowth: return "bus_backlog_growth";
    case Watchdog::kSpanDropPressure: return "span_drop_pressure";
    case Watchdog::kCount: break;
  }
  return "unknown";
}

std::string digest_ndjson(std::string_view source,
                          const WindowDigest& digest) {
  Object out;
  out["type"] = Value{"digest"};
  out["source"] = Value{std::string{source}};
  out["window"] = Value{static_cast<std::int64_t>(digest.index)};
  out["start"] = Value{digest.start};
  out["end"] = Value{digest.end};
  if (!digest.partitions.empty()) {
    Array partitions;
    for (std::size_t p = 0; p < digest.partitions.size(); ++p) {
      const PartitionWindow& pw = digest.partitions[p];
      Object row;
      row["partition"] = Value{static_cast<std::int64_t>(p)};
      row["deadline_misses"] = Value{pw.deadline_misses};
      row["deadline_checks"] = Value{pw.deadline_checks};
      row["busy"] = Value{pw.busy_ticks};
      row["slack"] = Value{pw.slack_ticks};
      row["dispatches"] = Value{pw.dispatches};
      row["hm_errors"] = Value{pw.hm_errors};
      row["miss_rate_ewma_x65536"] = Value{pw.miss_rate_scaled};
      row["deadline_slack"] = histogram_json(pw.deadline_slack);
      partitions.push_back(Value{std::move(row)});
    }
    out["partitions"] = Value{std::move(partitions)};
    out["ipc_messages"] = Value{digest.ipc_messages};
    out["ipc_bytes"] = Value{digest.ipc_bytes};
    out["ipc_drops"] = Value{digest.ipc_drops};
  }
  if (!digest.stations.empty()) {
    Array stations;
    for (const StationWindow& sw : digest.stations) {
      Object row;
      row["module"] = Value{static_cast<std::int64_t>(sw.module)};
      row["frames_sent"] = Value{sw.frames_sent};
      row["frames_delivered"] = Value{sw.frames_delivered};
      row["backlog"] = Value{sw.backlog};
      stations.push_back(Value{std::move(row)});
    }
    out["stations"] = Value{std::move(stations)};
    out["bus_frames_sent"] = Value{digest.bus_frames_sent};
    out["bus_frames_delivered"] = Value{digest.bus_frames_delivered};
    out["bus_backlog"] = Value{digest.bus_backlog};
  }
  out["spans_dropped"] = Value{digest.spans_dropped};
  out["trace_dropped"] = Value{digest.trace_dropped};
  out["trace_dropped_critical"] = Value{digest.trace_dropped_critical};
  return Value{std::move(out)}.dump(-1) + "\n";
}

std::string health_ndjson(std::string_view source, const HealthEvent& event) {
  Object out;
  out["type"] = Value{"health"};
  out["source"] = Value{std::string{source}};
  out["tick"] = Value{event.tick};
  out["watchdog"] = Value{std::string{to_string(event.kind)}};
  out["partition"] = Value{static_cast<std::int64_t>(event.partition)};
  out["value"] = Value{event.value};
  out["threshold"] = Value{event.threshold};
  out["window"] = Value{static_cast<std::int64_t>(event.window_index)};
  out["cause_span"] = Value{static_cast<std::int64_t>(event.cause)};
  out["detail"] = Value{event.detail};
  return Value{std::move(out)}.dump(-1) + "\n";
}

}  // namespace air::telemetry
