// Tick-windowed telemetry digests (online observability, data layer).
//
// A digest summarises one fixed-length window of ticks [start, end) from the
// *cumulative* counters the stack already maintains: per-partition deadline
// and utilisation deltas, a per-window slice of the log2 deadline-slack
// histogram (exact bucket subtraction of two cumulative snapshots), EWMA
// rates, and module-wide IPC / span-drop / trace-eviction deltas. Everything
// here is integer arithmetic on tick-stamped values -- no floats on the
// update path, no wall clock anywhere -- so digest sequences are
// byte-identical across runs and across the per-tick, warped, lockstep and
// parallel World drivers (tests/test_online.cpp).
//
// The online SLO watchdogs (online.hpp) evaluate each closed digest and emit
// tick-stamped HealthEvents; this header holds the shared value types and
// their deterministic NDJSON serialisation (one compact JSON object per
// line, the stream air-top tails).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/types.hpp"

namespace air::telemetry {

/// Fixed-point exponentially weighted moving average with alpha = 1/2^shift.
/// The state is an integer scaled by 2^kFracBits, updated with shifts only:
/// deterministic, and cheap enough for per-window updates of many series.
class Ewma {
 public:
  static constexpr unsigned kFracBits = 16;

  explicit Ewma(unsigned shift = 3) : shift_(shift) {}

  void update(std::int64_t sample) {
    const std::int64_t scaled_sample = sample << kFracBits;
    if (samples_ == 0) {
      scaled_ = scaled_sample;  // seed with the first observation
    } else {
      scaled_ += (scaled_sample - scaled_) >> shift_;
    }
    ++samples_;
  }

  /// Current average scaled by 2^kFracBits (the serialised representation).
  [[nodiscard]] std::int64_t scaled() const { return scaled_; }
  /// Current average rounded to the nearest integer.
  [[nodiscard]] std::int64_t rounded() const {
    return (scaled_ + (std::int64_t{1} << (kFracBits - 1))) >> kFracBits;
  }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  unsigned shift_;
  std::int64_t scaled_{0};
  std::uint64_t samples_{0};
};

/// Per-window slice of a cumulative log2 histogram: bucket counts, count and
/// sum subtract exactly. The window min/max are exact whenever the window
/// extended the cumulative extremes; otherwise they fall back to the bounds
/// of the lowest/highest bucket the window touched (log2 resolution) --
/// deterministically in both cases.
[[nodiscard]] Histogram histogram_delta(const Histogram& current,
                                        const Histogram& previous);

/// Quantile extraction over a (window) histogram: the inclusive upper bound
/// of the bucket holding the sample of rank ceil(permille/1000 * count) --
/// the exact rank within the fixed-bucket representation. -1 when empty.
/// `permille` in [0, 1000]; 500 = p50, 950 = p95, 990 = p99.
[[nodiscard]] std::int64_t histogram_quantile(const Histogram& histogram,
                                              unsigned permille);

/// Per-partition slice of one closed window.
struct PartitionWindow {
  std::int64_t deadline_misses{0};   // misses detected in the window
  std::int64_t deadline_checks{0};   // Algorithm 3 retrievals in the window
  std::int64_t busy_ticks{0};
  std::int64_t slack_ticks{0};
  std::int64_t dispatches{0};        // POS dispatches in the window
  std::int64_t hm_errors{0};         // HM reports attributed to the partition
  Histogram deadline_slack;          // window slice (histogram_delta)
  std::int64_t miss_rate_scaled{0};  // EWMA of misses/window, 2^16-scaled
};

/// One per-station (per attached module) slice of a bus window -- the
/// "virtual link" view of the TDMA bus.
struct StationWindow {
  std::int32_t module{-1};
  std::int64_t frames_sent{0};       // enqueued by the station in the window
  std::int64_t frames_delivered{0};  // delivered *into* the station
  std::int64_t backlog{0};           // tx queue depth at the window boundary
};

/// One closed digest window [start, end). Module planes fill `partitions`;
/// the World's bus plane fills `stations` and the bus fields instead.
struct WindowDigest {
  std::uint64_t index{0};  // 0-based window number
  Ticks start{0};
  Ticks end{0};

  // --- module plane ---
  std::vector<PartitionWindow> partitions;
  std::int64_t ipc_messages{0};
  std::int64_t ipc_bytes{0};
  std::int64_t ipc_drops{0};

  // --- bus plane ---
  std::vector<StationWindow> stations;
  std::int64_t bus_frames_sent{0};
  std::int64_t bus_frames_delivered{0};
  std::int64_t bus_backlog{0};  // pending_total at the boundary

  // --- telemetry self-observation (both planes) ---
  std::int64_t spans_dropped{0};
  std::int64_t trace_dropped{0};
  std::int64_t trace_dropped_critical{0};
};

/// The online SLO watchdog catalogue.
enum class Watchdog : std::uint8_t {
  kDeadlineMissRate = 0,  // in-window misses above threshold (per partition)
  kJitterBudget,          // deadline slack eroded below the jitter budget
  kHmErrorStorm,          // HM reports in one window at/above threshold
  kBusSaturation,         // bus tx backlog at/above threshold at a boundary
  kBusBacklogGrowth,      // backlog strictly growing across N boundaries
  kSpanDropPressure,      // span evictions / critical trace drops in-window
  kCount
};

[[nodiscard]] std::string_view to_string(Watchdog watchdog);

/// A watchdog breach: tick-stamped, attributed, and causally linked (when a
/// root-cause chain covers the window) to the span stream of PR 3.
struct HealthEvent {
  Ticks tick{0};                 // window-close tick the breach was raised at
  Watchdog kind{Watchdog::kDeadlineMissRate};
  std::int32_t partition{-1};    // -1 = module- or bus-wide
  std::int64_t value{0};         // observed value
  std::int64_t threshold{0};     // configured threshold it crossed
  std::uint64_t window_index{0};
  std::uint64_t cause{0};        // causal span id (0 = no chain recorded)
  std::string detail;
};

/// Deterministic single-line JSON ({"type":"digest",...}\n) for the
/// streaming NDJSON health sink. `source` names the emitting plane (module
/// name or "bus").
[[nodiscard]] std::string digest_ndjson(std::string_view source,
                                        const WindowDigest& digest);

/// Deterministic single-line JSON ({"type":"health",...}\n).
[[nodiscard]] std::string health_ndjson(std::string_view source,
                                        const HealthEvent& event);

}  // namespace air::telemetry
