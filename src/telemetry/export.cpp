#include "telemetry/export.hpp"

#include "util/json.hpp"

// Same GCC 12 -Wmaybe-uninitialized false positive as trace_export.cpp
// (variant move machinery inside json::Value at -O2, GCC PR 105562 family).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace air::telemetry {

namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string{field};
  }
  // RFC 4180: wrap in double quotes, double every embedded quote.
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot, int indent) {
  Array metrics;
  for (const MetricSample& s : snapshot.samples) {
    Object row;
    row["name"] = Value{std::string{to_string(s.metric)}};
    row["index"] = Value{std::int64_t{s.index}};
    row["kind"] = Value{kind_name(s.kind)};
    switch (s.kind) {
      case MetricKind::kCounter:
        row["value"] = Value{static_cast<std::int64_t>(s.counter)};
        break;
      case MetricKind::kGauge:
        row["last"] = Value{s.gauge.last};
        row["max"] = Value{s.gauge.max};
        row["samples"] = Value{static_cast<std::int64_t>(s.gauge.samples)};
        break;
      case MetricKind::kHistogram: {
        row["count"] = Value{static_cast<std::int64_t>(s.histogram.count)};
        row["sum"] = Value{s.histogram.sum};
        if (s.histogram.count > 0) {
          row["min"] = Value{s.histogram.min};
          row["max"] = Value{s.histogram.max};
        }
        Array buckets;
        for (const std::uint64_t b : s.histogram.buckets) {
          buckets.push_back(Value{static_cast<std::int64_t>(b)});
        }
        row["buckets"] = Value{std::move(buckets)};
        break;
      }
    }
    metrics.push_back(Value{std::move(row)});
  }
  Object root;
  root["time"] = Value{snapshot.time};
  root["metrics"] = Value{std::move(metrics)};
  return Value{std::move(root)}.dump(indent);
}

std::string to_csv(const MetricsSnapshot& snapshot) {
  std::string out = "metric,index,kind,value,count,sum,min,max\n";
  char line[256];
  for (const MetricSample& s : snapshot.samples) {
    const std::string name = csv_escape(to_string(s.metric));
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(line, sizeof line, "%s,%d,counter,%llu,,,,\n",
                      name.c_str(), s.index,
                      static_cast<unsigned long long>(s.counter));
        break;
      case MetricKind::kGauge:
        std::snprintf(line, sizeof line, "%s,%d,gauge,%lld,%llu,,,%lld\n",
                      name.c_str(), s.index,
                      static_cast<long long>(s.gauge.last),
                      static_cast<unsigned long long>(s.gauge.samples),
                      static_cast<long long>(s.gauge.max));
        break;
      case MetricKind::kHistogram:
        if (s.histogram.count > 0) {
          std::snprintf(line, sizeof line,
                        "%s,%d,histogram,,%llu,%lld,%lld,%lld\n",
                        name.c_str(), s.index,
                        static_cast<unsigned long long>(s.histogram.count),
                        static_cast<long long>(s.histogram.sum),
                        static_cast<long long>(s.histogram.min),
                        static_cast<long long>(s.histogram.max));
        } else {
          std::snprintf(line, sizeof line, "%s,%d,histogram,,0,0,,\n",
                        name.c_str(), s.index);
        }
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace air::telemetry
