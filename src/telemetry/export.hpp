// Metrics snapshot exporters: JSON (machine-readable, nested by metric) and
// CSV (one row per sample, spreadsheet/pandas-ready). Both orderings come
// from MetricsSnapshot, which is deterministic, so repeated runs of the same
// configuration export byte-identical documents.
#pragma once

#include <string>
#include <string_view>

#include "telemetry/metrics.hpp"

namespace air::telemetry {

/// RFC 4180 field quoting: fields containing commas, quotes or newlines are
/// wrapped in double quotes with embedded quotes doubled; anything else
/// passes through verbatim.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// JSON document:
///   {"time": T, "metrics": [{"name":..., "index":..., "kind":...,
///     "value":... | "last"/"max"/"samples" | "count"/"sum"/"min"/"max"/
///     "buckets":[...]}, ...]}
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot,
                                  int indent = 2);

/// CSV with header `metric,index,kind,value,count,sum,min,max`. Counters put
/// the total in `value`; gauges put last in `value` and max in `max`;
/// histograms fill count/sum/min/max and leave `value` empty.
[[nodiscard]] std::string to_csv(const MetricsSnapshot& snapshot);

}  // namespace air::telemetry
