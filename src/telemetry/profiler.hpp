// Per-layer tick profiling (host-side, wall-clock).
//
// Measures where the real CPU time of Module::tick_once goes -- partition
// scheduler, dispatcher, channel router, PAL announce, process executor --
// with std::chrono::steady_clock. This is *host* observability for the
// "fast as the hardware allows" goal: it is reported separately from
// simulated time and is deliberately excluded from metrics snapshots, which
// must stay deterministic. Disabled it costs one predictable branch per
// phase; bench_telemetry quantifies both states.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace air::telemetry {

enum class TickPhase : std::uint8_t {
  kScheduler = 0,  // Algorithm 1, all cores
  kDispatcher,     // Algorithm 2, all cores
  kRouter,         // PMK channel pump
  kPal,            // surrogate clock-tick announce + deadline checks
  kExecutor,       // process script interpretation
  kCount
};

[[nodiscard]] std::string_view to_string(TickPhase phase);

struct PhaseStats {
  std::uint64_t calls{0};
  std::uint64_t total_ns{0};
  std::uint64_t max_ns{0};
};

class TickProfiler {
 public:
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// RAII phase measurement; a no-op when the profiler is disabled (the
  /// caller should branch on enabled() to skip the clock reads entirely).
  class Scope {
   public:
    Scope(TickProfiler& profiler, TickPhase phase)
        : profiler_(profiler.enabled_ ? &profiler : nullptr), phase_(phase) {
      if (profiler_ != nullptr) {
        start_ = std::chrono::steady_clock::now();
      }
    }
    ~Scope() {
      if (profiler_ != nullptr) {
        profiler_->record(phase_, std::chrono::steady_clock::now() - start_);
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TickProfiler* profiler_;
    TickPhase phase_;
    std::chrono::steady_clock::time_point start_;
  };

  void record(TickPhase phase, std::chrono::steady_clock::duration elapsed);

  [[nodiscard]] const PhaseStats& stats(TickPhase phase) const {
    return stats_[static_cast<std::size_t>(phase)];
  }

  /// Ticks profiled (kScheduler calls; every tick enters that phase once).
  [[nodiscard]] std::uint64_t ticks() const {
    return stats(TickPhase::kScheduler).calls;
  }

  /// Human-readable table: per-phase calls, total, mean and max ns.
  [[nodiscard]] std::string report() const;

  void clear() { stats_ = {}; }

 private:
  bool enabled_{false};
  std::array<PhaseStats, static_cast<std::size_t>(TickPhase::kCount)> stats_{};
};

}  // namespace air::telemetry
