// Hierarchical host profiler (wall-clock cost attribution).
//
// Measures where the real CPU time of a flight goes with nestable scoped
// probes over a static registry of profile points -- PMK partition
// scheduler and dispatcher, the sealed pos/dispatch.hpp kernel fast path,
// PAL announce, channel router, bus pump, time-warp scan, epoch barrier,
// and the telemetry plane itself. Scopes aggregate per *stack path* (the
// chain of points from the root), so "router under tick" and "router under
// epoch replay" are separate rows; each path accumulates call count,
// total/max ns, and allocation deltas read from pluggable probes (the
// telemetry StringArena byte counter and the ipc::Payload pool's
// heap-allocation counter), which is how the zero-allocation claim of
// DESIGN.md §12 stays observable in production.
//
// This is *host* observability for the "fast as the hardware allows" goal:
// wall-clock readings never enter metrics snapshots, traces or spans, which
// must stay deterministic (host time differs run to run; simulated state
// must not). Disabled, a scope costs one predictable branch. Enabled, the
// default sampling stride measures one tick in N (the ~32 ns fig8 tick
// cannot afford two clock reads per scope every tick -- bench_telemetry
// mode 8 gates the always-on overhead at <=10%); air-record --profile uses
// stride 1 for exact capture.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/arena.hpp"

namespace air::telemetry {

/// Static registry of instrumented sites. Adding a point means adding an
/// enumerator + its to_string name; scopes reference points by value so
/// the registry is closed at compile time (no string hashing at runtime).
enum class ProfilePoint : std::uint8_t {
  kTick = 0,         // Module::tick_once (root of the per-module tree)
  kScheduler,        // Algorithm 1, PMK partition scheduler, all cores
  kDispatcher,       // Algorithm 2, PMK dispatcher, all cores
  kRouter,           // PMK channel pump
  kPal,              // surrogate clock-tick announce + deadline checks
  kExecutor,         // process script interpretation
  kKernelDispatch,   // pos/dispatch.hpp sealed kernel fast path
  kWarpScan,         // time-warp quiescence scan (Module::warp_headroom)
  kOnlineClose,      // online SLO plane window close
  kTelemetryScrape,  // metrics_snapshot() batched counter scrape
  kEpoch,            // World parallel epoch (root of the World tree)
  kEpochBarrier,     // epoch merge barrier (frame staging -> delivery)
  kBusPump,          // net::Bus tick + frame delivery
  kCount
};

[[nodiscard]] std::string_view to_string(ProfilePoint point);

class HostProfiler {
 public:
  struct PathStats {
    std::uint64_t calls{0};
    std::uint64_t total_ns{0};
    std::uint64_t max_ns{0};
    std::uint64_t arena_bytes{0};  // arena bytes interned inside the scope
    std::uint64_t heap_allocs{0};  // payload-pool heap allocs inside
  };

  /// One stack path. Children of a node are a singly linked sibling list;
  /// node 0 is the synthetic root (point meaningless, never reported).
  struct Node {
    ProfilePoint point{ProfilePoint::kCount};
    std::uint32_t parent{0};
    std::uint32_t first_child{0};
    std::uint32_t next_sibling{0};
    std::uint32_t depth{0};
    PathStats stats;
  };

  HostProfiler() { clear(); }

  void enable(bool on) {
    enabled_ = on;
    if (!on) sampling_ = false;  // Scope reads sampling_ alone; keep it honest
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Sample one tick in `stride` (>=1). 1 = measure every tick (exact
  /// offline capture); the default keeps always-on overhead inside the
  /// bench_telemetry mode 8 gate. Takes effect at the next begin_tick().
  void set_stride(std::uint32_t stride) {
    stride_ = stride == 0 ? 1 : stride;
    countdown_ = 0;  // re-arm: the next tick starts a fresh sampling cycle
  }
  [[nodiscard]] std::uint32_t stride() const { return stride_; }

  /// Tick-root sampling decision; call once per tick before any Scope.
  /// Returns whether this tick's scopes will measure. A countdown, not a
  /// modulo: integer division costs tens of cycles on a ~30 ns tick.
  bool begin_tick() {
    if (!enabled_) return false;
    ++tick_counter_;
    if (countdown_ == 0) {
      sampling_ = true;
      countdown_ = stride_ - 1;
      ++sampled_ticks_;
    } else {
      sampling_ = false;
      --countdown_;
    }
    return sampling_;
  }
  /// sampling_ is only ever true while enabled (enable(false) clears it),
  /// so the per-scope fast path is a single bool load.
  [[nodiscard]] bool sampling() const { return sampling_; }

  // --- allocation probes ---
  /// Arena whose bytes_used feeds per-scope allocation deltas (borrowed).
  void set_arena_probe(const StringArena* arena) { arena_probe_ = arena; }
  /// Process-wide heap counter (e.g. ipc::Payload pool heap_allocs). A
  /// function pointer so telemetry need not link the layer it observes.
  using HeapProbe = std::uint64_t (*)();
  void set_heap_probe(HeapProbe probe) { heap_probe_ = probe; }

  /// RAII path measurement; a branch when disabled or off-stride.
  class Scope {
   public:
    Scope(HostProfiler& profiler, ProfilePoint point)
        : profiler_(profiler.sampling() ? &profiler : nullptr) {
      if (profiler_ != nullptr) {
        node_ = profiler_->enter(point);
        arena0_ = profiler_->arena_bytes();
        heap0_ = profiler_->heap_allocs();
        start_ = std::chrono::steady_clock::now();
      }
    }
    ~Scope() {
      if (profiler_ != nullptr) {
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        profiler_->leave(
            node_,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()),
            profiler_->arena_bytes() - arena0_,
            profiler_->heap_allocs() - heap0_);
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    HostProfiler* profiler_;
    std::uint32_t node_{0};
    std::uint64_t arena0_{0};
    std::uint64_t heap0_{0};
    std::chrono::steady_clock::time_point start_;
  };

  // --- inspection ----------------------------------------------------
  /// All stack paths; nodes_[0] is the synthetic root.
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  /// Ticks actually measured (== total ticks when stride is 1).
  [[nodiscard]] std::uint64_t ticks() const { return sampled_ticks_; }

  /// Stats for `point` aggregated across every path it appears in.
  [[nodiscard]] PathStats point_stats(ProfilePoint point) const;

  /// Self time of a node: total_ns minus its children's total_ns.
  [[nodiscard]] std::uint64_t self_ns(std::uint32_t index) const;

  /// Path of a node from the root, ";"-joined ("tick;pal;kernel_dispatch").
  [[nodiscard]] std::string path(std::uint32_t index) const;

  /// Human-readable attribution table, paths sorted by total ns.
  [[nodiscard]] std::string report() const;

  /// Folded-stack lines ("tick;pal;kernel_dispatch 1234\n", value = self
  /// ns) -- feed to flamegraph.pl / speedscope / inferno.
  [[nodiscard]] std::string folded() const;

  void clear();

 private:
  std::uint32_t enter(ProfilePoint point);
  void leave(std::uint32_t index, std::uint64_t ns, std::uint64_t arena_bytes,
             std::uint64_t heap_allocs);

  [[nodiscard]] std::uint64_t arena_bytes() const {
    return arena_probe_ != nullptr ? arena_probe_->stats().bytes_used : 0;
  }
  [[nodiscard]] std::uint64_t heap_allocs() const {
    return heap_probe_ != nullptr ? heap_probe_() : 0;
  }

  bool enabled_{false};
  bool sampling_{false};
  std::uint32_t stride_{kDefaultStride};
  std::uint32_t countdown_{0};  // ticks until the next sampled one
  std::uint64_t tick_counter_{0};
  std::uint64_t sampled_ticks_{0};
  std::uint32_t current_{0};
  std::vector<Node> nodes_;
  const StringArena* arena_probe_{nullptr};
  HeapProbe heap_probe_{nullptr};

 public:
  /// One measured tick in 512: a sampled tick costs ~0.7 us (about ten
  /// scope pairs, two clock reads each), amortised to ~1.4 ns -- inside
  /// the mode 8 gate (<= 10% over metrics-only) on the ~50 ns fig8 tick.
  static constexpr std::uint32_t kDefaultStride = 512;
};

/// Deterministic-layout JSON export ({"meta": ..., "paths": [...]}) -- the
/// artifact tools/air-profile ingests. Wall-clock *values* differ run to
/// run by nature; the structure does not.
[[nodiscard]] std::string profile_to_json(const HostProfiler& profiler,
                                          std::string_view origin,
                                          int indent = 2);

}  // namespace air::telemetry
