// In-flight observability plane: windowed digests + online SLO watchdogs.
//
// Where air-analyze interprets a flight after landing, the online plane
// evaluates health *while the system flies*: at every window boundary (a
// deterministic multiple of the configured window length) it samples the
// stack's cumulative counters, folds the deltas into a WindowDigest, and
// runs the SLO watchdogs over the fresh window -- deadline-miss rate per
// partition, jitter-budget erosion, HM error storms, bus saturation and
// backlog growth, span-drop pressure. A breach becomes a tick-stamped
// HealthEvent that is recorded into the module trace (EventKind::kHealth),
// mirrored as an instant kHealth span causally parented on the root-cause
// chain of the miss it covers, and streamed to the NDJSON health sink that
// tools/air-top tails.
//
// Determinism contract: a plane only acts at window-close ticks, and the
// owning driver guarantees those ticks are *stepped* in every execution
// mode (Module::warp_headroom() bounds warp spans by next_close_tick();
// the World drivers close bus windows at the same world ticks with the
// same frozen bus stats on every path). Digest sequences and HealthEvent
// streams are therefore byte-identical across per-tick, warped, lockstep
// and parallel execution -- asserted by tests/test_online.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/digest.hpp"
#include "telemetry/spans.hpp"
#include "util/trace.hpp"
#include "util/types.hpp"

namespace air::telemetry {

/// Watchdog thresholds (see DESIGN.md section 10 for the rationale).
struct OnlineThresholds {
  /// Deadline watchdog: fires when a window's per-partition miss count
  /// exceeds this. 0 = any in-window miss is a breach (clean-flight SLO).
  std::int64_t max_misses_per_window{0};
  /// Jitter watchdog: fires when the window's minimum observed deadline
  /// slack fell below this budget (slack <= 0 with the default of 1:
  /// a deadline was already due when its record headed the registry).
  std::int64_t jitter_min_slack{1};
  /// HM storm watchdog: fires at/above this many HM reports in one window.
  std::int64_t hm_storm_errors{3};
  /// Span-pressure watchdog: fires at/above this many span evictions (or
  /// any critical trace-ring eviction) in one window.
  std::int64_t span_drop_limit{1};
  /// Bus saturation: fires when the boundary tx backlog reaches this.
  std::int64_t bus_backlog_limit{32};
  /// Bus growth: fires after this many consecutive boundaries of strictly
  /// increasing positive backlog.
  int bus_growth_windows{3};
};

/// Online-plane configuration (part of system::TelemetryConfig).
struct OnlineOptions {
  bool enabled{false};
  /// Window length in ticks. Boundary ticks are always stepped, so very
  /// small windows bound the time warp's fast-forward spans; the default
  /// keeps warp speedups intact while giving sub-MTF resolution on Fig. 8.
  Ticks window{256};
  /// EWMA smoothing: alpha = 1/2^ewma_shift per window.
  unsigned ewma_shift{3};
  OnlineThresholds thresholds;
};

/// Cumulative per-partition totals at a window boundary (sampled by the
/// module; the plane differences consecutive samples).
struct OnlinePartitionSample {
  std::uint64_t deadline_misses{0};
  std::uint64_t deadline_checks{0};
  std::uint64_t busy_ticks{0};
  std::uint64_t slack_ticks{0};
  std::uint64_t dispatches{0};
  std::uint64_t hm_errors{0};
  Histogram deadline_slack;  // cumulative registry histogram
};

/// Cumulative module totals at a window boundary.
struct OnlineSample {
  std::vector<OnlinePartitionSample> partitions;
  std::uint64_t ipc_messages{0};
  std::uint64_t ipc_bytes{0};
  std::uint64_t ipc_drops{0};
  std::uint64_t spans_dropped{0};
  std::uint64_t trace_dropped{0};
  std::uint64_t trace_dropped_critical{0};
};

/// Streaming NDJSON consumer (one complete line per call, newline
/// included). Fires synchronously inside the window close; must not
/// re-enter the plane. With a parallel World, attach sinks only to
/// single-lane runs (the plane itself is module-confined; a shared sink
/// is not).
using HealthSink = std::function<void(const std::string& line)>;

/// The per-module plane. Owned by system::Module; the module calls
/// close_window() at the end of every tick that next_close_tick() named.
class OnlinePlane {
 public:
  OnlinePlane(OnlineOptions options, std::string source,
              std::size_t partition_count);

  /// Mirror HealthEvents into the module trace (critical severity).
  void set_trace(util::Trace* trace) { trace_ = trace; }
  /// Emit instant kHealth spans, causally parented on root-cause chains.
  void set_spans(SpanRecorder* spans) { spans_ = spans; }
  void set_sink(HealthSink sink) { sink_ = std::move(sink); }

  [[nodiscard]] const OnlineOptions& options() const { return options_; }

  /// The tick whose end closes the next window: (k+1)*window - 1 for the
  /// k-th unclosed window. Always strictly greater than the last closed
  /// boundary, so warp engines can bound spans by it directly.
  [[nodiscard]] Ticks next_close_tick() const {
    return static_cast<Ticks>(windows_closed_ + 1) * options_.window - 1;
  }

  /// Close the window ending at now+1 with the cumulative totals at the end
  /// of tick `now` (== next_close_tick()). Evaluates the watchdogs and
  /// emits HealthEvents; O(partitions) plus the fixed histogram width.
  void close_window(Ticks now, const OnlineSample& sample);

  // --- inspection (equivalence tests, oracles, status_report) ---
  [[nodiscard]] const std::vector<WindowDigest>& digests() const {
    return digests_;
  }
  [[nodiscard]] const std::vector<HealthEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t windows_closed() const {
    return windows_closed_;
  }
  [[nodiscard]] std::uint64_t breaches() const { return events_.size(); }

  /// One status_report() line: windows closed, breach count, last breach.
  [[nodiscard]] std::string summary_line() const;

 private:
  void raise(Ticks now, Watchdog kind, std::int32_t partition,
             std::int64_t value, std::int64_t threshold, std::string detail);

  OnlineOptions options_;
  std::string source_;
  util::Trace* trace_{nullptr};
  SpanRecorder* spans_{nullptr};
  HealthSink sink_;
  std::uint64_t windows_closed_{0};
  OnlineSample previous_;
  std::vector<Ewma> miss_rate_;  // one per partition
  std::vector<WindowDigest> digests_;
  std::vector<HealthEvent> events_;
};

/// Cumulative bus totals at a world window boundary.
struct BusSample {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_delivered{0};
  std::uint64_t backlog{0};  // pending_total at the boundary
  std::uint64_t spans_dropped{0};
  std::vector<StationWindow> stations;  // cumulative counters per station
};

/// The World-level plane over the TDMA bus. The drivers call
/// close_through() after completing world ticks; boundaries inside warped
/// or fast-path spans close with the span's frozen bus stats, which per-tick
/// execution provably produces too (the bus is idle across such spans).
class BusPlane {
 public:
  BusPlane(OnlineOptions options, std::string source);

  void set_spans(SpanRecorder* spans) { spans_ = spans; }
  void set_sink(HealthSink sink) { sink_ = std::move(sink); }

  [[nodiscard]] const OnlineOptions& options() const { return options_; }
  [[nodiscard]] Ticks next_close_tick() const {
    return static_cast<Ticks>(windows_closed_ + 1) * options_.window - 1;
  }

  /// Close every window whose final tick is <= `completed` (the last world
  /// tick fully processed) with the current cumulative `sample`.
  void close_through(Ticks completed, const BusSample& sample);

  [[nodiscard]] const std::vector<WindowDigest>& digests() const {
    return digests_;
  }
  [[nodiscard]] const std::vector<HealthEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t breaches() const { return events_.size(); }
  [[nodiscard]] std::string summary_line() const;

 private:
  void close_one(Ticks now, const BusSample& sample);
  void raise(Ticks now, Watchdog kind, std::int64_t value,
             std::int64_t threshold, std::string detail);

  OnlineOptions options_;
  std::string source_;
  SpanRecorder* spans_{nullptr};
  HealthSink sink_;
  std::uint64_t windows_closed_{0};
  BusSample previous_;
  std::int64_t last_backlog_{0};
  int growth_streak_{0};
  std::vector<WindowDigest> digests_;
  std::vector<HealthEvent> events_;
};

}  // namespace air::telemetry
