#include "vitral/trace_window.hpp"

#include <cstdio>

namespace air::vitral {

using util::EventKind;

void TraceWindowSink::on_event(const util::TraceEvent& e) {
  char buf[96];
  switch (e.kind) {
    case EventKind::kScheduleSwitch:
      std::snprintf(buf, sizeof buf, "t=%lld switch chi_%lld->chi_%lld",
                    static_cast<long long>(e.time),
                    static_cast<long long>(e.b) + 1,
                    static_cast<long long>(e.a) + 1);
      screen_->window(scheduler_window_).write_line(buf);
      break;
    case EventKind::kScheduleSwitchReq:
      std::snprintf(buf, sizeof buf, "t=%lld request chi_%lld",
                    static_cast<long long>(e.time),
                    static_cast<long long>(e.a) + 1);
      screen_->window(scheduler_window_).write_line(buf);
      break;
    case EventKind::kDeadlineMiss:
      std::snprintf(buf, sizeof buf, "t=%lld P%lld proc %lld MISS d=%lld",
                    static_cast<long long>(e.time),
                    static_cast<long long>(e.a) + 1,
                    static_cast<long long>(e.b),
                    static_cast<long long>(e.c));
      screen_->window(hm_window_).write_line(buf);
      break;
    case EventKind::kHmAction:
      std::snprintf(buf, sizeof buf, "t=%lld P%lld action %lld",
                    static_cast<long long>(e.time),
                    static_cast<long long>(e.a) + 1,
                    static_cast<long long>(e.b));
      screen_->window(hm_window_).write_line(buf);
      break;
    default:
      break;
  }
}

}  // namespace air::vitral
