// Streaming trace consumption for VITRAL (Fig. 9).
//
// The paper's demonstration dedicates windows to AIR components: the
// Partition Scheduler/Dispatcher window shows schedule switches and the
// Health Monitor window shows deadline misses and recovery actions. This
// sink subscribes to the module's trace (util::TraceSink) and formats the
// relevant events into those windows as they happen -- no post-hoc scanning
// of the event vector, which also makes it work unchanged in bounded
// flight-recorder mode where old events are evicted.
#pragma once

#include <cstddef>

#include "util/trace.hpp"
#include "vitral/vitral.hpp"

namespace air::vitral {

class TraceWindowSink : public util::TraceSink {
 public:
  /// Formats scheduler events into `scheduler_window` and HM/deadline
  /// events into `hm_window` of `screen` (indices from Screen::add_window).
  /// The screen must outlive the sink's registration.
  TraceWindowSink(Screen& screen, std::size_t scheduler_window,
                  std::size_t hm_window)
      : screen_(&screen),
        scheduler_window_(scheduler_window),
        hm_window_(hm_window) {}

  void on_event(const util::TraceEvent& event) override;

 private:
  Screen* screen_;
  std::size_t scheduler_window_;
  std::size_t hm_window_;
};

}  // namespace air::vitral
