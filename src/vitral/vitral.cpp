#include "vitral/vitral.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace air::vitral {

void Window::write_line(std::string_view line) {
  lines_.emplace_back(line);
  while (lines_.size() > kMaxScrollback) lines_.pop_front();
}

std::size_t Screen::add_window(std::string title, Rect rect) {
  AIR_ASSERT(rect.width >= 4 && rect.height >= 3);
  windows_.emplace_back(std::move(title), rect);
  return windows_.size() - 1;
}

std::string Screen::render() const {
  std::vector<std::string> grid(static_cast<std::size_t>(rows_),
                                std::string(static_cast<std::size_t>(columns_),
                                            ' '));
  auto put = [&](int x, int y, char c) {
    if (x >= 0 && x < columns_ && y >= 0 && y < rows_) {
      grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = c;
    }
  };

  for (const Window& w : windows_) {
    const Rect& r = w.rect();
    // Borders.
    for (int x = r.x; x < r.x + r.width; ++x) {
      put(x, r.y, '-');
      put(x, r.y + r.height - 1, '-');
    }
    for (int y = r.y; y < r.y + r.height; ++y) {
      put(r.x, y, '|');
      put(r.x + r.width - 1, y, '|');
    }
    put(r.x, r.y, '+');
    put(r.x + r.width - 1, r.y, '+');
    put(r.x, r.y + r.height - 1, '+');
    put(r.x + r.width - 1, r.y + r.height - 1, '+');

    // Title centred in the top border.
    const int interior = r.width - 2;
    std::string title = " " + w.title() + " ";
    if (static_cast<int>(title.size()) > interior) {
      title.resize(static_cast<std::size_t>(interior));
    }
    const int start = r.x + 1 + (interior - static_cast<int>(title.size())) / 2;
    for (std::size_t i = 0; i < title.size(); ++i) {
      put(start + static_cast<int>(i), r.y, title[i]);
    }

    // Content: the most recent lines that fit.
    const int content_rows = r.height - 2;
    const auto& lines = w.lines();
    const std::size_t first =
        lines.size() > static_cast<std::size_t>(content_rows)
            ? lines.size() - static_cast<std::size_t>(content_rows)
            : 0;
    for (std::size_t i = first; i < lines.size(); ++i) {
      const int y = r.y + 1 + static_cast<int>(i - first);
      const std::string& line = lines[i];
      for (int x = 0; x < interior && x < static_cast<int>(line.size()); ++x) {
        put(r.x + 1 + x, y, line[static_cast<std::size_t>(x)]);
      }
    }
  }

  std::string out;
  out.reserve(static_cast<std::size_t>(rows_) *
              (static_cast<std::size_t>(columns_) + 1));
  for (const auto& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

std::vector<Rect> tile_layout(int columns, int rows, int count) {
  AIR_ASSERT(count > 0);
  const int per_row = count <= 2 ? count : (count + 1) / 2;
  const int grid_rows = (count + per_row - 1) / per_row;
  const int cell_w = columns / per_row;
  const int cell_h = rows / grid_rows;
  std::vector<Rect> rects;
  for (int i = 0; i < count; ++i) {
    const int cx = i % per_row;
    const int cy = i / per_row;
    rects.push_back({cx * cell_w, cy * cell_h, std::max(cell_w, 4),
                     std::max(cell_h, 3)});
  }
  return rects;
}

}  // namespace air::vitral
