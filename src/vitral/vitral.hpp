// VITRAL -- a text-mode window manager (Fig. 9).
//
// The paper's prototype uses VITRAL, a text-mode windows manager for RTEMS,
// to visualise the demonstration: one window per partition showing its
// output, plus windows observing AIR components. This is a from-scratch
// character-grid re-implementation: windows own a scrollback of lines and
// the screen renders them (borders, titles, clipped content) into a string
// suitable for a terminal.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace air::vitral {

struct Rect {
  int x{0};
  int y{0};
  int width{20};
  int height{6};
};

class Window {
 public:
  Window(std::string title, Rect rect) : title_(std::move(title)), rect_(rect) {}

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const Rect& rect() const { return rect_; }

  /// Append a line to the scrollback (the view shows the most recent lines
  /// that fit the window's interior).
  void write_line(std::string_view line);

  [[nodiscard]] const std::deque<std::string>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

  /// Scrollback retention (older lines are dropped beyond this).
  static constexpr std::size_t kMaxScrollback = 256;

 private:
  std::string title_;
  Rect rect_;
  std::deque<std::string> lines_;
};

class Screen {
 public:
  Screen(int columns, int rows) : columns_(columns), rows_(rows) {}

  [[nodiscard]] int columns() const { return columns_; }
  [[nodiscard]] int rows() const { return rows_; }

  /// Create a window; returns its index. Windows render in creation order
  /// (later windows draw over earlier ones when overlapping).
  std::size_t add_window(std::string title, Rect rect);

  [[nodiscard]] Window& window(std::size_t index) { return windows_[index]; }
  [[nodiscard]] const Window& window(std::size_t index) const {
    return windows_[index];
  }
  [[nodiscard]] std::size_t window_count() const { return windows_.size(); }

  /// Render the whole screen: borders, titles and the tail of each window's
  /// scrollback, newline-separated.
  [[nodiscard]] std::string render() const;

 private:
  int columns_;
  int rows_;
  std::vector<Window> windows_;
};

/// Tile `count` windows over a screen in a grid, VITRAL-demo style.
[[nodiscard]] std::vector<Rect> tile_layout(int columns, int rows, int count);

}  // namespace air::vitral
