// Formal system model of Sect. 3 (as reformulated by Sect. 4.1 for
// mode-based schedules).
//
// These are pure value types mirroring the paper's equations:
//   P            (1), (16)  -- partitions
//   chi          (17), (18) -- set of partition scheduling tables (PSTs)
//   Q_{i,m}      (19)       -- per-schedule partition timing requirements
//   omega_{i,j}  (20)       -- time windows
//   tau_{m,q}    (11)       -- processes (with WCET C added, as in the paper)
//
// The runtime (src/pmk, src/pos) consumes this model directly, so what the
// validator proves about a model is exactly what the kernel executes.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace air::model {

/// Time window omega_{i,j} = <P, O, c> (eq. 20): partition `partition` owns
/// the processor during [offset, offset + duration) of every major time
/// frame of its schedule.
struct Window {
  PartitionId partition;
  Ticks offset{0};
  Ticks duration{0};

  friend bool operator==(const Window&, const Window&) = default;
};

/// Q_{i,m} = <P, eta, d> (eq. 19): partition `partition` requires `duration`
/// ticks of processor time in every `period`-tick activation cycle of the
/// schedule this requirement belongs to. Partitions without strict time
/// requirements (e.g. a non-real-time POS) have duration == 0 (Sect. 3.1).
struct ScheduleRequirement {
  PartitionId partition;
  Ticks period{0};    // eta_{i,m}
  Ticks duration{0};  // d_{i,m}

  friend bool operator==(const ScheduleRequirement&,
                         const ScheduleRequirement&) = default;
};

/// One partition scheduling table chi_i = <MTF, Q, omega> (eq. 18).
struct Schedule {
  ScheduleId id;
  std::string name;
  Ticks mtf{0};
  std::vector<ScheduleRequirement> requirements;  // Q_i
  std::vector<Window> windows;                    // omega_i, sorted by offset

  /// Requirement entry for `partition`, or nullptr when the partition has no
  /// time window in this schedule (legal under mode-based schedules).
  [[nodiscard]] const ScheduleRequirement* requirement_for(
      PartitionId partition) const;

  /// Sum of window durations assigned to `partition` within one MTF.
  [[nodiscard]] Ticks assigned_time(PartitionId partition) const;

  /// Processor utilisation of the table: busy window time / MTF.
  [[nodiscard]] double utilisation() const;
};

/// Process tau_{m,q} = <T, D, p, C, S(t)> (eq. 11) -- static attributes only;
/// dynamic status S(t) (eq. 12) lives in the POS at runtime.
struct ProcessModel {
  std::string name;
  Ticks period{0};               // T; for (a)periodic: min inter-arrival
  Ticks deadline{kInfiniteTime}; // D (relative); kInfiniteTime = no deadline
  Priority priority{0};          // p; lower value = greater priority
  Ticks wcet{0};                 // C, needed for schedulability analysis
  bool periodic{true};
};

/// Partition P_m = <tau_m, M_m(t)> (eq. 16) -- static part.
struct PartitionModel {
  PartitionId id;
  std::string name;
  bool system_partition{false};  // may bypass APEX (Sect. 2)
  std::vector<ProcessModel> processes;  // tau_m
};

/// The whole system: P (eq. 1) plus chi (eq. 17).
struct SystemModel {
  std::vector<PartitionModel> partitions;
  std::vector<Schedule> schedules;

  [[nodiscard]] const PartitionModel* partition(PartitionId id) const;
  [[nodiscard]] const Schedule* schedule(ScheduleId id) const;
};

/// Least common multiple helper used by eq. (22); asserts on overflow-free
/// small operands (tick-scale periods).
[[nodiscard]] Ticks lcm(Ticks a, Ticks b);

/// lcm over all requirement periods of a schedule (0 when empty).
[[nodiscard]] Ticks lcm_of_periods(const std::vector<ScheduleRequirement>& reqs);

}  // namespace air::model
