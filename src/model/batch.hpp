// Schedulability-as-a-service: batch PST analysis (ROADMAP item 4).
//
// The paper frames its contribution as "laying the ground for
// schedulability analysis and automated aids" (Sect. 1); src/model's
// analyses (eqs. (1)-(24)) served one configuration at a time. This module
// turns them into a high-throughput batch service: thousands of candidate
// configurations go in, a deterministic verdict stream comes out --
// schedulable / unschedulable / infeasible, each verdict citing the binding
// equation.
//
// Two mechanisms carry the throughput (BENCH_schedulability.json):
//
//  - Memoisation. The dominant repeated cost is PartitionSupply
//    construction -- an O(MTF^2) sbf tabulation per (window set,
//    partition). Candidate streams share window designs heavily (an
//    integrator explores process placements under few PSTs), so supplies
//    are interned in a cache keyed by the canonicalised window set, with
//    hit/miss Stats mirroring util::StringArena::Stats.
//
//  - Fan-out. Per-candidate analyses are independent, so they run over a
//    util::WorkerPool (the World's epoch-executor machinery). Determinism
//    contract: the verdict stream and the cache stats are byte-identical
//    for any worker count -- results land in pre-assigned slots and cache
//    population is two-phase (serial key interning, parallel table
//    construction), so no outcome ever depends on thread interleaving.
//
// The loop is closed by src/system/flight_validate.hpp: accepted PSTs are
// actually flown in the simulator and the differential oracle asserts
// analysis-schedulable <=> zero deadline misses in flight.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/generator.hpp"
#include "model/schedulability.hpp"
#include "model/validation.hpp"
#include "telemetry/metrics.hpp"
#include "util/worker_pool.hpp"

namespace air::model {

/// One candidate configuration: per-partition timing requirements (and
/// optionally an explicit window set; when `windows` is empty the PST is
/// produced by the EDF generator) plus the process sets to analyse.
struct Candidate {
  std::uint64_t id{0};
  std::string name;
  /// Major time frame; 0 selects lcm of the requirement periods.
  Ticks mtf{0};
  std::vector<ScheduleRequirement> requirements;
  /// Explicit PST windows. Empty = generate from `requirements`.
  std::vector<Window> windows;
  std::vector<PartitionModel> partitions;
};

enum class Verdict : std::uint8_t {
  kSchedulable,    // every process meets its deadline (eq. (14) RTA)
  kUnschedulable,  // valid PST, but some process misses
  kInfeasible,     // no valid PST exists / windows violate eqs. (20)-(23)
};

[[nodiscard]] std::string_view to_string(Verdict verdict);

/// One line of the verdict stream.
struct BatchVerdict {
  std::uint64_t id{0};
  std::string name;
  Verdict verdict{Verdict::kInfeasible};
  /// The binding condition, citing the paper's equation: e.g. "eq. (21):
  /// windows overlap" for infeasible, "eq. (14): wcrt > D" for rejected.
  std::string binding;
  /// Unschedulable *and* guaranteed to miss in flight (long-run demand
  /// exceeds supply, PartitionAnalysis::overloaded) -- the sample set for
  /// the differential oracle's necessity check.
  bool definite{false};
  double utilisation{0.0};   // busy window time / MTF of the analysed PST
  Ticks worst_wcrt{0};       // max finite WCRT; -1 when some WCRT unbounded
  std::vector<PartitionAnalysis> partitions;  // empty for infeasible

  /// Deterministic single-line JSON (the NDJSON verdict stream).
  [[nodiscard]] std::string to_ndjson() const;
};

struct BatchOptions {
  /// Worker lanes, World::set_workers() semantics: 1 = inline on the
  /// caller, N = up to N concurrent lanes, 0 = one per hardware thread.
  std::size_t workers{1};
  /// Intern PartitionSupply tables by canonical window set. Off = the
  /// one-at-a-time baseline the bench compares against.
  bool memoise{true};
  AnalysisOptions analysis{Phasing::kMtfAligned, 0};
};

class BatchAnalyzer {
 public:
  explicit BatchAnalyzer(BatchOptions options = {});

  /// Analyse a batch; verdicts are index-aligned with `candidates`. May be
  /// called repeatedly (daemon mode): the supply cache and the running
  /// totals persist across calls.
  [[nodiscard]] std::vector<BatchVerdict> analyze(
      const std::vector<Candidate>& candidates);

  struct CacheStats {
    std::uint64_t lookups{0};  // (candidate, partition) supply resolutions
    std::uint64_t hits{0};     // resolved to an already-built table
    std::uint64_t misses{0};   // tables actually constructed
    std::size_t entries{0};    // live cached tables
    std::size_t bytes{0};      // approximate cached table footprint
  };
  struct Stats {
    std::uint64_t analyzed{0};
    std::uint64_t schedulable{0};
    std::uint64_t unschedulable{0};
    std::uint64_t infeasible{0};
    CacheStats cache;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const BatchOptions& options() const { return options_; }

  /// Publish the running totals into a metrics registry (the batch.*
  /// catalogue rows); air-schedule exports the result via telemetry JSON.
  void publish(telemetry::MetricsRegistry& registry) const;

 private:
  struct Slot;  // per-candidate working state (batch.cpp)

  void prepare(const Candidate& candidate, Slot& slot) const;
  void finish(const Candidate& candidate, Slot& slot) const;

  BatchOptions options_;
  util::WorkerPool pool_;
  Stats stats_;
  // Canonical window-set key -> index into supplies_. Population is
  // two-phase per analyze() call, so reads during the parallel phases need
  // no lock and stats are exact for any worker count.
  std::unordered_map<std::string, std::size_t> cache_;
  std::vector<std::unique_ptr<const PartitionSupply>> supplies_;
};

/// Deterministic candidate-stream generator (the "automated aids" feed).
/// Streams mix schedulable, definitely-overloaded and infeasible
/// candidates, and share requirement sets across candidates (an integrator
/// exploring process placements under few window designs) so the supply
/// cache has realistic reuse.
struct CandidateSpec {
  std::size_t count{256};
  std::uint64_t seed{42};
  /// Distinct requirement sets feeding the stream; 0 = count / 8 (min 1).
  std::size_t distinct_psts{0};
  /// Fraction of candidates whose process set overloads one partition
  /// (definite unschedulable -- the necessity-check population).
  double overload_fraction{0.25};
  /// Fraction of requirement sets with utilisation > 1 (infeasible).
  double infeasible_fraction{0.1};
};

[[nodiscard]] std::vector<Candidate> generate_candidates(
    const CandidateSpec& spec);

}  // namespace air::model
