// Schedulability analysis for processes under two-level TSP scheduling.
//
// The paper lays the ground for this analysis (Sect. 1: "lays the ground for
// schedulability analysis and automated aids") and lists necessary conditions
// for *partition* scheduling (eqs. 21-23). This module adds the process-level
// analysis the paper cites as future work (i): a supply-bound-function /
// response-time analysis of the fixed-priority process sets inside each
// partition, given the exact time windows of a PST.
//
// Because a PST is periodic over its MTF, the worst-case supply is additive:
//   sbf(q*MTF + r) = q*A + sbf(r),   A = partition time per MTF,
// so only sbf over one MTF is tabulated.
#pragma once

#include <string>
#include <vector>

#include "model/model.hpp"

namespace air::model {

/// Worst-case processor supply delivered to one partition by one PST.
class PartitionSupply {
 public:
  PartitionSupply(const Schedule& schedule, PartitionId partition);

  /// Execution time available to the partition in [t0, t0 + len), with the
  /// window pattern repeating every MTF (t0 in absolute ticks).
  [[nodiscard]] Ticks supply(Ticks t0, Ticks len) const;

  /// Supply bound function: least supply over any interval of length `len`.
  [[nodiscard]] Ticks sbf(Ticks len) const;

  /// Smallest interval length whose worst-case supply reaches `demand`;
  /// kInfiniteTime when the partition has no window time at all.
  [[nodiscard]] Ticks inverse_sbf(Ticks demand) const;

  /// Smallest interval length starting at absolute phase `phase` whose
  /// supply reaches `demand` (phase-aware variant used by the MTF-aligned
  /// analysis); kInfiniteTime when unreachable.
  [[nodiscard]] Ticks inverse_supply_from(Ticks phase, Ticks demand) const;

  /// Partition time per MTF (the A above).
  [[nodiscard]] Ticks per_mtf() const { return per_mtf_; }
  [[nodiscard]] Ticks mtf() const { return mtf_; }

 private:
  Ticks mtf_{0};
  Ticks per_mtf_{0};
  std::vector<char> available_;   // one flag per tick of the MTF
  std::vector<Ticks> prefix_;     // prefix_[t] = supply in [0, t)
  std::vector<Ticks> sbf_table_;  // sbf for len in [0, MTF]
};

struct ProcessAnalysis {
  std::string name;
  Ticks wcrt{0};  // worst-case response time; kInfiniteTime if unbounded
  bool schedulable{false};
};

struct PartitionAnalysis {
  PartitionId partition;
  bool schedulable{false};
  double process_utilisation{0.0};  // sum C/T
  double supply_ratio{0.0};         // partition time per MTF / MTF
  /// Long-run demand strictly exceeds long-run supply by a safety margin
  /// (process_utilisation > kOverloadMargin * supply_ratio): the verdict is
  /// not merely conservative, a deadline miss is guaranteed in any
  /// sufficiently long flight. The differential oracle's necessity check
  /// samples exactly these (analysis-rejected => the flight must miss).
  bool overloaded{false};
  std::vector<ProcessAnalysis> processes;
};

struct SystemAnalysis {
  ScheduleId schedule;
  bool schedulable{false};
  std::vector<PartitionAnalysis> partitions;

  [[nodiscard]] std::string to_text() const;
};

/// Release phasing assumed by the analysis.
///
/// kWorstCase bounds the response time over *any* release instant (the
/// classical supply-bound analysis) -- sound but pessimistic for deadlines
/// shorter than the window recurrence. kMtfAligned assumes every process
/// releases at multiples of its period from the MTF origin, which is how
/// ARINC 653 periodic processes started at NORMAL-mode entry behave; the
/// response time is then maximised over the process's distinct release
/// offsets within the hyperperiod.
enum class Phasing { kWorstCase, kMtfAligned };

/// Demand/supply ratio above which a partition is declared `overloaded`
/// (guaranteed to miss in flight, not merely analysis-rejected). The 10%
/// margin keeps the necessity oracle's time-to-first-miss within a few MTFs.
inline constexpr double kOverloadMargin = 1.1;

/// Knobs threaded through the batch service. `supply_bonus` pretends every
/// interval supplies that many extra ticks -- UNSOUND for any value > 0; it
/// exists solely as the deliberately broken analysis variant behind
/// `air-schedule --selftest` (the fi campaign's --weaken-hm idiom), proving
/// the differential flight oracle can detect an optimistic analyzer.
struct AnalysisOptions {
  Phasing phasing{Phasing::kWorstCase};
  Ticks supply_bonus{0};
};

/// Fixed-priority preemptive response-time analysis of `partition`'s process
/// set under `schedule`. Ties in priority are treated as mutual interference
/// (conservative w.r.t. the FIFO-within-priority rule of eq. 14).
[[nodiscard]] PartitionAnalysis analyze_partition(
    const Schedule& schedule, const PartitionModel& partition,
    Phasing phasing = Phasing::kWorstCase);

/// Core analysis over a caller-provided supply function -- the entry point
/// the batch service uses so one memoised PartitionSupply (the dominant
/// construction cost, an O(MTF^2) table) can serve every candidate sharing
/// the same canonical window set. `supply` must describe `partition.id`
/// under `schedule`.
[[nodiscard]] PartitionAnalysis analyze_partition(
    const Schedule& schedule, const PartitionModel& partition,
    const PartitionSupply& supply, const AnalysisOptions& options = {});

/// Analysis of every partition that owns windows in `schedule`.
[[nodiscard]] SystemAnalysis analyze_system(
    const SystemModel& system, ScheduleId schedule,
    Phasing phasing = Phasing::kWorstCase);

}  // namespace air::model
