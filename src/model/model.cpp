#include "model/model.hpp"

#include <numeric>

#include "util/assert.hpp"

namespace air::model {

const ScheduleRequirement* Schedule::requirement_for(
    PartitionId partition) const {
  for (const auto& req : requirements) {
    if (req.partition == partition) return &req;
  }
  return nullptr;
}

Ticks Schedule::assigned_time(PartitionId partition) const {
  Ticks total = 0;
  for (const auto& w : windows) {
    if (w.partition == partition) total += w.duration;
  }
  return total;
}

double Schedule::utilisation() const {
  if (mtf <= 0) return 0.0;
  Ticks busy = 0;
  for (const auto& w : windows) busy += w.duration;
  return static_cast<double>(busy) / static_cast<double>(mtf);
}

const PartitionModel* SystemModel::partition(PartitionId id) const {
  for (const auto& p : partitions) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

const Schedule* SystemModel::schedule(ScheduleId id) const {
  for (const auto& s : schedules) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

Ticks lcm(Ticks a, Ticks b) {
  AIR_ASSERT(a > 0 && b > 0);
  const Ticks g = std::gcd(a, b);
  return a / g * b;
}

Ticks lcm_of_periods(const std::vector<ScheduleRequirement>& reqs) {
  Ticks acc = 0;
  for (const auto& req : reqs) {
    if (req.period <= 0) continue;
    acc = acc == 0 ? req.period : lcm(acc, req.period);
  }
  return acc;
}

}  // namespace air::model
