// Offline verification of integrator-defined system parameters (Sect. 3/4.1).
//
// Checks each partition scheduling table against the paper's conditions:
//   eq. (20) -- every window's partition appears in Q_i
//   eq. (21) -- windows ordered, disjoint, contained in the MTF
//   eq. (22) -- MTF is a positive integer multiple of lcm of cycles
//   eq. (23) -- every partition receives its duration d within *each* of its
//               activation cycles inside the MTF (the fundamental timing
//               requirement; implies the weaker eq. (8))
// plus structural sanity the equations assume (d <= eta, eta divides MTF,
// every requirement has at least one window, windows do not straddle their
// partition's cycle boundary).
#pragma once

#include <string>
#include <vector>

#include "model/model.hpp"

namespace air::model {

enum class ViolationKind {
  kWindowPartitionUnknown,    // eq. (20)
  kWindowsOverlap,            // eq. (21) first clause
  kWindowExceedsMtf,          // eq. (21) second clause
  kMtfNotMultipleOfLcm,       // eq. (22)
  kCycleDurationUnmet,        // eq. (23)
  kDurationExceedsPeriod,     // d > eta can never be satisfied
  kPeriodNotDivisorOfMtf,     // MTF/eta must be integral for eq. (23) cycles
  kRequirementWithoutWindow,  // a partition in Q_i with d>0 but no window
  kWindowCrossesCycle,        // window straddles a k*eta boundary; eq. (23)
                              // credits it to one cycle only
  kNonPositiveField,          // mtf/duration/period <= 0 where > 0 required
};

[[nodiscard]] std::string to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  ScheduleId schedule;
  PartitionId partition;  // invalid() when not partition-specific
  std::string detail;     // human-readable, cites the equation
};

struct ValidationReport {
  std::vector<Violation> violations;
  /// Non-fatal observations. kWindowCrossesCycle lands here: eq. (23)
  /// credits a window wholly to the cycle containing its offset, so a
  /// boundary-crossing window gives that cycle more credit than it supplies
  /// before the boundary -- legal (the paper's own chi_2 does it) but worth
  /// flagging to the integrator.
  std::vector<Violation> warnings;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] bool has(ViolationKind kind) const;
  [[nodiscard]] bool has_warning(ViolationKind kind) const;
  [[nodiscard]] std::string to_text() const;
};

/// Validate one PST against eqs. (20)-(23).
[[nodiscard]] ValidationReport validate_schedule(const Schedule& schedule);

/// Validate every PST of the system (eq. (23) quantifies over all i <= n(chi)).
[[nodiscard]] ValidationReport validate_system(const SystemModel& system);

/// The derivation of eq. (25): check eq. (23) for one (schedule, partition,
/// cycle index k) triple and return the accumulated window time, so callers
/// (and the E2 test) can reproduce the paper's "200 >= 200" instantiation.
[[nodiscard]] Ticks cycle_window_time(const Schedule& schedule,
                                      PartitionId partition, Ticks cycle_index);

}  // namespace air::model
