#include "model/generator.hpp"

#include <algorithm>

namespace air::model {

double requirement_utilisation(
    const std::vector<ScheduleRequirement>& requirements) {
  double u = 0.0;
  for (const auto& req : requirements) {
    if (req.period > 0) {
      u += static_cast<double>(req.duration) /
           static_cast<double>(req.period);
    }
  }
  return u;
}

std::optional<Schedule> generate_schedule(const GeneratorInput& input) {
  // Structural feasibility.
  for (const auto& req : input.requirements) {
    if (req.period <= 0 || req.duration < 0 || req.duration > req.period) {
      return std::nullopt;
    }
  }
  const Ticks period_lcm = lcm_of_periods(input.requirements);
  if (period_lcm <= 0) return std::nullopt;
  const Ticks mtf = input.mtf > 0 ? input.mtf : period_lcm;
  if (mtf % period_lcm != 0) return std::nullopt;  // would break eq. (22)
  if (requirement_utilisation(input.requirements) > 1.0) return std::nullopt;

  struct Job {
    std::size_t req_index;
    Ticks release;
    Ticks deadline;
    Ticks remaining;
  };

  std::vector<Job> jobs;
  for (std::size_t r = 0; r < input.requirements.size(); ++r) {
    const auto& req = input.requirements[r];
    if (req.duration == 0) continue;
    for (Ticks k = 0; k < mtf / req.period; ++k) {
      jobs.push_back(
          {r, k * req.period, (k + 1) * req.period, req.duration});
    }
  }

  // EDF over the integer-tick timeline. One pass over [0, MTF); at each tick
  // run the released job with the earliest deadline (ties: lower partition
  // id, for determinism).
  std::vector<std::size_t> slot_owner(static_cast<std::size_t>(mtf),
                                      SIZE_MAX);
  for (Ticks t = 0; t < mtf; ++t) {
    Job* chosen = nullptr;
    for (Job& job : jobs) {
      if (job.remaining <= 0 || job.release > t) continue;
      if (chosen == nullptr || job.deadline < chosen->deadline ||
          (job.deadline == chosen->deadline &&
           input.requirements[job.req_index].partition.value() <
               input.requirements[chosen->req_index].partition.value())) {
        chosen = &job;
      }
    }
    if (chosen == nullptr) continue;  // idle tick
    if (t >= chosen->deadline) return std::nullopt;  // infeasible
    slot_owner[static_cast<std::size_t>(t)] = chosen->req_index;
    --chosen->remaining;
  }
  for (const Job& job : jobs) {
    if (job.remaining > 0) return std::nullopt;
  }

  // Coalesce consecutive slots of the same partition into windows, breaking
  // at the partition's own cycle boundaries so eq. (23) credits each window
  // to exactly one cycle.
  Schedule schedule;
  schedule.id = input.id;
  schedule.name = input.name;
  schedule.mtf = mtf;
  schedule.requirements = input.requirements;

  Ticks t = 0;
  while (t < mtf) {
    const std::size_t owner = slot_owner[static_cast<std::size_t>(t)];
    if (owner == SIZE_MAX) {
      ++t;
      continue;
    }
    const auto& req = input.requirements[owner];
    const Ticks cycle_end = (t / req.period + 1) * req.period;
    Ticks end = t;
    while (end < mtf && end < cycle_end &&
           slot_owner[static_cast<std::size_t>(end)] == owner) {
      ++end;
    }
    schedule.windows.push_back({req.partition, t, end - t});
    t = end;
  }

  std::sort(schedule.windows.begin(), schedule.windows.end(),
            [](const Window& a, const Window& b) { return a.offset < b.offset; });
  return schedule;
}

}  // namespace air::model
