#include "model/schedulability.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace air::model {

PartitionSupply::PartitionSupply(const Schedule& schedule,
                                 PartitionId partition)
    : mtf_(schedule.mtf) {
  AIR_ASSERT(mtf_ > 0);
  available_.assign(static_cast<std::size_t>(mtf_), 0);
  for (const Window& w : schedule.windows) {
    if (w.partition != partition) continue;
    for (Ticks t = w.offset; t < w.offset + w.duration && t < mtf_; ++t) {
      available_[static_cast<std::size_t>(t)] = 1;
    }
  }

  prefix_.assign(static_cast<std::size_t>(mtf_) + 1, 0);
  for (Ticks t = 0; t < mtf_; ++t) {
    prefix_[static_cast<std::size_t>(t) + 1] =
        prefix_[static_cast<std::size_t>(t)] +
        available_[static_cast<std::size_t>(t)];
  }
  per_mtf_ = prefix_[static_cast<std::size_t>(mtf_)];

  // sbf over one MTF: min over all start phases t0 in [0, MTF).
  sbf_table_.assign(static_cast<std::size_t>(mtf_) + 1, 0);
  for (Ticks len = 1; len <= mtf_; ++len) {
    Ticks least = len;  // supply can never exceed the interval length
    for (Ticks t0 = 0; t0 < mtf_; ++t0) {
      least = std::min(least, supply(t0, len));
      if (least == 0) break;
    }
    sbf_table_[static_cast<std::size_t>(len)] = least;
  }
}

Ticks PartitionSupply::supply(Ticks t0, Ticks len) const {
  AIR_ASSERT(t0 >= 0 && len >= 0);
  const auto whole = [this](Ticks upto) {
    // supply in [0, upto) under periodic extension of the MTF pattern
    const Ticks full = upto / mtf_;
    const Ticks rest = upto % mtf_;
    return full * per_mtf_ + prefix_[static_cast<std::size_t>(rest)];
  };
  return whole(t0 + len) - whole(t0);
}

Ticks PartitionSupply::sbf(Ticks len) const {
  if (len <= 0) return 0;
  const Ticks full = len / mtf_;
  const Ticks rest = len % mtf_;
  return full * per_mtf_ + sbf_table_[static_cast<std::size_t>(rest)];
}

Ticks PartitionSupply::inverse_sbf(Ticks demand) const {
  if (demand <= 0) return 0;
  if (per_mtf_ <= 0) return kInfiniteTime;
  // sbf is non-decreasing; binary search over a bracket guaranteed to
  // contain the answer: demand needs at most ceil(demand/A)+1 MTFs.
  Ticks hi = ((demand + per_mtf_ - 1) / per_mtf_ + 1) * mtf_;
  Ticks lo = 0;
  while (lo < hi) {
    const Ticks mid = lo + (hi - lo) / 2;
    if (sbf(mid) >= demand) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Ticks PartitionSupply::inverse_supply_from(Ticks phase, Ticks demand) const {
  if (demand <= 0) return 0;
  if (per_mtf_ <= 0) return kInfiniteTime;
  Ticks hi = ((demand + per_mtf_ - 1) / per_mtf_ + 1) * mtf_;
  Ticks lo = 0;
  while (lo < hi) {
    const Ticks mid = lo + (hi - lo) / 2;
    if (supply(phase, mid) >= demand) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

namespace {

/// Interference demand of higher-or-equal-priority processes over an
/// interval of length t, plus the process's own WCET.
Ticks demand(const std::vector<const ProcessModel*>& interferers,
             const ProcessModel& self, Ticks t) {
  Ticks total = self.wcet;
  for (const ProcessModel* p : interferers) {
    AIR_ASSERT(p->period > 0);
    total += ((t + p->period - 1) / p->period) * p->wcet;
  }
  return total;
}

/// Fixed-point response-time iteration using `invert` as the inverse supply
/// function. Returns kInfiniteTime when no fixpoint exists within `bound`.
template <class InvertFn>
Ticks response_time(const std::vector<const ProcessModel*>& interferers,
                    const ProcessModel& self, Ticks bound, InvertFn invert) {
  Ticks t = invert(self.wcet);
  while (t != kInfiniteTime && t <= bound) {
    const Ticks next = invert(demand(interferers, self, t));
    if (next == t) return t;
    t = next;
  }
  return kInfiniteTime;
}

}  // namespace

PartitionAnalysis analyze_partition(const Schedule& schedule,
                                    const PartitionModel& partition,
                                    Phasing phasing) {
  const PartitionSupply supply(schedule, partition.id);
  return analyze_partition(schedule, partition, supply,
                           AnalysisOptions{phasing, 0});
}

PartitionAnalysis analyze_partition(const Schedule& schedule,
                                    const PartitionModel& partition,
                                    const PartitionSupply& supply,
                                    const AnalysisOptions& options) {
  const Phasing phasing = options.phasing;
  // The selftest mutation: claim `bonus` extra ticks of supply in every
  // interval by shrinking the demand handed to the inverse functions.
  const Ticks bonus = options.supply_bonus;
  const auto debit = [bonus](Ticks demanded) {
    return demanded > bonus ? demanded - bonus : 0;
  };

  PartitionAnalysis result;
  result.partition = partition.id;
  result.schedulable = true;

  result.supply_ratio =
      static_cast<double>(supply.per_mtf()) /
      static_cast<double>(schedule.mtf);

  for (const ProcessModel& p : partition.processes) {
    if (p.period > 0 && p.period != kInfiniteTime && p.wcet > 0) {
      result.process_utilisation +=
          static_cast<double>(p.wcet) / static_cast<double>(p.period);
    }
  }
  result.overloaded =
      result.process_utilisation > kOverloadMargin * result.supply_ratio;

  for (std::size_t q = 0; q < partition.processes.size(); ++q) {
    const ProcessModel& self = partition.processes[q];
    ProcessAnalysis pa;
    pa.name = self.name;

    if (self.wcet <= 0) {
      pa.wcrt = 0;
      pa.schedulable = true;
      result.processes.push_back(std::move(pa));
      continue;
    }

    // Interference set: strictly higher priority always interferes; equal
    // priority interferes conservatively (FIFO order not assumed).
    std::vector<const ProcessModel*> interferers;
    for (std::size_t j = 0; j < partition.processes.size(); ++j) {
      if (j == q) continue;
      const ProcessModel& other = partition.processes[j];
      if (other.wcet <= 0 || other.period <= 0) continue;
      if (other.priority <= self.priority) interferers.push_back(&other);
    }

    // Fixed-point iteration: t_{k+1} = inverse-supply(demand(t_k)).
    const Ticks bound =
        self.deadline != kInfiniteTime ? self.deadline : 64 * schedule.mtf;
    Ticks wcrt;
    if (phasing == Phasing::kWorstCase || self.period <= 0 ||
        self.period == kInfiniteTime) {
      wcrt = response_time(interferers, self, bound, [&](Ticks x) {
        return supply.inverse_sbf(debit(x));
      });
    } else {
      // MTF-aligned releases: maximise over the process's distinct release
      // offsets within the schedule hyperperiod.
      const Ticks hyper = lcm(self.period, schedule.mtf);
      wcrt = 0;
      for (Ticks release = 0; release < hyper; release += self.period) {
        const Ticks phase = release % schedule.mtf;
        const Ticks r =
            response_time(interferers, self, bound, [&](Ticks x) {
              return supply.inverse_supply_from(phase, debit(x));
            });
        if (r == kInfiniteTime) {
          wcrt = kInfiniteTime;
          break;
        }
        wcrt = std::max(wcrt, r);
      }
    }

    if (wcrt != kInfiniteTime) {
      pa.wcrt = wcrt;
      pa.schedulable =
          self.deadline == kInfiniteTime || wcrt <= self.deadline;
    } else {
      pa.wcrt = kInfiniteTime;
      pa.schedulable = false;
    }
    if (!pa.schedulable) result.schedulable = false;
    result.processes.push_back(std::move(pa));
  }
  return result;
}

SystemAnalysis analyze_system(const SystemModel& system, ScheduleId schedule,
                              Phasing phasing) {
  SystemAnalysis analysis;
  analysis.schedule = schedule;
  analysis.schedulable = true;
  const Schedule* sched = system.schedule(schedule);
  AIR_ASSERT_MSG(sched != nullptr, "unknown schedule id");
  for (const PartitionModel& partition : system.partitions) {
    if (sched->requirement_for(partition.id) == nullptr) continue;
    PartitionAnalysis pa = analyze_partition(*sched, partition, phasing);
    if (!pa.schedulable) analysis.schedulable = false;
    analysis.partitions.push_back(std::move(pa));
  }
  return analysis;
}

std::string SystemAnalysis::to_text() const {
  std::ostringstream os;
  os << "schedule " << schedule.value() << ": "
     << (schedulable ? "SCHEDULABLE" : "NOT SCHEDULABLE") << '\n';
  for (const auto& part : partitions) {
    os << "  partition " << part.partition.value()
       << " supply=" << part.supply_ratio
       << " util=" << part.process_utilisation
       << (part.schedulable ? "" : "  [unschedulable]") << '\n';
    for (const auto& proc : part.processes) {
      os << "    " << proc.name << " wcrt=";
      if (proc.wcrt == kInfiniteTime) {
        os << "unbounded";
      } else {
        os << proc.wcrt;
      }
      os << (proc.schedulable ? "" : "  [misses deadline]") << '\n';
    }
  }
  return os.str();
}

}  // namespace air::model
