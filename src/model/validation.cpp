#include "model/validation.hpp"

#include <algorithm>
#include <sstream>

namespace air::model {

std::string to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kWindowPartitionUnknown: return "window_partition_unknown(eq20)";
    case ViolationKind::kWindowsOverlap: return "windows_overlap(eq21)";
    case ViolationKind::kWindowExceedsMtf: return "window_exceeds_mtf(eq21)";
    case ViolationKind::kMtfNotMultipleOfLcm: return "mtf_not_multiple_of_lcm(eq22)";
    case ViolationKind::kCycleDurationUnmet: return "cycle_duration_unmet(eq23)";
    case ViolationKind::kDurationExceedsPeriod: return "duration_exceeds_period";
    case ViolationKind::kPeriodNotDivisorOfMtf: return "period_not_divisor_of_mtf";
    case ViolationKind::kRequirementWithoutWindow: return "requirement_without_window";
    case ViolationKind::kWindowCrossesCycle: return "window_crosses_cycle";
    case ViolationKind::kNonPositiveField: return "non_positive_field";
  }
  return "unknown";
}

bool ValidationReport::has(ViolationKind kind) const {
  return std::any_of(violations.begin(), violations.end(),
                     [kind](const Violation& v) { return v.kind == kind; });
}

bool ValidationReport::has_warning(ViolationKind kind) const {
  return std::any_of(warnings.begin(), warnings.end(),
                     [kind](const Violation& v) { return v.kind == kind; });
}

std::string ValidationReport::to_text() const {
  std::ostringstream os;
  for (const auto& v : violations) {
    os << to_string(v.kind) << " schedule=" << v.schedule.value()
       << " partition=" << v.partition.value() << ": " << v.detail << '\n';
  }
  return os.str();
}

Ticks cycle_window_time(const Schedule& schedule, PartitionId partition,
                        Ticks cycle_index) {
  const ScheduleRequirement* req = schedule.requirement_for(partition);
  if (req == nullptr || req->period <= 0) return 0;
  const Ticks lo = cycle_index * req->period;
  const Ticks hi = lo + req->period;
  Ticks total = 0;
  // Sum over { omega_{i,j} | P = partition and O in [k*eta, (k+1)*eta) },
  // exactly as the summation domain of eq. (23).
  for (const Window& w : schedule.windows) {
    if (w.partition == partition && w.offset >= lo && w.offset < hi) {
      total += w.duration;
    }
  }
  return total;
}

namespace {

void check_structure(const Schedule& s, ValidationReport& report) {
  if (s.mtf <= 0) {
    report.violations.push_back({ViolationKind::kNonPositiveField, s.id,
                                 PartitionId::invalid(),
                                 "MTF must be positive"});
  }
  for (const auto& req : s.requirements) {
    if (req.period <= 0) {
      report.violations.push_back(
          {ViolationKind::kNonPositiveField, s.id, req.partition,
           "activation cycle eta must be positive"});
    }
    if (req.duration < 0) {
      report.violations.push_back(
          {ViolationKind::kNonPositiveField, s.id, req.partition,
           "duration d must be non-negative"});
    }
  }
  for (const auto& w : s.windows) {
    if (w.duration <= 0) {
      report.violations.push_back(
          {ViolationKind::kNonPositiveField, s.id, w.partition,
           "window duration c must be positive"});
    }
    if (w.offset < 0) {
      report.violations.push_back(
          {ViolationKind::kNonPositiveField, s.id, w.partition,
           "window offset O must be non-negative"});
    }
  }
}

void check_eq20(const Schedule& s, ValidationReport& report) {
  for (const auto& w : s.windows) {
    if (s.requirement_for(w.partition) == nullptr) {
      std::ostringstream os;
      os << "window at offset " << w.offset
         << " names a partition absent from Q_i";
      report.violations.push_back({ViolationKind::kWindowPartitionUnknown,
                                   s.id, w.partition, os.str()});
    }
  }
}

void check_eq21(const Schedule& s, ValidationReport& report) {
  std::vector<Window> sorted = s.windows;
  std::sort(sorted.begin(), sorted.end(),
            [](const Window& a, const Window& b) { return a.offset < b.offset; });
  for (std::size_t j = 0; j + 1 < sorted.size(); ++j) {
    if (sorted[j].offset + sorted[j].duration > sorted[j + 1].offset) {
      std::ostringstream os;
      os << "O_j + c_j = " << sorted[j].offset + sorted[j].duration
         << " > O_{j+1} = " << sorted[j + 1].offset;
      report.violations.push_back(
          {ViolationKind::kWindowsOverlap, s.id, sorted[j].partition, os.str()});
    }
  }
  if (!sorted.empty()) {
    const Window& last = sorted.back();
    if (last.offset + last.duration > s.mtf) {
      std::ostringstream os;
      os << "O_n + c_n = " << last.offset + last.duration << " > MTF = "
         << s.mtf;
      report.violations.push_back(
          {ViolationKind::kWindowExceedsMtf, s.id, last.partition, os.str()});
    }
  }
}

void check_eq22(const Schedule& s, ValidationReport& report) {
  const Ticks period_lcm = lcm_of_periods(s.requirements);
  if (period_lcm <= 0 || s.mtf <= 0) return;  // structural errors already filed
  if (s.mtf % period_lcm != 0) {
    std::ostringstream os;
    os << "MTF = " << s.mtf << " is not a multiple of lcm(eta) = " << period_lcm;
    report.violations.push_back({ViolationKind::kMtfNotMultipleOfLcm, s.id,
                                 PartitionId::invalid(), os.str()});
  }
}

void check_eq23(const Schedule& s, ValidationReport& report) {
  for (const auto& req : s.requirements) {
    if (req.period <= 0 || s.mtf <= 0) continue;
    if (req.duration > req.period) {
      std::ostringstream os;
      os << "d = " << req.duration << " > eta = " << req.period;
      report.violations.push_back({ViolationKind::kDurationExceedsPeriod, s.id,
                                   req.partition, os.str()});
      continue;
    }
    if (s.mtf % req.period != 0) {
      std::ostringstream os;
      os << "eta = " << req.period << " does not divide MTF = " << s.mtf;
      report.violations.push_back({ViolationKind::kPeriodNotDivisorOfMtf, s.id,
                                   req.partition, os.str()});
      continue;
    }
    if (req.duration > 0 && s.assigned_time(req.partition) == 0) {
      report.violations.push_back({ViolationKind::kRequirementWithoutWindow,
                                   s.id, req.partition,
                                   "requirement has no time window"});
      continue;
    }
    const Ticks cycles = s.mtf / req.period;
    for (Ticks k = 0; k < cycles; ++k) {
      const Ticks got = cycle_window_time(s, req.partition, k);
      if (got < req.duration) {
        std::ostringstream os;
        os << "cycle k=" << k << ": sum(c) = " << got << " < d = "
           << req.duration;
        report.violations.push_back({ViolationKind::kCycleDurationUnmet, s.id,
                                     req.partition, os.str()});
      }
    }
    // Eq. (23) attributes a window wholly to the cycle containing its
    // offset; a boundary-crossing window is legal (the paper's chi_2 has
    // one) but flagged as a warning for the integrator.
    for (const Window& w : s.windows) {
      if (w.partition != req.partition) continue;
      const Ticks cycle_end = (w.offset / req.period + 1) * req.period;
      if (w.offset + w.duration > cycle_end) {
        std::ostringstream os;
        os << "window [" << w.offset << ", " << w.offset + w.duration
           << ") crosses cycle boundary " << cycle_end;
        report.warnings.push_back({ViolationKind::kWindowCrossesCycle, s.id,
                                   req.partition, os.str()});
      }
    }
  }
}

}  // namespace

ValidationReport validate_schedule(const Schedule& schedule) {
  ValidationReport report;
  check_structure(schedule, report);
  check_eq20(schedule, report);
  check_eq21(schedule, report);
  check_eq22(schedule, report);
  check_eq23(schedule, report);
  return report;
}

ValidationReport validate_system(const SystemModel& system) {
  ValidationReport report;
  for (const auto& schedule : system.schedules) {
    ValidationReport r = validate_schedule(schedule);
    report.violations.insert(report.violations.end(), r.violations.begin(),
                             r.violations.end());
    report.warnings.insert(report.warnings.end(), r.warnings.begin(),
                           r.warnings.end());
    // Windows must reference partitions that exist in the system, too.
    for (const auto& w : schedule.windows) {
      if (system.partition(w.partition) == nullptr) {
        report.violations.push_back(
            {ViolationKind::kWindowPartitionUnknown, schedule.id, w.partition,
             "window partition not in system partition set P"});
      }
    }
  }
  return report;
}

}  // namespace air::model
