#include "model/batch.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <thread>

#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace air::model {

namespace {

/// Binding-equation citation for an infeasibility class (the verdict
/// stream's contract: every rejection names the violated condition).
[[nodiscard]] std::string_view binding_for(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kWindowPartitionUnknown:
      return "eq. (20): window partition not in Q";
    case ViolationKind::kWindowsOverlap:
      return "eq. (21): windows overlap";
    case ViolationKind::kWindowExceedsMtf:
      return "eq. (21): window exceeds the MTF";
    case ViolationKind::kMtfNotMultipleOfLcm:
      return "eq. (22): MTF not a multiple of the cycle lcm";
    case ViolationKind::kCycleDurationUnmet:
      return "eq. (23): cycle duration unmet";
    case ViolationKind::kDurationExceedsPeriod:
      return "eq. (19): duration exceeds period";
    case ViolationKind::kPeriodNotDivisorOfMtf:
      return "eq. (23): period does not divide the MTF";
    case ViolationKind::kRequirementWithoutWindow:
      return "eq. (23): requirement without a window";
    case ViolationKind::kWindowCrossesCycle:
      return "eq. (23): window crosses a cycle boundary";
    case ViolationKind::kNonPositiveField:
      return "eq. (19): non-positive field";
  }
  return "eq. (20)-(23)";
}

/// Canonical supply-cache key: the partition's window set modulo schedule
/// identity. Two schedules granting the same (offset, duration) pattern
/// over the same MTF share one sbf table.
[[nodiscard]] std::string supply_key(const Schedule& schedule,
                                     PartitionId partition) {
  std::string key = "m" + std::to_string(schedule.mtf) + '|';
  for (const Window& w : schedule.windows) {
    if (w.partition != partition) continue;
    key += std::to_string(w.offset);
    key += '+';
    key += std::to_string(w.duration);
    key += ',';
  }
  return key;
}

/// Approximate heap footprint of one cached PartitionSupply (the
/// available/prefix/sbf tables; see schedulability.hpp).
[[nodiscard]] std::size_t supply_bytes(Ticks mtf) {
  const auto n = static_cast<std::size_t>(mtf);
  return n * sizeof(char) + 2 * (n + 1) * sizeof(Ticks);
}

[[nodiscard]] std::size_t pool_threads(std::size_t workers) {
  if (workers == 1) return 0;  // inline on the caller
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
  }
  return workers - 1;  // the caller is a lane too (WorkerPool::run)
}

}  // namespace

std::string_view to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kSchedulable: return "schedulable";
    case Verdict::kUnschedulable: return "unschedulable";
    case Verdict::kInfeasible: return "infeasible";
  }
  return "?";
}

std::string BatchVerdict::to_ndjson() const {
  std::ostringstream os;
  os << "{\"id\":" << id
     << ",\"name\":" << util::json::Value(name).dump()
     << ",\"verdict\":\"" << to_string(verdict) << '"'
     << ",\"binding\":" << util::json::Value(binding).dump()
     << ",\"definite\":" << (definite ? "true" : "false");
  char util_buf[40];
  std::snprintf(util_buf, sizeof util_buf, "%.6g", utilisation);
  os << ",\"utilisation\":" << util_buf << ",\"worst_wcrt\":" << worst_wcrt
     << '}';
  return os.str();
}

/// Per-candidate working state. Written only by the lane owning the
/// candidate's index; read across phases after a pool barrier.
struct BatchAnalyzer::Slot {
  std::optional<Schedule> schedule;
  std::vector<const PartitionModel*> parts;   // analysable partitions
  std::vector<std::size_t> supply_index;      // parallel to parts (memoised)
  BatchVerdict verdict;
  bool done{false};  // verdict settled in prepare() (infeasible)
};

BatchAnalyzer::BatchAnalyzer(BatchOptions options)
    : options_(options), pool_(pool_threads(options.workers)) {}

void BatchAnalyzer::prepare(const Candidate& candidate, Slot& slot) const {
  slot.verdict.id = candidate.id;
  slot.verdict.name = candidate.name;

  const auto infeasible = [&](std::string binding) {
    slot.verdict.verdict = Verdict::kInfeasible;
    slot.verdict.binding = std::move(binding);
    slot.verdict.worst_wcrt = 0;
    slot.done = true;
  };

  if (candidate.windows.empty()) {
    // Mirror the generator's rejection order so the verdict can cite the
    // actual binding condition instead of a bare "construction failed".
    for (const ScheduleRequirement& req : candidate.requirements) {
      if (req.period <= 0 || req.duration < 0) {
        return infeasible(std::string{
            binding_for(ViolationKind::kNonPositiveField)});
      }
      if (req.duration > req.period) {
        return infeasible(std::string{
            binding_for(ViolationKind::kDurationExceedsPeriod)});
      }
    }
    const Ticks period_lcm = lcm_of_periods(candidate.requirements);
    if (period_lcm <= 0) {
      return infeasible(
          std::string{binding_for(ViolationKind::kNonPositiveField)});
    }
    if (candidate.mtf > 0 && candidate.mtf % period_lcm != 0) {
      return infeasible(
          std::string{binding_for(ViolationKind::kMtfNotMultipleOfLcm)});
    }
    if (requirement_utilisation(candidate.requirements) > 1.0) {
      return infeasible("eq. (8): total utilisation exceeds 1");
    }
    GeneratorInput input;
    input.requirements = candidate.requirements;
    input.mtf = candidate.mtf;
    input.name = candidate.name.empty() ? "generated" : candidate.name;
    slot.schedule = generate_schedule(input);
    if (!slot.schedule.has_value()) {
      return infeasible("eq. (23): EDF found no feasible window layout");
    }
  } else {
    Schedule schedule;
    schedule.id = ScheduleId{0};
    schedule.name = candidate.name;
    schedule.mtf = candidate.mtf > 0
                       ? candidate.mtf
                       : lcm_of_periods(candidate.requirements);
    schedule.requirements = candidate.requirements;
    schedule.windows = candidate.windows;
    std::sort(schedule.windows.begin(), schedule.windows.end(),
              [](const Window& a, const Window& b) {
                return a.offset < b.offset;
              });
    if (schedule.mtf <= 0) {
      return infeasible(
          std::string{binding_for(ViolationKind::kNonPositiveField)});
    }
    const ValidationReport report = validate_schedule(schedule);
    if (!report.ok()) {
      return infeasible(std::string{binding_for(report.violations[0].kind)});
    }
    slot.schedule = std::move(schedule);
  }

  slot.verdict.utilisation = slot.schedule->utilisation();
  for (const PartitionModel& pm : candidate.partitions) {
    if (slot.schedule->requirement_for(pm.id) != nullptr) {
      slot.parts.push_back(&pm);
    }
  }
}

void BatchAnalyzer::finish(const Candidate& candidate, Slot& slot) const {
  AIR_ASSERT(slot.schedule.has_value());
  BatchVerdict& v = slot.verdict;
  v.verdict = Verdict::kSchedulable;
  v.binding = "eq. (14): wcrt <= D for every process";
  v.worst_wcrt = 0;

  for (std::size_t k = 0; k < slot.parts.size(); ++k) {
    const PartitionModel& pm = *slot.parts[k];
    PartitionAnalysis pa;
    if (options_.memoise) {
      const PartitionSupply* supply = supplies_[slot.supply_index[k]].get();
      AIR_ASSERT(supply != nullptr);
      pa = analyze_partition(*slot.schedule, pm, *supply, options_.analysis);
    } else {
      const PartitionSupply supply(*slot.schedule, pm.id);
      pa = analyze_partition(*slot.schedule, pm, supply, options_.analysis);
    }
    if (!pa.schedulable && v.verdict == Verdict::kSchedulable) {
      v.verdict = Verdict::kUnschedulable;
      v.binding = "eq. (14): wcrt > D";
    }
    if (pa.overloaded) {
      v.definite = true;
      v.binding = "eq. (8): partition demand exceeds its PST supply";
    }
    for (const ProcessAnalysis& proc : pa.processes) {
      if (proc.wcrt == kInfiniteTime) {
        v.worst_wcrt = -1;
      } else if (v.worst_wcrt >= 0) {
        v.worst_wcrt = std::max(v.worst_wcrt, proc.wcrt);
      }
    }
    v.partitions.push_back(std::move(pa));
  }
  (void)candidate;
}

std::vector<BatchVerdict> BatchAnalyzer::analyze(
    const std::vector<Candidate>& candidates) {
  const std::size_t n = candidates.size();
  std::vector<Slot> slots(n);

  // Phase 1 (parallel): PST construction/validation per candidate.
  pool_.run(n, [&](std::size_t i) { prepare(candidates[i], slots[i]); });

  // Phase 2 (serial): intern canonical window-set keys in candidate order.
  // Serialising the *interning* (cheap string work) is what makes hit/miss
  // counts and table identity independent of the worker count; the O(MTF^2)
  // table constructions stay parallel in phase 3.
  struct Build {
    std::size_t cand;
    std::size_t part;
    std::size_t index;  // into supplies_
  };
  std::vector<Build> builds;
  if (options_.memoise) {
    for (std::size_t i = 0; i < n; ++i) {
      Slot& slot = slots[i];
      if (slot.done) continue;
      slot.supply_index.resize(slot.parts.size());
      for (std::size_t k = 0; k < slot.parts.size(); ++k) {
        ++stats_.cache.lookups;
        std::string key = supply_key(*slot.schedule, slot.parts[k]->id);
        const auto [it, inserted] =
            cache_.try_emplace(std::move(key), supplies_.size());
        if (inserted) {
          supplies_.emplace_back(nullptr);
          builds.push_back({i, k, it->second});
          ++stats_.cache.misses;
          stats_.cache.bytes += supply_bytes(slot.schedule->mtf);
        } else {
          ++stats_.cache.hits;
        }
        slot.supply_index[k] = it->second;
      }
    }
    stats_.cache.entries = supplies_.size();

    // Phase 3 (parallel): build the missing sbf tables, one lane per table.
    pool_.run(builds.size(), [&](std::size_t b) {
      const Build& build = builds[b];
      const Slot& slot = slots[build.cand];
      supplies_[build.index] = std::make_unique<const PartitionSupply>(
          *slot.schedule, slot.parts[build.part]->id);
    });
  }

  // Phase 4 (parallel): per-candidate response-time analyses.
  pool_.run(n, [&](std::size_t i) {
    if (!slots[i].done) finish(candidates[i], slots[i]);
  });

  std::vector<BatchVerdict> verdicts;
  verdicts.reserve(n);
  for (Slot& slot : slots) {
    ++stats_.analyzed;
    switch (slot.verdict.verdict) {
      case Verdict::kSchedulable: ++stats_.schedulable; break;
      case Verdict::kUnschedulable: ++stats_.unschedulable; break;
      case Verdict::kInfeasible: ++stats_.infeasible; break;
    }
    verdicts.push_back(std::move(slot.verdict));
  }
  return verdicts;
}

void BatchAnalyzer::publish(telemetry::MetricsRegistry& registry) const {
  using telemetry::Metric;
  registry.set_counter(Metric::kBatchConfigs, -1, stats_.analyzed);
  registry.set_counter(Metric::kBatchSchedulable, -1, stats_.schedulable);
  registry.set_counter(Metric::kBatchUnschedulable, -1,
                       stats_.unschedulable);
  registry.set_counter(Metric::kBatchInfeasible, -1, stats_.infeasible);
  registry.set_counter(Metric::kBatchSupplyHits, -1, stats_.cache.hits);
  registry.set_counter(Metric::kBatchSupplyMisses, -1, stats_.cache.misses);
}

std::vector<Candidate> generate_candidates(const CandidateSpec& spec) {
  util::Rng rng(spec.seed);
  const std::size_t distinct =
      spec.distinct_psts > 0
          ? spec.distinct_psts
          : std::max<std::size_t>(1, spec.count / 8);
  static constexpr Ticks kPeriods[] = {80, 160, 320};

  struct ReqSet {
    std::vector<ScheduleRequirement> reqs;
    bool infeasible{false};
  };
  std::vector<ReqSet> sets;
  sets.reserve(distinct);
  for (std::size_t d = 0; d < distinct; ++d) {
    ReqSet set;
    set.infeasible = rng.uniform01() < spec.infeasible_fraction;
    const int partitions = static_cast<int>(rng.uniform(2, 4));
    double budget = 0.9;
    for (int p = 0; p < partitions; ++p) {
      const Ticks period =
          kPeriods[static_cast<std::size_t>(rng.uniform(0, 2))];
      const double share = budget / static_cast<double>(partitions - p) *
                           (0.5 + rng.uniform01() * 0.5);
      const Ticks duration = std::max<Ticks>(
          6, static_cast<Ticks>(share * static_cast<double>(period)));
      budget -= static_cast<double>(duration) / static_cast<double>(period);
      set.reqs.push_back({PartitionId{p}, period, duration});
    }
    // Infeasible sets: inflate durations until utilisation exceeds 1 (the
    // generator then rejects with the eq. (8) binding). Bounded: durations
    // are clamped at their periods, where utilisation >= 2.
    while (set.infeasible && requirement_utilisation(set.reqs) <= 1.0) {
      for (ScheduleRequirement& req : set.reqs) {
        req.duration = std::min(req.period, req.duration * 4 / 3 + 1);
      }
    }
    sets.push_back(std::move(set));
  }

  std::vector<Candidate> candidates;
  candidates.reserve(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) {
    Candidate c;
    c.id = i;
    c.name = "cand-" + std::to_string(i);
    const ReqSet& set =
        sets[static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(distinct) - 1))];
    c.requirements = set.reqs;

    const int partitions = static_cast<int>(set.reqs.size());
    const bool overload =
        !set.infeasible && rng.uniform01() < spec.overload_fraction;
    const int victim =
        overload ? static_cast<int>(rng.uniform(0, partitions - 1)) : -1;
    for (int p = 0; p < partitions; ++p) {
      const ScheduleRequirement& req = set.reqs[static_cast<std::size_t>(p)];
      PartitionModel pm;
      pm.id = PartitionId{p};
      pm.name = "P" + std::to_string(p);
      if (set.infeasible) {
        // Analysis never runs on infeasible candidates; keep a token set.
        pm.processes.push_back({"q0", req.period, req.period, 10, 3, true});
      } else if (p == victim) {
        // Long-run demand ~1.35x the partition's supply: definitely
        // unschedulable, and guaranteed to miss within a few MTFs when
        // flown (the necessity-check population).
        const Ticks wcet = std::max<Ticks>(
            3, std::min(req.period, req.duration * 27 / 20 + 1));
        pm.processes.push_back({"hog", req.period, req.period, 10, wcet,
                                true});
      } else {
        const int processes = static_cast<int>(rng.uniform(1, 3));
        for (int q = 0; q < processes; ++q) {
          const Ticks period = req.period * rng.uniform(1, 2);
          const Ticks compute = std::max<Ticks>(
              1, req.duration / (2 * processes) + rng.uniform(-2, 2));
          pm.processes.push_back({"q" + std::to_string(q), period, period,
                                  static_cast<Priority>(10 + q), compute + 1,
                                  true});
        }
      }
      c.partitions.push_back(std::move(pm));
    }
    candidates.push_back(std::move(c));
  }
  return candidates;
}

}  // namespace air::model
