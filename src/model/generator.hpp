// Automated PST generation -- the "automated aids to the definition of
// system parameters" the paper's introduction calls for.
//
// Given the per-partition timing requirements Q = {<P, eta, d>}, produces a
// partition scheduling table whose windows satisfy eqs. (20)-(23) by
// construction. The generator runs EDF over the partition *cycles* (each
// cycle k of partition m is a job released at k*eta with deadline (k+1)*eta
// and demand d); EDF optimality makes the construction succeed whenever
// sum(d/eta) <= 1 on this integer-tick timeline.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/model.hpp"

namespace air::model {

struct GeneratorInput {
  std::vector<ScheduleRequirement> requirements;
  /// Major time frame; 0 selects lcm of the periods (the minimal legal MTF
  /// under eq. (22) with k = 1).
  Ticks mtf{0};
  ScheduleId id{ScheduleId{0}};
  std::string name{"generated"};
};

/// Returns a valid schedule, or nullopt when the requirement set is
/// infeasible (over-utilised or structurally impossible).
[[nodiscard]] std::optional<Schedule> generate_schedule(
    const GeneratorInput& input);

/// Total utilisation sum(d/eta) of a requirement set.
[[nodiscard]] double requirement_utilisation(
    const std::vector<ScheduleRequirement>& requirements);

}  // namespace air::model
