// AIR Health Monitoring (Sect. 2.4, Sect. 5).
//
// Handles hardware and software errors (missed deadlines, memory protection
// violations, application errors, ...) with the ARINC 653 containment rule:
// process-level errors invoke the partition's application error handler;
// partition-level errors trigger a response action defined at integration
// time; module-level errors may stop or reinitialise the whole system.
//
// The monitor itself is policy + bookkeeping; the *mechanisms* (stopping a
// process, restarting a partition) are injected by the system layer, which
// keeps this library free of upward dependencies.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/spans.hpp"
#include "util/types.hpp"

namespace air::hm {

enum class ErrorCode : std::uint8_t {
  kDeadlineMissed = 0,
  kApplicationError,
  kNumericError,
  kIllegalRequest,
  kStackOverflow,
  kMemoryViolation,
  kHardwareFault,
  kPowerFail,
  kConfigError,
};

[[nodiscard]] const char* to_string(ErrorCode code);

enum class ErrorLevel : std::uint8_t { kProcess, kPartition, kModule };

[[nodiscard]] const char* to_string(ErrorLevel level);

/// Recovery actions from Sect. 5 ("Possible recovery actions in the event of
/// such an error are ...") plus the module-level ones of ARINC 653.
enum class RecoveryAction : std::uint8_t {
  kIgnore = 0,        // log it, take no action
  kStopProcess,       // stop the faulty process (partition recovers by itself)
  kRestartProcess,    // stop + start again from the entry address
  kStopPartition,     // partition to idle mode
  kWarmRestartPartition,
  kColdRestartPartition,
  kStopModule,
  kResetModule,
};

[[nodiscard]] const char* to_string(RecoveryAction action);

/// One HM table entry: what to do for `code` at `level`. `log_threshold`
/// implements "logging the error a certain number of times before acting
/// upon it": occurrences 1..threshold-1 are logged only.
struct HmTableEntry {
  RecoveryAction action{RecoveryAction::kIgnore};
  std::uint32_t log_threshold{1};
};

/// Per-partition (or module) HM table.
class HmTable {
 public:
  void set(ErrorCode code, ErrorLevel level, RecoveryAction action,
           std::uint32_t log_threshold = 1);
  [[nodiscard]] HmTableEntry lookup(ErrorCode code, ErrorLevel level) const;

  /// True when the table has an *explicit* entry for (code, level) --
  /// lookup() falls back to defaults, has() distinguishes configured
  /// responses from fallbacks (the escalation rule needs the difference).
  [[nodiscard]] bool has(ErrorCode code, ErrorLevel level) const {
    return entries_.find({code, level}) != entries_.end();
  }

  /// Explicitly configured entries (defaults are not listed).
  [[nodiscard]] const std::map<std::pair<ErrorCode, ErrorLevel>,
                               HmTableEntry>&
  entries() const {
    return entries_;
  }

 private:
  std::map<std::pair<ErrorCode, ErrorLevel>, HmTableEntry> entries_;
};

struct ErrorReport {
  Ticks time{0};
  ErrorCode code{ErrorCode::kApplicationError};
  ErrorLevel level{ErrorLevel::kProcess};
  PartitionId partition;
  ProcessId process;
  std::string message;
  RecoveryAction action_taken{RecoveryAction::kIgnore};
  bool handled_by_error_handler{false};
  bool deferred_by_threshold{false};
  /// Partition-level error with no configured partition-level response:
  /// promoted to module level and decided by the module table (`level` then
  /// reads kModule -- the level the error was *handled* at).
  bool escalated{false};
};

class HealthMonitor {
 public:
  /// Integration-time configuration.
  void set_module_table(HmTable table) { module_table_ = std::move(table); }
  void set_partition_table(PartitionId partition, HmTable table);

  /// Escalation rule (ARINC 653 HM dispatch, Sect. 2.4): a partition-level
  /// error for which neither the partition's nor the module's table holds a
  /// partition-level entry is promoted to module level and decided there.
  /// Off by default (raw monitors keep the contained partition-level
  /// fallback); the system layer enables it for integrated modules.
  void set_escalation(bool on) { escalation_ = on; }
  [[nodiscard]] bool escalation() const { return escalation_; }

  /// Report an error. Returns the action that was carried out.
  RecoveryAction report(Ticks now, ErrorCode code, ErrorLevel level,
                        PartitionId partition, ProcessId process,
                        std::string message = {});

  [[nodiscard]] const std::vector<ErrorReport>& log() const { return log_; }
  [[nodiscard]] std::size_t error_count(PartitionId partition,
                                        ErrorCode code) const;
  void clear_log() { log_.clear(); }

  /// Forget `partition`'s error occurrence history (called on partition
  /// restart, so log-threshold counting starts afresh in the new life).
  void reset_occurrences(PartitionId partition);

  // --- mechanisms, wired by the system layer ---
  /// Try to activate the partition's application error handler process for a
  /// process-level error; returns false when the partition created none.
  std::function<bool(PartitionId, const ErrorReport&)> invoke_error_handler;
  std::function<void(PartitionId, ProcessId)> stop_process;
  std::function<void(PartitionId, ProcessId)> restart_process;
  std::function<void(PartitionId)> stop_partition;
  std::function<void(PartitionId, bool cold)> restart_partition;
  std::function<void(bool reset)> stop_module;
  /// Observation hook: every report, after the action is decided.
  std::function<void(const ErrorReport&)> on_report;

  /// Publish error-rate metrics: errors per partition, per error code, and
  /// actions per recovery kind. nullptr = off.
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Record a handler span per report, parented on the span that caused it
  /// (the recorder's pending-cause latch, set by the reporting layer).
  /// nullptr = off.
  void set_spans(telemetry::SpanRecorder* spans) { spans_ = spans; }

 private:
  void execute(const ErrorReport& report);
  void note(const ErrorReport& report);
  void note_span(const ErrorReport& report);

  bool escalation_{false};
  HmTable module_table_;
  std::map<PartitionId, HmTable> partition_tables_;
  std::map<std::pair<PartitionId, ErrorCode>, std::uint32_t> occurrence_;
  std::vector<ErrorReport> log_;
  telemetry::MetricsRegistry* metrics_{nullptr};
  telemetry::SpanRecorder* spans_{nullptr};
};

}  // namespace air::hm
