#include "hm/health_monitor.hpp"

namespace air::hm {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kDeadlineMissed: return "deadline_missed";
    case ErrorCode::kApplicationError: return "application_error";
    case ErrorCode::kNumericError: return "numeric_error";
    case ErrorCode::kIllegalRequest: return "illegal_request";
    case ErrorCode::kStackOverflow: return "stack_overflow";
    case ErrorCode::kMemoryViolation: return "memory_violation";
    case ErrorCode::kHardwareFault: return "hardware_fault";
    case ErrorCode::kPowerFail: return "power_fail";
    case ErrorCode::kConfigError: return "config_error";
  }
  return "unknown";
}

const char* to_string(ErrorLevel level) {
  switch (level) {
    case ErrorLevel::kProcess: return "process";
    case ErrorLevel::kPartition: return "partition";
    case ErrorLevel::kModule: return "module";
  }
  return "unknown";
}

const char* to_string(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kIgnore: return "ignore";
    case RecoveryAction::kStopProcess: return "stop_process";
    case RecoveryAction::kRestartProcess: return "restart_process";
    case RecoveryAction::kStopPartition: return "stop_partition";
    case RecoveryAction::kWarmRestartPartition: return "warm_restart_partition";
    case RecoveryAction::kColdRestartPartition: return "cold_restart_partition";
    case RecoveryAction::kStopModule: return "stop_module";
    case RecoveryAction::kResetModule: return "reset_module";
  }
  return "unknown";
}

void HmTable::set(ErrorCode code, ErrorLevel level, RecoveryAction action,
                  std::uint32_t log_threshold) {
  entries_[{code, level}] = {action, log_threshold == 0 ? 1u : log_threshold};
}

HmTableEntry HmTable::lookup(ErrorCode code, ErrorLevel level) const {
  auto it = entries_.find({code, level});
  if (it != entries_.end()) return it->second;
  // Defaults chosen for containment: a process error stops the process; a
  // partition error restarts the partition warm; a module error stops it.
  switch (level) {
    case ErrorLevel::kProcess: return {RecoveryAction::kStopProcess, 1};
    case ErrorLevel::kPartition:
      return {RecoveryAction::kWarmRestartPartition, 1};
    case ErrorLevel::kModule: return {RecoveryAction::kStopModule, 1};
  }
  return {};
}

void HealthMonitor::set_partition_table(PartitionId partition, HmTable table) {
  partition_tables_[partition] = std::move(table);
}

void HealthMonitor::reset_occurrences(PartitionId partition) {
  for (auto it = occurrence_.begin(); it != occurrence_.end();) {
    if (it->first.first == partition) {
      it = occurrence_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t HealthMonitor::error_count(PartitionId partition,
                                       ErrorCode code) const {
  auto it = occurrence_.find({partition, code});
  return it != occurrence_.end() ? it->second : 0;
}

RecoveryAction HealthMonitor::report(Ticks now, ErrorCode code,
                                     ErrorLevel level, PartitionId partition,
                                     ProcessId process, std::string message) {
  ErrorReport report;
  report.time = now;
  report.code = code;
  report.level = level;
  report.partition = partition;
  report.process = process;
  report.message = std::move(message);

  const std::uint32_t count = ++occurrence_[{partition, code}];

  // Process-level errors go to the partition's application error handler
  // first (Sect. 2.4); only when none exists does the HM table act.
  if (level == ErrorLevel::kProcess && invoke_error_handler &&
      invoke_error_handler(partition, report)) {
    report.handled_by_error_handler = true;
    report.action_taken = RecoveryAction::kIgnore;
    log_.push_back(report);
    note(log_.back());
    note_span(log_.back());
    if (on_report) on_report(log_.back());
    return report.action_taken;
  }

  const HmTable* table = &module_table_;
  if (level != ErrorLevel::kModule) {
    auto it = partition_tables_.find(partition);
    if (it != partition_tables_.end()) table = &it->second;
  }
  if (escalation_ && level == ErrorLevel::kPartition &&
      !table->has(code, ErrorLevel::kPartition)) {
    // No partition-level response configured anywhere: the error exceeds
    // what the partition's policy can contain, so it is promoted to module
    // level and the module table decides (ARINC 653 HM dispatch).
    report.escalated = true;
    report.level = ErrorLevel::kModule;
    level = ErrorLevel::kModule;
    table = &module_table_;
  }
  const HmTableEntry entry = table->lookup(code, level);

  if (count < entry.log_threshold) {
    // "Logging the error a certain number of times before acting upon it."
    report.deferred_by_threshold = true;
    report.action_taken = RecoveryAction::kIgnore;
    log_.push_back(report);
    note(log_.back());
    note_span(log_.back());
    if (on_report) on_report(log_.back());
    return report.action_taken;
  }

  report.action_taken = entry.action;
  log_.push_back(report);
  note(log_.back());
  note_span(log_.back());
  execute(log_.back());
  if (on_report) on_report(log_.back());
  return report.action_taken;
}

void HealthMonitor::note(const ErrorReport& report) {
  if (metrics_ == nullptr) return;
  metrics_->add(telemetry::Metric::kHmErrors,
                report.partition.valid() ? report.partition.value() : -1);
  metrics_->add(telemetry::Metric::kHmErrorsByCode,
                static_cast<std::int32_t>(report.code));
  metrics_->add(telemetry::Metric::kHmActionsByKind,
                static_cast<std::int32_t>(report.action_taken));
}

void HealthMonitor::note_span(const ErrorReport& report) {
  if (spans_ == nullptr) return;
  // The reporting layer (PAL deadline check, spatial guard, APEX error
  // service) latched the causal span just before calling report().
  spans_->instant(telemetry::SpanKind::kHmHandler, report.time,
                  spans_->take_pending_cause(), 0,
                  report.partition.valid() ? report.partition.value() : -1,
                  report.process.valid() ? report.process.value() : -1,
                  static_cast<std::int64_t>(report.code),
                  std::string{to_string(report.action_taken)});
}

void HealthMonitor::execute(const ErrorReport& report) {
  switch (report.action_taken) {
    case RecoveryAction::kIgnore:
      break;
    case RecoveryAction::kStopProcess:
      if (stop_process) stop_process(report.partition, report.process);
      break;
    case RecoveryAction::kRestartProcess:
      if (restart_process) restart_process(report.partition, report.process);
      break;
    case RecoveryAction::kStopPartition:
      if (stop_partition) stop_partition(report.partition);
      break;
    case RecoveryAction::kWarmRestartPartition:
      if (restart_partition) restart_partition(report.partition, false);
      break;
    case RecoveryAction::kColdRestartPartition:
      if (restart_partition) restart_partition(report.partition, true);
      break;
    case RecoveryAction::kStopModule:
      if (stop_module) stop_module(false);
      break;
    case RecoveryAction::kResetModule:
      if (stop_module) stop_module(true);
      break;
  }
}

}  // namespace air::hm
